package opass

// This file holds one testing.B benchmark per figure of the paper's
// evaluation (regenerating the figure's data end-to-end each iteration) and
// microbenchmarks for the algorithmic building blocks — the max-flow
// solvers behind §IV-B, Algorithm 1, the dynamic scheduler, and the fluid
// simulator. Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks default to paper scale (64-80 node clusters); the
// planner microbenchmarks sweep sizes up to 256 processes x 2560 tasks to
// exercise the §V-C2 scalability discussion.

import (
	"fmt"
	"testing"

	"opass/internal/bipartite"
	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/experiments"
	"opass/internal/mpi"
	"opass/internal/plannerbench"
	"opass/internal/simnet"
	"opass/internal/workload"
)

func benchCfg(i int) experiments.Config {
	return experiments.Config{Seed: int64(i)}
}

// BenchmarkFig1 regenerates Figure 1 (motivating imbalance, 64 nodes).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(benchCfg(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (§III analytics + Monte Carlo).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig3(benchCfg(i))
	}
}

// BenchmarkFig7 regenerates Figures 7a/7b + 8a/8b (16..80 node sweep).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SingleDataSweep(benchCfg(i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7c regenerates Figures 7c + 8c (64-node trace).
func BenchmarkFig7c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7cTrace(benchCfg(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Figures 9 + 10 (multi-data trace).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Trace(benchCfg(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11 regenerates Figure 11 (dynamic master/worker trace).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11Trace(benchCfg(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 regenerates Figure 12 (ParaView pipeline).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(benchCfg(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverhead regenerates the §V-C1 overhead measurement.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Overhead(benchCfg(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPlacement regenerates the placement-skew ablation.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPlacement(benchCfg(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// plannerProblem builds a single-data problem of the given scale for the
// planner microbenchmarks.
func plannerProblem(b *testing.B, nodes int) *core.Problem {
	b.Helper()
	rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: 10, Seed: 1}.Build()
	if err != nil {
		b.Fatal(err)
	}
	return rig.Prob
}

// BenchmarkPlannerSingleDataEK measures the §IV-B flow planner with
// Edmonds-Karp across problem sizes (§V-C2 scalability).
func BenchmarkPlannerSingleDataEK(b *testing.B) {
	for _, nodes := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("procs=%d", nodes), func(b *testing.B) {
			p := plannerProblem(b, nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (core.SingleData{Algorithm: bipartite.EdmondsKarp}).Assign(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerSingleDataDinic is the max-flow algorithm ablation.
func BenchmarkPlannerSingleDataDinic(b *testing.B) {
	for _, nodes := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("procs=%d", nodes), func(b *testing.B) {
			p := plannerProblem(b, nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (core.SingleData{Algorithm: bipartite.Dinic}).Assign(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerSingleDataKuhn measures the direct matching fast path.
func BenchmarkPlannerSingleDataKuhn(b *testing.B) {
	for _, nodes := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("procs=%d", nodes), func(b *testing.B) {
			p := plannerProblem(b, nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (core.SingleData{Algorithm: bipartite.Kuhn}).Assign(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerMultiData measures Algorithm 1 across problem sizes.
func BenchmarkPlannerMultiData(b *testing.B) {
	for _, nodes := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("procs=%d", nodes), func(b *testing.B) {
			rig, err := workload.MultiSpec{Nodes: nodes, TasksPerProc: 10, Seed: 1}.Build()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (core.MultiData{}).Assign(rig.Prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalityGraphProbe measures the pre-index §IV-A graph build
// (CoLocatedMB probe sweep over every process×task pair) — kept as the
// baseline side of the BENCH_planner.json speedup trajectory.
func BenchmarkLocalityGraphProbe(b *testing.B) {
	for _, procs := range plannerbench.Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			p, err := plannerbench.BuildSingle(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plannerbench.LocalityGraphProbe(p)
			}
		})
	}
}

// BenchmarkLocalityGraphIndexed measures the shared-index graph build the
// planners use now (O(edges) inversion + in-order sorted inserts).
func BenchmarkLocalityGraphIndexed(b *testing.B) {
	for _, procs := range plannerbench.Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			p, err := plannerbench.BuildSingle(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plannerbench.LocalityGraphIndexed(p)
			}
		})
	}
}

// BenchmarkMultiPrefsProbe measures the pre-index Algorithm 1 preference
// build (probe sweep into maps + map-backed sort).
func BenchmarkMultiPrefsProbe(b *testing.B) {
	for _, procs := range plannerbench.Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			p, err := plannerbench.BuildMulti(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plannerbench.MultiPrefsProbe(p)
			}
		})
	}
}

// BenchmarkMultiPrefsIndexed measures the locality-index preference build.
func BenchmarkMultiPrefsIndexed(b *testing.B) {
	for _, procs := range plannerbench.Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			p, err := plannerbench.BuildMulti(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plannerbench.MultiPrefsIndexed(p)
			}
		})
	}
}

// BenchmarkLocalityIndexBuild isolates the index inversion itself.
func BenchmarkLocalityIndexBuild(b *testing.B) {
	for _, procs := range plannerbench.Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			p, err := plannerbench.BuildSingle(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.NewLocalityIndex(p)
			}
		})
	}
}

// BenchmarkDynamicSchedulerDrain measures the §IV-D master serving a full
// job's worth of Next calls, including the stealing path.
func BenchmarkDynamicSchedulerDrain(b *testing.B) {
	p := plannerProblem(b, 64)
	a, err := (core.SingleData{}).Assign(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.NewDynamicScheduler(p, a)
		if err != nil {
			b.Fatal(err)
		}
		proc := 0
		for {
			if _, ok := s.Next(proc); !ok {
				break
			}
			proc = (proc + 7) % 64 // arbitrary idle pattern
		}
	}
}

// BenchmarkReplanAfterCrashCold and BenchmarkReplanAfterCrashDelta contrast
// the engine's two answers to a single DataNode loss mid-run: a
// whole-backlog re-match versus the O(delta) replan that re-matches only
// the tasks the crash could have moved (epoch-dirty inputs, replicas on
// the dead node, or queued on its process).
func BenchmarkReplanAfterCrashCold(b *testing.B) {
	for _, procs := range plannerbench.Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			r, err := plannerbench.BuildReplanRig(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.ReplanCold(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplanAfterCrashDelta(b *testing.B) {
	for _, procs := range plannerbench.Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			r, err := plannerbench.BuildReplanRig(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.ReplanDelta(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxFlowEK and BenchmarkMaxFlowDinic isolate the flow solvers on
// the raw locality network (64 procs x 640 files x 3 replicas).
func maxflowNetwork(b *testing.B) (*bipartite.FlowNetwork, int, int) {
	b.Helper()
	rig, err := workload.SingleSpec{Nodes: 64, ChunksPerProc: 10, Seed: 1}.Build()
	if err != nil {
		b.Fatal(err)
	}
	g := bipartite.NewGraph(64, len(rig.Prob.Tasks))
	for t := range rig.Prob.Tasks {
		for proc := 0; proc < 64; proc++ {
			if w := rig.Prob.CoLocatedMB(proc, t); w > 0 {
				g.AddEdge(proc, t, int64(w))
			}
		}
	}
	n := 64 + len(rig.Prob.Tasks) + 2
	fn := bipartite.NewFlowNetwork(n)
	s, t := 0, n-1
	for p := 0; p < 64; p++ {
		fn.AddArc(s, 1+p, 640)
	}
	for p := 0; p < 64; p++ {
		for _, e := range g.EdgesOfP(p) {
			fn.AddArc(1+p, 1+64+e.F, 64)
		}
	}
	for f := 0; f < len(rig.Prob.Tasks); f++ {
		fn.AddArc(1+64+f, t, 64)
	}
	return fn, s, t
}

// BenchmarkMaxFlowEK measures Edmonds-Karp on the 64x640 locality network.
func BenchmarkMaxFlowEK(b *testing.B) {
	fn, s, t := maxflowNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.Reset()
		fn.MaxFlowEK(s, t)
	}
}

// BenchmarkMaxFlowDinic measures Dinic on the same network.
func BenchmarkMaxFlowDinic(b *testing.B) {
	fn, s, t := maxflowNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.Reset()
		fn.MaxFlowDinic(s, t)
	}
}

// BenchmarkSimnetContendedDisk measures the fluid simulator on the paper's
// worst case: many concurrent streams on one disk.
func BenchmarkSimnetContendedDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := simnet.New()
		disk := n.AddResource("disk", 75, 0.3)
		for f := 0; f < 64; f++ {
			n.Start([]simnet.ResourceID{disk}, 64, 0.015, "r")
		}
		n.Run()
	}
}

// BenchmarkDFSCreate measures metadata-path throughput: creating a 640-chunk
// dataset with random 3-way placement.
func BenchmarkDFSCreate(b *testing.B) {
	topoView := fixedView{nodes: 64}
	for i := 0; i < b.N; i++ {
		fs := dfs.New(topoView, dfs.Config{Seed: int64(i)})
		if _, err := fs.Create("/data", 640*64); err != nil {
			b.Fatal(err)
		}
	}
}

type fixedView struct{ nodes int }

func (v fixedView) NumNodes() int    { return v.nodes }
func (v fixedView) RackOf(n int) int { return 0 }

// BenchmarkEngineStaticRun measures a full 64-node static execution
// (plan + simulate 640 reads) — the engine's end-to-end cost.
func BenchmarkEngineStaticRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rig, err := workload.SingleSpec{Nodes: 64, ChunksPerProc: 10, Seed: int64(i)}.Build()
		if err != nil {
			b.Fatal(err)
		}
		a, err := (core.SingleData{}).Assign(rig.Prob)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engineRun(rig, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPIWorld measures the goroutine-rank runtime on a 32-rank
// master/worker job with 320 reads.
func BenchmarkMPIWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := cluster.New(32, cluster.Marmot())
		fs := dfs.New(topo, dfs.Config{Seed: int64(i)})
		f, err := fs.Create("/db", 64*320)
		if err != nil {
			b.Fatal(err)
		}
		w := mpi.NewWorld(topo, fs, identity(32))
		if _, err := w.Run(func(r *mpi.Rank) {
			for t := r.ID(); t < len(f.Chunks); t += r.Size() {
				r.ReadChunk(f.Chunks[t])
			}
			r.Barrier()
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func engineRun(rig *workload.Rig, a *core.Assignment) (*engine.Result, error) {
	return engine.RunAssignment(engine.Options{
		Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob, Strategy: "bench",
	}, a)
}
