// Command opass-analyze prints the §III analytical results — the binomial
// model of remote parallel reads (Figure 3) and the law-of-total-probability
// model of imbalanced chunk service — for arbitrary cluster parameters,
// together with a Monte-Carlo cross-check.
//
// Usage:
//
//	opass-analyze [-chunks N] [-replication R] [-nodes M[,M...]] [-k K] [-trials T]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"opass/internal/analysis"
)

func main() {
	chunks := flag.Int("chunks", 512, "number of chunks in the dataset (n)")
	repl := flag.Int("replication", 3, "replication factor (r)")
	nodesCSV := flag.String("nodes", "64,128,256,512", "comma-separated cluster sizes (m)")
	kMax := flag.Int("k", 20, "largest k for the CDF table")
	trials := flag.Int("trials", 500, "Monte-Carlo trials (0 disables)")
	seed := flag.Int64("seed", 42, "Monte-Carlo seed")
	flag.Parse()

	var sizes []int
	for _, tok := range strings.Split(*nodesCSV, ",") {
		m, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || m < *repl {
			fmt.Fprintf(os.Stderr, "opass-analyze: bad cluster size %q\n", tok)
			os.Exit(1)
		}
		sizes = append(sizes, m)
	}

	fmt.Printf("§III-A — CDF of chunks read locally, n=%d chunks, r=%d\n", *chunks, *repl)
	fmt.Printf("(as-written convention p=r/m | quoted convention p=1/m)\n")
	fmt.Printf("%4s", "k")
	for _, m := range sizes {
		fmt.Printf("      m=%-14d", m)
	}
	fmt.Println()
	for k := 0; k <= *kMax; k += 2 {
		fmt.Printf("%4d", k)
		for _, m := range sizes {
			p := analysis.LocalReadParams{Chunks: *chunks, Replication: *repl, Nodes: m}
			fmt.Printf("   %8.4f | %8.4f", analysis.LocalReadCDF(p, k), analysis.LocalReadCDFQuoted(p, k))
		}
		fmt.Println()
	}

	fmt.Printf("\nP(X > 5) per cluster size (quoted convention):\n")
	for _, m := range sizes {
		p := analysis.LocalReadParams{Chunks: *chunks, Replication: *repl, Nodes: m}
		fmt.Printf("  m=%-5d %7.2f%%\n", m, 100*(1-analysis.LocalReadCDFQuoted(p, 5)))
	}

	fmt.Printf("\n§III-B — expected node service counts\n")
	for _, m := range sizes {
		p := analysis.LocalReadParams{Chunks: *chunks, Replication: *repl, Nodes: m}
		fmt.Printf("  m=%-5d E[nodes serving <=1 chunk]=%6.1f   E[nodes serving >=8 chunks]=%6.1f\n",
			m, analysis.ExpectedNodesServingAtMost(p, 1), analysis.ExpectedNodesServingAtLeast(p, 8))
	}

	if *trials > 0 {
		fmt.Printf("\nMonte-Carlo cross-check (%d trials, seed %d)\n", *trials, *seed)
		for _, m := range sizes {
			p := analysis.LocalReadParams{Chunks: *chunks, Replication: *repl, Nodes: m}
			mc := analysis.MonteCarlo(p, *trials, 8, *seed)
			fmt.Printf("  m=%-5d mean chunks read locally %6.2f (analytic %6.2f)   mean busiest node serves %5.1f chunks\n",
				m, mc.MeanLocal, float64(*chunks)*float64(*repl)/float64(m), mc.MaxServed)
		}
	}
}
