// Command opass-bench regenerates the figures of the Opass paper's
// evaluation from the simulated substrate and prints them as text rows.
//
// Usage:
//
//	opass-bench [flags] [experiment ...]
//
// With no arguments every experiment runs in order. Experiments:
//
//	fig1      Figure 1  — motivating imbalance (64 nodes, 128 chunks)
//	fig3      Figure 3  — §III analytical CDFs and quoted probabilities
//	fig7      Figures 7a/7b + 8a/8b — cluster-size sweep (16..80 nodes)
//	fig7c     Figures 7c + 8c — 64-node single-data trace
//	fig9      Figures 9 + 10  — 64-node multi-data trace
//	fig11     Figure 11 — 64-node dynamic master/worker trace
//	fig12     Figure 12 — ParaView pipeline
//	overhead  §V-C1 — planner overhead ratio
//	scale     §V-C2 — planner wall time vs problem size, then the full
//	          streaming request path at bulk scale (1k→10k procs carrying
//	          100k→1M tasks at -scale 1; see -scalejson)
//	ablation-placement  skewed placement with/without balancer
//	dynamic-masters     random vs delay scheduling vs Opass masters
//	hetero              §IV-D heterogeneous cluster, static vs dynamic
//	greedy              greedy heuristic vs optimal flow planner
//	redistribution      MRAP-style replica migration cost/benefit
//	replication         replication factor vs achievable locality
//	sensitivity         disk seek-penalty calibration sweep
//	faults              DataNode crashes mid-job with read failover
//	chaos               seeded fault sweep: failover vs replan+repair, with
//	                    invariant checks (needs >= 8 nodes, so -scale <= 8)
//	racks               oversubscribed multi-rack fabric study
//	shared              co-running jobs interference study (§V-C1)
//	jobmix              staggered job mix: isolated per-job plans vs the
//	                    cluster-level scheduler (see -benchjson)
//	advisor             adaptive replication: static 3-way vs the access-
//	                    driven replication advisor on a shifting hotspot
//	                    (see -benchjson)
//	datasize            dataset-size sweep at fixed cluster size
//	planner             planner hot-path microbenchmarks (probe vs locality
//	                    index; see -benchjson)
//
// Flags:
//
//	-seed N         random seed (default 42)
//	-scale N        divide cluster sizes by N for quick runs (default 1 = paper scale)
//	-out DIR        also write figure data as CSV into DIR
//	-repeat N       replicate trace experiments over N seeds, reporting mean±sd
//	-benchjson F    write the planner experiment's results as JSON to F
//	                (the committed BENCH_planner.json is generated this way)
//	-scalejson F    write the scale experiment's streaming-path trajectory as
//	                JSON to F (the committed BENCH_scale.json is generated
//	                this way)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"opass/internal/experiments"
	"opass/internal/plot"
	"opass/internal/traceio"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed for placement and scheduling")
	scale := flag.Int("scale", 1, "divide paper cluster sizes by this factor")
	out := flag.String("out", "", "directory to write figure data as CSV (created if missing)")
	repeat := flag.Int("repeat", 1, "repeat trace experiments over this many seeds and report mean±sd")
	benchjson := flag.String("benchjson", "", "write the planner experiment's results as JSON to this file")
	scalejson := flag.String("scalejson", "", "write the scale experiment's streaming-path trajectory as JSON to this file (the committed BENCH_scale.json is generated this way)")
	flag.Parse()
	repeats = *repeat
	benchJSONPath = *benchjson
	scaleJSONPath = *scalejson
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "opass-bench: %v\n", err)
			os.Exit(1)
		}
	}
	outDir = *out

	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	names := flag.Args()
	if len(names) == 0 {
		names = []string{
			"fig1", "fig3", "fig7", "fig7c", "fig9", "fig11", "fig12",
			"overhead", "scale", "ablation-placement",
			"dynamic-masters", "hetero", "greedy",
			"redistribution", "replication", "sensitivity", "faults", "chaos", "racks", "shared", "jobmix", "advisor", "datasize",
		}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(name, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "opass-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func run(name string, cfg experiments.Config) error {
	switch name {
	case "fig1":
		r, err := experiments.Fig1(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "fig3":
		r := experiments.Fig3(cfg)
		fmt.Print(r.Render())
		names := make([]string, len(r.Sizes))
		series := make([][]float64, len(r.Sizes))
		for i, m := range r.Sizes {
			names[i] = fmt.Sprintf("m=%d", m)
			series[i] = r.Quoted[m]
		}
		fmt.Print(plot.CDF("\nCDF of chunks read locally (k = 0..20)", names, series, 64, 12))
	case "fig7", "fig8":
		r, err := experiments.SingleDataSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "fig7c", "fig8c":
		r, err := renderTrace(experiments.Fig7cTrace, cfg)
		if err != nil {
			return err
		}
		fmt.Print(plot.Trace("\nI/O time per operation, without Opass (s)", r.Baseline.IOTimes, 72, 10))
		fmt.Print(plot.Trace("I/O time per operation, with Opass (s)", r.Opass.IOTimes, 72, 10))
		fmt.Println("\ndata served per node (MB), without Opass:")
		fmt.Println("  " + plot.Sparkline(r.Baseline.ServedMB))
		fmt.Println("data served per node (MB), with Opass:")
		fmt.Println("  " + plot.Sparkline(r.Opass.ServedMB))
		if err := exportTrace("fig7c", r); err != nil {
			return err
		}
	case "fig9", "fig10":
		r, err := renderTrace(experiments.Fig9Trace, cfg)
		if err != nil {
			return err
		}
		if err := exportTrace("fig9", r); err != nil {
			return err
		}
	case "fig11":
		r, err := renderTrace(experiments.Fig11Trace, cfg)
		if err != nil {
			return err
		}
		if err := exportTrace("fig11", r); err != nil {
			return err
		}
	case "fig12":
		r, err := experiments.Fig12(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		fmt.Print(plot.Trace("\nvtkFileSeriesReader call times, stock (s)", r.Stock.CallTimes, 72, 8))
		fmt.Print(plot.Trace("vtkFileSeriesReader call times, with Opass (s)", r.Opass.CallTimes, 72, 8))
	case "dynamic-masters":
		r, err := experiments.DynamicStrategies(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "hetero":
		r, err := experiments.HeteroStaticVsDynamic(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "greedy":
		rows, err := experiments.GreedyVsFlow(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderGreedy(rows))
	case "datasize":
		rows, err := experiments.DataSizeSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderDataSweep(rows, cfg.Nodes(64)))
	case "shared":
		r, err := experiments.SharedCluster(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "jobmix":
		r, err := experiments.JobMix(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		if benchJSONPath != "" {
			wrap := struct {
				Jobmix *experiments.JobMixResult `json:"jobmix"`
			}{r}
			if err := mergeBenchJSON(benchJSONPath, wrap); err != nil {
				return err
			}
			fmt.Printf("(wrote %s)\n", benchJSONPath)
		}
	case "advisor":
		r, err := experiments.AdvisorStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		if benchJSONPath != "" {
			wrap := struct {
				Advisor *experiments.AdvisorResult `json:"advisor"`
			}{r}
			if err := mergeBenchJSON(benchJSONPath, wrap); err != nil {
				return err
			}
			fmt.Printf("(wrote %s)\n", benchJSONPath)
		}
	case "racks":
		r, err := experiments.RackTopology(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		if benchJSONPath != "" {
			wrap := struct {
				Racks *experiments.RackStudyResult `json:"racks"`
			}{r}
			if err := mergeBenchJSON(benchJSONPath, wrap); err != nil {
				return err
			}
			fmt.Printf("(wrote %s)\n", benchJSONPath)
		}
	case "faults":
		r, err := experiments.FaultTolerance(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "chaos":
		r, err := experiments.Chaos(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "redistribution":
		r, err := experiments.Redistribution(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "replication":
		rows, err := experiments.ReplicationSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderReplication(rows))
	case "sensitivity":
		rows, err := experiments.SeekPenaltySensitivity(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSensitivity(rows))
	case "overhead":
		r, err := experiments.Overhead(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "scale":
		rows, err := experiments.PlannerScale(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScale(rows))
		if err := scaleStudy(cfg.Scale, cfg.Seed, scaleJSONPath); err != nil {
			return err
		}
	case "ablation-placement":
		r, err := experiments.AblationPlacement(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "planner":
		return plannerExperiment(benchJSONPath)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// outDir is the -out flag target ("" disables CSV export).
var outDir string

// repeats is the -repeat flag (1 = single run).
var repeats int

// benchJSONPath is the -benchjson flag ("" disables the JSON export).
var benchJSONPath string

// scaleJSONPath is the -scalejson flag ("" disables the JSON export).
var scaleJSONPath string

// renderTrace prints a trace experiment, replicated across seeds when
// -repeat is above 1.
func renderTrace(f func(experiments.Config) (*experiments.TraceResult, error), cfg experiments.Config) (*experiments.TraceResult, error) {
	r, err := f(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Print(r.Render())
	if repeats > 1 {
		rep, err := experiments.Replicate(f, cfg, repeats)
		if err != nil {
			return nil, err
		}
		fmt.Print(rep.Render())
	}
	return r, nil
}

// exportTrace writes a paired trace's per-read durations and per-node loads
// as CSV series under the -out directory.
func exportTrace(name string, r *experiments.TraceResult) error {
	if outDir == "" {
		return nil
	}
	for _, side := range []struct {
		label string
		res   experiments.StrategyResult
	}{{"baseline", r.Baseline}, {"opass", r.Opass}} {
		f, err := os.Create(filepath.Join(outDir, fmt.Sprintf("%s_%s_io.csv", name, side.label)))
		if err != nil {
			return err
		}
		xs := make([]float64, len(side.res.IOTimes))
		for i := range xs {
			xs[i] = float64(i)
		}
		err = traceio.WriteSeriesCSV(f, "op_index", xs, []string{"io_time_s"}, [][]float64{side.res.IOTimes})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		f, err = os.Create(filepath.Join(outDir, fmt.Sprintf("%s_%s_served.csv", name, side.label)))
		if err != nil {
			return err
		}
		err = traceio.WriteNodeLoadCSV(f, side.res.ServedMB)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("(wrote %s CSVs to %s)\n", name, outDir)
	return nil
}
