package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"opass/internal/bipartite"
	"opass/internal/core"
	"opass/internal/plannerbench"
)

// This file implements the "planner" experiment: the planner hot-path
// microbenchmarks replayed through testing.Benchmark, printed as a table
// and optionally serialized to BENCH_planner.json (-benchjson). The JSON
// seeds the repo's perf trajectory: every probe/indexed pair records the
// speedup of the locality-index refactor at each problem size.

// benchResult is one serialized benchmark row.
type benchResult struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Tasks       int     `json:"tasks"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchSpeedup contrasts a probe/indexed pair.
type benchSpeedup struct {
	Name    string  `json:"name"`
	Procs   int     `json:"procs"`
	Tasks   int     `json:"tasks"`
	Speedup float64 `json:"speedup"`
}

// benchReport is the BENCH_planner.json document.
type benchReport struct {
	GeneratedBy string         `json:"generated_by"`
	GoMaxProcs  int            `json:"go_max_procs"`
	Results     []benchResult  `json:"results"`
	Speedups    []benchSpeedup `json:"speedups"`
}

// runPlannerBench executes every planner microbenchmark and returns the
// report. Problems are built once per size outside the timed sections.
func runPlannerBench() (*benchReport, error) {
	rep := &benchReport{
		GeneratedBy: "opass-bench planner",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	record := func(name string, procs, tasks int, fn func(b *testing.B)) benchResult {
		r := testing.Benchmark(fn)
		row := benchResult{
			Name:        name,
			Procs:       procs,
			Tasks:       tasks,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, row)
		fmt.Printf("  %-28s procs=%-4d tasks=%-5d %14.0f ns/op %10d allocs/op\n",
			row.Name, row.Procs, row.Tasks, row.NsPerOp, row.AllocsPerOp)
		return row
	}
	// pair benchmarks a slow/fast contrast (baseSuffix vs fastSuffix) and
	// records the speedup of the second over the first.
	pair := func(name, baseSuffix, fastSuffix string, procs, tasks int, base, fast func(b *testing.B)) {
		p := record(name+"/"+baseSuffix, procs, tasks, base)
		ix := record(name+"/"+fastSuffix, procs, tasks, fast)
		if ix.NsPerOp > 0 {
			rep.Speedups = append(rep.Speedups, benchSpeedup{
				Name: name, Procs: procs, Tasks: tasks, Speedup: p.NsPerOp / ix.NsPerOp,
			})
		}
	}

	for _, procs := range plannerbench.Sizes {
		tasks := procs * plannerbench.TasksPerProc
		sp, err := plannerbench.BuildSingle(procs)
		if err != nil {
			return nil, err
		}
		mp, err := plannerbench.BuildMulti(procs)
		if err != nil {
			return nil, err
		}

		pair("locality-graph", "probe", "indexed", procs, tasks,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					plannerbench.LocalityGraphProbe(sp)
				}
			},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					plannerbench.LocalityGraphIndexed(sp)
				}
			})
		pair("multidata-prefs", "probe", "indexed", procs, tasks,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					plannerbench.MultiPrefsProbe(mp)
				}
			},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					plannerbench.MultiPrefsIndexed(mp)
				}
			})

		for _, c := range []struct {
			name string
			algo bipartite.Algorithm
		}{
			{"planner/single-ek", bipartite.EdmondsKarp},
			{"planner/single-dinic", bipartite.Dinic},
			{"planner/single-kuhn", bipartite.Kuhn},
		} {
			algo := c.algo
			record(c.name, procs, tasks, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := (core.SingleData{Algorithm: algo}).Assign(sp); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		record("planner/multidata", procs, tasks, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (core.MultiData{}).Assign(mp); err != nil {
					b.Fatal(err)
				}
			}
		})
		a, err := (core.SingleData{}).Assign(sp)
		if err != nil {
			return nil, err
		}
		// Incremental series: one DataNode loss answered by a full backlog
		// re-match versus the O(delta) replan. The speedup row is the
		// epoch machinery's payoff; the acceptance bar is delta < 10% of
		// cold at the largest size.
		rig, err := plannerbench.BuildReplanRig(procs)
		if err != nil {
			return nil, err
		}
		pair("replan-after-crash", "cold", "delta", procs, tasks,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := rig.ReplanCold(); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := rig.ReplanDelta(); err != nil {
						b.Fatal(err)
					}
				}
			})

		record("planner/dynamic-drain", procs, tasks, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := core.NewDynamicScheduler(sp, a)
				if err != nil {
					b.Fatal(err)
				}
				// Only a quarter of the processes ask for work so the tail
				// of the drain exercises the steal scan.
				askers := procs / 4
				proc := 0
				for {
					if _, ok := s.Next(proc); !ok {
						break
					}
					proc = (proc + 7) % askers
				}
			}
		})
	}
	return rep, nil
}

// plannerExperiment runs the benchmarks, prints the speedup summary, and
// writes the JSON document when path is non-empty.
func plannerExperiment(path string) error {
	fmt.Println("planner hot-path microbenchmarks (testing.Benchmark):")
	rep, err := runPlannerBench()
	if err != nil {
		return err
	}
	fmt.Println("\nspeedups (baseline -> optimized):")
	for _, s := range rep.Speedups {
		fmt.Printf("  %-18s procs=%-4d tasks=%-5d %6.1fx\n", s.Name, s.Procs, s.Tasks, s.Speedup)
	}
	if path == "" {
		return nil
	}
	if err := mergeBenchJSON(path, rep); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}

// mergeBenchJSON updates the BENCH json document in place: v's top-level
// fields replace the matching keys of the existing document, and keys
// written by other experiments (e.g. the jobmix series next to the planner
// rows) are preserved. A missing or unreadable document starts fresh.
func mergeBenchJSON(path string, v any) error {
	doc := map[string]json.RawMessage{}
	if blob, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			doc = map[string]json.RawMessage{}
		}
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		return err
	}
	for k, val := range m {
		doc[k] = val
	}
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
