package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"opass/internal/httpapi"
	"opass/internal/telemetry"
)

// This file implements the fleet-scale half of the "scale" experiment: the
// full request path — streaming JSON decode, pooled locality index, planner —
// driven end to end over HTTP at bulk sizes (1k→10k processes carrying
// 100k→1M single-input tasks at paper scale). Each row records wall time,
// planner time, request-body bytes, and the sampled peak heap, so the
// committed BENCH_scale.json pins the memory-amplification trajectory: peak
// heap should stay within a small constant of the problem's resident size.

// scaleSizes is the proc-count trajectory at -scale 1; tasks are always
// scaleTasksPerProc per process. -scale divides every entry, so the CI smoke
// (-scale 20) walks 64→512 procs / 6.4k→51.2k tasks through the same path.
var scaleSizes = []int{1280, 2560, 5120, 10240}

const scaleTasksPerProc = 100

// scaleRow is one serialized trajectory point.
type scaleRow struct {
	Procs            int     `json:"procs"`
	Tasks            int     `json:"tasks"`
	Nodes            int     `json:"nodes"`
	BodyBytes        int64   `json:"body_bytes"`
	WallSeconds      float64 `json:"wall_seconds"`
	PlannerSeconds   float64 `json:"planner_seconds"`
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	HeapPerBodyByte  float64 `json:"heap_per_body_byte"`
	LocalityFraction float64 `json:"locality_fraction"`
}

// scaleReport is the BENCH_scale.json document.
type scaleReport struct {
	GeneratedBy string     `json:"generated_by"`
	GoMaxProcs  int        `json:"go_max_procs"`
	Scale       int        `json:"scale"`
	Rows        []scaleRow `json:"rows"`
}

// writeScaleBody streams the plan request for one trajectory point as JSON:
// procs processes pinned one per node, tasks single-input 64 MB tasks with 3
// distinct random replicas each. Streaming generation keeps the bench's own
// footprint out of the heap measurement — the body is never resident. It
// returns the number of body bytes produced.
func writeScaleBody(w io.Writer, procs, tasks int, seed int64) (int64, error) {
	bw := newCountingWriter(w)
	rng := rand.New(rand.NewSource(seed))
	fmt.Fprintf(bw, `{"nodes":%d,"strategy":"opass","seed":%d,"proc_nodes":[`, procs, seed)
	for i := 0; i < procs; i++ {
		if i > 0 {
			io.WriteString(bw, ",")
		}
		fmt.Fprintf(bw, "%d", i)
	}
	io.WriteString(bw, `],"tasks":[`)
	for t := 0; t < tasks; t++ {
		if t > 0 {
			io.WriteString(bw, ",")
		}
		a := rng.Intn(procs)
		b := (a + 1 + rng.Intn(procs-1)) % procs
		c := (a + 1 + rng.Intn(procs-1)) % procs
		if c == b {
			c = (b + 1) % procs
			if c == a {
				c = (c + 1) % procs
			}
		}
		fmt.Fprintf(bw, `{"inputs":[{"size_mb":64,"replicas":[%d,%d,%d]}]}`, a, b, c)
	}
	_, err := io.WriteString(bw, "]}")
	if err == nil {
		err = bw.err
	}
	return bw.n, err
}

// countingWriter tracks bytes written and the first error, so the generator
// reports the body size without buffering it.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func newCountingWriter(w io.Writer) *countingWriter { return &countingWriter{w: w} }

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// heapSampler polls HeapAlloc until stopped and remembers the maximum.
type heapSampler struct {
	peak atomic.Uint64
	stop chan struct{}
	done sync.WaitGroup
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{})}
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		var m runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > s.peak.Load() {
				s.peak.Store(m.HeapAlloc)
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

func (s *heapSampler) Peak() uint64 {
	close(s.stop)
	s.done.Wait()
	return s.peak.Load()
}

// scaleStudy runs the streaming-path trajectory and optionally writes
// BENCH_scale.json. The plan cache is disabled so every point pays for a
// real planner run, and the request deadline is lifted so paper-scale rows
// are bounded by the planner, not by the serving default.
func scaleStudy(cfg int, seed int64, jsonPath string) error {
	srv := httptest.NewServer(httpapi.NewHandler(httpapi.ServerOptions{
		Registry:         telemetry.NewRegistry(),
		PlanCacheEntries: -1,
		RequestTimeout:   time.Hour,
	}))
	defer srv.Close()

	rep := &scaleReport{
		GeneratedBy: "opass-bench scale",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Scale:       cfg,
	}
	fmt.Println("\nstreaming request path at bulk scale (decode + plan over HTTP):")
	fmt.Printf("  %-7s %-9s %12s %10s %10s %12s %9s\n",
		"procs", "tasks", "body", "wall", "planner", "peak heap", "heap/body")
	for _, base := range scaleSizes {
		procs := base / cfg
		if procs < 4 {
			continue
		}
		tasks := procs * scaleTasksPerProc

		runtime.GC()
		sampler := startHeapSampler()
		pr, pw := io.Pipe()
		sized := make(chan int64, 1)
		go func() {
			n, err := writeScaleBody(pw, procs, tasks, seed)
			sized <- n
			pw.CloseWithError(err)
		}()
		start := time.Now()
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", pr)
		if err != nil {
			return fmt.Errorf("scale %d procs: %w", procs, err)
		}
		// Decode only the scalar fields; the owner/list arrays stream
		// through the decoder without being retained.
		var out struct {
			LocalityFraction float64 `json:"locality_fraction"`
			PlannerMillis    float64 `json:"planner_ms"`
			Error            string  `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		wall := time.Since(start)
		peak := sampler.Peak()
		bodyBytes := <-sized
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scale %d procs: status %d: %s", procs, resp.StatusCode, out.Error)
		}
		if decErr != nil {
			return fmt.Errorf("scale %d procs: decode response: %w", procs, decErr)
		}

		row := scaleRow{
			Procs:            procs,
			Tasks:            tasks,
			Nodes:            procs,
			BodyBytes:        bodyBytes,
			WallSeconds:      wall.Seconds(),
			PlannerSeconds:   out.PlannerMillis / 1e3,
			PeakHeapBytes:    peak,
			HeapPerBodyByte:  float64(peak) / float64(bodyBytes),
			LocalityFraction: out.LocalityFraction,
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("  %-7d %-9d %9.1f MB %8.2fs %9.2fs %9.1f MB %8.2fx\n",
			row.Procs, row.Tasks, float64(row.BodyBytes)/(1<<20),
			row.WallSeconds, row.PlannerSeconds,
			float64(row.PeakHeapBytes)/(1<<20), row.HeapPerBodyByte)
	}
	if jsonPath == "" {
		return nil
	}
	if err := mergeBenchJSON(jsonPath, rep); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", jsonPath)
	return nil
}
