package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"opass/internal/httpapi"
	"opass/internal/telemetry"
)

// TestWriteScaleBody pins the generator: deterministic output, distinct
// replicas, and a body the streaming decoder accepts end to end.
func TestWriteScaleBody(t *testing.T) {
	var a, b bytes.Buffer
	n, err := writeScaleBody(&a, 8, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(a.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, a.Len())
	}
	if _, err := writeScaleBody(&b, 8, 80, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different bodies")
	}

	var req struct {
		Nodes     int   `json:"nodes"`
		ProcNodes []int `json:"proc_nodes"`
		Tasks     []struct {
			Inputs []struct {
				SizeMB   float64 `json:"size_mb"`
				Replicas []int   `json:"replicas"`
			} `json:"inputs"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(a.Bytes(), &req); err != nil {
		t.Fatalf("generated body is not valid JSON: %v", err)
	}
	if req.Nodes != 8 || len(req.ProcNodes) != 8 || len(req.Tasks) != 80 {
		t.Fatalf("body shape: nodes=%d procs=%d tasks=%d", req.Nodes, len(req.ProcNodes), len(req.Tasks))
	}
	for ti, task := range req.Tasks {
		reps := task.Inputs[0].Replicas
		if len(reps) != 3 || reps[0] == reps[1] || reps[0] == reps[2] || reps[1] == reps[2] {
			t.Fatalf("task %d replicas %v are not 3 distinct nodes", ti, reps)
		}
	}

	srv := httptest.NewServer(httpapi.NewHandler(httpapi.ServerOptions{
		Registry: telemetry.NewRegistry(),
	}))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", &a)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generated body rejected: %d", resp.StatusCode)
	}
}
