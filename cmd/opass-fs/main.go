// Command opass-fs is an hdfs-dfs-style shell over the simulated
// distributed file system: create a cluster, store files, inspect block
// placement, run the balancer and fsck, decommission nodes.
//
// Usage:
//
//	opass-fs -c "mkfs -nodes 8; put /data 640; stat /data"   # inline script
//	opass-fs < script.ofs                                     # script on stdin
//
// Commands are line- or semicolon-separated; run `opass-fs -c help` for the
// command reference. Sessions are deterministic given the mkfs seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"opass/internal/fsshell"
)

func main() {
	script := flag.String("c", "", "inline script (semicolon-separated commands)")
	strict := flag.Bool("strict", false, "stop at the first failing command")
	flag.Parse()

	sh := fsshell.New(os.Stdout)
	var input string
	if *script != "" {
		input = strings.ReplaceAll(*script, ";", "\n")
	} else {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opass-fs:", err)
			os.Exit(1)
		}
		input = string(data)
	}
	if _, err := sh.Run(strings.NewReader(input), *strict); err != nil {
		os.Exit(1)
	}
}
