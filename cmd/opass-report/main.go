// Command opass-report runs every paper experiment and writes a
// paper-vs-measured markdown report — the machine-generated counterpart of
// EXPERIMENTS.md, for archiving reproduction runs.
//
// Usage:
//
//	opass-report [-seed N] [-scale N] [-o report.md]
package main

import (
	"flag"
	"fmt"
	"os"

	"opass/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed")
	scale := flag.Int("scale", 1, "cluster-size divisor (1 = paper scale)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report, err := experiments.MarkdownReport(experiments.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "opass-report:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "opass-report:", err)
		os.Exit(1)
	}
}
