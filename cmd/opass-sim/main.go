// Command opass-sim runs one parallel data access simulation with explicit
// parameters and prints the resulting report — a workbench for exploring
// configurations beyond the paper's.
//
// Usage:
//
//	opass-sim [flags]
//
// Examples:
//
//	opass-sim -nodes 64 -chunks-per-proc 10 -strategy opass
//	opass-sim -nodes 32 -strategy rank -dynamic
//	opass-sim -nodes 16 -multi -strategy opass
package main

import (
	"flag"
	"fmt"
	"os"

	"opass"
	"opass/internal/core"
	"opass/internal/engine"
	"opass/internal/traceio"
	"opass/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 64, "cluster size (one process per node)")
	chunksPerProc := flag.Int("chunks-per-proc", 10, "tasks per process")
	chunkMB := flag.Float64("chunk-mb", 64, "chunk size in MB")
	repl := flag.Int("replication", 3, "replication factor")
	strategy := flag.String("strategy", "opass", "assignment strategy: opass | rank | random")
	dynamic := flag.Bool("dynamic", false, "use master/worker dynamic dispatch")
	multi := flag.Bool("multi", false, "multi-data tasks (30/20/10 MB inputs) instead of single chunks")
	seed := flag.Int64("seed", 42, "random seed")
	compare := flag.Bool("compare", false, "also run the rank baseline and print a comparison")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of a table")
	traceFile := flag.String("trace", "", "CSV task trace to replay (task_id, compute_s, input_mb...)")
	flag.Parse()

	var rep *opass.Report
	var err error
	if *traceFile != "" {
		rep, err = runTrace(*traceFile, *nodes, *seed, *dynamic)
	} else {
		rep, err = run(*nodes, *chunksPerProc, *chunkMB, *repl, opass.Strategy(*strategy), *dynamic, *multi, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "opass-sim:", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := traceio.WriteSummaryJSON(os.Stdout, rep.Raw()); err != nil {
			fmt.Fprintln(os.Stderr, "opass-sim:", err)
			os.Exit(1)
		}
		return
	}
	if !*compare {
		fmt.Print(rep.Table())
		return
	}
	base, err := run(*nodes, *chunksPerProc, *chunkMB, *repl, opass.StrategyRank, *dynamic, *multi, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opass-sim:", err)
		os.Exit(1)
	}
	fmt.Print(opass.Compare(base, rep))
}

func run(nodes, chunksPerProc int, chunkMB float64, repl int, strategy opass.Strategy, dynamic, multi bool, seed int64) (*opass.Report, error) {
	c, err := opass.NewClusterWithOptions(nodes, opass.Options{
		Replication: repl,
		ChunkMB:     chunkMB,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	var plan *opass.Plan
	if multi {
		n := nodes * chunksPerProc
		for name, sz := range map[string]float64{"/setA": 30, "/setB": 20, "/setC": 10} {
			sizes := make([]float64, n)
			for i := range sizes {
				sizes[i] = sz
			}
			if err := c.StorePieces(name, sizes); err != nil {
				return nil, err
			}
		}
		tasks := make([]opass.TaskSpec, n)
		for i := range tasks {
			tasks[i] = opass.TaskSpec{Inputs: []opass.PieceRef{
				{File: "/setA", Index: i},
				{File: "/setB", Index: i},
				{File: "/setC", Index: i},
			}}
		}
		plan, err = c.PlanMultiData(strategy, tasks)
	} else {
		if err := c.Store("/dataset", float64(nodes*chunksPerProc)*chunkMB); err != nil {
			return nil, err
		}
		plan, err = c.PlanSingleData(strategy, "/dataset")
	}
	if err != nil {
		return nil, err
	}
	if dynamic {
		plan = plan.AsDynamic()
	}
	return c.Run(plan)
}

// runTrace replays a CSV task trace through the greedy planner (which
// accepts mixed single-/multi-input tasks) on a fresh cluster.
func runTrace(path string, nodes int, seed int64, dynamic bool) (*opass.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tasks, err := workload.ParseTrace(f)
	if err != nil {
		return nil, err
	}
	rig, err := workload.TraceSpec{Nodes: nodes, Tasks: tasks, Seed: seed}.Build()
	if err != nil {
		return nil, err
	}
	a, err := (core.GreedyLocality{Seed: seed}).Assign(rig.Prob)
	if err != nil {
		return nil, err
	}
	var src engine.TaskSource = engine.NewListSource(a.Lists)
	if dynamic {
		sched, err := core.NewDynamicScheduler(rig.Prob, a)
		if err != nil {
			return nil, err
		}
		src = sched
	}
	res, err := engine.Run(engine.Options{
		Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob,
		ComputeTime: rig.Compute, Strategy: "trace-replay",
	}, src)
	if err != nil {
		return nil, err
	}
	return opass.ReportOf(res), nil
}
