// Command opass-verify checks the reproduction's headline claims end to end
// and prints one PASS/FAIL row per claim — a fast self-check that the
// simulated substrate still reproduces the paper's shapes on this machine,
// without running the full test suite.
//
// Usage:
//
//	opass-verify [-seed N] [-scale N]
//
// Exit status is non-zero if any claim fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"opass/internal/experiments"
)

type check struct {
	name  string
	claim string
	run   func(cfg experiments.Config) (bool, string)
}

func main() {
	seed := flag.Int64("seed", 42, "random seed")
	scale := flag.Int("scale", 2, "cluster-size divisor (1 = paper scale)")
	flag.Parse()
	cfg := experiments.Config{Seed: *seed, Scale: *scale}

	checks := []check{
		{
			name:  "sec3-locality-decay",
			claim: "P(X>5) matches the paper's quoted probabilities",
			run: func(cfg experiments.Config) (bool, string) {
				r := experiments.Fig3(cfg)
				got := r.PGreater5[128]
				return got > 0.20 && got < 0.23, fmt.Sprintf("P(X>5)|m=128 = %.4f (paper 0.2143)", got)
			},
		},
		{
			name:  "sec3-node-counts",
			claim: "expected node service counts match §III-B",
			run: func(cfg experiments.Config) (bool, string) {
				r := experiments.Fig3(cfg)
				ok := r.NodesAtMost1 > 9.5 && r.NodesAtMost1 < 13 && r.NodesAtLeast8 > 4.5 && r.NodesAtLeast8 < 8
				return ok, fmt.Sprintf("nodes<=1: %.1f (paper 11), nodes>=8: %.1f (paper 6)", r.NodesAtMost1, r.NodesAtLeast8)
			},
		},
		{
			name:  "fig1-imbalance",
			claim: "rank assignment produces hot and idle nodes",
			run: func(cfg experiments.Config) (bool, string) {
				r, err := experiments.Fig1(cfg)
				if err != nil {
					return false, err.Error()
				}
				ideal := len(r.Run.IOTimes) / r.Run.Nodes
				return r.MaxChunks > ideal && r.IdleNodes > 0,
					fmt.Sprintf("max=%d (ideal %d), idle=%d", r.MaxChunks, ideal, r.IdleNodes)
			},
		},
		{
			name:  "fig7c-single-data",
			claim: "Opass cuts the average single-data I/O time >= 2x",
			run: func(cfg experiments.Config) (bool, string) {
				r, err := experiments.Fig7cTrace(cfg)
				if err != nil {
					return false, err.Error()
				}
				return r.AvgRatio() >= 2 && r.Opass.Local >= 0.9,
					fmt.Sprintf("improvement %.2fx, locality %.0f%%", r.AvgRatio(), 100*r.Opass.Local)
			},
		},
		{
			name:  "fig8c-balance",
			claim: "Opass balances data served across nodes",
			run: func(cfg experiments.Config) (bool, string) {
				r, err := experiments.Fig7cTrace(cfg)
				if err != nil {
					return false, err.Error()
				}
				return r.Opass.Fairness > r.Baseline.Fairness && r.Opass.Fairness > 0.99,
					fmt.Sprintf("jain %.3f -> %.3f", r.Baseline.Fairness, r.Opass.Fairness)
			},
		},
		{
			name:  "fig9-multi-data",
			claim: "multi-data improvement exists but is partial",
			run: func(cfg experiments.Config) (bool, string) {
				r, err := experiments.Fig9Trace(cfg)
				if err != nil {
					return false, err.Error()
				}
				return r.AvgRatio() > 1.2 && r.Opass.Local < 0.95,
					fmt.Sprintf("improvement %.2fx, locality %.0f%%", r.AvgRatio(), 100*r.Opass.Local)
			},
		},
		{
			name:  "fig11-dynamic",
			claim: "Opass-guided master beats the random master",
			run: func(cfg experiments.Config) (bool, string) {
				r, err := experiments.Fig11Trace(cfg)
				if err != nil {
					return false, err.Error()
				}
				return r.AvgRatio() >= 1.5,
					fmt.Sprintf("improvement %.2fx (paper 2.7x at 64 nodes)", r.AvgRatio())
			},
		},
		{
			name:  "fig12-paraview",
			claim: "ParaView call times drop in mean and deviation",
			run: func(cfg experiments.Config) (bool, string) {
				r, err := experiments.Fig12(cfg)
				if err != nil {
					return false, err.Error()
				}
				return r.OpassIO.Mean < r.StockIO.Mean && r.OpassIO.StdDev < r.StockIO.StdDev,
					fmt.Sprintf("mean %.2fs->%.2fs, sd %.2f->%.2f",
						r.StockIO.Mean, r.OpassIO.Mean, r.StockIO.StdDev, r.OpassIO.StdDev)
			},
		},
		{
			name:  "overhead",
			claim: "planning costs under 1% of the data access it saves",
			run: func(cfg experiments.Config) (bool, string) {
				r, err := experiments.Overhead(cfg)
				if err != nil {
					return false, err.Error()
				}
				return r.OverheadRatio < 0.01, fmt.Sprintf("ratio %.5f%%", 100*r.OverheadRatio)
			},
		},
		{
			name:  "faults",
			claim: "jobs survive DataNode crashes via read failover",
			run: func(cfg experiments.Config) (bool, string) {
				r, err := experiments.FaultTolerance(cfg)
				if err != nil {
					return false, err.Error()
				}
				return len(r.Faulty.IOTimes) >= len(r.Healthy.IOTimes),
					fmt.Sprintf("%d reads completed, %d failed over", len(r.Faulty.IOTimes), r.Retries)
			},
		},
	}

	failures := 0
	for _, c := range checks {
		ok, detail := c.run(cfg)
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-4s %-22s %-55s %s\n", status, c.name, c.claim, detail)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "opass-verify: %d of %d checks failed\n", failures, len(checks))
		os.Exit(1)
	}
	fmt.Printf("all %d checks passed\n", len(checks))
}
