// Command opassd serves the Opass planners over HTTP. An application posts
// its block layout (from its namenode) and task list; opassd returns the
// locality-and-balance-optimized task→process assignment, or a full
// simulated execution forecast.
//
// Usage:
//
//	opassd [-addr :8700] [-log-format text|json] [-log-level debug|info|warn|error]
//	       [-quiet] [-drain-timeout 15s] [-max-inflight N] [-queue-wait 2s]
//	       [-request-timeout 55s] [-plan-cache-entries 4096] [-plan-cache-mb 64]
//	       [-plan-cache-ttl 5m]
//	       [-plan-cache-remote host:port] [-plan-cache-remote-timeout 250ms]
//	       [-plan-cache-remote-namespace opass1] [-plan-cache-remote-ttl 10m]
//	       [-max-body-mb 1024] [-max-nodes N] [-max-procs N] [-max-tasks N]
//	       [-max-inputs-per-task N] [-legacy-decode]
//
// Endpoints (see internal/httpapi):
//
//	GET  /healthz
//	GET  /metrics      Prometheus-style text exposition
//	POST /v1/plan
//	POST /v1/simulate
//
// Every request is stamped with an X-Request-Id and logged as one
// structured line. The expensive routes sit behind bounded admission:
// -max-inflight caps the work units (tasks + inputs) admitted per route at
// once, and a request that cannot be admitted within -queue-wait is shed
// with 429 + Retry-After. Admitted requests run under the -request-timeout
// deadline; expiry cancels the planner and the simulation cooperatively and
// answers 503.
//
// Identical plan requests are answered from a fingerprinted plan cache
// (concurrent identical requests share one planner run): -plan-cache-entries
// and -plan-cache-mb bound it, -plan-cache-ttl bounds entry age (0 means
// entries never expire), and -plan-cache-entries=0 disables caching. Cache
// effectiveness is visible at /metrics as opass_plan_cache_*.
//
// -plan-cache-remote points a fleet of opassd replicas at one shared
// memcached-protocol cache: a plan computed by any replica is published
// under its content-addressed fingerprint and adopted by the others, so a
// repeated request costs the fleet exactly one planner run. The backend is
// best-effort — timeouts and errors fall back to the local planner and are
// counted as opass_plan_cache_remote_errors_total. -plan-cache-remote-ttl
// bounds entry age on the backend (0 means no expiry) and
// -plan-cache-remote-namespace isolates fleets sharing one backend.
//
// Request admission limits are tunable: -max-body-mb bounds the request
// body, -max-nodes/-max-procs/-max-tasks/-max-inputs-per-task bound the
// decoded problem. Oversized requests are rejected early and cheaply — the
// streaming decoder enforces the caps incrementally, so a rejected request
// costs O(1) memory no matter how large its body claims to be.
// -legacy-decode restores the buffering decoder (diagnostic escape hatch).
//
// On SIGINT/SIGTERM the server drains the admission queues
// (queued requests get 503 immediately), stops accepting new connections,
// and waits for in-flight requests for up to -drain-timeout before exiting
// — deploys no longer drop work on the floor.
//
// Example:
//
//	opassd &
//	curl -s localhost:8700/v1/plan -d '{
//	  "nodes": 4,
//	  "tasks": [
//	    {"inputs": [{"size_mb": 64, "replicas": [0, 2]}]},
//	    {"inputs": [{"size_mb": 64, "replicas": [1, 3]}]}
//	  ]
//	}'
//	curl -s localhost:8700/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opass/internal/httpapi"
	"opass/internal/plancache"
	"opass/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8700", "listen address")
	logFormat := flag.String("log-format", "text", "request log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long to wait for in-flight requests on shutdown")
	maxInflight := flag.Int64("max-inflight", httpapi.DefaultMaxInflight,
		"admission capacity per route, in work units (tasks + inputs of concurrent requests)")
	queueWait := flag.Duration("queue-wait", httpapi.DefaultQueueWait,
		"how long a request may wait for admission before being shed with 429")
	requestTimeout := flag.Duration("request-timeout", httpapi.DefaultRequestTimeout,
		"per-request processing deadline; expiry cancels the work and answers 503")
	planCacheEntries := flag.Int("plan-cache-entries", httpapi.DefaultPlanCacheEntries,
		"maximum cached plans; 0 disables the plan cache entirely")
	planCacheMB := flag.Int("plan-cache-mb", httpapi.DefaultPlanCacheMB,
		"maximum memory the plan cache may hold, in MiB")
	planCacheTTL := flag.Duration("plan-cache-ttl", httpapi.DefaultPlanCacheTTL,
		"maximum age of a cached plan; 0 means cached plans never expire")
	remoteAddr := flag.String("plan-cache-remote", "",
		"host:port of a shared memcached-protocol plan cache; empty disables the shared tier")
	remoteTimeout := flag.Duration("plan-cache-remote-timeout", plancache.DefaultRemoteTimeout,
		"per-operation deadline for the shared plan cache; expiry falls back to the local planner")
	remoteNamespace := flag.String("plan-cache-remote-namespace", httpapi.DefaultRemoteTierNamespace,
		"key namespace on the shared plan cache; isolates fleets sharing one backend")
	remoteTTL := flag.Duration("plan-cache-remote-ttl", httpapi.DefaultRemoteTierTTL,
		"maximum age of a plan on the shared cache; 0 means entries never expire")
	maxBodyMB := flag.Int64("max-body-mb", httpapi.DefaultMaxBodyBytes>>20,
		"maximum request body size, in MiB")
	maxNodes := flag.Int("max-nodes", httpapi.DefaultMaxNodes, "maximum cluster nodes per request")
	maxProcs := flag.Int("max-procs", httpapi.DefaultMaxProcs, "maximum processes per request")
	maxTasks := flag.Int("max-tasks", httpapi.DefaultMaxTasks, "maximum tasks per request")
	maxInputs := flag.Int("max-inputs-per-task", httpapi.DefaultMaxInputsPerTask,
		"maximum inputs a single task may list")
	legacyDecode := flag.Bool("legacy-decode", false,
		"buffer and decode request bodies in one piece instead of streaming")
	flag.Parse()

	// Map the CLI's "0 disables / 0 never expires" convention onto the
	// ServerOptions convention, where 0 means "use the default" and negative
	// values carry the disable/never-expire meanings.
	entriesOpt := *planCacheEntries
	if entriesOpt <= 0 {
		entriesOpt = -1
	}
	ttlOpt := *planCacheTTL
	if ttlOpt <= 0 {
		ttlOpt = -1
	}
	remoteTTLOpt := *remoteTTL
	if remoteTTLOpt <= 0 {
		remoteTTLOpt = -1
	}

	var tier plancache.Tier
	var remote *plancache.Remote
	if *remoteAddr != "" {
		remote = plancache.NewRemote(*remoteAddr, plancache.RemoteOptions{Timeout: *remoteTimeout})
		defer remote.Close()
		tier = remote
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opassd:", err)
		os.Exit(2)
	}
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}

	api := httpapi.NewServer(httpapi.ServerOptions{
		Registry:            telemetry.NewRegistry(),
		Logger:              reqLogger,
		MaxInflight:         *maxInflight,
		QueueWait:           *queueWait,
		RequestTimeout:      *requestTimeout,
		PlanCacheEntries:    entriesOpt,
		PlanCacheMB:         *planCacheMB,
		PlanCacheTTL:        ttlOpt,
		RemoteTier:          tier,
		RemoteTierNamespace: *remoteNamespace,
		RemoteTierTTL:       remoteTTLOpt,
		LegacyDecode:        *legacyDecode,
		Limits: httpapi.RequestLimits{
			BodyBytes:     *maxBodyMB << 20,
			Nodes:         *maxNodes,
			Procs:         *maxProcs,
			Tasks:         *maxTasks,
			InputsPerTask: *maxInputs,
		},
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("opassd listening", slog.String("addr", *addr))

	select {
	case err := <-errc:
		// Listener failed before any signal (port in use, etc.).
		logger.Error("serve failed", slog.Any("error", err))
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	logger.Info("shutting down, draining in-flight requests",
		slog.Duration("drain_timeout", *drainTimeout))
	// Shed the admission queues first: requests still waiting for a slot get
	// an immediate 503 instead of being strung along into the drain window.
	api.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("drain timeout exceeded, closing remaining connections",
			slog.Any("error", err))
		srv.Close()
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server exited abnormally", slog.Any("error", err))
		os.Exit(1)
	}
	logger.Info("opassd stopped cleanly")
}

// buildLogger constructs the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q", format)
	}
}
