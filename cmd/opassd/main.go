// Command opassd serves the Opass planners over HTTP. An application posts
// its block layout (from its namenode) and task list; opassd returns the
// locality-and-balance-optimized task→process assignment, or a full
// simulated execution forecast.
//
// Usage:
//
//	opassd [-addr :8700]
//
// Endpoints (see internal/httpapi):
//
//	GET  /healthz
//	POST /v1/plan
//	POST /v1/simulate
//
// Example:
//
//	opassd &
//	curl -s localhost:8700/v1/plan -d '{
//	  "nodes": 4,
//	  "tasks": [
//	    {"inputs": [{"size_mb": 64, "replicas": [0, 2]}]},
//	    {"inputs": [{"size_mb": 64, "replicas": [1, 3]}]}
//	  ]
//	}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"opass/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8700", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	log.Printf("opassd listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
