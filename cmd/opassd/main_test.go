package main

import "testing"

func TestBuildLogger(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		for _, level := range []string{"debug", "info", "warn", "error"} {
			if _, err := buildLogger(format, level); err != nil {
				t.Errorf("buildLogger(%q, %q): %v", format, level, err)
			}
		}
	}
	if _, err := buildLogger("xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := buildLogger("text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}
