package opass_test

import (
	"fmt"

	"opass"
)

// The quickstart from the README: store a replicated dataset, plan with
// Opass, execute, and inspect locality.
func Example() {
	c, err := opass.NewClusterWithOptions(16, opass.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	if err := c.Store("/dataset", 16*10*64); err != nil { // 160 chunks x 64 MB
		panic(err)
	}
	plan, err := c.PlanSingleData(opass.StrategyOpass, "/dataset")
	if err != nil {
		panic(err)
	}
	report, err := c.Run(plan)
	if err != nil {
		panic(err)
	}
	fmt.Printf("planned locality: %.0f%%\n", 100*plan.Locality())
	fmt.Printf("executed locality: %.0f%%\n", 100*report.LocalFraction)
	fmt.Printf("every node served %.0f MB\n", report.Served.Mean)
	// Output:
	// planned locality: 100%
	// executed locality: 100%
	// every node served 640 MB
}

// Comparing Opass against the rank-order baseline on identical placements.
func ExampleCompare() {
	run := func(s opass.Strategy) *opass.Report {
		c, _ := opass.NewClusterWithOptions(8, opass.Options{Seed: 2})
		c.Store("/d", 8*10*64)
		plan, _ := c.PlanSingleData(s, "/d")
		rep, _ := c.Run(plan)
		return rep
	}
	base, opt := run(opass.StrategyRank), run(opass.StrategyOpass)
	fmt.Println(base.IO.Mean > 2*opt.IO.Mean) // Opass at least halves the average I/O time
	// Output:
	// true
}

// Dynamic master/worker execution with irregular compute times (§IV-D).
func ExamplePlan_AsDynamic() {
	c, _ := opass.NewClusterWithOptions(8, opass.Options{Seed: 3})
	c.Store("/blastdb", 8*5*64)
	plan, _ := c.PlanSingleData(opass.StrategyOpass, "/blastdb")
	rep, err := c.RunWithOptions(plan.AsDynamic(), opass.RunOptions{
		ComputeTime: func(task int) float64 { return float64(task%3) * 0.2 },
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.TasksRun)
	// Output:
	// 40
}

// Multi-input tasks (Algorithm 1): each comparison reads three datasets.
func ExampleCluster_PlanMultiData() {
	c, _ := opass.NewClusterWithOptions(8, opass.Options{Seed: 4})
	n := 24
	for _, sp := range []struct {
		file string
		mb   float64
	}{{"/human", 30}, {"/mouse", 20}, {"/chimp", 10}} {
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = sp.mb
		}
		c.StorePieces(sp.file, sizes)
	}
	tasks := make([]opass.TaskSpec, n)
	for i := range tasks {
		tasks[i].Inputs = []opass.PieceRef{
			{File: "/human", Index: i}, {File: "/mouse", Index: i}, {File: "/chimp", Index: i},
		}
	}
	plan, err := c.PlanMultiData(opass.StrategyOpass, tasks)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Locality() > 0.4) // the largest input is usually co-located
	// Output:
	// true
}
