// Dynamic: the §IV-D mpiBLAST scenario. Gene-comparison tasks have
// irregular, input-dependent execution times, so the application uses a
// master process that hands tasks to workers as they go idle. The stock
// master is placement-oblivious; Opass gives the master per-worker
// preferred lists and a locality-aware stealing rule.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"opass"
	"opass/internal/workload"
)

const (
	nodes            = 16
	fragmentsPerProc = 10
)

func main() {
	fmt.Println("Dynamic master/worker sequence search on a", nodes, "node cluster")
	fmt.Printf("%d database fragments, irregular (log-normal) search times\n\n",
		nodes*fragmentsPerProc)

	baseline := simulate(opass.StrategyRank)   // random dispatch baseline
	optimized := simulate(opass.StrategyOpass) // §IV-D guided dispatch

	fmt.Println()
	fmt.Println(opass.Compare(baseline, optimized))
	fmt.Println("the master still balances load across slow and fast tasks, but with")
	fmt.Println("Opass each dispatched task is one the idle worker already holds —")
	fmt.Println("reads stop competing for remote disks (the paper measures 2.7x here).")
}

func simulate(strategy opass.Strategy) *opass.Report {
	cluster, err := opass.NewClusterWithOptions(nodes, opass.Options{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	n := nodes * fragmentsPerProc
	if err := cluster.Store("/blastdb/nt", float64(n)*64); err != nil {
		log.Fatal(err)
	}
	plan, err := cluster.PlanSingleData(strategy, "/blastdb/nt")
	if err != nil {
		log.Fatal(err)
	}
	// Every strategy sees identical per-fragment search costs.
	search := workload.LogNormalCompute(n, 0.5, 1.0, 1234)
	report, err := cluster.RunWithOptions(plan.AsDynamic(), opass.RunOptions{ComputeTime: search})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-7s %s\n", strategy, report)
	return report
}
