// Genomics: parallel multi-data access, the §IV-C scenario. Comparing the
// genome sequences of humans, mice and chimpanzees requires each comparison
// task to read three inputs that live in three different datasets — and, on
// HDFS, usually on three different nodes. Opass's Algorithm 1 assigns each
// task to the process co-located with the most of its data.
//
// Run with:
//
//	go run ./examples/genomics
package main

import (
	"fmt"
	"log"

	"opass"
)

const (
	nodes        = 16
	tasksPerProc = 10
)

func main() {
	fmt.Println("Cross-species genome comparison on a", nodes, "node cluster")
	fmt.Printf("each task reads 30 MB human + 20 MB mouse + 10 MB chimp sequence data\n\n")

	baseline := simulate(opass.StrategyRank)
	optimized := simulate(opass.StrategyOpass)

	fmt.Println()
	fmt.Println(opass.Compare(baseline, optimized))
	fmt.Println("with three inputs per task a full matching is impossible — part of")
	fmt.Println("every task's data must travel — so the improvement is real but")
	fmt.Println("smaller than in the single-input experiment, exactly as §V-A2 notes.")
}

func simulate(strategy opass.Strategy) *opass.Report {
	cluster, err := opass.NewClusterWithOptions(nodes, opass.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	n := nodes * tasksPerProc
	// Three species datasets, one fragment per comparison task each.
	species := []struct {
		file string
		mb   float64
	}{
		{"/genomes/human", 30},
		{"/genomes/mouse", 20},
		{"/genomes/chimp", 10},
	}
	for _, sp := range species {
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = sp.mb
		}
		if err := cluster.StorePieces(sp.file, sizes); err != nil {
			log.Fatal(err)
		}
	}
	// Task i compares fragment i of all three species.
	tasks := make([]opass.TaskSpec, n)
	for i := range tasks {
		for _, sp := range species {
			tasks[i].Inputs = append(tasks[i].Inputs, opass.PieceRef{File: sp.file, Index: i})
		}
	}
	plan, err := cluster.PlanMultiData(strategy, tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-7s planned locality: %5.1f%% of task input bytes co-located\n",
		strategy, 100*plan.Locality())
	report, err := cluster.Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	return report
}
