// mpiBLAST: the paper's §IV-D application written as an actual
// message-passing program on the repository's MPI-flavored runtime — rank 0
// is the master, every other rank a worker, and task dispatch happens over
// Send/Recv exactly like mpiBLAST's scheduler loop. The only difference
// between the two runs is what the master consults when a worker asks for
// work: nothing (random fragment) or Opass's per-worker guideline lists A*.
//
// Run with:
//
//	go run ./examples/mpiblast
package main

import (
	"fmt"
	"log"
	"sync"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/metrics"
	"opass/internal/mpi"
	"opass/internal/workload"
)

const (
	nodes     = 17 // rank 0 = master, 16 workers
	fragments = 160
	tagWork   = 1 // worker -> master: give me work
	tagTask   = 2 // master -> worker: fragment ID, or -1 to stop
)

func main() {
	fmt.Printf("mpiBLAST-style search: %d fragments, %d workers, master/worker over MPI messages\n\n",
		fragments, nodes-1)
	search := workload.LogNormalCompute(fragments, 0.5, 1.0, 7)

	random := run(false, search)
	guided := run(true, search)

	mr := metrics.Summarize(random.ioTimes)
	mo := metrics.Summarize(guided.ioTimes)
	fmt.Printf("%-16s %10s %10s %10s %10s\n", "master", "job time", "avg I/O", "max I/O", "local")
	fmt.Printf("%-16s %9.1fs %9.2fs %9.2fs %9.1f%%\n", "random", random.makespan, mr.Mean, mr.Max, 100*random.localFrac)
	fmt.Printf("%-16s %9.1fs %9.2fs %9.2fs %9.1f%%\n", "opass (§IV-D)", guided.makespan, mo.Mean, mo.Max, 100*guided.localFrac)
	fmt.Printf("\navg I/O improvement: %.2fx (the paper reports 2.7x at 64 nodes)\n", mr.Mean/mo.Mean)
}

type outcome struct {
	makespan  float64
	ioTimes   []float64
	localFrac float64
}

func run(useOpass bool, search func(int) float64) outcome {
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: 2015})
	db, err := fs.CreateChunks("/blastdb/nt", uniform(fragments, 64))
	if err != nil {
		log.Fatal(err)
	}
	ranks := make([]int, nodes)
	for i := range ranks {
		ranks[i] = i
	}
	world := mpi.NewWorld(topo, fs, ranks)

	// The master consults a scheduler: Opass lists or a random pool.
	var mu sync.Mutex
	var next func(worker int) (int, bool)
	prob := problem(fs, db.Chunks)
	if useOpass {
		plan, err := (core.SingleData{Seed: 1}).Assign(prob)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := core.NewDynamicScheduler(prob, plan)
		if err != nil {
			log.Fatal(err)
		}
		next = sched.Next
	} else {
		next = core.NewRandomDispatcher(prob, 1).Next
	}

	end, err := world.Run(func(r *mpi.Rank) {
		if r.ID() == 0 {
			master(r, &mu, next)
			return
		}
		worker(r, db.Chunks, search)
	})
	if err != nil {
		log.Fatal(err)
	}
	var times []float64
	var localMB, totalMB float64
	for _, rec := range world.Reads() {
		times = append(times, rec.End-rec.Start)
		totalMB += rec.SizeMB
		if rec.Local {
			localMB += rec.SizeMB
		}
	}
	return outcome{makespan: end, ioTimes: times, localFrac: localMB / totalMB}
}

func master(r *mpi.Rank, mu *sync.Mutex, next func(int) (int, bool)) {
	stopped := 0
	for stopped < r.Size()-1 {
		worker := int(r.Recv(mpi.AnySource, tagWork))
		mu.Lock()
		task, ok := next(worker - 1) // scheduler process i == worker rank i+1
		mu.Unlock()
		if !ok {
			r.Send(worker, tagTask, 0.001, -1)
			stopped++
			continue
		}
		r.Send(worker, tagTask, 0.001, float64(task))
	}
}

func worker(r *mpi.Rank, chunks []dfs.ChunkID, search func(int) float64) {
	for {
		r.Send(0, tagWork, 0.001, float64(r.ID()))
		task := int(r.Recv(0, tagTask))
		if task < 0 {
			return
		}
		r.ReadChunk(chunks[task])
		r.Compute(search(task))
	}
}

// problem maps fragments to single-input tasks with one process per worker
// rank; the scheduler's process i is worker rank i+1 (on node i+1).
func problem(fs *dfs.FileSystem, chunks []dfs.ChunkID) *core.Problem {
	procNode := make([]int, nodes-1)
	for i := range procNode {
		procNode[i] = i + 1
	}
	p := &core.Problem{ProcNode: procNode, FS: fs}
	for i, c := range chunks {
		p.Tasks = append(p.Tasks, core.Task{ID: i, Inputs: []core.Input{{Chunk: c, SizeMB: 64}}})
	}
	return p
}

func uniform(n int, size float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = size
	}
	return out
}
