// ParaView: the §V-B application experiment. A multi-block protein dataset
// (640 VTK XML blocks of 56 MB) is rendered in 10 time steps by parallel
// data servers; Opass is hooked into the reader's data-piece assignment,
// exactly where the paper patches vtkXMLCompositeDataReader.ReadXMLData.
//
// Run with:
//
//	go run ./examples/paraview           # paper scale: 64 nodes
//	go run ./examples/paraview -nodes 16 # reduced scale
package main

import (
	"flag"
	"fmt"
	"log"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/metrics"
	"opass/internal/paraview"
)

func main() {
	nodes := flag.Int("nodes", 64, "data servers (one per node)")
	seed := flag.Int64("seed", 42, "placement seed")
	flag.Parse()

	blocks := 10 * *nodes // paper: 640 blocks for 64 nodes
	fmt.Printf("ParaView multi-block rendering: %d blocks x 56 MB, %d data servers, 10 steps\n\n",
		blocks, *nodes)

	stock := run(*nodes, blocks, *seed, core.RankStatic{})
	withOpass := run(*nodes, blocks, *seed, core.SingleData{Seed: *seed})

	ss, so := metrics.Summarize(stock.CallTimes), metrics.Summarize(withOpass.CallTimes)
	fmt.Printf("vtkFileSeriesReader call times (paper: 5.48s sd 1.339 -> 3.07s sd 0.316):\n")
	fmt.Printf("  stock ParaView : mean %.2fs  sd %.3f  min %.2fs  max %.2fs\n", ss.Mean, ss.StdDev, ss.Min, ss.Max)
	fmt.Printf("  with Opass     : mean %.2fs  sd %.3f  min %.2fs  max %.2fs\n", so.Mean, so.StdDev, so.Min, so.Max)
	fmt.Printf("\ntotal execution (paper: 167s -> 98s):\n")
	fmt.Printf("  stock ParaView : %.0f s\n", stock.TotalSeconds)
	fmt.Printf("  with Opass     : %.0f s\n", withOpass.TotalSeconds)
	fmt.Printf("\nper-step locality with Opass:")
	for _, step := range withOpass.Steps {
		fmt.Printf(" %.0f%%", 100*step.LocalFraction)
	}
	fmt.Println()
}

func run(nodes, blocks int, seed int64, assigner core.Assigner) *paraview.PipelineResult {
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed})
	ds, err := paraview.CreateDataset(fs, "/protein", blocks, 56)
	if err != nil {
		log.Fatal(err)
	}
	cfg := paraview.DefaultConfig(assigner)
	cfg.BlocksPerStep = nodes
	res, err := paraview.RunPipeline(topo, fs, ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
