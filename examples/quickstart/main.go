// Quickstart: store a dataset on a simulated 16-node HDFS cluster, plan
// parallel reads with Opass and with the rank-order baseline, execute both,
// and compare the paper's headline metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"opass"
)

func main() {
	const (
		nodes         = 16
		chunksPerProc = 10 // the paper's ratio: ten 64 MB chunks per process
	)

	// Each strategy gets its own identically-seeded cluster so that chunk
	// placement — and therefore the comparison — is paired.
	baseline := simulate(opass.StrategyRank, nodes, chunksPerProc)
	optimized := simulate(opass.StrategyOpass, nodes, chunksPerProc)

	fmt.Println("Parallel single-data access on a", nodes, "node cluster")
	fmt.Println()
	fmt.Println(opass.Compare(baseline, optimized))
	fmt.Println("without Opass most reads are remote and some disks serve many")
	fmt.Println("concurrent requests; with Opass the max-flow matching makes every")
	fmt.Println("read local and every node serve the same amount of data.")
}

func simulate(strategy opass.Strategy, nodes, chunksPerProc int) *opass.Report {
	cluster, err := opass.NewClusterWithOptions(nodes, opass.Options{Seed: 2015})
	if err != nil {
		log.Fatal(err)
	}
	// One file of nodes*chunksPerProc chunks, 64 MB each, 3-way replicated
	// onto random nodes — exactly how HDFS scatters a dataset.
	if err := cluster.Store("/dataset", float64(nodes*chunksPerProc)*64); err != nil {
		log.Fatal(err)
	}
	plan, err := cluster.PlanSingleData(strategy, "/dataset")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-7s planned locality: %5.1f%%\n", strategy, 100*plan.Locality())
	report, err := cluster.Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	return report
}
