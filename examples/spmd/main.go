// SPMD: the §II-B static-assignment pattern as an actual message-passing
// program. Rank 0 reads the meta-file and broadcasts the chunk list; every
// rank computes its interval with the paper's formula
//
//	[ i*n/m , (i+1)*n/m )
//
// reads its chunks, and the job's I/O statistics are reduced back to rank 0
// — first with the rank-interval assignment (stock ParaView), then with the
// intervals remapped by Opass's matching, showing the fix drops in without
// changing the program's structure.
//
// Run with:
//
//	go run ./examples/spmd
package main

import (
	"fmt"
	"log"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/metrics"
	"opass/internal/mpi"
)

const (
	nodes         = 16
	chunksPerRank = 10
)

func main() {
	fmt.Printf("SPMD read of %d chunks by %d ranks (meta-file broadcast, interval assignment, reduce)\n\n",
		nodes*chunksPerRank, nodes)
	baseline := run(false)
	optimized := run(true)
	fmt.Printf("%-14s %10s %10s %10s\n", "assignment", "job time", "avg I/O", "local")
	print("rank intervals", baseline)
	print("opass matching", optimized)
	fmt.Println("\nthe program is identical in both runs; only the task list each rank")
	fmt.Println("receives differs — exactly how the paper drops Opass into ParaView.")
}

type outcome struct {
	makespan float64
	io       metrics.Summary
	local    float64
}

func print(name string, o outcome) {
	fmt.Printf("%-14s %9.1fs %9.2fs %9.1f%%\n", name, o.makespan, o.io.Mean, 100*o.local)
}

func run(useOpass bool) outcome {
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: 4242})
	meta, err := fs.Create("/dataset", float64(nodes*chunksPerRank)*64)
	if err != nil {
		log.Fatal(err)
	}
	ranks := make([]int, nodes)
	for i := range ranks {
		ranks[i] = i
	}

	// With Opass, rank 0 plans the assignment up front (it would query the
	// namenode for block locations, as §IV-A describes) and scatters each
	// rank's task count... here each rank just looks up its own list, since
	// the lists live in shared test memory; the reads themselves still flow
	// through the simulated cluster.
	var lists [][]int
	if useOpass {
		prob, err := core.SingleDataProblem(fs, []string{"/dataset"}, ranks)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := (core.SingleData{Seed: 1}).Assign(prob)
		if err != nil {
			log.Fatal(err)
		}
		lists = plan.Lists
	}

	world := mpi.NewWorld(topo, fs, ranks)
	end, err := world.Run(func(r *mpi.Rank) {
		// Rank 0 "reads the meta-file" and broadcasts the chunk count.
		n := int(r.Bcast(0, 1 /*1 MB meta-file*/, float64(len(meta.Chunks))))
		var mine []int
		if lists != nil {
			mine = lists[r.ID()]
		} else {
			lo := r.ID() * n / r.Size()
			hi := (r.ID() + 1) * n / r.Size()
			for i := lo; i < hi; i++ {
				mine = append(mine, i)
			}
		}
		for _, i := range mine {
			r.ReadChunk(meta.Chunks[i])
		}
		r.Barrier()
		r.Reduce(0, 0.001, float64(len(mine)), mpi.Sum)
	})
	if err != nil {
		log.Fatal(err)
	}

	var times []float64
	var localMB, totalMB float64
	for _, rec := range world.Reads() {
		times = append(times, rec.End-rec.Start)
		totalMB += rec.SizeMB
		if rec.Local {
			localMB += rec.SizeMB
		}
	}
	return outcome{makespan: end, io: metrics.Summarize(times), local: localMB / totalMB}
}
