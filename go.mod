module opass

go 1.22
