// Package advisor closes the telemetry→placement loop: it reads the
// namenode's decayed per-chunk access accounting (dfs.EnableAccessStats),
// classifies chunks hot/warm/cold by popularity degree — a chunk's decayed
// served megabytes relative to the fleet mean, following the weighted
// dynamic-replication literature — and adjusts replication to match demand.
// Hot chunks the matcher keeps placing remotely gain a replica on the node
// whose processes keep pulling them over the network; cold chunks shed their
// excess copies from the most-loaded holder. Every pass stays within a
// storage budget and never trims a chunk below its redundancy floor.
//
// The advisor implements engine.AdvisorTicker, so an engine run drives it at
// a fixed virtual-time interval; a tick that changed placement makes the
// engine replan its pending backlog against the new replica sets (plan-cache
// invalidation rides on the per-chunk placement epochs the dfs machinery
// already bumps on every mutation).
package advisor

import (
	"fmt"
	"sort"

	"opass/internal/dfs"
	"opass/internal/telemetry"
)

// Metric family names recorded when Options.Metrics is set.
const (
	// MetricTicks counts advisor passes.
	MetricTicks = "opass_advisor_ticks_total"
	// MetricReplicasAdded / MetricReplicasRemoved count replica copies
	// created for hot chunks and trimmed from cold chunks.
	MetricReplicasAdded   = "opass_advisor_replicas_added_total"
	MetricReplicasRemoved = "opass_advisor_replicas_removed_total"
	// MetricTargetsRaised / MetricTargetsLowered count replication-target
	// (setrep) changes in each direction.
	MetricTargetsRaised  = "opass_advisor_targets_raised_total"
	MetricTargetsLowered = "opass_advisor_targets_lowered_total"
	// MetricHot / MetricWarm / MetricCold gauge the classification of the
	// fleet at the last tick.
	MetricHot  = "opass_advisor_hot_chunks"
	MetricWarm = "opass_advisor_warm_chunks"
	MetricCold = "opass_advisor_cold_chunks"
	// MetricStoredMB gauges the cluster's stored megabytes after the last
	// tick; MetricBudgetMB the budget it is held under.
	MetricStoredMB = "opass_advisor_stored_mb"
	MetricBudgetMB = "opass_advisor_budget_mb"
)

// Options configures an Advisor.
type Options struct {
	// HotFactor is the popularity-degree threshold above which a chunk is
	// hot: score >= HotFactor * fleet mean. Must exceed 1. Default 2.
	HotFactor float64
	// ColdFactor is the popularity-degree threshold at or below which a
	// chunk is cold: score <= ColdFactor * fleet mean. Must be in [0, 1).
	// Default 0.25.
	ColdFactor float64
	// MinReplicas floors every chunk's replica count: the advisor never
	// trims below it. Must be at least 1. Default 2.
	MinReplicas int
	// MaxReplicas caps how many copies a hot chunk may gain (further capped
	// by the live-node count). Must be at least MinReplicas. Default 5.
	MaxReplicas int
	// BudgetMB bounds the cluster's total stored megabytes: the advisor
	// adds no replica that would push dfs.TotalStoredMB past it. Default:
	// the stored megabytes at New (adaptive replication then only trades
	// space, never grows the bill).
	BudgetMB float64
	// MaxActions caps replica additions and removals per tick (each
	// direction separately), so one pass never storms the cluster. Default 4.
	MaxActions int
	// Metrics, when non-nil, receives the opass_advisor_* series.
	Metrics *telemetry.Registry
}

// Stats is the advisor's cumulative action count plus the fleet
// classification at the last tick.
type Stats struct {
	Ticks           int
	ReplicasAdded   int
	ReplicasRemoved int
	TargetsRaised   int
	TargetsLowered  int
	Hot, Warm, Cold int
}

// Advisor is a periodic replication policy over one file system. It is not
// safe for concurrent use; the engine drives Tick sequentially in
// virtual-time order, matching the namenode's single-goroutine discipline.
type Advisor struct {
	fs    *dfs.FileSystem
	opts  Options
	stats Stats
}

// New builds an advisor over fs. Access accounting must already be enabled
// (the half-life is workload-dependent, so the caller owns that choice).
func New(fs *dfs.FileSystem, opts Options) (*Advisor, error) {
	if !fs.AccessStatsEnabled() {
		return nil, fmt.Errorf("advisor: access accounting disabled; call EnableAccessStats first")
	}
	if opts.HotFactor == 0 {
		opts.HotFactor = 2
	}
	if opts.HotFactor <= 1 {
		return nil, fmt.Errorf("advisor: hot factor %v must exceed 1", opts.HotFactor)
	}
	if opts.ColdFactor == 0 {
		opts.ColdFactor = 0.25
	}
	if opts.ColdFactor < 0 || opts.ColdFactor >= 1 {
		return nil, fmt.Errorf("advisor: cold factor %v must be in [0, 1)", opts.ColdFactor)
	}
	if opts.MinReplicas == 0 {
		opts.MinReplicas = 2
	}
	if opts.MinReplicas < 1 {
		return nil, fmt.Errorf("advisor: min replicas %d must be at least 1", opts.MinReplicas)
	}
	if opts.MaxReplicas == 0 {
		opts.MaxReplicas = 5
	}
	if opts.MaxReplicas < opts.MinReplicas {
		return nil, fmt.Errorf("advisor: max replicas %d below min %d", opts.MaxReplicas, opts.MinReplicas)
	}
	if opts.BudgetMB == 0 {
		opts.BudgetMB = fs.TotalStoredMB()
	}
	if opts.BudgetMB < 0 {
		return nil, fmt.Errorf("advisor: budget %v MB must be positive", opts.BudgetMB)
	}
	if opts.MaxActions == 0 {
		opts.MaxActions = 4
	}
	if opts.MaxActions < 0 {
		return nil, fmt.Errorf("advisor: max actions %d must be positive", opts.MaxActions)
	}
	if m := opts.Metrics; m != nil {
		m.Help(MetricTicks, "Advisor passes over the access accounting.")
		m.Help(MetricReplicasAdded, "Replica copies created for hot chunks.")
		m.Help(MetricReplicasRemoved, "Replica copies trimmed from cold chunks.")
		m.Help(MetricTargetsRaised, "Replication targets raised (setrep up).")
		m.Help(MetricTargetsLowered, "Replication targets lowered (setrep down).")
		m.Help(MetricHot, "Chunks classified hot at the last tick.")
		m.Help(MetricWarm, "Chunks classified warm at the last tick.")
		m.Help(MetricCold, "Chunks classified cold at the last tick.")
		m.Help(MetricStoredMB, "Cluster stored MB after the last tick.")
		m.Help(MetricBudgetMB, "Storage budget the advisor holds the cluster under.")
		m.Gauge(MetricBudgetMB).Set(opts.BudgetMB)
	}
	return &Advisor{fs: fs, opts: opts}, nil
}

// Stats returns the cumulative action counts and last-tick classification.
func (a *Advisor) Stats() Stats { return a.stats }

// chunkState is one live chunk's classification input.
type chunkState struct {
	id    dfs.ChunkID
	score float64 // decayed served MB
	st    dfs.AccessStats
}

// Tick implements engine.AdvisorTicker: run one advisory pass at simulated
// time now and report whether placement changed (so the engine replans its
// pending backlog). A pass first trims cold chunks — freeing budget — then
// promotes hot chunks that still see remote demand, placing each new copy on
// the remote reader pulling the most megabytes.
func (a *Advisor) Tick(now float64) bool {
	fs := a.fs
	a.stats.Ticks++

	chunks := a.liveChunks(now)
	var mean float64
	for _, c := range chunks {
		mean += c.score
	}
	if len(chunks) > 0 {
		mean /= float64(len(chunks))
	}

	changed := false
	var hot, cold []chunkState
	nHot, nWarm, nCold := 0, 0, 0
	if mean > 0 {
		for _, c := range chunks {
			switch pd := c.score / mean; {
			case pd >= a.opts.HotFactor:
				nHot++
				if c.st.RemoteMB > 1e-6 {
					hot = append(hot, c)
				}
			case pd <= a.opts.ColdFactor:
				nCold++
				cold = append(cold, c)
			default:
				nWarm++
			}
		}
		if a.trimCold(cold) {
			changed = true
		}
		if a.promoteHot(hot, now) {
			changed = true
		}
	}

	a.stats.Hot, a.stats.Warm, a.stats.Cold = nHot, nWarm, nCold
	if m := a.opts.Metrics; m != nil {
		m.Counter(MetricTicks).Inc()
		m.Gauge(MetricHot).Set(float64(nHot))
		m.Gauge(MetricWarm).Set(float64(nWarm))
		m.Gauge(MetricCold).Set(float64(nCold))
		m.Gauge(MetricStoredMB).Set(fs.TotalStoredMB())
	}
	return changed
}

// liveChunks collects every chunk reachable from the namespace with its
// decayed access scores. Deleted chunks never appear (their files are gone).
func (a *Advisor) liveChunks(now float64) []chunkState {
	var out []chunkState
	for _, name := range a.fs.Files() {
		f, err := a.fs.Stat(name)
		if err != nil {
			continue // renamed or deleted between Files and Stat; skip
		}
		for _, id := range f.Chunks {
			st := a.fs.Access(id, now)
			out = append(out, chunkState{id: id, score: st.ServedMB, st: st})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// trimCold sheds one copy from each of the coldest over-replicated chunks,
// up to MaxActions. The replica leaves the most-loaded holder, so trimming
// doubles as a nudge toward balanced utilization. The setrep-down comes
// first so the intent is declared even if the physical remove fails.
func (a *Advisor) trimCold(cold []chunkState) bool {
	sort.Slice(cold, func(i, j int) bool {
		if cold[i].score != cold[j].score {
			return cold[i].score < cold[j].score
		}
		return cold[i].id < cold[j].id
	})
	changed := false
	actions := 0
	for _, c := range cold {
		if actions >= a.opts.MaxActions {
			break
		}
		ch := a.fs.Chunk(c.id)
		if len(ch.Replicas) <= a.opts.MinReplicas {
			continue
		}
		if ch.ReplicationTarget() > len(ch.Replicas)-1 {
			if err := a.fs.SetReplicationTarget(c.id, len(ch.Replicas)-1); err != nil {
				continue
			}
			a.stats.TargetsLowered++
			a.count(MetricTargetsLowered)
			changed = true
		}
		victim := ch.Replicas[0]
		for _, r := range ch.Replicas[1:] {
			if a.fs.StoredMB(r) > a.fs.StoredMB(victim) {
				victim = r
			}
		}
		if err := a.fs.RemoveReplica(c.id, victim); err != nil {
			continue
		}
		a.stats.ReplicasRemoved++
		a.count(MetricReplicasRemoved)
		changed = true
		actions++
	}
	return changed
}

// promoteHot raises the replication of the hottest remote-heavy chunks, up
// to MaxActions and within the storage budget. On a multi-rack cluster each
// new copy lands in the hottest remote *rack* lacking one (see
// promotionTarget); otherwise it lands on the node whose processes pulled
// the most remote megabytes (the head of RemoteReaders), with the
// least-loaded live non-holder as fallback.
func (a *Advisor) promoteHot(hot []chunkState, now float64) bool {
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].st.RemoteMB != hot[j].st.RemoteMB {
			return hot[i].st.RemoteMB > hot[j].st.RemoteMB
		}
		return hot[i].id < hot[j].id
	})
	live := a.fs.LiveNodes()
	alive := make(map[int]bool, len(live))
	for _, n := range live {
		alive[n] = true
	}
	cap := a.opts.MaxReplicas
	if cap > len(live) {
		cap = len(live)
	}
	changed := false
	actions := 0
	for _, c := range hot {
		if actions >= a.opts.MaxActions {
			break
		}
		ch := a.fs.Chunk(c.id)
		if len(ch.Replicas) >= cap {
			continue
		}
		if a.fs.TotalStoredMB()+ch.SizeMB > a.opts.BudgetMB {
			continue // a smaller hot chunk later in the list may still fit
		}
		dst := a.promotionTarget(c.id, ch, alive, live, now)
		if dst < 0 {
			continue
		}
		if ch.ReplicationTarget() < len(ch.Replicas)+1 {
			if err := a.fs.SetReplicationTarget(c.id, len(ch.Replicas)+1); err != nil {
				continue
			}
			a.stats.TargetsRaised++
			a.count(MetricTargetsRaised)
			changed = true
		}
		if err := a.fs.AddReplica(c.id, dst); err != nil {
			continue
		}
		a.stats.ReplicasAdded++
		a.count(MetricReplicasAdded)
		changed = true
		actions++
	}
	return changed
}

// promotionTarget picks the node to host a hot chunk's new copy. On a
// multi-rack cluster the copy goes to the hottest remote rack lacking a
// replica — the rack whose readers pull the most decayed remote megabytes
// and where a single copy converts every member's reads from cross-rack to
// rack-local (the HDFS-policy notion of rack spread, driven by demand
// instead of by writes). Within that rack the hottest live remote reader
// wins, falling back to the rack's least-loaded live non-holder. When
// every rack with demand already holds a copy — always true on a
// single-rack cluster — the rack-oblivious rule applies unchanged: the
// hottest live remote reader anywhere, else the least-loaded live
// non-holder. Returns -1 when no node can take a copy.
func (a *Advisor) promotionTarget(id dfs.ChunkID, ch *dfs.Chunk, alive map[int]bool, live []int, now float64) int {
	view := a.fs.View()
	if demand := a.fs.RemoteReadMB(id, now); len(demand) > 0 && multiRack(view) {
		rackDemand := make(map[int]float64)
		for n, mb := range demand {
			if n >= 0 && n < view.NumNodes() {
				rackDemand[view.RackOf(n)] += mb
			}
		}
		for _, r := range ch.Replicas {
			if r >= 0 && r < view.NumNodes() {
				delete(rackDemand, view.RackOf(r))
			}
		}
		// Deterministic over map iteration order: most demand wins, ties by
		// lowest rack id.
		bestRack, bestMB := -1, 0.0
		for r, mb := range rackDemand {
			if bestRack < 0 || mb > bestMB || (mb == bestMB && r < bestRack) {
				bestRack, bestMB = r, mb
			}
		}
		if bestRack >= 0 {
			dst := -1
			for _, n := range a.fs.RemoteReaders(id, now) {
				if alive[n] && !ch.HostedOn(n) && n < view.NumNodes() && view.RackOf(n) == bestRack {
					dst = n
					break
				}
			}
			if dst < 0 {
				for _, n := range live {
					if view.RackOf(n) == bestRack && !ch.HostedOn(n) &&
						(dst < 0 || a.fs.StoredMB(n) < a.fs.StoredMB(dst)) {
						dst = n
					}
				}
			}
			if dst >= 0 {
				return dst
			}
		}
	}
	dst := -1
	for _, n := range a.fs.RemoteReaders(id, now) {
		if alive[n] && !ch.HostedOn(n) {
			dst = n
			break
		}
	}
	if dst < 0 {
		for _, n := range live {
			if !ch.HostedOn(n) && (dst < 0 || a.fs.StoredMB(n) < a.fs.StoredMB(dst)) {
				dst = n
			}
		}
	}
	return dst
}

// multiRack reports whether the view spans more than one rack.
func multiRack(view dfs.ClusterView) bool {
	n := view.NumNodes()
	for i := 1; i < n; i++ {
		if view.RackOf(i) != view.RackOf(0) {
			return true
		}
	}
	return false
}

func (a *Advisor) count(name string) {
	if m := a.opts.Metrics; m != nil {
		m.Counter(name).Inc()
	}
}
