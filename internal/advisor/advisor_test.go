package advisor

import (
	"reflect"
	"strings"
	"testing"

	"opass/internal/dfs"
	"opass/internal/telemetry"
)

type view struct{ nodes int }

func (v view) NumNodes() int    { return v.nodes }
func (v view) RackOf(n int) int { return 0 }

// checkInvariants asserts the advisor's safety net after any pass: a
// consistent namenode, no chunk below one replica, and the storage bill
// within budget.
func checkInvariants(t *testing.T, fs *dfs.FileSystem, budgetMB float64) {
	t.Helper()
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck: %v", problems)
	}
	for _, name := range fs.Files() {
		f, err := fs.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range f.Chunks {
			if len(fs.Chunk(id).Replicas) < 1 {
				t.Fatalf("chunk %d of %s has no replica", id, name)
			}
		}
	}
	if got := fs.TotalStoredMB(); got > budgetMB+1e-9 {
		t.Fatalf("stored %v MB exceeds budget %v MB", got, budgetMB)
	}
}

func TestNewValidation(t *testing.T) {
	fs := dfs.New(view{4}, dfs.Config{Replication: 2})
	if _, err := New(fs, Options{}); err == nil {
		t.Fatal("accepted a file system without access accounting")
	}
	fs.EnableAccessStats(100)
	for _, bad := range []Options{
		{HotFactor: 1},
		{HotFactor: 0.5},
		{ColdFactor: 1},
		{ColdFactor: -0.1},
		{MinReplicas: -1},
		{MinReplicas: 4, MaxReplicas: 3},
		{BudgetMB: -10},
		{MaxActions: -1},
	} {
		if _, err := New(fs, bad); err == nil {
			t.Fatalf("accepted bad options %+v", bad)
		}
	}
	if _, err := New(fs, Options{}); err != nil {
		t.Fatalf("rejected defaults: %v", err)
	}
}

func TestTickWithoutTrafficIsQuiet(t *testing.T) {
	fs := dfs.New(view{4}, dfs.Config{Replication: 2})
	if _, err := fs.Create("/a", 64); err != nil {
		t.Fatal(err)
	}
	fs.EnableAccessStats(100)
	a, err := New(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := fs.Epoch()
	if a.Tick(10) {
		t.Fatal("tick with zero traffic reported a change")
	}
	if fs.Epoch() != before {
		t.Fatal("tick with zero traffic mutated placement")
	}
	if st := a.Stats(); st.Ticks != 1 || st.ReplicasAdded+st.ReplicasRemoved != 0 {
		t.Fatalf("stats after quiet tick: %+v", st)
	}
}

// TestHotChunkGainsReplicaAtRemoteReader is the core promotion path: a chunk
// far above the fleet mean whose demand keeps arriving remotely gains a copy
// on the node pulling it, with the target raised first.
func TestHotChunkGainsReplicaAtRemoteReader(t *testing.T) {
	fs := dfs.New(view{6}, dfs.Config{
		Replication: 2,
		Placement: dfs.FixedPlacement{Replicas: [][]int{
			{0, 1},                 // /hot
			{2, 3}, {2, 4}, {3, 4}, // /cold: mildly-read filler
		}},
	})
	if _, err := fs.Create("/hot", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateChunks("/cold", []float64{64, 64, 64}); err != nil {
		t.Fatal(err)
	}
	fs.EnableAccessStats(1e4)
	// Node 5 hammers the hot chunk remotely; node 5 also touches the filler
	// once each so the mean is nonzero without making them cold.
	for i := 0; i < 10; i++ {
		fs.RecordRead(0, 5, false, 64, float64(i))
	}
	for id := dfs.ChunkID(1); id <= 3; id++ {
		fs.RecordRead(id, 2, true, 64, 5)
	}
	a, err := New(fs, Options{BudgetMB: 4096})
	if err != nil {
		t.Fatal(err)
	}
	before := fs.Epoch()
	if !a.Tick(10) {
		t.Fatal("tick did not report the promotion")
	}
	c := fs.Chunk(0)
	if got, want := c.Replicas, []int{0, 1, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("hot chunk replicas = %v, want %v (copy at the remote reader)", got, want)
	}
	if got := c.ReplicationTarget(); got != 3 {
		t.Fatalf("hot chunk target = %d, want 3", got)
	}
	st := a.Stats()
	if st.ReplicasAdded != 1 || st.TargetsRaised != 1 {
		t.Fatalf("stats = %+v, want one add and one raise", st)
	}
	if st.Hot < 1 {
		t.Fatalf("stats = %+v, want at least one hot chunk", st)
	}
	// Each mutation (setrep, add) bumps the placement epoch exactly once, so
	// cached plans reading the chunk are invalidated.
	if got := fs.Epoch() - before; got < 2 {
		t.Fatalf("epoch advanced by %d, want >= 2 (one per mutation)", got)
	}
	checkInvariants(t, fs, 4096)
}

// TestColdChunkTrimmedFromMostLoadedHolder is the demotion path: a chunk far
// below the mean sheds its excess copy from the fullest node, target lowered
// first, and never drops below MinReplicas.
func TestColdChunkTrimmedFromMostLoadedHolder(t *testing.T) {
	fs := dfs.New(view{5}, dfs.Config{
		Replication: 2,
		Placement: dfs.FixedPlacement{Replicas: [][]int{
			{0, 1}, // /cold: never read; gains a third copy below
			{3, 4}, // /hot
			{2, 3}, // /ballast: makes node 2 the fullest cold holder
		}},
	})
	if _, err := fs.Create("/cold", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/hot", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateChunks("/ballast", []float64{128}); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddReplica(0, 2); err != nil { // cold now {0, 1, 2}, target 3
		t.Fatal(err)
	}
	fs.EnableAccessStats(1e4)
	for i := 0; i < 10; i++ {
		fs.RecordRead(1, 3, true, 64, float64(i))
	}
	budget := fs.TotalStoredMB()
	a, err := New(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Tick(10) {
		t.Fatal("tick did not report the trim")
	}
	c := fs.Chunk(0)
	if got, want := c.Replicas, []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cold chunk replicas = %v, want %v (trimmed from node 2)", got, want)
	}
	if got := c.ReplicationTarget(); got != 2 {
		t.Fatalf("cold chunk target = %d, want 2", got)
	}
	st := a.Stats()
	if st.ReplicasRemoved != 1 || st.TargetsLowered != 1 {
		t.Fatalf("stats = %+v, want one remove and one lower", st)
	}
	checkInvariants(t, fs, budget)

	// A second pass must respect the MinReplicas floor: the chunk is still
	// cold but already at two copies.
	if a.Tick(20) {
		t.Fatal("second tick reported a change at the replica floor")
	}
	if got := len(fs.Chunk(0).Replicas); got != 2 {
		t.Fatalf("cold chunk at %d replicas, floor is 2", got)
	}
	checkInvariants(t, fs, budget)
}

// TestBudgetBlocksPromotion: with the default budget (the stored MB at New)
// and nothing to trim, a hot chunk cannot gain a copy — space must be freed
// first.
func TestBudgetBlocksPromotion(t *testing.T) {
	fs := dfs.New(view{4}, dfs.Config{
		Replication: 2,
		Placement:   dfs.FixedPlacement{Replicas: [][]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}}},
	})
	if _, err := fs.CreateChunks("/data", []float64{64, 64, 64, 64}); err != nil {
		t.Fatal(err)
	}
	fs.EnableAccessStats(1e4)
	for i := 0; i < 10; i++ {
		fs.RecordRead(0, 2, false, 64, float64(i))
	}
	for id := dfs.ChunkID(1); id <= 3; id++ {
		fs.RecordRead(id, 0, true, 64, 5) // warm filler, nothing cold to trim
	}
	budget := fs.TotalStoredMB()
	a, err := New(fs, Options{ColdFactor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tick(10) {
		t.Fatal("tick changed placement with zero budget headroom")
	}
	if got := fs.TotalStoredMB(); got != budget {
		t.Fatalf("stored %v MB, want %v (unchanged)", got, budget)
	}
	checkInvariants(t, fs, budget)
}

// TestTrimFundsPromotionWithinBudget: the pass order (trim first, then
// promote) lets a shifting workload re-point its replicas without ever
// exceeding the original storage bill.
func TestTrimFundsPromotionWithinBudget(t *testing.T) {
	fs := dfs.New(view{6}, dfs.Config{
		Replication: 2,
		Placement: dfs.FixedPlacement{Replicas: [][]int{
			{0, 1},         // /old: formerly hot, now abandoned; 3rd copy below
			{3, 4},         // /new: the current hotspot
			{0, 5}, {1, 5}, // warm filler
		}},
	})
	if _, err := fs.Create("/old", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/new", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateChunks("/filler", []float64{64, 64}); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddReplica(0, 2); err != nil { // old now {0, 1, 2}, target 3
		t.Fatal(err)
	}
	fs.EnableAccessStats(1e4)
	for i := 0; i < 12; i++ {
		fs.RecordRead(1, 5, false, 64, float64(i)) // node 5 hammers /new remotely
	}
	fs.RecordRead(2, 0, true, 64, 5)
	fs.RecordRead(3, 1, true, 64, 5)
	budget := fs.TotalStoredMB()
	a, err := New(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Tick(12) {
		t.Fatal("tick did not adapt the placement")
	}
	st := a.Stats()
	if st.ReplicasRemoved != 1 || st.ReplicasAdded != 1 {
		t.Fatalf("stats = %+v, want one trim funding one promotion", st)
	}
	if !fs.Chunk(1).HostedOn(5) {
		t.Fatalf("hotspot replicas = %v, want a copy on the remote reader 5", fs.Chunk(1).Replicas)
	}
	if got := len(fs.Chunk(0).Replicas); got != 2 {
		t.Fatalf("abandoned chunk still at %d replicas, want 2", got)
	}
	checkInvariants(t, fs, budget)
}

func TestMetricsRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	fs := dfs.New(view{6}, dfs.Config{
		Replication: 2,
		Placement:   dfs.FixedPlacement{Replicas: [][]int{{0, 1}, {2, 3}, {2, 4}, {3, 4}}},
	})
	if _, err := fs.CreateChunks("/d", []float64{64, 64, 64, 64}); err != nil {
		t.Fatal(err)
	}
	fs.EnableAccessStats(1e4)
	for i := 0; i < 10; i++ {
		fs.RecordRead(0, 5, false, 64, float64(i))
	}
	for id := dfs.ChunkID(1); id <= 3; id++ {
		fs.RecordRead(id, 2, true, 64, 5)
	}
	a, err := New(fs, Options{BudgetMB: 4096, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(10)
	if got := reg.Counter(MetricTicks).Value(); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricTicks, got)
	}
	if got := reg.Counter(MetricReplicasAdded).Value(); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricReplicasAdded, got)
	}
	if got := reg.Gauge(MetricStoredMB).Value(); got != fs.TotalStoredMB() {
		t.Fatalf("%s = %v, want %v", MetricStoredMB, got, fs.TotalStoredMB())
	}
	if got := reg.Gauge(MetricBudgetMB).Value(); got != 4096 {
		t.Fatalf("%s = %v, want 4096", MetricBudgetMB, got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{MetricTicks, MetricHot, MetricWarm, MetricCold} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("exposition missing %s:\n%s", name, sb.String())
		}
	}
}
