// Package analysis implements the closed-form models of §III of the Opass
// paper: the binomial distribution of the number of chunks a parallel job
// reads locally under random placement and rank assignment (§III-A,
// Figure 3), and the law-of-total-probability model of how many chunks a
// given storage node serves (§III-B). A seeded Monte-Carlo simulator
// cross-checks both models.
//
// A note on conventions. §III-A defines X ~ Binomial(n, r/m): each of the n
// chunks is read locally with probability r/m (the chance any of its r
// replicas landed on the reader's node). The probabilities the paper then
// quotes for Figure 3 (P(X>5) = 81.09% at m=64, 21.43% at m=128, 1.64% at
// m=256) are, however, reproduced almost exactly by p = 1/m — the chance
// that a uniformly chosen replica holder is the reader's node. Both
// conventions are exposed here; the bench harness prints both, and
// EXPERIMENTS.md discusses the discrepancy. The §III-B node-service model
// is internally consistent and reproduces the paper's expected node counts
// with the natural m× prefactor (the printed "512×" appears to be a typo
// for the cluster size 128).
package analysis

import (
	"fmt"
	"math"
	"math/rand"
)

// lnChoose returns ln C(n, k) computed through the log-gamma function, so
// that binomial terms with n in the thousands stay in floating-point range.
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, p).
func BinomialCDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var s float64
	for i := 0; i <= k; i++ {
		s += BinomialPMF(n, p, i)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// LocalReadParams describes a §III scenario: a dataset of Chunks chunks
// with Replication-way replication on a Nodes-node cluster.
type LocalReadParams struct {
	Chunks      int // n
	Replication int // r
	Nodes       int // m
}

func (p LocalReadParams) validate() {
	if p.Chunks <= 0 || p.Replication <= 0 || p.Nodes <= 0 || p.Replication > p.Nodes {
		panic(fmt.Sprintf("analysis: invalid parameters %+v", p))
	}
}

// LocalReadCDF returns P(X <= k) where X is the number of chunks read
// locally, using the formula exactly as written in §III-A:
// X ~ Binomial(n, r/m).
func LocalReadCDF(p LocalReadParams, k int) float64 {
	p.validate()
	return BinomialCDF(p.Chunks, float64(p.Replication)/float64(p.Nodes), k)
}

// LocalReadCDFQuoted returns P(X <= k) under the p = 1/m convention that
// reproduces the probabilities quoted beneath Figure 3.
func LocalReadCDFQuoted(p LocalReadParams, k int) float64 {
	p.validate()
	return BinomialCDF(p.Chunks, 1/float64(p.Nodes), k)
}

// ServedCDF returns P(Z <= k) where Z is the number of chunks served by a
// fixed storage node, via the law of total probability of §III-B:
//
//	P(Z<=k) = sum_a P(Z<=k | Y=a) P(Y=a)
//
// with Y ~ Binomial(n, r/m) the number of chunks hosted on the node and
// Z|Y=a ~ Binomial(a, 1/r) (each hosted chunk's remote reader picks this
// node with probability 1/r).
func ServedCDF(p LocalReadParams, k int) float64 {
	p.validate()
	pHost := float64(p.Replication) / float64(p.Nodes)
	var s float64
	for a := 0; a <= p.Chunks; a++ {
		py := BinomialPMF(p.Chunks, pHost, a)
		if py == 0 {
			continue
		}
		s += BinomialCDF(a, 1/float64(p.Replication), k) * py
	}
	if s > 1 {
		s = 1
	}
	return s
}

// ExpectedNodesServingAtMost returns m * P(Z <= k): the expected number of
// cluster nodes that serve at most k chunks.
func ExpectedNodesServingAtMost(p LocalReadParams, k int) float64 {
	return float64(p.Nodes) * ServedCDF(p, k)
}

// ExpectedNodesServingAtLeast returns m * P(Z >= k).
func ExpectedNodesServingAtLeast(p LocalReadParams, k int) float64 {
	return float64(p.Nodes) * (1 - ServedCDF(p, k-1))
}

// ExpectedMaxServed approximates the expected number of chunks served by
// the *busiest* node — the height of the tallest bar in Figure 1(a) — using
// the independent-bins approximation P(max <= k) ~= P(Z <= k)^m with
// Z ~ Binomial(n, 1/m):
//
//	E[max] = sum_k (1 - P(max <= k))
//
// The bins are weakly negatively correlated (the total is fixed), so the
// approximation errs slightly high; the Monte-Carlo cross-check in the
// tests bounds the error under 15% for the paper's configurations.
func ExpectedMaxServed(p LocalReadParams) float64 {
	p.validate()
	var e float64
	for k := 0; k < p.Chunks; k++ {
		cdf := BinomialCDF(p.Chunks, 1/float64(p.Nodes), k)
		pMaxLE := math.Pow(cdf, float64(p.Nodes))
		e += 1 - pMaxLE
		if pMaxLE > 1-1e-12 {
			break
		}
	}
	return e
}

// ImbalanceRatio is the §III-B skew headline: the expected busiest node's
// service count over the fair share n/m. It grows with the cluster size at
// fixed chunks-per-node — the analytical root of Figure 8(a)'s widening
// max/min gap.
func ImbalanceRatio(p LocalReadParams) float64 {
	fair := float64(p.Chunks) / float64(p.Nodes)
	if fair == 0 {
		return 0
	}
	return ExpectedMaxServed(p) / fair
}

// MonteCarloResult aggregates a placement/assignment simulation.
type MonteCarloResult struct {
	// LocalCDF[k] estimates P(X <= k) for the whole-job local-read count.
	LocalCDF []float64
	// ServedCDF[k] estimates P(Z <= k) for a node's served-chunk count.
	ServedCDF []float64
	// MeanLocal is the mean number of chunks read locally per trial.
	MeanLocal float64
	// MaxServed is the mean over trials of the per-trial most loaded node.
	MaxServed float64
}

// MonteCarlo simulates trials independent runs of the §III random model:
// chunks placed on r random distinct nodes, each chunk read by a uniformly
// random process (one per node), served locally when co-located and by a
// random replica holder otherwise. kMax bounds the CDF support returned.
func MonteCarlo(p LocalReadParams, trials, kMax int, seed int64) MonteCarloResult {
	p.validate()
	if trials <= 0 || kMax < 0 {
		panic(fmt.Sprintf("analysis: invalid trials %d / kMax %d", trials, kMax))
	}
	rng := rand.New(rand.NewSource(seed))
	res := MonteCarloResult{
		LocalCDF:  make([]float64, kMax+1),
		ServedCDF: make([]float64, kMax+1),
	}
	served := make([]int, p.Nodes)
	replicas := make([]int, p.Replication)
	for trial := 0; trial < trials; trial++ {
		for i := range served {
			served[i] = 0
		}
		local := 0
		for c := 0; c < p.Chunks; c++ {
			// Place r distinct replicas.
			for i := 0; i < p.Replication; i++ {
			retry:
				n := rng.Intn(p.Nodes)
				for j := 0; j < i; j++ {
					if replicas[j] == n {
						goto retry
					}
				}
				replicas[i] = n
			}
			reader := rng.Intn(p.Nodes) // the randomly assigned process
			srv := -1
			for _, r := range replicas {
				if r == reader {
					srv = r
					local++
					break
				}
			}
			if srv == -1 {
				srv = replicas[rng.Intn(p.Replication)]
			}
			served[srv]++
		}
		res.MeanLocal += float64(local)
		for k := 0; k <= kMax; k++ {
			if local <= k {
				res.LocalCDF[k]++
			}
		}
		// Every node is an observation of Z.
		maxServed := 0
		for _, s := range served {
			if s > maxServed {
				maxServed = s
			}
			for k := 0; k <= kMax; k++ {
				if s <= k {
					res.ServedCDF[k]++
				}
			}
		}
		res.MaxServed += float64(maxServed)
	}
	res.MeanLocal /= float64(trials)
	res.MaxServed /= float64(trials)
	for k := 0; k <= kMax; k++ {
		res.LocalCDF[k] /= float64(trials)
		res.ServedCDF[k] /= float64(trials * p.Nodes)
	}
	return res
}
