package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {100, 0.05}, {512, 3.0 / 128}, {1, 0.5}} {
		var s float64
		for k := 0; k <= tc.n; k++ {
			s += BinomialPMF(tc.n, tc.p, k)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("pmf(n=%d,p=%v) sums to %v", tc.n, tc.p, s)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 0, 1) != 0 {
		t.Fatal("p=0 edge case wrong")
	}
	if BinomialPMF(5, 1, 5) != 1 || BinomialPMF(5, 1, 4) != 0 {
		t.Fatal("p=1 edge case wrong")
	}
	if BinomialCDF(5, 0.5, -1) != 0 || BinomialCDF(5, 0.5, 5) != 1 || BinomialCDF(5, 0.5, 99) != 1 {
		t.Fatal("cdf boundary wrong")
	}
	if BinomialPMF(5, 0.5, 6) != 0 || BinomialPMF(5, 0.5, -1) != 0 {
		t.Fatal("out-of-support pmf not zero")
	}
}

func TestBinomialAgainstKnownValues(t *testing.T) {
	// Bin(4, 0.5): P(X=2) = 6/16.
	if got := BinomialPMF(4, 0.5, 2); math.Abs(got-0.375) > 1e-12 {
		t.Fatalf("pmf = %v, want 0.375", got)
	}
	// Bin(10, 0.1): P(X<=1) = 0.9^10 + 10*0.1*0.9^9 = 0.73609893...
	want := math.Pow(0.9, 10) + 10*0.1*math.Pow(0.9, 9)
	if got := BinomialCDF(10, 0.1, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("cdf = %v, want %v", got, want)
	}
}

// TestFigure3QuotedProbabilities reproduces the §III-A probabilities
// beneath Figure 3 under the 1/m convention (see the package comment).
func TestFigure3QuotedProbabilities(t *testing.T) {
	cases := []struct {
		m    int
		want float64 // paper's P(X > 5)
		tol  float64
	}{
		{64, 0.8109, 0.01},
		{128, 0.2143, 0.01},
		{256, 0.0164, 0.005},
		// The paper prints 0.46% for m=512; the binomial value is ~0.06%.
		// We assert only that the probability is far below 1% there.
		{512, 0.005, 0.005},
	}
	for _, tc := range cases {
		p := LocalReadParams{Chunks: 512, Replication: 3, Nodes: tc.m}
		got := 1 - LocalReadCDFQuoted(p, 5)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("m=%d: P(X>5) = %v, want %v +- %v", tc.m, got, tc.want, tc.tol)
		}
	}
}

func TestLocalityDecaysWithClusterSize(t *testing.T) {
	// The core §III-A observation: P(X>5) decreases (exponentially) in m,
	// under both conventions.
	for _, cdf := range []func(LocalReadParams, int) float64{LocalReadCDF, LocalReadCDFQuoted} {
		prev := 2.0
		for _, m := range []int{64, 128, 256, 512} {
			p := 1 - cdf(LocalReadParams{Chunks: 512, Replication: 3, Nodes: m}, 5)
			if p >= prev {
				t.Fatalf("P(X>5) not decreasing at m=%d: %v >= %v", m, p, prev)
			}
			prev = p
		}
	}
}

// TestServedModelMatchesThinning: placing each chunk on the node with
// probability r/m and then picking a replica with probability 1/r is a
// binomial thinning, so Z must be marginally Binomial(n, 1/m).
func TestServedModelMatchesThinning(t *testing.T) {
	p := LocalReadParams{Chunks: 200, Replication: 3, Nodes: 32}
	for k := 0; k <= 15; k++ {
		lhs := ServedCDF(p, k)
		rhs := BinomialCDF(p.Chunks, 1/float64(p.Nodes), k)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("k=%d: total-probability %v != thinned binomial %v", k, lhs, rhs)
		}
	}
}

// TestSectionIIIBNodeCounts reproduces the §III-B expected node counts for
// n=512, r=3, m=128 with the m-times-probability prefactor: ~11 nodes
// serving at most 1 chunk and ~6 nodes serving 8 or more.
func TestSectionIIIBNodeCounts(t *testing.T) {
	p := LocalReadParams{Chunks: 512, Replication: 3, Nodes: 128}
	atMost1 := ExpectedNodesServingAtMost(p, 1)
	if math.Abs(atMost1-11) > 1.5 {
		t.Fatalf("E[nodes serving <=1] = %v, paper says 11", atMost1)
	}
	atLeast8 := ExpectedNodesServingAtLeast(p, 8)
	if math.Abs(atLeast8-6) > 1.5 {
		t.Fatalf("E[nodes serving >=8] = %v, paper says 6", atLeast8)
	}
	// The paper's 8X claim: some nodes serve >= 8 chunks while others serve
	// <= 1 — both sets are non-empty in expectation.
	if atMost1 < 1 || atLeast8 < 1 {
		t.Fatal("imbalance sets unexpectedly empty")
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	p := LocalReadParams{Chunks: 128, Replication: 3, Nodes: 64}
	mc := MonteCarlo(p, 400, 12, 42)
	for k := 0; k <= 12; k += 3 {
		analytic := LocalReadCDF(p, k)
		if math.Abs(mc.LocalCDF[k]-analytic) > 0.05 {
			t.Errorf("local CDF k=%d: MC %v vs analytic %v", k, mc.LocalCDF[k], analytic)
		}
		served := ServedCDF(p, k)
		if math.Abs(mc.ServedCDF[k]-served) > 0.05 {
			t.Errorf("served CDF k=%d: MC %v vs analytic %v", k, mc.ServedCDF[k], served)
		}
	}
	// Mean locally read chunks = n*r/m = 6.
	if math.Abs(mc.MeanLocal-6) > 0.5 {
		t.Errorf("mean local = %v, want ~6", mc.MeanLocal)
	}
	// The imbalance the paper shows in Figure 1: with 128 chunks on 64
	// nodes (mean 2 per node) the busiest node serves ~6+.
	if mc.MaxServed < 5 {
		t.Errorf("mean max served = %v, expected >= 5 (Figure 1 imbalance)", mc.MaxServed)
	}
}

func TestPropertyCDFsMonotoneAndBounded(t *testing.T) {
	prop := func(rawN, rawR, rawM uint8) bool {
		n := 1 + int(rawN)%200
		m := 2 + int(rawM)%100
		r := 1 + int(rawR)%3
		if r > m {
			r = m
		}
		p := LocalReadParams{Chunks: n, Replication: r, Nodes: m}
		prev := 0.0
		for k := 0; k <= n; k += 1 + n/10 {
			for _, f := range []func(LocalReadParams, int) float64{LocalReadCDF, LocalReadCDFQuoted, ServedCDF} {
				v := f(p, k)
				if v < -1e-9 || v > 1+1e-9 {
					t.Errorf("cdf out of range: %v", v)
					return false
				}
			}
			v := LocalReadCDF(p, k)
			if v+1e-9 < prev {
				t.Errorf("cdf not monotone")
				return false
			}
			prev = v
		}
		if LocalReadCDF(p, n) < 1-1e-9 {
			t.Errorf("cdf at n must be 1")
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { LocalReadCDF(LocalReadParams{Chunks: 0, Replication: 3, Nodes: 8}, 1) },
		func() { LocalReadCDF(LocalReadParams{Chunks: 5, Replication: 9, Nodes: 8}, 1) },
		func() { MonteCarlo(LocalReadParams{Chunks: 5, Replication: 3, Nodes: 8}, 0, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestExpectedMaxServedAgainstMonteCarlo(t *testing.T) {
	for _, tc := range []LocalReadParams{
		{Chunks: 128, Replication: 3, Nodes: 64},
		{Chunks: 512, Replication: 3, Nodes: 128},
		{Chunks: 640, Replication: 3, Nodes: 64},
	} {
		analytic := ExpectedMaxServed(tc)
		mc := MonteCarlo(tc, 300, 1, 7)
		rel := math.Abs(analytic-mc.MaxServed) / mc.MaxServed
		if rel > 0.15 {
			t.Fatalf("%+v: analytic max %v vs MC %v (%.0f%% off)", tc, analytic, mc.MaxServed, 100*rel)
		}
	}
}

func TestExpectedMaxServedFigure1(t *testing.T) {
	// Figure 1(a): 128 chunks on 64 nodes, ideal 2 per node, observed max
	// "more than 6". The model should predict 6-8.
	p := LocalReadParams{Chunks: 128, Replication: 3, Nodes: 64}
	got := ExpectedMaxServed(p)
	if got < 5.5 || got > 8.5 {
		t.Fatalf("E[max served] = %v, paper observes >6", got)
	}
}

func TestImbalanceRatioGrowsWithClusterSize(t *testing.T) {
	// At fixed 10 chunks per node, the skew ratio widens with m — the
	// analytical counterpart of Figure 8(a).
	prev := 0.0
	for _, m := range []int{16, 32, 64, 128} {
		r := ImbalanceRatio(LocalReadParams{Chunks: 10 * m, Replication: 3, Nodes: m})
		if r <= 1 {
			t.Fatalf("m=%d: ratio %v must exceed 1", m, r)
		}
		if r <= prev {
			t.Fatalf("m=%d: ratio %v not growing (prev %v)", m, r, prev)
		}
		prev = r
	}
}
