package bipartite

import (
	"math/rand"
	"testing"
)

// TestNewGraphFromSortedMatchesAddEdge asserts the bulk constructor and the
// incremental AddEdge path produce indistinguishable graphs: same edge set,
// same adjacency order on both sides, same weights — on random sparse
// graphs of varying shape.
func TestNewGraphFromSortedMatchesAddEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		numP := 1 + rng.Intn(40)
		numF := 1 + rng.Intn(120)
		byP := make([][]Edge, numP)
		inc := NewGraph(numP, numF)
		for p := 0; p < numP; p++ {
			// Random ascending subset of files for this process.
			for f := 0; f < numF; f++ {
				if rng.Intn(4) != 0 {
					continue
				}
				w := int64(1 + rng.Intn(1000))
				byP[p] = append(byP[p], Edge{P: p, F: f, Weight: w})
				inc.AddEdge(p, f, w)
			}
		}
		bulk := NewGraphFromSorted(numP, numF, byP)

		if bulk.NumEdges() != inc.NumEdges() {
			t.Fatalf("trial %d: %d edges, want %d", trial, bulk.NumEdges(), inc.NumEdges())
		}
		for p := 0; p < numP; p++ {
			a, b := bulk.EdgesOfP(p), inc.EdgesOfP(p)
			if len(a) != len(b) {
				t.Fatalf("trial %d proc %d: %d edges, want %d", trial, p, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d proc %d edge %d: %+v, want %+v", trial, p, i, a[i], b[i])
				}
			}
		}
		for f := 0; f < numF; f++ {
			a, b := bulk.EdgesOfF(f), inc.EdgesOfF(f)
			if len(a) != len(b) {
				t.Fatalf("trial %d file %d: %d edges, want %d", trial, f, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d file %d edge %d: %+v, want %+v", trial, f, i, a[i], b[i])
				}
			}
		}
	}
}

// TestNewGraphFromSortedValidation pins the panic contract on malformed
// adjacency input.
func TestNewGraphFromSortedValidation(t *testing.T) {
	cases := []struct {
		name string
		numP int
		numF int
		byP  [][]Edge
	}{
		{"list count mismatch", 2, 2, [][]Edge{{}}},
		{"wrong P field", 2, 2, [][]Edge{{{P: 1, F: 0, Weight: 1}}, {}}},
		{"file out of range", 1, 2, [][]Edge{{{P: 0, F: 2, Weight: 1}}}},
		{"negative file", 1, 2, [][]Edge{{{P: 0, F: -1, Weight: 1}}}},
		{"zero weight", 1, 1, [][]Edge{{{P: 0, F: 0, Weight: 0}}}},
		{"unsorted files", 1, 3, [][]Edge{{{P: 0, F: 2, Weight: 1}, {P: 0, F: 1, Weight: 1}}}},
		{"duplicate file", 1, 3, [][]Edge{{{P: 0, F: 1, Weight: 1}, {P: 0, F: 1, Weight: 1}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on malformed input")
				}
			}()
			NewGraphFromSorted(c.numP, c.numF, c.byP)
		})
	}
}
