package bipartite

import (
	"context"
	"errors"
	"testing"
)

// figure5Graph is the two-process four-file fixture used across the
// matching tests.
func figure5Graph() *Graph {
	g := NewGraph(2, 4)
	g.AddEdge(0, 0, 64)
	g.AddEdge(0, 1, 64)
	g.AddEdge(0, 2, 64)
	g.AddEdge(1, 2, 64)
	g.AddEdge(1, 3, 64)
	return g
}

func TestMatchAugmentingContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	owner, size, err := MatchAugmentingContext(ctx, figure5Graph(), []int{2, 2})
	if owner != nil || size != 0 {
		t.Fatalf("got partial matching (%v, %d) from a cancelled ctx", owner, size)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMatchAugmentingContextLiveMatchesPlain(t *testing.T) {
	owner, size, err := MatchAugmentingContext(context.Background(), figure5Graph(), []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	plainOwner, plainSize := MatchAugmenting(figure5Graph(), []int{2, 2})
	if size != plainSize {
		t.Fatalf("size %d != plain %d", size, plainSize)
	}
	for f := range owner {
		if owner[f] != plainOwner[f] {
			t.Fatalf("owner[%d] = %d != plain %d", f, owner[f], plainOwner[f])
		}
	}
}

func TestAssignMaxLocalityContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{EdmondsKarp, Dinic} {
		res, err := AssignMaxLocalityContext(ctx, figure5Graph(),
			[]int64{128, 128}, []int64{64, 64, 64, 64}, algo)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", algo, err)
		}
		if res.Owner != nil {
			t.Fatalf("%v: got partial result %+v from a cancelled ctx", algo, res)
		}
	}
}

func TestAssignMaxLocalityContextLiveMatchesPlain(t *testing.T) {
	for _, algo := range []Algorithm{EdmondsKarp, Dinic} {
		res, err := AssignMaxLocalityContext(context.Background(), figure5Graph(),
			[]int64{128, 128}, []int64{64, 64, 64, 64}, algo)
		if err != nil {
			t.Fatal(err)
		}
		plain := AssignMaxLocality(figure5Graph(), []int64{128, 128}, []int64{64, 64, 64, 64}, algo)
		if res.LocalMB != plain.LocalMB || res.Full != plain.Full {
			t.Fatalf("%v: (%d, %v) != plain (%d, %v)", algo, res.LocalMB, res.Full, plain.LocalMB, plain.Full)
		}
	}
}

func TestFlowNetworkStopHook(t *testing.T) {
	// A stop hook that trips immediately must abort the solve and surface
	// through StopErr; a nil hook must leave MaxFlow untouched.
	build := func() (*FlowNetwork, int, int) {
		fn := NewFlowNetwork(4)
		fn.AddArc(0, 1, 5)
		fn.AddArc(1, 2, 5)
		fn.AddArc(2, 3, 5)
		return fn, 0, 3
	}
	fn, s, tk := build()
	if got := fn.MaxFlowEK(s, tk); got != 5 {
		t.Fatalf("baseline EK flow = %d, want 5", got)
	}
	sentinel := errors.New("stop")
	fn, s, tk = build()
	fn.SetStop(func() error { return sentinel })
	if got := fn.MaxFlowEK(s, tk); got != 0 {
		t.Fatalf("stopped EK flow = %d, want 0", got)
	}
	if !errors.Is(fn.StopErr(), sentinel) {
		t.Fatalf("StopErr = %v, want sentinel", fn.StopErr())
	}
	fn, s, tk = build()
	fn.SetStop(func() error { return sentinel })
	if got := fn.MaxFlowDinic(s, tk); got != 0 {
		t.Fatalf("stopped Dinic flow = %d, want 0", got)
	}
	if !errors.Is(fn.StopErr(), sentinel) {
		t.Fatalf("StopErr = %v, want sentinel", fn.StopErr())
	}
}
