// Package bipartite provides the graph machinery behind Opass's planners:
// the process↔file locality graph of §IV-A, a general max-flow solver with
// two algorithms (Ford-Fulkerson with BFS augmenting paths, i.e.
// Edmonds-Karp, as the paper uses; and Dinic's algorithm as a faster
// alternative used in the scalability ablation), and maximum bipartite
// matching built on top.
package bipartite

import (
	"fmt"
	"sort"
)

// Edge connects a process to a file in the locality graph. Weight is the
// number of megabytes of the file's data that the process can read locally
// (for whole chunks this is simply the chunk size).
type Edge struct {
	P      int
	F      int
	Weight int64
}

// Graph is the bipartite locality graph G = (P, F, E) of §IV-A: processes on
// one side, chunk files on the other, an edge wherever a file has a replica
// co-located with a process.
type Graph struct {
	numP, numF int
	byP        [][]Edge // edges grouped by process, file-ascending
	byF        [][]Edge // edges grouped by file, process-ascending
	edges      int
}

// NewGraph creates an empty locality graph with numP processes and numF
// files.
func NewGraph(numP, numF int) *Graph {
	if numP < 0 || numF < 0 {
		panic(fmt.Sprintf("bipartite: invalid graph dimensions %dx%d", numP, numF))
	}
	return &Graph{
		numP: numP,
		numF: numF,
		byP:  make([][]Edge, numP),
		byF:  make([][]Edge, numF),
	}
}

// NumP reports the number of process vertices.
func (g *Graph) NumP() int { return g.numP }

// NumF reports the number of file vertices.
func (g *Graph) NumF() int { return g.numF }

// NumEdges reports the number of locality edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge records that process p can read weight MB of file f locally.
// Adding a parallel edge accumulates weight (a process may be co-located
// with several inputs of a multi-input file/task).
func (g *Graph) AddEdge(p, f int, weight int64) {
	if p < 0 || p >= g.numP {
		panic(fmt.Sprintf("bipartite: process %d out of range [0,%d)", p, g.numP))
	}
	if f < 0 || f >= g.numF {
		panic(fmt.Sprintf("bipartite: file %d out of range [0,%d)", f, g.numF))
	}
	if weight <= 0 {
		panic(fmt.Sprintf("bipartite: edge (%d,%d) weight %d must be positive", p, f, weight))
	}
	for i := range g.byP[p] {
		if g.byP[p][i].F == f {
			g.byP[p][i].Weight += weight
			for j := range g.byF[f] {
				if g.byF[f][j].P == p {
					g.byF[f][j].Weight += weight
					return
				}
			}
			panic("bipartite: index desync")
		}
	}
	e := Edge{P: p, F: f, Weight: weight}
	g.byP[p] = append(g.byP[p], e)
	g.byF[f] = append(g.byF[f], e)
	g.edges++
}

// EdgesOfP lists the edges incident to process p in ascending file order.
func (g *Graph) EdgesOfP(p int) []Edge {
	es := append([]Edge(nil), g.byP[p]...)
	sort.Slice(es, func(i, j int) bool { return es[i].F < es[j].F })
	return es
}

// EdgesOfF lists the edges incident to file f in ascending process order.
func (g *Graph) EdgesOfF(f int) []Edge {
	es := append([]Edge(nil), g.byF[f]...)
	sort.Slice(es, func(i, j int) bool { return es[i].P < es[j].P })
	return es
}

// Weight returns the locality weight between p and f, zero when no edge
// exists.
func (g *Graph) Weight(p, f int) int64 {
	for _, e := range g.byP[p] {
		if e.F == f {
			return e.Weight
		}
	}
	return 0
}

// Degrees returns per-process and per-file edge counts — a quick skew probe
// used by diagnostics.
func (g *Graph) Degrees() (procDeg, fileDeg []int) {
	procDeg = make([]int, g.numP)
	fileDeg = make([]int, g.numF)
	for p := range g.byP {
		procDeg[p] = len(g.byP[p])
	}
	for f := range g.byF {
		fileDeg[f] = len(g.byF[f])
	}
	return procDeg, fileDeg
}
