// Package bipartite provides the graph machinery behind Opass's planners:
// the process↔file locality graph of §IV-A, a general max-flow solver with
// two algorithms (Ford-Fulkerson with BFS augmenting paths, i.e.
// Edmonds-Karp, as the paper uses; and Dinic's algorithm as a faster
// alternative used in the scalability ablation), and maximum bipartite
// matching built on top.
package bipartite

import (
	"fmt"
	"sort"
)

// Edge connects a process to a file in the locality graph. Weight is the
// number of megabytes of the file's data that the process can read locally
// (for whole chunks this is simply the chunk size).
type Edge struct {
	P      int
	F      int
	Weight int64
}

// Graph is the bipartite locality graph G = (P, F, E) of §IV-A: processes on
// one side, chunk files on the other, an edge wherever a file has a replica
// co-located with a process.
type Graph struct {
	numP, numF int
	byP        [][]Edge // edges grouped by process, file-ascending
	byF        [][]Edge // edges grouped by file, process-ascending
	edges      int
}

// NewGraph creates an empty locality graph with numP processes and numF
// files.
func NewGraph(numP, numF int) *Graph {
	if numP < 0 || numF < 0 {
		panic(fmt.Sprintf("bipartite: invalid graph dimensions %dx%d", numP, numF))
	}
	return &Graph{
		numP: numP,
		numF: numF,
		byP:  make([][]Edge, numP),
		byF:  make([][]Edge, numF),
	}
}

// NumP reports the number of process vertices.
func (g *Graph) NumP() int { return g.numP }

// NumF reports the number of file vertices.
func (g *Graph) NumF() int { return g.numF }

// NumEdges reports the number of locality edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge records that process p can read weight MB of file f locally.
// Adding a parallel edge accumulates weight (a process may be co-located
// with several inputs of a multi-input file/task). The adjacency lists are
// kept sorted on insert, so builders that add edges in ascending order —
// as the planners' locality-graph construction does — append in O(1) and
// never trigger a shift.
func (g *Graph) AddEdge(p, f int, weight int64) {
	if p < 0 || p >= g.numP {
		panic(fmt.Sprintf("bipartite: process %d out of range [0,%d)", p, g.numP))
	}
	if f < 0 || f >= g.numF {
		panic(fmt.Sprintf("bipartite: file %d out of range [0,%d)", f, g.numF))
	}
	if weight <= 0 {
		panic(fmt.Sprintf("bipartite: edge (%d,%d) weight %d must be positive", p, f, weight))
	}
	i := searchF(g.byP[p], f)
	if i < len(g.byP[p]) && g.byP[p][i].F == f {
		g.byP[p][i].Weight += weight
		j := searchP(g.byF[f], p)
		if j >= len(g.byF[f]) || g.byF[f][j].P != p {
			panic("bipartite: index desync")
		}
		g.byF[f][j].Weight += weight
		return
	}
	e := Edge{P: p, F: f, Weight: weight}
	g.byP[p] = insertEdge(g.byP[p], i, e)
	g.byF[f] = insertEdge(g.byF[f], searchP(g.byF[f], p), e)
	g.edges++
}

// NewGraphFromSorted builds a graph in one shot from complete per-process
// adjacency lists: byP[p] must hold process p's edges in ascending file
// order with distinct files, positive weights, and P set to p — exactly
// what an in-order AddEdge loop would have produced, minus the per-edge
// binary searches. The graph takes ownership of byP without copying and
// derives the per-file adjacency by a counting-sort transpose over one
// backing array; visiting processes in ascending order lands each list
// process-ascending, matching the incremental builder's invariant.
// Invalid input panics, mirroring AddEdge. This is the bulk path behind
// the planners' parallel locality-graph build.
func NewGraphFromSorted(numP, numF int, byP [][]Edge) *Graph {
	if numP < 0 || numF < 0 {
		panic(fmt.Sprintf("bipartite: invalid graph dimensions %dx%d", numP, numF))
	}
	if len(byP) != numP {
		panic(fmt.Sprintf("bipartite: %d adjacency lists for %d processes", len(byP), numP))
	}
	g := &Graph{numP: numP, numF: numF, byP: byP, byF: make([][]Edge, numF)}
	degF := make([]int, numF)
	for p, es := range byP {
		g.edges += len(es)
		for i, e := range es {
			if e.P != p {
				panic(fmt.Sprintf("bipartite: edge %+v in adjacency of process %d", e, p))
			}
			if e.F < 0 || e.F >= numF {
				panic(fmt.Sprintf("bipartite: file %d out of range [0,%d)", e.F, numF))
			}
			if e.Weight <= 0 {
				panic(fmt.Sprintf("bipartite: edge (%d,%d) weight %d must be positive", e.P, e.F, e.Weight))
			}
			if i > 0 && es[i-1].F >= e.F {
				panic(fmt.Sprintf("bipartite: adjacency of process %d not file-ascending at %d", p, i))
			}
			degF[e.F]++
		}
	}
	backing := make([]Edge, g.edges)
	pos := make([]int, numF)
	off := 0
	for f, d := range degF {
		pos[f] = off
		g.byF[f] = backing[off : off+d : off+d]
		off += d
	}
	for _, es := range byP {
		for _, e := range es {
			backing[pos[e.F]] = e
			pos[e.F]++
		}
	}
	return g
}

// Reserve pre-sizes the adjacency lists for callers that know vertex
// degrees up front (the locality index does), eliminating append-growth
// reallocations during a bulk build. Nil slices leave that side untouched;
// reserving below a list's current length is a no-op for it.
func (g *Graph) Reserve(procDeg, fileDeg []int) {
	for p, d := range procDeg {
		if p < g.numP && d > len(g.byP[p]) && d > cap(g.byP[p]) {
			es := make([]Edge, len(g.byP[p]), d)
			copy(es, g.byP[p])
			g.byP[p] = es
		}
	}
	for f, d := range fileDeg {
		if f < g.numF && d > len(g.byF[f]) && d > cap(g.byF[f]) {
			es := make([]Edge, len(g.byF[f]), d)
			copy(es, g.byF[f])
			g.byF[f] = es
		}
	}
}

// searchF returns the position of the first edge with .F >= f.
func searchF(es []Edge, f int) int {
	return sort.Search(len(es), func(i int) bool { return es[i].F >= f })
}

// searchP returns the position of the first edge with .P >= p.
func searchP(es []Edge, p int) int {
	return sort.Search(len(es), func(i int) bool { return es[i].P >= p })
}

// insertEdge places e at position i, shifting the tail (a no-op append for
// in-order builders).
func insertEdge(es []Edge, i int, e Edge) []Edge {
	es = append(es, Edge{})
	copy(es[i+1:], es[i:])
	es[i] = e
	return es
}

// EdgesOfP lists the edges incident to process p in ascending file order.
// The returned slice is a read-only view owned by the graph: callers must
// not modify it, and it is invalidated by the next AddEdge touching p.
func (g *Graph) EdgesOfP(p int) []Edge { return g.byP[p] }

// EdgesOfF lists the edges incident to file f in ascending process order.
// The returned slice is a read-only view owned by the graph: callers must
// not modify it, and it is invalidated by the next AddEdge touching f.
func (g *Graph) EdgesOfF(f int) []Edge { return g.byF[f] }

// Weight returns the locality weight between p and f, zero when no edge
// exists. It binary-searches the sorted adjacency.
func (g *Graph) Weight(p, f int) int64 {
	es := g.byP[p]
	i := searchF(es, f)
	if i < len(es) && es[i].F == f {
		return es[i].Weight
	}
	return 0
}

// Degrees returns per-process and per-file edge counts — a quick skew probe
// used by diagnostics.
func (g *Graph) Degrees() (procDeg, fileDeg []int) {
	procDeg = make([]int, g.numP)
	fileDeg = make([]int, g.numF)
	for p := range g.byP {
		procDeg[p] = len(g.byP[p])
	}
	for f := range g.byF {
		fileDeg[f] = len(g.byF[f])
	}
	return procDeg, fileDeg
}
