package bipartite

import "context"

// This file implements Kuhn's augmenting-path algorithm for quota-
// constrained maximum bipartite matching. When every task has the same
// size — the common case in the paper's evaluation, where tasks are whole
// 64 MB chunks — the §IV-B flow problem reduces to maximum bipartite
// matching where process p may own up to quota[p] tasks, and a direct
// matching algorithm avoids building the flow network at all. It rounds
// out the algorithm ablation (BenchmarkMatchers) as the third solver next
// to Edmonds-Karp and Dinic.

// MatchAugmenting computes a maximum quota-constrained matching of files to
// processes with Kuhn's algorithm (greedy initialization + augmenting-path
// search per unmatched file). It returns owner[f] = process or -1 and the
// matching size. The result size always equals the max-flow formulation's
// (asserted by property tests); only the specific assignment may differ.
func MatchAugmenting(g *Graph, quota []int) (owner []int, size int) {
	owner, size, _ = MatchAugmentingContext(context.Background(), g, quota)
	return owner, size
}

// MatchAugmentingContext is MatchAugmenting under cooperative cancellation:
// ctx is checked before each augmenting-path search (each search is one
// O(V+E) pass, so cancellation lands within a single search) and its error
// is returned instead of a partial matching.
func MatchAugmentingContext(ctx context.Context, g *Graph, quota []int) (owner []int, size int, err error) {
	numP, numF := g.NumP(), g.NumF()
	if len(quota) != numP {
		panic("bipartite: quota length mismatch")
	}
	owner = make([]int, numF)
	for f := range owner {
		owner[f] = -1
	}
	owned := make([][]int, numP) // files currently owned by each process

	attach := func(f, p int) {
		owner[f] = p
		owned[p] = append(owned[p], f)
	}
	detach := func(f, p int) {
		// Swap-remove instead of append(files[:i], files[i+1:]...): the
		// shifting remove rewrites every element after i in the backing
		// array, so any alias of owned[p] taken before the call would see
		// wholesale-relocated contents. The swap touches exactly one slot
		// and stays O(1).
		files := owned[p]
		for i, x := range files {
			if x == f {
				last := len(files) - 1
				files[i] = files[last]
				owned[p] = files[:last]
				return
			}
		}
		panic("bipartite: detach of unowned file")
	}

	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	// Greedy initialization: cheap and removes most augmentation work.
	for f := 0; f < numF; f++ {
		for _, e := range g.EdgesOfF(f) {
			if len(owned[e.P]) < quota[e.P] {
				attach(f, e.P)
				size++
				break
			}
		}
	}

	visited := make([]bool, numP)
	var try func(f int) bool
	try = func(f int) bool {
		for _, e := range g.EdgesOfF(f) {
			p := e.P
			if visited[p] || quota[p] == 0 {
				continue
			}
			visited[p] = true
			if len(owned[p]) < quota[p] {
				attach(f, p)
				return true
			}
			// p is full: try to push one of its files elsewhere. Iterate
			// over a snapshot because a successful recursive try mutates
			// owned[p] via the displaced file's new attachment elsewhere.
			snapshot := append([]int(nil), owned[p]...)
			for _, f2 := range snapshot {
				if try(f2) {
					// f2 found a new home; it no longer belongs to p.
					detach(f2, p)
					attach(f, p)
					return true
				}
			}
		}
		return false
	}

	for f := 0; f < numF; f++ {
		if owner[f] != -1 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		for i := range visited {
			visited[i] = false
		}
		if try(f) {
			size++
		}
	}
	return owner, size, nil
}
