package bipartite

import "context"

// This file implements Kuhn's augmenting-path algorithm for quota-
// constrained maximum bipartite matching. When every task has the same
// size — the common case in the paper's evaluation, where tasks are whole
// 64 MB chunks — the §IV-B flow problem reduces to maximum bipartite
// matching where process p may own up to quota[p] tasks, and a direct
// matching algorithm avoids building the flow network at all. It rounds
// out the algorithm ablation (BenchmarkMatchers) as the third solver next
// to Edmonds-Karp and Dinic.

// MatchAugmenting computes a maximum quota-constrained matching of files to
// processes with Kuhn's algorithm (greedy initialization + augmenting-path
// search per unmatched file). It returns owner[f] = process or -1 and the
// matching size. The result size always equals the max-flow formulation's
// (asserted by property tests); only the specific assignment may differ.
func MatchAugmenting(g *Graph, quota []int) (owner []int, size int) {
	owner, size, _ = MatchAugmentingContext(context.Background(), g, quota)
	return owner, size
}

// MatchAugmentingContext is MatchAugmenting under cooperative cancellation:
// ctx is checked before each augmenting-path search (each search is one
// O(V+E) pass, so cancellation lands within a single search) and its error
// is returned instead of a partial matching.
func MatchAugmentingContext(ctx context.Context, g *Graph, quota []int) (owner []int, size int, err error) {
	return matchAugmenting(ctx, g, quota, nil)
}

// MatchAugmentingWarmContext is MatchAugmentingContext warm-started from a
// prior matching: seed[f] names the process that owned file f before (or
// -1), and entries that are still legal — the locality edge exists in g and
// the process has quota left, checked in ascending file order — are adopted
// without search. Only files whose seats broke (or that were never matched)
// go through augmenting-path repair, so a one-replica-move-stale matching
// costs O(delta) searches instead of O(files).
//
// The result is a maximum matching like the cold solve's (same size, by
// max-flow duality). When the seed is itself a maximum matching that is
// still fully legal, no augmenting path exists and the output is the seed,
// byte for byte — the golden-plan warm tests pin this.
func MatchAugmentingWarmContext(ctx context.Context, g *Graph, quota []int, seed []int) (owner []int, size int, err error) {
	return matchAugmenting(ctx, g, quota, seed)
}

// matchAugmenting is the shared matcher body; a nil seed means the greedy
// cold initialization.
func matchAugmenting(ctx context.Context, g *Graph, quota []int, seed []int) (owner []int, size int, err error) {
	numP, numF := g.NumP(), g.NumF()
	if len(quota) != numP {
		panic("bipartite: quota length mismatch")
	}
	if seed != nil && len(seed) != numF {
		panic("bipartite: seed length mismatch")
	}
	owner = make([]int, numF)
	for f := range owner {
		owner[f] = -1
	}
	owned := make([][]int, numP) // files currently owned by each process

	attach := func(f, p int) {
		owner[f] = p
		owned[p] = append(owned[p], f)
	}
	detach := func(f, p int) {
		// Swap-remove instead of append(files[:i], files[i+1:]...): the
		// shifting remove rewrites every element after i in the backing
		// array, so any alias of owned[p] taken before the call would see
		// wholesale-relocated contents. The swap touches exactly one slot
		// and stays O(1).
		files := owned[p]
		for i, x := range files {
			if x == f {
				last := len(files) - 1
				files[i] = files[last]
				owned[p] = files[:last]
				return
			}
		}
		panic("bipartite: detach of unowned file")
	}

	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if seed == nil {
		// Greedy initialization: cheap and removes most augmentation work.
		for f := 0; f < numF; f++ {
			for _, e := range g.EdgesOfF(f) {
				if len(owned[e.P]) < quota[e.P] {
					attach(f, e.P)
					size++
					break
				}
			}
		}
	} else {
		// Warm initialization: adopt every still-legal prior seat. Illegal
		// entries (edge gone after a replica move, process over quota) are
		// dropped and their files re-enter the augmenting loop below.
		for f := 0; f < numF; f++ {
			p := seed[f]
			if p < 0 || p >= numP || len(owned[p]) >= quota[p] {
				continue
			}
			for _, e := range g.EdgesOfF(f) {
				if e.P == p {
					attach(f, p)
					size++
					break
				}
			}
		}
	}

	visited := make([]bool, numP)
	var try func(f int) bool
	try = func(f int) bool {
		for _, e := range g.EdgesOfF(f) {
			p := e.P
			if visited[p] || quota[p] == 0 {
				continue
			}
			visited[p] = true
			if len(owned[p]) < quota[p] {
				attach(f, p)
				return true
			}
			// p is full: try to push one of its files elsewhere. Iterate
			// over a snapshot because a successful recursive try mutates
			// owned[p] via the displaced file's new attachment elsewhere.
			snapshot := append([]int(nil), owned[p]...)
			for _, f2 := range snapshot {
				if try(f2) {
					// f2 found a new home; it no longer belongs to p.
					detach(f2, p)
					attach(f, p)
					return true
				}
			}
		}
		return false
	}

	for f := 0; f < numF; f++ {
		if owner[f] != -1 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		for i := range visited {
			visited[i] = false
		}
		if try(f) {
			size++
		}
	}
	return owner, size, nil
}
