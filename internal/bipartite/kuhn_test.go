package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// flowMatchingOracle computes the quota-constrained maximum matching size
// via max flow — the ground truth for MatchAugmenting.
func flowMatchingOracle(g *Graph, quota []int) int {
	numP, numF := g.NumP(), g.NumF()
	s, t := 0, 1+numP+numF
	fn := NewFlowNetwork(t + 1)
	for p := 0; p < numP; p++ {
		fn.AddArc(s, 1+p, int64(quota[p]))
	}
	for p := 0; p < numP; p++ {
		for _, e := range g.EdgesOfP(p) {
			fn.AddArc(1+p, 1+numP+e.F, 1)
		}
	}
	for f := 0; f < numF; f++ {
		fn.AddArc(1+numP+f, t, 1)
	}
	return int(fn.MaxFlowDinic(s, t))
}

func TestMatchAugmentingSmall(t *testing.T) {
	g := NewGraph(2, 4)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	owner, size := MatchAugmenting(g, []int{2, 2})
	if size != 4 {
		t.Fatalf("size = %d, want 4 (full matching exists)", size)
	}
	counts := map[int]int{}
	for f, p := range owner {
		if p == -1 {
			t.Fatalf("file %d unmatched: %v", f, owner)
		}
		if g.Weight(p, f) == 0 {
			t.Fatalf("file %d matched to non-adjacent process %d", f, p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c > 2 {
			t.Fatalf("process %d over quota: %d", p, c)
		}
	}
}

func TestMatchAugmentingDegenerate(t *testing.T) {
	g := NewGraph(2, 3)
	owner, size := MatchAugmenting(g, []int{1, 1})
	if size != 0 {
		t.Fatalf("size = %d on empty graph", size)
	}
	for _, p := range owner {
		if p != -1 {
			t.Fatal("matched a file with no edges")
		}
	}
	g.AddEdge(0, 0, 1)
	if _, size := MatchAugmenting(g, []int{0, 0}); size != 0 {
		t.Fatalf("size = %d with zero quotas", size)
	}
}

func TestMatchAugmentingNeedsDisplacement(t *testing.T) {
	// Greedy puts f0 on p0 (quota 1); f1's only home is p0, so f0 must be
	// displaced to p1.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 0, 1)
	g.AddEdge(0, 1, 1)
	owner, size := MatchAugmenting(g, []int{1, 1})
	if size != 2 {
		t.Fatalf("size = %d, want 2 (requires displacement)", size)
	}
	if owner[0] != 1 || owner[1] != 0 {
		t.Fatalf("owner = %v, want [1 0]", owner)
	}
}

// TestPropertyMatchAugmentingMatchesFlow fuzzes the matcher against the
// flow oracle on random graphs and quotas.
func TestPropertyMatchAugmentingMatchesFlow(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numP := 1 + rng.Intn(8)
		numF := 1 + rng.Intn(16)
		g := NewGraph(numP, numF)
		for p := 0; p < numP; p++ {
			for f := 0; f < numF; f++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(p, f, 1)
				}
			}
		}
		quota := make([]int, numP)
		for i := range quota {
			quota[i] = rng.Intn(4)
		}
		owner, size := MatchAugmenting(g, quota)
		want := flowMatchingOracle(g, quota)
		if size != want {
			t.Errorf("seed %d: matcher size %d, flow oracle %d", seed, size, want)
			return false
		}
		counts := make([]int, numP)
		matched := 0
		for f, p := range owner {
			if p == -1 {
				continue
			}
			matched++
			counts[p]++
			if g.Weight(p, f) == 0 {
				t.Errorf("seed %d: non-edge matched", seed)
				return false
			}
		}
		if matched != size {
			t.Errorf("seed %d: owner count %d != size %d", seed, matched, size)
			return false
		}
		for p, c := range counts {
			if c > quota[p] {
				t.Errorf("seed %d: quota violated at %d", seed, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchAugmentingLargeLocalityGraph(t *testing.T) {
	// A realistic Opass-shaped instance: 64 processes, 640 files, 3 random
	// co-located processes per file, quota 10 each.
	rng := rand.New(rand.NewSource(77))
	g := NewGraph(64, 640)
	for f := 0; f < 640; f++ {
		perm := rng.Perm(64)[:3]
		for _, p := range perm {
			g.AddEdge(p, f, 1)
		}
	}
	quota := make([]int, 64)
	for i := range quota {
		quota[i] = 10
	}
	_, size := MatchAugmenting(g, quota)
	want := flowMatchingOracle(g, quota)
	if size != want {
		t.Fatalf("matcher %d != flow %d", size, want)
	}
	if size < 630 {
		t.Fatalf("matching %d unexpectedly small", size)
	}
}
