package bipartite

import (
	"context"
	"fmt"
)

// Algorithm selects the max-flow solver used by AssignMaxLocality.
type Algorithm int

const (
	// EdmondsKarp is Ford-Fulkerson with BFS augmenting paths — the
	// algorithm the paper's implementation uses.
	EdmondsKarp Algorithm = iota
	// Dinic is the blocking-flow algorithm, used by the scalability
	// ablation.
	Dinic
	// Kuhn is the direct augmenting-path matcher (MatchAugmenting). It
	// only applies when every task has the same size, where the flow
	// problem degenerates to quota-constrained bipartite matching; the
	// single-data planner falls back to Edmonds-Karp otherwise.
	Kuhn
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case EdmondsKarp:
		return "edmonds-karp"
	case Dinic:
		return "dinic"
	case Kuhn:
		return "kuhn"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// AssignResult is the outcome of the flow-based locality assignment of
// §IV-B.
type AssignResult struct {
	// Owner[f] is the process assigned file f, or -1 when the flow could
	// not assign f to a single co-located process (no locality edge, or the
	// optimum split the file between processes). Unowned files are the
	// "unmatched tasks" the paper assigns randomly afterwards.
	Owner []int
	// LocalMB is the maximum-flow value: the total megabytes that will be
	// read locally under this assignment before the random repair step.
	LocalMB int64
	// AssignedMB[p] is the load (MB) the matching placed on process p.
	AssignedMB []int64
	// Full reports whether the matching is a full matching in the paper's
	// sense: every file is assigned to a co-located process.
	Full bool
}

// AssignMaxLocality encodes the locality graph as the flow network of
// Figure 5 and computes a maximum locality assignment:
//
//	s --quota[p]--> p --size[f]--> f --size[f]--> t
//
// with one s->p arc per process (capacity: the process's data quota,
// typically TotalSize/m), one p->f arc per locality edge, and one f->t arc
// per file. The max flow saturates as many f->t arcs as capacities allow;
// a file whose f->t arc is saturated through a single process is assigned
// to that process.
//
// sizes[f] must be positive; quotas must be non-negative and should sum to
// at least the total size for a full matching to be possible.
func AssignMaxLocality(g *Graph, quotas, sizes []int64, algo Algorithm) AssignResult {
	res, _ := AssignMaxLocalityContext(context.Background(), g, quotas, sizes, algo)
	return res
}

// AssignMaxLocalityContext is AssignMaxLocality under cooperative
// cancellation: the solver checks ctx between augmenting rounds and returns
// ctx's error instead of a partial assignment when it fires.
func AssignMaxLocalityContext(ctx context.Context, g *Graph, quotas, sizes []int64, algo Algorithm) (AssignResult, error) {
	return assignMaxLocality(ctx, g, quotas, sizes, algo, nil)
}

// AssignMaxLocalityWarmContext is AssignMaxLocalityContext warm-started from
// a prior assignment: for every seed[f] = p whose locality edge survives with
// enough capacity (edge cap, process quota, and file demand all >= sizes[f]),
// the file's full flow is pre-pushed along s->p->f->t before the max-flow run,
// so the solver only augments — and, via residual arcs, re-routes — the flow
// the prior assignment no longer covers. The flow VALUE always equals the
// cold solve's (max flow is unique in value); the specific assignment may
// differ whenever the optimum is not unique, exactly as two cold runs with
// different arc insertion orders may differ.
func AssignMaxLocalityWarmContext(ctx context.Context, g *Graph, quotas, sizes []int64, algo Algorithm, seed []int) (AssignResult, error) {
	return assignMaxLocality(ctx, g, quotas, sizes, algo, seed)
}

// assignMaxLocality is the shared solver body; a nil seed means a cold solve.
func assignMaxLocality(ctx context.Context, g *Graph, quotas, sizes []int64, algo Algorithm, seed []int) (AssignResult, error) {
	if err := ctx.Err(); err != nil {
		return AssignResult{}, err
	}
	if len(quotas) != g.NumP() {
		panic(fmt.Sprintf("bipartite: %d quotas for %d processes", len(quotas), g.NumP()))
	}
	if len(sizes) != g.NumF() {
		panic(fmt.Sprintf("bipartite: %d sizes for %d files", len(sizes), g.NumF()))
	}
	numP, numF := g.NumP(), g.NumF()
	if seed != nil && len(seed) != numF {
		panic(fmt.Sprintf("bipartite: %d seed entries for %d files", len(seed), numF))
	}
	s := 0
	procBase := 1
	fileBase := 1 + numP
	t := 1 + numP + numF
	fn := NewFlowNetwork(t + 1)

	spArc := make([]int, numP)
	for p := 0; p < numP; p++ {
		if quotas[p] < 0 {
			panic(fmt.Sprintf("bipartite: quota[%d] = %d must be non-negative", p, quotas[p]))
		}
		spArc[p] = fn.AddArc(s, procBase+p, quotas[p])
	}
	type pfArc struct {
		p, f, id int
	}
	var pf []pfArc
	for p := 0; p < numP; p++ {
		for _, e := range g.EdgesOfP(p) {
			// The paper caps the process->file edge at the file size; the
			// locality weight is per-chunk data co-located, which for
			// single-chunk files equals the size.
			c := sizes[e.F]
			if e.Weight < c {
				c = e.Weight
			}
			pf = append(pf, pfArc{p: p, f: e.F, id: fn.AddArc(procBase+p, fileBase+e.F, c)})
		}
	}
	ftArc := make([]int, numF)
	for f := 0; f < numF; f++ {
		if sizes[f] <= 0 {
			panic(fmt.Sprintf("bipartite: size[%d] = %d must be positive", f, sizes[f]))
		}
		ftArc[f] = fn.AddArc(fileBase+f, t, sizes[f])
	}

	// Warm start: pre-push each surviving prior assignment's full flow. A
	// seed entry is adopted only when every arc of its s->p->f->t path still
	// has sizes[f] of capacity left; broken entries (replica moved away, edge
	// capped lower, quota exhausted) are skipped and their flow is rebuilt by
	// the solver below.
	var seeded int64
	if seed != nil {
		pfID := make(map[int64]int, len(pf))
		for _, a := range pf {
			pfID[int64(a.p)*int64(numF)+int64(a.f)] = a.id
		}
		for f := 0; f < numF; f++ {
			p := seed[f]
			if p < 0 || p >= numP {
				continue
			}
			id, ok := pfID[int64(p)*int64(numF)+int64(f)]
			if !ok {
				continue
			}
			sz := sizes[f]
			if fn.Residual(spArc[p]) < sz || fn.Residual(id) < sz || fn.Residual(ftArc[f]) < sz {
				continue
			}
			fn.Push(spArc[p], sz)
			fn.Push(id, sz)
			fn.Push(ftArc[f], sz)
			seeded += sz
		}
	}

	var value int64
	fn.SetStop(ctx.Err)
	switch algo {
	case Dinic:
		value = fn.MaxFlowDinic(s, t)
	default:
		value = fn.MaxFlowEK(s, t)
	}
	value += seeded
	if err := fn.StopErr(); err != nil {
		return AssignResult{}, err
	}

	res := AssignResult{
		Owner:      make([]int, numF),
		LocalMB:    value,
		AssignedMB: make([]int64, numP),
		Full:       true,
	}
	// A file belongs to p only when p alone carries the file's full size.
	carried := make([]int64, numF)
	carrier := make([]int, numF)
	split := make([]bool, numF)
	for f := range res.Owner {
		res.Owner[f] = -1
		carrier[f] = -1
	}
	for _, a := range pf {
		fl := fn.Flow(a.id)
		if fl <= 0 {
			continue
		}
		if carrier[a.f] != -1 {
			split[a.f] = true
		}
		carrier[a.f] = a.p
		carried[a.f] += fl
	}
	for f := 0; f < numF; f++ {
		if !split[f] && carrier[f] >= 0 && carried[f] == sizes[f] {
			res.Owner[f] = carrier[f]
			res.AssignedMB[carrier[f]] += sizes[f]
		} else {
			res.Full = false
		}
	}
	return res, nil
}

// MaxMatchingSize computes the size of a maximum cardinality matching in g
// treating every edge as admissible (weights ignored), via unit-capacity
// max flow. Used as a cross-check oracle in tests and by diagnostics to
// report how far a placement is from supporting a full matching.
func MaxMatchingSize(g *Graph, algo Algorithm) int {
	numP, numF := g.NumP(), g.NumF()
	if numP == 0 || numF == 0 {
		return 0
	}
	s := 0
	procBase := 1
	fileBase := 1 + numP
	t := 1 + numP + numF
	fn := NewFlowNetwork(t + 1)
	for p := 0; p < numP; p++ {
		fn.AddArc(s, procBase+p, 1)
	}
	for p := 0; p < numP; p++ {
		for _, e := range g.EdgesOfP(p) {
			fn.AddArc(procBase+p, fileBase+e.F, 1)
		}
	}
	for f := 0; f < numF; f++ {
		fn.AddArc(fileBase+f, t, 1)
	}
	if algo == Dinic {
		return int(fn.MaxFlowDinic(s, t))
	}
	return int(fn.MaxFlowEK(s, t))
}
