package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphEdgeAccounting(t *testing.T) {
	g := NewGraph(2, 3)
	g.AddEdge(0, 1, 64)
	g.AddEdge(0, 2, 64)
	g.AddEdge(1, 1, 64)
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if g.Weight(0, 1) != 64 || g.Weight(1, 0) != 0 {
		t.Fatal("weight lookup wrong")
	}
	// Parallel edge accumulates.
	g.AddEdge(0, 1, 30)
	if g.NumEdges() != 3 || g.Weight(0, 1) != 94 {
		t.Fatalf("parallel edge: edges=%d weight=%d, want 3, 94", g.NumEdges(), g.Weight(0, 1))
	}
	pd, fd := g.Degrees()
	if pd[0] != 2 || fd[1] != 2 {
		t.Fatalf("degrees wrong: %v %v", pd, fd)
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph(1, 1)
	for i, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 5, 1) },
		func() { g.AddEdge(0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAssignFigure5Shape(t *testing.T) {
	// Two processes, four equal files; p0 co-located with f0,f1,f2 and p1
	// with f2,f3. Quota 2 files each (128 MB). A full matching exists:
	// p0 <- {f0,f1}, p1 <- {f2,f3}. The flow must find it even though the
	// greedy choice of f2 for p0 would block p1 (cancellation at work).
	g := NewGraph(2, 4)
	g.AddEdge(0, 0, 64)
	g.AddEdge(0, 1, 64)
	g.AddEdge(0, 2, 64)
	g.AddEdge(1, 2, 64)
	g.AddEdge(1, 3, 64)
	for _, algo := range []Algorithm{EdmondsKarp, Dinic} {
		res := AssignMaxLocality(g, []int64{128, 128}, []int64{64, 64, 64, 64}, algo)
		if !res.Full {
			t.Fatalf("%v: expected a full matching, got %+v", algo, res)
		}
		if res.LocalMB != 256 {
			t.Fatalf("%v: local MB = %d, want 256", algo, res.LocalMB)
		}
		if res.Owner[2] != 1 || res.Owner[3] != 1 || res.Owner[0] != 0 || res.Owner[1] != 0 {
			t.Fatalf("%v: owners = %v", algo, res.Owner)
		}
	}
}

func TestAssignRespectsQuotas(t *testing.T) {
	// One process co-located with everything but quota limits it to 2 files.
	g := NewGraph(2, 4)
	for f := 0; f < 4; f++ {
		g.AddEdge(0, f, 64)
	}
	res := AssignMaxLocality(g, []int64{128, 128}, []int64{64, 64, 64, 64}, EdmondsKarp)
	if res.AssignedMB[0] != 128 {
		t.Fatalf("process 0 assigned %d MB, want quota 128", res.AssignedMB[0])
	}
	if res.Full {
		t.Fatal("matching cannot be full: p1 has no locality edges")
	}
	owned := 0
	for _, o := range res.Owner {
		if o == 0 {
			owned++
		}
		if o == 1 {
			t.Fatal("p1 must own nothing")
		}
	}
	if owned != 2 {
		t.Fatalf("p0 owns %d files, want 2", owned)
	}
}

func TestAssignNoEdgesNothingAssigned(t *testing.T) {
	g := NewGraph(2, 2)
	res := AssignMaxLocality(g, []int64{64, 64}, []int64{64, 64}, EdmondsKarp)
	if res.LocalMB != 0 || res.Full {
		t.Fatalf("empty graph should assign nothing: %+v", res)
	}
	for _, o := range res.Owner {
		if o != -1 {
			t.Fatalf("owner = %v, want all -1", res.Owner)
		}
	}
}

func TestMaxMatchingSizeSmall(t *testing.T) {
	g := NewGraph(3, 3)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.AddEdge(2, 2, 1)
	if got := MaxMatchingSize(g, EdmondsKarp); got != 3 {
		t.Fatalf("matching size = %d, want 3", got)
	}
	if got := MaxMatchingSize(g, Dinic); got != 3 {
		t.Fatalf("dinic matching size = %d, want 3", got)
	}
}

// bruteMatching finds the max cardinality matching by exhaustive search —
// an oracle for small random graphs.
func bruteMatching(g *Graph) int {
	numF := g.NumF()
	best := 0
	var try func(f int, usedP map[int]bool, count int)
	try = func(f int, usedP map[int]bool, count int) {
		if count+(numF-f) <= best {
			return
		}
		if f == numF {
			if count > best {
				best = count
			}
			return
		}
		try(f+1, usedP, count) // leave f unmatched
		for _, e := range g.EdgesOfF(f) {
			if !usedP[e.P] {
				usedP[e.P] = true
				try(f+1, usedP, count+1)
				delete(usedP, e.P)
			}
		}
	}
	try(0, map[int]bool{}, 0)
	return best
}

func TestPropertyMatchingMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numP := 1 + rng.Intn(5)
		numF := 1 + rng.Intn(6)
		g := NewGraph(numP, numF)
		for p := 0; p < numP; p++ {
			for f := 0; f < numF; f++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(p, f, 1)
				}
			}
		}
		want := bruteMatching(g)
		if got := MaxMatchingSize(g, EdmondsKarp); got != want {
			t.Errorf("seed %d: EK matching %d, brute %d", seed, got, want)
			return false
		}
		if got := MaxMatchingSize(g, Dinic); got != want {
			t.Errorf("seed %d: Dinic matching %d, brute %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAssignmentInvariants checks structural invariants of
// AssignMaxLocality on random equal-size inputs: owners are co-located,
// quotas never exceeded, local MB equals the sum of owned sizes when full.
func TestPropertyAssignmentInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numP := 1 + rng.Intn(6)
		numF := numP * (1 + rng.Intn(4))
		const size = 64
		g := NewGraph(numP, numF)
		for f := 0; f < numF; f++ {
			// each file co-located with up to 3 random processes
			perm := rng.Perm(numP)
			r := 1 + rng.Intn(3)
			if r > numP {
				r = numP
			}
			for _, p := range perm[:r] {
				g.AddEdge(p, f, size)
			}
		}
		quota := make([]int64, numP)
		per := int64(numF / numP * size)
		for p := range quota {
			quota[p] = per
		}
		rem := int64(numF%numP) * size
		for p := 0; rem > 0; p = (p + 1) % numP {
			quota[p] += size
			rem -= size
		}
		sizes := make([]int64, numF)
		for f := range sizes {
			sizes[f] = size
		}
		res := AssignMaxLocality(g, quota, sizes, EdmondsKarp)
		var assigned int64
		load := make([]int64, numP)
		for f, o := range res.Owner {
			if o == -1 {
				continue
			}
			if g.Weight(o, f) == 0 {
				t.Errorf("seed %d: file %d assigned to non-co-located process %d", seed, f, o)
				return false
			}
			load[o] += size
			assigned += size
		}
		for p := range load {
			if load[p] > quota[p] {
				t.Errorf("seed %d: process %d over quota: %d > %d", seed, p, load[p], quota[p])
				return false
			}
			if load[p] != res.AssignedMB[p] {
				t.Errorf("seed %d: AssignedMB mismatch", seed)
				return false
			}
		}
		if assigned != res.LocalMB {
			// With equal sizes the flow is integral per file, so the sum of
			// owned sizes must equal the flow value.
			t.Errorf("seed %d: owned %d MB != flow %d MB", seed, assigned, res.LocalMB)
			return false
		}
		// Cross-algorithm agreement on the flow value.
		res2 := AssignMaxLocality(g, quota, sizes, Dinic)
		if res2.LocalMB != res.LocalMB {
			t.Errorf("seed %d: EK %d vs Dinic %d", seed, res.LocalMB, res2.LocalMB)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
