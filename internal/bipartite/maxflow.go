package bipartite

import (
	"fmt"
	"math"
)

// FlowNetwork is a directed flow network with integer capacities stored in a
// forward-star adjacency layout with interleaved residual arcs: arc i and
// arc i^1 are a forward/backward pair, the standard compact representation
// for augmenting-path algorithms.
type FlowNetwork struct {
	n    int
	head []int // head[v] = first arc index of v, -1 when none
	next []int
	to   []int
	cap  []int64
	// scratch for searches
	level []int
	iter  []int
	queue []int
	prevA []int

	// stop, when non-nil, is consulted between augmenting rounds
	// (Edmonds-Karp) and phases (Dinic); a non-nil return aborts the solve
	// early with the flow found so far, recorded in stopErr.
	stop    func() error
	stopErr error
}

// NewFlowNetwork creates a network with n vertices and no arcs.
func NewFlowNetwork(n int) *FlowNetwork {
	if n <= 0 {
		panic(fmt.Sprintf("bipartite: network size %d must be positive", n))
	}
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &FlowNetwork{
		n:     n,
		head:  head,
		level: make([]int, n),
		iter:  make([]int, n),
		prevA: make([]int, n),
	}
}

// N reports the vertex count.
func (fn *FlowNetwork) N() int { return fn.n }

// NumArcs reports the number of forward arcs added.
func (fn *FlowNetwork) NumArcs() int { return len(fn.to) / 2 }

// AddArc adds a directed arc u->v with the given capacity and returns its
// arc ID, usable with Flow after a max-flow run.
func (fn *FlowNetwork) AddArc(u, v int, capacity int64) int {
	if u < 0 || u >= fn.n || v < 0 || v >= fn.n {
		panic(fmt.Sprintf("bipartite: arc (%d,%d) out of range [0,%d)", u, v, fn.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("bipartite: arc (%d,%d) capacity %d must be non-negative", u, v, capacity))
	}
	id := len(fn.to)
	// forward arc
	fn.to = append(fn.to, v)
	fn.cap = append(fn.cap, capacity)
	fn.next = append(fn.next, fn.head[u])
	fn.head[u] = id
	// residual arc
	fn.to = append(fn.to, u)
	fn.cap = append(fn.cap, 0)
	fn.next = append(fn.next, fn.head[v])
	fn.head[v] = id + 1
	return id
}

// Flow reports the flow pushed through forward arc id after a max-flow run:
// the capacity accumulated on its residual twin.
func (fn *FlowNetwork) Flow(id int) int64 {
	if id < 0 || id >= len(fn.to) || id%2 != 0 {
		panic(fmt.Sprintf("bipartite: %d is not a forward arc ID", id))
	}
	return fn.cap[id^1]
}

// Residual reports the remaining capacity on forward arc id.
func (fn *FlowNetwork) Residual(id int) int64 {
	if id < 0 || id >= len(fn.to) || id%2 != 0 {
		panic(fmt.Sprintf("bipartite: %d is not a forward arc ID", id))
	}
	return fn.cap[id]
}

// Push manually routes amount units of flow along forward arc id, consuming
// residual capacity exactly as an augmenting path would. It is the seeding
// primitive for warm-started solves: pushing a prior assignment's flow along
// each arc of its s->p->f->t path yields a feasible flow that MaxFlowEK /
// MaxFlowDinic then extend to optimality, doing only the work the prior
// solution no longer covers. The caller must keep the pushes conservative
// (equal amounts along every arc of a path); Push only checks per-arc
// residual capacity.
func (fn *FlowNetwork) Push(id int, amount int64) {
	if id < 0 || id >= len(fn.to) || id%2 != 0 {
		panic(fmt.Sprintf("bipartite: %d is not a forward arc ID", id))
	}
	if amount < 0 || amount > fn.cap[id] {
		panic(fmt.Sprintf("bipartite: push of %d exceeds residual %d on arc %d", amount, fn.cap[id], id))
	}
	fn.cap[id] -= amount
	fn.cap[id^1] += amount
}

// Reset restores all arcs to their original capacities (flows removed),
// allowing the same network to be solved again with another algorithm.
func (fn *FlowNetwork) Reset() {
	for i := 0; i < len(fn.cap); i += 2 {
		fn.cap[i] += fn.cap[i+1]
		fn.cap[i+1] = 0
	}
}

// SetStop installs a cancellation hook (typically a context's Err method)
// consulted between augmenting rounds and phases. A max-flow run aborted by
// the hook returns the partial flow found so far; StopErr reports why. A nil
// hook never stops. Installing a hook clears any previous stop error.
func (fn *FlowNetwork) SetStop(stop func() error) {
	fn.stop = stop
	fn.stopErr = nil
}

// StopErr reports the error that aborted the most recent max-flow run, or
// nil when it ran to optimality.
func (fn *FlowNetwork) StopErr() error { return fn.stopErr }

// aborted polls the stop hook, latching its first non-nil error.
func (fn *FlowNetwork) aborted() bool {
	if fn.stopErr != nil {
		return true
	}
	if fn.stop == nil {
		return false
	}
	fn.stopErr = fn.stop()
	return fn.stopErr != nil
}

// MaxFlowEK computes the maximum s-t flow with the Edmonds-Karp algorithm —
// Ford-Fulkerson with shortest (BFS) augmenting paths, the method the paper
// names in §IV-B. Augmenting paths implement exactly the paper's
// "cancellation policy": pushing flow along a residual arc revokes an
// earlier task assignment in favor of a globally better one.
func (fn *FlowNetwork) MaxFlowEK(s, t int) int64 {
	fn.checkST(s, t)
	var total int64
	for !fn.aborted() {
		// BFS for a shortest augmenting path, recording the inbound arc.
		for i := range fn.prevA {
			fn.prevA[i] = -1
		}
		fn.queue = fn.queue[:0]
		fn.queue = append(fn.queue, s)
		fn.prevA[s] = -2
		found := false
	bfs:
		for qi := 0; qi < len(fn.queue); qi++ {
			u := fn.queue[qi]
			for a := fn.head[u]; a != -1; a = fn.next[a] {
				v := fn.to[a]
				if fn.cap[a] <= 0 || fn.prevA[v] != -1 {
					continue
				}
				fn.prevA[v] = a
				if v == t {
					found = true
					break bfs
				}
				fn.queue = append(fn.queue, v)
			}
		}
		if !found {
			return total
		}
		// Find the bottleneck along the path.
		var bottleneck int64 = math.MaxInt64
		for v := t; v != s; {
			a := fn.prevA[v]
			if fn.cap[a] < bottleneck {
				bottleneck = fn.cap[a]
			}
			v = fn.to[a^1]
		}
		// Augment.
		for v := t; v != s; {
			a := fn.prevA[v]
			fn.cap[a] -= bottleneck
			fn.cap[a^1] += bottleneck
			v = fn.to[a^1]
		}
		total += bottleneck
	}
	return total
}

// MaxFlowDinic computes the maximum s-t flow with Dinic's algorithm
// (level graph + blocking flows). It produces the same flow value as
// MaxFlowEK in far fewer phases on large, dense locality graphs; the
// scalability ablation (BenchmarkMaxFlow*) quantifies the difference.
func (fn *FlowNetwork) MaxFlowDinic(s, t int) int64 {
	fn.checkST(s, t)
	var total int64
	for !fn.aborted() && fn.bfsLevels(s, t) {
		copy(fn.iter, fn.head)
		for {
			pushed := fn.dfsBlocking(s, t, math.MaxInt64)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

func (fn *FlowNetwork) bfsLevels(s, t int) bool {
	for i := range fn.level {
		fn.level[i] = -1
	}
	fn.queue = fn.queue[:0]
	fn.queue = append(fn.queue, s)
	fn.level[s] = 0
	for qi := 0; qi < len(fn.queue); qi++ {
		u := fn.queue[qi]
		for a := fn.head[u]; a != -1; a = fn.next[a] {
			v := fn.to[a]
			if fn.cap[a] > 0 && fn.level[v] < 0 {
				fn.level[v] = fn.level[u] + 1
				fn.queue = append(fn.queue, v)
			}
		}
	}
	return fn.level[t] >= 0
}

func (fn *FlowNetwork) dfsBlocking(u, t int, limit int64) int64 {
	if u == t {
		return limit
	}
	for ; fn.iter[u] != -1; fn.iter[u] = fn.next[fn.iter[u]] {
		a := fn.iter[u]
		v := fn.to[a]
		if fn.cap[a] <= 0 || fn.level[v] != fn.level[u]+1 {
			continue
		}
		d := limit
		if fn.cap[a] < d {
			d = fn.cap[a]
		}
		pushed := fn.dfsBlocking(v, t, d)
		if pushed > 0 {
			fn.cap[a] -= pushed
			fn.cap[a^1] += pushed
			return pushed
		}
	}
	return 0
}

func (fn *FlowNetwork) checkST(s, t int) {
	if s < 0 || s >= fn.n || t < 0 || t >= fn.n || s == t {
		panic(fmt.Sprintf("bipartite: invalid source/sink %d/%d for network of %d vertices", s, t, fn.n))
	}
}
