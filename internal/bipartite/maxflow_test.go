package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowSimplePath(t *testing.T) {
	fn := NewFlowNetwork(3)
	a := fn.AddArc(0, 1, 10)
	b := fn.AddArc(1, 2, 7)
	if got := fn.MaxFlowEK(0, 2); got != 7 {
		t.Fatalf("max flow = %d, want 7", got)
	}
	if fn.Flow(a) != 7 || fn.Flow(b) != 7 {
		t.Fatalf("arc flows = %d,%d, want 7,7", fn.Flow(a), fn.Flow(b))
	}
	if fn.Residual(a) != 3 {
		t.Fatalf("residual = %d, want 3", fn.Residual(a))
	}
}

func TestMaxFlowClassicDiamond(t *testing.T) {
	// The textbook network where a greedy path choice requires cancellation
	// via the residual arc — the paper's "reassignment" behaviour.
	fn := NewFlowNetwork(4)
	fn.AddArc(0, 1, 1)
	fn.AddArc(0, 2, 1)
	fn.AddArc(1, 2, 1)
	fn.AddArc(1, 3, 1)
	fn.AddArc(2, 3, 1)
	if got := fn.MaxFlowEK(0, 3); got != 2 {
		t.Fatalf("max flow = %d, want 2", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	fn := NewFlowNetwork(4)
	fn.AddArc(0, 1, 5)
	fn.AddArc(2, 3, 5)
	if got := fn.MaxFlowEK(0, 3); got != 0 {
		t.Fatalf("max flow = %d, want 0", got)
	}
}

func TestResetRestoresCapacities(t *testing.T) {
	fn := NewFlowNetwork(3)
	fn.AddArc(0, 1, 10)
	fn.AddArc(1, 2, 7)
	first := fn.MaxFlowEK(0, 2)
	fn.Reset()
	second := fn.MaxFlowDinic(0, 2)
	if first != second || second != 7 {
		t.Fatalf("flows after reset: %d then %d, want 7 both", first, second)
	}
}

func TestFlowPanicsOnResidualArcID(t *testing.T) {
	fn := NewFlowNetwork(2)
	fn.AddArc(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd arc ID")
		}
	}()
	fn.Flow(1)
}

// randomNetwork builds a random DAG-ish flow network for oracle testing.
func randomNetwork(rng *rand.Rand) (*FlowNetwork, [][3]int64, int, int) {
	n := 4 + rng.Intn(8)
	fn := NewFlowNetwork(n)
	var arcs [][3]int64 // u, v, cap
	for i := 0; i < n*2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		c := int64(rng.Intn(20))
		fn.AddArc(u, v, c)
		arcs = append(arcs, [3]int64{int64(u), int64(v), c})
	}
	return fn, arcs, 0, n - 1
}

// fordFulkersonRef is an independent, naive DFS-based max-flow used as an
// oracle. It uses map-based residual capacities, sharing no code with the
// production solvers.
func fordFulkersonRef(n int, arcs [][3]int64, s, t int) int64 {
	res := make([]map[int]int64, n)
	for i := range res {
		res[i] = map[int]int64{}
	}
	for _, a := range arcs {
		res[a[0]][int(a[1])] += a[2]
	}
	var total int64
	for {
		// DFS for any augmenting path.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		stack := []int{s}
		for len(stack) > 0 && parent[t] == -1 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v, c := range res[u] {
				if c > 0 && parent[v] == -1 {
					parent[v] = u
					stack = append(stack, v)
				}
			}
		}
		if parent[t] == -1 {
			return total
		}
		var bottleneck int64 = 1 << 60
		for v := t; v != s; v = parent[v] {
			if c := res[parent[v]][v]; c < bottleneck {
				bottleneck = c
			}
		}
		for v := t; v != s; v = parent[v] {
			res[parent[v]][v] -= bottleneck
			res[v][parent[v]] += bottleneck
		}
		total += bottleneck
	}
}

func TestPropertyMaxFlowMatchesOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn, arcs, s, tt := randomNetwork(rng)
		want := fordFulkersonRef(fn.N(), arcs, s, tt)
		ek := fn.MaxFlowEK(s, tt)
		fn.Reset()
		dn := fn.MaxFlowDinic(s, tt)
		if ek != want || dn != want {
			t.Errorf("seed %d: EK=%d Dinic=%d oracle=%d", seed, ek, dn, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFlowConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn, _, s, tt := randomNetwork(rng)
		type arcRec struct{ u, v, id int }
		var recs []arcRec
		// Recover forward arcs from internal layout via AddArc order: forward
		// arcs are even IDs; reconstruct endpoints from the residual twin.
		for id := 0; id < fn.NumArcs()*2; id += 2 {
			recs = append(recs, arcRec{u: fn.to[id^1], v: fn.to[id], id: id})
		}
		fn.MaxFlowEK(s, tt)
		net := make([]int64, fn.N())
		for _, r := range recs {
			f := fn.Flow(r.id)
			if f < 0 {
				t.Errorf("seed %d: negative flow", seed)
				return false
			}
			net[r.u] -= f
			net[r.v] += f
		}
		for v := 0; v < fn.N(); v++ {
			if v == s || v == tt {
				continue
			}
			if net[v] != 0 {
				t.Errorf("seed %d: conservation violated at %d: %d", seed, v, net[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
