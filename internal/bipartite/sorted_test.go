package bipartite

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestGraphSortedAdjacencyInvariant fuzzes AddEdge with out-of-order
// inserts and parallel-edge accumulation, checking the sorted views and
// binary-searched weights against a map oracle.
func TestGraphSortedAdjacencyInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numP := 1 + rng.Intn(8)
		numF := 1 + rng.Intn(12)
		g := NewGraph(numP, numF)
		type key struct{ p, f int }
		oracle := map[key]int64{}
		for i := 0; i < 60; i++ {
			p, f := rng.Intn(numP), rng.Intn(numF)
			w := int64(1 + rng.Intn(5))
			g.AddEdge(p, f, w)
			oracle[key{p, f}] += w
		}
		if g.NumEdges() != len(oracle) {
			t.Errorf("seed %d: %d edges, oracle %d", seed, g.NumEdges(), len(oracle))
			return false
		}
		for p := 0; p < numP; p++ {
			es := g.EdgesOfP(p)
			if !sort.SliceIsSorted(es, func(a, b int) bool { return es[a].F < es[b].F }) {
				t.Errorf("seed %d: EdgesOfP(%d) unsorted: %v", seed, p, es)
				return false
			}
			for _, e := range es {
				if e.P != p || oracle[key{e.P, e.F}] != e.Weight {
					t.Errorf("seed %d: bad edge %+v (oracle %d)", seed, e, oracle[key{e.P, e.F}])
					return false
				}
			}
		}
		for f := 0; f < numF; f++ {
			es := g.EdgesOfF(f)
			if !sort.SliceIsSorted(es, func(a, b int) bool { return es[a].P < es[b].P }) {
				t.Errorf("seed %d: EdgesOfF(%d) unsorted: %v", seed, f, es)
				return false
			}
			for _, e := range es {
				if e.F != f || oracle[key{e.P, e.F}] != e.Weight {
					t.Errorf("seed %d: bad edge %+v", seed, e)
					return false
				}
			}
		}
		for p := 0; p < numP; p++ {
			for f := 0; f < numF; f++ {
				if got := g.Weight(p, f); got != oracle[key{p, f}] {
					t.Errorf("seed %d: Weight(%d,%d) = %d, want %d", seed, p, f, got, oracle[key{p, f}])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGraphEdgeViewsAreStableAcrossCalls pins the zero-copy contract: two
// calls return the same backing data and repeated calls do not allocate
// fresh sorted copies (the regression that made every MatchAugmenting
// visit re-sort adjacency).
func TestGraphEdgeViewsAreStableAcrossCalls(t *testing.T) {
	g := NewGraph(3, 3)
	g.AddEdge(2, 1, 4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 1, 3)
	a, b := g.EdgesOfF(1), g.EdgesOfF(1)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("views %v / %v, want 3 edges each", a, b)
	}
	if &a[0] != &b[0] {
		t.Fatal("EdgesOfF returned different backing arrays; views must be zero-copy")
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = g.EdgesOfF(1)
		_ = g.EdgesOfP(2)
	})
	if allocs != 0 {
		t.Fatalf("edge views allocate %.1f allocs per call pair, want 0", allocs)
	}
}

// flowMatchingOracleEK mirrors flowMatchingOracle but solves with
// Edmonds-Karp, so the parity test covers both flow algorithms.
func flowMatchingOracleEK(g *Graph, quota []int) int {
	numP, numF := g.NumP(), g.NumF()
	s, t := 0, 1+numP+numF
	fn := NewFlowNetwork(t + 1)
	for p := 0; p < numP; p++ {
		fn.AddArc(s, 1+p, int64(quota[p]))
	}
	for p := 0; p < numP; p++ {
		for _, e := range g.EdgesOfP(p) {
			fn.AddArc(1+p, 1+numP+e.F, 1)
		}
	}
	for f := 0; f < numF; f++ {
		fn.AddArc(1+numP+f, t, 1)
	}
	return int(fn.MaxFlowEK(s, t))
}

// TestMatchAugmentingParityRandomQuotas is the detach-hardening property
// test: on random graphs with randomized quota vectors (including zero and
// over-provisioned quotas), Kuhn's matching size must equal both max-flow
// formulations exactly.
func TestMatchAugmentingParityRandomQuotas(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numP := 1 + rng.Intn(10)
		numF := 1 + rng.Intn(24)
		g := NewGraph(numP, numF)
		for p := 0; p < numP; p++ {
			for f := 0; f < numF; f++ {
				if rng.Float64() < 0.25 {
					g.AddEdge(p, f, int64(1+rng.Intn(64)))
				}
			}
		}
		quota := make([]int, numP)
		for i := range quota {
			// Heavy tail: mostly small quotas, occasionally far more than
			// numF so some processes can absorb everything.
			quota[i] = rng.Intn(5)
			if rng.Float64() < 0.1 {
				quota[i] = numF + rng.Intn(4)
			}
		}
		_, kuhn := MatchAugmenting(g, quota)
		dinic := flowMatchingOracle(g, quota)
		ek := flowMatchingOracleEK(g, quota)
		if kuhn != dinic || kuhn != ek {
			t.Errorf("seed %d: kuhn %d, dinic %d, edmonds-karp %d", seed, kuhn, dinic, ek)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
