package bipartite

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomUnitGraph builds a random bipartite graph with unit edge weights.
func randomUnitGraph(rng *rand.Rand, numP, numF int, density float64) *Graph {
	g := NewGraph(numP, numF)
	for p := 0; p < numP; p++ {
		for f := 0; f < numF; f++ {
			if rng.Float64() < density {
				g.AddEdge(p, f, 1)
			}
		}
	}
	return g
}

// dropProc rebuilds g without any edge of process p — the matching-level
// picture of that process's node losing all its replicas.
func dropProc(g *Graph, drop int) *Graph {
	out := NewGraph(g.NumP(), g.NumF())
	for p := 0; p < g.NumP(); p++ {
		if p == drop {
			continue
		}
		for _, e := range g.EdgesOfP(p) {
			out.AddEdge(p, e.F, e.Weight)
		}
	}
	return out
}

func checkMatching(t *testing.T, g *Graph, quota []int, owner []int, size int) {
	t.Helper()
	owned := make([]int, g.NumP())
	got := 0
	for f, p := range owner {
		if p == -1 {
			continue
		}
		if g.Weight(p, f) == 0 {
			t.Fatalf("file %d matched to process %d without an edge", f, p)
		}
		owned[p]++
		got++
	}
	for p, n := range owned {
		if n > quota[p] {
			t.Fatalf("process %d owns %d files, quota %d", p, n, quota[p])
		}
	}
	if got != size {
		t.Fatalf("owner array carries %d matches, size reports %d", got, size)
	}
}

// TestWarmMatchingSeededIdentity: seeding Kuhn with a maximum matching that
// is still fully legal leaves nothing to augment, so the warm output is the
// seed byte for byte. This is the invariant the planner's clean warm path
// relies on.
func TestWarmMatchingSeededIdentity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numP := 1 + rng.Intn(6)
		numF := 1 + rng.Intn(12)
		g := randomUnitGraph(rng, numP, numF, 0.4)
		quota := make([]int, numP)
		for p := range quota {
			quota[p] = 1 + rng.Intn(3)
		}
		cold, coldSize := MatchAugmenting(g, quota)
		warm, warmSize, err := MatchAugmentingWarmContext(context.Background(), g, quota, cold)
		if err != nil {
			t.Error(err)
			return false
		}
		if warmSize != coldSize {
			t.Errorf("seed %d: warm size %d, cold %d", seed, warmSize, coldSize)
			return false
		}
		for f := range cold {
			if warm[f] != cold[f] {
				t.Errorf("seed %d: file %d warm owner %d, cold %d", seed, f, warm[f], cold[f])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmMatchingAfterMutation: a stale seed (computed before a process
// lost all its edges) still yields a maximum matching of the mutated graph,
// structurally valid and size-equal to a cold solve.
func TestWarmMatchingAfterMutation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numP := 2 + rng.Intn(5)
		numF := 2 + rng.Intn(12)
		g := randomUnitGraph(rng, numP, numF, 0.5)
		quota := make([]int, numP)
		for p := range quota {
			quota[p] = 1 + rng.Intn(3)
		}
		stale, _ := MatchAugmenting(g, quota)
		mutated := dropProc(g, rng.Intn(numP))
		_, coldSize, err := MatchAugmentingContext(context.Background(), mutated, quota)
		if err != nil {
			t.Error(err)
			return false
		}
		warm, warmSize, err := MatchAugmentingWarmContext(context.Background(), mutated, quota, stale)
		if err != nil {
			t.Error(err)
			return false
		}
		if warmSize != coldSize {
			t.Errorf("seed %d: warm size %d != cold size %d on mutated graph", seed, warmSize, coldSize)
			return false
		}
		checkMatching(t, mutated, quota, warm, warmSize)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmMatchingIgnoresGarbageSeed: out-of-range and edge-less seed
// entries are dropped, not adopted.
func TestWarmMatchingIgnoresGarbageSeed(t *testing.T) {
	g := NewGraph(2, 3)
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 1, 1)
	quota := []int{1, 1}
	seed := []int{1, 5, -7} // file 0: no (1,0) edge; file 1: p out of range; file 2: negative
	owner, size, err := MatchAugmentingWarmContext(context.Background(), g, quota, seed)
	if err != nil {
		t.Fatal(err)
	}
	checkMatching(t, g, quota, owner, size)
	if size != 2 || owner[0] != 0 || owner[1] != 1 || owner[2] != -1 {
		t.Fatalf("owner = %v size = %d, want [0 1 -1] size 2", owner, size)
	}
}

// warmFlowFixture builds the equal-size assignment setup of the property
// tests: numF files of 64 MB, quotas split evenly.
func warmFlowFixture(rng *rand.Rand) (g *Graph, quotas, sizes []int64) {
	numP := 2 + rng.Intn(5)
	numF := numP * (1 + rng.Intn(4))
	const size = 64
	g = NewGraph(numP, numF)
	for f := 0; f < numF; f++ {
		perm := rng.Perm(numP)
		r := 1 + rng.Intn(3)
		if r > numP {
			r = numP
		}
		for _, p := range perm[:r] {
			g.AddEdge(p, f, size)
		}
	}
	quotas = make([]int64, numP)
	for p := range quotas {
		quotas[p] = int64(numF/numP) * size
	}
	for p, rem := 0, int64(numF%numP)*size; rem > 0; p = (p + 1) % numP {
		quotas[p] += size
		rem -= size
	}
	sizes = make([]int64, numF)
	for f := range sizes {
		sizes[f] = size
	}
	return g, quotas, sizes
}

func checkFlowAssignment(t *testing.T, g *Graph, quotas, sizes []int64, res AssignResult) {
	t.Helper()
	load := make([]int64, g.NumP())
	for f, o := range res.Owner {
		if o == -1 {
			continue
		}
		if g.Weight(o, f) == 0 {
			t.Fatalf("file %d assigned to non-co-located process %d", f, o)
		}
		load[o] += sizes[f]
	}
	for p := range load {
		if load[p] > quotas[p] {
			t.Fatalf("process %d over quota: %d > %d", p, load[p], quotas[p])
		}
		if load[p] != res.AssignedMB[p] {
			t.Fatalf("process %d AssignedMB %d, owner-derived load %d", p, res.AssignedMB[p], load[p])
		}
	}
}

// TestWarmFlowValueParity: for both solvers, a warm-started solve seeded
// with a prior assignment — fresh or stale — reaches exactly the cold
// maximum-flow value (max flow is unique in value) and decodes to a
// structurally valid assignment.
func TestWarmFlowValueParity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, quotas, sizes := warmFlowFixture(rng)
		for _, algo := range []Algorithm{EdmondsKarp, Dinic} {
			cold := AssignMaxLocality(g, quotas, sizes, algo)

			// Fresh seed on the unchanged graph.
			warm, err := AssignMaxLocalityWarmContext(context.Background(), g, quotas, sizes, algo, cold.Owner)
			if err != nil {
				t.Error(err)
				return false
			}
			if warm.LocalMB != cold.LocalMB {
				t.Errorf("seed %d %v: warm value %d, cold %d", seed, algo, warm.LocalMB, cold.LocalMB)
				return false
			}
			checkFlowAssignment(t, g, quotas, sizes, warm)

			// Stale seed after a process loses its edges.
			mutated := dropProc(g, rng.Intn(g.NumP()))
			coldM := AssignMaxLocality(mutated, quotas, sizes, algo)
			warmM, err := AssignMaxLocalityWarmContext(context.Background(), mutated, quotas, sizes, algo, cold.Owner)
			if err != nil {
				t.Error(err)
				return false
			}
			if warmM.LocalMB != coldM.LocalMB {
				t.Errorf("seed %d %v: stale-seeded value %d, cold %d", seed, algo, warmM.LocalMB, coldM.LocalMB)
				return false
			}
			checkFlowAssignment(t, mutated, quotas, sizes, warmM)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPush pins the seeding primitive's semantics and its guard rails.
func TestPush(t *testing.T) {
	fn := NewFlowNetwork(3)
	id := fn.AddArc(0, 1, 10)
	fn.Push(id, 4)
	if got := fn.Flow(id); got != 4 {
		t.Fatalf("Flow = %d after Push(4), want 4", got)
	}
	if got := fn.Residual(id); got != 6 {
		t.Fatalf("Residual = %d after Push(4), want 6", got)
	}
	// Pushed flow must survive a solve as part of the total accounting:
	// the only s->t path is saturated by topping up the remaining 6.
	fn.AddArc(1, 2, 10)
	if got := fn.MaxFlowEK(0, 2); got != 6 {
		t.Fatalf("MaxFlowEK after partial push = %d, want 6 (4 already routed)", got)
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("over-push", func() { fn.Push(id, 7) })
	mustPanic("negative push", func() { fn.Push(id, -1) })
	mustPanic("residual arc id", func() { fn.Push(id^1, 1) })
}
