// Package blast models the mpiBLAST-style application of §IV-D and §V-A3:
// a gene-sequence database is formatted into fragments stored in the
// distributed file system, and a master process dispatches
// fragment-search tasks to slave processes as they go idle. Search times
// are irregular ("the execution times of data processing tasks could vary
// greatly and are difficult to predict according to the input data"), which
// is why the application uses dynamic assignment in the first place.
//
// Two masters are provided through the execution engine's TaskSource
// seam: the paper's baseline (random task per idle worker, oblivious to
// data placement) and Opass (precomputed per-worker lists A* with
// co-location-aware stealing).
package blast

import (
	"fmt"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/workload"
)

// Database is a formatted sequence database: a set of fragments, each one
// chunk in the DFS (mpiformatdb's output layout).
type Database struct {
	Name       string
	FragmentMB float64
	Fragments  []dfs.ChunkID
}

// FormatDB partitions a database of numFragments fragments of fragmentMB
// each into the file system — the mpiformatdb step.
func FormatDB(fs *dfs.FileSystem, name string, numFragments int, fragmentMB float64) (*Database, error) {
	if numFragments <= 0 || fragmentMB <= 0 {
		return nil, fmt.Errorf("blast: invalid database %d x %v MB", numFragments, fragmentMB)
	}
	sizes := make([]float64, numFragments)
	for i := range sizes {
		sizes[i] = fragmentMB
	}
	f, err := fs.CreateChunks(name, sizes)
	if err != nil {
		return nil, err
	}
	return &Database{Name: name, FragmentMB: fragmentMB, Fragments: f.Chunks}, nil
}

// Mode selects the master's dispatch policy.
type Mode int

// Dispatch policies.
const (
	// RandomDispatch is the paper's baseline: an idle worker receives a
	// uniformly random unexecuted task.
	RandomDispatch Mode = iota
	// OpassDispatch follows §IV-D: per-worker lists computed by the
	// matching planner, with longest-list co-location-aware stealing.
	OpassDispatch
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case RandomDispatch:
		return "random-dynamic"
	case OpassDispatch:
		return "opass-dynamic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Job is one parallel search: every fragment of the database is scanned
// once by some worker (one worker per cluster node).
type Job struct {
	Topo *cluster.Topology
	FS   *dfs.FileSystem
	DB   *Database
	// SearchMean/SearchSigma parameterize the irregular per-fragment
	// search time (log-normal); SearchMean <= 0 disables compute.
	SearchMean  float64
	SearchSigma float64
	// Seed drives dispatch randomness and the search-time draw.
	Seed int64
}

// problem builds the fragment-scan assignment problem.
func (j *Job) problem() (*core.Problem, error) {
	procNode := make([]int, j.Topo.NumNodes())
	for i := range procNode {
		procNode[i] = i
	}
	p := &core.Problem{ProcNode: procNode, FS: j.FS}
	for i, c := range j.DB.Fragments {
		p.Tasks = append(p.Tasks, core.Task{
			ID:     i,
			Inputs: []core.Input{{Chunk: c, SizeMB: j.DB.FragmentMB}},
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Run executes the job under the given dispatch mode and returns the
// engine trace. The same Seed yields identical fragment search times across
// modes, so comparisons are paired.
func (j *Job) Run(mode Mode) (*engine.Result, error) {
	if j.Topo == nil || j.FS == nil || j.DB == nil {
		return nil, fmt.Errorf("blast: job requires Topo, FS and DB")
	}
	p, err := j.problem()
	if err != nil {
		return nil, err
	}
	var compute func(int) float64
	if j.SearchMean > 0 {
		sigma := j.SearchSigma
		if sigma == 0 {
			sigma = 0.8
		}
		compute = workload.LogNormalCompute(len(p.Tasks), j.SearchMean, sigma, j.Seed+1)
	}
	var src engine.TaskSource
	switch mode {
	case OpassDispatch:
		plan, err := core.SingleData{Seed: j.Seed}.Assign(p)
		if err != nil {
			return nil, err
		}
		sched, err := core.NewDynamicScheduler(p, plan)
		if err != nil {
			return nil, err
		}
		src = sched
	case RandomDispatch:
		src = core.NewRandomDispatcher(p, j.Seed)
	default:
		return nil, fmt.Errorf("blast: unknown mode %v", mode)
	}
	return engine.Run(engine.Options{
		Topo:        j.Topo,
		FS:          j.FS,
		Problem:     p,
		ComputeTime: compute,
		Strategy:    mode.String(),
	}, src)
}
