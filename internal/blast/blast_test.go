package blast

import (
	"testing"

	"opass/internal/cluster"
	"opass/internal/dfs"
	"opass/internal/metrics"
)

func setup(t testing.TB, nodes, fragments int, seed int64) *Job {
	t.Helper()
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed})
	db, err := FormatDB(fs, "/nt", fragments, 64)
	if err != nil {
		t.Fatal(err)
	}
	return &Job{Topo: topo, FS: fs, DB: db, Seed: seed}
}

func TestFormatDBShape(t *testing.T) {
	j := setup(t, 8, 40, 1)
	if len(j.DB.Fragments) != 40 {
		t.Fatalf("fragments = %d, want 40", len(j.DB.Fragments))
	}
	for _, c := range j.DB.Fragments {
		if j.FS.Chunk(c).SizeMB != 64 {
			t.Fatal("fragment size wrong")
		}
	}
}

func TestFormatDBValidation(t *testing.T) {
	topo := cluster.New(4, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: 1})
	if _, err := FormatDB(fs, "/bad", 0, 64); err == nil {
		t.Fatal("zero fragments must fail")
	}
	if _, err := FormatDB(fs, "/bad2", 4, 0); err == nil {
		t.Fatal("zero size must fail")
	}
}

func TestRunBothModesScanAllFragments(t *testing.T) {
	for _, mode := range []Mode{RandomDispatch, OpassDispatch} {
		j := setup(t, 8, 40, 2)
		res, err := j.Run(mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.TasksRun != 40 {
			t.Fatalf("%v: ran %d tasks, want 40", mode, res.TasksRun)
		}
		if res.Strategy != mode.String() {
			t.Fatalf("%v: strategy label %q", mode, res.Strategy)
		}
	}
}

func TestOpassDispatchBeatsRandom(t *testing.T) {
	// Figure 11: with Opass the average per-read I/O time drops well below
	// the random master's.
	jr := setup(t, 16, 160, 3)
	jr.SearchMean = 0.5
	resRandom, err := jr.Run(RandomDispatch)
	if err != nil {
		t.Fatal(err)
	}
	jo := setup(t, 16, 160, 3)
	jo.SearchMean = 0.5
	resOpass, err := jo.Run(OpassDispatch)
	if err != nil {
		t.Fatal(err)
	}
	mr := metrics.Summarize(resRandom.IOTimes())
	mo := metrics.Summarize(resOpass.IOTimes())
	if mo.Mean >= mr.Mean {
		t.Fatalf("opass mean I/O %v >= random %v", mo.Mean, mr.Mean)
	}
	if resOpass.LocalFraction() <= resRandom.LocalFraction() {
		t.Fatalf("opass locality %v <= random %v", resOpass.LocalFraction(), resRandom.LocalFraction())
	}
}

func TestIrregularComputeLoadBalances(t *testing.T) {
	// Dynamic dispatch must keep workers busy despite irregular search
	// times: no worker should finish wildly earlier than the makespan.
	j := setup(t, 8, 80, 4)
	j.SearchMean = 1.0
	j.SearchSigma = 1.2
	res, err := j.Run(OpassDispatch)
	if err != nil {
		t.Fatal(err)
	}
	for proc, fin := range res.ProcFinish {
		if fin < res.Makespan*0.5 {
			t.Fatalf("worker %d idle half the job: finished %v of %v", proc, fin, res.Makespan)
		}
	}
}

func TestPairedSearchTimes(t *testing.T) {
	// The same seed gives both modes identical per-fragment search costs.
	j1 := setup(t, 4, 16, 5)
	j1.SearchMean = 1.0
	r1, err := j1.Run(RandomDispatch)
	if err != nil {
		t.Fatal(err)
	}
	j2 := setup(t, 4, 16, 5)
	j2.SearchMean = 1.0
	r2, err := j2.Run(OpassDispatch)
	if err != nil {
		t.Fatal(err)
	}
	// Total compute is identical, so makespans differ only through I/O and
	// packing; both must exceed the pure compute lower bound.
	if r1.TasksRun != r2.TasksRun {
		t.Fatal("modes ran different task counts")
	}
}

func TestRunValidation(t *testing.T) {
	j := &Job{}
	if _, err := j.Run(RandomDispatch); err == nil {
		t.Fatal("empty job must fail")
	}
	j2 := setup(t, 4, 8, 6)
	if _, err := j2.Run(Mode(42)); err == nil {
		t.Fatal("unknown mode must fail")
	}
}

func TestModeString(t *testing.T) {
	if RandomDispatch.String() != "random-dynamic" || OpassDispatch.String() != "opass-dynamic" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}
