// Package cluster models the physical test cluster: a set of nodes, each
// with a disk and a full-duplex NIC, attached to one non-blocking switch
// (the topology of the PRObE Marmot testbed the Opass paper evaluates on).
//
// The package maps every node onto three simnet resources — disk, NIC
// transmit, NIC receive — and exposes the resource paths that a local or a
// remote chunk read traverses. It also carries the calibrated hardware
// profile that converts the simulator's fluid-flow arithmetic into seconds
// comparable to the paper's measurements.
package cluster

import (
	"fmt"

	"opass/internal/simnet"
)

// NodeID identifies a cluster node. Nodes are numbered 0..N-1.
type NodeID int

// Profile is the per-node hardware calibration.
type Profile struct {
	// DiskMBps is the sequential read bandwidth of the node's disk.
	DiskMBps float64
	// DiskSeekPenalty is the concurrency degradation factor alpha: with k
	// concurrent streams the disk's aggregate bandwidth is
	// DiskMBps/(1+alpha*(k-1)).
	DiskSeekPenalty float64
	// NICMBps is the bandwidth of each NIC direction (full duplex).
	NICMBps float64
	// ReadLatency is the fixed per-request startup cost in seconds
	// (open + seek + RPC round trip).
	ReadLatency float64
}

// Marmot returns the profile calibrated against the paper's testbed: 2 TB
// SATA disks (~75 MB/s sequential reads), Gigabit Ethernet (~117 MB/s per
// direction), and a startup latency that puts an uncontended local 64 MB
// chunk read at roughly 0.87 s — matching the ~0.9 s the paper reports with
// Opass enabled. The seek penalty is set so that contended remote chunk
// reads average a bit over 2 s with a worst case near 12 s, the figures the
// paper quotes in §V-C2.
func Marmot() Profile {
	return Profile{
		DiskMBps:        75,
		DiskSeekPenalty: 0.3,
		NICMBps:         117,
		ReadLatency:     0.015,
	}
}

// Topology is a cluster of nodes on a single switch, wired into a
// simnet.Network. Nodes may be homogeneous (New) or carry per-node
// hardware profiles (NewHeterogeneous) for the §IV-D heterogeneous
// environment experiments. Racks>1 assigns nodes to racks round-robin for
// rack-aware placement experiments; the switch itself stays non-blocking,
// as on Marmot.
type Topology struct {
	n        int
	racks    int
	profiles []Profile
	net      *simnet.Network
	disk     []simnet.ResourceID
	tx       []simnet.ResourceID
	rx       []simnet.ResourceID

	// Oversubscribed rack uplinks (nil when the fabric is non-blocking, as
	// on Marmot): cross-rack reads traverse the source rack's uplink-out
	// and the destination rack's uplink-in.
	uplinkOut []simnet.ResourceID
	uplinkIn  []simnet.ResourceID
}

// New builds a Topology of n identical nodes with profile p and one rack.
func New(n int, p Profile) *Topology {
	return NewRacked(n, 1, p)
}

// NewRacked builds a Topology of n identical nodes spread round-robin
// across racks.
func NewRacked(n, racks int, p Profile) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: node count %d must be positive", n))
	}
	profiles := make([]Profile, n)
	for i := range profiles {
		profiles[i] = p
	}
	return NewHeterogeneousRacked(profiles, racks)
}

// NewHeterogeneous builds a Topology with one profile per node and a
// single rack — the heterogeneous environment of §IV-D, where disk and NIC
// speeds differ between nodes.
func NewHeterogeneous(profiles []Profile) *Topology {
	return NewHeterogeneousRacked(profiles, 1)
}

// NewHeterogeneousRacked builds a heterogeneous Topology across racks.
func NewHeterogeneousRacked(profiles []Profile, racks int) *Topology {
	n := len(profiles)
	if n == 0 {
		panic("cluster: no node profiles")
	}
	if racks <= 0 {
		panic(fmt.Sprintf("cluster: rack count %d must be positive", racks))
	}
	t := &Topology{
		n:        n,
		racks:    racks,
		profiles: append([]Profile(nil), profiles...),
		net:      simnet.New(),
		disk:     make([]simnet.ResourceID, n),
		tx:       make([]simnet.ResourceID, n),
		rx:       make([]simnet.ResourceID, n),
	}
	for i, p := range t.profiles {
		if p.DiskMBps <= 0 || p.NICMBps <= 0 || p.ReadLatency < 0 || p.DiskSeekPenalty < 0 {
			panic(fmt.Sprintf("cluster: invalid profile for node %d: %+v", i, p))
		}
		t.disk[i] = t.net.AddResource(fmt.Sprintf("node%d/disk", i), p.DiskMBps, p.DiskSeekPenalty)
		t.tx[i] = t.net.AddResource(fmt.Sprintf("node%d/tx", i), p.NICMBps, 0)
		t.rx[i] = t.net.AddResource(fmt.Sprintf("node%d/rx", i), p.NICMBps, 0)
	}
	return t
}

// Net exposes the underlying fluid-flow network.
func (t *Topology) Net() *simnet.Network { return t.net }

// Profile returns node 0's hardware profile — the cluster profile for
// homogeneous topologies.
func (t *Topology) Profile() Profile { return t.profiles[0] }

// NodeProfile returns the hardware profile of a specific node.
func (t *Topology) NodeProfile(node int) Profile {
	t.check(node)
	return t.profiles[node]
}

// ReadLatency is the fixed startup cost of a read served by node src
// (dominated by the source disk's seek and the RPC round trip).
func (t *Topology) ReadLatency(src int) float64 {
	t.check(src)
	return t.profiles[src].ReadLatency
}

// NumNodes reports the cluster size.
func (t *Topology) NumNodes() int { return t.n }

// RackOf reports the rack a node belongs to (round-robin assignment).
func (t *Topology) RackOf(node int) int {
	t.check(node)
	return node % t.racks
}

// NumRacks reports the rack count.
func (t *Topology) NumRacks() int { return t.racks }

func (t *Topology) check(node int) {
	if node < 0 || node >= t.n {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", node, t.n))
	}
}

// LocalReadPath is the resource path of a read served from the reader's own
// disk: only that disk is used — no network traversal.
func (t *Topology) LocalReadPath(node int) []simnet.ResourceID {
	t.check(node)
	return []simnet.ResourceID{t.disk[node]}
}

// RackNodes returns the members of rack r, node-ascending.
func (t *Topology) RackNodes(r int) []int {
	if r < 0 || r >= t.racks {
		panic(fmt.Sprintf("cluster: rack %d out of range [0,%d)", r, t.racks))
	}
	var nodes []int
	for i := 0; i < t.n; i++ {
		if t.RackOf(i) == r {
			nodes = append(nodes, i)
		}
	}
	return nodes
}

// SetRackUplinks installs oversubscribed rack uplinks of the given
// bandwidth per direction: every cross-rack read additionally traverses the
// source rack's outbound uplink and the destination rack's inbound uplink,
// so racks contend for their shared links to the core switch. Call before
// running traffic; it panics when the topology has a single rack.
func (t *Topology) SetRackUplinks(uplinkMBps float64) {
	if uplinkMBps <= 0 {
		panic(fmt.Sprintf("cluster: uplink bandwidth %v must be positive", uplinkMBps))
	}
	per := make([]float64, t.racks)
	for r := range per {
		per[r] = uplinkMBps
	}
	t.SetPerRackUplinks(per)
}

// SetPerRackUplinks installs rack uplinks with an individual bandwidth per
// rack (one value per rack, both directions) — the shape
// SetRackOversubscription needs when racks have unequal member counts.
// Panics when the topology has a single rack or any bandwidth is
// non-positive.
func (t *Topology) SetPerRackUplinks(uplinkMBps []float64) {
	if t.racks <= 1 {
		panic("cluster: rack uplinks need at least two racks")
	}
	if len(uplinkMBps) != t.racks {
		panic(fmt.Sprintf("cluster: %d uplink bandwidths for %d racks", len(uplinkMBps), t.racks))
	}
	t.uplinkOut = make([]simnet.ResourceID, t.racks)
	t.uplinkIn = make([]simnet.ResourceID, t.racks)
	for r := 0; r < t.racks; r++ {
		bw := uplinkMBps[r]
		if bw <= 0 {
			panic(fmt.Sprintf("cluster: rack %d uplink bandwidth %v must be positive", r, bw))
		}
		t.uplinkOut[r] = t.net.AddResource(fmt.Sprintf("rack%d/uplink-out", r), bw, 0)
		t.uplinkIn[r] = t.net.AddResource(fmt.Sprintf("rack%d/uplink-in", r), bw, 0)
	}
}

// SetRackOversubscription installs uplinks sized at each rack's aggregate
// NIC bandwidth divided by ratio: ratio 1 gives a non-blocking fabric (the
// uplink exactly matches what the rack's nodes can push), ratio 4 the
// classic 4:1 oversubscribed core. Every rack is sized from its actual
// member list — uneven racks (nodes % racks != 0) get proportionally
// different uplinks.
func (t *Topology) SetRackOversubscription(ratio float64) {
	if ratio <= 0 {
		panic(fmt.Sprintf("cluster: oversubscription ratio %v must be positive", ratio))
	}
	per := make([]float64, t.racks)
	for i := 0; i < t.n; i++ {
		per[t.RackOf(i)] += t.profiles[i].NICMBps
	}
	for r := range per {
		per[r] /= ratio
	}
	t.SetPerRackUplinks(per)
}

// HasRackUplinks reports whether cross-rack traffic is bandwidth-limited.
func (t *Topology) HasRackUplinks() bool { return t.uplinkOut != nil }

// RemoteReadPath is the resource path of a read served by src on behalf of a
// process running on dst: the source disk, the source NIC transmit
// direction, and the destination NIC receive direction. With rack uplinks
// configured, cross-rack reads also traverse the two rack uplinks; a
// non-blocking core switch itself adds no resource.
func (t *Topology) RemoteReadPath(src, dst int) []simnet.ResourceID {
	t.check(src)
	t.check(dst)
	if src == dst {
		return t.LocalReadPath(src)
	}
	path := []simnet.ResourceID{t.disk[src], t.tx[src]}
	if t.uplinkOut != nil && t.RackOf(src) != t.RackOf(dst) {
		path = append(path, t.uplinkOut[t.RackOf(src)], t.uplinkIn[t.RackOf(dst)])
	}
	return append(path, t.rx[dst])
}

// ReadPath returns the appropriate path for a read served by src for a
// process on dst, local or remote.
func (t *Topology) ReadPath(src, dst int) []simnet.ResourceID {
	if src == dst {
		return t.LocalReadPath(src)
	}
	return t.RemoteReadPath(src, dst)
}

// DegradeNode scales a node's device throughput to the given fractions of
// its healthy capacity: the disk to diskFactor × DiskMBps and both NIC
// directions to nicFactor × NICMBps. Factors must be positive; 1 restores
// full health. The engine's degradation fault injection drives this — rates
// of in-flight transfers adjust from the current virtual instant, modeling
// a sick disk or flapping NIC rather than a crash.
func (t *Topology) DegradeNode(node int, diskFactor, nicFactor float64) {
	t.check(node)
	if diskFactor <= 0 || nicFactor <= 0 {
		panic(fmt.Sprintf("cluster: degrade node %d: factors %v/%v must be positive", node, diskFactor, nicFactor))
	}
	t.net.SetScale(t.disk[node], diskFactor)
	t.net.SetScale(t.tx[node], nicFactor)
	t.net.SetScale(t.rx[node], nicFactor)
}

// DiskResource exposes the disk resource ID of a node (used by tests).
func (t *Topology) DiskResource(node int) simnet.ResourceID {
	t.check(node)
	return t.disk[node]
}

// UncontendedLocalRead returns the time an isolated local read of sizeMB
// takes under this profile — the calibration anchor for the experiments.
func (t *Topology) UncontendedLocalRead(sizeMB float64) float64 {
	return t.profiles[0].ReadLatency + sizeMB/t.profiles[0].DiskMBps
}

// UncontendedRemoteRead returns the time an isolated remote read of sizeMB
// takes: bottlenecked by the slower of disk and NIC.
func (t *Topology) UncontendedRemoteRead(sizeMB float64) float64 {
	bw := t.profiles[0].DiskMBps
	if t.profiles[0].NICMBps < bw {
		bw = t.profiles[0].NICMBps
	}
	return t.profiles[0].ReadLatency + sizeMB/bw
}
