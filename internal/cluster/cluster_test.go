package cluster

import (
	"math"
	"testing"
)

func TestMarmotCalibration(t *testing.T) {
	topo := New(4, Marmot())
	got := topo.UncontendedLocalRead(64)
	// The paper reports ~0.9 s per uncontended local 64 MB chunk read.
	if got < 0.8 || got > 1.0 {
		t.Fatalf("local 64 MB read = %v s, want ~0.87 s", got)
	}
	remote := topo.UncontendedRemoteRead(64)
	if remote < got {
		t.Fatalf("remote read %v faster than local %v", remote, got)
	}
}

func TestLocalPathUsesOnlyDisk(t *testing.T) {
	topo := New(3, Marmot())
	p := topo.LocalReadPath(1)
	if len(p) != 1 || p[0] != topo.DiskResource(1) {
		t.Fatalf("local path = %v, want just node 1's disk", p)
	}
}

func TestRemotePathCrossesThreeResources(t *testing.T) {
	topo := New(3, Marmot())
	p := topo.RemoteReadPath(0, 2)
	if len(p) != 3 {
		t.Fatalf("remote path length = %d, want 3 (disk, tx, rx)", len(p))
	}
	if p[0] != topo.DiskResource(0) {
		t.Fatalf("remote path must start at source disk")
	}
}

func TestRemotePathDegeneratesToLocal(t *testing.T) {
	topo := New(3, Marmot())
	p := topo.RemoteReadPath(1, 1)
	if len(p) != 1 {
		t.Fatalf("same-node remote read should be local, got path %v", p)
	}
}

func TestSimulatedLocalReadMatchesCalibration(t *testing.T) {
	topo := New(2, Marmot())
	net := topo.Net()
	net.Start(topo.LocalReadPath(0), 64, topo.Profile().ReadLatency, "read")
	end := net.Run()
	want := topo.UncontendedLocalRead(64)
	if math.Abs(end-want) > 1e-6 {
		t.Fatalf("simulated read %v, calibrated %v", end, want)
	}
}

func TestRackAssignmentRoundRobin(t *testing.T) {
	topo := NewRacked(8, 3, Marmot())
	if topo.NumRacks() != 3 {
		t.Fatalf("racks = %d, want 3", topo.NumRacks())
	}
	for i := 0; i < 8; i++ {
		if topo.RackOf(i) != i%3 {
			t.Fatalf("node %d rack = %d, want %d", i, topo.RackOf(i), i%3)
		}
	}
}

func TestPanicsOnInvalidNode(t *testing.T) {
	topo := New(2, Marmot())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range node")
		}
	}()
	topo.LocalReadPath(5)
}

func TestPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero nodes")
		}
	}()
	New(0, Marmot())
}

func TestDiskContentionInflatesReads(t *testing.T) {
	// Eight concurrent remote readers pulling from one disk should take far
	// longer than 8x a single stream's share would suggest, because of the
	// seek penalty — this is the physical effect behind the paper's Figure 1.
	topo := New(9, Marmot())
	net := topo.Net()
	for dst := 1; dst <= 8; dst++ {
		net.Start(topo.RemoteReadPath(0, dst), 64, topo.Profile().ReadLatency, "r")
	}
	end := net.Run()
	ideal := 8 * 64.0 / topo.Profile().DiskMBps // fair share, no penalty
	if end <= ideal {
		t.Fatalf("contended end %v should exceed penalty-free bound %v", end, ideal)
	}
	// And it must stay within the modeled degradation.
	alpha := topo.Profile().DiskSeekPenalty
	worst := 8*64.0/(topo.Profile().DiskMBps/(1+alpha*7)) + 1
	if end > worst {
		t.Fatalf("contended end %v exceeds modeled worst case %v", end, worst)
	}
}
