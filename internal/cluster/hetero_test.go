package cluster

import (
	"math"
	"testing"
)

func TestHeterogeneousProfilesApply(t *testing.T) {
	fast := Marmot()
	slow := Marmot()
	slow.DiskMBps = 25 // a worn disk at a third of the speed
	topo := NewHeterogeneous([]Profile{fast, slow, fast})
	if topo.NumNodes() != 3 {
		t.Fatalf("nodes = %d", topo.NumNodes())
	}
	if topo.NodeProfile(1).DiskMBps != 25 {
		t.Fatalf("node 1 profile lost: %+v", topo.NodeProfile(1))
	}
	// A local read on the slow node takes ~3x the fast node's time.
	net := topo.Net()
	net.Start(topo.LocalReadPath(0), 64, topo.ReadLatency(0), "fast")
	tFast := net.Run()
	net.Start(topo.LocalReadPath(1), 64, topo.ReadLatency(1), "slow")
	tSlow := net.Run() - tFast
	if ratio := tSlow / tFast; math.Abs(ratio-3.0) > 0.1 {
		t.Fatalf("slow/fast read ratio = %v, want ~3", ratio)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewHeterogeneous(nil) },
		func() { NewHeterogeneous([]Profile{{DiskMBps: 0, NICMBps: 100}}) },
		func() { NewHeterogeneous([]Profile{{DiskMBps: 100, NICMBps: -1}}) },
		func() { NewHeterogeneousRacked([]Profile{Marmot()}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestReadLatencyPerNode(t *testing.T) {
	a, b := Marmot(), Marmot()
	b.ReadLatency = 0.2
	topo := NewHeterogeneous([]Profile{a, b})
	if topo.ReadLatency(0) != a.ReadLatency || topo.ReadLatency(1) != 0.2 {
		t.Fatal("per-node latency wrong")
	}
}

func TestHomogeneousStillUniform(t *testing.T) {
	topo := New(4, Marmot())
	for i := 0; i < 4; i++ {
		if topo.NodeProfile(i) != Marmot() {
			t.Fatalf("node %d profile differs", i)
		}
	}
}

func TestRackUplinksAddedToCrossRackPaths(t *testing.T) {
	topo := NewRacked(8, 2, Marmot())
	topo.SetRackUplinks(500)
	if !topo.HasRackUplinks() {
		t.Fatal("uplinks not recorded")
	}
	// Same rack (0 and 2 are both rack 0): 3 resources.
	if p := topo.RemoteReadPath(0, 2); len(p) != 3 {
		t.Fatalf("same-rack path length %d, want 3", len(p))
	}
	// Cross rack (0 is rack 0, 1 is rack 1): 5 resources.
	if p := topo.RemoteReadPath(0, 1); len(p) != 5 {
		t.Fatalf("cross-rack path length %d, want 5", len(p))
	}
}

func TestRackUplinkContention(t *testing.T) {
	// Two racks of 4; a 100 MB/s uplink shared by three concurrent
	// cross-rack reads becomes the bottleneck (~33 MB/s each), while the
	// same traffic within a rack runs at disk speed.
	topo := NewRacked(8, 2, Marmot())
	topo.SetRackUplinks(100)
	net := topo.Net()
	// Readers on rack 1 (nodes 1,3,5) pull from distinct rack-0 disks
	// (nodes 0,2,4): all three flows share rack0's uplink-out.
	for i := 0; i < 3; i++ {
		net.Start(topo.RemoteReadPath(2*i, 2*i+1), 64, 0, "cross")
	}
	end := net.Run()
	// 3x64 MB over a 100 MB/s shared uplink: at least 1.92s.
	if end < 1.9 {
		t.Fatalf("cross-rack end %v, want >= 1.92 (uplink-bound)", end)
	}
}

func TestRackUplinkValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { New(4, Marmot()).SetRackUplinks(100) },          // single rack
		func() { NewRacked(4, 2, Marmot()).SetRackUplinks(0) },   // zero bw
		func() { NewRacked(4, 2, Marmot()).SetRackUplinks(-10) }, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
