package core

import (
	"encoding/binary"
	"math"
)

// This file defines the canonical binary encoding of an assignment problem,
// the content that a plan fingerprint hashes. An Opass plan is a pure
// function of (process placement, task inputs, replica placement, strategy
// + its parameters): the encoding captures the problem side of that tuple
// exactly — the proc→node map, every task's inputs with chunk identity and
// size, and each referenced chunk's replica list stamped with that chunk's
// own placement epoch (dfs.Chunk.Epoch). Only the chunks the problem
// actually reads contribute, so a placement mutation on an unrelated file
// leaves the fingerprint — and any cached plan keyed by it — untouched,
// while any mutation of a referenced chunk's replica set changes it.
// File names never enter the encoding: a Rename leaves fingerprints stable,
// which is correct because plans depend only on placement, not on names.
//
// The encoding is deliberately not a serialization format: there is no
// decoder, and the only contract is that equal problems encode equally and
// that any input the planners consult is covered. Every integer is written
// as fixed-width little-endian with explicit length prefixes, so no two
// distinct problems can collide by field aliasing.

// AppendCanonical appends the canonical encoding of the problem to b and
// returns the extended slice. Callers hash the result (see
// plancache.KeyOf) together with the strategy name and planner parameters
// to form a cache key.
func (p *Problem) AppendCanonical(b []byte) []byte {
	var u [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(u[:], v)
		b = append(b, u[:]...)
	}
	put(uint64(len(p.ProcNode)))
	for _, n := range p.ProcNode {
		put(uint64(n))
	}
	put(uint64(len(p.Tasks)))
	for i := range p.Tasks {
		t := &p.Tasks[i]
		put(uint64(len(t.Inputs)))
		for _, in := range t.Inputs {
			put(uint64(in.Chunk))
			put(math.Float64bits(in.SizeMB))
			c := p.FS.Chunk(in.Chunk)
			put(c.Epoch())
			put(math.Float64bits(c.SizeMB))
			put(uint64(len(c.Replicas)))
			for _, r := range c.Replicas {
				put(uint64(r))
			}
		}
	}
	// The rack map enters the encoding only when it can influence a plan
	// (multi-rack): a nil map and a single-rack map plan identically, so
	// they share an encoding, while two problems differing only in a
	// multi-rack layout get distinct fingerprints. Appending a suffix
	// cannot alias an encoding without one: the prefix parse up to here is
	// unambiguous, so equal byte strings imply equal problems and equal
	// total lengths.
	if p.RackTiered() {
		put(uint64(len(p.NodeRack)))
		for _, r := range p.NodeRack {
			put(uint64(r))
		}
	}
	return b
}
