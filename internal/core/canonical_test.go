package core

import (
	"bytes"
	"testing"

	"opass/internal/dfs"
)

// TestCanonicalDeterministic: two problems built identically encode
// byte-for-byte equally — the property that lets a plan cache recognize a
// repeated request.
func TestCanonicalDeterministic(t *testing.T) {
	p1, _ := buildSingle(t, 8, 24, 71, dfs.RandomPlacement{})
	p2, _ := buildSingle(t, 8, 24, 71, dfs.RandomPlacement{})
	b1 := p1.AppendCanonical(nil)
	b2 := p2.AppendCanonical(nil)
	if len(b1) == 0 {
		t.Fatal("empty canonical encoding")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("identically built problems encode differently")
	}
	// Repeated encoding of the same problem is stable too.
	if !bytes.Equal(b1, p1.AppendCanonical(nil)) {
		t.Fatal("re-encoding the same problem differs")
	}
}

// TestCanonicalAppends: the encoding appends to the given prefix.
func TestCanonicalAppends(t *testing.T) {
	p, _ := buildSingle(t, 4, 8, 72, dfs.RandomPlacement{})
	prefix := []byte("prefix")
	out := p.AppendCanonical(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("prefix not preserved")
	}
	if !bytes.Equal(out[len(prefix):], p.AppendCanonical(nil)) {
		t.Fatal("suffix differs from fresh encoding")
	}
}

// TestCanonicalSensitivity: every ingredient of a plan perturbs the
// encoding — replica moves on referenced chunks, process placement, task
// shape — while mutations that cannot affect the plan (placement changes on
// files the problem does not read) leave it byte-stable.
func TestCanonicalSensitivity(t *testing.T) {
	build := func() (*Problem, *dfs.FileSystem) {
		return buildSingle(t, 8, 16, 73, dfs.RandomPlacement{})
	}
	base, _ := build()
	baseEnc := base.AppendCanonical(nil)

	// MoveReplica on a referenced chunk changes the encoding.
	p, fs := build()
	c := fs.Chunk(p.Tasks[0].Inputs[0].Chunk)
	dst := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			dst = n
			break
		}
	}
	if err := fs.MoveReplica(c.ID, c.Replicas[0], dst); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("MoveReplica did not change the canonical encoding")
	}

	// A placement mutation NOT touching any referenced chunk leaves the
	// encoding byte-stable: fingerprints embed per-chunk epochs, not the
	// global counter, so unrelated churn keeps cached plans hot.
	p, fs = build()
	if _, err := fs.Create("/unrelated", 64); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("mutation of an unrelated file changed the canonical encoding")
	}
	// But a subsequent mutation that DOES touch a referenced chunk is still
	// detected, even when the replica list round-trips back to its original
	// value: the chunk epoch records that it moved.
	c2 := fs.Chunk(p.Tasks[0].Inputs[0].Chunk)
	origReplicas := append([]int(nil), c2.Replicas...)
	dst2 := -1
	for n := 0; n < 8; n++ {
		if !c2.HostedOn(n) {
			dst2 = n
			break
		}
	}
	if err := fs.MoveReplica(c2.ID, origReplicas[0], dst2); err != nil {
		t.Fatal(err)
	}
	if err := fs.MoveReplica(c2.ID, dst2, origReplicas[0]); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("replica move-and-return on a referenced chunk left the encoding unchanged")
	}

	// Process placement matters.
	p, _ = build()
	p.ProcNode[0], p.ProcNode[1] = p.ProcNode[1], p.ProcNode[0]
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("proc→node change did not change the canonical encoding")
	}

	// Task input size matters.
	p, _ = build()
	p.Tasks[3].Inputs[0].SizeMB += 1
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("input size change did not change the canonical encoding")
	}

	// Task count matters.
	p, _ = build()
	p.Tasks = p.Tasks[:len(p.Tasks)-1]
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("task removal did not change the canonical encoding")
	}
}

// TestCanonicalRenameIndependent: Rename is namespace-only, so the
// fingerprint of a problem over the renamed file is byte-identical to the
// one computed before — a cache hit after a rename is correct, not stale.
// The planner's output must be name-independent too, or the stable
// fingerprint would serve a wrong plan.
func TestCanonicalRenameIndependent(t *testing.T) {
	p, fs := buildSingle(t, 8, 24, 74, dfs.RandomPlacement{})
	before := p.AppendCanonical(nil)
	planBefore, err := SingleData{Seed: 7}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/data", "/data-renamed"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, p.AppendCanonical(nil)) {
		t.Fatal("rename changed the canonical encoding: a file name leaks into the fingerprint")
	}
	planAfter, err := SingleData{Seed: 7}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if !slicesEqualInt(planBefore.Owner, planAfter.Owner) {
		t.Fatal("rename changed the planner's assignment: a file name leaks into planning state")
	}
	// Rebuilding the problem from the new name yields the same encoding as
	// well: block locations are keyed by chunk IDs, not names.
	procNode := make([]int, 8)
	for i := range procNode {
		procNode[i] = i
	}
	p2, err := SingleDataProblem(fs, []string{"/data-renamed"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, p2.AppendCanonical(nil)) {
		t.Fatal("problem rebuilt from the renamed file encodes differently")
	}
}

func slicesEqualInt(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
