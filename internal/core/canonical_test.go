package core

import (
	"bytes"
	"testing"

	"opass/internal/dfs"
)

// TestCanonicalDeterministic: two problems built identically encode
// byte-for-byte equally — the property that lets a plan cache recognize a
// repeated request.
func TestCanonicalDeterministic(t *testing.T) {
	p1, _ := buildSingle(t, 8, 24, 71, dfs.RandomPlacement{})
	p2, _ := buildSingle(t, 8, 24, 71, dfs.RandomPlacement{})
	b1 := p1.AppendCanonical(nil)
	b2 := p2.AppendCanonical(nil)
	if len(b1) == 0 {
		t.Fatal("empty canonical encoding")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("identically built problems encode differently")
	}
	// Repeated encoding of the same problem is stable too.
	if !bytes.Equal(b1, p1.AppendCanonical(nil)) {
		t.Fatal("re-encoding the same problem differs")
	}
}

// TestCanonicalAppends: the encoding appends to the given prefix.
func TestCanonicalAppends(t *testing.T) {
	p, _ := buildSingle(t, 4, 8, 72, dfs.RandomPlacement{})
	prefix := []byte("prefix")
	out := p.AppendCanonical(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("prefix not preserved")
	}
	if !bytes.Equal(out[len(prefix):], p.AppendCanonical(nil)) {
		t.Fatal("suffix differs from fresh encoding")
	}
}

// TestCanonicalSensitivity: every ingredient of a plan perturbs the
// encoding — replica moves, epoch-only mutations elsewhere in the FS,
// process placement, task shape.
func TestCanonicalSensitivity(t *testing.T) {
	build := func() (*Problem, *dfs.FileSystem) {
		return buildSingle(t, 8, 16, 73, dfs.RandomPlacement{})
	}
	base, _ := build()
	baseEnc := base.AppendCanonical(nil)

	// MoveReplica on a referenced chunk changes the encoding.
	p, fs := build()
	c := fs.Chunk(p.Tasks[0].Inputs[0].Chunk)
	dst := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			dst = n
			break
		}
	}
	if err := fs.MoveReplica(c.ID, c.Replicas[0], dst); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("MoveReplica did not change the canonical encoding")
	}

	// A placement mutation NOT touching any referenced chunk still changes
	// the encoding, via the epoch: conservative, but exactly the
	// invalidation contract.
	p, fs = build()
	if _, err := fs.Create("/unrelated", 64); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("epoch bump did not change the canonical encoding")
	}

	// Process placement matters.
	p, _ = build()
	p.ProcNode[0], p.ProcNode[1] = p.ProcNode[1], p.ProcNode[0]
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("proc→node change did not change the canonical encoding")
	}

	// Task input size matters.
	p, _ = build()
	p.Tasks[3].Inputs[0].SizeMB += 1
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("input size change did not change the canonical encoding")
	}

	// Task count matters.
	p, _ = build()
	p.Tasks = p.Tasks[:len(p.Tasks)-1]
	if bytes.Equal(baseEnc, p.AppendCanonical(nil)) {
		t.Fatal("task removal did not change the canonical encoding")
	}
}
