package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"opass/internal/bipartite"
	"opass/internal/dfs"
)

type view struct{ n int }

func (v view) NumNodes() int    { return v.n }
func (v view) RackOf(i int) int { return 0 }

// buildSingle creates an n-node cluster, a dataset of chunks chunks placed
// by pol, and a single-data problem with one process per node.
func buildSingle(t testing.TB, nodes, chunks int, seed int64, pol dfs.Placement) (*Problem, *dfs.FileSystem) {
	t.Helper()
	fs := dfs.New(view{nodes}, dfs.Config{Seed: seed, Placement: pol})
	if _, err := fs.Create("/data", float64(chunks)*64); err != nil {
		t.Fatal(err)
	}
	procNode := make([]int, nodes)
	for i := range procNode {
		procNode[i] = i
	}
	p, err := SingleDataProblem(fs, []string{"/data"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	return p, fs
}

func TestSingleDataFullMatchingOnEvenPlacement(t *testing.T) {
	p, _ := buildSingle(t, 8, 80, 1, dfs.RoundRobinPlacement{})
	a, err := SingleData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
	if a.LocalityFraction() != 1.0 {
		t.Fatalf("locality = %v, want 1.0 under even placement", a.LocalityFraction())
	}
	for proc, list := range a.Lists {
		if len(list) != 10 {
			t.Fatalf("proc %d got %d tasks, want 10", proc, len(list))
		}
	}
}

func TestSingleDataBeatsRankStatic(t *testing.T) {
	p, _ := buildSingle(t, 16, 160, 2, dfs.RandomPlacement{})
	opass, err := SingleData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := RankStatic{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if opass.LocalityFraction() <= rank.LocalityFraction() {
		t.Fatalf("opass locality %v not better than rank %v",
			opass.LocalityFraction(), rank.LocalityFraction())
	}
	// §III-A: with m=16 and r=3 a random assignment reads ~3/16 locally;
	// Opass should exceed 90% here.
	if opass.LocalityFraction() < 0.9 {
		t.Fatalf("opass locality %v, want >= 0.9", opass.LocalityFraction())
	}
	if rank.LocalityFraction() > 0.5 {
		t.Fatalf("rank-static locality %v suspiciously high", rank.LocalityFraction())
	}
}

func TestSingleDataRejectsMultiInputTasks(t *testing.T) {
	p, fs := buildSingle(t, 4, 8, 3, dfs.RandomPlacement{})
	locs, _ := fs.BlockLocations("/data")
	p.Tasks[0].Inputs = append(p.Tasks[0].Inputs, Input{Chunk: locs[1].Chunk, SizeMB: 64})
	if _, err := (SingleData{}).Assign(p); err == nil {
		t.Fatal("expected error for multi-input task")
	}
}

func TestRankStaticIntervals(t *testing.T) {
	p, _ := buildSingle(t, 4, 12, 4, dfs.RandomPlacement{})
	a, err := RankStatic{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	// Process i owns exactly [i*3, (i+1)*3).
	for tsk, o := range a.Owner {
		if want := tsk / 3; o != want {
			t.Fatalf("task %d owned by %d, want %d", tsk, o, want)
		}
	}
}

func TestRandomStaticEqualCounts(t *testing.T) {
	p, _ := buildSingle(t, 5, 23, 5, dfs.RandomPlacement{})
	a, err := RandomStatic{Seed: 7}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
	// 23 tasks over 5 procs: counts must be {5,5,5,4,4}.
	for proc, list := range a.Lists {
		want := 4
		if proc < 23%5 {
			want = 5
		}
		if len(list) != want {
			t.Fatalf("proc %d got %d tasks, want %d", proc, len(list), want)
		}
	}
}

func TestValidateCatchesBadProblems(t *testing.T) {
	fs := dfs.New(view{4}, dfs.Config{Seed: 1})
	fs.Create("/a", 64)
	cases := []*Problem{
		{ProcNode: nil, Tasks: []Task{{ID: 0, Inputs: []Input{{0, 64}}}}, FS: fs},
		{ProcNode: []int{0}, Tasks: nil, FS: fs},
		{ProcNode: []int{0}, Tasks: []Task{{ID: 1, Inputs: []Input{{0, 64}}}}, FS: fs},
		{ProcNode: []int{0}, Tasks: []Task{{ID: 0}}, FS: fs},
		{ProcNode: []int{0}, Tasks: []Task{{ID: 0, Inputs: []Input{{0, -4}}}}, FS: fs},
		{ProcNode: []int{0}, Tasks: []Task{{ID: 0, Inputs: []Input{{0, 64}}}}, FS: nil},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// multiProblem builds tasks with three inputs each (30/20/10 MB), as in the
// paper's multi-data experiment.
func multiProblem(t testing.TB, nodes, tasks int, seed int64) *Problem {
	t.Helper()
	fs := dfs.New(view{nodes}, dfs.Config{Seed: seed, ChunkSizeMB: 64})
	sizes := []float64{30, 20, 10}
	var all []Task
	for i := 0; i < tasks; i++ {
		var ins []Input
		for j, s := range sizes {
			name := "/set" + string(rune('A'+j)) + "/" + itoa(i)
			f, err := fs.CreateChunks(name, []float64{s})
			if err != nil {
				t.Fatal(err)
			}
			ins = append(ins, Input{Chunk: f.Chunks[0], SizeMB: s})
		}
		all = append(all, Task{ID: i, Inputs: ins})
	}
	procNode := make([]int, nodes)
	for i := range procNode {
		procNode[i] = i
	}
	return &Problem{ProcNode: procNode, Tasks: all, FS: fs}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

func TestMultiDataValidAndBetterThanRank(t *testing.T) {
	p := multiProblem(t, 16, 160, 6)
	opass, err := MultiData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := opass.Validate(p); err != nil {
		t.Fatal(err)
	}
	rank, _ := RankStatic{}.Assign(p)
	if opass.LocalityFraction() <= rank.LocalityFraction() {
		t.Fatalf("multi-data opass locality %v <= rank %v",
			opass.LocalityFraction(), rank.LocalityFraction())
	}
	// Equal task counts.
	for proc, list := range opass.Lists {
		if len(list) != 10 {
			t.Fatalf("proc %d got %d tasks, want 10", proc, len(list))
		}
	}
}

func TestMultiDataReassignment(t *testing.T) {
	// Figure 6(b): t's first owner loses it to a process with a larger
	// matching value. Two processes on nodes 0 and 1; one task whose inputs
	// are mostly on node 1, plus filler tasks so p0 proposes first.
	// Round-robin with r=1 alternates chunks between the two nodes by
	// global chunk ID: /a on node 0, /b on node 1, /c on node 0, /d on 1.
	fs2 := dfs.New(view{2}, dfs.Config{Seed: 3, Replication: 1, Placement: dfs.RoundRobinPlacement{}})
	fA, _ := fs2.CreateChunks("/a", []float64{10}) // node 0
	fB, _ := fs2.CreateChunks("/b", []float64{40}) // node 1
	fC, _ := fs2.CreateChunks("/c", []float64{50}) // node 0
	fD, _ := fs2.CreateChunks("/d", []float64{5})  // node 1
	p := &Problem{
		ProcNode: []int{0, 1},
		FS:       fs2,
		Tasks: []Task{
			// task 0: 10 MB on node0 + 40 MB on node1 -> m(p0)=10, m(p1)=40
			{ID: 0, Inputs: []Input{{fA.Chunks[0], 10}, {fB.Chunks[0], 40}}},
			// task 1: 50 MB on node0 -> m(p0)=50
			{ID: 1, Inputs: []Input{{fC.Chunks[0], 50}}},
			// tasks 2,3: small fillers on node1 and node0
			{ID: 2, Inputs: []Input{{fD.Chunks[0], 5}}},
			{ID: 3, Inputs: []Input{{fA.Chunks[0], 10}}},
		},
	}
	a, err := MultiData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
	// p1 must end up owning task 0 (40 MB local beats p0's 10 MB).
	if a.Owner[0] != 1 {
		t.Fatalf("task 0 owned by %d, want 1 (larger matching value)", a.Owner[0])
	}
	if a.Owner[1] != 0 {
		t.Fatalf("task 1 owned by %d, want 0", a.Owner[1])
	}
}

// TestPropertyAssignersProduceValidAssignments fuzzes all planners.
func TestPropertyAssignersProduceValidAssignments(t *testing.T) {
	assigners := []Assigner{SingleData{}, SingleData{Algorithm: bipartite.Dinic}, RankStatic{}, RandomStatic{Seed: 5}}
	prop := func(seed int64, rawNodes, rawPerProc uint8) bool {
		nodes := 3 + int(rawNodes)%20
		perProc := 1 + int(rawPerProc)%8
		p, _ := buildSingle(t, nodes, nodes*perProc, seed, dfs.RandomPlacement{})
		for _, as := range assigners {
			a, err := as.Assign(p)
			if err != nil {
				t.Errorf("%s: %v", as.Name(), err)
				return false
			}
			if err := a.Validate(p); err != nil {
				t.Errorf("%s: invalid assignment: %v", as.Name(), err)
				return false
			}
			if a.LocalityFraction() < 0 || a.LocalityFraction() > 1 {
				t.Errorf("%s: locality %v out of range", as.Name(), a.LocalityFraction())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOpassDominatesBaselineLocality: on random placements Opass's
// planned locality is never below rank-static's (it optimizes exactly that
// objective, and the baseline is one feasible solution).
func TestPropertyOpassDominatesBaselineLocality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 4 + rng.Intn(24)
		p, _ := buildSingle(t, nodes, nodes*4, seed, dfs.RandomPlacement{})
		opass, err := SingleData{Seed: seed}.Assign(p)
		if err != nil {
			t.Error(err)
			return false
		}
		rank, _ := RankStatic{}.Assign(p)
		if opass.PlannedLocalMB+1e-6 < rank.PlannedLocalMB {
			t.Errorf("seed %d: opass local %v < rank %v", seed, opass.PlannedLocalMB, rank.PlannedLocalMB)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDataPropertyValidAndLocal(t *testing.T) {
	prop := func(seed int64, rawNodes uint8) bool {
		nodes := 4 + int(rawNodes)%12
		p := multiProblem(t, nodes, nodes*3, seed)
		a, err := MultiData{Seed: seed}.Assign(p)
		if err != nil {
			t.Error(err)
			return false
		}
		if err := a.Validate(p); err != nil {
			t.Error(err)
			return false
		}
		rank, _ := RankStatic{}.Assign(p)
		if a.PlannedLocalMB+1e-6 < rank.PlannedLocalMB {
			t.Errorf("seed %d: multi opass %v < rank %v", seed, a.PlannedLocalMB, rank.PlannedLocalMB)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicSchedulerOwnListFirst(t *testing.T) {
	p, _ := buildSingle(t, 4, 16, 8, dfs.RandomPlacement{})
	a, err := SingleData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDynamicScheduler(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// While its own list lasts, proc 0 receives exactly its own tasks in
	// list order.
	for _, want := range a.Lists[0] {
		got, ok := s.Next(0)
		if !ok || got != want {
			t.Fatalf("Next(0) = %d,%v, want %d", got, ok, want)
		}
	}
}

func TestDynamicSchedulerStealsFromLongest(t *testing.T) {
	p, _ := buildSingle(t, 4, 16, 9, dfs.RandomPlacement{})
	a, _ := SingleData{}.Assign(p)
	s, _ := NewDynamicScheduler(p, a)
	// Drain proc 0's list, then one more: must steal from a longest list.
	for range a.Lists[0] {
		s.Next(0)
	}
	before := s.Remaining()
	task, ok := s.Next(0)
	if !ok {
		t.Fatal("expected a stolen task")
	}
	if s.Remaining() != before-1 {
		t.Fatal("Remaining not decremented")
	}
	// The stolen task must have belonged to another process.
	if a.Owner[task] == 0 {
		t.Fatalf("stole task %d that proc 0 already owned", task)
	}
}

func TestDynamicSchedulerServesEachTaskOnce(t *testing.T) {
	p, _ := buildSingle(t, 4, 20, 10, dfs.RandomPlacement{})
	a, _ := SingleData{}.Assign(p)
	s, _ := NewDynamicScheduler(p, a)
	seen := map[int]bool{}
	proc := 0
	for {
		task, ok := s.Next(proc)
		if !ok {
			break
		}
		if seen[task] {
			t.Fatalf("task %d served twice", task)
		}
		seen[task] = true
		proc = (proc + 1) % 4
	}
	if len(seen) != 20 {
		t.Fatalf("served %d tasks, want 20", len(seen))
	}
	if _, ok := s.Next(0); ok {
		t.Fatal("scheduler served a task after drain")
	}
}

func TestRandomDispatcherServesAllOnce(t *testing.T) {
	p, _ := buildSingle(t, 4, 12, 11, dfs.RandomPlacement{})
	d := NewRandomDispatcher(p, 42)
	seen := map[int]bool{}
	for {
		task, ok := d.Next(0)
		if !ok {
			break
		}
		if seen[task] {
			t.Fatalf("task %d dispatched twice", task)
		}
		seen[task] = true
	}
	if len(seen) != 12 {
		t.Fatalf("dispatched %d, want 12", len(seen))
	}
}

func TestFIFODispatcherOrder(t *testing.T) {
	p, _ := buildSingle(t, 4, 6, 12, dfs.RandomPlacement{})
	d := NewFIFODispatcher(p)
	for want := 0; want < 6; want++ {
		got, ok := d.Next(1)
		if !ok || got != want {
			t.Fatalf("Next = %d,%v, want %d", got, ok, want)
		}
	}
	if d.Remaining() != 0 {
		t.Fatal("remaining != 0 after drain")
	}
}

func TestEKAndDinicSameLocality(t *testing.T) {
	p, _ := buildSingle(t, 32, 320, 13, dfs.RandomPlacement{})
	ek, err := SingleData{Algorithm: bipartite.EdmondsKarp}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := SingleData{Algorithm: bipartite.Dinic}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if ek.PlannedLocalMB != dn.PlannedLocalMB {
		t.Fatalf("EK local %v != Dinic local %v", ek.PlannedLocalMB, dn.PlannedLocalMB)
	}
}
