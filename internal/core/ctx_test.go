package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"opass/internal/dfs"
)

func TestAssignContextCancelledUpFront(t *testing.T) {
	single, _ := buildSingle(t, 8, 80, 1, dfs.RandomPlacement{})
	multi := multiProblem(t, 8, 40, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		a    Assigner
		p    *Problem
	}{
		{"single", SingleData{}, single},
		{"multi", MultiData{}, multi},
		{"greedy", GreedyLocality{}, single},
		{"rank-fallback", RankStatic{}, single}, // no ctx support: helper still honors ctx
	}
	for _, c := range cases {
		a, err := AssignContext(ctx, c.a, c.p)
		if a != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: got (%v, %v), want (nil, context.Canceled)", c.name, a, err)
		}
	}
}

func TestAssignContextFallbackForPlainAssigner(t *testing.T) {
	p, _ := buildSingle(t, 4, 8, 3, dfs.RoundRobinPlacement{})
	a, err := AssignContext(context.Background(), RankStatic{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
}

// trippedCtx reports Canceled from its N-th Err() call onward: the first
// check (the helper's up-front one) passes, so the planner's own interior
// cancellation points are the ones under test.
type trippedCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *trippedCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestPlannersPollContextInternally(t *testing.T) {
	single, _ := buildSingle(t, 8, 80, 4, dfs.RandomPlacement{})
	multi := multiProblem(t, 8, 40, 5)
	cases := []struct {
		name string
		a    ContextAssigner
		p    *Problem
	}{
		{"single", SingleData{}, single},
		{"multi", MultiData{}, multi},
		{"greedy", GreedyLocality{}, single},
	}
	for _, c := range cases {
		ctx := &trippedCtx{Context: context.Background(), after: 1}
		a, err := AssignContext(ctx, c.a, c.p)
		if a != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: got (%v, %v), want (nil, context.Canceled) from an interior check", c.name, a, err)
		}
		if ctx.calls.Load() < 2 {
			t.Errorf("%s: planner never polled ctx internally (%d checks)", c.name, ctx.calls.Load())
		}
	}
}

func TestAssignContextLiveMatchesAssign(t *testing.T) {
	// A never-cancelled context must not change the plan.
	p, _ := buildSingle(t, 8, 80, 6, dfs.RandomPlacement{})
	plain, err := SingleData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := AssignContext(context.Background(), SingleData{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.LocalityFraction() != ctxed.LocalityFraction() {
		t.Fatalf("locality differs: plain %v vs ctx %v",
			plain.LocalityFraction(), ctxed.LocalityFraction())
	}
	for i := range plain.Owner {
		if plain.Owner[i] != ctxed.Owner[i] {
			t.Fatalf("owner[%d] differs: %d vs %d", i, plain.Owner[i], ctxed.Owner[i])
		}
	}
}
