package core

import (
	"fmt"
	"math/rand"
)

// This file implements §IV-D: Opass for dynamic parallel data access. A
// master process owns the task pool and hands tasks to workers as they go
// idle (the mpiBLAST execution model). Opass computes per-worker preferred
// lists A* up front with its matching planners; the master then follows the
// three rules of §IV-D:
//
//  1. pop the idle worker's own list while it is non-empty;
//  2. otherwise steal from the longest remaining list, choosing the task in
//     it with the largest data co-located with the idle worker;
//  3. finish when every list is empty.

// DynamicScheduler serves tasks to idle processes following the Opass
// guideline lists. It satisfies the execution engine's TaskSource contract
// (Next(proc) (task, ok)).
type DynamicScheduler struct {
	p      *Problem
	ix     *LocalityIndex
	lists  [][]int // remaining tasks per process, in list order
	remain int
}

// NewDynamicScheduler builds a scheduler from a planned assignment
// (normally produced by SingleData or MultiData). It builds the locality
// index once so every steal scan resolves co-located sizes by binary
// search instead of re-probing chunk replica lists.
func NewDynamicScheduler(p *Problem, a *Assignment) (*DynamicScheduler, error) {
	if err := a.Validate(p); err != nil {
		return nil, err
	}
	lists := make([][]int, len(a.Lists))
	total := 0
	for i := range a.Lists {
		lists[i] = append([]int(nil), a.Lists[i]...)
		total += len(lists[i])
	}
	return &DynamicScheduler{p: p, ix: NewLocalityIndex(p), lists: lists, remain: total}, nil
}

// Remaining reports how many tasks have not yet been handed out.
func (s *DynamicScheduler) Remaining() int { return s.remain }

// Next hands the idle process proc its next task. It reports ok=false when
// every list is drained.
func (s *DynamicScheduler) Next(proc int) (task int, ok bool) {
	if proc < 0 || proc >= len(s.lists) {
		panic(fmt.Sprintf("core: dynamic scheduler asked for unknown process %d", proc))
	}
	if s.remain == 0 {
		return 0, false
	}
	// Rule 2 of §IV-D: own list first.
	if own := s.lists[proc]; len(own) > 0 {
		task = own[0]
		s.lists[proc] = own[1:]
		s.remain--
		return task, true
	}
	// Rule 3: steal from the longest remaining list the task with the most
	// data co-located with proc, breaking node-tier ties by rack-local
	// bytes (zero on single-rack problems, so the rack term never changes
	// a rack-oblivious steal). Ties on list length and on both tiers break
	// toward lower indices for determinism.
	longest := -1
	for k := range s.lists {
		if longest == -1 || len(s.lists[k]) > len(s.lists[longest]) {
			longest = k
		}
	}
	if longest == -1 || len(s.lists[longest]) == 0 {
		return 0, false
	}
	bestIdx, bestW, bestR := 0, -1.0, -1.0
	for i, t := range s.lists[longest] {
		w := s.ix.CoLocatedMB(proc, t)
		r := s.ix.RackCoLocatedMB(proc, t)
		if w > bestW || (w == bestW && r > bestR) {
			bestIdx, bestW, bestR = i, w, r
		}
	}
	task = s.lists[longest][bestIdx]
	s.lists[longest] = append(s.lists[longest][:bestIdx], s.lists[longest][bestIdx+1:]...)
	s.remain--
	return task, true
}

// RandomDispatcher is the baseline master of the paper's dynamic
// experiments: it hands an idle worker a uniformly random unexecuted task,
// with no knowledge of data placement ("issue data requests via a random
// policy", §V-A3).
type RandomDispatcher struct {
	pool []int
	rng  *rand.Rand
}

// NewRandomDispatcher builds a dispatcher over all tasks of the problem.
func NewRandomDispatcher(p *Problem, seed int64) *RandomDispatcher {
	pool := make([]int, len(p.Tasks))
	for i := range pool {
		pool[i] = i
	}
	return &RandomDispatcher{pool: pool, rng: rand.New(rand.NewSource(seed))}
}

// Remaining reports how many tasks have not yet been handed out.
func (d *RandomDispatcher) Remaining() int { return len(d.pool) }

// Next hands any idle process a random remaining task.
func (d *RandomDispatcher) Next(_ int) (task int, ok bool) {
	if len(d.pool) == 0 {
		return 0, false
	}
	i := d.rng.Intn(len(d.pool))
	task = d.pool[i]
	d.pool[i] = d.pool[len(d.pool)-1]
	d.pool = d.pool[:len(d.pool)-1]
	return task, true
}

// FIFODispatcher hands tasks out in ID order — a deterministic non-random
// baseline used in tests and the ablation suite.
type FIFODispatcher struct {
	next, n int
}

// NewFIFODispatcher builds a dispatcher over all tasks of the problem.
func NewFIFODispatcher(p *Problem) *FIFODispatcher {
	return &FIFODispatcher{n: len(p.Tasks)}
}

// Remaining reports how many tasks have not yet been handed out.
func (d *FIFODispatcher) Remaining() int { return d.n - d.next }

// Next hands any idle process the next task in ID order.
func (d *FIFODispatcher) Next(_ int) (task int, ok bool) {
	if d.next >= d.n {
		return 0, false
	}
	task = d.next
	d.next++
	return task, true
}
