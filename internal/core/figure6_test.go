package core

import (
	"testing"

	"opass/internal/dfs"
)

// TestAlgorithm1Figure6 reconstructs the Figure 6 walk-through of §IV-C
// with an explicit co-location table (realized through FixedPlacement:
// every table cell becomes one single-replica input on that process's
// node). The two behaviours the paper narrates must both occur:
//
//   - "task t4 has the highest priority to be assigned to process P0
//     because there is 40 MB of data associated with t4 that can be
//     accessed locally by P0" — the largest entry wins the first proposal;
//   - "a re-assignment event happening on task t5: t5 is already assigned
//     to p2, however when p3 begins to choose its first task... it has a
//     larger matching value, and we cancel the assignment for p2 on t5 and
//     reassign t5 to p3."
func TestAlgorithm1Figure6(t *testing.T) {
	// m[proc][task] in MB; 0 = no co-located data.
	table := [4][8]float64{
		//      t0  t1  t2  t3  t4  t5  t6  t7
		/*p0*/ {10, 20, 0, 0, 40, 0, 15, 0},
		/*p1*/ {25, 0, 30, 0, 0, 0, 0, 10},
		/*p2*/ {0, 0, 20, 35, 0, 30, 0, 5},
		/*p3*/ {0, 15, 0, 0, 20, 45, 0, 25},
	}
	const procs, tasks = 4, 8

	// Realize the table: chunk k (created in order) lives only on the node
	// of the process whose cell it encodes.
	var rows [][]int
	type cell struct {
		proc, task int
		mb         float64
	}
	var cells []cell
	for p := 0; p < procs; p++ {
		for task := 0; task < tasks; task++ {
			if table[p][task] > 0 {
				rows = append(rows, []int{p})
				cells = append(cells, cell{proc: p, task: task, mb: table[p][task]})
			}
		}
	}
	fs := dfs.New(view{procs}, dfs.Config{
		Replication: 1,
		Placement:   dfs.FixedPlacement{Replicas: rows},
	})
	prob := &Problem{ProcNode: []int{0, 1, 2, 3}, FS: fs}
	taskInputs := make([][]Input, tasks)
	for i, c := range cells {
		f, err := fs.CreateChunks(itoa(i), []float64{c.mb})
		if err != nil {
			t.Fatal(err)
		}
		taskInputs[c.task] = append(taskInputs[c.task], Input{Chunk: f.Chunks[0], SizeMB: c.mb})
	}
	for task := 0; task < tasks; task++ {
		prob.Tasks = append(prob.Tasks, Task{ID: task, Inputs: taskInputs[task]})
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	// The constructed problem must reproduce the table exactly.
	for p := 0; p < procs; p++ {
		for task := 0; task < tasks; task++ {
			if got := prob.CoLocatedMB(p, task); got != table[p][task] {
				t.Fatalf("m[p%d][t%d] = %v, want %v", p, task, got, table[p][task])
			}
		}
	}

	a, err := MultiData{}.Assign(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(prob); err != nil {
		t.Fatal(err)
	}

	// Figure 6(a): t4 goes to p0 (its 40 MB is p0's largest affinity).
	if a.Owner[4] != 0 {
		t.Fatalf("t4 owned by p%d, want p0 (highest priority)", a.Owner[4])
	}
	// Figure 6(b): t5 ends up with p3 (45 MB beats p2's 30 MB) even though
	// p2 claims it first in proposal order.
	if a.Owner[5] != 3 {
		t.Fatalf("t5 owned by p%d, want p3 (reassignment)", a.Owner[5])
	}
	// Equal task counts: two per process.
	for p, list := range a.Lists {
		if len(list) != 2 {
			t.Fatalf("p%d owns %d tasks, want 2", p, len(list))
		}
	}
	// Every assignment with positive affinity is stable in the §IV-C sense:
	// no task is held by a process with strictly less co-located data than
	// a process that still wanted it at the end (checked pairwise against
	// the final owner's value, mirroring lines 11-13 of Algorithm 1).
	for task := 0; task < tasks; task++ {
		owner := a.Owner[task]
		ownerVal := prob.CoLocatedMB(owner, task)
		for p := 0; p < procs; p++ {
			if p == owner || prob.CoLocatedMB(p, task) <= ownerVal {
				continue
			}
			// A process with higher affinity must be full with tasks it
			// values at least as much as this one.
			for _, other := range a.Lists[p] {
				if prob.CoLocatedMB(p, other) < prob.CoLocatedMB(p, task) {
					t.Fatalf("unstable: p%d holds t%d (%v MB) but prefers t%d (%v MB) owned by p%d (%v MB)",
						p, other, prob.CoLocatedMB(p, other), task, prob.CoLocatedMB(p, task), owner, ownerVal)
				}
			}
		}
	}
}
