package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"opass/internal/bipartite"
	"opass/internal/dfs"
)

// The golden-plan tests lock the planners' Owner output on seeded 64-node
// problems. The single_ek, single_dinic, multi, and dynamic_order entries
// under testdata/ were generated from the pre-index implementation
// (CoLocatedMB probe loops and copy-and-sort adjacency), so a pass here
// proves the locality-index refactor is byte-for-byte behavior-preserving
// on those planners. single_kuhn was re-locked after the detach hardening
// in MatchAugmenting (swap-remove changes which equally-sized matching
// Kuhn picks; size parity with the flow solvers is asserted by
// TestMatchAugmentingParityRandomQuotas). Regenerate with:
//
//	go test ./internal/core -run TestGoldenPlans -update
var updateGolden = flag.Bool("update", false, "rewrite the golden plan file")

// goldenPlans is the serialized form of every locked plan.
type goldenPlans struct {
	// SingleEK/SingleDinic/SingleKuhn are Owner arrays of the single-data
	// planner on a seeded 64-proc x 640-task problem.
	SingleEK    []int `json:"single_ek"`
	SingleDinic []int `json:"single_dinic"`
	SingleKuhn  []int `json:"single_kuhn"`
	// Multi is the Owner array of Algorithm 1 on a seeded 64-proc x 640-task
	// multi-data problem.
	Multi []int `json:"multi"`
	// DynamicOrder is the exact task sequence the dynamic scheduler serves
	// when only 16 of the 64 processes ask for work — the last three quarters
	// of the job exercises the steal scan.
	DynamicOrder []int `json:"dynamic_order"`
}

// goldenSingleProblem is the seeded single-data case all golden plans use.
func goldenSingleProblem(t testing.TB) *Problem {
	t.Helper()
	p, _ := buildSingle(t, 64, 640, 42, dfs.RandomPlacement{})
	return p
}

// goldenMultiProblem builds the paper's 30/20/10 MB multi-data workload on
// 64 nodes with 10 tasks per process.
func goldenMultiProblem(t testing.TB) *Problem {
	t.Helper()
	const nodes, perProc = 64, 10
	fs := dfs.New(view{nodes}, dfs.Config{Seed: 42})
	n := nodes * perProc
	inputs := []float64{30, 20, 10}
	sets := make([][]dfs.ChunkID, len(inputs))
	for j, sz := range inputs {
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = sz
		}
		f, err := fs.CreateChunks(fmt.Sprintf("/set%d", j), sizes)
		if err != nil {
			t.Fatal(err)
		}
		sets[j] = f.Chunks
	}
	procNode := make([]int, nodes)
	for i := range procNode {
		procNode[i] = i
	}
	p := &Problem{ProcNode: procNode, FS: fs}
	for i := 0; i < n; i++ {
		task := Task{ID: i}
		for j, sz := range inputs {
			task.Inputs = append(task.Inputs, Input{Chunk: sets[j][i], SizeMB: sz})
		}
		p.Tasks = append(p.Tasks, task)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// computeGoldenPlans runs every locked planner on the seeded problems.
func computeGoldenPlans(t testing.TB) *goldenPlans {
	t.Helper()
	sp := goldenSingleProblem(t)
	out := &goldenPlans{}
	for _, c := range []struct {
		algo bipartite.Algorithm
		dst  *[]int
	}{
		{bipartite.EdmondsKarp, &out.SingleEK},
		{bipartite.Dinic, &out.SingleDinic},
		{bipartite.Kuhn, &out.SingleKuhn},
	} {
		a, err := (SingleData{Algorithm: c.algo, Seed: 7}).Assign(sp)
		if err != nil {
			t.Fatal(err)
		}
		*c.dst = a.Owner
	}
	mp := goldenMultiProblem(t)
	ma, err := (MultiData{Seed: 5}).Assign(mp)
	if err != nil {
		t.Fatal(err)
	}
	out.Multi = ma.Owner

	// Dynamic drain: only 16 of the 64 processes ask for work, so after
	// their own lists empty the remaining ~480 tasks all go through the
	// steal scan (rule 2 of §IV-D).
	base, err := (SingleData{Seed: 7}).Assign(sp)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDynamicScheduler(sp, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		task, ok := s.Next((i * 7) % 16)
		if !ok {
			break
		}
		out.DynamicOrder = append(out.DynamicOrder, task)
	}
	return out
}

func goldenPath() string { return filepath.Join("testdata", "golden_plans.json") }

func TestGoldenPlans(t *testing.T) {
	got := computeGoldenPlans(t)
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath())
		return
	}
	blob, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want goldenPlans
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name      string
		got, want []int
	}{
		{"single-data/edmonds-karp", got.SingleEK, want.SingleEK},
		{"single-data/dinic", got.SingleDinic, want.SingleDinic},
		{"single-data/kuhn", got.SingleKuhn, want.SingleKuhn},
		{"multi-data", got.Multi, want.Multi},
		{"dynamic-order", got.DynamicOrder, want.DynamicOrder},
	} {
		if len(c.got) != len(c.want) {
			t.Errorf("%s: plan length %d, want %d", c.name, len(c.got), len(c.want))
			continue
		}
		for i := range c.got {
			if c.got[i] != c.want[i] {
				t.Errorf("%s: entry %d = %d, want %d (first mismatch)", c.name, i, c.got[i], c.want[i])
				break
			}
		}
	}
}
