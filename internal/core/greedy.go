package core

import (
	"context"
	"math/rand"
	"sort"
)

// GreedyLocality is a near-linear-time heuristic alternative to the
// flow-based single-data planner. §V-C2 of the paper notes that "as the
// problem size becomes extremely large, the matching method may not be
// scalable" and leaves the issue to future work; this planner is that
// future-work point, trading optimality for an O(E log E) pass:
//
//  1. order tasks by how few co-located processes they have (scarcest
//     first, the classic matching heuristic), and
//  2. give each task to its co-located process with the most remaining
//     quota, then
//  3. repair the leftovers exactly like the flow planner.
//
// The ablation benchmarks (BenchmarkPlanner*) and the quality experiment
// compare it against the optimal flow matching: it typically reaches within
// a few percent of the flow planner's locality at a fraction of the cost.
type GreedyLocality struct {
	Seed int64
}

// Name implements Assigner.
func (GreedyLocality) Name() string { return "opass-greedy" }

// Assign implements Assigner.
func (g GreedyLocality) Assign(p *Problem) (*Assignment, error) {
	return g.AssignContext(context.Background(), p)
}

// AssignContext implements ContextAssigner: the O(m·n) candidate sweep —
// this planner's dominant cost — polls ctx every few hundred tasks.
func (g GreedyLocality) AssignContext(ctx context.Context, p *Problem) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := len(p.Tasks), p.NumProcs()
	quotas := taskQuotas(n, m)

	// Co-located processes per task (the task's admissible set).
	cand := make([][]int, n)
	for t := 0; t < n; t++ {
		if t%indexCtxStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		for proc := 0; proc < m; proc++ {
			if p.CoLocatedMB(proc, t) > 0 {
				cand[t] = append(cand[t], proc)
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if len(cand[order[a]]) != len(cand[order[b]]) {
			return len(cand[order[a]]) < len(cand[order[b]])
		}
		return order[a] < order[b]
	})

	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	counts := make([]int, m)
	for _, t := range order {
		best := -1
		for _, proc := range cand[t] {
			if counts[proc] >= quotas[proc] {
				continue
			}
			// Most remaining quota keeps the assignment balanced; ties
			// break toward the larger co-located size, then lower rank.
			switch {
			case best == -1:
				best = proc
			case quotas[proc]-counts[proc] > quotas[best]-counts[best]:
				best = proc
			case quotas[proc]-counts[proc] == quotas[best]-counts[best] &&
				p.CoLocatedMB(proc, t) > p.CoLocatedMB(best, t):
				best = proc
			}
		}
		if best >= 0 {
			owner[t] = best
			counts[best]++
		}
	}

	// Rack tier: steer leftover tasks to rack-local under-quota processes
	// before the random repair. The index is only built when the problem
	// spans racks — the greedy hot path stays index-free otherwise.
	if p.RackTiered() {
		ix, err := NewLocalityIndexContext(ctx, p)
		if err != nil {
			return nil, err
		}
		rackRepairCounts(p, ix, owner)
	}
	rng := rand.New(rand.NewSource(g.Seed))
	repairUnmatched(p, owner, rng)

	a := &Assignment{Owner: owner, Lists: buildLists(p, owner)}
	sortEachList(a.Lists)
	fillLocality(p, a)
	return a, nil
}
