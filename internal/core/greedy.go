package core

import (
	"context"
	"math/rand"
	"sort"
)

// GreedyLocality is a near-linear-time heuristic alternative to the
// flow-based single-data planner. §V-C2 of the paper notes that "as the
// problem size becomes extremely large, the matching method may not be
// scalable" and leaves the issue to future work; this planner is that
// future-work point, trading optimality for an O(E log E) pass:
//
//  1. order tasks by how few co-located processes they have (scarcest
//     first, the classic matching heuristic), and
//  2. give each task to its co-located process with the most remaining
//     quota, then
//  3. repair the leftovers exactly like the flow planner.
//
// The ablation benchmarks (BenchmarkPlanner*) and the quality experiment
// compare it against the optimal flow matching: it typically reaches within
// a few percent of the flow planner's locality at a fraction of the cost.
type GreedyLocality struct {
	Seed int64
}

// Name implements Assigner.
func (GreedyLocality) Name() string { return "opass-greedy" }

// Assign implements Assigner.
func (g GreedyLocality) Assign(p *Problem) (*Assignment, error) {
	return g.AssignContext(context.Background(), p)
}

// AssignContext implements ContextAssigner. The candidate discovery that
// used to dominate — an O(m·n) CoLocatedMB probe sweep — now reads the
// locality index, whose parallel O(edges) build yields the same candidate
// sets in the same ascending-process order with bit-identical MB values
// (the index contract), so plans are byte-identical to the probe-based
// planner; the greedy parity test checks the two paths against each other.
func (g GreedyLocality) AssignContext(ctx context.Context, p *Problem) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := len(p.Tasks), p.NumProcs()
	quotas := taskQuotas(n, m)

	ix, err := NewLocalityIndexContext(ctx, p)
	if err != nil {
		return nil, err
	}
	defer ix.Release()

	// Scarcest-first task order: fewest co-located processes first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if da, db := len(ix.TaskEdges(order[a])), len(ix.TaskEdges(order[b])); da != db {
			return da < db
		}
		return order[a] < order[b]
	})

	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	counts := make([]int, m)
	for i, t := range order {
		if i%indexCtxStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		best := -1
		var bestMB float64
		for _, e := range ix.TaskEdges(t) {
			proc := e.Proc
			if counts[proc] >= quotas[proc] {
				continue
			}
			// Most remaining quota keeps the assignment balanced; ties
			// break toward the larger co-located size, then lower rank.
			switch {
			case best == -1:
				best, bestMB = proc, e.MB
			case quotas[proc]-counts[proc] > quotas[best]-counts[best]:
				best, bestMB = proc, e.MB
			case quotas[proc]-counts[proc] == quotas[best]-counts[best] &&
				e.MB > bestMB:
				best, bestMB = proc, e.MB
			}
		}
		if best >= 0 {
			owner[t] = best
			counts[best]++
		}
	}

	// Rack tier: steer leftover tasks to rack-local under-quota processes
	// before the random repair (a no-op unless the problem spans racks).
	rackRepairCounts(p, ix, owner)
	rng := rand.New(rand.NewSource(g.Seed))
	repairUnmatched(p, owner, rng)

	a := &Assignment{Owner: owner, Lists: buildLists(p, owner)}
	sortEachList(a.Lists)
	fillLocality(p, a)
	return a, nil
}
