package core

import (
	"math/rand"
	"sort"
	"testing"

	"opass/internal/dfs"
)

// greedyProbeReference is the pre-index GreedyLocality implementation,
// kept verbatim as the parity oracle: candidate sets discovered by the
// O(m·n) CoLocatedMB probe sweep, scarcest-first ordering, most-remaining-
// quota assignment with probe-valued tie-breaks, then the shared repair
// pipeline. The index-backed planner must reproduce its plans byte for
// byte.
func greedyProbeReference(t *testing.T, p *Problem, seed int64) *Assignment {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	n, m := len(p.Tasks), p.NumProcs()
	quotas := taskQuotas(n, m)

	cand := make([][]int, n)
	for task := 0; task < n; task++ {
		for proc := 0; proc < m; proc++ {
			if p.CoLocatedMB(proc, task) > 0 {
				cand[task] = append(cand[task], proc)
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if len(cand[order[a]]) != len(cand[order[b]]) {
			return len(cand[order[a]]) < len(cand[order[b]])
		}
		return order[a] < order[b]
	})

	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	counts := make([]int, m)
	for _, task := range order {
		best := -1
		for _, proc := range cand[task] {
			if counts[proc] >= quotas[proc] {
				continue
			}
			switch {
			case best == -1:
				best = proc
			case quotas[proc]-counts[proc] > quotas[best]-counts[best]:
				best = proc
			case quotas[proc]-counts[proc] == quotas[best]-counts[best] &&
				p.CoLocatedMB(proc, task) > p.CoLocatedMB(best, task):
				best = proc
			}
		}
		if best >= 0 {
			owner[task] = best
			counts[best]++
		}
	}

	if p.RackTiered() {
		ix := NewLocalityIndex(p)
		rackRepairCounts(p, ix, owner)
	}
	rng := rand.New(rand.NewSource(seed))
	repairUnmatched(p, owner, rng)

	a := &Assignment{Owner: owner, Lists: buildLists(p, owner)}
	sortEachList(a.Lists)
	fillLocality(p, a)
	return a
}

// TestGreedyLocalityIndexParity proves the index-backed greedy planner is
// byte-identical to the probe-based one across placements, problem sizes
// spanning the serial and parallel index-build paths, multi-input tasks,
// and the rack tier.
func TestGreedyLocalityIndexParity(t *testing.T) {
	type prob struct {
		name string
		p    *Problem
		seed int64
	}
	var cases []prob
	for _, c := range []struct {
		name   string
		nodes  int
		chunks int
		seed   int64
		pol    dfs.Placement
	}{
		{"random small", 8, 64, 1, dfs.RandomPlacement{}},
		{"random medium", 16, 160, 2, dfs.RandomPlacement{}},
		{"round-robin", 12, 96, 3, dfs.RoundRobinPlacement{}},
		{"parallel index build", 24, 2*indexParallelThreshold + 32, 4, dfs.RandomPlacement{}},
		{"skewed clustered", 10, 80, 5, dfs.ClusteredPlacement{}},
	} {
		p, _ := buildSingle(t, c.nodes, c.chunks, c.seed, c.pol)
		cases = append(cases, prob{c.name, p, c.seed})
	}
	cases = append(cases, prob{"multi-data", goldenMultiProblem(t), 11})
	{
		p, _ := buildSingle(t, 16, 128, 6, dfs.RandomPlacement{})
		racks := make([]int, 16)
		for i := range racks {
			racks[i] = i / 4
		}
		p.NodeRack = racks
		cases = append(cases, prob{"rack-tiered", p, 13})
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := greedyProbeReference(t, c.p, c.seed)
			got, err := GreedyLocality{Seed: c.seed}.Assign(c.p)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(c.p); err != nil {
				t.Fatal(err)
			}
			for task := range want.Owner {
				if got.Owner[task] != want.Owner[task] {
					t.Fatalf("task %d owned by %d, probe reference says %d", task, got.Owner[task], want.Owner[task])
				}
			}
			if got.PlannedLocalMB != want.PlannedLocalMB || got.PlannedTotalMB != want.PlannedTotalMB {
				t.Fatalf("locality (%v/%v), reference (%v/%v)",
					got.PlannedLocalMB, got.PlannedTotalMB, want.PlannedLocalMB, want.PlannedTotalMB)
			}
			for proc := range want.Lists {
				if len(got.Lists[proc]) != len(want.Lists[proc]) {
					t.Fatalf("proc %d list length %d, want %d", proc, len(got.Lists[proc]), len(want.Lists[proc]))
				}
				for i := range want.Lists[proc] {
					if got.Lists[proc][i] != want.Lists[proc][i] {
						t.Fatalf("proc %d list[%d] = %d, want %d", proc, i, got.Lists[proc][i], want.Lists[proc][i])
					}
				}
			}
		})
	}
}
