package core

import (
	"testing"
	"testing/quick"

	"opass/internal/bipartite"
	"opass/internal/dfs"
)

func TestGreedyValidAndNearOptimal(t *testing.T) {
	p, _ := buildSingle(t, 32, 320, 21, dfs.RandomPlacement{})
	greedy, err := GreedyLocality{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Validate(p); err != nil {
		t.Fatal(err)
	}
	flow, err := SingleData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy can never beat the optimum, and should land within 10% of it
	// on random placements.
	if greedy.PlannedLocalMB > flow.PlannedLocalMB+1e-6 {
		t.Fatalf("greedy %v exceeds optimal flow %v", greedy.PlannedLocalMB, flow.PlannedLocalMB)
	}
	if greedy.PlannedLocalMB < 0.9*flow.PlannedLocalMB {
		t.Fatalf("greedy %v below 90%% of optimal %v", greedy.PlannedLocalMB, flow.PlannedLocalMB)
	}
	// Equal task counts still hold.
	for proc, list := range greedy.Lists {
		if len(list) != 10 {
			t.Fatalf("proc %d got %d tasks, want 10", proc, len(list))
		}
	}
}

func TestGreedyFullMatchingOnEvenPlacement(t *testing.T) {
	p, _ := buildSingle(t, 8, 80, 22, dfs.RoundRobinPlacement{})
	a, err := GreedyLocality{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalityFraction() != 1.0 {
		t.Fatalf("greedy locality %v on even placement, want 1.0", a.LocalityFraction())
	}
}

func TestGreedyBeatsRank(t *testing.T) {
	p, _ := buildSingle(t, 16, 160, 23, dfs.RandomPlacement{})
	greedy, _ := GreedyLocality{}.Assign(p)
	rank, _ := RankStatic{}.Assign(p)
	if greedy.PlannedLocalMB <= rank.PlannedLocalMB {
		t.Fatalf("greedy %v <= rank %v", greedy.PlannedLocalMB, rank.PlannedLocalMB)
	}
}

func TestGreedyPropertyNeverExceedsFlow(t *testing.T) {
	prop := func(seed int64, rawNodes uint8) bool {
		nodes := 4 + int(rawNodes)%16
		p, _ := buildSingle(t, nodes, nodes*5, seed, dfs.RandomPlacement{})
		greedy, err := GreedyLocality{Seed: seed}.Assign(p)
		if err != nil {
			t.Error(err)
			return false
		}
		if err := greedy.Validate(p); err != nil {
			t.Error(err)
			return false
		}
		flow, err := SingleData{Seed: seed}.Assign(p)
		if err != nil {
			t.Error(err)
			return false
		}
		if greedy.PlannedLocalMB > flow.PlannedLocalMB+1e-6 {
			t.Errorf("seed %d: greedy %v > flow optimum %v", seed, greedy.PlannedLocalMB, flow.PlannedLocalMB)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyHandlesMultiInputTasks(t *testing.T) {
	// Unlike the flow planner, the greedy heuristic accepts multi-input
	// tasks directly (co-location weights already aggregate the inputs).
	p := multiProblem(t, 8, 24, 24)
	a, err := GreedyLocality{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedQuotasSkewLoad(t *testing.T) {
	p, _ := buildSingle(t, 4, 40, 51, dfs.RandomPlacement{})
	// Process 0 gets 4x the share of the others: 40 tasks -> ~23 vs ~5-6.
	weights := []float64{4, 1, 1, 1}
	a, err := SingleData{Weights: weights, Seed: 51}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Lists[0]); got < 18 || got > 26 {
		t.Fatalf("weighted proc 0 got %d tasks, want ~23 (4/7 of 40)", got)
	}
	for i := 1; i < 4; i++ {
		if got := len(a.Lists[i]); got > 9 {
			t.Fatalf("proc %d got %d tasks despite weight 1/7", i, got)
		}
	}
}

func TestWeightedQuotasValidation(t *testing.T) {
	p, _ := buildSingle(t, 4, 8, 52, dfs.RandomPlacement{})
	if _, err := (SingleData{Weights: []float64{1, 2}}).Assign(p); err == nil {
		t.Fatal("wrong weight count must fail")
	}
	if _, err := (SingleData{Weights: []float64{-1, 1, 1, 1}}).Assign(p); err == nil {
		t.Fatal("negative weight must fail")
	}
	if _, err := (SingleData{Weights: []float64{0, 0, 0, 0}}).Assign(p); err == nil {
		t.Fatal("zero-sum weights must fail")
	}
}

func TestZeroWeightProcessGetsNothing(t *testing.T) {
	p, _ := buildSingle(t, 4, 12, 53, dfs.RandomPlacement{})
	a, err := SingleData{Weights: []float64{1, 1, 1, 0}, Seed: 53}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Lists[3]) != 0 {
		t.Fatalf("zero-weight proc got %d tasks", len(a.Lists[3]))
	}
}

func TestDeterministicPlanners(t *testing.T) {
	for _, as := range []Assigner{SingleData{Seed: 5}, MultiData{Seed: 5}, GreedyLocality{Seed: 5}, RandomStatic{Seed: 5}} {
		run := func() []int {
			var a *Assignment
			var err error
			if as.Name() == "opass-matching" {
				p := multiProblem(t, 8, 24, 54)
				a, err = as.Assign(p)
			} else {
				p, _ := buildSingle(t, 8, 40, 54, dfs.RandomPlacement{})
				a, err = as.Assign(p)
			}
			if err != nil {
				t.Fatal(err)
			}
			return a.Owner
		}
		x, y := run(), run()
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s not deterministic at task %d", as.Name(), i)
			}
		}
	}
}

func TestKuhnMatchesFlowLocality(t *testing.T) {
	p, _ := buildSingle(t, 32, 320, 55, dfs.RandomPlacement{})
	flow, err := SingleData{Algorithm: bipartite.EdmondsKarp, Seed: 55}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	kuhn, err := SingleData{Algorithm: bipartite.Kuhn, Seed: 55}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := kuhn.Validate(p); err != nil {
		t.Fatal(err)
	}
	if kuhn.PlannedLocalMB != flow.PlannedLocalMB {
		t.Fatalf("kuhn local %v != flow %v", kuhn.PlannedLocalMB, flow.PlannedLocalMB)
	}
}

func TestKuhnFallsBackOnUnequalSizes(t *testing.T) {
	// Tasks of different sizes cannot use the matching fast path; the
	// planner must still produce a valid assignment via the flow solver.
	fs := dfs.New(view{8}, dfs.Config{Seed: 56})
	p := &Problem{ProcNode: []int{0, 1, 2, 3, 4, 5, 6, 7}, FS: fs}
	for i := 0; i < 16; i++ {
		size := float64(32 + 16*(i%3)) // 32, 48, 64 MB
		f, err := fs.CreateChunks(itoa(i), []float64{size})
		if err != nil {
			t.Fatal(err)
		}
		p.Tasks = append(p.Tasks, Task{ID: i, Inputs: []Input{{f.Chunks[0], size}}})
	}
	a, err := SingleData{Algorithm: bipartite.Kuhn, Seed: 56}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestFewerTasksThanProcs(t *testing.T) {
	// 2 tasks on a 4-process cluster: the flow planner must still match
	// both tasks to co-located processes (TotalSize/m would be half a task;
	// the count-based quota keeps the formulation feasible).
	fs := dfs.New(view{4}, dfs.Config{
		Replication: 2,
		Placement:   dfs.FixedPlacement{Replicas: [][]int{{0, 2}, {1, 3}}},
	})
	prob := &Problem{ProcNode: []int{0, 1, 2, 3}, FS: fs}
	for i := 0; i < 2; i++ {
		f, err := fs.CreateChunks(itoa(i), []float64{64})
		if err != nil {
			t.Fatal(err)
		}
		prob.Tasks = append(prob.Tasks, Task{ID: i, Inputs: []Input{{f.Chunks[0], 64}}})
	}
	a, err := SingleData{}.Assign(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(prob); err != nil {
		t.Fatal(err)
	}
	if a.LocalityFraction() != 1.0 {
		t.Fatalf("locality %v, want 1.0 (both tasks have co-located procs)", a.LocalityFraction())
	}
	if o := a.Owner[0]; o != 0 && o != 2 {
		t.Fatalf("task 0 owned by %d, want 0 or 2", o)
	}
	if o := a.Owner[1]; o != 1 && o != 3 {
		t.Fatalf("task 1 owned by %d, want 1 or 3", o)
	}
}
