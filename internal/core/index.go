package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the shared locality index behind every planner's hot
// path. The §IV-A locality graph is sparse — a task touches at most
// inputs × replicas nodes, so at most that many processes hold any of its
// data — yet the planners used to discover it by probing CoLocatedMB for
// every (process, task) pair, an O(m·n·inputs·replicas) sweep. The index
// inverts the problem once: node→processes from ProcNode and chunk→replicas
// from the namenode metadata, yielding every (process, task, MB) locality
// edge in O(edges) total. SingleData's flow-network build, MultiData's
// preference lists, and the dynamic scheduler's steal scan all run off it.
//
// The per-task accumulation order matches CoLocatedMB exactly (inputs in
// declaration order, each added once per co-located process), so the
// floating-point weights are bit-identical to the probe path — the golden
// plan tests rely on this to prove the refactor is behavior-preserving.
//
// At service scale (10k procs / 1M tasks) the index's edge storage is tens
// of millions of LocalityEdge values per request; building and dropping
// that on every plan dominates allocator time. The heavy buffers — the
// fixed-size arena blocks per-task edge slices are carved from, the byProc
// transpose backing, and the per-worker accumulation scratch — are
// therefore recycled through package-level sync.Pools. Request-scoped
// consumers (the planners) call Release when done; long-lived holders (the
// dynamic scheduler) simply never release and the GC reclaims as before.

// LocalityEdge is one edge of the §IV-A bipartite locality graph: process
// Proc holds MB megabytes of task Task's input data on its local disks.
type LocalityEdge struct {
	Proc int
	Task int
	MB   float64
}

// LocalityIndex is the inverted locality view of a Problem. It is immutable
// after construction; the underlying Problem and FileSystem must not change
// while the index is in use.
type LocalityIndex struct {
	p      *Problem
	byTask [][]LocalityEdge // task -> edges, Proc-ascending
	byProc [][]LocalityEdge // proc -> edges, Task-ascending
	edges  int

	// Rack tier (see rack.go): built only for rack-tiered problems.
	rackTiered bool
	byTaskRack [][]LocalityEdge // task -> rack-local edges, Proc-ascending
	rackEdges  int

	// Pooled-buffer bookkeeping for Release: every standard arena block the
	// build carved edge slices from, and the byProc transpose backing.
	blocks   []*[]LocalityEdge
	backing  *[]LocalityEdge
	released bool
}

// indexParallelThreshold is the task count below which the index builds
// serially; tiny problems don't amortize the worker-pool handoff.
const indexParallelThreshold = 256

// indexCtxStride is how many per-task accumulations run between context
// polls during the index build (serially and per worker).
const indexCtxStride = 512

// edgeBlockSize is the arena block granularity: one allocation (or pool
// fetch) per ~4096 edges instead of one per task.
const edgeBlockSize = 4096

// edgeBlockPool recycles the fixed-size arena blocks. Stale contents are
// harmless: a carve writes every element of the slice it returns before the
// slice becomes visible.
var edgeBlockPool = sync.Pool{New: func() any {
	b := make([]LocalityEdge, edgeBlockSize)
	return &b
}}

// backingPool recycles the byProc transpose backing array (one contiguous
// slice holding every edge of an index, capacity varies by problem).
var backingPool sync.Pool

// scratchPool recycles per-worker accumulation scratch between builds.
var scratchPool sync.Pool

// buildScratch is the per-worker accumulation state shared by the node-tier
// and rack-tier index builders: accumulated MB per process plus an epoch
// stamp so the arrays reset in O(touched) instead of O(m) per task. The
// epoch survives pooling — it only ever increments, so stale stamps from a
// previous build can never collide with a fresh epoch.
type buildScratch struct {
	mb      []float64
	stamp   []int
	epoch   int
	touched []int
	racks   []int          // rack-tier builder only: racks of the current input
	arena   []LocalityEdge // remaining tail of the current block
	blocks  []*[]LocalityEdge
}

// newScratch fetches (or grows) a pooled scratch sized for m processes.
func newScratch(m int) *buildScratch {
	s, _ := scratchPool.Get().(*buildScratch)
	if s == nil {
		s = new(buildScratch)
	}
	if cap(s.mb) < m {
		s.mb = make([]float64, m)
		s.stamp = make([]int, m)
	} else {
		s.mb = s.mb[:m]
		s.stamp = s.stamp[:m]
	}
	return s
}

// carve returns an edge slice of exactly need elements from the block
// arena. Full slice expressions cap the capacity so neighboring carves can
// never overlap. Oversized needs get a dedicated (non-recycled) allocation.
func (s *buildScratch) carve(need int) []LocalityEdge {
	if need > edgeBlockSize {
		return make([]LocalityEdge, need)
	}
	if len(s.arena) < need {
		bp := edgeBlockPool.Get().(*[]LocalityEdge)
		s.blocks = append(s.blocks, bp)
		s.arena = *bp
	}
	es := s.arena[:need:need]
	s.arena = s.arena[need:]
	return es
}

// handoff moves the blocks this scratch drew into the index (which owns
// them until Release) and returns the scratch to the pool.
func (s *buildScratch) handoff(ix *LocalityIndex, mu *sync.Mutex) {
	if len(s.blocks) > 0 {
		if mu != nil {
			mu.Lock()
		}
		ix.blocks = append(ix.blocks, s.blocks...)
		if mu != nil {
			mu.Unlock()
		}
	}
	s.blocks = nil
	s.arena = nil
	s.touched = s.touched[:0]
	s.racks = s.racks[:0]
	scratchPool.Put(s)
}

// getBacking fetches (or allocates) a contiguous edge slice of length n.
// Every element is overwritten by the transpose fill, so stale pooled
// contents are harmless. A pooled slice too small for n is dropped.
func getBacking(n int) *[]LocalityEdge {
	if bp, ok := backingPool.Get().(*[]LocalityEdge); ok && cap(*bp) >= n {
		*bp = (*bp)[:n]
		return bp
	}
	b := make([]LocalityEdge, n)
	return &b
}

// NewLocalityIndex builds the index in O(edges) by walking each task's
// inputs through the chunk→replica and node→process inversions. The
// independent per-task accumulations are fanned out over a bounded
// GOMAXPROCS worker pool on large problems.
func NewLocalityIndex(p *Problem) *LocalityIndex {
	ix, _ := NewLocalityIndexContext(context.Background(), p)
	return ix
}

// NewLocalityIndexContext is NewLocalityIndex under cooperative
// cancellation: the build (including its worker fan-out) polls ctx every
// indexCtxStride tasks and returns ctx's error instead of a partial index.
func NewLocalityIndexContext(ctx context.Context, p *Problem) (*LocalityIndex, error) {
	m, n := p.NumProcs(), len(p.Tasks)
	ix := &LocalityIndex{p: p, byTask: make([][]LocalityEdge, n)}

	// Invert ProcNode: which process ranks live on each node.
	maxNode := -1
	for _, node := range p.ProcNode {
		if node > maxNode {
			maxNode = node
		}
	}
	procsOn := make([][]int, maxNode+1)
	for proc, node := range p.ProcNode {
		if node >= 0 {
			procsOn[node] = append(procsOn[node], proc)
		}
	}

	buildTask := func(s *buildScratch, t int) {
		s.epoch++
		s.touched = s.touched[:0]
		for _, in := range p.Tasks[t].Inputs {
			for _, node := range p.FS.Chunk(in.Chunk).Replicas {
				if node < 0 || node >= len(procsOn) {
					continue
				}
				for _, proc := range procsOn[node] {
					if s.stamp[proc] != s.epoch {
						s.stamp[proc] = s.epoch
						s.mb[proc] = 0
						s.touched = append(s.touched, proc)
					}
					s.mb[proc] += in.SizeMB
				}
			}
		}
		if len(s.touched) == 0 {
			return
		}
		sort.Ints(s.touched)
		es := s.carve(len(s.touched))
		for i, proc := range s.touched {
			es[i] = LocalityEdge{Proc: proc, Task: t, MB: s.mb[proc]}
		}
		ix.byTask[t] = es
	}

	workers := runtime.GOMAXPROCS(0)
	if n < indexParallelThreshold || workers <= 1 {
		s := newScratch(m)
		for t := 0; t < n; t++ {
			if t%indexCtxStride == 0 && ctx.Err() != nil {
				s.handoff(ix, nil)
				ix.Release()
				return nil, ctx.Err()
			}
			buildTask(s, t)
		}
		s.handoff(ix, nil)
	} else {
		if workers > n {
			workers = n
		}
		var mu sync.Mutex
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				s := newScratch(m)
				defer func() {
					s.handoff(ix, &mu)
					wg.Done()
				}()
				for done := 0; ; done++ {
					if done%indexCtxStride == 0 && ctx.Err() != nil {
						return // partial build; caller returns ctx.Err()
					}
					t := int(next.Add(1)) - 1
					if t >= n {
						return
					}
					buildTask(s, t)
				}
			}()
		}
		wg.Wait()
		// ctx errors are sticky: if it fired at any point some worker may
		// have bailed mid-build, so the byTask view cannot be trusted.
		if err := ctx.Err(); err != nil {
			ix.Release()
			return nil, err
		}
	}

	// Transpose into the per-process view with a counting sort over one
	// shared backing array. Tasks are visited in ascending order, so byProc
	// stays Task-ascending without a comparison sort.
	deg := make([]int, m)
	for _, es := range ix.byTask {
		ix.edges += len(es)
		for _, e := range es {
			deg[e.Proc]++
		}
	}
	ix.backing = getBacking(ix.edges)
	backing := *ix.backing
	pos := make([]int, m)
	off := 0
	ix.byProc = make([][]LocalityEdge, m)
	for proc, d := range deg {
		pos[proc] = off
		ix.byProc[proc] = backing[off : off+d : off+d]
		off += d
	}
	for _, es := range ix.byTask {
		for _, e := range es {
			backing[pos[e.Proc]] = e
			pos[e.Proc]++
		}
	}
	if err := ix.buildRackTier(ctx); err != nil {
		ix.Release()
		return nil, err
	}
	return ix, nil
}

// Release returns the index's pooled buffers (arena blocks, transpose
// backing, and with them every edge slice ever returned by
// TaskEdges/ProcEdges/TaskRackEdges) to the package pools for the next
// build. It is optional and purely a performance lever: an index that is
// simply dropped is garbage-collected as before. The caller must be the
// sole user of the index — after Release the index and any views obtained
// from it are invalid. Releasing twice panics; releasing a nil index is a
// no-op so error paths can call it unconditionally.
func (ix *LocalityIndex) Release() {
	if ix == nil {
		return
	}
	if ix.released {
		panic("core: LocalityIndex.Release called twice")
	}
	ix.released = true
	for _, bp := range ix.blocks {
		edgeBlockPool.Put(bp)
	}
	ix.blocks = nil
	if ix.backing != nil {
		backingPool.Put(ix.backing)
		ix.backing = nil
	}
	ix.p = nil
	ix.byTask, ix.byProc, ix.byTaskRack = nil, nil, nil
}

// NumEdges reports the number of locality edges (pairs with positive
// co-located data).
func (ix *LocalityIndex) NumEdges() int { return ix.edges }

// Degrees returns the per-process and per-task edge counts, in the shape
// bipartite.Graph.Reserve expects, so a graph built from the index can
// pre-size its adjacency lists.
func (ix *LocalityIndex) Degrees() (procDeg, taskDeg []int) {
	procDeg = make([]int, len(ix.byProc))
	for p, es := range ix.byProc {
		procDeg[p] = len(es)
	}
	taskDeg = make([]int, len(ix.byTask))
	for t, es := range ix.byTask {
		taskDeg[t] = len(es)
	}
	return procDeg, taskDeg
}

// TaskEdges returns task t's locality edges in ascending process order. The
// slice is a read-only view owned by the index.
func (ix *LocalityIndex) TaskEdges(t int) []LocalityEdge { return ix.byTask[t] }

// ProcEdges returns process p's locality edges in ascending task order. The
// slice is a read-only view owned by the index.
func (ix *LocalityIndex) ProcEdges(p int) []LocalityEdge { return ix.byProc[p] }

// CoLocatedMB returns the co-located megabytes for (proc, task) by binary
// search — the same value Problem.CoLocatedMB computes by probing, in
// O(log degree) instead of O(inputs·replicas).
func (ix *LocalityIndex) CoLocatedMB(proc, task int) float64 {
	es := ix.byTask[task]
	i := sort.Search(len(es), func(k int) bool { return es[k].Proc >= proc })
	if i < len(es) && es[i].Proc == proc {
		return es[i].MB
	}
	return 0
}

// parallelFor runs fn(i) for i in [0, n) over a bounded GOMAXPROCS worker
// pool. Iterations must be independent; small n runs inline.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < 2 || workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// parallelChunks runs fn(lo, hi) over contiguous [lo, hi) ranges of [0, n)
// of at most chunk elements each, fanned out over the parallelFor pool.
// Chunk boundaries depend only on n and chunk — never on the worker count —
// so per-chunk partial results can be reduced deterministically.
func parallelChunks(n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	parallelFor(chunks, func(i int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
