package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the shared locality index behind every planner's hot
// path. The §IV-A locality graph is sparse — a task touches at most
// inputs × replicas nodes, so at most that many processes hold any of its
// data — yet the planners used to discover it by probing CoLocatedMB for
// every (process, task) pair, an O(m·n·inputs·replicas) sweep. The index
// inverts the problem once: node→processes from ProcNode and chunk→replicas
// from the namenode metadata, yielding every (process, task, MB) locality
// edge in O(edges) total. SingleData's flow-network build, MultiData's
// preference lists, and the dynamic scheduler's steal scan all run off it.
//
// The per-task accumulation order matches CoLocatedMB exactly (inputs in
// declaration order, each added once per co-located process), so the
// floating-point weights are bit-identical to the probe path — the golden
// plan tests rely on this to prove the refactor is behavior-preserving.

// LocalityEdge is one edge of the §IV-A bipartite locality graph: process
// Proc holds MB megabytes of task Task's input data on its local disks.
type LocalityEdge struct {
	Proc int
	Task int
	MB   float64
}

// LocalityIndex is the inverted locality view of a Problem. It is immutable
// after construction; the underlying Problem and FileSystem must not change
// while the index is in use.
type LocalityIndex struct {
	p      *Problem
	byTask [][]LocalityEdge // task -> edges, Proc-ascending
	byProc [][]LocalityEdge // proc -> edges, Task-ascending
	edges  int

	// Rack tier (see rack.go): built only for rack-tiered problems.
	rackTiered bool
	byTaskRack [][]LocalityEdge // task -> rack-local edges, Proc-ascending
	rackEdges  int
}

// indexParallelThreshold is the task count below which the index builds
// serially; tiny problems don't amortize the worker-pool handoff.
const indexParallelThreshold = 256

// indexCtxStride is how many per-task accumulations run between context
// polls during the index build (serially and per worker).
const indexCtxStride = 512

// NewLocalityIndex builds the index in O(edges) by walking each task's
// inputs through the chunk→replica and node→process inversions. The
// independent per-task accumulations are fanned out over a bounded
// GOMAXPROCS worker pool on large problems.
func NewLocalityIndex(p *Problem) *LocalityIndex {
	ix, _ := NewLocalityIndexContext(context.Background(), p)
	return ix
}

// NewLocalityIndexContext is NewLocalityIndex under cooperative
// cancellation: the build (including its worker fan-out) polls ctx every
// indexCtxStride tasks and returns ctx's error instead of a partial index.
func NewLocalityIndexContext(ctx context.Context, p *Problem) (*LocalityIndex, error) {
	m, n := p.NumProcs(), len(p.Tasks)
	ix := &LocalityIndex{p: p, byTask: make([][]LocalityEdge, n)}

	// Invert ProcNode: which process ranks live on each node.
	maxNode := -1
	for _, node := range p.ProcNode {
		if node > maxNode {
			maxNode = node
		}
	}
	procsOn := make([][]int, maxNode+1)
	for proc, node := range p.ProcNode {
		if node >= 0 {
			procsOn[node] = append(procsOn[node], proc)
		}
	}

	// Per-worker scratch: accumulated MB per process plus an epoch stamp so
	// the arrays reset in O(touched) instead of O(m) per task.
	type scratch struct {
		mb      []float64
		stamp   []int
		epoch   int
		touched []int
		arena   []LocalityEdge // block allocator for per-task edge slices
	}
	buildTask := func(s *scratch, t int) {
		s.epoch++
		s.touched = s.touched[:0]
		for _, in := range p.Tasks[t].Inputs {
			for _, node := range p.FS.Chunk(in.Chunk).Replicas {
				if node < 0 || node >= len(procsOn) {
					continue
				}
				for _, proc := range procsOn[node] {
					if s.stamp[proc] != s.epoch {
						s.stamp[proc] = s.epoch
						s.mb[proc] = 0
						s.touched = append(s.touched, proc)
					}
					s.mb[proc] += in.SizeMB
				}
			}
		}
		if len(s.touched) == 0 {
			return
		}
		sort.Ints(s.touched)
		// Carve the task's edge slice from a block arena: one allocation per
		// ~4096 edges instead of one per task. Full slice expressions cap the
		// capacity so neighboring carves can never overlap.
		need := len(s.touched)
		if len(s.arena) < need {
			size := 4096
			if need > size {
				size = need
			}
			s.arena = make([]LocalityEdge, size)
		}
		es := s.arena[:need:need]
		s.arena = s.arena[need:]
		for i, proc := range s.touched {
			es[i] = LocalityEdge{Proc: proc, Task: t, MB: s.mb[proc]}
		}
		ix.byTask[t] = es
	}

	workers := runtime.GOMAXPROCS(0)
	if n < indexParallelThreshold || workers <= 1 {
		s := &scratch{mb: make([]float64, m), stamp: make([]int, m)}
		for t := 0; t < n; t++ {
			if t%indexCtxStride == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			buildTask(s, t)
		}
	} else {
		if workers > n {
			workers = n
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				s := &scratch{mb: make([]float64, m), stamp: make([]int, m)}
				for done := 0; ; done++ {
					if done%indexCtxStride == 0 && ctx.Err() != nil {
						return // partial build; caller returns ctx.Err()
					}
					t := int(next.Add(1)) - 1
					if t >= n {
						return
					}
					buildTask(s, t)
				}
			}()
		}
		wg.Wait()
		// ctx errors are sticky: if it fired at any point some worker may
		// have bailed mid-build, so the byTask view cannot be trusted.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Transpose into the per-process view with a counting sort over one
	// shared backing array. Tasks are visited in ascending order, so byProc
	// stays Task-ascending without a comparison sort.
	deg := make([]int, m)
	for _, es := range ix.byTask {
		ix.edges += len(es)
		for _, e := range es {
			deg[e.Proc]++
		}
	}
	backing := make([]LocalityEdge, ix.edges)
	pos := make([]int, m)
	off := 0
	ix.byProc = make([][]LocalityEdge, m)
	for proc, d := range deg {
		pos[proc] = off
		ix.byProc[proc] = backing[off : off+d : off+d]
		off += d
	}
	for _, es := range ix.byTask {
		for _, e := range es {
			backing[pos[e.Proc]] = e
			pos[e.Proc]++
		}
	}
	if err := ix.buildRackTier(ctx); err != nil {
		return nil, err
	}
	return ix, nil
}

// NumEdges reports the number of locality edges (pairs with positive
// co-located data).
func (ix *LocalityIndex) NumEdges() int { return ix.edges }

// Degrees returns the per-process and per-task edge counts, in the shape
// bipartite.Graph.Reserve expects, so a graph built from the index can
// pre-size its adjacency lists.
func (ix *LocalityIndex) Degrees() (procDeg, taskDeg []int) {
	procDeg = make([]int, len(ix.byProc))
	for p, es := range ix.byProc {
		procDeg[p] = len(es)
	}
	taskDeg = make([]int, len(ix.byTask))
	for t, es := range ix.byTask {
		taskDeg[t] = len(es)
	}
	return procDeg, taskDeg
}

// TaskEdges returns task t's locality edges in ascending process order. The
// slice is a read-only view owned by the index.
func (ix *LocalityIndex) TaskEdges(t int) []LocalityEdge { return ix.byTask[t] }

// ProcEdges returns process p's locality edges in ascending task order. The
// slice is a read-only view owned by the index.
func (ix *LocalityIndex) ProcEdges(p int) []LocalityEdge { return ix.byProc[p] }

// CoLocatedMB returns the co-located megabytes for (proc, task) by binary
// search — the same value Problem.CoLocatedMB computes by probing, in
// O(log degree) instead of O(inputs·replicas).
func (ix *LocalityIndex) CoLocatedMB(proc, task int) float64 {
	es := ix.byTask[task]
	i := sort.Search(len(es), func(k int) bool { return es[k].Proc >= proc })
	if i < len(es) && es[i].Proc == proc {
		return es[i].MB
	}
	return 0
}

// parallelFor runs fn(i) for i in [0, n) over a bounded GOMAXPROCS worker
// pool. Iterations must be independent; small n runs inline.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < 2 || workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
