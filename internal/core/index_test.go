package core

import (
	"sort"
	"testing"

	"opass/internal/dfs"
)

// TestLocalityIndexMatchesProbes asserts the index reproduces
// Problem.CoLocatedMB bit-for-bit over every (proc, task) pair — the
// invariant the golden-plan equivalence rests on — on both single-data and
// multi-data problems, across the serial and parallel build paths.
func TestLocalityIndexMatchesProbes(t *testing.T) {
	single, _ := buildSingle(t, 16, 160, 9, dfs.RandomPlacement{})
	large, _ := buildSingle(t, 24, 2*indexParallelThreshold, 10, dfs.RandomPlacement{})
	multi := goldenMultiProblem(t)
	for name, p := range map[string]*Problem{"single": single, "parallel-build": large, "multi": multi} {
		t.Run(name, func(t *testing.T) {
			ix := NewLocalityIndex(p)
			edges := 0
			for task := range p.Tasks {
				for proc := 0; proc < p.NumProcs(); proc++ {
					want := p.CoLocatedMB(proc, task)
					if got := ix.CoLocatedMB(proc, task); got != want {
						t.Fatalf("index MB(proc=%d, task=%d) = %v, probe says %v", proc, task, got, want)
					}
					if want > 0 {
						edges++
					}
				}
			}
			if ix.NumEdges() != edges {
				t.Fatalf("index has %d edges, probes found %d", ix.NumEdges(), edges)
			}
		})
	}
}

// TestLocalityIndexViewsSorted asserts the ordering contracts TaskEdges and
// ProcEdges document, and that both views agree on the edge set.
func TestLocalityIndexViewsSorted(t *testing.T) {
	p, _ := buildSingle(t, 16, 160, 11, dfs.RandomPlacement{})
	ix := NewLocalityIndex(p)
	type key struct{ proc, task int }
	fromTasks := map[key]float64{}
	for task := range p.Tasks {
		es := ix.TaskEdges(task)
		if !sort.SliceIsSorted(es, func(a, b int) bool { return es[a].Proc < es[b].Proc }) {
			t.Fatalf("TaskEdges(%d) not process-ascending: %v", task, es)
		}
		for _, e := range es {
			if e.Task != task || e.MB <= 0 {
				t.Fatalf("TaskEdges(%d) contains foreign or empty edge %+v", task, e)
			}
			fromTasks[key{e.Proc, e.Task}] = e.MB
		}
	}
	seen := 0
	for proc := 0; proc < p.NumProcs(); proc++ {
		es := ix.ProcEdges(proc)
		if !sort.SliceIsSorted(es, func(a, b int) bool { return es[a].Task < es[b].Task }) {
			t.Fatalf("ProcEdges(%d) not task-ascending: %v", proc, es)
		}
		for _, e := range es {
			if w, ok := fromTasks[key{e.Proc, e.Task}]; !ok || w != e.MB {
				t.Fatalf("ProcEdges(%d) edge %+v disagrees with TaskEdges view (%v, %v)", proc, e, w, ok)
			}
			seen++
		}
	}
	if seen != ix.NumEdges() {
		t.Fatalf("ProcEdges enumerates %d edges, index reports %d", seen, ix.NumEdges())
	}
}

// TestLocalityIndexParallelDeterminism asserts repeated builds (which race
// worker goroutines over the task space) always produce identical views.
func TestLocalityIndexParallelDeterminism(t *testing.T) {
	p, _ := buildSingle(t, 24, 2*indexParallelThreshold, 12, dfs.RandomPlacement{})
	base := NewLocalityIndex(p)
	for round := 0; round < 5; round++ {
		ix := NewLocalityIndex(p)
		if ix.NumEdges() != base.NumEdges() {
			t.Fatalf("round %d: %d edges, want %d", round, ix.NumEdges(), base.NumEdges())
		}
		for task := range p.Tasks {
			a, b := base.TaskEdges(task), ix.TaskEdges(task)
			if len(a) != len(b) {
				t.Fatalf("round %d task %d: %d edges, want %d", round, task, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round %d task %d edge %d: %+v, want %+v", round, task, i, b[i], a[i])
				}
			}
		}
	}
}

// TestSingleDataSubMBTasks pins the capacity-unit fix: sub-MB tasks used to
// be clamped to 1 MB each in the flow encoding (a 0.4 MB task inflated
// 2.5x), which skewed the per-process quotas whenever task sizes were
// mixed. With scaled units the planner balances the actual megabytes.
func TestSingleDataSubMBTasks(t *testing.T) {
	// 2 processes; 10 tasks of 0.4 MB and 4 of 2.0 MB, every chunk
	// replicated on both nodes so locality never constrains the split. The
	// ideal share is 6.0 MB per process.
	const nodes = 2
	fs := dfs.New(view{nodes}, dfs.Config{Replication: 2, Seed: 1})
	sizes := make([]float64, 0, 14)
	for i := 0; i < 10; i++ {
		sizes = append(sizes, 0.4)
	}
	for i := 0; i < 4; i++ {
		sizes = append(sizes, 2.0)
	}
	f, err := fs.CreateChunks("/mixed", sizes)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{ProcNode: []int{0, 1}, FS: fs}
	for i, id := range f.Chunks {
		p.Tasks = append(p.Tasks, Task{ID: i, Inputs: []Input{{Chunk: id, SizeMB: sizes[i]}}})
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if scale := capacityScale(p); scale < 32 {
		t.Fatalf("capacityScale = %d, want a sub-MB unit (>= 32 units/MB)", scale)
	}
	a, err := (SingleData{Seed: 3}).Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalityFraction() != 1.0 {
		t.Fatalf("locality = %v, want 1.0 with full replication", a.LocalityFraction())
	}
	load := make([]float64, nodes)
	for task, proc := range a.Owner {
		load[proc] += p.Tasks[task].SizeMB()
	}
	ideal := p.TotalMB() / nodes
	for proc, mb := range load {
		if diff := mb - ideal; diff > 2.0 || diff < -2.0 {
			t.Fatalf("proc %d carries %.1f MB, ideal %.1f (quotas distorted by per-task MB rounding; loads %v)", proc, mb, ideal, load)
		}
	}
}

// TestCapUnitsWholeMBCompat asserts the scale-1 path is the paper's
// original encoding (round to nearest MB, floor 1), keeping whole-MB
// workloads byte-compatible with the pre-scaling planner.
func TestCapUnitsWholeMBCompat(t *testing.T) {
	for _, c := range []struct {
		size float64
		want int64
	}{{0.2, 1}, {0.6, 1}, {1.0, 1}, {1.4, 1}, {1.5, 2}, {64, 64}} {
		if got := capUnits(c.size, 1); got != c.want {
			t.Errorf("capUnits(%v, 1) = %d, want %d", c.size, got, c.want)
		}
	}
	whole, _ := buildSingle(t, 4, 16, 2, dfs.RandomPlacement{})
	if scale := capacityScale(whole); scale != 1 {
		t.Errorf("capacityScale on 64 MB chunks = %d, want 1", scale)
	}
}
