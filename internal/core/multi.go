package core

import (
	"math/rand"
	"sort"
)

// MultiData is the Opass planner for tasks with multiple data inputs
// (Algorithm 1, §IV-C). It generalizes the stable-marriage procedure to a
// one-to-many matching: every under-quota process proposes to the
// not-yet-considered task with the largest co-located data size; a task
// accepts a proposal when it is unassigned or when the proposer holds more
// of its data than its current owner (reassignment, Figure 6b). The
// algorithm is optimal from the perspective of each process, like the
// proposer-optimal Gale-Shapley matching.
type MultiData struct {
	// Seed drives the random placement of tasks that no process holds any
	// data for.
	Seed int64
}

// Name implements Assigner.
func (MultiData) Name() string { return "opass-matching" }

// Assign implements Assigner.
func (md MultiData) Assign(p *Problem) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := len(p.Tasks), p.NumProcs()
	quotas := taskQuotas(n, m)

	// Matching values m_i^j, kept sparse per process as a preference list
	// sorted by descending co-located size (ties by ascending task ID for
	// determinism). Only tasks with positive co-located data appear; tasks
	// with zero affinity everywhere are handled by the final repair, which
	// is equivalent to proposing with value zero.
	match := make([]map[int]float64, m) // proc -> task -> MB
	prefs := make([][]int, m)           // proc -> tasks, best first
	for proc := 0; proc < m; proc++ {
		match[proc] = make(map[int]float64)
		for t := 0; t < n; t++ {
			if w := p.CoLocatedMB(proc, t); w > 0 {
				match[proc][t] = w
				prefs[proc] = append(prefs[proc], t)
			}
		}
		mp := match[proc]
		sort.Slice(prefs[proc], func(a, b int) bool {
			ta, tb := prefs[proc][a], prefs[proc][b]
			if mp[ta] != mp[tb] {
				return mp[ta] > mp[tb]
			}
			return ta < tb
		})
	}

	owner := make([]int, n)
	for t := range owner {
		owner[t] = -1
	}
	counts := make([]int, m)
	cursor := make([]int, m) // next preference index to consider

	// Work queue of processes that are under quota and still have
	// unconsidered tasks. Round-robin order keeps the run deterministic; a
	// process re-enters the queue when a reassignment drops it under quota.
	queue := make([]int, 0, m)
	inQueue := make([]bool, m)
	push := func(proc int) {
		if !inQueue[proc] && counts[proc] < quotas[proc] && cursor[proc] < len(prefs[proc]) {
			queue = append(queue, proc)
			inQueue[proc] = true
		}
	}
	for proc := 0; proc < m; proc++ {
		push(proc)
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		inQueue[k] = false
		if counts[k] >= quotas[k] {
			continue
		}
		// Propose to the best not-yet-considered task (line 7).
		for cursor[k] < len(prefs[k]) && counts[k] < quotas[k] {
			x := prefs[k][cursor[k]]
			cursor[k]++ // record that k considered x (line 16)
			cur := owner[x]
			if cur == -1 {
				owner[x] = k // line 9
				counts[k]++
				continue
			}
			if match[cur][x] < match[k][x] { // line 11
				owner[x] = k // lines 12-13
				counts[k]++
				counts[cur]--
				push(cur) // the victim resumes proposing
			}
		}
		push(k)
	}

	// Repair: tasks nobody claimed (either zero affinity everywhere or all
	// co-located processes filled their quotas with better matches) go to
	// the under-quota process holding the most of their data, falling back
	// to random balance.
	rng := rand.New(rand.NewSource(md.Seed))
	loadMB := make([]float64, m)
	for t, o := range owner {
		if o >= 0 {
			loadMB[o] += p.Tasks[t].SizeMB()
		}
	}
	for t := 0; t < n; t++ {
		if owner[t] >= 0 {
			continue
		}
		best, bestW := -1, -1.0
		for proc := 0; proc < m; proc++ {
			if counts[proc] >= quotas[proc] {
				continue
			}
			if w := match[proc][t]; w > bestW {
				best, bestW = proc, w
			}
		}
		if best < 0 || bestW <= 0 {
			if proc := pickSmallest(loadMB, counts, quotas, rng); proc >= 0 {
				best = proc
			} else if best < 0 {
				best = 0
			}
		}
		owner[t] = best
		counts[best]++
		loadMB[best] += p.Tasks[t].SizeMB()
	}

	a := &Assignment{Owner: owner, Lists: buildLists(p, owner)}
	sortEachList(a.Lists)
	fillLocality(p, a)
	return a, nil
}
