package core

import (
	"cmp"
	"context"
	"math/rand"
	"slices"
)

// MultiData is the Opass planner for tasks with multiple data inputs
// (Algorithm 1, §IV-C). It generalizes the stable-marriage procedure to a
// one-to-many matching: every under-quota process proposes to the
// not-yet-considered task with the largest co-located data size; a task
// accepts a proposal when it is unassigned or when the proposer holds more
// of its data than its current owner (reassignment, Figure 6b). The
// algorithm is optimal from the perspective of each process, like the
// proposer-optimal Gale-Shapley matching.
type MultiData struct {
	// Seed drives the random placement of tasks that no process holds any
	// data for.
	Seed int64
	// NodeBias optionally discounts the proposal values of every process
	// hosted on a given node: process i proposes with
	// NodeBias[ProcNode[i]] * m_i^j instead of the raw co-located size.
	// Factors must be in (0, 1]; nil means no bias. A biased-down (hot)
	// process still prefers its own most-local tasks — the factor is
	// constant within a process, so its preference order is unchanged —
	// but it loses contested tasks to processes on cold nodes, which is
	// how the cluster-level scheduler trades locality for global balance.
	NodeBias []float64
}

// Name implements Assigner.
func (MultiData) Name() string { return "opass-matching" }

// Assign implements Assigner.
func (md MultiData) Assign(p *Problem) (*Assignment, error) {
	return md.AssignContext(context.Background(), p)
}

// proposalCtxStride is how many proposals the matching loop makes between
// context polls.
const proposalCtxStride = 4096

// AssignContext implements ContextAssigner: the index build and the
// proposal rounds poll ctx and abort with its error.
func (md MultiData) AssignContext(ctx context.Context, p *Problem) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := len(p.Tasks), p.NumProcs()
	quotas := taskQuotas(n, m)
	pb, err := procBias(p, md.NodeBias)
	if err != nil {
		return nil, err
	}
	biasOf := func(proc int) float64 {
		if pb == nil {
			return 1
		}
		return pb[proc]
	}

	// Matching values m_i^j come from the shared locality index (one
	// O(edges) inversion instead of m·n CoLocatedMB probes). Each process's
	// preference list is its sparse edge set sorted by descending co-located
	// size (ties by ascending task ID for determinism — the index hands the
	// edges task-ascending, so a stable sort on size alone preserves the tie
	// order). Only tasks with positive co-located data appear; tasks with
	// zero affinity everywhere are handled by the final repair, which is
	// equivalent to proposing with value zero. The per-process sorts are
	// independent, so they fan out over a bounded GOMAXPROCS worker pool.
	ix, err := NewLocalityIndexContext(ctx, p)
	if err != nil {
		return nil, err
	}
	defer ix.Release()
	prefs := make([][]LocalityEdge, m) // proc -> edges, best first
	parallelFor(m, func(proc int) {
		es := ix.ProcEdges(proc)
		if len(es) == 0 {
			return
		}
		own := append([]LocalityEdge(nil), es...)
		// Stable + generic (no reflection-based swaps): same ordering as
		// sort.SliceStable on descending MB, several times faster.
		slices.SortStableFunc(own, func(a, b LocalityEdge) int { return cmp.Compare(b.MB, a.MB) })
		prefs[proc] = own
	})

	owner := make([]int, n)
	for t := range owner {
		owner[t] = -1
	}
	counts := make([]int, m)
	cursor := make([]int, m) // next preference index to consider

	// Work queue of processes that are under quota and still have
	// unconsidered tasks. Round-robin order keeps the run deterministic; a
	// process re-enters the queue when a reassignment drops it under quota.
	queue := make([]int, 0, m)
	inQueue := make([]bool, m)
	push := func(proc int) {
		if !inQueue[proc] && counts[proc] < quotas[proc] && cursor[proc] < len(prefs[proc]) {
			queue = append(queue, proc)
			inQueue[proc] = true
		}
	}
	for proc := 0; proc < m; proc++ {
		push(proc)
	}
	proposals := 0
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		inQueue[k] = false
		if counts[k] >= quotas[k] {
			continue
		}
		// Propose to the best not-yet-considered task (line 7).
		for cursor[k] < len(prefs[k]) && counts[k] < quotas[k] {
			proposals++
			if proposals%proposalCtxStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			e := prefs[k][cursor[k]]
			x := e.Task
			cursor[k]++ // record that k considered x (line 16)
			cur := owner[x]
			if cur == -1 {
				owner[x] = k // line 9
				counts[k]++
				continue
			}
			if biasOf(cur)*ix.CoLocatedMB(cur, x) < biasOf(k)*e.MB { // line 11
				owner[x] = k // lines 12-13
				counts[k]++
				counts[cur]--
				push(cur) // the victim resumes proposing
			}
		}
		push(k)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Repair: tasks nobody claimed (either zero affinity everywhere or all
	// co-located processes filled their quotas with better matches) go to
	// the under-quota process holding the most of their data, falling back
	// to random balance.
	rng := rand.New(rand.NewSource(md.Seed))
	loadMB := make([]float64, m)
	for t, o := range owner {
		if o >= 0 {
			loadMB[o] += p.Tasks[t].SizeMB()
		}
	}
	for t := 0; t < n; t++ {
		if owner[t] >= 0 {
			continue
		}
		// Among under-quota processes holding any of the task's data, the
		// largest share wins (lowest rank on ties — TaskEdges is
		// process-ascending and the comparison is strict).
		best, bestW := -1, 0.0
		for _, e := range ix.TaskEdges(t) {
			if counts[e.Proc] >= quotas[e.Proc] {
				continue
			}
			if w := biasOf(e.Proc) * e.MB; w > bestW {
				best, bestW = e.Proc, w
			}
		}
		if best < 0 || bestW <= 0 {
			// Rack tier: no under-quota process holds any of the task's
			// data node-locally, so try rack-local holders before falling
			// back to a blind random pick. Empty on single-rack problems,
			// keeping rack-oblivious runs byte-identical.
			for _, e := range ix.TaskRackEdges(t) {
				if counts[e.Proc] >= quotas[e.Proc] {
					continue
				}
				if w := biasOf(e.Proc) * e.MB; w > bestW {
					best, bestW = e.Proc, w
				}
			}
		}
		if best < 0 || bestW <= 0 {
			if proc := pickSmallest(loadMB, counts, quotas, rng); proc >= 0 {
				best = proc
			} else if best < 0 {
				best = 0
			}
		}
		owner[t] = best
		counts[best]++
		loadMB[best] += p.Tasks[t].SizeMB()
	}

	a := &Assignment{Owner: owner, Lists: buildLists(p, owner)}
	sortEachList(a.Lists)
	fillLocality(p, a)
	return a, nil
}
