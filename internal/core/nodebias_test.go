package core

import (
	"testing"

	"opass/internal/cluster"
	"opass/internal/dfs"
)

// biasRig builds a single-data problem with one process per node.
func biasRig(t *testing.T, nodes, chunksPerProc int, seed int64) (*dfs.FileSystem, *Problem) {
	t.Helper()
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed})
	if _, err := fs.Create("/data", float64(nodes*chunksPerProc)*64); err != nil {
		t.Fatal(err)
	}
	procs := make([]int, nodes)
	for i := range procs {
		procs[i] = i
	}
	p, err := SingleDataProblem(fs, []string{"/data"}, procs)
	if err != nil {
		t.Fatal(err)
	}
	return fs, p
}

func ownerCounts(p *Problem, a *Assignment) []int {
	counts := make([]int, p.NumProcs())
	for _, o := range a.Owner {
		counts[o]++
	}
	return counts
}

func TestSingleDataNodeBiasShiftsQuota(t *testing.T) {
	_, p := biasRig(t, 8, 8, 21)
	base, err := SingleData{Seed: 21}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	bias := make([]float64, 8)
	for i := range bias {
		bias[i] = 1
	}
	bias[0] = 0.25 // node 0 is hot: cut its process's quota hard
	biased, err := SingleData{Seed: 21, NodeBias: bias}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := biased.Validate(p); err != nil {
		t.Fatalf("biased assignment invalid: %v", err)
	}
	bc, cc := ownerCounts(p, base), ownerCounts(p, biased)
	if cc[0] >= bc[0] {
		t.Fatalf("biasing node 0 to 0.25 left its process owning %d tasks (unbiased %d)", cc[0], bc[0])
	}
}

func TestSingleDataNodeBiasComposesWithWeights(t *testing.T) {
	_, p := biasRig(t, 4, 6, 22)
	bias := []float64{0.5, 1, 1, 1}
	weights := []float64{1, 2, 1, 1}
	a, err := SingleData{Seed: 22, NodeBias: bias, Weights: weights}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatalf("assignment with bias and weights invalid: %v", err)
	}
}

func TestNodeBiasValidation(t *testing.T) {
	_, p := biasRig(t, 4, 2, 23)
	for _, tc := range []struct {
		name string
		bias []float64
	}{
		{"too short", []float64{1, 1}},
		{"zero factor", []float64{1, 0, 1, 1}},
		{"negative factor", []float64{1, -0.5, 1, 1}},
		{"above one", []float64{1, 1.5, 1, 1}},
	} {
		if _, err := (SingleData{NodeBias: tc.bias}).Assign(p); err == nil {
			t.Errorf("SingleData accepted %s bias %v", tc.name, tc.bias)
		}
		if _, err := (MultiData{NodeBias: tc.bias}).Assign(p); err == nil {
			t.Errorf("MultiData accepted %s bias %v", tc.name, tc.bias)
		}
	}
}

func TestMultiDataNodeBiasDivertsContestedTasks(t *testing.T) {
	_, p := biasRig(t, 8, 8, 24)
	base, err := MultiData{Seed: 24}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	bias := make([]float64, 8)
	for i := range bias {
		bias[i] = 1
	}
	bias[0] = 0.1
	biased, err := MultiData{Seed: 24, NodeBias: bias}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := biased.Validate(p); err != nil {
		t.Fatalf("biased multi-data assignment invalid: %v", err)
	}
	bc, cc := ownerCounts(p, base), ownerCounts(p, biased)
	if cc[0] > bc[0] {
		t.Fatalf("biasing node 0 to 0.1 grew its process to %d tasks (unbiased %d)", cc[0], bc[0])
	}
}
