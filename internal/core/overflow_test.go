package core

import (
	"math"
	"testing"

	"opass/internal/bipartite"
	"opass/internal/dfs"
)

// These tests pin the overflow audit of the flow-capacity unit math: at
// service scale (1M tasks, sub-MB chunks, scaled units) capacity sums blow
// past 2^31, so every quantity along the flow path must be int64 and the
// unit scale must be clamped so even adversarial size distributions cannot
// push an int64 sum anywhere near 2^63.

// problemFromSizes builds a single-data problem with explicit task sizes,
// every chunk replicated on all nodes (locality never constrains the flow,
// so the capacity math alone decides the outcome).
func problemFromSizes(t *testing.T, nodes int, sizes []float64) *Problem {
	t.Helper()
	fs := dfs.New(view{nodes}, dfs.Config{Seed: 1})
	replicas := make([][]int, len(sizes))
	all := make([]int, nodes)
	for i := range all {
		all[i] = i
	}
	for i := range replicas {
		replicas[i] = all
	}
	if _, err := fs.CreateChunksReplicated("/sizes", sizes, replicas); err != nil {
		t.Fatal(err)
	}
	procNode := make([]int, nodes)
	for i := range procNode {
		procNode[i] = i
	}
	p, err := SingleDataProblem(fs, []string{"/sizes"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCapUnitsSaturation drives capUnits through the near-limit and
// out-of-range corners: values at the clamp stay exact (2^40 is far inside
// float64's integer range), values beyond it saturate instead of hitting
// the undefined float→int64 conversion, and garbage saturates at the floor.
func TestCapUnitsSaturation(t *testing.T) {
	for _, c := range []struct {
		name  string
		size  float64
		scale int64
		want  int64
	}{
		{"just under clamp", float64(maxCapUnits - 1), 1, maxCapUnits - 1},
		{"exactly clamp", float64(maxCapUnits), 1, maxCapUnits},
		{"one past clamp", float64(maxCapUnits + 1), 1, maxCapUnits},
		{"scaled past clamp", float64(maxCapUnits), 1 << 24, maxCapUnits},
		{"astronomical", 1e300, 1 << 24, maxCapUnits},
		{"infinite", math.Inf(1), 1, maxCapUnits},
		{"negative infinite", math.Inf(-1), 1, 1},
		{"nan", math.NaN(), 1, 1},
		{"subunit floor", 1e-12, 1, 1},
	} {
		if got := capUnits(c.size, c.scale); got != c.want {
			t.Errorf("%s: capUnits(%v, %d) = %d, want %d", c.name, c.size, c.scale, got, c.want)
		}
	}
}

// TestCapacityScaleClamp asserts the scale shrinks back whenever the
// sub-MB refinement would push the aggregate workload past maxCapUnits —
// the property that makes every downstream int64 capacity sum safe.
func TestCapacityScaleClamp(t *testing.T) {
	cases := []struct {
		name  string
		sizes []float64
		want  int64
	}{
		// Baselines: the clamp must not disturb normal problems.
		{"whole MB", []float64{64, 64, 64, 64}, 1},
		{"sub-MB", []float64{0.5, 64}, 64}, // 32 units / 0.5 MB
		// A tiny task demands scale 32768 (32/0.001 rounded up to a power
		// of two), but a petabyte-scale sibling forces it back down so
		// total units stay ≤ 2^40.
		{"tiny plus 1e9 MB", []float64{0.001, 1e9}, 1 << 10},
		// With ~1e12 MB total even scale 2 overflows the budget: clamp to 1.
		{"tiny plus 1e12 MB", []float64{0.001, 1e12}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := problemFromSizes(t, 2, c.sizes)
			scale := capacityScale(p)
			if scale != c.want {
				t.Fatalf("capacityScale = %d, want %d (sizes %v)", scale, c.want, c.sizes)
			}
			var total int64
			for i := range p.Tasks {
				total += capUnits(p.Tasks[i].SizeMB(), scale)
			}
			// Rounding and the per-task floor may add at most one unit per
			// task above the clamped product.
			if limit := maxCapUnits + int64(len(p.Tasks)); total > limit {
				t.Fatalf("total units %d exceeds clamp budget %d", total, limit)
			}
		})
	}
}

// TestSingleDataNearLimitTotals runs the full flow planner on problems
// whose capacity totals exceed 2^31 units — the regression the audit
// guards: any 32-bit intermediate in the graph build, quota split, or
// max-flow would corrupt these plans. One sub-MB task forces a 64×
// sub-unit scale while its siblings carry 5e7 MB each, so per-task
// capacities alone (≈3.2e9 units) overflow int32.
func TestSingleDataNearLimitTotals(t *testing.T) {
	sizes := []float64{0.5}
	for i := 0; i < 7; i++ {
		sizes = append(sizes, 5e7)
	}
	for _, algo := range []struct {
		name string
		a    bipartite.Algorithm
	}{{"edmonds-karp", bipartite.EdmondsKarp}, {"dinic", bipartite.Dinic}} {
		t.Run(algo.name, func(t *testing.T) {
			p := problemFromSizes(t, 4, sizes)
			scale := capacityScale(p)
			if units := capUnits(5e7, scale); units <= math.MaxInt32 {
				t.Fatalf("per-task capacity %d fits int32; test lost its teeth (scale %d)", units, scale)
			}
			a, err := SingleData{Algorithm: algo.a, Seed: 7}.Assign(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(p); err != nil {
				t.Fatal(err)
			}
			if a.LocalityFraction() != 1.0 {
				t.Fatalf("locality %v, want 1.0 with full replication", a.LocalityFraction())
			}
			// Every process must land within one task of the even MB split;
			// an overflowed quota would send everything to one process.
			load := make([]float64, p.NumProcs())
			for task, proc := range a.Owner {
				load[proc] += p.Tasks[task].SizeMB()
			}
			ideal := p.TotalMB() / float64(p.NumProcs())
			for proc, mb := range load {
				if diff := math.Abs(mb - ideal); diff > 5e7 {
					t.Fatalf("proc %d carries %.3g MB, ideal %.3g (loads %v)", proc, mb, ideal, load)
				}
			}
		})
	}
}
