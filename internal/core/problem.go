// Package core implements Opass itself: the encoding of parallel data
// requests as a process-to-data bipartite matching (§IV-A of the paper),
// the flow-based optimizer for parallel single-data access (§IV-B), the
// matching-based algorithm for multi-data access (Algorithm 1, §IV-C), the
// dynamic scheduler for heterogeneous master/worker execution (§IV-D), and
// the locality-oblivious baselines the paper compares against.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"opass/internal/bipartite"
	"opass/internal/dfs"
)

// Input is one data dependency of a task: a chunk in the file system and
// the amount of its data the task reads (normally the whole chunk).
type Input struct {
	Chunk  dfs.ChunkID
	SizeMB float64
}

// Task is one data-processing operator. Single-data tasks carry one input;
// multi-data tasks (e.g. cross-species genome comparison) carry several.
type Task struct {
	ID     int
	Inputs []Input
}

// SizeMB is the total input data of the task.
func (t *Task) SizeMB() float64 {
	var s float64
	for _, in := range t.Inputs {
		s += in.SizeMB
	}
	return s
}

// Problem is a complete assignment problem: which processes run where,
// which tasks must be executed, and the file system holding the chunk
// placement metadata.
type Problem struct {
	// ProcNode[i] is the cluster node hosting process rank i.
	ProcNode []int
	// Tasks to assign; IDs must equal their slice index.
	Tasks []Task
	// FS supplies chunk placement (the namenode metadata Opass queries).
	FS *dfs.FileSystem
	// NodeRack, when non-nil, maps each cluster node to its rack id. It
	// enables the graded-locality tier (node-local > rack-local > remote)
	// in the planners: tasks the locality solver leaves unmatched are
	// steered to a process in a rack holding their data before the random
	// repair step crosses an uplink. Nil — or a map spanning a single rack,
	// the paper's one-switch topology — disables the tier entirely, keeping
	// plans byte-identical to the rack-oblivious planner.
	NodeRack []int
}

// Validate checks structural consistency; planners call it first.
func (p *Problem) Validate() error {
	if len(p.ProcNode) == 0 {
		return fmt.Errorf("core: problem has no processes")
	}
	if len(p.Tasks) == 0 {
		return fmt.Errorf("core: problem has no tasks")
	}
	if p.FS == nil {
		return fmt.Errorf("core: problem has no file system")
	}
	for i, t := range p.Tasks {
		if t.ID != i {
			return fmt.Errorf("core: task %d has ID %d; IDs must be dense", i, t.ID)
		}
		if len(t.Inputs) == 0 {
			return fmt.Errorf("core: task %d has no inputs", i)
		}
		for _, in := range t.Inputs {
			if in.SizeMB <= 0 {
				return fmt.Errorf("core: task %d input chunk %d has size %v", i, in.Chunk, in.SizeMB)
			}
		}
	}
	if p.NodeRack != nil {
		for i, node := range p.ProcNode {
			if node < 0 || node >= len(p.NodeRack) {
				return fmt.Errorf("core: node rack map covers %d nodes but process %d runs on node %d", len(p.NodeRack), i, node)
			}
		}
		for node, r := range p.NodeRack {
			if r < 0 {
				return fmt.Errorf("core: node %d has negative rack %d", node, r)
			}
		}
	}
	return nil
}

// NumProcs reports the process count.
func (p *Problem) NumProcs() int { return len(p.ProcNode) }

// TotalMB is the aggregate input size over all tasks.
func (p *Problem) TotalMB() float64 {
	var s float64
	for i := range p.Tasks {
		s += p.Tasks[i].SizeMB()
	}
	return s
}

// CoLocatedMB computes the matching value m_i^j of Algorithm 1: the amount
// of task j's input data that has a replica on process i's node.
func (p *Problem) CoLocatedMB(proc, task int) float64 {
	node := p.ProcNode[proc]
	var s float64
	for _, in := range p.Tasks[task].Inputs {
		if p.FS.Chunk(in.Chunk).HostedOn(node) {
			s += in.SizeMB
		}
	}
	return s
}

// SingleDataProblem builds a Problem with one task per chunk of the given
// files — the workload shape of the paper's single-data experiments (each
// ParaView-style task consumes exactly one chunk file).
func SingleDataProblem(fs *dfs.FileSystem, files []string, procNode []int) (*Problem, error) {
	p := &Problem{ProcNode: procNode, FS: fs}
	for _, name := range files {
		locs, err := fs.BlockLocations(name)
		if err != nil {
			return nil, err
		}
		for _, loc := range locs {
			p.Tasks = append(p.Tasks, Task{
				ID:     len(p.Tasks),
				Inputs: []Input{{Chunk: loc.Chunk, SizeMB: loc.SizeMB}},
			})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Assignment is a complete task→process mapping.
type Assignment struct {
	// Owner[t] is the process assigned task t.
	Owner []int
	// Lists[p] are the tasks of process p, in the planner's preferred
	// execution order.
	Lists [][]int
	// PlannedLocalMB is the input data co-located with its owner under this
	// assignment; PlannedTotalMB is the total input data.
	PlannedLocalMB float64
	PlannedTotalMB float64
	// Matched, when non-nil, records which owners came out of the locality
	// solver (flow network or matching) as opposed to the random repair step
	// for unmatched tasks. Warm-started replans seed the solver only from
	// matched entries: a repair-assigned owner reflects a coin flip, not a
	// locality decision, and seeding it could displace genuine matches.
	// Planners that have no solver/repair split leave it nil.
	Matched []bool
}

// LocalityFraction is the planned fraction of data readable locally.
func (a *Assignment) LocalityFraction() float64 {
	if a.PlannedTotalMB == 0 {
		return 0
	}
	return a.PlannedLocalMB / a.PlannedTotalMB
}

// Validate checks that the assignment covers every task exactly once and
// stays consistent with its lists.
func (a *Assignment) Validate(p *Problem) error {
	if len(a.Owner) != len(p.Tasks) {
		return fmt.Errorf("core: assignment covers %d tasks, want %d", len(a.Owner), len(p.Tasks))
	}
	if len(a.Lists) != p.NumProcs() {
		return fmt.Errorf("core: assignment has %d lists, want %d", len(a.Lists), p.NumProcs())
	}
	seen := make([]bool, len(p.Tasks))
	for proc, list := range a.Lists {
		for _, t := range list {
			if t < 0 || t >= len(p.Tasks) {
				return fmt.Errorf("core: list of proc %d contains invalid task %d", proc, t)
			}
			if seen[t] {
				return fmt.Errorf("core: task %d appears in multiple lists", t)
			}
			seen[t] = true
			if a.Owner[t] != proc {
				return fmt.Errorf("core: task %d in list of proc %d but owned by %d", t, proc, a.Owner[t])
			}
		}
	}
	for t, ok := range seen {
		if !ok {
			return fmt.Errorf("core: task %d not assigned", t)
		}
	}
	return nil
}

// fillLocality computes the planned locality statistics for an assignment.
func fillLocality(p *Problem, a *Assignment) {
	a.PlannedLocalMB = 0
	a.PlannedTotalMB = p.TotalMB()
	for t, proc := range a.Owner {
		a.PlannedLocalMB += p.CoLocatedMB(proc, t)
	}
}

// buildLists derives per-process ordered lists from Owner.
func buildLists(p *Problem, owner []int) [][]int {
	lists := make([][]int, p.NumProcs())
	for t, proc := range owner {
		lists[proc] = append(lists[proc], t)
	}
	return lists
}

// Assigner is a task-assignment strategy: Opass planners and baselines.
type Assigner interface {
	// Name identifies the strategy in reports ("opass-flow", "rank-static"...).
	Name() string
	// Assign computes a complete assignment for the problem.
	Assign(p *Problem) (*Assignment, error)
}

// ContextAssigner is implemented by planners whose Assign supports
// cooperative cancellation: the planner periodically polls ctx (inside its
// flow loop, proposal rounds, and index fan-out) and returns ctx's error
// instead of running a doomed plan to completion. The heavy planners
// (SingleData, MultiData, GreedyLocality) implement it; the O(n) baselines
// do not need to.
type ContextAssigner interface {
	Assigner
	// AssignContext computes a complete assignment, aborting early with
	// ctx's error once ctx is done.
	AssignContext(ctx context.Context, p *Problem) (*Assignment, error)
}

// AssignContext runs a planner under ctx: cancellation-aware planners get
// the context threaded through their hot loops, and any planner is at least
// gated by an up-front check. This is the service entry point — callers that
// own a request deadline should prefer it over calling Assign directly.
func AssignContext(ctx context.Context, a Assigner, p *Problem) (*Assignment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ca, ok := a.(ContextAssigner); ok {
		return ca.AssignContext(ctx, p)
	}
	return a.Assign(p)
}

// procBias expands a per-node bias vector into per-process factors and
// validates it: factors must be in (0, 1] and the vector must cover every
// node hosting a process. A nil bias means "no bias" and returns nil. This
// is the lever the cluster-level scheduler (internal/globalsched) uses to
// steer a job's matcher away from nodes that are hot from earlier jobs: in
// the flow formulation the factors scale the source→process arc capacities
// (the per-process quota edges), in the matching formulation they scale the
// proposal values.
func procBias(p *Problem, bias []float64) ([]float64, error) {
	if bias == nil {
		return nil, nil
	}
	out := make([]float64, p.NumProcs())
	for i, node := range p.ProcNode {
		if node >= len(bias) {
			return nil, fmt.Errorf("core: node bias covers %d nodes but process %d runs on node %d", len(bias), i, node)
		}
		b := bias[node]
		if b <= 0 || b > 1 {
			return nil, fmt.Errorf("core: node bias[%d] = %v must be in (0, 1]", node, b)
		}
		out[i] = b
	}
	return out, nil
}

// taskQuotas splits n tasks over m processes as evenly as possible: the
// first n%m processes receive one extra task, mirroring the paper's
// "assigned an equal number of tasks" constraint.
func taskQuotas(n, m int) []int {
	q := make([]int, m)
	base, rem := n/m, n%m
	for i := range q {
		q[i] = base
		if i < rem {
			q[i]++
		}
	}
	return q
}

// maxCapUnits bounds every quantity the flow encoding expresses in
// capacity units. capacityScale clamps the unit so the problem's aggregate
// size stays at or below it, and capUnits saturates individual conversions
// at it, so any sum of fewer than 2^23 capacities — source-arc totals,
// per-process quotas, flow bottlenecks — provably stays below 2^63 on every
// platform. (The bound matters only for absurd inputs: at 2^40 sub-MB
// units a real workload is an exabyte. Normal problems never see it.)
const maxCapUnits = int64(1) << 40

// capScaleChunk is the stride of the parallel task-size reductions in
// capacityScale and the planners' size precomputation. Chunk boundaries
// depend only on the task count, so chunk-ordered reductions are
// deterministic across worker counts.
const capScaleChunk = 4096

// capacityScale picks the integer unit of the flow encoding: capacities
// are expressed in 1/scale MB. Whole-MB workloads keep scale 1 — the
// paper's encoding, with capUnits(x, 1) rounding to the nearest MB. When
// any task is smaller than 1 MB a per-task round with a floor of 1 would
// inflate its capacity (a 0.4 MB task became 1 MB, ~2.5x, distorting the
// per-process quotas), so the unit shrinks by powers of two until the
// smallest task spans at least minTaskUnits units, bounding the per-task
// rounding error at ~1.6% instead. The scale is then clamped back so the
// total workload fits in maxCapUnits units, which is what makes the int64
// flow sums overflow-proof no matter how the task sizes are distributed.
func capacityScale(p *Problem) int64 {
	n := len(p.Tasks)
	chunks := (n + capScaleChunk - 1) / capScaleChunk
	mins := make([]float64, chunks)
	totals := make([]float64, chunks)
	parallelChunks(n, capScaleChunk, func(lo, hi int) {
		minSize := math.Inf(1)
		var total float64
		for t := lo; t < hi; t++ {
			s := p.Tasks[t].SizeMB()
			if s < minSize {
				minSize = s
			}
			total += s
		}
		mins[lo/capScaleChunk] = minSize
		totals[lo/capScaleChunk] = total
	})
	minSize, totalMB := math.Inf(1), 0.0
	for i := range mins {
		if mins[i] < minSize {
			minSize = mins[i]
		}
		totalMB += totals[i] // chunk order: deterministic float sum
	}
	scale := int64(1)
	if minSize < 1 {
		const minTaskUnits = 32
		for float64(scale)*minSize < minTaskUnits && scale < 1<<24 {
			scale <<= 1
		}
	}
	for scale > 1 && totalMB*float64(scale) > float64(maxCapUnits) {
		scale >>= 1
	}
	return scale
}

// capUnits converts a size in MB to integer flow-capacity units at the
// given scale, rounding to nearest but never below 1 and never above
// maxCapUnits. The upper clamp doubles as the float→int64 conversion
// guard: the comparison happens in float64, where maxCapUnits (2^40) is
// exact, so an astronomically large size can never hit the undefined
// out-of-range conversion.
func capUnits(size float64, scale int64) int64 {
	v := math.Round(size * float64(scale))
	if !(v >= 1) { // also catches NaN
		return 1
	}
	if v > float64(maxCapUnits) {
		return maxCapUnits
	}
	return int64(v)
}

// localityGraph builds the §IV-A bipartite graph from the locality index:
// an edge (p, t) weighted by the co-located data in capacity units
// whenever any input of task t has a replica on process p's node. The
// index's per-process adjacency is already in the graph's insertion order,
// so the build is a pure transcription: one shared backing array carved by
// per-process offsets, filled in parallel (the per-edge unit rounding is
// the dominant cost at 1M tasks), then handed to the bulk graph
// constructor, which transposes the per-file view with a counting sort.
// The edge weights are the same capUnits values the incremental AddEdge
// path produced, so plans stay byte-identical — the golden tests prove it.
func localityGraph(p *Problem, ix *LocalityIndex, scale int64) *bipartite.Graph {
	m, n := p.NumProcs(), len(p.Tasks)
	offs := make([]int, m+1)
	for proc := 0; proc < m; proc++ {
		offs[proc+1] = offs[proc] + len(ix.ProcEdges(proc))
	}
	backing := make([]bipartite.Edge, offs[m])
	byP := make([][]bipartite.Edge, m)
	parallelFor(m, func(proc int) {
		es := ix.ProcEdges(proc)
		out := backing[offs[proc]:offs[proc+1]:offs[proc+1]]
		for i, e := range es {
			out[i] = bipartite.Edge{P: proc, F: e.Task, Weight: capUnits(e.MB, scale)}
		}
		byP[proc] = out
	})
	return bipartite.NewGraphFromSorted(m, n, byP)
}

// pickSmallest returns the index of the under-quota process with the least
// assigned MB, breaking ties uniformly at random — the repair rule for
// unmatched tasks ("we randomly assign unmatched tasks to each such
// process", §IV-B).
func pickSmallest(loadMB []float64, counts, quotas []int, rng *rand.Rand) int {
	best := -1
	ties := 0
	for i := range loadMB {
		if counts[i] >= quotas[i] {
			continue
		}
		switch {
		case best == -1 || loadMB[i] < loadMB[best]:
			best = i
			ties = 1
		case loadMB[i] == loadMB[best]:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// sortEachList orders every process's list by task ID for deterministic
// execution order.
func sortEachList(lists [][]int) {
	for i := range lists {
		sort.Ints(lists[i])
	}
}
