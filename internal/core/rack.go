package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"opass/internal/dfs"
)

// This file implements the graded-locality tier (node-local > rack-local >
// remote) on top of the binary local/remote model of the paper. The node
// tier stays exactly the paper's §IV formulation — the flow network and
// Algorithm 1 run unchanged over node-local edges only, preserving their
// optimality and the full-size ownership invariant. Rack awareness enters
// as a second, strictly weaker tier consulted only where the paper already
// falls back to a coin flip: tasks the solver leaves unmatched are steered
// to an under-quota process in a rack holding their data before the random
// repair crosses an uplink, and the dynamic scheduler's steal rule breaks
// node-tier ties by rack-local bytes. With a single rack (the paper's
// topology) every rack edge vanishes and all of this is a no-op, so plans
// stay byte-identical to the rack-oblivious planner — the golden parity
// tests prove it.

// RackTiered reports whether the problem carries a rack map spanning more
// than one rack. Single-rack maps are equivalent to no map at all: every
// remote read stays inside the one rack, so the tier cannot change any
// decision and is disabled outright.
func (p *Problem) RackTiered() bool {
	if len(p.NodeRack) == 0 {
		return false
	}
	for _, r := range p.NodeRack[1:] {
		if r != p.NodeRack[0] {
			return true
		}
	}
	return false
}

// SetNodeRacksFromView fills NodeRack from a cluster view's rack map. Views
// spanning a single rack leave NodeRack nil, keeping the problem — and its
// canonical encoding — identical to a rack-oblivious one.
func (p *Problem) SetNodeRacksFromView(view dfs.ClusterView) {
	n := view.NumNodes()
	racks := make([]int, n)
	multi := false
	for i := 0; i < n; i++ {
		racks[i] = view.RackOf(i)
		if racks[i] != racks[0] {
			multi = true
		}
	}
	if multi {
		p.NodeRack = racks
	} else {
		p.NodeRack = nil
	}
}

// buildRackTier populates the index's rack-tier edges: an edge (p, t)
// weighted by the bytes of task t's inputs that have a replica in process
// p's rack on some node other than p's own. Inputs with a replica on p's
// node are excluded — they belong to the node tier — so for any (p, t) the
// node, rack, and remote byte counts partition the task's total size.
func (ix *LocalityIndex) buildRackTier(ctx context.Context) error {
	p := ix.p
	if !p.RackTiered() {
		return nil
	}
	ix.rackTiered = true
	n := len(p.Tasks)
	m := p.NumProcs()
	ix.byTaskRack = make([][]LocalityEdge, n)

	numRacks := 0
	for _, r := range p.NodeRack {
		if r+1 > numRacks {
			numRacks = r + 1
		}
	}
	// Processes per rack, rank-ascending (ProcNode order).
	procsInRack := make([][]int, numRacks)
	for proc, node := range p.ProcNode {
		r := p.NodeRack[node]
		procsInRack[r] = append(procsInRack[r], proc)
	}

	hostedOn := func(replicas []int, node int) bool {
		for _, r := range replicas {
			if r == node {
				return true
			}
		}
		return false
	}

	buildTask := func(s *buildScratch, t int) {
		s.epoch++
		s.touched = s.touched[:0]
		for _, in := range p.Tasks[t].Inputs {
			replicas := p.FS.Chunk(in.Chunk).Replicas
			s.racks = s.racks[:0]
			for _, node := range replicas {
				if node < 0 || node >= len(p.NodeRack) {
					continue
				}
				r := p.NodeRack[node]
				dup := false
				for _, seen := range s.racks {
					if seen == r {
						dup = true
						break
					}
				}
				if !dup {
					s.racks = append(s.racks, r)
				}
			}
			for _, r := range s.racks {
				for _, proc := range procsInRack[r] {
					if hostedOn(replicas, p.ProcNode[proc]) {
						continue // node tier, not rack tier
					}
					if s.stamp[proc] != s.epoch {
						s.stamp[proc] = s.epoch
						s.mb[proc] = 0
						s.touched = append(s.touched, proc)
					}
					s.mb[proc] += in.SizeMB
				}
			}
		}
		if len(s.touched) == 0 {
			return
		}
		sort.Ints(s.touched)
		es := s.carve(len(s.touched))
		for i, proc := range s.touched {
			es[i] = LocalityEdge{Proc: proc, Task: t, MB: s.mb[proc]}
		}
		ix.byTaskRack[t] = es
	}

	workers := runtime.GOMAXPROCS(0)
	if n < indexParallelThreshold || workers <= 1 {
		s := newScratch(m)
		for t := 0; t < n; t++ {
			if t%indexCtxStride == 0 && ctx.Err() != nil {
				s.handoff(ix, nil)
				return ctx.Err()
			}
			buildTask(s, t)
		}
		s.handoff(ix, nil)
	} else {
		if workers > n {
			workers = n
		}
		var mu sync.Mutex
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				s := newScratch(m)
				defer func() {
					s.handoff(ix, &mu)
					wg.Done()
				}()
				for done := 0; ; done++ {
					if done%indexCtxStride == 0 && ctx.Err() != nil {
						return
					}
					t := int(next.Add(1)) - 1
					if t >= n {
						return
					}
					buildTask(s, t)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	for _, es := range ix.byTaskRack {
		ix.rackEdges += len(es)
	}
	return nil
}

// RackTiered reports whether the index carries rack-tier edges.
func (ix *LocalityIndex) RackTiered() bool { return ix.rackTiered }

// NumRackEdges reports the number of rack-tier edges.
func (ix *LocalityIndex) NumRackEdges() int { return ix.rackEdges }

// TaskRackEdges returns task t's rack-tier edges in ascending process
// order, or nil when the problem is not rack-tiered. The slice is a
// read-only view owned by the index.
func (ix *LocalityIndex) TaskRackEdges(t int) []LocalityEdge {
	if !ix.rackTiered {
		return nil
	}
	return ix.byTaskRack[t]
}

// RackCoLocatedMB returns the rack-tier bytes for (proc, task): input data
// with a replica in proc's rack but none on proc's node. Zero when the
// problem is not rack-tiered.
func (ix *LocalityIndex) RackCoLocatedMB(proc, task int) float64 {
	if !ix.rackTiered {
		return 0
	}
	es := ix.byTaskRack[task]
	i := sort.Search(len(es), func(k int) bool { return es[k].Proc >= proc })
	if i < len(es) && es[i].Proc == proc {
		return es[i].MB
	}
	return 0
}

// rackRepairCounts steers still-unmatched tasks to rack-local processes
// under the equal-count quotas of repairUnmatched: each unmatched task (in
// ascending ID order, deterministically — no randomness in this tier) goes
// to the under-quota process with the most rack-local bytes, ties broken by
// lower current load and then lower rank. Tasks with no under-quota
// rack-local process stay unmatched for the random repair. Owners assigned
// here are repair decisions, not solver matches, so callers must not mark
// them Matched (warm-started replans only seed solver matches).
func rackRepairCounts(p *Problem, ix *LocalityIndex, owner []int) {
	if !ix.RackTiered() {
		return
	}
	n, m := len(owner), p.NumProcs()
	quotas := taskQuotas(n, m)
	counts := make([]int, m)
	loadMB := make([]float64, m)
	for t, o := range owner {
		if o >= 0 {
			counts[o]++
			loadMB[o] += p.Tasks[t].SizeMB()
		}
	}
	for t := 0; t < n; t++ {
		if owner[t] >= 0 {
			continue
		}
		best, bestMB := -1, 0.0
		for _, e := range ix.TaskRackEdges(t) {
			if counts[e.Proc] >= quotas[e.Proc] {
				continue
			}
			// Strict comparisons keep the lowest rank on full ties: edges
			// arrive process-ascending.
			if best == -1 || e.MB > bestMB ||
				(e.MB == bestMB && loadMB[e.Proc] < loadMB[best]) {
				best, bestMB = e.Proc, e.MB
			}
		}
		if best < 0 {
			continue
		}
		owner[t] = best
		counts[best]++
		loadMB[best] += p.Tasks[t].SizeMB()
	}
}

// rackRepairWeighted is rackRepairCounts under MB quotas (the weighted
// planner's accounting): only processes with positive remaining quota slack
// are eligible, with ties on rack-local bytes broken by larger slack and
// then lower rank.
func rackRepairWeighted(p *Problem, ix *LocalityIndex, owner []int, quotasMB []int64) {
	if !ix.RackTiered() {
		return
	}
	n, m := len(owner), p.NumProcs()
	loadMB := make([]float64, m)
	for t, o := range owner {
		if o >= 0 {
			loadMB[o] += p.Tasks[t].SizeMB()
		}
	}
	slack := func(i int) float64 { return float64(quotasMB[i]) - loadMB[i] }
	for t := 0; t < n; t++ {
		if owner[t] >= 0 {
			continue
		}
		best, bestMB := -1, 0.0
		for _, e := range ix.TaskRackEdges(t) {
			if slack(e.Proc) <= 0 {
				continue
			}
			if best == -1 || e.MB > bestMB ||
				(e.MB == bestMB && slack(e.Proc) > slack(best)) {
				best, bestMB = e.Proc, e.MB
			}
		}
		if best < 0 {
			continue
		}
		owner[t] = best
		loadMB[best] += p.Tasks[t].SizeMB()
	}
}
