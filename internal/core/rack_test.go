package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"opass/internal/dfs"
)

// rackedView groups nodes round-robin into racks, mirroring
// cluster.Topology's rack map without the simulation machinery.
type rackedView struct{ n, racks int }

func (v rackedView) NumNodes() int    { return v.n }
func (v rackedView) RackOf(i int) int { return i % v.racks }

// buildRacked creates a problem over a racked view with one process per
// node. It does NOT set Problem.NodeRack — callers opt into the tier.
func buildRacked(t testing.TB, nodes, racks, chunks, repl int, seed int64) (*Problem, rackedView) {
	t.Helper()
	v := rackedView{nodes, racks}
	fs := dfs.New(v, dfs.Config{Seed: seed, Placement: dfs.RandomPlacement{}, Replication: repl})
	if _, err := fs.Create("/data", float64(chunks)*64); err != nil {
		t.Fatal(err)
	}
	procNode := make([]int, nodes)
	for i := range procNode {
		procNode[i] = i
	}
	p, err := SingleDataProblem(fs, []string{"/data"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	return p, v
}

func planBytes(t *testing.T, a Assigner, p *Problem) []byte {
	t.Helper()
	asg, err := a.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(asg)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// drainDynamic replays the dynamic scheduler round-robin and returns the
// exact task service order.
func drainDynamic(t *testing.T, p *Problem, a *Assignment) []int {
	t.Helper()
	s, err := NewDynamicScheduler(p, a)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for s.Remaining() > 0 {
		progressed := false
		for proc := range p.ProcNode {
			if task, ok := s.Next(proc); ok {
				order = append(order, task)
				progressed = true
			}
		}
		if !progressed {
			t.Fatal("dynamic scheduler stalled with tasks remaining")
		}
	}
	return order
}

// TestSingleRackTierParity: on a single-rack cluster the graded locality
// tier must be inert. Plans must be byte-identical whether NodeRack is nil
// or an explicit all-zeros map, for every planner and for the dynamic
// scheduler's service order.
func TestSingleRackTierParity(t *testing.T) {
	assigners := []Assigner{
		SingleData{Seed: 7},
		MultiData{Seed: 7},
		GreedyLocality{Seed: 7},
		RankStatic{},
	}
	for _, asg := range assigners {
		p, _ := buildRacked(t, 16, 1, 160, 3, 7)

		p.NodeRack = nil
		plain := planBytes(t, asg, p)
		encPlain := p.AppendCanonical(nil)

		p.NodeRack = make([]int, 16) // all zeros: one rack, spelled out
		zeroed := planBytes(t, asg, p)
		encZeroed := p.AppendCanonical(nil)

		if !bytes.Equal(plain, zeroed) {
			t.Errorf("%s: plan changed when a single-rack NodeRack map was set", asg.Name())
		}
		if !bytes.Equal(encPlain, encZeroed) {
			t.Errorf("%s: canonical encoding changed when a single-rack NodeRack map was set", asg.Name())
		}
	}

	// Dynamic scheduler: identical service order either way.
	p, _ := buildRacked(t, 16, 1, 160, 3, 7)
	a, err := SingleData{Seed: 7}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	p.NodeRack = nil
	plain := drainDynamic(t, p, a)
	p.NodeRack = make([]int, 16)
	zeroed := drainDynamic(t, p, a)
	if len(plain) != len(zeroed) {
		t.Fatalf("dynamic order lengths differ: %d vs %d", len(plain), len(zeroed))
	}
	for i := range plain {
		if plain[i] != zeroed[i] {
			t.Fatalf("dynamic service order diverges at step %d: task %d vs %d", i, plain[i], zeroed[i])
		}
	}
}

// crossRackTasks counts tasks owned by a process whose rack holds no
// replica of any of the task's inputs.
func crossRackTasks(p *Problem, v rackedView, owner []int) int {
	cross := 0
	for ti, task := range p.Tasks {
		rack := v.RackOf(p.ProcNode[owner[ti]])
		inRack := false
		for _, in := range task.Inputs {
			for _, rep := range p.FS.Chunk(in.Chunk).Replicas {
				if v.RackOf(rep) == rack {
					inRack = true
				}
			}
		}
		if !inRack {
			cross++
		}
	}
	return cross
}

// TestRackTierSteersUnmatchedTasks: with unreplicated data some tasks
// cannot be matched node-locally (per-node chunk counts overflow the
// quota). The tier must steer that overflow into racks holding the data —
// strictly fewer cross-rack owners than the oblivious plan — without
// touching the node-local optimum the solver produced.
func TestRackTierSteersUnmatchedTasks(t *testing.T) {
	for _, asg := range []Assigner{
		SingleData{Seed: 3},
		MultiData{Seed: 3},
		GreedyLocality{Seed: 3},
	} {
		p, v := buildRacked(t, 16, 4, 160, 1, 3)

		p.NodeRack = nil
		plain, err := asg.Assign(p)
		if err != nil {
			t.Fatal(err)
		}

		p.NodeRack = make([]int, 16)
		for i := range p.NodeRack {
			p.NodeRack[i] = v.RackOf(i)
		}
		tiered, err := asg.Assign(p)
		if err != nil {
			t.Fatal(err)
		}

		if plain.PlannedLocalMB != tiered.PlannedLocalMB {
			t.Errorf("%s: tier changed the node-local data volume: %.0f MB vs %.0f MB",
				asg.Name(), plain.PlannedLocalMB, tiered.PlannedLocalMB)
		}
		before := crossRackTasks(p, v, plain.Owner)
		after := crossRackTasks(p, v, tiered.Owner)
		if before == 0 {
			t.Fatalf("%s: oblivious plan has no cross-rack tasks; scenario exercises nothing", asg.Name())
		}
		if after >= before {
			t.Errorf("%s: tier did not reduce cross-rack owners: %d -> %d", asg.Name(), before, after)
		}
	}
}

// TestCanonicalEncodingRackSuffix: a multi-rack NodeRack map must change
// the problem's canonical encoding (plan caches keyed on it must not alias
// tiered and oblivious plans), while nil and single-rack maps share one.
func TestCanonicalEncodingRackSuffix(t *testing.T) {
	p, v := buildRacked(t, 8, 2, 40, 3, 1)
	p.NodeRack = nil
	plain := p.AppendCanonical(nil)
	p.NodeRack = make([]int, 8)
	for i := range p.NodeRack {
		p.NodeRack[i] = v.RackOf(i)
	}
	tiered := p.AppendCanonical(nil)
	if bytes.Equal(plain, tiered) {
		t.Fatal("multi-rack NodeRack map did not change the canonical encoding")
	}
}
