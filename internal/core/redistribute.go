package core

import (
	"fmt"
	"sort"

	"opass/internal/dfs"
)

// dfsChunkID converts Migration's compact int back to the dfs ID type.
func dfsChunkID(v int) dfs.ChunkID { return dfs.ChunkID(v) }

// This file implements the data redistribution extension. §V-C1 of the
// paper observes that when tasks have many scattered inputs "our method may
// not work as well and data reconstruction/redistribution may be needed",
// citing MRAP, and declares it beyond the paper's scope. The planner below
// closes that gap: given an assignment, it relocates replicas so that the
// assignment's remote inputs become local, and reports the one-time
// migration cost so callers can weigh it against the recurring remote-read
// traffic it eliminates (worthwhile exactly when the dataset is read many
// times, the iterative-analysis scenario from the paper's introduction).

// Migration describes one planned replica move.
type Migration struct {
	Chunk  int // dfs.ChunkID, kept as int for compact printing
	From   int
	To     int
	SizeMB float64
}

// RedistributionPlan is the outcome of PlanRedistribution.
type RedistributionPlan struct {
	// Migrations lists the replica moves, in task order.
	Migrations []Migration
	// MovedMB is the total migration traffic.
	MovedMB float64
	// RemoteMBPerRun is the remote traffic the assignment incurs per
	// execution before redistribution: every input byte without a replica
	// on its owner's node.
	RemoteMBPerRun float64
	// ResidualRemoteMBPerRun is the remote traffic that remains per
	// execution after the plan is applied. It is non-zero whenever a chunk
	// shared by tasks on different nodes can only be re-homed for one of
	// them, or a donated replica was the copy a co-located task was
	// reading — so it can be non-zero even for all-single-input workloads.
	ResidualRemoteMBPerRun float64
	// BreakEvenRuns is how many executions amortize the migration:
	// MovedMB divided by the per-run traffic the plan actually saves,
	// RemoteMBPerRun - ResidualRemoteMBPerRun (0 when nothing is saved).
	BreakEvenRuns float64
}

// PlanRedistribution computes the replica moves that make assignment a
// fully local on problem p. For every input chunk not hosted on its owner's
// node, one replica is relocated there — taken from the replica holder
// currently hosting the most data, so the move also reduces storage skew.
// The file system is not modified; use Apply.
func PlanRedistribution(p *Problem, a *Assignment) (*RedistributionPlan, error) {
	if err := a.Validate(p); err != nil {
		return nil, err
	}
	plan := &RedistributionPlan{}
	// Track hypothetical placement changes so multiple tasks sharing a
	// chunk don't double-move it.
	moved := map[int]Migration{} // chunk -> its planned move
	live := p.FS.LiveNodes()
	// Live node IDs are not contiguous after a node removal, so donor
	// loads must be seeded per live ID — counting 0..NumLiveNodes() would
	// read high-ID holders as empty and mis-rank donors.
	hostedMB := make(map[int]float64, len(live))
	for _, n := range live {
		hostedMB[n] = p.FS.StoredMB(n)
	}
	for t, owner := range a.Owner {
		node := p.ProcNode[owner]
		for _, in := range p.Tasks[t].Inputs {
			c := p.FS.Chunk(in.Chunk)
			if c.HostedOn(node) {
				continue
			}
			if _, ok := moved[int(in.Chunk)]; ok {
				// Already being re-homed for another task; only one home.
				// If that home is a different node this input stays
				// remote — the residual pass below accounts for it.
				continue
			}
			// Donate from the most loaded current holder.
			src := c.Replicas[0]
			for _, r := range c.Replicas {
				if hostedMB[r] > hostedMB[src] {
					src = r
				}
			}
			m := Migration{Chunk: int(in.Chunk), From: src, To: node, SizeMB: c.SizeMB}
			plan.Migrations = append(plan.Migrations, m)
			plan.MovedMB += c.SizeMB
			moved[int(in.Chunk)] = m
			hostedMB[src] -= c.SizeMB
			hostedMB[node] += c.SizeMB
		}
	}
	sort.Slice(plan.Migrations, func(i, j int) bool { return plan.Migrations[i].Chunk < plan.Migrations[j].Chunk })
	// Accounting pass over the final placement: RemoteMBPerRun is the
	// pre-plan remote traffic, ResidualRemoteMBPerRun whatever the moves
	// could not make local (shared chunks homed elsewhere, and replicas
	// donated away from under a co-located task).
	for t, owner := range a.Owner {
		node := p.ProcNode[owner]
		for _, in := range p.Tasks[t].Inputs {
			c := p.FS.Chunk(in.Chunk)
			if !c.HostedOn(node) {
				plan.RemoteMBPerRun += in.SizeMB
			}
			if !hostedAfter(c, moved, node) {
				plan.ResidualRemoteMBPerRun += in.SizeMB
			}
		}
	}
	if saved := plan.RemoteMBPerRun - plan.ResidualRemoteMBPerRun; saved > 0 {
		plan.BreakEvenRuns = plan.MovedMB / saved
	}
	return plan, nil
}

// hostedAfter reports whether chunk c has a replica on node once the
// planned moves are applied.
func hostedAfter(c *dfs.Chunk, moved map[int]Migration, node int) bool {
	if m, ok := moved[int(c.ID)]; ok {
		if m.To == node {
			return true
		}
		if m.From == node {
			return false
		}
	}
	return c.HostedOn(node)
}

// Apply executes the plan against the problem's file system. It returns an
// error on the first migration that fails (earlier moves stay applied, as
// a real migration tool's partial progress would).
func (plan *RedistributionPlan) Apply(p *Problem) error {
	for _, m := range plan.Migrations {
		if err := p.FS.MoveReplica(dfsChunkID(m.Chunk), m.From, m.To); err != nil {
			return fmt.Errorf("core: applying migration of chunk %d: %w", m.Chunk, err)
		}
	}
	return nil
}
