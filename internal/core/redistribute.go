package core

import (
	"fmt"
	"sort"

	"opass/internal/dfs"
)

// dfsChunkID converts Migration's compact int back to the dfs ID type.
func dfsChunkID(v int) dfs.ChunkID { return dfs.ChunkID(v) }

// This file implements the data redistribution extension. §V-C1 of the
// paper observes that when tasks have many scattered inputs "our method may
// not work as well and data reconstruction/redistribution may be needed",
// citing MRAP, and declares it beyond the paper's scope. The planner below
// closes that gap: given an assignment, it relocates replicas so that the
// assignment's remote inputs become local, and reports the one-time
// migration cost so callers can weigh it against the recurring remote-read
// traffic it eliminates (worthwhile exactly when the dataset is read many
// times, the iterative-analysis scenario from the paper's introduction).

// Migration describes one planned replica move.
type Migration struct {
	Chunk  int // dfs.ChunkID, kept as int for compact printing
	From   int
	To     int
	SizeMB float64
}

// RedistributionPlan is the outcome of PlanRedistribution.
type RedistributionPlan struct {
	// Migrations lists the replica moves, in task order.
	Migrations []Migration
	// MovedMB is the total migration traffic.
	MovedMB float64
	// RemoteMBPerRun is the remote traffic the assignment incurs per
	// execution before redistribution; after applying the plan it is zero
	// for single-input tasks and whatever locality conflicts remain for
	// multi-input ones.
	RemoteMBPerRun float64
	// BreakEvenRuns is how many executions amortize the migration:
	// MovedMB / RemoteMBPerRun (0 when nothing is remote).
	BreakEvenRuns float64
}

// PlanRedistribution computes the replica moves that make assignment a
// fully local on problem p. For every input chunk not hosted on its owner's
// node, one replica is relocated there — taken from the replica holder
// currently hosting the most data, so the move also reduces storage skew.
// The file system is not modified; use Apply.
func PlanRedistribution(p *Problem, a *Assignment) (*RedistributionPlan, error) {
	if err := a.Validate(p); err != nil {
		return nil, err
	}
	plan := &RedistributionPlan{}
	// Track hypothetical placement changes so multiple tasks sharing a
	// chunk don't double-move it.
	moved := map[int]int{} // chunk -> new node
	hostedMB := make(map[int]float64, p.NumProcs())
	for n := 0; n < p.FS.NumLiveNodes(); n++ {
		hostedMB[n] = p.FS.StoredMB(n)
	}
	for t, owner := range a.Owner {
		node := p.ProcNode[owner]
		for _, in := range p.Tasks[t].Inputs {
			c := p.FS.Chunk(in.Chunk)
			if c.HostedOn(node) || moved[int(in.Chunk)] == node+1 {
				continue
			}
			plan.RemoteMBPerRun += in.SizeMB
			if moved[int(in.Chunk)] != 0 {
				// Already being moved for another task; only one home.
				continue
			}
			// Donate from the most loaded current holder.
			src := c.Replicas[0]
			for _, r := range c.Replicas {
				if hostedMB[r] > hostedMB[src] {
					src = r
				}
			}
			plan.Migrations = append(plan.Migrations, Migration{
				Chunk: int(in.Chunk), From: src, To: node, SizeMB: c.SizeMB,
			})
			plan.MovedMB += c.SizeMB
			moved[int(in.Chunk)] = node + 1
			hostedMB[src] -= c.SizeMB
			hostedMB[node] += c.SizeMB
		}
	}
	sort.Slice(plan.Migrations, func(i, j int) bool { return plan.Migrations[i].Chunk < plan.Migrations[j].Chunk })
	if plan.RemoteMBPerRun > 0 {
		plan.BreakEvenRuns = plan.MovedMB / plan.RemoteMBPerRun
	}
	return plan, nil
}

// Apply executes the plan against the problem's file system. It returns an
// error on the first migration that fails (earlier moves stay applied, as
// a real migration tool's partial progress would).
func (plan *RedistributionPlan) Apply(p *Problem) error {
	for _, m := range plan.Migrations {
		if err := p.FS.MoveReplica(dfsChunkID(m.Chunk), m.From, m.To); err != nil {
			return fmt.Errorf("core: applying migration of chunk %d: %w", m.Chunk, err)
		}
	}
	return nil
}
