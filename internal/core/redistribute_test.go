package core

import (
	"testing"

	"opass/internal/dfs"
)

func TestRedistributionMakesAssignmentLocal(t *testing.T) {
	// Clustered placement: all data on nodes 0..2 of 8, so Opass cannot get
	// past partial locality; redistribution should finish the job.
	p, fs := buildSingle(t, 8, 40, 31, dfs.ClusteredPlacement{})
	a, err := SingleData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalityFraction() >= 1 {
		t.Fatalf("locality already %v; fixture broken", a.LocalityFraction())
	}
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedMB == 0 || len(plan.Migrations) == 0 {
		t.Fatal("plan moved nothing despite remote inputs")
	}
	if err := plan.Apply(p); err != nil {
		t.Fatal(err)
	}
	// Recompute locality of the SAME assignment on the mutated placement.
	fillLocality(p, a)
	if a.LocalityFraction() != 1.0 {
		t.Fatalf("post-redistribution locality %v, want 1.0", a.LocalityFraction())
	}
	// Replica invariants survived the surgery.
	for i := 0; i < fs.NumChunks(); i++ {
		c := fs.Chunk(dfs.ChunkID(i))
		seen := map[int]bool{}
		for _, r := range c.Replicas {
			if seen[r] {
				t.Fatalf("chunk %d has duplicate replica after redistribution", i)
			}
			seen[r] = true
		}
		if len(c.Replicas) != 3 {
			t.Fatalf("chunk %d replication changed to %d", i, len(c.Replicas))
		}
	}
}

func TestRedistributionBreakEven(t *testing.T) {
	p, _ := buildSingle(t, 8, 40, 32, dfs.ClusteredPlacement{})
	a, _ := SingleData{}.Assign(p)
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// Moving a chunk once costs the same as reading it remotely once, so a
	// single-input workload breaks even after exactly one run.
	if plan.BreakEvenRuns < 0.99 || plan.BreakEvenRuns > 1.01 {
		t.Fatalf("break-even runs = %v, want ~1 for single-input tasks", plan.BreakEvenRuns)
	}
}

func TestRedistributionNoopWhenFullyLocal(t *testing.T) {
	p, _ := buildSingle(t, 8, 80, 33, dfs.RoundRobinPlacement{})
	a, _ := SingleData{}.Assign(p)
	if a.LocalityFraction() != 1 {
		t.Fatal("fixture should be fully local")
	}
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Migrations) != 0 || plan.MovedMB != 0 || plan.BreakEvenRuns != 0 {
		t.Fatalf("expected empty plan, got %+v", plan)
	}
}

func TestRedistributionMultiData(t *testing.T) {
	p := multiProblem(t, 8, 24, 34)
	a, err := MultiData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	before := a.LocalityFraction()
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Apply(p); err != nil {
		t.Fatal(err)
	}
	fillLocality(p, a)
	if a.LocalityFraction() <= before {
		t.Fatalf("redistribution did not improve multi-data locality: %v -> %v",
			before, a.LocalityFraction())
	}
	if a.LocalityFraction() != 1.0 {
		t.Fatalf("multi-data locality after redistribution %v, want 1.0", a.LocalityFraction())
	}
}

func TestRedistributionValidatesAssignment(t *testing.T) {
	p, _ := buildSingle(t, 4, 8, 35, dfs.RandomPlacement{})
	bad := &Assignment{Owner: []int{0}, Lists: make([][]int, 4)}
	if _, err := PlanRedistribution(p, bad); err == nil {
		t.Fatal("invalid assignment must be rejected")
	}
}

// TestRedistributionSharedChunkAcrossOwners is the regression test for the
// residual-remote accounting bug: a chunk shared by two single-input tasks
// whose owners sit on different nodes can be re-homed for only one of them,
// so the other's bytes stay remote every run. The old code counted those
// bytes as eliminated, halving BreakEvenRuns.
func TestRedistributionSharedChunkAcrossOwners(t *testing.T) {
	fs := dfs.New(view{4}, dfs.Config{
		Replication: 2,
		Placement:   dfs.FixedPlacement{Replicas: [][]int{{2, 3}}},
	})
	f, err := fs.CreateChunks("/shared", []float64{64})
	if err != nil {
		t.Fatal(err)
	}
	shared := f.Chunks[0]
	p := &Problem{
		ProcNode: []int{0, 1}, // proc 0 on node 0, proc 1 on node 1
		Tasks: []Task{
			{ID: 0, Inputs: []Input{{Chunk: shared, SizeMB: 64}}},
			{ID: 1, Inputs: []Input{{Chunk: shared, SizeMB: 64}}},
		},
		FS: fs,
	}
	a := &Assignment{Owner: []int{0, 1}, Lists: [][]int{{0}, {1}}}
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// One move re-homes the chunk for task 0; task 1's copy of the bytes
	// stays remote.
	if len(plan.Migrations) != 1 || plan.MovedMB != 64 {
		t.Fatalf("migrations = %+v (moved %v MB), want one 64 MB move", plan.Migrations, plan.MovedMB)
	}
	if plan.RemoteMBPerRun != 128 {
		t.Fatalf("RemoteMBPerRun = %v, want 128 (both tasks read remotely pre-plan)", plan.RemoteMBPerRun)
	}
	if plan.ResidualRemoteMBPerRun != 64 {
		t.Fatalf("ResidualRemoteMBPerRun = %v, want 64 (task 1 stays remote)", plan.ResidualRemoteMBPerRun)
	}
	// Saved traffic is 64 MB/run for a 64 MB move: break-even after 1 run,
	// not the 0.5 the old accounting promised.
	if plan.BreakEvenRuns < 0.99 || plan.BreakEvenRuns > 1.01 {
		t.Fatalf("BreakEvenRuns = %v, want 1", plan.BreakEvenRuns)
	}
	// The residual forecast matches reality: apply and recompute locality.
	if err := plan.Apply(p); err != nil {
		t.Fatal(err)
	}
	fillLocality(p, a)
	wantLocal := (128.0 - 64.0) / 128.0
	if got := a.LocalityFraction(); got != wantLocal {
		t.Fatalf("post-apply locality = %v, want %v (doc claim of full locality is false for shared chunks)",
			got, wantLocal)
	}
}

// TestRedistributionDonatedReplicaResidual covers the second residual
// shape: the donor replica chosen for one task's move is the very copy a
// co-located task was reading, so that task turns remote after Apply.
func TestRedistributionDonatedReplicaResidual(t *testing.T) {
	// Chunk on {2,3}; node 2 is made the most loaded holder so it donates.
	fs := dfs.New(view{4}, dfs.Config{
		Replication: 2,
		Placement:   dfs.FixedPlacement{Replicas: [][]int{{2, 3}, {2, 3}}},
	})
	f, err := fs.CreateChunks("/shared", []float64{64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateChunks("/ballast", []float64{1}); err != nil {
		t.Fatal(err) // also on {2,3}: keeps loads equal, Replicas[0]=2 donates
	}
	shared := f.Chunks[0]
	p := &Problem{
		ProcNode: []int{0, 2}, // proc 1 sits on holder node 2
		Tasks: []Task{
			{ID: 0, Inputs: []Input{{Chunk: shared, SizeMB: 64}}},
			{ID: 1, Inputs: []Input{{Chunk: shared, SizeMB: 64}}},
		},
		FS: fs,
	}
	a := &Assignment{Owner: []int{0, 1}, Lists: [][]int{{0}, {1}}}
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Migrations) != 1 || plan.Migrations[0].From != 2 || plan.Migrations[0].To != 0 {
		t.Fatalf("migrations = %+v, want one move 2->0", plan.Migrations)
	}
	// Task 1 was local on node 2 pre-plan (zero pre-plan remote for it)
	// but its replica was donated away: it is remote post-plan.
	if plan.RemoteMBPerRun != 64 {
		t.Fatalf("RemoteMBPerRun = %v, want 64", plan.RemoteMBPerRun)
	}
	if plan.ResidualRemoteMBPerRun != 64 {
		t.Fatalf("ResidualRemoteMBPerRun = %v, want 64 (donated replica turned task 1 remote)",
			plan.ResidualRemoteMBPerRun)
	}
	if plan.BreakEvenRuns != 0 {
		t.Fatalf("BreakEvenRuns = %v, want 0: the plan saves nothing per run", plan.BreakEvenRuns)
	}
}

// TestRedistributionDonorAfterNodeRemoval is the regression test for the
// donor-load seeding bug: live node IDs are not contiguous after a node
// removal, and the old 0..NumLiveNodes() seeding loop read high-ID holders
// as hosting nothing, so the most loaded holder was never picked as donor.
func TestRedistributionDonorAfterNodeRemoval(t *testing.T) {
	fs := dfs.New(view{8}, dfs.Config{
		Replication: 2,
		Placement: dfs.FixedPlacement{Replicas: [][]int{
			{2, 7}, // the chunk to re-home
			{3, 7}, // ballast making node 7 the most loaded holder
			{3, 7},
		}},
	})
	if err := fs.MarkDead(1); err != nil { // live IDs: {0,2,...,7}, NumLiveNodes()=7
		t.Fatal(err)
	}
	f, err := fs.CreateChunks("/data", []float64{64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateChunks("/ballast", []float64{128, 128}); err != nil {
		t.Fatal(err)
	}
	// Loads: node 2 = 64, node 3 = 256, node 7 = 320 — node 7 must donate.
	p := &Problem{
		ProcNode: []int{0},
		Tasks:    []Task{{ID: 0, Inputs: []Input{{Chunk: f.Chunks[0], SizeMB: 64}}}},
		FS:       fs,
	}
	a := &Assignment{Owner: []int{0}, Lists: [][]int{{0}}}
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Migrations) != 1 {
		t.Fatalf("migrations = %+v, want exactly one", plan.Migrations)
	}
	if got := plan.Migrations[0].From; got != 7 {
		t.Fatalf("donor = node %d, want 7 (the most loaded holder; high live IDs must be seeded)", got)
	}
	if err := plan.Apply(p); err != nil {
		t.Fatal(err)
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after apply: %v", problems)
	}
}

func TestReplicaSurgeryPrimitives(t *testing.T) {
	fs := dfs.New(view{8}, dfs.Config{Seed: 36})
	f, _ := fs.Create("/a", 64)
	c := fs.Chunk(f.Chunks[0])
	free := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			free = n
			break
		}
	}
	if err := fs.AddReplica(c.ID, free); err != nil {
		t.Fatal(err)
	}
	if len(c.Replicas) != 4 || !c.HostedOn(free) {
		t.Fatalf("add replica failed: %v", c.Replicas)
	}
	if err := fs.AddReplica(c.ID, free); err == nil {
		t.Fatal("duplicate add must fail")
	}
	if err := fs.RemoveReplica(c.ID, free); err != nil {
		t.Fatal(err)
	}
	if c.HostedOn(free) {
		t.Fatal("remove replica failed")
	}
	if err := fs.RemoveReplica(c.ID, free); err == nil {
		t.Fatal("removing absent replica must fail")
	}
	// Refuse to drop the last copy.
	for len(c.Replicas) > 1 {
		if err := fs.RemoveReplica(c.ID, c.Replicas[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.RemoveReplica(c.ID, c.Replicas[0]); err == nil {
		t.Fatal("last replica must be protected")
	}
	// Move: src must hold a copy, dst must not.
	src := c.Replicas[0]
	dst := (src + 1) % 8
	if err := fs.MoveReplica(c.ID, src, dst); err != nil {
		t.Fatal(err)
	}
	if c.HostedOn(src) || !c.HostedOn(dst) {
		t.Fatalf("move failed: %v", c.Replicas)
	}
	if err := fs.MoveReplica(c.ID, src, dst); err == nil {
		t.Fatal("move from non-holder must fail")
	}
}
