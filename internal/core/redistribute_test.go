package core

import (
	"testing"

	"opass/internal/dfs"
)

func TestRedistributionMakesAssignmentLocal(t *testing.T) {
	// Clustered placement: all data on nodes 0..2 of 8, so Opass cannot get
	// past partial locality; redistribution should finish the job.
	p, fs := buildSingle(t, 8, 40, 31, dfs.ClusteredPlacement{})
	a, err := SingleData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalityFraction() >= 1 {
		t.Fatalf("locality already %v; fixture broken", a.LocalityFraction())
	}
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedMB == 0 || len(plan.Migrations) == 0 {
		t.Fatal("plan moved nothing despite remote inputs")
	}
	if err := plan.Apply(p); err != nil {
		t.Fatal(err)
	}
	// Recompute locality of the SAME assignment on the mutated placement.
	fillLocality(p, a)
	if a.LocalityFraction() != 1.0 {
		t.Fatalf("post-redistribution locality %v, want 1.0", a.LocalityFraction())
	}
	// Replica invariants survived the surgery.
	for i := 0; i < fs.NumChunks(); i++ {
		c := fs.Chunk(dfs.ChunkID(i))
		seen := map[int]bool{}
		for _, r := range c.Replicas {
			if seen[r] {
				t.Fatalf("chunk %d has duplicate replica after redistribution", i)
			}
			seen[r] = true
		}
		if len(c.Replicas) != 3 {
			t.Fatalf("chunk %d replication changed to %d", i, len(c.Replicas))
		}
	}
}

func TestRedistributionBreakEven(t *testing.T) {
	p, _ := buildSingle(t, 8, 40, 32, dfs.ClusteredPlacement{})
	a, _ := SingleData{}.Assign(p)
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// Moving a chunk once costs the same as reading it remotely once, so a
	// single-input workload breaks even after exactly one run.
	if plan.BreakEvenRuns < 0.99 || plan.BreakEvenRuns > 1.01 {
		t.Fatalf("break-even runs = %v, want ~1 for single-input tasks", plan.BreakEvenRuns)
	}
}

func TestRedistributionNoopWhenFullyLocal(t *testing.T) {
	p, _ := buildSingle(t, 8, 80, 33, dfs.RoundRobinPlacement{})
	a, _ := SingleData{}.Assign(p)
	if a.LocalityFraction() != 1 {
		t.Fatal("fixture should be fully local")
	}
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Migrations) != 0 || plan.MovedMB != 0 || plan.BreakEvenRuns != 0 {
		t.Fatalf("expected empty plan, got %+v", plan)
	}
}

func TestRedistributionMultiData(t *testing.T) {
	p := multiProblem(t, 8, 24, 34)
	a, err := MultiData{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	before := a.LocalityFraction()
	plan, err := PlanRedistribution(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Apply(p); err != nil {
		t.Fatal(err)
	}
	fillLocality(p, a)
	if a.LocalityFraction() <= before {
		t.Fatalf("redistribution did not improve multi-data locality: %v -> %v",
			before, a.LocalityFraction())
	}
	if a.LocalityFraction() != 1.0 {
		t.Fatalf("multi-data locality after redistribution %v, want 1.0", a.LocalityFraction())
	}
}

func TestRedistributionValidatesAssignment(t *testing.T) {
	p, _ := buildSingle(t, 4, 8, 35, dfs.RandomPlacement{})
	bad := &Assignment{Owner: []int{0}, Lists: make([][]int, 4)}
	if _, err := PlanRedistribution(p, bad); err == nil {
		t.Fatal("invalid assignment must be rejected")
	}
}

func TestReplicaSurgeryPrimitives(t *testing.T) {
	fs := dfs.New(view{8}, dfs.Config{Seed: 36})
	f, _ := fs.Create("/a", 64)
	c := fs.Chunk(f.Chunks[0])
	free := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			free = n
			break
		}
	}
	if err := fs.AddReplica(c.ID, free); err != nil {
		t.Fatal(err)
	}
	if len(c.Replicas) != 4 || !c.HostedOn(free) {
		t.Fatalf("add replica failed: %v", c.Replicas)
	}
	if err := fs.AddReplica(c.ID, free); err == nil {
		t.Fatal("duplicate add must fail")
	}
	if err := fs.RemoveReplica(c.ID, free); err != nil {
		t.Fatal(err)
	}
	if c.HostedOn(free) {
		t.Fatal("remove replica failed")
	}
	if err := fs.RemoveReplica(c.ID, free); err == nil {
		t.Fatal("removing absent replica must fail")
	}
	// Refuse to drop the last copy.
	for len(c.Replicas) > 1 {
		if err := fs.RemoveReplica(c.ID, c.Replicas[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.RemoveReplica(c.ID, c.Replicas[0]); err == nil {
		t.Fatal("last replica must be protected")
	}
	// Move: src must hold a copy, dst must not.
	src := c.Replicas[0]
	dst := (src + 1) % 8
	if err := fs.MoveReplica(c.ID, src, dst); err != nil {
		t.Fatal(err)
	}
	if c.HostedOn(src) || !c.HostedOn(dst) {
		t.Fatalf("move failed: %v", c.Replicas)
	}
	if err := fs.MoveReplica(c.ID, src, dst); err == nil {
		t.Fatal("move from non-holder must fail")
	}
}
