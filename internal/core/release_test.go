package core

import (
	"testing"

	"opass/internal/dfs"
)

// snapshotEdges deep-copies every byTask edge of an index so it can be
// compared after the index's buffers have been recycled into later builds.
func snapshotEdges(p *Problem, ix *LocalityIndex) [][]LocalityEdge {
	out := make([][]LocalityEdge, len(p.Tasks))
	for t := range p.Tasks {
		out[t] = append([]LocalityEdge(nil), ix.TaskEdges(t)...)
	}
	return out
}

// TestLocalityIndexReleaseReuse cycles pooled buffers through builds of
// different shapes — small/serial, large/parallel, rack-tiered, different
// process counts — asserting every rebuilt index is identical to a
// snapshot taken before any buffer recycling. Stale pool contents (old
// epochs in scratch stamps, leftover edges in arena blocks and transpose
// backings) must never leak into a later index.
func TestLocalityIndexReleaseReuse(t *testing.T) {
	small, _ := buildSingle(t, 8, 64, 21, dfs.RandomPlacement{})
	large, _ := buildSingle(t, 24, 2*indexParallelThreshold+64, 22, dfs.RandomPlacement{})
	tiered, _ := buildSingle(t, 16, 128, 23, dfs.RandomPlacement{})
	racks := make([]int, 16)
	for i := range racks {
		racks[i] = i % 4
	}
	tiered.NodeRack = racks

	probs := []*Problem{small, large, tiered, goldenMultiProblem(t)}
	want := make([][][]LocalityEdge, len(probs))
	wantRack := make([][][]LocalityEdge, len(probs))
	for i, p := range probs {
		ix := NewLocalityIndex(p)
		want[i] = snapshotEdges(p, ix)
		if ix.RackTiered() {
			wantRack[i] = make([][]LocalityEdge, len(p.Tasks))
			for task := range p.Tasks {
				wantRack[i][task] = append([]LocalityEdge(nil), ix.TaskRackEdges(task)...)
			}
		}
		ix.Release()
	}

	// Interleave shapes so recycled scratch/blocks/backing cross problem
	// boundaries (growing and shrinking proc counts, node vs rack tiers).
	for round := 0; round < 4; round++ {
		for i, p := range probs {
			ix := NewLocalityIndex(p)
			for task := range p.Tasks {
				got := ix.TaskEdges(task)
				if len(got) != len(want[i][task]) {
					t.Fatalf("round %d prob %d task %d: %d edges, want %d", round, i, task, len(got), len(want[i][task]))
				}
				for k := range got {
					if got[k] != want[i][task][k] {
						t.Fatalf("round %d prob %d task %d edge %d: %+v, want %+v", round, i, task, k, got[k], want[i][task][k])
					}
				}
				if wantRack[i] != nil {
					gotR := ix.TaskRackEdges(task)
					if len(gotR) != len(wantRack[i][task]) {
						t.Fatalf("round %d prob %d task %d: %d rack edges, want %d", round, i, task, len(gotR), len(wantRack[i][task]))
					}
					for k := range gotR {
						if gotR[k] != wantRack[i][task][k] {
							t.Fatalf("round %d prob %d task %d rack edge %d: %+v, want %+v", round, i, task, k, gotR[k], wantRack[i][task][k])
						}
					}
				}
			}
			// Cross-check the transposed view against the task view too.
			for proc := 0; proc < p.NumProcs(); proc++ {
				for _, e := range ix.ProcEdges(proc) {
					if got := ix.CoLocatedMB(e.Proc, e.Task); got != e.MB {
						t.Fatalf("round %d prob %d: views disagree on (%d,%d): %v vs %v", round, i, e.Proc, e.Task, got, e.MB)
					}
				}
			}
			ix.Release()
		}
	}
}

// TestPlannersConcurrentPooledBuffers runs the three pooled-index planners
// concurrently against independent problems, each goroutine checking its
// plans stay identical across iterations — the service's concurrent
// request path in miniature. Run with -race this proves the sync.Pool
// recycling cannot mix buffers between in-flight plans.
func TestPlannersConcurrentPooledBuffers(t *testing.T) {
	p1, _ := buildSingle(t, 8, 80, 31, dfs.RandomPlacement{})
	p2, _ := buildSingle(t, 12, 2*indexParallelThreshold, 32, dfs.RandomPlacement{})
	p3 := goldenMultiProblem(t)

	runs := []struct {
		name string
		plan func() (*Assignment, error)
	}{
		{"single", func() (*Assignment, error) { return SingleData{Seed: 1}.Assign(p1) }},
		{"greedy", func() (*Assignment, error) { return GreedyLocality{Seed: 2}.Assign(p2) }},
		{"multi", func() (*Assignment, error) { return MultiData{Seed: 3}.Assign(p3) }},
	}
	done := make(chan error, len(runs))
	for _, r := range runs {
		go func(name string, plan func() (*Assignment, error)) {
			base, err := plan()
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < 8; i++ {
				a, err := plan()
				if err != nil {
					done <- err
					return
				}
				for task := range base.Owner {
					if a.Owner[task] != base.Owner[task] {
						t.Errorf("%s iteration %d: task %d owner %d, want %d", name, i, task, a.Owner[task], base.Owner[task])
						done <- nil
						return
					}
				}
			}
			done <- nil
		}(r.name, r.plan)
	}
	for range runs {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestLocalityIndexDoubleReleasePanics pins the misuse guard.
func TestLocalityIndexDoubleReleasePanics(t *testing.T) {
	p, _ := buildSingle(t, 4, 16, 24, dfs.RandomPlacement{})
	ix := NewLocalityIndex(p)
	ix.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	ix.Release()
}

// TestLocalityIndexNilRelease asserts error-path callers may release a nil
// index unconditionally.
func TestLocalityIndexNilRelease(t *testing.T) {
	var ix *LocalityIndex
	ix.Release() // must not panic
}
