package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"opass/internal/bipartite"
)

// SingleData is the Opass planner for parallel single-data access (§IV-B):
// every task consumes one chunk file and every process must receive an
// equal share of the data. The planner encodes the locality graph as the
// flow network of Figure 5, computes a maximum flow with Ford-Fulkerson
// (whose flow-augmenting paths implement the paper's assignment
// cancellation policy), and then randomly assigns any unmatched tasks to
// processes that are still below their TotalSize/m share.
type SingleData struct {
	// Algorithm selects the max-flow solver; the zero value is
	// Edmonds-Karp, as in the paper.
	Algorithm bipartite.Algorithm
	// Seed drives the random repair step for unmatched tasks.
	Seed int64
	// Weights optionally skews the per-process data share ("load
	// capacity", as the paper's abstract calls it): process i receives a
	// quota proportional to Weights[i] instead of the uniform TotalSize/m.
	// Useful on heterogeneous clusters where slow nodes should read less.
	// nil means equal shares, as in the paper's evaluation.
	Weights []float64
	// NodeBias optionally discounts the share of every process hosted on a
	// given node: process i's quota is multiplied by NodeBias[ProcNode[i]].
	// Factors must be in (0, 1]; nil means no bias. In the flow encoding
	// the factors scale the source→process arc capacities, which is how the
	// cluster-level scheduler steers an arriving job away from nodes that
	// are already hot with earlier jobs' reads (locality-vs-balance knob).
	NodeBias []float64
}

// Name implements Assigner.
func (SingleData) Name() string { return "opass-flow" }

// Assign implements Assigner.
func (s SingleData) Assign(p *Problem) (*Assignment, error) {
	return s.AssignContext(context.Background(), p)
}

// AssignContext implements ContextAssigner: the locality-index fan-out and
// the max-flow augmenting loop poll ctx and abort with its error.
func (s SingleData) AssignContext(ctx context.Context, p *Problem) (*Assignment, error) {
	return s.assign(ctx, p, nil)
}

// assign is the shared planner body; a non-nil seed warm-starts the solver
// from a prior assignment's solver-matched owners (see AssignWarmContext).
func (s SingleData) assign(ctx context.Context, p *Problem, seed []int) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for i := range p.Tasks {
		if len(p.Tasks[i].Inputs) != 1 {
			return nil, fmt.Errorf("core: single-data planner given task %d with %d inputs; use MultiData", i, len(p.Tasks[i].Inputs))
		}
	}
	n, m := len(p.Tasks), p.NumProcs()
	// Fold the per-node bias into the per-process weights: both end up as
	// the source-arc capacities of the flow network, so a biased-down node
	// simply offers its processes a smaller share of the data.
	weights := s.Weights
	if weights != nil && len(weights) != m {
		return nil, fmt.Errorf("core: %d weights for %d processes", len(weights), m)
	}
	if pb, err := procBias(p, s.NodeBias); err != nil {
		return nil, err
	} else if pb != nil {
		combined := make([]float64, m)
		for i := range combined {
			combined[i] = pb[i]
			if weights != nil {
				combined[i] *= weights[i]
			}
		}
		weights = combined
	}
	ix, err := NewLocalityIndexContext(ctx, p)
	if err != nil {
		return nil, err
	}
	// The index is request-scoped: hand its arena blocks back to the pool on
	// every exit path so a service replanning at 1M tasks reuses them
	// instead of paying the allocator per request.
	defer ix.Release()
	scale := capacityScale(p)
	g := localityGraph(p, ix, scale)

	// Per-process data quota: TotalSize/m (or weight-proportional shares),
	// in whole capacity units (1/scale MB) with the rounding remainder
	// spread over the first processes so quotas sum to the total. The
	// per-task unit conversions are independent; int64 addition is exact,
	// so chunked parallel partial sums reduce to the same total in any
	// order.
	sizes := make([]int64, n)
	var total atomic.Int64
	parallelChunks(n, capScaleChunk, func(lo, hi int) {
		var sub int64
		for t := lo; t < hi; t++ {
			sizes[t] = capUnits(p.Tasks[t].SizeMB(), scale)
			sub += sizes[t]
		}
		total.Add(sub)
	})
	quotasMB, err := shareQuotas(total.Load(), m, weights)
	if err != nil {
		return nil, err
	}
	if equalSizes(sizes) {
		// With equal task sizes the paper's constraint is really "equal
		// (or weight-proportional) task counts"; expressing the quota as
		// counts*size keeps the flow formulation correct even when there
		// are fewer tasks than processes (TotalSize/m would then be
		// smaller than one task and nothing could match). The weighted
		// path needs this just as much: an MB quota of 8.5 tasks strands
		// half a task of slack on every process, and the stranded tasks
		// would then be re-homed with no regard for locality.
		counts := taskQuotas(n, m)
		if weights != nil {
			counts = weightedTaskQuotas(n, m, weights)
		}
		for i := range quotasMB {
			quotasMB[i] = int64(counts[i]) * sizes[0]
		}
	}

	var owner []int
	if s.Algorithm == bipartite.Kuhn && equalSizes(sizes) {
		// Equal sizes degenerate the flow problem to quota-constrained
		// bipartite matching, which the direct matcher solves without
		// building the flow network.
		quotaTasks := make([]int, m)
		for i, q := range quotasMB {
			quotaTasks[i] = int(q / sizes[0])
		}
		owner, _, err = bipartite.MatchAugmentingWarmContext(ctx, g, quotaTasks, seed)
		if err != nil {
			return nil, err
		}
	} else {
		algo := s.Algorithm
		if algo == bipartite.Kuhn {
			algo = bipartite.EdmondsKarp // unequal sizes: matching does not apply
		}
		res, err := bipartite.AssignMaxLocalityWarmContext(ctx, g, quotasMB, sizes, algo, seed)
		if err != nil {
			return nil, err
		}
		owner = append([]int(nil), res.Owner...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	matched := make([]bool, n)
	for t, o := range owner {
		matched[t] = o >= 0
	}
	// Rack tier: before the random repair crosses an uplink, hand unmatched
	// tasks to an under-quota process in a rack that holds their data. The
	// node-local solve above is untouched, and on single-rack problems this
	// is a structural no-op (no rack edges exist), so rack-oblivious plans
	// stay byte-identical. Rack-steered owners stay Matched=false: they are
	// repair decisions, not solver matches, and must not seed warm starts.
	if weights == nil {
		rackRepairCounts(p, ix, owner)
	} else {
		rackRepairWeighted(p, ix, owner, quotasMB)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	if weights == nil {
		repairUnmatched(p, owner, rng)
	} else {
		repairUnmatchedWeighted(p, owner, quotasMB, rng)
	}

	a := &Assignment{Owner: owner, Lists: buildLists(p, owner), Matched: matched}
	sortEachList(a.Lists)
	fillLocality(p, a)
	return a, nil
}

// equalSizes reports whether every task size is identical.
func equalSizes(sizes []int64) bool {
	for _, s := range sizes[1:] {
		if s != sizes[0] {
			return false
		}
	}
	return true
}

// weightedTaskQuotas splits n tasks over m processes proportionally to
// weights, rounding by largest remainder so the counts sum to n exactly.
// The deficit after flooring equals the sum of the fractional parts, so it
// is always covered by processes with a positive remainder — zero-weight
// processes never receive a task. Weights are validated by shareQuotas
// before this runs.
func weightedTaskQuotas(n, m int, weights []float64) []int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	counts := make([]int, m)
	order := make([]int, m)
	rem := make([]float64, m)
	given := 0
	for i, w := range weights {
		exact := float64(n) * w / sum
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		order[i] = i
		given += counts[i]
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for k := 0; given < n; k++ {
		counts[order[k%m]]++
		given++
	}
	return counts
}

// shareQuotas splits total MB over m processes — equally when weights is
// nil, else proportionally to weights — spreading the integer remainder
// over the first processes so the quotas sum exactly to total.
func shareQuotas(total int64, m int, weights []float64) ([]int64, error) {
	quotas := make([]int64, m)
	if weights == nil {
		base, rem := total/int64(m), total%int64(m)
		for i := range quotas {
			quotas[i] = base
			if int64(i) < rem {
				quotas[i]++
			}
		}
		return quotas, nil
	}
	if len(weights) != m {
		return nil, fmt.Errorf("core: %d weights for %d processes", len(weights), m)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("core: weight[%d] = %v must be non-negative", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("core: weights sum to zero")
	}
	var given int64
	for i, w := range weights {
		quotas[i] = int64(float64(total) * w / sum)
		given += quotas[i]
	}
	for i := 0; given < total; i = (i + 1) % m {
		if weights[i] > 0 {
			quotas[i]++
			given++
		}
	}
	return quotas, nil
}

// repairUnmatchedWeighted assigns leftover tasks to the process with the
// most remaining MB quota (weight-aware variant of repairUnmatched).
func repairUnmatchedWeighted(p *Problem, owner []int, quotasMB []int64, rng *rand.Rand) {
	m := p.NumProcs()
	loadMB := make([]float64, m)
	for t, o := range owner {
		if o >= 0 {
			loadMB[o] += p.Tasks[t].SizeMB()
		}
	}
	for t := range owner {
		if owner[t] >= 0 {
			continue
		}
		best, ties := -1, 0
		for i := 0; i < m; i++ {
			slack := float64(quotasMB[i]) - loadMB[i]
			var bestSlack float64
			if best >= 0 {
				bestSlack = float64(quotasMB[best]) - loadMB[best]
			}
			switch {
			case best == -1 || slack > bestSlack:
				best = i
				ties = 1
			case slack == bestSlack:
				ties++
				if rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
		owner[t] = best
		loadMB[best] += p.Tasks[t].SizeMB()
	}
}

// repairUnmatched assigns every task with owner -1 to an under-quota
// process chosen by least current load (ties broken randomly), falling back
// to global least-load if rounding left no process under its count quota.
func repairUnmatched(p *Problem, owner []int, rng *rand.Rand) {
	n, m := len(owner), p.NumProcs()
	quotas := taskQuotas(n, m)
	counts := make([]int, m)
	loadMB := make([]float64, m)
	for t, o := range owner {
		if o >= 0 {
			counts[o]++
			loadMB[o] += p.Tasks[t].SizeMB()
		}
	}
	// Deterministic order over unmatched tasks.
	for t := 0; t < n; t++ {
		if owner[t] >= 0 {
			continue
		}
		proc := pickSmallest(loadMB, counts, quotas, rng)
		if proc < 0 {
			// All processes at count quota (possible with unequal sizes):
			// fall back to the least-loaded process overall.
			proc = 0
			for i := 1; i < m; i++ {
				if loadMB[i] < loadMB[proc] {
					proc = i
				}
			}
		}
		owner[t] = proc
		counts[proc]++
		loadMB[proc] += p.Tasks[t].SizeMB()
	}
}

// RankStatic is the baseline assignment the paper attributes to ParaView
// (§II-B): process i receives the contiguous file interval
// [i*n/m, (i+1)*n/m), decided purely by process rank with no knowledge of
// data placement.
type RankStatic struct{}

// Name implements Assigner.
func (RankStatic) Name() string { return "rank-static" }

// Assign implements Assigner.
func (RankStatic) Assign(p *Problem) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := len(p.Tasks), p.NumProcs()
	owner := make([]int, n)
	for i := 0; i < m; i++ {
		lo := i * n / m
		hi := (i + 1) * n / m
		for t := lo; t < hi; t++ {
			owner[t] = i
		}
	}
	a := &Assignment{Owner: owner, Lists: buildLists(p, owner)}
	fillLocality(p, a)
	return a, nil
}

// RandomStatic deals tasks to processes uniformly at random while keeping
// task counts equal — a second locality-oblivious baseline that removes the
// rank-interval correlation of RankStatic.
type RandomStatic struct {
	Seed int64
}

// Name implements Assigner.
func (RandomStatic) Name() string { return "random-static" }

// Assign implements Assigner.
func (r RandomStatic) Assign(p *Problem) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := len(p.Tasks), p.NumProcs()
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(n)
	owner := make([]int, n)
	quotas := taskQuotas(n, m)
	proc, used := 0, 0
	for _, t := range perm {
		for used >= quotas[proc] {
			proc++
			used = 0
		}
		owner[t] = proc
		used++
	}
	a := &Assignment{Owner: owner, Lists: buildLists(p, owner)}
	sortEachList(a.Lists)
	fillLocality(p, a)
	return a, nil
}
