package core

import (
	"context"

	"opass/internal/dfs"
)

// This file implements incremental ("warm-started") planning for the
// single-data planner. A plan computed at time T can be reused or cheaply
// repaired at time T' as long as the caller can tell which of the problem's
// chunks moved in between; per-chunk placement epochs (dfs.Chunk.Epoch)
// provide exactly that signal without diffing replica lists.

// PlanStamp records the placement epoch of every chunk a problem read at
// plan time. Capture it with StampProblem next to the plan itself; later,
// DirtyTasks compares the live epochs against the stamp to find the tasks
// whose inputs moved.
type PlanStamp struct {
	epochs map[dfs.ChunkID]uint64
}

// StampProblem captures the current placement epochs of p's read set.
func StampProblem(p *Problem) PlanStamp {
	st := PlanStamp{epochs: make(map[dfs.ChunkID]uint64)}
	for i := range p.Tasks {
		for _, in := range p.Tasks[i].Inputs {
			if _, ok := st.epochs[in.Chunk]; !ok {
				st.epochs[in.Chunk] = p.FS.Chunk(in.Chunk).Epoch()
			}
		}
	}
	return st
}

// DirtyTasks reports the tasks of p with at least one input chunk whose
// placement epoch differs from the stamp, in ascending task order. A chunk
// absent from the stamp (the problem gained inputs, or the stamp is the
// zero value) counts as dirty — the conservative answer.
func (st PlanStamp) DirtyTasks(p *Problem) []int {
	var dirty []int
	for i := range p.Tasks {
		if st.Dirty(p, i) {
			dirty = append(dirty, i)
		}
	}
	return dirty
}

// Dirty reports whether task t of p has an input whose placement epoch
// differs from the stamp (or is missing from it).
func (st PlanStamp) Dirty(p *Problem, t int) bool {
	for _, in := range p.Tasks[t].Inputs {
		then, ok := st.epochs[in.Chunk]
		if !ok || then != p.FS.Chunk(in.Chunk).Epoch() {
			return true
		}
	}
	return false
}

// WarmStats describes what a warm-started solve actually did.
type WarmStats struct {
	// Reused reports that no read chunk's epoch changed and the prior
	// assignment was returned as-is, without touching the solver.
	Reused bool
	// Seeded reports that the solver ran warm-started from the prior
	// assignment's solver-matched owners.
	Seeded bool
	// DirtyTasks is the number of tasks whose inputs moved since the stamp.
	DirtyTasks int
}

// AssignWarmContext is AssignContext warm-started from a prior assignment
// of the same problem shape and its PlanStamp:
//
//   - If no chunk the problem reads has changed placement epoch since the
//     stamp, the prior assignment is returned unchanged (WarmStats.Reused) —
//     the planner is deterministic, so a cold re-solve would reproduce it
//     byte for byte anyway.
//   - Otherwise the solver is seeded with the prior solver-matched owners
//     and only repairs the seats the placement change broke; the random
//     repair step re-runs from the planner's fixed seed exactly as in a
//     cold solve, so the result is a valid maximum-locality assignment with
//     the same matched-task count (Kuhn) / local-MB flow value (max flow)
//     as a cold solve of the mutated problem.
//
// A prior from a different planner (nil Matched), a different task count,
// or a nil prior falls back to a plain cold solve with zero WarmStats.
// Callers must pass a problem whose task list is unchanged since the stamp
// was taken; only placement may differ.
func (s SingleData) AssignWarmContext(ctx context.Context, p *Problem, prior *Assignment, stamp PlanStamp) (*Assignment, WarmStats, error) {
	if prior == nil || prior.Matched == nil || len(prior.Owner) != len(p.Tasks) {
		a, err := s.assign(ctx, p, nil)
		return a, WarmStats{}, err
	}
	dirty := stamp.DirtyTasks(p)
	if len(dirty) == 0 {
		return prior, WarmStats{Reused: true}, nil
	}
	seed := make([]int, len(prior.Owner))
	for t := range seed {
		seed[t] = -1
		if prior.Matched[t] {
			seed[t] = prior.Owner[t]
		}
	}
	a, err := s.assign(ctx, p, seed)
	if err != nil {
		return nil, WarmStats{}, err
	}
	return a, WarmStats{Seeded: true, DirtyTasks: len(dirty)}, nil
}
