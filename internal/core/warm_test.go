package core

import (
	"context"
	"testing"

	"opass/internal/bipartite"
	"opass/internal/dfs"
)

func sameOwners(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d owners, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: owner[%d] = %d, want %d (first mismatch)", name, i, got[i], want[i])
		}
	}
}

func matchedCount(a *Assignment) int {
	n := 0
	for _, m := range a.Matched {
		if m {
			n++
		}
	}
	return n
}

// TestStampDirtyTasks pins the dirty-set derivation: per-chunk epochs mark
// exactly the tasks whose inputs moved, and the zero-value stamp is
// conservatively all-dirty.
func TestStampDirtyTasks(t *testing.T) {
	p, fs := buildSingle(t, 8, 24, 3, dfs.RandomPlacement{})
	st := StampProblem(p)
	if dirty := st.DirtyTasks(p); len(dirty) != 0 {
		t.Fatalf("dirty tasks with no mutation: %v", dirty)
	}

	// Move one replica of task 5's chunk: exactly task 5 dirties (the
	// single-data problem reads each chunk from exactly one task).
	target := p.Tasks[5].Inputs[0].Chunk
	c := fs.Chunk(target)
	var dst int
	for _, n := range fs.LiveNodes() {
		if !c.HostedOn(n) {
			dst = n
			break
		}
	}
	if err := fs.MoveReplica(target, c.Replicas[0], dst); err != nil {
		t.Fatal(err)
	}
	if dirty := st.DirtyTasks(p); len(dirty) != 1 || dirty[0] != 5 {
		t.Fatalf("dirty tasks after moving task 5's chunk: %v, want [5]", dirty)
	}

	if dirty := (PlanStamp{}).DirtyTasks(p); len(dirty) != len(p.Tasks) {
		t.Fatalf("zero-value stamp marked %d of %d tasks dirty, want all", len(dirty), len(p.Tasks))
	}
}

// TestWarmCleanReuseGolden: on the unchanged golden fixtures the warm path
// returns the prior plan itself — byte-identical to the cold solve the
// golden file pins, for every algorithm.
func TestWarmCleanReuseGolden(t *testing.T) {
	sp := goldenSingleProblem(t)
	for _, algo := range []bipartite.Algorithm{bipartite.EdmondsKarp, bipartite.Dinic, bipartite.Kuhn} {
		s := SingleData{Algorithm: algo, Seed: 7}
		cold, err := s.AssignContext(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		st := StampProblem(sp)
		warm, stats, err := s.AssignWarmContext(context.Background(), sp, cold, st)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Reused || stats.Seeded {
			t.Fatalf("%v: stats = %+v, want clean reuse", algo, stats)
		}
		if warm != cold {
			t.Fatalf("%v: clean reuse returned a different assignment", algo)
		}
		sameOwners(t, algo.String(), warm.Owner, cold.Owner)
	}
}

// TestWarmForcedSeedIdentityKuhn: even when the clean-reuse fast path is
// bypassed and the solver actually runs seeded (as it does after a
// mutation), an unchanged problem reproduces the cold plan byte for byte:
// the seeded matching is already maximum, so augmentation finds nothing,
// and the repair step replays the same seeded RNG over the same unmatched
// set.
func TestWarmForcedSeedIdentityKuhn(t *testing.T) {
	sp := goldenSingleProblem(t)
	s := SingleData{Algorithm: bipartite.Kuhn, Seed: 7}
	cold, err := s.AssignContext(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]int, len(cold.Owner))
	for i := range seed {
		seed[i] = -1
		if cold.Matched[i] {
			seed[i] = cold.Owner[i]
		}
	}
	warm, err := s.assign(context.Background(), sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	sameOwners(t, "forced-seed", warm.Owner, cold.Owner)
	if matchedCount(warm) != matchedCount(cold) {
		t.Fatalf("matched %d tasks warm, %d cold", matchedCount(warm), matchedCount(cold))
	}
}

// TestWarmAfterMutation drives AssignWarmContext through real placement
// changes: the warm solve must report the dirty set, produce a valid
// assignment, be deterministic, and (for Kuhn, where the matched count is
// the unique maximum matching size) match as many tasks as a cold solve of
// the mutated problem.
func TestWarmAfterMutation(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(t *testing.T, p *Problem, fs *dfs.FileSystem)
	}{
		{
			name: "replica-move",
			mutate: func(t *testing.T, p *Problem, fs *dfs.FileSystem) {
				id := p.Tasks[7].Inputs[0].Chunk
				c := fs.Chunk(id)
				for _, n := range fs.LiveNodes() {
					if !c.HostedOn(n) {
						if err := fs.MoveReplica(id, c.Replicas[0], n); err != nil {
							t.Fatal(err)
						}
						return
					}
				}
				t.Fatal("no destination node free of a replica")
			},
		},
		{
			name: "node-loss",
			mutate: func(t *testing.T, p *Problem, fs *dfs.FileSystem) {
				node := fs.Chunk(p.Tasks[0].Inputs[0].Chunk).Replicas[0]
				if _, _, err := fs.Crash(node); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	algos := []bipartite.Algorithm{bipartite.EdmondsKarp, bipartite.Dinic, bipartite.Kuhn}
	for _, mut := range mutations {
		t.Run(mut.name, func(t *testing.T) {
			for _, algo := range algos {
				p, fs := buildSingle(t, 16, 160, 11, dfs.RandomPlacement{})
				s := SingleData{Algorithm: algo, Seed: 7}
				prior, err := s.AssignContext(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				st := StampProblem(p)
				mut.mutate(t, p, fs)

				warm, stats, err := s.AssignWarmContext(context.Background(), p, prior, st)
				if err != nil {
					t.Fatal(err)
				}
				if !stats.Seeded || stats.Reused {
					t.Fatalf("%v: stats = %+v, want a seeded solve", algo, stats)
				}
				if stats.DirtyTasks == 0 || stats.DirtyTasks == len(p.Tasks) {
					t.Fatalf("%v: %d of %d tasks dirty; mutation not discriminating", algo, stats.DirtyTasks, len(p.Tasks))
				}
				if err := warm.Validate(p); err != nil {
					t.Fatalf("%v: warm assignment invalid: %v", algo, err)
				}
				again, _, err := s.AssignWarmContext(context.Background(), p, prior, st)
				if err != nil {
					t.Fatal(err)
				}
				sameOwners(t, algo.String()+"/determinism", again.Owner, warm.Owner)

				cold, err := s.AssignContext(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				if algo == bipartite.Kuhn && matchedCount(warm) != matchedCount(cold) {
					t.Fatalf("kuhn: warm matched %d tasks, cold %d (maximum matching size is unique)",
						matchedCount(warm), matchedCount(cold))
				}
			}
		})
	}
}

// TestWarmFallsBackCold: priors the warm path cannot trust — nil, wrong
// shape, or from a planner with no solver/repair split — downgrade to a
// plain cold solve, byte-identical to AssignContext.
func TestWarmFallsBackCold(t *testing.T) {
	p, _ := buildSingle(t, 8, 40, 5, dfs.RandomPlacement{})
	s := SingleData{Seed: 3}
	cold, err := s.AssignContext(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	st := StampProblem(p)
	priors := map[string]*Assignment{
		"nil-prior":   nil,
		"nil-matched": {Owner: append([]int(nil), cold.Owner...), Lists: cold.Lists},
		"wrong-shape": {Owner: []int{0, 1}, Matched: []bool{true, true}},
	}
	for name, prior := range priors {
		warm, stats, err := s.AssignWarmContext(context.Background(), p, prior, st)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Reused || stats.Seeded {
			t.Fatalf("%s: stats = %+v, want cold fallback", name, stats)
		}
		sameOwners(t, name, warm.Owner, cold.Owner)
	}
}
