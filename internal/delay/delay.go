// Package delay implements delay scheduling (Zaharia et al., EuroSys'10)
// as a master for the dynamic execution model. The paper's related-work
// section (§VI) positions delay scheduling as the established
// locality-improving scheduler Opass should be contrasted with, so this
// package provides it as a third point between the placement-oblivious
// random master and Opass's planned lists:
//
//   - if a remaining task has data on the idle worker's node, serve the one
//     with the most co-located bytes immediately;
//   - otherwise ask the worker to wait, up to MaxSkips polls, in the hope
//     that a local task frees up (other workers finishing change nothing
//     about *this* worker's locality here, but waiting lets the contended
//     cluster drain — the same trade delay scheduling makes);
//   - after MaxSkips waits, or when the whole cluster is stalled, give up
//     on locality and serve the remaining task with the most co-located
//     data, falling back to the lowest-numbered task.
package delay

import (
	"math/rand"

	"opass/internal/core"
	"opass/internal/engine"
)

// Dispatcher is a delay-scheduling master. It implements
// engine.PollingSource.
type Dispatcher struct {
	// MaxSkips is the number of times a worker may be asked to wait before
	// receiving a non-local task (the D parameter).
	MaxSkips int

	p         *core.Problem
	remaining map[int]bool
	skips     []int
	rng       *rand.Rand
}

// NewDispatcher builds a delay-scheduling master over every task of the
// problem. maxSkips <= 0 degenerates into locality-greedy immediate
// dispatch.
func NewDispatcher(p *core.Problem, maxSkips int, seed int64) *Dispatcher {
	remaining := make(map[int]bool, len(p.Tasks))
	for i := range p.Tasks {
		remaining[i] = true
	}
	return &Dispatcher{
		MaxSkips:  maxSkips,
		p:         p,
		remaining: remaining,
		skips:     make([]int, p.NumProcs()),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Remaining reports how many tasks have not been handed out.
func (d *Dispatcher) Remaining() int { return len(d.remaining) }

// Next satisfies engine.TaskSource so the Dispatcher can be passed to
// engine.Run (which then upgrades it to a PollingSource and uses Poll).
// Called directly, it dispatches without ever waiting.
func (d *Dispatcher) Next(proc int) (int, bool) {
	t, st := d.Poll(proc, true)
	return t, st == engine.PollTask
}

// Poll implements engine.PollingSource.
func (d *Dispatcher) Poll(proc int, stalled bool) (int, engine.PollState) {
	if len(d.remaining) == 0 {
		return 0, engine.PollDone
	}
	if t := d.pickLocal(proc); t >= 0 {
		d.skips[proc] = 0
		d.take(t)
		return t, engine.PollTask
	}
	if !stalled && d.skips[proc] < d.MaxSkips {
		d.skips[proc]++
		return 0, engine.PollWait
	}
	// Locality timeout: serve the best remaining task anyway.
	d.skips[proc] = 0
	t := d.pickBestRemaining(proc)
	d.take(t)
	return t, engine.PollTask
}

// pickLocal returns the remaining task with the most data co-located with
// proc, or -1 when none has any.
func (d *Dispatcher) pickLocal(proc int) int {
	best, bestW := -1, 0.0
	for t := range d.remaining {
		w := d.p.CoLocatedMB(proc, t)
		if w > bestW || (w == bestW && w > 0 && (best == -1 || t < best)) {
			best, bestW = t, w
		}
	}
	return best
}

// pickBestRemaining returns the remaining task with the most co-located
// data (usually zero here), breaking ties toward the lowest task ID so the
// run is deterministic.
func (d *Dispatcher) pickBestRemaining(proc int) int {
	best, bestW := -1, -1.0
	for t := range d.remaining {
		w := d.p.CoLocatedMB(proc, t)
		if w > bestW || (w == bestW && (best == -1 || t < best)) {
			best, bestW = t, w
		}
	}
	return best
}

func (d *Dispatcher) take(t int) {
	delete(d.remaining, t)
}
