package delay

import (
	"testing"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/workload"
)

func buildRig(t testing.TB, nodes, chunks int, seed int64) *workload.Rig {
	t.Helper()
	rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: chunks / nodes, Seed: seed}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func TestDispatcherServesEveryTaskOnce(t *testing.T) {
	rig := buildRig(t, 8, 40, 1)
	d := NewDispatcher(rig.Prob, 3, 1)
	seen := map[int]bool{}
	waits := 0
	for len(seen) < 40 {
		task, st := d.Poll(len(seen)%8, waits > 100)
		switch st {
		case engine.PollTask:
			if seen[task] {
				t.Fatalf("task %d served twice", task)
			}
			seen[task] = true
		case engine.PollWait:
			waits++
			if waits > 10000 {
				t.Fatal("dispatcher wedged in wait")
			}
		case engine.PollDone:
			t.Fatalf("done with %d tasks unserved", 40-len(seen))
		}
	}
	if _, st := d.Poll(0, false); st != engine.PollDone {
		t.Fatal("drained dispatcher must answer done")
	}
	if d.Remaining() != 0 {
		t.Fatal("remaining not zero")
	}
}

func TestDispatcherPrefersLocalTask(t *testing.T) {
	rig := buildRig(t, 8, 40, 2)
	d := NewDispatcher(rig.Prob, 3, 2)
	task, st := d.Poll(0, false)
	if st != engine.PollTask {
		// Process 0 might host nothing under this seed; then wait is fine.
		t.Skipf("proc 0 has no local task under this seed")
	}
	if rig.Prob.CoLocatedMB(0, task) == 0 {
		t.Fatalf("dispatcher served non-local task %d while local tasks existed", task)
	}
}

func TestDispatcherWaitsThenYields(t *testing.T) {
	// A problem where proc 1's node holds nothing: clustered placement puts
	// all replicas on nodes 0..2 of 8.
	rig, err := workload.SingleSpec{
		Nodes: 8, ChunksPerProc: 2, Seed: 3, Placement: dfs.ClusteredPlacement{},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(rig.Prob, 2, 3)
	// Process 7 has no local data ever: expect exactly MaxSkips waits, then
	// a forced task.
	for i := 0; i < 2; i++ {
		if _, st := d.Poll(7, false); st != engine.PollWait {
			t.Fatalf("poll %d: expected wait, got %v", i, st)
		}
	}
	if _, st := d.Poll(7, false); st != engine.PollTask {
		t.Fatalf("after MaxSkips expected a task, got %v", st)
	}
}

func TestDispatcherStalledForcesTask(t *testing.T) {
	rig, err := workload.SingleSpec{
		Nodes: 8, ChunksPerProc: 2, Seed: 4, Placement: dfs.ClusteredPlacement{},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(rig.Prob, 100, 4)
	if _, st := d.Poll(7, true); st != engine.PollTask {
		t.Fatalf("stalled poll must yield a task, got %v", st)
	}
}

func TestDispatcherEndToEndThroughEngine(t *testing.T) {
	rig := buildRig(t, 8, 40, 5)
	d := NewDispatcher(rig.Prob, 3, 5)
	res, err := engine.Run(engine.Options{
		Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob, Strategy: "delay",
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 40 {
		t.Fatalf("ran %d tasks, want 40", res.TasksRun)
	}
}

func TestDelayBeatsRandomLocality(t *testing.T) {
	// Delay scheduling's whole point: more local dispatches than a random
	// master, though generally fewer than Opass's planned matching.
	run := func(src engine.TaskSource, name string) *engine.Result {
		rig := buildRig(t, 16, 160, 6)
		var s engine.TaskSource
		switch name {
		case "delay":
			s = NewDispatcher(rig.Prob, 3, 6)
		case "random":
			s = core.NewRandomDispatcher(rig.Prob, 6)
		case "opass":
			plan, err := core.SingleData{Seed: 6}.Assign(rig.Prob)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := core.NewDynamicScheduler(rig.Prob, plan)
			if err != nil {
				t.Fatal(err)
			}
			s = sched
		}
		res, err := engine.Run(engine.Options{
			Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob, Strategy: name,
		}, s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	random := run(nil, "random")
	delayed := run(nil, "delay")
	opass := run(nil, "opass")
	if delayed.LocalFraction() <= random.LocalFraction() {
		t.Fatalf("delay locality %v <= random %v", delayed.LocalFraction(), random.LocalFraction())
	}
	if opass.LocalFraction() < delayed.LocalFraction() {
		t.Fatalf("opass locality %v below delay %v", opass.LocalFraction(), delayed.LocalFraction())
	}
	_ = cluster.Marmot()
}
