package dfs

import (
	"fmt"
	"math"
	"sort"
)

// This file adds per-chunk access accounting to the namenode — the telemetry
// half of the adaptive replication loop (ROADMAP item 2). The engine's read
// path reports every chunk read here; the replication advisor
// (internal/advisor) classifies chunks hot/warm/cold from the decayed scores
// and drives the replica machinery (SetReplicationTarget, AddReplica,
// RemoveReplica, ReReplicate) to close the telemetry→placement loop. The
// scheme follows the weighted dynamic-replication literature (temporal
// locality via exponentially decayed access counters, popularity degree
// relative to the mean): a read contributes a unit impulse that halves every
// HalfLife seconds of simulated time, so recent access dominates and
// formerly-hot data cools off on its own.

// AccessStats is the decayed access record of one chunk at a given time.
// Scores are decayed counters, not rates: each read adds 1 to Reads (and
// SizeMB to ServedMB), and all scores halve every HalfLife seconds. Their
// absolute unit is therefore meaningless on its own — classification
// compares a chunk's score against the fleet mean (the popularity degree).
type AccessStats struct {
	// Reads is the decayed read count.
	Reads float64
	// ServedMB is the decayed megabytes served from any replica.
	ServedMB float64
	// RemoteMB is the decayed megabytes served to readers with no local
	// replica — the demand the matcher failed to place locally.
	RemoteMB float64
	// TotalReads counts every read ever recorded (no decay).
	TotalReads uint64
}

// accessEntry is the mutable per-chunk accounting state.
type accessEntry struct {
	last       float64 // simulated time of the last decay
	reads      float64
	servedMB   float64
	remoteMB   float64
	totalReads uint64
	// remoteBy tallies decayed remote megabytes by reader node, so the
	// advisor can place a new replica where the remote demand actually
	// originates. Only populated on remote reads; small in practice (a chunk
	// has few distinct remote readers per decay window).
	remoteBy map[int]float64
}

// decayTo folds the exponential decay from e.last to now into the scores.
func (e *accessEntry) decayTo(now, halfLife float64) {
	if now <= e.last {
		return
	}
	f := math.Exp2(-(now - e.last) / halfLife)
	e.reads *= f
	e.servedMB *= f
	e.remoteMB *= f
	for n, mb := range e.remoteBy {
		mb *= f
		if mb < 1e-6 {
			delete(e.remoteBy, n) // fully cooled: drop the tally entry
			continue
		}
		e.remoteBy[n] = mb
	}
	e.last = now
}

// accessStats is the file-system-wide accounting switchboard; nil until
// EnableAccessStats, so recording costs one pointer test when disabled.
type accessStats struct {
	halfLife float64
	entries  map[ChunkID]*accessEntry
}

// EnableAccessStats turns on per-chunk access accounting with the given
// decay half-life in seconds of simulated time (scores halve every halfLife
// seconds). It must be called before the reads it should observe; enabling
// twice resets the accounting with the new half-life. Access accounting
// shares the file system's single-goroutine discipline: callers must not
// record concurrently with metadata mutations.
func (fs *FileSystem) EnableAccessStats(halfLife float64) {
	if halfLife <= 0 {
		panic(fmt.Sprintf("dfs: access half-life %v must be positive", halfLife))
	}
	fs.access = &accessStats{halfLife: halfLife, entries: make(map[ChunkID]*accessEntry)}
}

// AccessStatsEnabled reports whether the file system is accounting reads.
func (fs *FileSystem) AccessStatsEnabled() bool { return fs.access != nil }

// RecordRead accounts one chunk read served at simulated time now: reader is
// the reading process's node and local whether the read was served from the
// reader's own disk. A no-op until EnableAccessStats. The engine's read
// paths call this for every read they start.
func (fs *FileSystem) RecordRead(id ChunkID, reader int, local bool, sizeMB, now float64) {
	a := fs.access
	if a == nil {
		return
	}
	e := a.entries[id]
	if e == nil {
		e = &accessEntry{last: now}
		a.entries[id] = e
	}
	e.decayTo(now, a.halfLife)
	e.reads++
	e.servedMB += sizeMB
	e.totalReads++
	if !local {
		e.remoteMB += sizeMB
		if e.remoteBy == nil {
			e.remoteBy = make(map[int]float64, 4)
		}
		e.remoteBy[reader] += sizeMB
	}
}

// Access returns the chunk's decayed access scores at simulated time now.
// A chunk never read (or accounting disabled) reports zeros.
func (fs *FileSystem) Access(id ChunkID, now float64) AccessStats {
	a := fs.access
	if a == nil {
		return AccessStats{}
	}
	e := a.entries[id]
	if e == nil {
		return AccessStats{}
	}
	e.decayTo(now, a.halfLife)
	return AccessStats{
		Reads:      e.reads,
		ServedMB:   e.servedMB,
		RemoteMB:   e.remoteMB,
		TotalReads: e.totalReads,
	}
}

// RemoteReaders returns the nodes that read the chunk remotely, ordered by
// decayed remote megabytes (hottest first, ties by ascending node ID), at
// simulated time now. The advisor places new replicas at the head of this
// list — the node whose process keeps pulling the chunk over the network.
func (fs *FileSystem) RemoteReaders(id ChunkID, now float64) []int {
	a := fs.access
	if a == nil {
		return nil
	}
	e := a.entries[id]
	if e == nil || len(e.remoteBy) == 0 {
		return nil
	}
	e.decayTo(now, a.halfLife)
	if len(e.remoteBy) == 0 {
		return nil // every tally cooled below the floor during the decay
	}
	nodes := make([]int, 0, len(e.remoteBy))
	for n := range e.remoteBy {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		mi, mj := e.remoteBy[nodes[i]], e.remoteBy[nodes[j]]
		if mi != mj {
			return mi > mj
		}
		return nodes[i] < nodes[j]
	})
	return nodes
}

// RemoteReadMB returns the decayed remote megabytes each node pulled from
// the chunk at simulated time now, as a fresh map the caller may mutate.
// The rack-aware advisor aggregates it per rack to find the hottest remote
// rack lacking a copy. Nil when access accounting is off or nothing remote
// was recorded.
func (fs *FileSystem) RemoteReadMB(id ChunkID, now float64) map[int]float64 {
	a := fs.access
	if a == nil {
		return nil
	}
	e := a.entries[id]
	if e == nil || len(e.remoteBy) == 0 {
		return nil
	}
	e.decayTo(now, a.halfLife)
	if len(e.remoteBy) == 0 {
		return nil
	}
	out := make(map[int]float64, len(e.remoteBy))
	for n, mb := range e.remoteBy {
		out[n] = mb
	}
	return out
}

// SetReplicationTarget sets the chunk's replication target — the HDFS
// setrep call as a pure metadata operation. Unlike AddReplica/RemoveReplica
// (which move the target implicitly as copies appear and vanish) this only
// declares the intended redundancy: raising it above the current replica
// count queues the chunk for ReReplicate; lowering it below leaves the
// excess copies in place until an explicit RemoveReplica trims them (the
// advisor chooses which holder to relieve). The target must be at least 1.
// A changed target bumps the placement epoch: the chunk's repair semantics
// changed, and conservative invalidation of plans that read it is cheap.
func (fs *FileSystem) SetReplicationTarget(id ChunkID, target int) error {
	c := fs.Chunk(id)
	if target < 1 {
		return fmt.Errorf("dfs: set replication target of chunk %d: target %d must be >= 1", id, target)
	}
	if c.target == target {
		return nil
	}
	c.target = target
	fs.bumpEpoch(id)
	return nil
}

// TotalStoredMB sums the stored megabytes over all live nodes — the storage
// bill the advisor keeps within budget.
func (fs *FileSystem) TotalStoredMB() float64 {
	var s float64
	for _, n := range fs.liveNodes() {
		s += fs.StoredMB(n)
	}
	return s
}
