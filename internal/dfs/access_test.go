package dfs

import (
	"math"
	"reflect"
	"testing"
)

func TestRecordReadNoOpUntilEnabled(t *testing.T) {
	fs := newFS(4, 1)
	f, err := fs.Create("/a", 64)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Chunks[0]
	fs.RecordRead(id, 0, true, 64, 1)
	if got := fs.Access(id, 2); got != (AccessStats{}) {
		t.Fatalf("accounting recorded while disabled: %+v", got)
	}
	if fs.AccessStatsEnabled() {
		t.Fatal("AccessStatsEnabled reports true before EnableAccessStats")
	}
}

func TestAccessScoresDecayWithHalfLife(t *testing.T) {
	fs := newFS(4, 1)
	f, err := fs.Create("/a", 64)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Chunks[0]
	fs.EnableAccessStats(10) // scores halve every 10 simulated seconds
	fs.RecordRead(id, 1, false, 64, 0)
	got := fs.Access(id, 0)
	if got.Reads != 1 || got.ServedMB != 64 || got.RemoteMB != 64 || got.TotalReads != 1 {
		t.Fatalf("fresh read scores = %+v", got)
	}
	got = fs.Access(id, 10)
	if math.Abs(got.Reads-0.5) > 1e-9 || math.Abs(got.ServedMB-32) > 1e-9 {
		t.Fatalf("after one half-life: %+v", got)
	}
	if got.TotalReads != 1 {
		t.Fatalf("TotalReads decayed: %+v", got)
	}
	// A second read on the decayed entry stacks on top of the residue.
	fs.RecordRead(id, 1, true, 64, 10)
	got = fs.Access(id, 10)
	if math.Abs(got.Reads-1.5) > 1e-9 || math.Abs(got.ServedMB-96) > 1e-9 {
		t.Fatalf("stacked read scores = %+v", got)
	}
	if math.Abs(got.RemoteMB-32) > 1e-9 { // the second read was local
		t.Fatalf("remote MB = %v, want 32", got.RemoteMB)
	}
}

func TestRemoteReadersOrderedByDemand(t *testing.T) {
	fs := newFS(8, 1)
	f, err := fs.Create("/a", 64)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Chunks[0]
	fs.EnableAccessStats(100)
	fs.RecordRead(id, 5, false, 64, 0)
	fs.RecordRead(id, 5, false, 64, 1)
	fs.RecordRead(id, 3, false, 64, 2)
	fs.RecordRead(id, 7, true, 64, 3) // local: must not appear
	if got, want := fs.RemoteReaders(id, 3), []int{5, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("remote readers = %v, want %v", got, want)
	}
	// Far in the future everything has cooled below the tally floor.
	if got := fs.RemoteReaders(id, 1e6); got != nil {
		t.Fatalf("remote readers after full decay = %v, want none", got)
	}
}

func TestSetReplicationTarget(t *testing.T) {
	fs := newFS(6, 1)
	f, err := fs.Create("/a", 64)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Chunks[0]
	if err := fs.SetReplicationTarget(id, 0); err == nil {
		t.Fatal("target 0 accepted")
	}
	e0 := fs.Epoch()
	if err := fs.SetReplicationTarget(id, 5); err != nil {
		t.Fatal(err)
	}
	if got := fs.Chunk(id).ReplicationTarget(); got != 5 {
		t.Fatalf("target = %d, want 5", got)
	}
	if fs.Epoch() <= e0 {
		t.Fatal("target change did not bump the placement epoch")
	}
	if len(fs.Chunk(id).Replicas) != 3 {
		t.Fatalf("setrep moved replicas: %v", fs.Chunk(id).Replicas)
	}
	// Same target again: a no-op, no epoch churn.
	e1 := fs.Epoch()
	if err := fs.SetReplicationTarget(id, 5); err != nil {
		t.Fatal(err)
	}
	if fs.Epoch() != e1 {
		t.Fatal("no-op setrep bumped the epoch")
	}
	// ReReplicate fills toward the declared target.
	if repaired := fs.ReReplicate(); repaired != 1 {
		t.Fatalf("repaired = %d, want 1", repaired)
	}
	if got := len(fs.Chunk(id).Replicas); got != 5 {
		t.Fatalf("replicas after repair = %d, want 5", got)
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck: %v", problems)
	}
}

func TestTotalStoredMB(t *testing.T) {
	fs := newFS(4, 1)
	if _, err := fs.Create("/a", 128); err != nil { // 2 chunks x 3 replicas
		t.Fatal(err)
	}
	if got := fs.TotalStoredMB(); got != 384 {
		t.Fatalf("total stored = %v, want 384", got)
	}
}
