package dfs

import (
	"fmt"
	"sort"
)

// This file implements the cluster-administration operations the paper
// identifies as the sources of unbalanced data distribution: "node addition
// or removal could cause an unbalanced redistribution of data" (§IV-B).
// They let the experiments construct exactly those skewed layouts and then
// measure how Opass's leftover-assignment repair behaves.

// AddNode registers a fresh (empty) node with the namenode. The node ID must
// be within the cluster view and not already live. Newly added nodes hold no
// replicas until the balancer runs — the skew scenario from the paper.
func (fs *FileSystem) AddNode(node int) error {
	if node < 0 || node >= fs.view.NumNodes() {
		return fmt.Errorf("dfs: add node %d: outside cluster view of %d nodes", node, fs.view.NumNodes())
	}
	if !fs.dead[node] {
		return fmt.Errorf("dfs: add node %d: already live", node)
	}
	delete(fs.dead, node)
	fs.bumpEpoch()
	return nil
}

// MarkDead pre-declares a node as not-yet-live so that datasets can be
// created before the node "joins". It fails if the node already hosts
// replicas (decommission instead).
func (fs *FileSystem) MarkDead(node int) error {
	if node < 0 || node >= fs.view.NumNodes() {
		return fmt.Errorf("dfs: mark dead %d: outside cluster view", node)
	}
	if len(fs.perNode[node]) > 0 {
		return fmt.Errorf("dfs: mark dead %d: node hosts %d replicas; use Decommission", node, len(fs.perNode[node]))
	}
	fs.dead[node] = true
	fs.bumpEpoch()
	return nil
}

// Decommission removes a node and re-replicates every chunk it hosted onto
// live nodes that do not already hold a copy, as the HDFS namenode does when
// a datanode is retired. It returns the number of replicas moved.
func (fs *FileSystem) Decommission(node int) (moved int, err error) {
	if node < 0 || node >= fs.view.NumNodes() {
		return 0, fmt.Errorf("dfs: decommission %d: outside cluster view", node)
	}
	if fs.dead[node] {
		return 0, fmt.Errorf("dfs: decommission %d: node is not live", node)
	}
	hosted := append([]ChunkID(nil), fs.perNode[node]...)
	fs.dead[node] = true
	delete(fs.perNode, node)
	live := fs.liveNodes()
	for _, id := range hosted {
		c := fs.chunks[int(id)]
		// Drop the dead replica.
		out := c.Replicas[:0]
		for _, r := range c.Replicas {
			if r != node {
				out = append(out, r)
			}
		}
		c.Replicas = out
		// Re-replicate onto a live node without a copy, restoring rack
		// diversity when the topology spans racks.
		dst := fs.repairTarget(c, live)
		if dst < 0 {
			// Cluster smaller than the replication factor; accept the
			// reduced redundancy, as HDFS does.
			continue
		}
		c.Replicas = append(c.Replicas, dst)
		sort.Ints(c.Replicas)
		fs.perNode[dst] = append(fs.perNode[dst], id)
		moved++
	}
	fs.bumpEpoch(hosted...)
	return moved, nil
}

// Crash records an unplanned DataNode loss, as the namenode does when a
// datanode misses its heartbeats: the node is marked dead and every replica
// it hosted is dropped from the chunk metadata. Unlike Decommission nothing
// is copied here — repair is a separate, slower pass (ReReplicate), and the
// window between the two is exactly what the engine's fault injection
// studies. It returns the chunks left under-replicated and the chunks that
// lost their last replica (unreadable until the node returns). Crashing an
// already-dead node is a no-op.
func (fs *FileSystem) Crash(node int) (underReplicated, lost []ChunkID, err error) {
	if node < 0 || node >= fs.view.NumNodes() {
		return nil, nil, fmt.Errorf("dfs: crash %d: outside cluster view of %d nodes", node, fs.view.NumNodes())
	}
	if fs.dead[node] {
		return nil, nil, nil
	}
	hosted := append([]ChunkID(nil), fs.perNode[node]...)
	sort.Slice(hosted, func(i, j int) bool { return hosted[i] < hosted[j] })
	fs.dead[node] = true
	delete(fs.perNode, node)
	for _, id := range hosted {
		c := fs.chunks[int(id)]
		out := c.Replicas[:0]
		for _, r := range c.Replicas {
			if r != node {
				out = append(out, r)
			}
		}
		c.Replicas = out
		switch {
		case len(c.Replicas) == 0:
			lost = append(lost, id)
		case len(c.Replicas) < c.target:
			underReplicated = append(underReplicated, id)
		}
	}
	fs.bumpEpoch(hosted...)
	return underReplicated, lost, nil
}

// repairTarget picks the destination for a new copy of c: a live node
// without one, preferring nodes in racks that do not yet hold a replica so
// repair restores the rack diversity the placement policy established
// (HDFS's replication monitor applies the same spread rule). Exactly one
// random draw happens per pick, so on single-rack clusters — where the
// preferred pool is always empty — both the choice and the RNG stream are
// identical to the old rack-oblivious pick. Returns -1 when every live node
// already holds a copy.
func (fs *FileSystem) repairTarget(c *Chunk, live []int) int {
	candidates := filter(live, func(n int) bool { return !c.HostedOn(n) })
	if len(candidates) == 0 {
		return -1
	}
	pool := filter(candidates, func(n int) bool {
		r := fs.view.RackOf(n)
		for _, rep := range c.Replicas {
			if fs.view.RackOf(rep) == r {
				return false
			}
		}
		return true
	})
	if len(pool) == 0 {
		pool = candidates
	}
	return pool[fs.rng.Intn(len(pool))]
}

// ReReplicate works through the namenode's needed-replications queue: every
// chunk below its replication target gains copies from surviving holders
// onto live nodes without one, until the target (or the live-node count) is
// reached. Chunks with no surviving replica cannot be repaired and are
// skipped. It returns the number of chunks repaired and bumps the
// placement epoch when any replica was created, invalidating cached plans.
func (fs *FileSystem) ReReplicate() (repaired int) {
	live := fs.liveNodes()
	var touched []ChunkID
	for _, c := range fs.chunks {
		if c.deleted || len(c.Replicas) == 0 || len(c.Replicas) >= c.target {
			continue
		}
		added := false
		for len(c.Replicas) < c.target {
			dst := fs.repairTarget(c, live)
			if dst < 0 {
				break // cluster smaller than the factor; accept reduced redundancy
			}
			c.Replicas = append(c.Replicas, dst)
			sort.Ints(c.Replicas)
			fs.perNode[dst] = append(fs.perNode[dst], c.ID)
			added = true
		}
		if added {
			repaired++
			touched = append(touched, c.ID)
		}
	}
	if repaired > 0 {
		fs.bumpEpoch(touched...)
	}
	return repaired
}

// AddReplica places an extra copy of a chunk on node (increasing its
// replication), as the namenode does when re-replicating or when a
// redistribution tool requests a new copy.
func (fs *FileSystem) AddReplica(id ChunkID, node int) error {
	c := fs.Chunk(id)
	if node < 0 || node >= fs.view.NumNodes() || fs.dead[node] {
		return fmt.Errorf("dfs: add replica of chunk %d: node %d not live", id, node)
	}
	if c.HostedOn(node) {
		return fmt.Errorf("dfs: chunk %d already has a replica on node %d", id, node)
	}
	c.Replicas = append(c.Replicas, node)
	sort.Ints(c.Replicas)
	if len(c.Replicas) > c.target {
		c.target = len(c.Replicas)
	}
	fs.perNode[node] = append(fs.perNode[node], id)
	fs.bumpEpoch(id)
	return nil
}

// RemoveReplica drops the copy of a chunk on node and lowers the chunk's
// replication target to match (HDFS setrep semantics: an explicit removal
// means the lower redundancy is intended, so repair must not undo it). It
// refuses to remove the last replica.
func (fs *FileSystem) RemoveReplica(id ChunkID, node int) error {
	c := fs.Chunk(id)
	if !c.HostedOn(node) {
		return fmt.Errorf("dfs: chunk %d has no replica on node %d", id, node)
	}
	if len(c.Replicas) <= 1 {
		return fmt.Errorf("dfs: refusing to remove the last replica of chunk %d", id)
	}
	out := c.Replicas[:0]
	for _, r := range c.Replicas {
		if r != node {
			out = append(out, r)
		}
	}
	c.Replicas = out
	if c.target > len(c.Replicas) {
		c.target = len(c.Replicas)
	}
	hosted := fs.perNode[node][:0]
	for _, h := range fs.perNode[node] {
		if h != id {
			hosted = append(hosted, h)
		}
	}
	fs.perNode[node] = hosted
	fs.bumpEpoch(id)
	return nil
}

// MoveReplica relocates one copy of a chunk from src to dst. The chunk's
// replication target is preserved — a move is not a setrep, even though it
// is built from an add and a remove.
func (fs *FileSystem) MoveReplica(id ChunkID, src, dst int) error {
	tgt := fs.Chunk(id).target
	if err := fs.AddReplica(id, dst); err != nil {
		return err
	}
	if err := fs.RemoveReplica(id, src); err != nil {
		// Roll back the add so the operation is atomic.
		if rbErr := fs.RemoveReplica(id, dst); rbErr != nil {
			return fmt.Errorf("dfs: move replica rollback failed: %v (after %w)", rbErr, err)
		}
		fs.Chunk(id).target = tgt
		return err
	}
	fs.Chunk(id).target = tgt
	return nil
}

// Fsck verifies the namenode's internal consistency, like its namesake:
// every replica list entry has a matching per-node index entry and vice
// versa, replicas are distinct and live, file sizes equal the sum of their
// chunks, and every chunk belongs to exactly one file. It returns the list
// of problems found (empty means healthy). The mutation-heavy operations
// (balancer, decommission, redistribution) are fuzzed against it.
func (fs *FileSystem) Fsck() []string {
	var problems []string
	// Replica lists vs per-node index.
	indexed := map[ChunkID]map[int]bool{}
	for node, ids := range fs.perNode {
		for _, id := range ids {
			if indexed[id] == nil {
				indexed[id] = map[int]bool{}
			}
			if indexed[id][node] {
				problems = append(problems, fmt.Sprintf("node %d indexes chunk %d twice", node, id))
			}
			indexed[id][node] = true
		}
	}
	chunkOwner := map[ChunkID]string{}
	for _, c := range fs.chunks {
		if c.deleted {
			if len(c.Replicas) != 0 || len(indexed[c.ID]) != 0 {
				problems = append(problems, fmt.Sprintf("deleted chunk %d still has replicas", c.ID))
			}
			continue
		}
		seen := map[int]bool{}
		for _, r := range c.Replicas {
			if seen[r] {
				problems = append(problems, fmt.Sprintf("chunk %d lists node %d twice", c.ID, r))
			}
			seen[r] = true
			if fs.dead[r] {
				problems = append(problems, fmt.Sprintf("chunk %d has a replica on dead node %d", c.ID, r))
			}
			if !indexed[c.ID][r] {
				problems = append(problems, fmt.Sprintf("chunk %d replica on node %d missing from index", c.ID, r))
			}
		}
		if len(indexed[c.ID]) != len(c.Replicas) {
			problems = append(problems, fmt.Sprintf("chunk %d indexed on %d nodes but lists %d replicas",
				c.ID, len(indexed[c.ID]), len(c.Replicas)))
		}
		chunkOwner[c.ID] = c.File
	}
	// Files vs chunks.
	for _, name := range fs.order {
		f := fs.files[name]
		var sum float64
		for _, id := range f.Chunks {
			c := fs.Chunk(id)
			if c.File != name {
				problems = append(problems, fmt.Sprintf("file %q claims chunk %d owned by %q", name, id, c.File))
			}
			sum += c.SizeMB
			delete(chunkOwner, id)
		}
		if diff := sum - f.SizeMB; diff > 1e-6 || diff < -1e-6 {
			problems = append(problems, fmt.Sprintf("file %q size %v != chunk sum %v", name, f.SizeMB, sum))
		}
	}
	for id, owner := range chunkOwner {
		problems = append(problems, fmt.Sprintf("orphan chunk %d (file %q not in namespace)", id, owner))
	}
	return problems
}

// BalanceReport summarizes per-node storage utilization.
type BalanceReport struct {
	MeanMB float64
	MaxMB  float64
	MinMB  float64
	// Overloaded and Underloaded list nodes beyond the threshold around the
	// mean used by the balancer.
	Overloaded  []int
	Underloaded []int
}

// Utilization computes a balance report with the given relative threshold
// (e.g. 0.1 flags nodes more than 10% above/below the mean).
func (fs *FileSystem) Utilization(threshold float64) BalanceReport {
	live := fs.liveNodes()
	rep := BalanceReport{MinMB: -1}
	var total float64
	for _, n := range live {
		s := fs.StoredMB(n)
		total += s
		if s > rep.MaxMB {
			rep.MaxMB = s
		}
		if rep.MinMB < 0 || s < rep.MinMB {
			rep.MinMB = s
		}
	}
	if len(live) == 0 {
		rep.MinMB = 0 // the -1 above is a loop sentinel, not a result
		return rep
	}
	rep.MeanMB = total / float64(len(live))
	for _, n := range live {
		s := fs.StoredMB(n)
		switch {
		case s > rep.MeanMB*(1+threshold):
			rep.Overloaded = append(rep.Overloaded, n)
		case s < rep.MeanMB*(1-threshold):
			rep.Underloaded = append(rep.Underloaded, n)
		}
	}
	return rep
}

// Balance runs an HDFS-balancer-like pass: repeatedly move one replica from
// the most loaded node to the least loaded node that does not already host
// a copy, until every node is within threshold of the mean or no legal move
// exists. It returns the number of replicas moved.
func (fs *FileSystem) Balance(threshold float64) int {
	if threshold <= 0 {
		threshold = 0.1
	}
	moved := 0
	for iter := 0; iter < 10*len(fs.chunks)+10; iter++ {
		rep := fs.Utilization(threshold)
		if len(rep.Overloaded) == 0 || len(rep.Underloaded) == 0 {
			break
		}
		src := fs.mostLoaded(rep.Overloaded)
		dst := fs.leastLoaded(rep.Underloaded)
		if !fs.moveOneReplica(src, dst, fs.StoredMB(src)-rep.MeanMB) {
			break
		}
		moved++
	}
	return moved
}

func (fs *FileSystem) mostLoaded(nodes []int) int {
	best, bestMB := nodes[0], -1.0
	for _, n := range nodes {
		if s := fs.StoredMB(n); s > bestMB {
			best, bestMB = n, s
		}
	}
	return best
}

func (fs *FileSystem) leastLoaded(nodes []int) int {
	best := nodes[0]
	bestMB := fs.StoredMB(best)
	for _, n := range nodes[1:] {
		if s := fs.StoredMB(n); s < bestMB {
			best, bestMB = n, s
		}
	}
	return best
}

// moveOneReplica relocates one replica from src to dst. It picks the
// largest movable chunk that fits within the donor's overage (how far src
// sits above the mean), so a move never swings the donor from overloaded to
// underloaded: an unbounded largest-chunk pick can overshoot past the mean
// and leave Balance ping-ponging one big chunk between two nodes until the
// iteration cap. When every movable chunk exceeds the overage, it falls
// back to the smallest movable chunk, and only if moving it still strictly
// shrinks the src/dst gap — otherwise no move helps and the balancer stops.
func (fs *FileSystem) moveOneReplica(src, dst int, overageMB float64) bool {
	var pick, smallest ChunkID = -1, -1
	var pickSize, smallestSize float64
	for _, id := range fs.perNode[src] {
		c := fs.chunks[int(id)]
		if c.HostedOn(dst) {
			continue
		}
		if c.SizeMB <= overageMB && c.SizeMB > pickSize {
			pick, pickSize = id, c.SizeMB
		}
		if smallest < 0 || c.SizeMB < smallestSize {
			smallest, smallestSize = id, c.SizeMB
		}
	}
	if pick < 0 {
		if smallest < 0 || smallestSize >= fs.StoredMB(src)-fs.StoredMB(dst) {
			return false
		}
		pick = smallest
	}
	c := fs.chunks[int(pick)]
	out := c.Replicas[:0]
	for _, r := range c.Replicas {
		if r != src {
			out = append(out, r)
		}
	}
	c.Replicas = append(out, dst)
	sort.Ints(c.Replicas)
	hosted := fs.perNode[src][:0]
	for _, id := range fs.perNode[src] {
		if id != pick {
			hosted = append(hosted, id)
		}
	}
	fs.perNode[src] = hosted
	fs.perNode[dst] = append(fs.perNode[dst], pick)
	fs.bumpEpoch(pick)
	return true
}
