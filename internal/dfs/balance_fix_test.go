package dfs

import (
	"reflect"
	"testing"
)

// TestUtilizationEmptyClusterClampsMin pins the MinMB sentinel bug: with no
// live nodes the -1 loop sentinel used to leak into the report.
func TestUtilizationEmptyClusterClampsMin(t *testing.T) {
	fs := newFS(2, 1)
	for n := 0; n < 2; n++ {
		if err := fs.MarkDead(n); err != nil {
			t.Fatal(err)
		}
	}
	rep := fs.Utilization(0.1)
	if rep.MinMB != 0 {
		t.Fatalf("MinMB = %v, want 0 (internal sentinel leaked)", rep.MinMB)
	}
	if rep.MaxMB != 0 || rep.MeanMB != 0 || rep.Overloaded != nil || rep.Underloaded != nil {
		t.Fatalf("empty-cluster report = %+v, want zeros", rep)
	}
}

// TestBalanceOvershootConverges pins the moveOneReplica overshoot bug: one
// 100 MB chunk plus small change on the donor used to ping-pong the big
// chunk between donor and recipient until the iteration cap, because the
// pick was always the single largest movable chunk regardless of how far
// above the mean the donor actually sat.
func TestBalanceOvershootConverges(t *testing.T) {
	// Replication 1 so every chunk has exactly one movable copy.
	// Node 0: 100 + 5x4 = 120 MB. Nodes 1-3: 40 MB each. Mean 60,
	// threshold 0.1 -> bounds [54, 66].
	fs := New(testView(4), Config{
		Replication: 1,
		Placement: FixedPlacement{Replicas: [][]int{
			{0}, {0}, {0}, {0}, {0}, {0}, // /big: 100 + 5x4
			{1}, {2}, {3}, // /n1 /n2 /n3: 40 each
		}},
	})
	if _, err := fs.CreateChunks("/big", []float64{100, 4, 4, 4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"/n1", "/n2", "/n3"} {
		if _, err := fs.CreateChunks(n, []float64{40}); err != nil {
			t.Fatalf("create %s (%d): %v", n, i, err)
		}
	}
	bigID := ChunkID(0)

	moved := fs.Balance(0.1)
	// Only the five 4 MB chunks fit the donor's 60 MB overage; the 100 MB
	// chunk must never move (it would swing node 0 from overloaded to
	// underloaded and oscillate). The old code burned the full iteration
	// cap (10*chunks+10 = 100 moves) bouncing it.
	if moved > 5 {
		t.Fatalf("moved = %d replicas, want <= 5 (oscillation)", moved)
	}
	if !fs.Chunk(bigID).HostedOn(0) {
		t.Fatalf("the 100 MB chunk left the donor: replicas %v", fs.Chunk(bigID).Replicas)
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after balance: %v", problems)
	}
	// The pass strictly improved the spread and never made any node worse
	// than the initial maximum.
	rep := fs.Utilization(0.1)
	if rep.MaxMB >= 120 {
		t.Fatalf("max load %v did not improve from 120", rep.MaxMB)
	}
	if rep.MaxMB-rep.MinMB >= 120-40 {
		t.Fatalf("spread %v did not shrink from 80", rep.MaxMB-rep.MinMB)
	}
	if got := fs.TotalStoredMB(); got != 240 {
		t.Fatalf("total stored changed: %v, want 240", got)
	}
}

// TestBalanceStillConvergesOnUniformChunks guards the common case: with
// movable chunks well under the overage the balancer behaves as before and
// reaches the threshold band.
func TestBalanceStillConvergesOnUniformChunks(t *testing.T) {
	rows := make([][]int, 12)
	for i := range rows {
		rows[i] = []int{0} // all twelve 10 MB chunks start on node 0
	}
	fs := New(testView(4), Config{Replication: 1, Placement: FixedPlacement{Replicas: rows}})
	sizes := make([]float64, 12)
	for i := range sizes {
		sizes[i] = 10
	}
	if _, err := fs.CreateChunks("/skew", sizes); err != nil {
		t.Fatal(err)
	}
	fs.Balance(0.1)
	rep := fs.Utilization(0.1)
	if len(rep.Overloaded) != 0 || len(rep.Underloaded) != 0 {
		t.Fatalf("unbalanced after pass: %+v", rep)
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck: %v", problems)
	}
}

// TestMoveReplicaRollbackRestoresState pins the MoveReplica failure path: a
// forced remove failure (the claimed source never hosted the chunk, the
// same state a source dying between the add and the remove leaves behind)
// must roll back the added copy, restore the replication target, and leave
// the replica list sorted.
func TestMoveReplicaRollbackRestoresState(t *testing.T) {
	fs := New(testView(5), Config{
		Replication: 3,
		Placement:   FixedPlacement{Replicas: [][]int{{0, 1, 2}}},
	})
	f, err := fs.Create("/a", 64)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Chunks[0]
	// Declare a target above the replica count so the restore is
	// observable: the rollback's RemoveReplica lowers the target to the
	// replica count, and only the explicit restore puts it back to 4.
	if err := fs.SetReplicationTarget(id, 4); err != nil {
		t.Fatal(err)
	}

	if err := fs.MoveReplica(id, 4, 3); err == nil {
		t.Fatal("move from a non-holder succeeded")
	}
	c := fs.Chunk(id)
	if got, want := c.Replicas, []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("replicas after rollback = %v, want %v", got, want)
	}
	if got := c.ReplicationTarget(); got != 4 {
		t.Fatalf("target after rollback = %d, want 4 restored", got)
	}
	if got := fs.HostedBy(3); len(got) != 0 {
		t.Fatalf("rolled-back destination still indexes %v", got)
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after rollback: %v", problems)
	}

	// The success path preserves a sticky target too (a move is not a
	// setrep, even though it is built from an add and a remove).
	if err := fs.MoveReplica(id, 0, 3); err != nil {
		t.Fatal(err)
	}
	c = fs.Chunk(id)
	if got, want := c.Replicas, []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("replicas after move = %v, want %v", got, want)
	}
	if got := c.ReplicationTarget(); got != 4 {
		t.Fatalf("target after successful move = %d, want 4 preserved", got)
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after move: %v", problems)
	}
}
