package dfs

import (
	"errors"
	"testing"
)

func TestCreateChunksReplicated(t *testing.T) {
	fs := New(testView(6), Config{Seed: 1})
	before := fs.Epoch()
	f, err := fs.CreateChunksReplicated("/bulk", []float64{64, 32, 16}, [][]int{
		{3, 1},    // unsorted on purpose
		{5},       // single replica despite default replication 3
		{0, 2, 4}, // triple
	})
	if err != nil {
		t.Fatalf("CreateChunksReplicated: %v", err)
	}
	if got := fs.Epoch(); got != before+1 {
		t.Fatalf("epoch bumped %d times, want exactly 1", got-before)
	}
	if f.SizeMB != 112 {
		t.Fatalf("file size %v, want 112", f.SizeMB)
	}
	wantReplicas := [][]int{{1, 3}, {5}, {0, 2, 4}}
	for i, id := range f.Chunks {
		c := fs.Chunk(id)
		if c == nil {
			t.Fatalf("chunk %d missing", i)
		}
		if len(c.Replicas) != len(wantReplicas[i]) {
			t.Fatalf("chunk %d has %d replicas, want %d", i, len(c.Replicas), len(wantReplicas[i]))
		}
		for j, node := range wantReplicas[i] {
			if c.Replicas[j] != node {
				t.Fatalf("chunk %d replicas %v, want sorted %v", i, c.Replicas, wantReplicas[i])
			}
		}
		if c.Epoch() != fs.Epoch() {
			t.Fatalf("chunk %d epoch %d, want %d", i, c.Epoch(), fs.Epoch())
		}
	}
	// perNode indexes must agree with the replica lists.
	for _, node := range []int{1, 3} {
		found := false
		for _, id := range fs.HostedBy(node) {
			if id == f.Chunks[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d does not host chunk 0", node)
		}
	}
	if msgs := fs.Fsck(); len(msgs) != 0 {
		t.Fatalf("fsck after bulk create: %v", msgs)
	}
}

func TestCreateChunksReplicatedValidation(t *testing.T) {
	cases := []struct {
		name     string
		sizes    []float64
		replicas [][]int
	}{
		{"no chunks", nil, nil},
		{"length mismatch", []float64{1, 2}, [][]int{{0}}},
		{"zero size", []float64{0}, [][]int{{0}}},
		{"negative size", []float64{-1}, [][]int{{0}}},
		{"empty replica list", []float64{1}, [][]int{{}}},
		{"node out of range", []float64{1}, [][]int{{9}}},
		{"negative node", []float64{1}, [][]int{{-1}}},
		{"duplicate replica", []float64{1}, [][]int{{2, 2}}},
	}
	for _, tc := range cases {
		fs := New(testView(4), Config{Seed: 2})
		if _, err := fs.CreateChunksReplicated("/f", tc.sizes, tc.replicas); err == nil {
			t.Errorf("%s: create succeeded, want error", tc.name)
		}
		// Nothing may have been written: namespace empty, no chunks, epoch 0.
		if fs.NumChunks() != 0 || len(fs.Files()) != 0 || fs.Epoch() != 0 {
			t.Errorf("%s: failed create left state behind (chunks=%d files=%d epoch=%d)",
				tc.name, fs.NumChunks(), len(fs.Files()), fs.Epoch())
		}
	}
}

func TestCreateChunksReplicatedDeadNodeAndDupName(t *testing.T) {
	fs := New(testView(4), Config{Seed: 3, Replication: 1})
	if err := fs.MarkDead(2); err != nil {
		t.Fatalf("MarkDead: %v", err)
	}
	if _, err := fs.CreateChunksReplicated("/f", []float64{1}, [][]int{{2}}); err == nil {
		t.Fatal("create on dead node succeeded, want error")
	}
	if _, err := fs.CreateChunksReplicated("/f", []float64{1}, [][]int{{1}}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := fs.CreateChunksReplicated("/f", []float64{1}, [][]int{{1}}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate name error = %v, want ErrExists", err)
	}
}

func TestSnapshot(t *testing.T) {
	fs := New(testView(8), Config{Seed: 4})
	s0 := fs.Snapshot()
	if s0.Epoch != 0 || s0.Files != 0 || s0.Chunks != 0 || s0.Nodes != 8 {
		t.Fatalf("empty snapshot = %+v", s0)
	}
	if _, err := fs.CreateChunks("/a", []float64{64, 64}); err != nil {
		t.Fatalf("CreateChunks: %v", err)
	}
	s1 := fs.Snapshot()
	if s1.Epoch != fs.Epoch() || s1.Files != 1 || s1.Chunks != 2 || s1.Nodes != 8 {
		t.Fatalf("snapshot after create = %+v (fs epoch %d)", s1, fs.Epoch())
	}
	// Replica mutations move the epoch even when counts are unchanged.
	c := fs.Chunk(mustStat(t, fs, "/a").Chunks[0])
	var target int
	for n := 0; n < 8; n++ {
		hosted := false
		for _, r := range c.Replicas {
			if r == n {
				hosted = true
			}
		}
		if !hosted {
			target = n
			break
		}
	}
	if err := fs.AddReplica(c.ID, target); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	s2 := fs.Snapshot()
	if s2.Epoch <= s1.Epoch || s2.Chunks != s1.Chunks {
		t.Fatalf("snapshot after AddReplica = %+v, previous %+v", s2, s1)
	}
}

// mustStat is Stat with the error turned into a test failure.
func mustStat(t *testing.T, fs *FileSystem, name string) *File {
	t.Helper()
	f, err := fs.Stat(name)
	if err != nil {
		t.Fatalf("Stat(%q): %v", name, err)
	}
	return f
}
