package dfs

import (
	"sync"
	"testing"
)

// chunkEpochs snapshots the placement epoch of every chunk of a file.
func chunkEpochs(fs *FileSystem, f *File) []uint64 {
	out := make([]uint64, len(f.Chunks))
	for i, id := range f.Chunks {
		out[i] = fs.Chunk(id).Epoch()
	}
	return out
}

// TestChunkEpochsStampOnlyAffectedChunks pins the surgical-invalidation
// contract: a placement mutation advances the epochs of exactly the chunks
// whose replica sets changed, and no others — the property that lets
// fingerprints of unrelated problems stay byte-stable under churn.
func TestChunkEpochsStampOnlyAffectedChunks(t *testing.T) {
	fs := New(testView(8), Config{Seed: 45})
	fa, err := fs.Create("/a", 256) // 4 chunks
	if err != nil {
		t.Fatal(err)
	}
	fb, err := fs.Create("/b", 256)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range fa.Chunks {
		if got := fs.Chunk(id).Epoch(); got == 0 {
			t.Fatalf("chunk %d of /a created with zero epoch", i)
		}
	}

	aBefore, bBefore := chunkEpochs(fs, fa), chunkEpochs(fs, fb)
	c := fs.Chunk(fa.Chunks[0])
	free := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			free = n
			break
		}
	}
	if err := fs.AddReplica(c.ID, free); err != nil {
		t.Fatal(err)
	}
	aAfter, bAfter := chunkEpochs(fs, fa), chunkEpochs(fs, fb)
	if aAfter[0] <= aBefore[0] {
		t.Fatalf("AddReplica left the mutated chunk's epoch at %d (was %d)", aAfter[0], aBefore[0])
	}
	for i := 1; i < len(aAfter); i++ {
		if aAfter[i] != aBefore[i] {
			t.Fatalf("AddReplica on chunk 0 moved epoch of untouched /a chunk %d (%d -> %d)", i, aBefore[i], aAfter[i])
		}
	}
	for i := range bAfter {
		if bAfter[i] != bBefore[i] {
			t.Fatalf("AddReplica on /a moved epoch of /b chunk %d (%d -> %d)", i, bBefore[i], bAfter[i])
		}
	}

	// A crash stamps exactly the chunks that hosted a replica on the dead
	// node; chunks with no replica there keep their epochs.
	node := fs.Chunk(fa.Chunks[1]).Replicas[0]
	hosted := map[ChunkID]bool{}
	for _, id := range fs.HostedBy(node) {
		hosted[id] = true
	}
	aBefore, bBefore = chunkEpochs(fs, fa), chunkEpochs(fs, fb)
	if _, _, err := fs.Crash(node); err != nil {
		t.Fatal(err)
	}
	check := func(f *File, before []uint64) {
		t.Helper()
		after := chunkEpochs(fs, f)
		for i, id := range f.Chunks {
			if hosted[id] && after[i] <= before[i] {
				t.Fatalf("crash of node %d left epoch of hosted chunk %d unchanged", node, id)
			}
			if !hosted[id] && after[i] != before[i] {
				t.Fatalf("crash of node %d moved epoch of unhosted chunk %d", node, id)
			}
		}
	}
	check(fa, aBefore)
	check(fb, bBefore)

	// Repair stamps exactly the chunks it re-replicated.
	aBefore, bBefore = chunkEpochs(fs, fa), chunkEpochs(fs, fb)
	if repaired := fs.ReReplicate(); repaired == 0 {
		t.Fatal("crash left nothing to repair; fixture broken")
	}
	check(fa, aBefore)
	check(fb, bBefore)
}

// TestOnPlacementChangeReportsAffectedChunks asserts the observer fires once
// per mutation with exactly the chunk IDs whose replica sets changed.
func TestOnPlacementChangeReportsAffectedChunks(t *testing.T) {
	fs := New(testView(8), Config{Seed: 46})
	var events [][]ChunkID
	fs.OnPlacementChange(func(ids []ChunkID) {
		events = append(events, append([]ChunkID(nil), ids...))
	})

	f, err := fs.Create("/obs", 128) // 2 chunks
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || len(events[0]) != len(f.Chunks) {
		t.Fatalf("create notified %v, want one event covering %d chunks", events, len(f.Chunks))
	}

	events = nil
	c := fs.Chunk(f.Chunks[1])
	free := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			free = n
			break
		}
	}
	if err := fs.AddReplica(c.ID, free); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || len(events[0]) != 1 || events[0][0] != c.ID {
		t.Fatalf("AddReplica notified %v, want [[%d]]", events, c.ID)
	}

	// Node-membership-only changes notify with no chunks.
	empty := -1
	for n := 0; n < 8; n++ {
		if len(fs.HostedBy(n)) == 0 {
			empty = n
			break
		}
	}
	if empty < 0 {
		t.Fatal("no replica-free node in the fixture")
	}
	events = nil
	if err := fs.MarkDead(empty); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || len(events[0]) != 0 {
		t.Fatalf("MarkDead notified %v, want one empty event", events)
	}

	// Unregistering stops notifications.
	fs.OnPlacementChange(nil)
	events = nil
	if err := fs.RemoveReplica(c.ID, free); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("unregistered observer still notified: %v", events)
	}
}

// TestEpochReadsRaceWithMutations is the race-detector regression for the
// formerly-unsynchronized epoch counter: a reader polling Epoch() (as the
// planning service does while fingerprinting) races admin mutations on
// another goroutine. Under `go test -race` the plain uint64 field this
// replaced fails immediately; the atomic passes and stays monotonic.
func TestEpochReadsRaceWithMutations(t *testing.T) {
	fs := New(testView(8), Config{Seed: 47})
	f, err := fs.Create("/racy", 256)
	if err != nil {
		t.Fatal(err)
	}
	c := fs.Chunk(f.Chunks[0])
	free := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			free = n
			break
		}
	}
	src := c.Replicas[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := fs.Epoch()
			if e < last {
				t.Errorf("epoch went backwards: %d -> %d", last, e)
				return
			}
			last = e
		}
	}()
	for i := 0; i < 500; i++ {
		if err := fs.MoveReplica(c.ID, src, free); err != nil {
			t.Error(err)
			break
		}
		if err := fs.MoveReplica(c.ID, free, src); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
