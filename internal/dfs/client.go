package dfs

import (
	"fmt"
	"io"
	"sort"
)

// This file implements the libhdfs-style client interface of §II-A: the
// paper's applications access HDFS either through the C API declared in
// hdfs.h (hdfsOpenFile / hdfsRead / hdfsWrite / hdfsSeek) or through an I/O
// translation layer that maps POSIX/MPI-IO calls onto it. Client, FileReader
// and FileWriter mirror that API over the simulated file system, including
// the read path's replica choice (local preferred, random otherwise) and
// per-replica byte accounting.
//
// Chunk payloads are materialized lazily: files created through Create /
// CreateChunks (size-only, used by the large-scale experiments) serve a
// deterministic synthetic byte pattern, while files written through a
// FileWriter serve back exactly the bytes written. Either way reads are
// reproducible, which the round-trip tests rely on.

// MiB is the number of bytes per MB used throughout the byte-level API.
const MiB = 1 << 20

// bytesOf converts a chunk size in MB to bytes.
func bytesOf(sizeMB float64) int64 { return int64(sizeMB * MiB) }

// synthByte is the deterministic content generator for size-only files:
// a cheap mix of the chunk ID and offset (splitmix64-style constants).
func synthByte(id ChunkID, off int64) byte {
	x := uint64(id)*0x9E3779B97F4A7C15 + uint64(off)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 27
	return byte(x)
}

// chunkReadAt copies chunk payload bytes into p starting at offset off
// within the chunk. It returns the number of bytes copied.
func (fs *FileSystem) chunkReadAt(c *Chunk, p []byte, off int64) int {
	size := bytesOf(c.SizeMB)
	if off >= size {
		return 0
	}
	n := int(size - off)
	if n > len(p) {
		n = len(p)
	}
	if c.data != nil {
		copy(p[:n], c.data[off:off+int64(n)])
		return n
	}
	for i := 0; i < n; i++ {
		p[i] = synthByte(c.ID, off+int64(i))
	}
	return n
}

// Client is a libhdfs-style handle bound to the cluster node the calling
// process runs on (-1 for an external client with no co-located replicas,
// like the paper's off-cluster writers).
type Client struct {
	fs   *FileSystem
	node int
}

// Client returns a client for a process running on the given node. Pass a
// negative node for an external client.
func (fs *FileSystem) Client(node int) *Client {
	if node >= fs.view.NumNodes() {
		panic(fmt.Sprintf("dfs: client node %d outside cluster of %d", node, fs.view.NumNodes()))
	}
	return &Client{fs: fs, node: node}
}

// Node reports where the client runs (-1 when external).
func (c *Client) Node() int { return c.node }

// ReadStats accumulates the replica accounting of a FileReader — the raw
// material of the paper's locality measurements.
type ReadStats struct {
	LocalBytes  int64
	RemoteBytes int64
	// ServedBytes[node] counts payload bytes served by each replica holder.
	ServedBytes map[int]int64
}

// LocalFraction is the fraction of payload bytes read from the client's
// own node.
func (s *ReadStats) LocalFraction() float64 {
	total := s.LocalBytes + s.RemoteBytes
	if total == 0 {
		return 0
	}
	return float64(s.LocalBytes) / float64(total)
}

// Open opens a file for reading, as hdfsOpenFile(path, O_RDONLY) does.
func (c *Client) Open(path string) (*FileReader, error) {
	f, err := c.fs.Stat(path)
	if err != nil {
		return nil, err
	}
	return &FileReader{
		client: c,
		file:   f,
		stats:  ReadStats{ServedBytes: make(map[int]int64)},
	}, nil
}

// FileReader is a sequential/positional reader over a file, mirroring
// hdfsRead / hdfsPread / hdfsSeek / hdfsTell.
type FileReader struct {
	client *Client
	file   *File
	pos    int64
	closed bool
	stats  ReadStats
	// replicaOf pins the replica chosen for each chunk so that sequential
	// reads of one chunk stay on one serving node, as an HDFS block read
	// does.
	replicaOf map[ChunkID]int
	// offsets[i] is the byte offset of chunk i within the file, with one
	// extra trailing element holding the file size. Built lazily on the
	// first locate — chunk sizes are immutable once the file is sealed — so
	// positional lookups are a binary search instead of a linear rescan.
	offsets []int64
}

// Size reports the file length in bytes.
func (r *FileReader) Size() int64 { return bytesOf(r.file.SizeMB) }

// Tell reports the current offset, as hdfsTell does.
func (r *FileReader) Tell() int64 { return r.pos }

// Stats returns the accumulated replica accounting.
func (r *FileReader) Stats() ReadStats { return r.stats }

// Seek implements io.Seeker.
func (r *FileReader) Seek(offset int64, whence int) (int64, error) {
	if r.closed {
		return 0, fmt.Errorf("dfs: seek on closed reader for %q", r.file.Name)
	}
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.Size() + offset
	default:
		return 0, fmt.Errorf("dfs: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("dfs: negative seek position %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// Read implements io.Reader (hdfsRead).
func (r *FileReader) Read(p []byte) (int, error) {
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt (hdfsPread): positional read without moving
// the cursor.
func (r *FileReader) ReadAt(p []byte, off int64) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("dfs: read on closed reader for %q", r.file.Name)
	}
	if off < 0 {
		return 0, fmt.Errorf("dfs: negative read offset %d", off)
	}
	total := 0
	for total < len(p) {
		pos := off + int64(total)
		c, chunkOff := r.locate(pos)
		if c == nil {
			if total == 0 {
				return 0, io.EOF
			}
			return total, io.EOF
		}
		n := r.client.fs.chunkReadAt(c, p[total:], chunkOff)
		if n == 0 {
			break
		}
		r.account(c, int64(n))
		total += n
	}
	return total, nil
}

// locate maps a byte offset to (chunk, offset-within-chunk). The first call
// builds the cumulative-offset table; every call after that binary-searches
// it, so a whole-file sequential read costs O(chunks·log chunks) in lookups
// rather than the O(chunks²) of rescanning the chunk list per ReadAt.
func (r *FileReader) locate(pos int64) (*Chunk, int64) {
	if pos < 0 {
		return nil, 0
	}
	if r.offsets == nil {
		r.offsets = make([]int64, len(r.file.Chunks)+1)
		var base int64
		for i, id := range r.file.Chunks {
			r.offsets[i] = base
			base += bytesOf(r.client.fs.Chunk(id).SizeMB)
		}
		r.offsets[len(r.file.Chunks)] = base
	}
	if pos >= r.offsets[len(r.offsets)-1] {
		return nil, 0
	}
	// First chunk whose end lies beyond pos.
	i := sort.Search(len(r.file.Chunks), func(i int) bool { return pos < r.offsets[i+1] })
	return r.client.fs.Chunk(r.file.Chunks[i]), pos - r.offsets[i]
}

// account records which replica served n bytes of chunk c, pinning the
// chunk's replica on first touch with the HDFS policy (local preferred,
// random fallback).
func (r *FileReader) account(c *Chunk, n int64) {
	if r.replicaOf == nil {
		r.replicaOf = make(map[ChunkID]int)
	}
	node, ok := r.replicaOf[c.ID]
	if !ok {
		node, _ = r.client.fs.PickReplica(c.ID, r.client.node)
		r.replicaOf[c.ID] = node
	}
	r.stats.ServedBytes[node] += n
	if node == r.client.node {
		r.stats.LocalBytes += n
	} else {
		r.stats.RemoteBytes += n
	}
}

// ChunkReplica reports which node serves (or will serve) a chunk for this
// reader, pinning the choice so subsequent reads agree with the answer.
func (r *FileReader) ChunkReplica(id ChunkID) int {
	if r.replicaOf == nil {
		r.replicaOf = make(map[ChunkID]int)
	}
	if node, ok := r.replicaOf[id]; ok {
		return node
	}
	node, _ := r.client.fs.PickReplica(id, r.client.node)
	r.replicaOf[id] = node
	return node
}

// Close releases the reader, as hdfsCloseFile does.
func (r *FileReader) Close() error {
	if r.closed {
		return fmt.Errorf("dfs: double close of %q", r.file.Name)
	}
	r.closed = true
	return nil
}

// Create opens a new file for writing, as hdfsOpenFile(path, O_WRONLY).
// The data is buffered into chunks of the configured chunk size; replicas
// are placed when each chunk fills (or on Close), exactly like the HDFS
// write pipeline allocating blocks as the stream grows.
//
// The path is reserved at open, mirroring the namenode's lease: a second
// writer racing for the same path fails here with ErrExists instead of
// buffering all its data only to collide at Close. The reservation is
// released when the writer closes (successfully or not) or aborts.
func (c *Client) Create(path string) (*FileWriter, error) {
	if _, ok := c.fs.files[path]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, path)
	}
	if c.fs.reserved[path] {
		return nil, fmt.Errorf("%w: %q (already open for writing)", ErrExists, path)
	}
	c.fs.reserved[path] = true
	return &FileWriter{client: c, path: path}, nil
}

// FileWriter is a streaming writer, mirroring hdfsWrite.
type FileWriter struct {
	client *Client
	path   string
	buf    []byte
	chunks [][]byte
	closed bool
}

// Write implements io.Writer.
func (w *FileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write on closed writer for %q", w.path)
	}
	chunkBytes := int(bytesOf(w.client.fs.cfg.ChunkSizeMB))
	w.buf = append(w.buf, p...)
	for len(w.buf) >= chunkBytes {
		chunk := make([]byte, chunkBytes)
		copy(chunk, w.buf[:chunkBytes])
		w.chunks = append(w.chunks, chunk)
		w.buf = w.buf[chunkBytes:]
	}
	return len(p), nil
}

// Close seals the file: the final partial chunk is flushed and the file is
// registered with the namenode with replica placement per chunk. The path
// reservation taken at Create is released whether or not the close
// succeeds, so a failed close does not wedge the path forever.
func (w *FileWriter) Close() error {
	if w.closed {
		return fmt.Errorf("dfs: double close of writer for %q", w.path)
	}
	w.closed = true
	delete(w.client.fs.reserved, w.path)
	if len(w.buf) > 0 {
		w.chunks = append(w.chunks, append([]byte(nil), w.buf...))
		w.buf = nil
	}
	if len(w.chunks) == 0 {
		return fmt.Errorf("dfs: writer for %q closed with no data", w.path)
	}
	sizes := make([]float64, len(w.chunks))
	for i, c := range w.chunks {
		sizes[i] = float64(len(c)) / MiB
	}
	f, err := w.client.fs.CreateChunks(w.path, sizes)
	if err != nil {
		return err
	}
	for i, id := range f.Chunks {
		w.client.fs.chunks[int(id)].data = w.chunks[i]
	}
	return nil
}

// Abort discards the buffered data and releases the path reservation
// without registering the file — the client dying before completing the
// write pipeline. Aborting an already-closed writer is a no-op.
func (w *FileWriter) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	w.buf, w.chunks = nil, nil
	delete(w.client.fs.reserved, w.path)
}
