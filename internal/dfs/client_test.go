package dfs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(testView(8), Config{Seed: 1, ChunkSizeMB: 1.0 / 1024}) // 1 KiB chunks
	w, err := fs.Client(-1).Create("/roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 5000) // spans 5 chunks
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := w.Write(payload[:3000]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload[3000:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Client(0).Open("/roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %d bytes read", len(got))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Stat("/roundtrip")
	if len(f.Chunks) != 5 {
		t.Fatalf("chunks = %d, want 5 (4 full + 1 partial)", len(f.Chunks))
	}
}

func TestSyntheticContentDeterministic(t *testing.T) {
	fs := New(testView(8), Config{Seed: 2})
	fs.Create("/synthetic", 2) // 2 MB size-only file
	read := func() []byte {
		r, err := fs.Client(0).Open("/synthetic")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		buf := make([]byte, 4096)
		if _, err := r.ReadAt(buf, 12345); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Fatal("synthetic content not deterministic")
	}
	// And not trivially constant.
	if bytes.Count(a, []byte{a[0]}) == len(a) {
		t.Fatal("synthetic content is constant")
	}
}

func TestSeekAndTell(t *testing.T) {
	fs := New(testView(8), Config{Seed: 3})
	fs.Create("/f", 1)
	r, _ := fs.Client(0).Open("/f")
	defer r.Close()
	if r.Size() != 1*MiB {
		t.Fatalf("size = %d", r.Size())
	}
	if pos, err := r.Seek(100, io.SeekStart); err != nil || pos != 100 {
		t.Fatalf("seek start: %d %v", pos, err)
	}
	if pos, err := r.Seek(50, io.SeekCurrent); err != nil || pos != 150 {
		t.Fatalf("seek current: %d %v", pos, err)
	}
	if pos, err := r.Seek(-10, io.SeekEnd); err != nil || pos != 1*MiB-10 {
		t.Fatalf("seek end: %d %v", pos, err)
	}
	if r.Tell() != 1*MiB-10 {
		t.Fatalf("tell = %d", r.Tell())
	}
	buf := make([]byte, 100)
	n, err := r.Read(buf)
	if n != 10 || (err != nil && err != io.EOF) {
		t.Fatalf("read at tail: n=%d err=%v", n, err)
	}
	if _, err := r.Seek(-5, io.SeekStart); err == nil {
		t.Fatal("negative seek must fail")
	}
	if _, err := r.Seek(0, 99); err == nil {
		t.Fatal("bad whence must fail")
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := New(testView(8), Config{Seed: 4})
	fs.Create("/f", 1)
	r, _ := fs.Client(0).Open("/f")
	defer r.Close()
	buf := make([]byte, 10)
	if _, err := r.ReadAt(buf, 2*MiB); err != io.EOF {
		t.Fatalf("read past EOF: %v, want io.EOF", err)
	}
}

func TestReaderLocalityAccounting(t *testing.T) {
	fs := New(testView(8), Config{Seed: 5})
	f, _ := fs.Create("/f", 64)
	c := fs.Chunk(f.Chunks[0])
	local := c.Replicas[0]
	r, _ := fs.Client(local).Open("/f")
	defer r.Close()
	buf := make([]byte, 4096)
	r.Read(buf)
	st := r.Stats()
	if st.LocalBytes != 4096 || st.RemoteBytes != 0 {
		t.Fatalf("co-located read stats: %+v", st)
	}
	if st.LocalFraction() != 1 {
		t.Fatalf("local fraction %v", st.LocalFraction())
	}

	remoteReader := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			remoteReader = n
			break
		}
	}
	r2, _ := fs.Client(remoteReader).Open("/f")
	defer r2.Close()
	r2.Read(buf)
	st2 := r2.Stats()
	if st2.RemoteBytes != 4096 || st2.LocalBytes != 0 {
		t.Fatalf("remote read stats: %+v", st2)
	}
	for node, served := range st2.ServedBytes {
		if !c.HostedOn(node) {
			t.Fatalf("bytes served by non-replica node %d", node)
		}
		if served != 4096 {
			t.Fatalf("served = %d", served)
		}
	}
}

func TestReaderPinsReplicaPerChunk(t *testing.T) {
	fs := New(testView(16), Config{Seed: 6})
	fs.Create("/f", 64)
	r, _ := fs.Client(-1).Open("/f") // external: every chunk remote
	defer r.Close()
	f, _ := fs.Stat("/f")
	id := f.Chunks[0]
	first := r.ChunkReplica(id)
	buf := make([]byte, 1024)
	for i := 0; i < 5; i++ {
		r.Read(buf)
		if got := r.ChunkReplica(id); got != first {
			t.Fatalf("replica changed mid-stream: %d -> %d", first, got)
		}
	}
}

func TestWriterErrors(t *testing.T) {
	fs := New(testView(8), Config{Seed: 7})
	fs.Create("/exists", 64)
	if _, err := fs.Client(-1).Create("/exists"); err == nil {
		t.Fatal("create over existing file must fail")
	}
	w, _ := fs.Client(-1).Create("/empty")
	if err := w.Close(); err == nil {
		t.Fatal("closing an empty writer must fail (no chunks)")
	}
	w2, _ := fs.Client(-1).Create("/w2")
	w2.Write([]byte("hi"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err == nil {
		t.Fatal("double close must fail")
	}
	if _, err := w2.Write([]byte("more")); err == nil {
		t.Fatal("write after close must fail")
	}
}

func TestReaderErrors(t *testing.T) {
	fs := New(testView(8), Config{Seed: 8})
	if _, err := fs.Client(0).Open("/missing"); err == nil {
		t.Fatal("open missing must fail")
	}
	fs.Create("/f", 1)
	r, _ := fs.Client(0).Open("/f")
	r.Close()
	if _, err := r.Read(make([]byte, 4)); err == nil {
		t.Fatal("read after close must fail")
	}
	if _, err := r.Seek(0, io.SeekStart); err == nil {
		t.Fatal("seek after close must fail")
	}
	if err := r.Close(); err == nil {
		t.Fatal("double close must fail")
	}
	r2, _ := fs.Client(0).Open("/f")
	defer r2.Close()
	if _, err := r2.ReadAt(make([]byte, 4), -1); err == nil {
		t.Fatal("negative offset must fail")
	}
}

func TestClientNodeValidation(t *testing.T) {
	fs := New(testView(4), Config{Seed: 9})
	if c := fs.Client(-1); c.Node() != -1 {
		t.Fatal("external client node")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	fs.Client(99)
}

// TestPropertyRoundTripArbitrary fuzzes writer/reader round trips across
// chunk boundaries.
func TestPropertyRoundTripArbitrary(t *testing.T) {
	prop := func(seed int64, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		fs := New(testView(6), Config{Seed: seed, ChunkSizeMB: 0.5 / 1024}) // 512 B chunks
		w, err := fs.Client(-1).Create("/f")
		if err != nil {
			t.Error(err)
			return false
		}
		if _, err := w.Write(raw); err != nil {
			t.Error(err)
			return false
		}
		if err := w.Close(); err != nil {
			t.Error(err)
			return false
		}
		r, err := fs.Client(0).Open("/f")
		if err != nil {
			t.Error(err)
			return false
		}
		defer r.Close()
		got, err := io.ReadAll(r)
		if err != nil {
			t.Error(err)
			return false
		}
		return bytes.Equal(got, raw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
