// Package dfs implements an in-process distributed file system with the
// metadata semantics of HDFS, which is the substrate the Opass paper runs
// on. It models the pieces Opass interacts with:
//
//   - a namenode-style namespace mapping files to fixed-size chunks;
//   - r-way replication with pluggable placement policies (random by
//     default, as HDFS behaves from the perspective of a non-writing
//     client, plus rack-aware and pathological policies for experiments);
//   - the GetFileBlockLocations metadata query Opass uses to build its
//     bipartite locality graph;
//   - the HDFS client read policy: serve from the local disk when a replica
//     is co-located with the reader, otherwise from a uniformly random
//     replica holder;
//   - node addition, decommissioning with re-replication, and a balancer —
//     the events the paper cites as sources of placement skew.
//
// Data contents are never materialized; chunks carry sizes only, which is
// all the scheduling and simulation layers need.
package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// ChunkID identifies a chunk within a FileSystem.
type ChunkID int

// Chunk is one replicated block of a file.
type Chunk struct {
	ID       ChunkID
	File     string
	Index    int     // position within the file
	SizeMB   float64 // chunk payload size
	Replicas []int   // distinct node IDs hosting a copy

	// data holds the chunk payload for files written through a FileWriter;
	// nil for size-only files, whose reads serve a synthetic pattern.
	data []byte
	// deleted marks a tombstoned chunk (its file was removed).
	deleted bool
	// target is this chunk's replication target — per-chunk metadata, as
	// HDFS keeps per-file replication factors, so layouts built with
	// AddReplica beyond the Config factor still repair to their real
	// redundancy after a crash. Set at creation, raised by AddReplica,
	// lowered by an explicit RemoveReplica (the setrep analogy).
	target int
	// epoch is the value of the file system's global placement epoch at the
	// last mutation that touched THIS chunk's replica set. It is keyed to the
	// chunk, never to the file name, so Rename leaves it (and every
	// fingerprint derived from it) untouched.
	epoch uint64
}

// Epoch returns the chunk's placement epoch: the global epoch value at the
// last mutation of this chunk's replica set. Fingerprints built from chunk
// epochs (core.Problem.AppendCanonical) change exactly when one of the
// chunks they read moved — a mutation to an unrelated file leaves them
// stable, which is what makes surgical plan-cache invalidation sound.
func (c *Chunk) Epoch() uint64 { return c.epoch }

// ReplicationTarget returns the chunk's replication target: how many
// replicas Crash considers healthy and ReReplicate restores.
func (c *Chunk) ReplicationTarget() int { return c.target }

// HostedOn reports whether the chunk has a replica on node.
func (c *Chunk) HostedOn(node int) bool {
	for _, r := range c.Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// File is a named sequence of chunks.
type File struct {
	Name   string
	SizeMB float64
	Chunks []ChunkID
}

// Config carries file system parameters; zero fields take HDFS defaults.
type Config struct {
	ChunkSizeMB float64   // default 64, as in the paper
	Replication int       // default 3
	Placement   Placement // default RandomPlacement
	Seed        int64     // seed for placement and replica-pick randomness
}

func (c Config) withDefaults() Config {
	if c.ChunkSizeMB == 0 {
		c.ChunkSizeMB = 64
	}
	if c.Replication == 0 {
		c.Replication = 3
	}
	if c.Placement == nil {
		c.Placement = RandomPlacement{}
	}
	return c
}

// ClusterView is the slice of cluster topology the file system needs:
// enough to enumerate live nodes and to group them into racks.
type ClusterView interface {
	NumNodes() int
	RackOf(node int) int
}

// FileSystem is the namenode state plus per-node chunk indexes.
type FileSystem struct {
	cfg     Config
	view    ClusterView
	rng     *rand.Rand
	files   map[string]*File
	order   []string // deterministic file iteration order
	chunks  []*Chunk
	perNode map[int][]ChunkID // node -> hosted chunks
	dead    map[int]bool      // decommissioned nodes
	// epoch is bumped on every placement mutation. It is atomic because
	// read-only consumers (plan fingerprinting under an HTTP handler) may
	// observe it concurrently with an admin mutation on another goroutine.
	epoch atomic.Uint64
	// onPlacementChange, if set, is invoked synchronously after every
	// placement mutation with the chunk IDs whose replica sets changed
	// (empty for node-membership-only changes such as AddNode).
	onPlacementChange func(changed []ChunkID)
	// reserved holds paths leased to open FileWriters (the namenode's write
	// lease): the namespace entry does not exist yet, but no other writer —
	// and no namespace operation — may claim the name.
	reserved map[string]bool
	// access is the per-chunk access accounting (nil until
	// EnableAccessStats) feeding the replication advisor.
	access *accessStats
}

// New creates an empty FileSystem over the given cluster view.
func New(view ClusterView, cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	if cfg.Replication < 1 {
		panic(fmt.Sprintf("dfs: replication %d must be >= 1", cfg.Replication))
	}
	if cfg.ChunkSizeMB <= 0 {
		panic(fmt.Sprintf("dfs: chunk size %v must be positive", cfg.ChunkSizeMB))
	}
	return &FileSystem{
		cfg:      cfg,
		view:     view,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		files:    make(map[string]*File),
		perNode:  make(map[int][]ChunkID),
		dead:     make(map[int]bool),
		reserved: make(map[string]bool),
	}
}

// Config returns the (defaulted) configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// View returns the cluster view the file system was built over — node
// count and rack map. Rack-aware consumers (the replication advisor, the
// planners' NodeRack plumbing) read topology through it.
func (fs *FileSystem) View() ClusterView { return fs.view }

// Epoch is a monotonic placement-version counter: every operation that
// changes which replicas live where — or which nodes may host them — bumps
// it (writes, deletes, replica add/remove/move, node add/remove, the
// balancer). Namespace-only operations (Rename) do not. It is retained for
// compatibility as a coarse "anything changed" signal; callers that want
// surgical invalidation should consult the per-chunk epochs (Chunk.Epoch)
// instead, which move only when that chunk's replica set does. It is safe
// to read concurrently with mutations on other goroutines.
func (fs *FileSystem) Epoch() uint64 { return fs.epoch.Load() }

// MetadataSnapshot is a summary of the namenode state at one epoch. It is
// the namespace token the shared plan-cache tier uses: two opassd replicas
// mirroring the same layout produce the same snapshot, so remote cache
// keys derived from it collide exactly when the metadata agrees.
type MetadataSnapshot struct {
	Epoch  uint64 `json:"epoch"`
	Files  int    `json:"files"`
	Chunks int    `json:"chunks"`
	Nodes  int    `json:"nodes"`
}

// Snapshot captures the current metadata epoch and object counts. Like
// Epoch it is cheap; unlike Epoch it also pins the namespace shape, so a
// replica that merely reset its counter cannot alias another's keys.
func (fs *FileSystem) Snapshot() MetadataSnapshot {
	return MetadataSnapshot{
		Epoch:  fs.epoch.Load(),
		Files:  len(fs.files),
		Chunks: len(fs.chunks),
		Nodes:  fs.view.NumNodes(),
	}
}

// OnPlacementChange registers fn to be called synchronously after every
// placement mutation with the IDs of the chunks whose replica sets changed
// (empty for node-membership-only changes). At most one observer is
// supported; registering replaces the previous one, and nil unregisters.
// The plan-cache bridge uses this to invalidate exactly the cached plans
// that read a mutated chunk. fn runs with the mutation already applied; it
// must not mutate the file system reentrantly, and it must not retain or
// mutate the slice beyond the call (it may alias internal state).
func (fs *FileSystem) OnPlacementChange(fn func(changed []ChunkID)) {
	fs.onPlacementChange = fn
}

// bumpEpoch records one placement mutation: the global counter advances,
// every affected chunk is stamped with the new value, and the placement
// observer (if any) is notified. Mutating entry points call it exactly once
// per successful operation (compound operations such as MoveReplica may
// bump more than once through their primitives — only monotonicity matters,
// not the step size).
func (fs *FileSystem) bumpEpoch(affected ...ChunkID) {
	e := fs.epoch.Add(1)
	for _, id := range affected {
		fs.chunks[int(id)].epoch = e
	}
	if fs.onPlacementChange != nil {
		fs.onPlacementChange(affected)
	}
}

// Errors returned by namespace operations.
var (
	ErrExists   = errors.New("dfs: file already exists")
	ErrNotFound = errors.New("dfs: file not found")
)

// liveNodes lists nodes that can accept replicas, in ascending order.
func (fs *FileSystem) liveNodes() []int {
	nodes := make([]int, 0, fs.view.NumNodes())
	for i := 0; i < fs.view.NumNodes(); i++ {
		if !fs.dead[i] {
			nodes = append(nodes, i)
		}
	}
	return nodes
}

// NumLiveNodes reports how many nodes currently host replicas.
func (fs *FileSystem) NumLiveNodes() int { return len(fs.liveNodes()) }

// LiveNodes lists the nodes that can currently host replicas, in ascending
// ID order. After node removal the live IDs are not contiguous, so callers
// iterating per-node state must range over this slice rather than counting
// 0..NumLiveNodes().
func (fs *FileSystem) LiveNodes() []int { return fs.liveNodes() }

// Create writes a file of sizeMB, splitting it into chunks of the
// configured chunk size (the final chunk may be smaller) and placing each
// chunk's replicas with the placement policy.
func (fs *FileSystem) Create(name string, sizeMB float64) (*File, error) {
	if sizeMB <= 0 {
		return nil, fmt.Errorf("dfs: create %q: size %v must be positive", name, sizeMB)
	}
	var sizes []float64
	for left := sizeMB; left > 1e-9; left -= fs.cfg.ChunkSizeMB {
		s := fs.cfg.ChunkSizeMB
		if left < s {
			s = left
		}
		sizes = append(sizes, s)
	}
	return fs.CreateChunks(name, sizes)
}

// CreateChunks writes a file from explicit chunk sizes. It is the primitive
// behind Create and is used directly by workloads whose logical pieces do
// not align with the chunk size (e.g. the 56 MB ParaView blocks).
func (fs *FileSystem) CreateChunks(name string, sizesMB []float64) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if fs.reserved[name] {
		return nil, fmt.Errorf("%w: %q (open for writing)", ErrExists, name)
	}
	if len(sizesMB) == 0 {
		return nil, fmt.Errorf("dfs: create %q: no chunks", name)
	}
	live := fs.liveNodes()
	r := fs.cfg.Replication
	if r > len(live) {
		return nil, fmt.Errorf("dfs: create %q: replication %d exceeds %d live nodes", name, r, len(live))
	}
	f := &File{Name: name}
	for i, s := range sizesMB {
		if s <= 0 {
			return nil, fmt.Errorf("dfs: create %q: chunk %d size %v must be positive", name, i, s)
		}
		c := &Chunk{
			ID:     ChunkID(len(fs.chunks)),
			File:   name,
			Index:  i,
			SizeMB: s,
		}
		c.Replicas = fs.cfg.Placement.Place(fs.rng, fs.view, live, r, c)
		if err := validateReplicas(c.Replicas, live, r); err != nil {
			return nil, fmt.Errorf("dfs: create %q chunk %d: %w", name, i, err)
		}
		sort.Ints(c.Replicas)
		c.target = len(c.Replicas)
		fs.chunks = append(fs.chunks, c)
		f.Chunks = append(f.Chunks, c.ID)
		f.SizeMB += s
		for _, node := range c.Replicas {
			fs.perNode[node] = append(fs.perNode[node], c.ID)
		}
	}
	fs.files[name] = f
	fs.order = append(fs.order, name)
	fs.bumpEpoch(f.Chunks...)
	return f, nil
}

// CreateChunksReplicated writes a file from explicit per-chunk sizes AND
// explicit per-chunk replica lists, bypassing the placement policy and the
// Config replication factor: chunk i is hosted exactly on replicas[i]
// (de-duplicated sorted copy; the list may be any positive length). It is
// the bulk primitive behind the HTTP service's streaming request decoder,
// which mirrors a million-input layout into one file with one allocation
// per chunk and a single epoch bump instead of a file, a path string, and
// an epoch per input. Replica lists are validated against live nodes; a
// duplicate or dead node fails the whole create with nothing written.
func (fs *FileSystem) CreateChunksReplicated(name string, sizesMB []float64, replicas [][]int) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if fs.reserved[name] {
		return nil, fmt.Errorf("%w: %q (open for writing)", ErrExists, name)
	}
	if len(sizesMB) == 0 {
		return nil, fmt.Errorf("dfs: create %q: no chunks", name)
	}
	if len(replicas) != len(sizesMB) {
		return nil, fmt.Errorf("dfs: create %q: %d replica lists for %d chunks", name, len(replicas), len(sizesMB))
	}
	// Validate everything before mutating any state, so a bad input cannot
	// leave a half-created file behind.
	for i, s := range sizesMB {
		if s <= 0 {
			return nil, fmt.Errorf("dfs: create %q: chunk %d size %v must be positive", name, i, s)
		}
		if len(replicas[i]) == 0 {
			return nil, fmt.Errorf("dfs: create %q: chunk %d has no replicas", name, i)
		}
		for j, node := range replicas[i] {
			if node < 0 || node >= fs.view.NumNodes() || fs.dead[node] {
				return nil, fmt.Errorf("dfs: create %q: chunk %d replica node %d not live", name, i, node)
			}
			for _, prev := range replicas[i][:j] {
				if prev == node {
					return nil, fmt.Errorf("dfs: create %q: chunk %d duplicate replica node %d", name, i, node)
				}
			}
		}
	}
	f := &File{Name: name}
	f.Chunks = make([]ChunkID, 0, len(sizesMB))
	// One backing array for all chunk structs: the namenode metadata of a
	// 1M-chunk layout is one allocation, not a million.
	block := make([]Chunk, len(sizesMB))
	for i, s := range sizesMB {
		c := &block[i]
		c.ID = ChunkID(len(fs.chunks))
		c.File = name
		c.Index = i
		c.SizeMB = s
		c.Replicas = append([]int(nil), replicas[i]...)
		sort.Ints(c.Replicas)
		c.target = len(c.Replicas)
		fs.chunks = append(fs.chunks, c)
		f.Chunks = append(f.Chunks, c.ID)
		f.SizeMB += s
		for _, node := range c.Replicas {
			fs.perNode[node] = append(fs.perNode[node], c.ID)
		}
	}
	fs.files[name] = f
	fs.order = append(fs.order, name)
	fs.bumpEpoch(f.Chunks...)
	return f, nil
}

func validateReplicas(replicas, live []int, r int) error {
	if len(replicas) != r {
		return fmt.Errorf("placement returned %d replicas, want %d", len(replicas), r)
	}
	seen := make(map[int]bool, r)
	liveSet := make(map[int]bool, len(live))
	for _, n := range live {
		liveSet[n] = true
	}
	for _, n := range replicas {
		if seen[n] {
			return fmt.Errorf("duplicate replica node %d", n)
		}
		if !liveSet[n] {
			return fmt.Errorf("replica node %d is not live", n)
		}
		seen[n] = true
	}
	return nil
}

// Delete removes a file from the namespace and releases its replicas from
// every node, like hdfs dfs -rm. Its chunk IDs become tombstones: Chunk()
// panics on them, so stale references fail fast rather than silently
// reading freed data.
func (fs *FileSystem) Delete(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for _, id := range f.Chunks {
		c := fs.chunks[int(id)]
		for _, node := range c.Replicas {
			hosted := fs.perNode[node][:0]
			for _, h := range fs.perNode[node] {
				if h != id {
					hosted = append(hosted, h)
				}
			}
			fs.perNode[node] = hosted
		}
		c.Replicas = nil
		c.data = nil
		c.deleted = true
	}
	delete(fs.files, name)
	for i, n := range fs.order {
		if n == name {
			fs.order = append(fs.order[:i], fs.order[i+1:]...)
			break
		}
	}
	fs.bumpEpoch(f.Chunks...)
	return nil
}

// Rename moves a file to a new name (hdfs dfs -mv). Chunk IDs and replica
// placement are untouched; only the namespace entry changes.
func (fs *FileSystem) Rename(oldName, newName string) error {
	f, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, oldName)
	}
	if oldName == newName {
		return nil
	}
	if _, ok := fs.files[newName]; ok {
		return fmt.Errorf("%w: %q", ErrExists, newName)
	}
	if fs.reserved[newName] {
		return fmt.Errorf("%w: %q (open for writing)", ErrExists, newName)
	}
	delete(fs.files, oldName)
	f.Name = newName
	fs.files[newName] = f
	for _, id := range f.Chunks {
		fs.chunks[int(id)].File = newName
	}
	for i, n := range fs.order {
		if n == oldName {
			fs.order[i] = newName
			break
		}
	}
	return nil
}

// Stat returns the file metadata for name.
func (fs *FileSystem) Stat(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return f, nil
}

// Files lists all file names in creation order.
func (fs *FileSystem) Files() []string {
	return append([]string(nil), fs.order...)
}

// Chunk returns the chunk with the given ID. It panics on IDs of deleted
// files, so stale references surface immediately.
func (fs *FileSystem) Chunk(id ChunkID) *Chunk {
	if int(id) < 0 || int(id) >= len(fs.chunks) {
		panic(fmt.Sprintf("dfs: chunk %d out of range", id))
	}
	c := fs.chunks[int(id)]
	if c.deleted {
		panic(fmt.Sprintf("dfs: chunk %d belongs to the deleted file %q", id, c.File))
	}
	return c
}

// NumChunks reports the total chunk count across all files.
func (fs *FileSystem) NumChunks() int { return len(fs.chunks) }

// BlockLocation describes one chunk's placement, mirroring HDFS's
// getFileBlockLocations response.
type BlockLocation struct {
	Chunk    ChunkID
	SizeMB   float64
	Replicas []int
}

// BlockLocations returns the placement of every chunk of a file — the
// metadata query Opass issues to build its locality graph.
func (fs *FileSystem) BlockLocations(name string) ([]BlockLocation, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	locs := make([]BlockLocation, len(f.Chunks))
	for i, id := range f.Chunks {
		c := fs.chunks[int(id)]
		locs[i] = BlockLocation{
			Chunk:    id,
			SizeMB:   c.SizeMB,
			Replicas: append([]int(nil), c.Replicas...),
		}
	}
	return locs, nil
}

// BlockLocationsFor returns the placement of every chunk of a file with
// each chunk's replicas sorted by network distance from the reader — node,
// then rack, then off-rack — mirroring how the HDFS namenode orders
// getBlockLocations results for a client host. Ties within a distance tier
// keep ascending node order.
func (fs *FileSystem) BlockLocationsFor(name string, reader int) ([]BlockLocation, error) {
	locs, err := fs.BlockLocations(name)
	if err != nil {
		return nil, err
	}
	tier := func(node int) int {
		switch {
		case node == reader:
			return 0
		case reader >= 0 && reader < fs.view.NumNodes() &&
			fs.view.RackOf(node) == fs.view.RackOf(reader):
			return 1
		default:
			return 2
		}
	}
	for i := range locs {
		reps := locs[i].Replicas
		sort.Slice(reps, func(a, b int) bool {
			ta, tb := tier(reps[a]), tier(reps[b])
			if ta != tb {
				return ta < tb
			}
			return reps[a] < reps[b]
		})
	}
	return locs, nil
}

// HostedBy lists the chunks with a replica on node, in ID order.
func (fs *FileSystem) HostedBy(node int) []ChunkID {
	ids := append([]ChunkID(nil), fs.perNode[node]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// StoredMB reports the bytes (in MB) of replicas stored on node.
func (fs *FileSystem) StoredMB(node int) float64 {
	var s float64
	for _, id := range fs.perNode[node] {
		s += fs.chunks[int(id)].SizeMB
	}
	return s
}

// PickReplica applies the HDFS client read policy for a reader on node
// reader, in network-distance order like the namenode's block-location
// sorting: a co-located replica first, then a replica in the reader's rack,
// then any replica. Among equally-distant candidates the choice is drawn
// from a hash of (seed, chunk, reader) rather than a shared random stream,
// so it is uniform across chunk/reader pairs — the 1/r assumption of
// §III-B — yet independent of call order, which keeps concurrent
// simulations (the MPI runtime's goroutine ranks) bit-for-bit reproducible.
// (On single-rack topologies the rack tier is the whole replica set, so the
// behavior matches the paper's single-switch testbed exactly.)
func (fs *FileSystem) PickReplica(id ChunkID, reader int) (node int, local bool) {
	c := fs.Chunk(id)
	if len(c.Replicas) == 0 {
		panic(fmt.Sprintf("dfs: chunk %d has no replicas", id))
	}
	for _, r := range c.Replicas {
		if r == reader {
			return r, true
		}
	}
	candidates := c.Replicas
	if reader >= 0 && reader < fs.view.NumNodes() {
		rack := fs.view.RackOf(reader)
		var sameRack []int
		for _, r := range c.Replicas {
			if fs.view.RackOf(r) == rack {
				sameRack = append(sameRack, r)
			}
		}
		if len(sameRack) > 0 {
			candidates = sameRack
		}
	}
	h := splitmix(uint64(fs.cfg.Seed)<<32 ^ uint64(id)<<16 ^ uint64(uint32(reader)))
	return candidates[int(h%uint64(len(candidates)))], false
}

// ErrNoReplica reports that every replica of a chunk is unavailable.
var ErrNoReplica = errors.New("dfs: no live replica")

// PickReplicaAvoiding is PickReplica restricted to replica holders for
// which avoid returns false — the read-failover path a client takes when a
// DataNode stops responding. It applies the same network-distance order
// (node, rack, anywhere). The salt keeps successive retries of the same
// (chunk, reader) pair from re-picking deterministically identical nodes.
func (fs *FileSystem) PickReplicaAvoiding(id ChunkID, reader int, salt uint64, avoid func(node int) bool) (node int, local bool, err error) {
	c := fs.Chunk(id)
	candidates := make([]int, 0, len(c.Replicas))
	for _, r := range c.Replicas {
		if avoid == nil || !avoid(r) {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		return -1, false, fmt.Errorf("%w: chunk %d", ErrNoReplica, id)
	}
	for _, r := range candidates {
		if r == reader {
			return r, true, nil
		}
	}
	if reader >= 0 && reader < fs.view.NumNodes() {
		rack := fs.view.RackOf(reader)
		var sameRack []int
		for _, r := range candidates {
			if fs.view.RackOf(r) == rack {
				sameRack = append(sameRack, r)
			}
		}
		if len(sameRack) > 0 {
			candidates = sameRack
		}
	}
	h := splitmix(uint64(fs.cfg.Seed)<<32 ^ uint64(id)<<16 ^ uint64(uint32(reader)) ^ salt<<48)
	return candidates[int(h%uint64(len(candidates)))], false, nil
}

// splitmix is the splitmix64 finalizer, a cheap high-quality integer hash.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Rand exposes the file system's deterministic RNG so that co-simulated
// components (e.g. the execution engine's random fallback decisions) share
// one seeded stream.
func (fs *FileSystem) Rand() *rand.Rand { return fs.rng }
