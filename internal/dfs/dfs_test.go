package dfs

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// view is a minimal ClusterView for tests.
type view struct {
	nodes, racks int
}

func (v view) NumNodes() int    { return v.nodes }
func (v view) RackOf(n int) int { return n % v.racks }
func testView(n int) view       { return view{nodes: n, racks: 1} }
func rackedView(n, r int) view  { return view{nodes: n, racks: r} }
func newFS(n int, seed int64) *FileSystem {
	return New(testView(n), Config{Seed: seed})
}

func TestCreateSplitsIntoChunks(t *testing.T) {
	fs := newFS(8, 1)
	f, err := fs.Create("/data/a", 200) // 64+64+64+8
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(f.Chunks))
	}
	if f.SizeMB != 200 {
		t.Fatalf("size = %v, want 200", f.SizeMB)
	}
	last := fs.Chunk(f.Chunks[3])
	if last.SizeMB != 8 {
		t.Fatalf("final chunk = %v MB, want 8", last.SizeMB)
	}
}

func TestCreateRejectsDuplicatesAndBadSizes(t *testing.T) {
	fs := newFS(8, 1)
	if _, err := fs.Create("/a", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/a", 64); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create error = %v, want ErrExists", err)
	}
	if _, err := fs.Create("/b", 0); err == nil {
		t.Fatal("zero-size create should fail")
	}
	if _, err := fs.CreateChunks("/c", nil); err == nil {
		t.Fatal("empty chunk list should fail")
	}
	if _, err := fs.CreateChunks("/d", []float64{64, -1}); err == nil {
		t.Fatal("negative chunk size should fail")
	}
}

func TestReplicasDistinctAndCounted(t *testing.T) {
	fs := newFS(16, 2)
	f, err := fs.Create("/a", 64*50)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range f.Chunks {
		c := fs.Chunk(id)
		if len(c.Replicas) != 3 {
			t.Fatalf("chunk %d has %d replicas, want 3", id, len(c.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range c.Replicas {
			if seen[r] {
				t.Fatalf("chunk %d has duplicate replica on node %d", id, r)
			}
			seen[r] = true
			if r < 0 || r >= 16 {
				t.Fatalf("chunk %d replica on bad node %d", id, r)
			}
		}
	}
}

func TestReplicationExceedingClusterFails(t *testing.T) {
	fs := New(testView(2), Config{Replication: 3})
	if _, err := fs.Create("/a", 64); err == nil {
		t.Fatal("want error when replication > live nodes")
	}
}

func TestBlockLocationsMatchChunks(t *testing.T) {
	fs := newFS(8, 3)
	f, _ := fs.Create("/a", 64*5)
	locs, err := fs.BlockLocations("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != len(f.Chunks) {
		t.Fatalf("locations = %d, want %d", len(locs), len(f.Chunks))
	}
	for i, loc := range locs {
		c := fs.Chunk(f.Chunks[i])
		if loc.Chunk != c.ID || loc.SizeMB != c.SizeMB {
			t.Fatalf("location %d mismatch: %+v vs chunk %+v", i, loc, c)
		}
	}
	if _, err := fs.BlockLocations("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file error = %v, want ErrNotFound", err)
	}
}

func TestHostedByIndexConsistent(t *testing.T) {
	fs := newFS(10, 4)
	fs.Create("/a", 64*30)
	count := 0
	for n := 0; n < 10; n++ {
		for _, id := range fs.HostedBy(n) {
			if !fs.Chunk(id).HostedOn(n) {
				t.Fatalf("index says node %d hosts chunk %d but replica list disagrees", n, id)
			}
			count++
		}
	}
	if count != 30*3 {
		t.Fatalf("total hosted replicas = %d, want 90", count)
	}
}

func TestPickReplicaPrefersLocal(t *testing.T) {
	fs := newFS(8, 5)
	f, _ := fs.Create("/a", 64)
	c := fs.Chunk(f.Chunks[0])
	reader := c.Replicas[1]
	node, local := fs.PickReplica(c.ID, reader)
	if !local || node != reader {
		t.Fatalf("PickReplica(%d, co-located %d) = (%d,%v), want local", c.ID, reader, node, local)
	}
}

func TestPickReplicaRemoteIsAReplica(t *testing.T) {
	fs := newFS(8, 6)
	f, _ := fs.Create("/a", 64)
	c := fs.Chunk(f.Chunks[0])
	reader := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			reader = n
			break
		}
	}
	for i := 0; i < 20; i++ {
		node, local := fs.PickReplica(c.ID, reader)
		if local {
			t.Fatalf("read from non-replica node %d reported local", reader)
		}
		if !c.HostedOn(node) {
			t.Fatalf("remote pick %d is not a replica holder", node)
		}
	}
}

func TestRandomPlacementSpreadsLoad(t *testing.T) {
	// With 512 chunks on 64 nodes the expected replicas per node is 24;
	// random placement should put at least one chunk almost everywhere.
	fs := newFS(64, 7)
	fs.Create("/big", 64*512)
	empty := 0
	for n := 0; n < 64; n++ {
		if len(fs.HostedBy(n)) == 0 {
			empty++
		}
	}
	if empty > 1 {
		t.Fatalf("%d of 64 nodes empty after 512*3 random replicas", empty)
	}
}

func TestRackAwarePlacement(t *testing.T) {
	v := rackedView(12, 3)
	fs := New(v, Config{Seed: 8, Placement: RackAwarePlacement{Writer: -1}})
	f, err := fs.Create("/a", 64*30)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range f.Chunks {
		c := fs.Chunk(id)
		racks := map[int]bool{}
		for _, r := range c.Replicas {
			racks[v.RackOf(r)] = true
		}
		if len(racks) < 2 {
			t.Fatalf("chunk %d: all replicas in one rack: %v", id, c.Replicas)
		}
	}
}

func TestClusteredPlacementPiles(t *testing.T) {
	fs := New(testView(8), Config{Seed: 9, Placement: ClusteredPlacement{}})
	fs.Create("/a", 64*10)
	for n := 0; n < 3; n++ {
		if len(fs.HostedBy(n)) != 10 {
			t.Fatalf("node %d hosts %d chunks, want 10", n, len(fs.HostedBy(n)))
		}
	}
	for n := 3; n < 8; n++ {
		if len(fs.HostedBy(n)) != 0 {
			t.Fatalf("node %d hosts %d chunks, want 0", n, len(fs.HostedBy(n)))
		}
	}
}

func TestRoundRobinPlacementEven(t *testing.T) {
	fs := New(testView(8), Config{Seed: 10, Placement: RoundRobinPlacement{}})
	fs.Create("/a", 64*8) // 8 chunks * 3 replicas over 8 nodes = 3 each
	for n := 0; n < 8; n++ {
		if got := len(fs.HostedBy(n)); got != 3 {
			t.Fatalf("node %d hosts %d, want 3", n, got)
		}
	}
}

func TestDecommissionReReplicates(t *testing.T) {
	fs := newFS(10, 11)
	fs.Create("/a", 64*40)
	victim := 0
	hosted := len(fs.HostedBy(victim))
	if hosted == 0 {
		t.Skip("victim hosts nothing under this seed")
	}
	moved, err := fs.Decommission(victim)
	if err != nil {
		t.Fatal(err)
	}
	if moved != hosted {
		t.Fatalf("moved %d, want %d", moved, hosted)
	}
	if fs.NumLiveNodes() != 9 {
		t.Fatalf("live nodes = %d, want 9", fs.NumLiveNodes())
	}
	// Every chunk must still have 3 distinct live replicas, none on victim.
	for i := 0; i < fs.NumChunks(); i++ {
		c := fs.Chunk(ChunkID(i))
		if len(c.Replicas) != 3 {
			t.Fatalf("chunk %d has %d replicas after decommission", i, len(c.Replicas))
		}
		if c.HostedOn(victim) {
			t.Fatalf("chunk %d still on decommissioned node", i)
		}
	}
	// Double decommission fails.
	if _, err := fs.Decommission(victim); err == nil {
		t.Fatal("second decommission should fail")
	}
}

func TestAddNodeAndSkew(t *testing.T) {
	fs := newFS(8, 12)
	// Nodes 6,7 join late: mark dead before writing.
	if err := fs.MarkDead(6); err != nil {
		t.Fatal(err)
	}
	if err := fs.MarkDead(7); err != nil {
		t.Fatal(err)
	}
	fs.Create("/a", 64*40)
	if len(fs.HostedBy(6))+len(fs.HostedBy(7)) != 0 {
		t.Fatal("dead nodes must not receive replicas")
	}
	if err := fs.AddNode(6); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddNode(7); err != nil {
		t.Fatal(err)
	}
	rep := fs.Utilization(0.1)
	if len(rep.Underloaded) < 2 {
		t.Fatalf("expected late-joining nodes to be underloaded: %+v", rep)
	}
	// MarkDead on a populated node must fail.
	if err := fs.MarkDead(0); err == nil {
		t.Fatal("MarkDead on populated node should fail")
	}
}

func TestBalanceEvensOutSkew(t *testing.T) {
	fs := newFS(8, 13)
	fs.MarkDead(6)
	fs.MarkDead(7)
	fs.Create("/a", 64*48)
	fs.AddNode(6)
	fs.AddNode(7)
	before := fs.Utilization(0.15)
	moved := fs.Balance(0.15)
	after := fs.Utilization(0.15)
	if moved == 0 {
		t.Fatal("balancer moved nothing despite skew")
	}
	if after.MaxMB-after.MinMB >= before.MaxMB-before.MinMB {
		t.Fatalf("balance did not reduce spread: before %v..%v after %v..%v",
			before.MinMB, before.MaxMB, after.MinMB, after.MaxMB)
	}
	// Invariant: replicas still distinct per chunk.
	for i := 0; i < fs.NumChunks(); i++ {
		c := fs.Chunk(ChunkID(i))
		seen := map[int]bool{}
		for _, r := range c.Replicas {
			if seen[r] {
				t.Fatalf("chunk %d duplicated replica after balance", i)
			}
			seen[r] = true
		}
	}
}

// TestPropertyPlacementInvariants fuzzes placements across policies.
func TestPropertyPlacementInvariants(t *testing.T) {
	policies := []Placement{RandomPlacement{}, RackAwarePlacement{Writer: -1}, RoundRobinPlacement{}}
	prop := func(seed int64, rawNodes, rawChunks uint8) bool {
		nodes := 3 + int(rawNodes)%30
		chunks := 1 + int(rawChunks)%50
		for _, pol := range policies {
			fs := New(rackedView(nodes, 1+nodes/4), Config{Seed: seed, Placement: pol})
			sizes := make([]float64, chunks)
			for i := range sizes {
				sizes[i] = 64
			}
			if _, err := fs.CreateChunks("/f", sizes); err != nil {
				t.Errorf("policy %T: %v", pol, err)
				return false
			}
			total := 0
			for n := 0; n < nodes; n++ {
				total += len(fs.HostedBy(n))
			}
			if total != chunks*3 {
				t.Errorf("policy %T: hosted %d, want %d", pol, total, chunks*3)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPickReplicaDistribution checks the remote pick is roughly
// uniform across the replica holders — the assumption behind the paper's
// §III-B imbalance model (each holder chosen with probability 1/r). The
// pick is deterministic per (chunk, reader), so uniformity is measured
// across many chunk/reader pairs, which is exactly how the model uses it.
func TestPropertyPickReplicaDistribution(t *testing.T) {
	fs := newFS(16, 99)
	f, _ := fs.Create("/a", 64*600)
	counts := [3]int{}
	trials := 0
	for _, id := range f.Chunks {
		c := fs.Chunk(id)
		for reader := 0; reader < 16; reader++ {
			if c.HostedOn(reader) {
				continue
			}
			node, local := fs.PickReplica(id, reader)
			if local {
				t.Fatal("non-co-located read reported local")
			}
			for i, r := range c.Replicas {
				if r == node {
					counts[i]++
				}
			}
			trials++
		}
	}
	for i, n := range counts {
		frac := float64(n) / float64(trials)
		if frac < 0.30 || frac > 0.37 { // 1/3 +- slack over ~7800 picks
			t.Fatalf("replica slot %d picked fraction %v, want ~1/3", i, frac)
		}
	}
}

// TestPickReplicaDeterministic: the same (chunk, reader) pair always picks
// the same serving node, regardless of call order — required for the
// concurrent MPI runtime to stay reproducible.
func TestPickReplicaDeterministic(t *testing.T) {
	fs := newFS(16, 100)
	f, _ := fs.Create("/a", 64*4)
	for _, id := range f.Chunks {
		c := fs.Chunk(id)
		reader := -1
		for n := 0; n < 16; n++ {
			if !c.HostedOn(n) {
				reader = n
				break
			}
		}
		first, _ := fs.PickReplica(id, reader)
		for i := 0; i < 5; i++ {
			if got, _ := fs.PickReplica(id, reader); got != first {
				t.Fatalf("pick changed across calls: %d vs %d", got, first)
			}
		}
	}
}

func TestDeterministicPlacement(t *testing.T) {
	build := func() []ChunkID {
		fs := newFS(32, 1234)
		fs.Create("/a", 64*100)
		var ids []ChunkID
		for n := 0; n < 32; n++ {
			ids = append(ids, fs.HostedBy(n)...)
		}
		return ids
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("placement not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement diverged at %d", i)
		}
	}
	// Shared RNG does not break determinism across interleaved use.
	_ = rand.New(rand.NewSource(0))
}
