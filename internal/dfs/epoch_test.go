package dfs

import (
	"strings"
	"testing"
)

// bumped runs op and asserts whether the placement epoch advanced. It also
// asserts monotonicity: the epoch may never move backwards.
func bumped(t *testing.T, fs *FileSystem, name string, want bool, op func() error) {
	t.Helper()
	before := fs.Epoch()
	err := op()
	after := fs.Epoch()
	if after < before {
		t.Fatalf("%s: epoch went backwards (%d -> %d)", name, before, after)
	}
	if want && after == before {
		t.Errorf("%s: epoch not bumped (still %d, op err: %v)", name, before, err)
	}
	if !want && after != before {
		t.Errorf("%s: epoch bumped %d -> %d, want unchanged (op err: %v)", name, before, after, err)
	}
}

// TestEpochBumpsOnEveryPlacementMutation walks every mutating entry point of
// the namenode and asserts it advances the epoch — the invalidation contract
// the plan cache relies on. Failed operations and namespace-only operations
// must leave it untouched.
func TestEpochBumpsOnEveryPlacementMutation(t *testing.T) {
	fs := New(testView(8), Config{Seed: 41})
	if fs.Epoch() != 0 {
		t.Fatalf("fresh file system epoch = %d, want 0", fs.Epoch())
	}

	// Writes: Create (via CreateChunks) and the client write pipeline.
	bumped(t, fs, "Create", true, func() error {
		_, err := fs.Create("/a", 128)
		return err
	})
	bumped(t, fs, "CreateChunks", true, func() error {
		_, err := fs.CreateChunks("/b", []float64{64, 64})
		return err
	})
	bumped(t, fs, "FileWriter.Close", true, func() error {
		w, err := fs.Client(0).Create("/written")
		if err != nil {
			return err
		}
		if _, err := w.Write([]byte(strings.Repeat("x", 4096))); err != nil {
			return err
		}
		return w.Close()
	})

	// Replica surgery.
	a, err := fs.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	c := fs.Chunk(a.Chunks[0])
	free := -1
	for n := 0; n < 8; n++ {
		if !c.HostedOn(n) {
			free = n
			break
		}
	}
	bumped(t, fs, "AddReplica", true, func() error { return fs.AddReplica(c.ID, free) })
	bumped(t, fs, "RemoveReplica", true, func() error { return fs.RemoveReplica(c.ID, free) })
	bumped(t, fs, "MoveReplica", true, func() error {
		return fs.MoveReplica(c.ID, c.Replicas[0], free)
	})

	// Namespace-only: Rename moves no data, Stat reads.
	bumped(t, fs, "Rename", false, func() error { return fs.Rename("/b", "/b2") })
	bumped(t, fs, "Stat", false, func() error {
		_, err := fs.Stat("/a")
		return err
	})

	// Deletes release replicas from their nodes.
	bumped(t, fs, "Delete", true, func() error { return fs.Delete("/b2") })

	// Node membership: remove (decommission), pre-declare dead, re-add.
	bumped(t, fs, "Decommission", true, func() error {
		_, err := fs.Decommission(7)
		return err
	})
	bumped(t, fs, "AddNode", true, func() error { return fs.AddNode(7) })
	bumped(t, fs, "MarkDead", true, func() error { return fs.MarkDead(7) })

	// Failed mutations leave the epoch alone.
	bumped(t, fs, "Create(existing)", false, func() error {
		_, err := fs.Create("/a", 64)
		if err == nil {
			t.Fatal("duplicate create succeeded")
		}
		return nil
	})
	bumped(t, fs, "AddReplica(duplicate)", false, func() error {
		if err := fs.AddReplica(c.ID, c.Replicas[0]); err == nil {
			t.Fatal("duplicate add succeeded")
		}
		return nil
	})
	bumped(t, fs, "Delete(missing)", false, func() error {
		if err := fs.Delete("/nope"); err == nil {
			t.Fatal("missing delete succeeded")
		}
		return nil
	})
	bumped(t, fs, "AddNode(live)", false, func() error {
		if err := fs.AddNode(0); err == nil {
			t.Fatal("adding a live node succeeded")
		}
		return nil
	})

	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after epoch walk: %v", problems)
	}
}

// TestEpochBumpsOnBalancerMoves asserts the balancer advances the epoch when
// (and only when) it moves replicas.
func TestEpochBumpsOnBalancerMoves(t *testing.T) {
	fs := New(testView(8), Config{Seed: 42, Placement: ClusteredPlacement{}})
	if _, err := fs.Create("/skewed", 1024); err != nil {
		t.Fatal(err)
	}
	before := fs.Epoch()
	moved := fs.Balance(0.1)
	if moved == 0 {
		t.Fatal("clustered layout balanced nothing; fixture broken")
	}
	if fs.Epoch() == before {
		t.Fatalf("balancer moved %d replicas without bumping the epoch", moved)
	}
	// The first pass ran to convergence (or no legal move), so a second
	// pass moves nothing and must not bump.
	before = fs.Epoch()
	if again := fs.Balance(0.1); again != 0 {
		t.Fatalf("second balance pass moved %d replicas; expected convergence", again)
	}
	if fs.Epoch() != before {
		t.Fatalf("no-op balance bumped epoch %d -> %d", before, fs.Epoch())
	}
}

// TestLiveNodesNonContiguous pins the shape redistribution's donor seeding
// depends on: after a removal the live IDs have a hole, and LiveNodes is the
// only correct way to enumerate them.
func TestLiveNodesNonContiguous(t *testing.T) {
	fs := New(testView(5), Config{Seed: 43})
	if err := fs.MarkDead(1); err != nil {
		t.Fatal(err)
	}
	got := fs.LiveNodes()
	want := []int{0, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("LiveNodes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LiveNodes() = %v, want %v", got, want)
		}
	}
	if fs.NumLiveNodes() != 4 {
		t.Fatalf("NumLiveNodes() = %d, want 4", fs.NumLiveNodes())
	}
}
