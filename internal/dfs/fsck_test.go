package dfs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFsckCleanOnFreshFS(t *testing.T) {
	fs := newFS(16, 61)
	fs.Create("/a", 64*40)
	fs.Create("/b", 64*7)
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck on fresh fs: %v", problems)
	}
}

// TestPropertyFsckSurvivesMutations runs random sequences of the
// mutation-heavy admin operations and checks the namenode never becomes
// inconsistent.
func TestPropertyFsckSurvivesMutations(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 8 + rng.Intn(8)
		fs := newFS(nodes, seed)
		if _, err := fs.Create("/data", float64(20+rng.Intn(30))*64); err != nil {
			t.Error(err)
			return false
		}
		for step := 0; step < 12; step++ {
			switch rng.Intn(5) {
			case 0:
				fs.Balance(0.05 + rng.Float64()*0.3)
			case 1:
				// Decommission a random live node (if enough remain).
				if fs.NumLiveNodes() > 4 {
					for n := 0; n < nodes; n++ {
						v := (n + rng.Intn(nodes)) % nodes
						if len(fs.HostedBy(v)) > 0 {
							fs.Decommission(v)
							break
						}
					}
				}
			case 2:
				// Random replica move.
				id := ChunkID(rng.Intn(fs.NumChunks()))
				c := fs.Chunk(id)
				src := c.Replicas[rng.Intn(len(c.Replicas))]
				dst := rng.Intn(nodes)
				_ = fs.MoveReplica(id, src, dst) // may legitimately fail
			case 3:
				id := ChunkID(rng.Intn(fs.NumChunks()))
				_ = fs.AddReplica(id, rng.Intn(nodes))
			case 4:
				id := ChunkID(rng.Intn(fs.NumChunks()))
				c := fs.Chunk(id)
				_ = fs.RemoveReplica(id, c.Replicas[rng.Intn(len(c.Replicas))])
			}
			if problems := fs.Fsck(); len(problems) != 0 {
				t.Errorf("seed %d step %d: fsck found %v", seed, step, problems)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	fs := newFS(8, 62)
	f, _ := fs.Create("/a", 64*4)
	// Corrupt deliberately: desync a replica list from the per-node index by
	// mutating the chunk directly.
	c := fs.Chunk(f.Chunks[0])
	c.Replicas = append(c.Replicas, 7)
	if len(fs.Fsck()) == 0 {
		t.Fatal("fsck missed a replica/index desync")
	}
}

func TestDeleteRemovesFileAndReplicas(t *testing.T) {
	fs := newFS(8, 63)
	f, _ := fs.Create("/doomed", 64*5)
	fs.Create("/keeper", 64*3)
	ids := append([]ChunkID(nil), f.Chunks...)
	if err := fs.Delete("/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/doomed"); err == nil {
		t.Fatal("stat of deleted file must fail")
	}
	for n := 0; n < 8; n++ {
		for _, id := range fs.HostedBy(n) {
			for _, gone := range ids {
				if id == gone {
					t.Fatalf("node %d still hosts deleted chunk %d", n, id)
				}
			}
		}
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after delete: %v", problems)
	}
	// Files() no longer lists it; the keeper survives.
	files := fs.Files()
	if len(files) != 1 || files[0] != "/keeper" {
		t.Fatalf("files = %v", files)
	}
	// Tombstoned chunk access panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on deleted chunk access")
		}
	}()
	fs.Chunk(ids[0])
}

func TestDeleteMissingFile(t *testing.T) {
	fs := newFS(4, 64)
	if err := fs.Delete("/nope"); err == nil {
		t.Fatal("deleting a missing file must fail")
	}
}

func TestDeleteThenRecreate(t *testing.T) {
	fs := newFS(8, 65)
	fs.Create("/a", 64*2)
	if err := fs.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/a", 64*4); err != nil {
		t.Fatalf("recreate after delete: %v", err)
	}
	f, _ := fs.Stat("/a")
	if len(f.Chunks) != 4 {
		t.Fatalf("recreated file has %d chunks", len(f.Chunks))
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck: %v", problems)
	}
}

func TestFixedPlacement(t *testing.T) {
	rows := [][]int{{0, 1, 2}, {3, 4, 5}, {1, 3, 7}}
	fs := New(testView(8), Config{Placement: FixedPlacement{Replicas: rows}})
	f, err := fs.Create("/a", 64*3)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range f.Chunks {
		c := fs.Chunk(id)
		want := append([]int(nil), rows[i]...)
		if len(c.Replicas) != 3 {
			t.Fatalf("chunk %d replicas %v", i, c.Replicas)
		}
		for _, w := range want {
			if !c.HostedOn(w) {
				t.Fatalf("chunk %d missing replica on %d", i, w)
			}
		}
	}
	// More chunks than rows panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on missing row")
		}
	}()
	fs.Create("/overflow", 64)
}

func TestRename(t *testing.T) {
	fs := newFS(8, 66)
	f, _ := fs.Create("/old", 64*3)
	ids := append([]ChunkID(nil), f.Chunks...)
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/old"); err == nil {
		t.Fatal("old name still resolves")
	}
	got, err := fs.Stat("/new")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "/new" || len(got.Chunks) != 3 {
		t.Fatalf("renamed file: %+v", got)
	}
	for _, id := range ids {
		if fs.Chunk(id).File != "/new" {
			t.Fatalf("chunk %d still claims old file", id)
		}
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after rename: %v", problems)
	}
	// Error paths.
	if err := fs.Rename("/missing", "/x"); err == nil {
		t.Fatal("renaming a missing file must fail")
	}
	fs.Create("/taken", 64)
	if err := fs.Rename("/new", "/taken"); err == nil {
		t.Fatal("renaming onto an existing file must fail")
	}
	if err := fs.Rename("/new", "/new"); err != nil {
		t.Fatal("self-rename should be a no-op")
	}
}

func TestBlockLocationsForDistanceOrder(t *testing.T) {
	v := rackedView(8, 2) // racks: node%2
	fs := New(v, Config{Seed: 67, Placement: FixedPlacement{Replicas: [][]int{
		{1, 4, 6}, // reader 6: 6 first (node), then 4 (rack 0 = 6%2... ) — verify below
		{3, 5, 7},
	}}})
	if _, err := fs.CreateChunks("/f", []float64{64, 64}); err != nil {
		t.Fatal(err)
	}
	// Reader on node 6 (rack 0): chunk 0 replicas {1,4,6}: node 6 first,
	// then node 4 (rack 0), then node 1 (rack 1).
	locs, err := fs.BlockLocationsFor("/f", 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{6, 4, 1}
	for i, n := range locs[0].Replicas {
		if n != want[i] {
			t.Fatalf("chunk 0 order %v, want %v", locs[0].Replicas, want)
		}
	}
	// Chunk 1 {3,5,7} for reader 6: no node match, no rack-0 replica (all
	// odd = rack 1): plain ascending.
	want1 := []int{3, 5, 7}
	for i, n := range locs[1].Replicas {
		if n != want1[i] {
			t.Fatalf("chunk 1 order %v, want %v", locs[1].Replicas, want1)
		}
	}
	// External reader: ascending order everywhere.
	ext, _ := fs.BlockLocationsFor("/f", -1)
	if ext[0].Replicas[0] != 1 {
		t.Fatalf("external order %v", ext[0].Replicas)
	}
	if _, err := fs.BlockLocationsFor("/missing", 0); err == nil {
		t.Fatal("missing file must fail")
	}
}
