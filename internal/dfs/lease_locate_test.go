package dfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// Regression: two writers racing for one path. Before the write lease the
// second Create succeeded and the loser only discovered ErrExists at Close,
// after buffering its entire payload.
func TestCreateReservesPathAgainstSecondWriter(t *testing.T) {
	fs := New(testView(8), Config{Seed: 1, ChunkSizeMB: 1.0 / 1024})
	w1, err := fs.Client(-1).Create("/contended")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Client(-1).Create("/contended"); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create while the path is leased: err = %v, want ErrExists", err)
	}
	if _, err := w1.Write([]byte("winner")); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	// The lease is gone but the file now exists.
	if _, err := fs.Client(-1).Create("/contended"); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over an existing file: err = %v, want ErrExists", err)
	}
}

func TestFailedCloseReleasesReservation(t *testing.T) {
	fs := New(testView(8), Config{Seed: 1})
	w, err := fs.Client(-1).Create("/empty")
	if err != nil {
		t.Fatal(err)
	}
	// Closing with no data fails — and must still release the lease.
	if err := w.Close(); err == nil {
		t.Fatal("closing an empty writer should fail")
	}
	w2, err := fs.Client(-1).Create("/empty")
	if err != nil {
		t.Fatalf("path still leased after failed close: %v", err)
	}
	if _, err := w2.Write([]byte("retry")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/empty"); err != nil {
		t.Fatalf("retried write did not register the file: %v", err)
	}
}

func TestAbortReleasesReservation(t *testing.T) {
	fs := New(testView(8), Config{Seed: 1})
	w, err := fs.Client(-1).Create("/aborted")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("discard me")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent
	if _, err := fs.Stat("/aborted"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted write registered the file: err = %v", err)
	}
	if _, err := fs.Client(-1).Create("/aborted"); err != nil {
		t.Fatalf("path still leased after abort: %v", err)
	}
}

func TestNamespaceOpsRespectWriteLease(t *testing.T) {
	fs := New(testView(8), Config{Seed: 1})
	if _, err := fs.Create("/other", 1); err != nil {
		t.Fatal(err)
	}
	w, err := fs.Client(-1).Create("/leased")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if _, err := fs.Create("/leased", 1); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over a leased path: err = %v, want ErrExists", err)
	}
	if err := fs.Rename("/other", "/leased"); !errors.Is(err, ErrExists) {
		t.Fatalf("Rename onto a leased path: err = %v, want ErrExists", err)
	}
}

// Correctness of the binary-searched locate over uneven chunk boundaries:
// positional reads must agree with a whole-file sequential read.
func TestLocateUnevenChunks(t *testing.T) {
	fs := New(testView(8), Config{Seed: 3})
	sizes := []float64{0.5, 2.0 / 1024, 1.25, 3.0 / 1024, 0.75}
	f, err := fs.CreateChunks("/uneven", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Chunks) != len(sizes) {
		t.Fatalf("chunks = %d, want %d", len(f.Chunks), len(sizes))
	}
	r, err := fs.Client(0).Open("/uneven")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	whole, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(whole)) != r.Size() {
		t.Fatalf("sequential read returned %d bytes, want %d", len(whole), r.Size())
	}
	// Probe every chunk boundary (straddling it) plus interior offsets.
	var offs []int64
	var base int64
	for _, s := range sizes {
		sz := bytesOf(s)
		offs = append(offs, base, base+1, base+sz-1, base+sz/2)
		base += sz
	}
	offs = append(offs, 0, base-1)
	buf := make([]byte, 100)
	for _, off := range offs {
		n, err := r.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(buf[:n], whole[off:off+int64(n)]) {
			t.Fatalf("ReadAt(%d) disagrees with sequential read", off)
		}
	}
	if _, err := r.ReadAt(buf, r.Size()); err != io.EOF {
		t.Fatalf("ReadAt past EOF: err = %v, want io.EOF", err)
	}
}

// BenchmarkFileReaderLocate isolates the positional-lookup cost: one-byte
// reads at every chunk boundary of a many-chunk file. With the old linear
// locate each pass was O(chunks²) in chunk-list scans.
func BenchmarkFileReaderLocate(b *testing.B) {
	const chunks = 8192
	fs := New(testView(8), Config{Seed: 4})
	sizes := make([]float64, chunks)
	for i := range sizes {
		sizes[i] = 1.0 / 16 // 64 KiB
	}
	if _, err := fs.CreateChunks("/bench", sizes); err != nil {
		b.Fatal(err)
	}
	r, err := fs.Client(0).Open("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	stride := bytesOf(sizes[0])
	buf := make([]byte, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%chunks) * stride
		if _, err := r.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}
