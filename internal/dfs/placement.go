package dfs

import (
	"fmt"
	"math/rand"
	"sort"
)

// Placement chooses the nodes that will host a chunk's replicas. Place must
// return exactly r distinct members of live. Implementations must draw all
// randomness from rng so file system construction stays deterministic.
type Placement interface {
	Place(rng *rand.Rand, view ClusterView, live []int, r int, c *Chunk) []int
}

// RandomPlacement scatters replicas uniformly over distinct live nodes.
// This is how HDFS placement looks to the paper's MPI clients: the writer
// is outside the cluster, so every replica lands on a random node (subject
// to the no-two-replicas-per-node rule).
type RandomPlacement struct{}

// Place implements Placement.
func (RandomPlacement) Place(rng *rand.Rand, _ ClusterView, live []int, r int, _ *Chunk) []int {
	idx := rng.Perm(len(live))[:r]
	out := make([]int, r)
	for i, j := range idx {
		out[i] = live[j]
	}
	return out
}

// RackAwarePlacement mimics the HDFS default block placement policy for an
// in-cluster writer: the first replica goes to a designated writer node
// (rotating over chunks when Writer < 0), the second to a node on a
// different rack, and the third to a different node on the second replica's
// rack. Remaining replicas (r > 3) are placed randomly.
type RackAwarePlacement struct {
	// Writer pins the first replica's node; a negative value rotates the
	// writer across chunks (chunk index modulo live nodes), approximating a
	// parallel writer per the Garth/Sun HDFS-writing schemes the paper cites.
	Writer int
}

// Place implements Placement.
func (p RackAwarePlacement) Place(rng *rand.Rand, view ClusterView, live []int, r int, c *Chunk) []int {
	chosen := make([]int, 0, r)
	used := make(map[int]bool, r)
	pick := func(candidates []int) bool {
		if len(candidates) == 0 {
			return false
		}
		n := candidates[rng.Intn(len(candidates))]
		chosen = append(chosen, n)
		used[n] = true
		return true
	}

	first := p.Writer
	if first < 0 || !contains(live, first) {
		// No writer pinned, or the pinned writer is dead/out of range:
		// rotate over chunks either way. Falling back to a random node
		// would silently break the rotating-writer determinism callers
		// rely on (and consume an extra RNG draw, shifting every later
		// placement decision).
		first = live[c.Index%len(live)]
	}
	chosen = append(chosen, first)
	used[first] = true

	if len(chosen) < r {
		// Second replica: different rack than the first, if one exists.
		other := filter(live, func(n int) bool {
			return !used[n] && view.RackOf(n) != view.RackOf(first)
		})
		if len(other) == 0 {
			other = filter(live, func(n int) bool { return !used[n] })
		}
		pick(other)
	}
	if len(chosen) < r && len(chosen) >= 2 {
		// Third replica: same rack as the second, different node.
		second := chosen[1]
		same := filter(live, func(n int) bool {
			return !used[n] && view.RackOf(n) == view.RackOf(second)
		})
		if len(same) == 0 {
			same = filter(live, func(n int) bool { return !used[n] })
		}
		pick(same)
	}
	for len(chosen) < r {
		rest := filter(live, func(n int) bool { return !used[n] })
		if !pick(rest) {
			break
		}
	}
	return chosen
}

// ClusteredPlacement piles replicas onto the lowest-numbered live nodes —
// a pathological policy used by tests and the placement ablation to model
// the skew left behind by node addition (new nodes empty, old nodes full).
type ClusteredPlacement struct{}

// Place implements Placement.
func (ClusteredPlacement) Place(_ *rand.Rand, _ ClusterView, live []int, r int, _ *Chunk) []int {
	sorted := append([]int(nil), live...)
	sort.Ints(sorted)
	return append([]int(nil), sorted[:r]...)
}

// RoundRobinPlacement stripes chunk replicas evenly across live nodes:
// the replicas of the chunk with global ID i land on nodes (i*r+k) mod
// len(live). It produces the "ideal" even distribution under which a full
// matching always exists, which the even/uneven placement ablation compares
// against.
type RoundRobinPlacement struct{}

// Place implements Placement.
func (RoundRobinPlacement) Place(_ *rand.Rand, _ ClusterView, live []int, r int, c *Chunk) []int {
	out := make([]int, r)
	for k := 0; k < r; k++ {
		out[k] = live[(int(c.ID)*r+k)%len(live)]
	}
	// The modulo stripe can collide when r approaches len(live); repair by
	// walking forward to the next unused node.
	used := map[int]bool{}
	for i, n := range out {
		for used[n] {
			n = live[(indexOf(live, n)+1)%len(live)]
		}
		out[i] = n
		used[n] = true
	}
	return out
}

// FixedPlacement places each chunk exactly where the caller says: chunk
// with global ID i goes to Replicas[i]. It lets tests and external layout
// descriptions (e.g. the opassd planning service) reconstruct a real
// cluster's placement bit-for-bit. Creating more chunks than Replicas has
// rows panics.
type FixedPlacement struct {
	Replicas [][]int
}

// Place implements Placement.
func (p FixedPlacement) Place(_ *rand.Rand, _ ClusterView, live []int, r int, c *Chunk) []int {
	if int(c.ID) >= len(p.Replicas) {
		panic(fmt.Sprintf("dfs: fixed placement has no row for chunk %d", c.ID))
	}
	row := p.Replicas[int(c.ID)]
	if len(row) != r {
		panic(fmt.Sprintf("dfs: fixed placement row %d has %d replicas, want %d", c.ID, len(row), r))
	}
	return append([]int(nil), row...)
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func filter(xs []int, keep func(int) bool) []int {
	var out []int
	for _, x := range xs {
		if keep(x) {
			out = append(out, x)
		}
	}
	return out
}
