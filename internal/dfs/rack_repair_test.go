package dfs

import "testing"

func rackSpread(v view, c *Chunk) map[int]bool {
	m := map[int]bool{}
	for _, n := range c.Replicas {
		m[v.RackOf(n)] = true
	}
	return m
}

// TestReReplicateRestoresRackDiversity: under the HDFS placement policy a
// chunk's replicas span at least two racks. When the first replica's node
// crashes, the two survivors sit in ONE rack (second and third replicas
// share a rack by construction), and a repair that picks a uniformly
// random live target — the old behavior — has a good chance of landing in
// that same rack, silently losing the fault domain. The topology-aware
// chooser must restore the spread for every chunk, deterministically.
func TestReReplicateRestoresRackDiversity(t *testing.T) {
	v := rackedView(12, 3)
	fs := New(v, Config{Seed: 5, Placement: RackAwarePlacement{Writer: -1}, Replication: 3})
	if _, err := fs.Create("/data", 64*40); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fs.NumChunks(); i++ {
		if len(rackSpread(v, fs.Chunk(ChunkID(i)))) < 2 {
			t.Fatalf("placement sanity: chunk %d spans one rack", i)
		}
	}
	victim := fs.Chunk(0).Replicas[0]
	under, _, err := fs.Crash(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(under) == 0 {
		t.Fatal("crash left nothing under-replicated; scenario exercises nothing")
	}
	if repaired := fs.ReReplicate(); repaired != len(under) {
		t.Fatalf("repaired %d chunks, want %d", repaired, len(under))
	}
	for i := 0; i < fs.NumChunks(); i++ {
		c := fs.Chunk(ChunkID(i))
		if len(c.Replicas) != 3 {
			t.Fatalf("chunk %d has %d replicas after repair, want 3", i, len(c.Replicas))
		}
		if c.HostedOn(victim) {
			t.Fatalf("chunk %d still lists the crashed node %d", i, victim)
		}
		if len(rackSpread(v, c)) < 2 {
			t.Fatalf("chunk %d replicas %v collapsed into one rack after repair", i, c.Replicas)
		}
	}
}

// TestRackAwarePlacementDeadWriterFallsBackToRotation: a pinned Writer
// that is dead or out of range must fall back to the chunk-index rotation,
// not to a random live node — randomness there breaks the deterministic
// writer rotation and shifts every later placement draw.
func TestRackAwarePlacementDeadWriterFallsBackToRotation(t *testing.T) {
	for _, writer := range []int{3, 99} {
		v := rackedView(8, 2)
		fs := New(v, Config{Seed: 9, Placement: RackAwarePlacement{Writer: writer}, Replication: 3})
		if writer < v.NumNodes() {
			if _, _, err := fs.Crash(writer); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := fs.Create("/data", 64*20); err != nil {
			t.Fatal(err)
		}
		live := fs.LiveNodes()
		for i := 0; i < fs.NumChunks(); i++ {
			c := fs.Chunk(ChunkID(i))
			// Replicas are stored sorted, so assert membership: the
			// rotation node must hold a copy of its chunk.
			want := live[c.Index%len(live)]
			if !c.HostedOn(want) {
				t.Fatalf("writer=%d: chunk %d replicas %v miss rotation node %d",
					writer, i, c.Replicas, want)
			}
			if writer < v.NumNodes() && c.HostedOn(writer) {
				t.Fatalf("writer=%d: chunk %d placed on the dead writer", writer, i)
			}
		}
	}
}
