package dfs

import (
	"testing"
)

func TestCrashDropsReplicasAndBumpsEpoch(t *testing.T) {
	fs := New(testView(6), Config{Seed: 9, Replication: 3})
	if _, err := fs.Create("/data", 64*8); err != nil {
		t.Fatal(err)
	}
	victim := fs.Chunk(0).Replicas[0]
	hosted := len(fs.HostedBy(victim))
	if hosted == 0 {
		t.Fatal("victim hosts nothing; bad test setup")
	}
	before := fs.Epoch()
	under, lost, err := fs.Crash(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("single crash with r=3 lost chunks: %v", lost)
	}
	if len(under) != hosted {
		t.Fatalf("under-replicated = %d chunks, want %d (everything the victim hosted)", len(under), hosted)
	}
	if fs.Epoch() == before {
		t.Fatal("crash did not bump the placement epoch")
	}
	for _, id := range under {
		c := fs.Chunk(id)
		if len(c.Replicas) != 2 {
			t.Fatalf("chunk %d has %d replicas, want 2", id, len(c.Replicas))
		}
		if c.HostedOn(victim) {
			t.Fatalf("chunk %d still lists the crashed node", id)
		}
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after crash: %v", problems)
	}
	// Idempotent on a dead node.
	before = fs.Epoch()
	if under, lost, err := fs.Crash(victim); err != nil || under != nil || lost != nil {
		t.Fatalf("re-crash = (%v,%v,%v), want no-op", under, lost, err)
	}
	if fs.Epoch() != before {
		t.Fatal("no-op re-crash bumped the epoch")
	}
}

func TestCrashReportsLostChunks(t *testing.T) {
	fs := New(testView(6), Config{Seed: 9, Replication: 2, Placement: ClusteredPlacement{}})
	if _, err := fs.Create("/data", 64*4); err != nil {
		t.Fatal(err)
	}
	// ClusteredPlacement packs all replicas onto nodes {0,1}; crashing both
	// loses every chunk.
	if _, lost, err := fs.Crash(0); err != nil || len(lost) != 0 {
		t.Fatalf("first crash: lost=%v err=%v", lost, err)
	}
	_, lost, err := fs.Crash(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != fs.NumChunks() {
		t.Fatalf("lost %d chunks, want all %d", len(lost), fs.NumChunks())
	}
}

func TestReReplicateRestoresFactorAndInvalidatesPlans(t *testing.T) {
	fs := New(testView(6), Config{Seed: 11, Replication: 3})
	if _, err := fs.Create("/data", 64*10); err != nil {
		t.Fatal(err)
	}
	victim := fs.Chunk(0).Replicas[0]
	under, _, err := fs.Crash(victim)
	if err != nil {
		t.Fatal(err)
	}
	before := fs.Epoch()
	repaired := fs.ReReplicate()
	if repaired != len(under) {
		t.Fatalf("repaired %d chunks, want %d", repaired, len(under))
	}
	if fs.Epoch() == before {
		t.Fatal("repair did not bump the placement epoch")
	}
	for i := 0; i < fs.NumChunks(); i++ {
		c := fs.Chunk(ChunkID(i))
		if len(c.Replicas) != 3 {
			t.Fatalf("chunk %d has %d replicas after repair, want 3", i, len(c.Replicas))
		}
		if c.HostedOn(victim) {
			t.Fatalf("repair placed a replica on the dead node for chunk %d", i)
		}
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after repair: %v", problems)
	}
	// Nothing left to do: a second pass is a no-op and keeps the epoch.
	before = fs.Epoch()
	if again := fs.ReReplicate(); again != 0 {
		t.Fatalf("second repair pass fixed %d chunks, want 0", again)
	}
	if fs.Epoch() != before {
		t.Fatal("no-op repair bumped the epoch")
	}
}

// A layout built with a low Config factor plus explicit AddReplica calls
// (the HTTP API's construction) must repair to the chunk's real redundancy,
// not the config default: replication targets are per-chunk metadata.
func TestReReplicateHonorsPerChunkTarget(t *testing.T) {
	fs := New(testView(6), Config{Seed: 15, Replication: 1, Placement: FixedPlacement{Replicas: [][]int{{0}, {1}}}})
	f, err := fs.CreateChunks("/layout", []float64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 0 gets three replicas, chunk 1 stays at the config factor.
	for _, node := range []int{2, 4} {
		if err := fs.AddReplica(f.Chunks[0], node); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.Chunk(f.Chunks[0]).ReplicationTarget(); got != 3 {
		t.Fatalf("target after AddReplica = %d, want 3", got)
	}
	under, lost, err := fs.Crash(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("lost = %v, want none (chunk 0 had copies on 2 and 4)", lost)
	}
	if len(under) != 1 || under[0] != f.Chunks[0] {
		t.Fatalf("under-replicated = %v, want [%d]", under, f.Chunks[0])
	}
	if repaired := fs.ReReplicate(); repaired != 1 {
		t.Fatalf("repaired %d chunks, want 1", repaired)
	}
	if got := len(fs.Chunk(f.Chunks[0]).Replicas); got != 3 {
		t.Fatalf("chunk 0 has %d replicas after repair, want 3", got)
	}
	// Chunk 1 sits at its own target of 1 and must not be touched.
	if got := len(fs.Chunk(f.Chunks[1]).Replicas); got != 1 {
		t.Fatalf("chunk 1 has %d replicas, want 1", got)
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck: %v", problems)
	}
}

// An explicit RemoveReplica is a setrep: repair must not restore the copy.
// A MoveReplica is not: the target survives the move.
func TestRemoveReplicaLowersTargetMoveKeepsIt(t *testing.T) {
	fs := New(testView(6), Config{Seed: 17, Replication: 3})
	f, err := fs.Create("/data", 64)
	if err != nil {
		t.Fatal(err)
	}
	c := fs.Chunk(f.Chunks[0])
	if err := fs.RemoveReplica(c.ID, c.Replicas[0]); err != nil {
		t.Fatal(err)
	}
	if got := c.ReplicationTarget(); got != 2 {
		t.Fatalf("target after RemoveReplica = %d, want 2", got)
	}
	if repaired := fs.ReReplicate(); repaired != 0 {
		t.Fatalf("repair undid an explicit replica removal (%d chunks)", repaired)
	}
	var free int
	for free = 0; c.HostedOn(free); free++ {
	}
	if err := fs.MoveReplica(c.ID, c.Replicas[0], free); err != nil {
		t.Fatal(err)
	}
	if got := c.ReplicationTarget(); got != 2 {
		t.Fatalf("target after MoveReplica = %d, want 2", got)
	}
}

func TestReReplicateSkipsLostChunksAndSmallClusters(t *testing.T) {
	// 3 live nodes, r=3: after one crash every chunk is under-replicated but
	// only 2 live nodes remain, so repair can do nothing — and must not loop.
	fs := New(testView(3), Config{Seed: 13, Replication: 3})
	if _, err := fs.Create("/data", 64*2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Crash(0); err != nil {
		t.Fatal(err)
	}
	if repaired := fs.ReReplicate(); repaired != 0 {
		t.Fatalf("repaired %d chunks with no eligible targets, want 0", repaired)
	}
	if problems := fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck: %v", problems)
	}
}
