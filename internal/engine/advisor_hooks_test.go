package engine

import (
	"math"
	"reflect"
	"testing"

	"opass/internal/core"
	"opass/internal/dfs"
)

// steerer is a minimal ReadSteerer: lowest-numbered holder wins, every
// consultation and read start is tallied.
type steerer struct {
	picks   int
	started map[int]float64
}

func (s *steerer) PickRemote(reader int, holders []int, sizeMB float64) int {
	s.picks++
	best := holders[0]
	for _, h := range holders[1:] {
		if h < best {
			best = h
		}
	}
	return best
}

func (s *steerer) ReadStarted(node int, sizeMB float64) {
	if s.started == nil {
		s.started = map[int]float64{}
	}
	s.started[node] += sizeMB
}

// TestRunBalancerSteersRemoteReads mirrors
// TestServingBalancerSteersRemoteReads for the single-job path: PR 7 wired
// the serving balancer only into RunJobsScheduled, so Run/RunContext
// silently never consulted it.
func TestRunBalancerSteersRemoteReads(t *testing.T) {
	r := buildRig(t, 8, 40, 21, dfs.RandomPlacement{})
	// RankStatic ignores locality, guaranteeing remote reads to steer.
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	bal := &steerer{}
	opts := r.opts("rank")
	opts.Balancer = bal
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	remote := 0
	startedWant := map[int]float64{}
	for _, rec := range res.Records {
		startedWant[rec.SrcNode] += rec.SizeMB
		if rec.Local {
			continue
		}
		remote++
		// Every remote read must have gone where the balancer said: the
		// lowest-numbered holder of its chunk.
		holders := r.fs.Chunk(rec.Chunk).Replicas
		best := -1
		for _, h := range holders {
			if h != rec.DstNode && (best < 0 || h < best) {
				best = h
			}
		}
		if rec.SrcNode != best {
			t.Fatalf("remote read of chunk %d served by %d, balancer chose %d", rec.Chunk, rec.SrcNode, best)
		}
	}
	if remote == 0 {
		t.Fatal("no remote reads; the balancer path was not exercised")
	}
	if bal.picks != remote {
		t.Fatalf("balancer consulted %d times for %d remote reads", bal.picks, remote)
	}
	if !reflect.DeepEqual(bal.started, startedWant) {
		t.Fatalf("ReadStarted tally %v, want %v", bal.started, startedWant)
	}
}

// TestRunBalancerSkipsCrashedHolders: the steered pick must choose among
// live holders only — a crashed node handed to PickRemote would abort the
// run (or worse, serve a read from a dead DataNode).
func TestRunBalancerSkipsCrashedHolders(t *testing.T) {
	r := buildRig(t, 8, 40, 22, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	bal := &steerer{}
	opts := r.opts("rank")
	opts.Balancer = bal
	opts.Failures = []NodeFailure{{Node: 0, At: 0}}
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.SrcNode == 0 {
			t.Fatalf("read of chunk %d served by the crashed node 0", rec.Chunk)
		}
	}
}

// TestRunRecordsAccessStats: the single-job read path must feed the dfs
// access accounting (the telemetry the replication advisor classifies on).
func TestRunRecordsAccessStats(t *testing.T) {
	r := buildRig(t, 8, 40, 23, dfs.RandomPlacement{})
	r.fs.EnableAccessStats(1e6) // effectively undecayed over this run
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAssignment(r.opts("rank"), a)
	if err != nil {
		t.Fatal(err)
	}
	now := 1e3
	var total uint64
	var servedMB, remoteMB float64
	for id := dfs.ChunkID(0); int(id) < r.fs.NumChunks(); id++ {
		st := r.fs.Access(id, now)
		total += st.TotalReads
		servedMB += st.ServedMB
		remoteMB += st.RemoteMB
	}
	if total != uint64(len(res.Records)) {
		t.Fatalf("accounted %d reads, engine recorded %d", total, len(res.Records))
	}
	var wantRemote float64
	for _, rec := range res.Records {
		if !rec.Local {
			wantRemote += rec.SizeMB
		}
	}
	// The long half-life still decays scores by ~0.1% between the reads and
	// the query, so compare within a relative tolerance.
	if math.Abs(remoteMB-wantRemote) > 0.01*wantRemote {
		t.Fatalf("remote MB accounted %v, want ~%v", remoteMB, wantRemote)
	}
	if want := 40 * 64.0; math.Abs(servedMB-want) > 0.01*want {
		t.Fatalf("served MB accounted %v, want ~%v", servedMB, want)
	}
}

// tickRecorder is a minimal AdvisorTicker.
type tickRecorder struct {
	times   []float64
	changed bool
}

func (a *tickRecorder) Tick(now float64) bool {
	a.times = append(a.times, now)
	return a.changed
}

func TestAdvisorTicksFirePeriodically(t *testing.T) {
	r := buildRig(t, 8, 80, 24, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	adv := &tickRecorder{}
	opts := r.opts("rank")
	opts.Advisor = adv
	opts.AdvisorInterval = 2
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdvisorTicks != len(adv.times) {
		t.Fatalf("AdvisorTicks = %d, ticker saw %d", res.AdvisorTicks, len(adv.times))
	}
	if len(adv.times) < 2 {
		t.Fatalf("advisor ticked %d times over a %.1fs run at interval 2s", len(adv.times), res.Makespan)
	}
	for i, now := range adv.times {
		if want := float64(i+1) * 2; math.Abs(now-want) > 1e-6 {
			t.Fatalf("tick %d at %v, want %v", i, now, want)
		}
	}
	// Ticks must stop once every process has drained: at most one trailing
	// pass past the makespan.
	if got, cap := len(adv.times), int(res.Makespan/2)+2; got > cap {
		t.Fatalf("%d ticks for a %.1fs run (interval 2s): timer kept rescheduling", got, res.Makespan)
	}
}

func TestAdvisorRequiresInterval(t *testing.T) {
	r := buildRig(t, 4, 8, 25, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	opts := r.opts("rank")
	opts.Advisor = &tickRecorder{}
	if _, err := RunAssignment(opts, a); err == nil {
		t.Fatal("advisor without interval accepted")
	}
}
