package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"opass/internal/core"
	"opass/internal/dfs"
)

func TestRunContextAlreadyCancelled(t *testing.T) {
	r := buildRig(t, 8, 40, 1, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunAssignmentContext(ctx, r.opts("rank"), a)
	if res != nil {
		t.Fatalf("got a partial result %+v, want nil", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The aborted-before-start run must not have touched the network.
	if got := r.topo.Net().Active(); got != 0 {
		t.Fatalf("network has %d active flows after pre-start abort", got)
	}
	if _, err := RunAssignment(r.opts("rank"), a); err != nil {
		t.Fatalf("rerun after abort failed: %v", err)
	}
}

func TestRunContextExpiredDeadline(t *testing.T) {
	r := buildRig(t, 8, 40, 2, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := RunAssignmentContext(ctx, r.opts("rank"), a)
	if res != nil {
		t.Fatalf("got a partial result %+v, want nil", res)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// cancellingSource cancels the run's own context after serving `after`
// tasks — a deterministic mid-run abort with no wall-clock dependence.
type cancellingSource struct {
	inner  TaskSource
	cancel context.CancelFunc
	after  int
	served int
}

func (s *cancellingSource) Next(proc int) (int, bool) {
	s.served++
	if s.served == s.after {
		s.cancel()
	}
	return s.inner.Next(proc)
}

func TestRunContextMidRunCancelLeavesNetworkIdle(t *testing.T) {
	r := buildRig(t, 8, 80, 3, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{inner: NewListSource(a.Lists), cancel: cancel, after: 12}
	res, err := RunContext(ctx, r.opts("rank"), src)
	if res != nil {
		t.Fatalf("got a partial result %+v, want nil", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abort must tear down every in-flight read so the shared network
	// is reusable — sequential rounds share one clock.
	if got := r.topo.Net().Active(); got != 0 {
		t.Fatalf("network has %d active flows after mid-run abort", got)
	}
	res2, err := RunAssignment(r.opts("rank"), a)
	if err != nil {
		t.Fatalf("rerun after mid-run abort failed: %v", err)
	}
	if res2.TasksRun != 80 {
		t.Fatalf("rerun executed %d tasks, want 80", res2.TasksRun)
	}
}

func TestRunContextAbortTearsDownFailureTimers(t *testing.T) {
	// A far-future failure timer is an in-flight simnet flow; an abort must
	// cancel it too, or the network stays busy for the next round.
	r := buildRig(t, 8, 80, 4, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := r.opts("rank")
	opts.Failures = []NodeFailure{{Node: 0, At: 1e9}}
	src := &cancellingSource{inner: NewListSource(a.Lists), cancel: cancel, after: 10}
	if _, err := RunContext(ctx, opts, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := r.topo.Net().Active(); got != 0 {
		t.Fatalf("network has %d active flows (leaked failure timer?)", got)
	}
}
