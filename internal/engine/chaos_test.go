package engine

import (
	"testing"

	"opass/internal/core"
	"opass/internal/dfs"
)

// postFailureLocalFraction is the fraction of megabytes read locally by
// reads that started at or after the given time.
func postFailureLocalFraction(res *Result, after float64) float64 {
	var local, total float64
	for _, rec := range res.Records {
		if rec.Start < after {
			continue
		}
		total += rec.SizeMB
		if rec.Local {
			local += rec.SizeMB
		}
	}
	if total == 0 {
		return 1
	}
	return local / total
}

func opassAssignment(t *testing.T, r *rig, seed int64) *core.Assignment {
	t.Helper()
	a, err := core.SingleData{Seed: seed}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// The headline chaos invariant: after a permanent crash, replanning the
// backlog (with repair) strictly beats per-read failover on both the
// post-failure local fraction and the makespan, while running exactly the
// same tasks on the same seed.
func TestChaosReplanBeatsFailoverAfterCrash(t *testing.T) {
	const (
		nodes  = 16
		chunks = 128
		seed   = 7
		failAt = 1.0
	)
	run := func(replan bool) *Result {
		r := buildRig(t, nodes, chunks, seed, dfs.RandomPlacement{})
		a := opassAssignment(t, r, seed)
		opts := r.opts("opass")
		opts.Failures = []NodeFailure{{Node: 1, At: failAt}}
		if replan {
			opts.Replan = true
			opts.Repair = true
			opts.RepairDelay = 2.0
			opts.ReplanSeed = seed
		}
		res, err := RunAssignment(opts, a)
		if err != nil {
			t.Fatal(err)
		}
		if r.topo.Net().Active() != 0 {
			t.Fatal("network not idle after run")
		}
		if res.TasksRun != chunks {
			t.Fatalf("tasks run = %d, want %d", res.TasksRun, chunks)
		}
		for _, rec := range res.Records {
			if rec.SrcNode == 1 && rec.End > failAt+1e-9 {
				t.Fatalf("read served by the crashed node after the failure: %+v", rec)
			}
		}
		return res
	}
	failover := run(false)
	replanned := run(true)
	if replanned.Replans == 0 {
		t.Fatal("replanning run never replanned")
	}
	if replanned.RepairedChunks == 0 {
		t.Fatal("repair never restored a chunk")
	}
	fo, rp := postFailureLocalFraction(failover, failAt), postFailureLocalFraction(replanned, failAt)
	if rp <= fo {
		t.Fatalf("post-failure local fraction: replan %v <= failover %v", rp, fo)
	}
	if replanned.Makespan >= failover.Makespan {
		t.Fatalf("makespan: replan %v >= failover %v", replanned.Makespan, failover.Makespan)
	}
}

// A transient outage: the node's reads fail over while it is down, and no
// read started during the outage is served by it; after recovery it may
// serve again and the job completes normally.
func TestChaosTransientFailureRecovery(t *testing.T) {
	const (
		nodes             = 16
		chunks            = 128
		seed              = 11
		downAt, recoverAt = 0.5, 3.0
	)
	r := buildRig(t, nodes, chunks, seed, dfs.RandomPlacement{})
	a := opassAssignment(t, r, seed)
	opts := r.opts("opass")
	opts.Failures = []NodeFailure{{Node: 2, At: downAt, RecoverAt: recoverAt}}
	opts.Replan = true
	opts.ReplanSeed = seed
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != chunks {
		t.Fatalf("tasks run = %d, want %d", res.TasksRun, chunks)
	}
	if len(res.RecoveredNodes) != 1 || res.RecoveredNodes[0] != 2 {
		t.Fatalf("recovered nodes = %v, want [2]", res.RecoveredNodes)
	}
	served := false
	for _, rec := range res.Records {
		if rec.SrcNode != 2 {
			continue
		}
		if rec.End > downAt+1e-9 && rec.Start < recoverAt {
			t.Fatalf("read served by node 2 during its outage: %+v", rec)
		}
		if rec.Start >= recoverAt {
			served = true
		}
	}
	if !served {
		t.Fatal("recovered node never served a read again")
	}
	// The outage never touched the namenode: replication is intact.
	if problems := r.fs.Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after transient outage: %v", problems)
	}
	if r.topo.Net().Active() != 0 {
		t.Fatal("network not idle after run")
	}
}

// A degraded (slow but alive) node: without replanning its process drags
// the whole job; replanning shifts most of its share to healthy nodes.
// After the run the shared topology must be back at nominal speed.
func TestChaosDegradedNodeReplanAvoidsStraggler(t *testing.T) {
	const (
		nodes  = 16
		chunks = 128
		seed   = 13
	)
	run := func(replan bool) *Result {
		r := buildRig(t, nodes, chunks, seed, dfs.RandomPlacement{})
		a := opassAssignment(t, r, seed)
		opts := r.opts("opass")
		opts.Degradations = []NodeDegradation{{Node: 1, At: 0.5, DiskFactor: 0.1, NICFactor: 1.0}}
		if replan {
			opts.Replan = true
			opts.ReplanSeed = seed
		}
		res, err := RunAssignment(opts, a)
		if err != nil {
			t.Fatal(err)
		}
		// The degradation (Until == 0: rest of the run) is lifted on exit.
		if got := r.topo.Net().Scale(r.topo.DiskResource(1)); got != 1 {
			t.Fatalf("disk scale after run = %v, want 1", got)
		}
		if res.TasksRun != chunks {
			t.Fatalf("tasks run = %d, want %d", res.TasksRun, chunks)
		}
		return res
	}
	static := run(false)
	replanned := run(true)
	if replanned.Replans == 0 {
		t.Fatal("degradation did not trigger a replan")
	}
	if replanned.Makespan >= static.Makespan {
		t.Fatalf("makespan: replan %v >= static %v", replanned.Makespan, static.Makespan)
	}
}

// A bounded degradation window slows transfers only inside [At, Until].
func TestChaosDegradationWindowEnds(t *testing.T) {
	r := buildRig(t, 8, 64, 17, dfs.RandomPlacement{})
	a := opassAssignment(t, r, 17)
	base, err := RunAssignment(r.opts("opass"), a)
	if err != nil {
		t.Fatal(err)
	}

	r2 := buildRig(t, 8, 64, 17, dfs.RandomPlacement{})
	a2 := opassAssignment(t, r2, 17)
	opts := r2.opts("opass")
	opts.Degradations = []NodeDegradation{{Node: 0, At: 0.2, Until: 1.2, DiskFactor: 0.25, NICFactor: 0.25}}
	windowed, err := RunAssignment(opts, a2)
	if err != nil {
		t.Fatal(err)
	}
	if windowed.Makespan <= base.Makespan {
		t.Fatalf("a degradation window should cost time: %v <= %v", windowed.Makespan, base.Makespan)
	}
	// The restore timer fired mid-run (the job outlives the window), so the
	// job must not pay the slow rate for its whole duration: a permanently
	// degraded run is strictly worse.
	opts3 := func() Options {
		r3 := buildRig(t, 8, 64, 17, dfs.RandomPlacement{})
		o := r3.opts("opass")
		o.Degradations = []NodeDegradation{{Node: 0, At: 0.2, DiskFactor: 0.25, NICFactor: 0.25}}
		return o
	}()
	a3 := opassAssignment(t, buildRig(t, 8, 64, 17, dfs.RandomPlacement{}), 17)
	forever, err := RunAssignment(opts3, a3)
	if err != nil {
		t.Fatal(err)
	}
	if forever.Makespan <= windowed.Makespan {
		t.Fatalf("unbounded degradation should cost more than a window: %v <= %v", forever.Makespan, windowed.Makespan)
	}
}

// Fault-model validation errors surface before the run starts.
func TestChaosFaultValidation(t *testing.T) {
	r := buildRig(t, 4, 8, 19, dfs.RandomPlacement{})
	a := opassAssignment(t, r, 19)
	bad := []Options{}
	o := r.opts("x")
	o.Failures = []NodeFailure{{Node: 0, At: 1, RecoverAt: 0.5}}
	bad = append(bad, o)
	o = r.opts("x")
	o.Degradations = []NodeDegradation{{Node: 0, At: 1, DiskFactor: 0, NICFactor: 1}}
	bad = append(bad, o)
	o = r.opts("x")
	o.Degradations = []NodeDegradation{{Node: 0, At: 1, Until: 0.5, DiskFactor: 0.5, NICFactor: 0.5}}
	bad = append(bad, o)
	o = r.opts("x")
	o.Degradations = []NodeDegradation{{Node: 9, At: 1, DiskFactor: 0.5, NICFactor: 0.5}}
	bad = append(bad, o)
	o = r.opts("x")
	o.RepairDelay = -1
	bad = append(bad, o)
	for i, opts := range bad {
		if _, err := RunAssignment(opts, a); err == nil {
			t.Fatalf("case %d: invalid fault spec accepted", i)
		}
		if r.topo.Net().Active() != 0 {
			t.Fatalf("case %d: rejected run left flows active", i)
		}
	}
}
