package engine

import (
	"testing"

	"opass/internal/core"
	"opass/internal/dfs"
)

// affectedSet computes, independently of the replanner, which pending tasks
// the event at node could have moved: epoch-dirty inputs, inputs with a
// replica on the node, or a queue on one of the node's processes.
func affectedSet(p *core.Problem, pending [][]int, stamp core.PlanStamp, node int) map[int]bool {
	out := map[int]bool{}
	for proc, list := range pending {
		for _, id := range list {
			if p.ProcNode[proc] == node || stamp.Dirty(p, id) {
				out[id] = true
				continue
			}
			for _, in := range p.Tasks[id].Inputs {
				if p.FS.Chunk(in.Chunk).HostedOn(node) {
					out[id] = true
					break
				}
			}
		}
	}
	return out
}

// TestDeltaReplanSplicesOnlyAffectedTasks pins the surgical contract of
// replanPendingDelta after a permanent crash: unaffected tasks keep their
// process and dispatch order, affected tasks are re-matched over the
// survivors, and together they still cover the backlog exactly once.
func TestDeltaReplanSplicesOnlyAffectedTasks(t *testing.T) {
	const (
		nodes  = 16
		chunks = 160
		seed   = 7
		victim = 3
	)
	r := buildRig(t, nodes, chunks, seed, dfs.RandomPlacement{})
	a := opassAssignment(t, r, seed)
	src := NewListSource(a.Lists)
	stamp := core.StampProblem(r.prob)
	before := src.Pending()

	// The event: the victim's DataNode is lost for good and the namenode
	// drops its replicas (bumping the affected chunks' epochs).
	if _, _, err := r.fs.Crash(victim); err != nil {
		t.Fatal(err)
	}
	affected := affectedSet(r.prob, before, stamp, victim)
	if len(affected) == 0 || len(affected) == chunks {
		t.Fatalf("fixture not discriminating: %d of %d tasks affected", len(affected), chunks)
	}

	finished := make([]bool, r.prob.NumProcs())
	weight := func(node int) float64 { return 1 }
	spliced, rematched, err := replanPendingDelta(r.prob, src, finished, weight, seed, victim, stamp)
	if err != nil {
		t.Fatal(err)
	}
	if !spliced {
		t.Fatal("delta replan spliced nothing")
	}
	if rematched != len(affected) {
		t.Fatalf("re-matched %d tasks, affected set has %d", rematched, len(affected))
	}

	after := src.Pending()
	seen := map[int]int{}
	for proc, list := range after {
		// Each process's kept prefix must be its old list minus the affected
		// tasks, in the old order.
		var keptWant []int
		for _, id := range before[proc] {
			if !affected[id] {
				keptWant = append(keptWant, id)
			}
		}
		for i, id := range keptWant {
			if i >= len(list) || list[i] != id {
				t.Fatalf("proc %d: kept backlog disturbed: got %v, want prefix %v", proc, list, keptWant)
			}
		}
		for _, id := range list[len(keptWant):] {
			if !affected[id] {
				t.Fatalf("proc %d: unaffected task %d was re-matched", proc, id)
			}
		}
		for _, id := range list {
			seen[id]++
		}
	}
	if len(seen) != chunks {
		t.Fatalf("backlog covers %d tasks after splice, want %d", len(seen), chunks)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d appears %d times after splice", id, n)
		}
	}
}

// TestDeltaReplanNoAffectedTasksIsANoOp: an event on a node that hosts no
// replicas of the backlog and runs no process leaves the source untouched.
func TestDeltaReplanNoAffectedTasksIsANoOp(t *testing.T) {
	r := buildRig(t, 8, 40, 3, dfs.RandomPlacement{})
	// Processes only on nodes 0..3, and node 7 is drained of every replica
	// before the stamp is taken: an event there can affect nothing.
	r.prob.ProcNode = []int{0, 1, 2, 3}
	const spare = 7
	for _, id := range r.fs.HostedBy(spare) {
		c := r.fs.Chunk(id)
		moved := false
		for _, n := range r.fs.LiveNodes() {
			if n != spare && !c.HostedOn(n) {
				if err := r.fs.MoveReplica(id, spare, n); err != nil {
					t.Fatal(err)
				}
				moved = true
				break
			}
		}
		if !moved {
			t.Fatalf("no destination free of chunk %d", id)
		}
	}
	a := opassAssignment(t, r, 3)
	src := NewListSource(a.Lists)
	stamp := core.StampProblem(r.prob)
	before := src.Pending()
	spliced, rematched, err := replanPendingDelta(r.prob, src, make([]bool, 4), func(int) float64 { return 1 }, 3, spare, stamp)
	if err != nil {
		t.Fatal(err)
	}
	if spliced || rematched != 0 {
		t.Fatalf("no-op event spliced=%v rematched=%d", spliced, rematched)
	}
	after := src.Pending()
	for proc := range before {
		if len(before[proc]) != len(after[proc]) {
			t.Fatalf("proc %d backlog changed on a no-op event", proc)
		}
		for i := range before[proc] {
			if before[proc][i] != after[proc][i] {
				t.Fatalf("proc %d backlog changed on a no-op event", proc)
			}
		}
	}
}

// TestDeltaReplanEndToEnd: a full engine run under the default (delta)
// replanning completes every task, counts the re-matched tasks, and stays
// strictly surgical — while ReplanFull reproduces the old whole-backlog
// behavior with a zero delta counter.
func TestDeltaReplanEndToEnd(t *testing.T) {
	const (
		nodes  = 16
		chunks = 128
		seed   = 7
	)
	run := func(full bool) *Result {
		r := buildRig(t, nodes, chunks, seed, dfs.RandomPlacement{})
		a := opassAssignment(t, r, seed)
		opts := r.opts("opass")
		opts.Failures = []NodeFailure{{Node: 1, At: 1.0}}
		opts.Replan = true
		opts.ReplanFull = full
		opts.Repair = true
		opts.RepairDelay = 2.0
		opts.ReplanSeed = seed
		res, err := RunAssignment(opts, a)
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksRun != chunks {
			t.Fatalf("tasks run = %d, want %d", res.TasksRun, chunks)
		}
		if res.Replans == 0 {
			t.Fatal("run never replanned")
		}
		return res
	}
	delta := run(false)
	full := run(true)
	if delta.DeltaReplannedTasks == 0 {
		t.Fatal("delta run re-matched no tasks")
	}
	if delta.DeltaReplannedTasks >= chunks {
		t.Fatalf("delta run re-matched %d tasks across replans, want fewer than the %d-task job", delta.DeltaReplannedTasks, chunks)
	}
	if full.DeltaReplannedTasks != 0 {
		t.Fatalf("full replan counted %d delta-replanned tasks, want 0", full.DeltaReplannedTasks)
	}
}
