// Package engine executes a task assignment over the simulated cluster: it
// turns every data input of every task into a fluid flow on the cluster's
// disks and NICs, honoring the HDFS read policy (local replica preferred,
// random replica otherwise), and drives per-process state machines in
// virtual time — each MPI-style process reads its inputs sequentially,
// optionally computes, then requests its next task.
//
// Both execution models of the paper are supported through the TaskSource
// abstraction: static assignment (each process walks its own precomputed
// list, as in the ParaView experiments) and dynamic master/worker
// dispatching (an idle process asks the master for one task at a time, as
// in mpiBLAST). The engine records a ReadRecord per chunk read — the exact
// data behind Figures 7–12 — and per-node served-data counters, the
// monitor the paper describes in §V-A1.
package engine

import (
	"context"
	"fmt"
	"sort"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/simnet"
)

// TaskSource feeds tasks to idle processes. Implementations include static
// per-process lists (ListSource), the Opass dynamic scheduler
// (core.DynamicScheduler) and the random master baseline
// (core.RandomDispatcher).
type TaskSource interface {
	// Next returns the next task for the idle process proc, or ok=false
	// when the process should terminate.
	Next(proc int) (task int, ok bool)
}

// PollState is a PollingSource's answer to an idle process.
type PollState int

// PollingSource answers.
const (
	// PollTask means a task was returned and should start now.
	PollTask PollState = iota
	// PollWait means no task is offered yet; the engine re-polls the
	// process after the next completion event (virtual time advances in
	// between — the "wait a small amount of time" of delay scheduling).
	PollWait
	// PollDone means the process should terminate.
	PollDone
)

// PollingSource is a TaskSource that may ask an idle process to wait —
// the seam needed by delay scheduling (Zaharia et al., EuroSys'10), which
// holds a worker briefly in the hope that a local task frees up. stalled
// is true when no work is in flight anywhere, in which case the source
// must not answer PollWait again (nothing would ever wake the process).
type PollingSource interface {
	Poll(proc int, stalled bool) (task int, state PollState)
}

// pollAdapter lifts a plain TaskSource into a PollingSource.
type pollAdapter struct{ src TaskSource }

func (a pollAdapter) Poll(proc int, _ bool) (int, PollState) {
	task, ok := a.src.Next(proc)
	if !ok {
		return 0, PollDone
	}
	return task, PollTask
}

// ListSource serves each process its own pre-assigned list in order — the
// static SPMD execution model.
type ListSource struct {
	lists [][]int
	pos   []int
}

// NewListSource builds a static source from per-process task lists.
func NewListSource(lists [][]int) *ListSource {
	cp := make([][]int, len(lists))
	for i := range lists {
		cp[i] = append([]int(nil), lists[i]...)
	}
	return &ListSource{lists: cp, pos: make([]int, len(lists))}
}

// Next implements TaskSource.
func (s *ListSource) Next(proc int) (int, bool) {
	if proc < 0 || proc >= len(s.lists) {
		panic(fmt.Sprintf("engine: unknown process %d", proc))
	}
	if s.pos[proc] >= len(s.lists[proc]) {
		return 0, false
	}
	t := s.lists[proc][s.pos[proc]]
	s.pos[proc]++
	return t, true
}

// Options configures a run.
type Options struct {
	Topo    *cluster.Topology
	FS      *dfs.FileSystem
	Problem *core.Problem
	// ComputeTime returns the post-read compute seconds for a task; nil
	// means pure I/O (the microbenchmarks). Heterogeneous workloads
	// (mpiBLAST) supply per-task irregular times here.
	ComputeTime func(task int) float64
	// ComputeFactor scales a process's compute times (nil means 1.0 for
	// every process) — the §IV-D heterogeneous environment, where the same
	// task runs slower on some nodes.
	ComputeFactor func(proc int) float64
	// Failures schedules DataNode crashes: At seconds into the run the
	// node's storage service stops serving. In-flight reads it was serving
	// are torn down and retried from another replica (HDFS read failover),
	// and subsequent replica picks avoid it. Compute on the node continues
	// — the crash models the DataNode process, not the whole machine.
	Failures []NodeFailure
	// Degradations schedules slow-node windows: the node stays alive but
	// its disk/NIC deliver a fraction of nominal throughput — the paper's
	// §III-B contention story made adversarial. Any degradation still in
	// effect when the run ends is lifted on exit, so the shared topology is
	// returned healthy.
	Degradations []NodeDegradation
	// Repair re-replicates under-replicated chunks from surviving holders
	// RepairDelay seconds after each permanent crash, bumping the file
	// system's placement epoch (invalidating cached plans). Repair (and
	// Replan) record permanent crashes in the namenode via FS.Crash, so the
	// file system is mutated by the run.
	Repair      bool
	RepairDelay float64
	// Replan re-runs the Opass matcher over the not-yet-started backlog
	// whenever the placement truth changes — permanent crash, repair
	// completion, recovery, degradation onset or end — and splices the new
	// lists into the running source, restoring locality instead of letting
	// it decay into random remote reads. It requires a ReplannableSource
	// (e.g. ListSource); other sources are left untouched. Processes on
	// storage-dead nodes get weight 0 and degraded nodes their DiskFactor —
	// the §IV-D "load capacity" skew — so survivors absorb the backlog
	// locally.
	Replan bool
	// ReplanFull forces every replan to re-match the entire backlog, the
	// pre-incremental behavior. By default a replan triggered by a node
	// event re-matches only the affected pending tasks — those whose input
	// chunks changed placement epoch, have a replica on the event node, or
	// are queued on that node's processes (see replanPendingDelta) — which
	// is the O(delta) path the incremental plannerbench series measures.
	ReplanFull bool
	// ReplanSeed seeds the re-matching (each replan round perturbs it).
	ReplanSeed int64
	// Balancer, when non-nil, chooses the replica holder for every remote
	// read and is told of every read start — the single-job mirror of the
	// ServingBalancer consultation RunJobsScheduled performs (PR 7 only
	// wired it into the scheduled multi-job path, silently ignoring it for
	// Run/RunContext). Holders passed to PickRemote never include the
	// reader or a crashed node.
	Balancer ReadSteerer
	// Advisor, when non-nil, runs a placement-advisory pass every
	// AdvisorInterval seconds of virtual time while any process is still
	// working — the adaptive replication loop (internal/advisor) that
	// turns the access telemetry recorded on the read path back into
	// replica moves. A pass that reports changes triggers a replan of the
	// pending backlog when Options.Replan is on.
	Advisor AdvisorTicker
	// AdvisorInterval is the advisor period in seconds; required positive
	// when Advisor is set.
	AdvisorInterval float64
	// Strategy labels the run in reports.
	Strategy string
}

// AdvisorTicker is the periodic placement-advisor hook: the engine fires
// Tick every Options.AdvisorInterval seconds of virtual time. now is the
// cluster's absolute virtual clock (sequential rounds share it, so decayed
// access scores age correctly across rounds). Tick may mutate the run's
// file system through the replica machinery (AddReplica, RemoveReplica,
// SetReplicationTarget, ReReplicate, Balance) and reports whether anything
// changed.
type AdvisorTicker interface {
	Tick(now float64) bool
}

// NodeFailure is one scheduled DataNode crash.
type NodeFailure struct {
	Node int
	At   float64 // seconds after run start
	// RecoverAt, when positive, restores the node's storage service at that
	// time (a transient outage: the DataNode process restarts with its data
	// intact, so the namenode metadata never changes). It must be greater
	// than At. Zero means the crash is permanent.
	RecoverAt float64
}

// NodeDegradation is one scheduled slow-node window: from At to Until
// (Until 0 = rest of the run) the node's disk runs at DiskFactor and both
// NIC directions at NICFactor of nominal bandwidth. Factors are in (0, 1].
type NodeDegradation struct {
	Node       int
	At         float64
	Until      float64
	DiskFactor float64
	NICFactor  float64
}

func (o *Options) validate() error {
	if o.Topo == nil || o.FS == nil || o.Problem == nil {
		return fmt.Errorf("engine: options require Topo, FS and Problem")
	}
	if err := o.Problem.Validate(); err != nil {
		return err
	}
	for _, node := range o.Problem.ProcNode {
		if node < 0 || node >= o.Topo.NumNodes() {
			return fmt.Errorf("engine: process on node %d outside %d-node topology", node, o.Topo.NumNodes())
		}
	}
	if o.Advisor != nil && o.AdvisorInterval <= 0 {
		return fmt.Errorf("engine: advisor interval %v must be positive", o.AdvisorInterval)
	}
	return nil
}

// ReadRecord describes one chunk read: who read what from where and how
// long it took.
type ReadRecord struct {
	Proc    int
	Task    int
	Chunk   dfs.ChunkID
	SrcNode int
	DstNode int
	Local   bool
	SizeMB  float64
	Start   float64
	End     float64
}

// Duration is the request's I/O time (including startup latency).
func (r ReadRecord) Duration() float64 { return r.End - r.Start }

// Result aggregates one run.
type Result struct {
	Strategy string
	// Records lists every chunk read in completion order.
	Records []ReadRecord
	// Makespan is the virtual time from run start to the last process
	// finishing — the job time under barrier synchronization. In a
	// concurrent run (RunJobs) "run start" is the start of the whole mix,
	// not the job's arrival: a job with StartAt > 0 includes its arrival
	// delay here. Use JobMakespan for the job's own execution time.
	Makespan float64
	// Arrival is the virtual time at which the job's processes were
	// released, relative to run start. Single-job runs leave it 0; RunJobs
	// sets it to the job's StartAt.
	Arrival float64
	// ServedMB[node] is the data served by each storage node (the paper's
	// per-node monitor).
	ServedMB []float64
	// ProcFinish[proc] is each process's completion time relative to start.
	ProcFinish []float64
	// TasksRun counts executed tasks.
	TasksRun int
	// Retries counts reads torn down by a DataNode failure and reissued
	// against another replica.
	Retries int
	// PeakConcurrentReads[node] is the largest number of reads the node's
	// disk served simultaneously — the §III-B contention depth ("the read
	// requests from different processes will compete for the hard disk
	// head").
	PeakConcurrentReads []int
	// DiskUtilization[node] is the fraction of the node's disk bandwidth
	// used over the run — the "parallel use of storage nodes/disks" the
	// paper says imbalance wastes. A perfectly balanced all-local job
	// drives every disk near 1.0; a skewed job leaves most disks idle.
	DiskUtilization []float64
	// FailedNodes lists nodes whose storage service crashed during the run.
	FailedNodes []int
	// RecoveredNodes lists nodes whose storage service came back (transient
	// failures), in recovery order.
	RecoveredNodes []int
	// Replans counts matcher re-runs that actually spliced a new backlog
	// into the source.
	Replans int
	// DeltaReplannedTasks counts the pending tasks re-matched by O(delta)
	// replans. Full re-matches (Options.ReplanFull) leave it untouched, so
	// the ratio to the backlog size measures how surgical replanning was.
	DeltaReplannedTasks int
	// RepairedChunks counts chunks re-replication brought back toward the
	// configured replication factor.
	RepairedChunks int
	// AdvisorTicks counts placement-advisor passes fired during the run.
	AdvisorTicks int
	// RackLocalMB / CrossRackMB split the remote read traffic by rack
	// boundary: a remote read served within the reader's rack counts as
	// rack-local, one whose source and destination racks differ as
	// cross-rack (the bytes that traverse an uplink on an oversubscribed
	// fabric). Local reads count toward neither. On a single-rack topology
	// every remote byte is rack-local.
	RackLocalMB float64
	CrossRackMB float64
}

// JobMakespan is the job's execution time measured from its own arrival
// (completion minus arrival) — the per-job latency a tenant observes in a
// staggered mix. For single-job runs it equals Makespan.
func (r *Result) JobMakespan() float64 {
	v := r.Makespan - r.Arrival
	if v < 0 {
		return 0
	}
	return v
}

// IOTimes extracts per-read durations in completion order.
func (r *Result) IOTimes() []float64 {
	out := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.Duration()
	}
	return out
}

// LocalFraction is the fraction of megabytes read locally.
func (r *Result) LocalFraction() float64 {
	var local, total float64
	for _, rec := range r.Records {
		total += rec.SizeMB
		if rec.Local {
			local += rec.SizeMB
		}
	}
	if total == 0 {
		return 0
	}
	return local / total
}

// LocalReads counts records served from the reader's own disk.
func (r *Result) LocalReads() int {
	n := 0
	for _, rec := range r.Records {
		if rec.Local {
			n++
		}
	}
	return n
}

// pendingKind distinguishes the flow types the engine launches.
type pendingKind int

const (
	kindRead pendingKind = iota
	kindCompute
	kindFailure
	kindRecovery
	kindRepair
	kindDegrade
	kindRestore
	kindAdvisor
)

type pending struct {
	kind pendingKind
	proc int        // kindRead / kindCompute
	node int        // kindFailure/kindRecovery/kindRepair/kindRestore: the node
	idx  int        // kindFailure: Failures index; kindDegrade: Degradations index
	rec  ReadRecord // valid for kindRead
}

// abortRun carries a fatal simulation error (e.g. data loss) out of the
// completion callbacks.
type abortRun struct{ err error }

// detachWaiting hands back the current waiting list as an independent batch
// and leaves the live list empty WITHOUT sharing the backing array: while
// the batch is being re-polled, Poll callbacks may re-enter the engine and
// append fresh waiters, and an aliased `w = w[:0]` would write those appends
// into the very slots the batch iteration is still reading (the PR 1
// aliasing bug). Stealing the array for the batch is both alias-free and
// copy-free; the live list re-grows from nil.
func detachWaiting(w *[]int) []int {
	ws := *w
	*w = nil
	return ws
}

// stepBudget is the number of simulation events the drain loop advances
// between cancellation checks: a cancelled context stops consuming CPU
// within at most this many events.
const stepBudget = 64

// Run executes tasks from src until every process has drained, returning
// the trace. The topology's network must be idle; the run may start at a
// non-zero virtual time (sequential rounds share one clock) and all times
// in the Result are relative to the run's start.
func Run(opts Options, src TaskSource) (*Result, error) {
	return RunContext(context.Background(), opts, src)
}

// RunContext is Run under cooperative cancellation: the drain loop advances
// the simulation in stepBudget-event slices and polls ctx between slices,
// so a cancelled or expired context aborts mid-simulation with ctx's error
// (satisfying errors.Is against context.Canceled / context.DeadlineExceeded)
// instead of running to completion. On abort every in-flight flow the run
// started — reads, compute timers, failure timers — is torn down, leaving
// the topology's network idle and reusable.
func RunContext(ctx context.Context, opts Options, src TaskSource) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: run aborted before start: %w", err)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	net := opts.Topo.Net()
	if net.Active() != 0 {
		return nil, fmt.Errorf("engine: network busy with %d flows at run start", net.Active())
	}
	start := net.Now()
	p := opts.Problem
	numProcs := p.NumProcs()

	res := &Result{
		Strategy:            opts.Strategy,
		ServedMB:            make([]float64, opts.Topo.NumNodes()),
		ProcFinish:          make([]float64, numProcs),
		PeakConcurrentReads: make([]int, opts.Topo.NumNodes()),
	}
	curReads := make([]int, opts.Topo.NumNodes())
	diskWork0 := make([]float64, opts.Topo.NumNodes())
	for n := 0; n < opts.Topo.NumNodes(); n++ {
		diskWork0[n] = net.WorkMB(opts.Topo.DiskResource(n))
	}

	poller, isPolling := src.(PollingSource)
	if !isPolling {
		poller = pollAdapter{src}
	}

	type state struct {
		task  int
		input int
	}
	states := make([]state, numProcs)
	inflight := make(map[simnet.FlowID]pending, numProcs)
	var waiting []int
	failed := make(map[int]bool)
	degraded := make(map[int]float64) // node -> disk factor currently in effect
	finished := make([]bool, numProcs)

	// Pending fault timers (failure/recovery/repair/degrade/restore) are
	// simnet flows, but they are not work: counting them as active would
	// keep "stalled" false while every worker sits in the waiting list,
	// letting a PollWait-answering source park the whole cluster until a
	// far-future timer fires. Track them separately and subtract them from
	// the active-work check.
	auxTimers := 0
	activeWork := func() int { return net.Active() - auxTimers }

	var startTask, startInput, finishProc func(proc int)
	var retryWaiting func()

	avoidFailed := func(node int) bool { return failed[node] }

	// nodeWeight is a process's current "load capacity" (§IV-D) for
	// replanning. Failures take down a node's storage service, not its
	// process: the process keeps computing but every read it issues goes
	// remote, so its share is discounted by the remote/local read-speed
	// ratio rather than zeroed — zeroing it would idle a live worker (and,
	// for a transient outage, drain its list and terminate it before the
	// node comes back). Degraded nodes are discounted by their disk factor.
	remoteFactor := opts.Topo.UncontendedLocalRead(64) / opts.Topo.UncontendedRemoteRead(64)
	nodeWeight := func(node int) float64 {
		if failed[node] {
			return remoteFactor
		}
		if f, ok := degraded[node]; ok {
			return f
		}
		return 1
	}
	replannable, canReplan := src.(ReplannableSource)
	// stamp snapshots the placement epochs of the problem's read set at run
	// start and after every splice: the delta replanner diffs live epochs
	// against it to find the tasks a placement event actually moved.
	var stamp core.PlanStamp
	if opts.Replan && canReplan {
		stamp = core.StampProblem(p)
	}
	maybeReplan := func(eventNode int) {
		if !opts.Replan || !canReplan {
			return
		}
		seed := opts.ReplanSeed + int64(res.Replans)
		var (
			spliced   bool
			rematched int
			err       error
		)
		if opts.ReplanFull || eventNode < 0 {
			spliced, err = replanPending(p, replannable, finished, nodeWeight, seed)
		} else {
			spliced, rematched, err = replanPendingDelta(p, replannable, finished, nodeWeight, seed, eventNode, stamp)
		}
		if err != nil {
			panic(abortRun{err})
		}
		if spliced {
			res.Replans++
			res.DeltaReplannedTasks += rematched
		}
		// Refresh even without a splice: every epoch change up to this event
		// either re-matched a pending task just now or concerns a task that
		// is no longer pending, so older deltas need not be re-examined.
		stamp = core.StampProblem(p)
	}

	startInput = func(proc int) {
		st := &states[proc]
		task := &p.Tasks[st.task]
		// Rotate the input order by task ID: concurrent tasks then touch
		// the datasets in staggered order instead of all processes slamming
		// dataset A, then B, then C in lockstep — parallel programs issue
		// their requests independently, and the lockstep convoy is an
		// artifact of a fixed input order.
		in := task.Inputs[(st.input+st.task)%len(task.Inputs)]
		node := p.ProcNode[proc]
		srcNode, local, err := opts.FS.PickReplicaAvoiding(in.Chunk, node, uint64(res.Retries), avoidFailed)
		if err != nil {
			panic(abortRun{fmt.Errorf("engine: process %d task %d: %w (all replica holders crashed)", proc, st.task, err)})
		}
		if opts.Balancer != nil {
			if !local {
				// The steerer chooses among the live holders (the reader is
				// never one here: a live co-located replica would have made
				// the pick local, and a crashed one is not a holder).
				var holders []int
				for _, r := range opts.FS.Chunk(in.Chunk).Replicas {
					if r != node && !failed[r] {
						holders = append(holders, r)
					}
				}
				srcNode = opts.Balancer.PickRemote(node, holders, in.SizeMB)
				ok := false
				for _, h := range holders {
					if h == srcNode {
						ok = true
						break
					}
				}
				if !ok {
					panic(abortRun{fmt.Errorf("engine: balancer picked node %d, not a live holder of chunk %d", srcNode, in.Chunk)})
				}
			}
			opts.Balancer.ReadStarted(srcNode, in.SizeMB)
		}
		opts.FS.RecordRead(in.Chunk, node, local, in.SizeMB, net.Now())
		path := opts.Topo.ReadPath(srcNode, node)
		curReads[srcNode]++
		if curReads[srcNode] > res.PeakConcurrentReads[srcNode] {
			res.PeakConcurrentReads[srcNode] = curReads[srcNode]
		}
		id := net.Start(path, in.SizeMB, opts.Topo.ReadLatency(srcNode), fmt.Sprintf("p%d/t%d/c%d", proc, st.task, in.Chunk))
		inflight[id] = pending{
			kind: kindRead,
			proc: proc,
			rec: ReadRecord{
				Proc:    proc,
				Task:    st.task,
				Chunk:   in.Chunk,
				SrcNode: srcNode,
				DstNode: node,
				Local:   local,
				SizeMB:  in.SizeMB,
				Start:   net.Now() - start,
			},
		}
	}

	startTask = func(proc int) {
		stalled := activeWork() == 0 && len(waiting) == 0
		task, st := poller.Poll(proc, stalled)
		switch st {
		case PollDone:
			finishProc(proc)
			return
		case PollWait:
			if stalled {
				panic("engine: polling source answered wait while the cluster is stalled")
			}
			waiting = append(waiting, proc)
			return
		}
		if task < 0 || task >= len(p.Tasks) {
			panic(fmt.Sprintf("engine: source produced invalid task %d", task))
		}
		states[proc] = state{task: task, input: 0}
		res.TasksRun++
		startInput(proc)
	}

	// retryWaiting re-polls every waiting process, repeating while any poll
	// makes progress. When nothing is in flight the poll is marked stalled,
	// which obliges the source to answer (delay scheduling's timeout).
	retryWaiting = func() {
		for len(waiting) > 0 {
			stalled := activeWork() == 0
			// Detach before iterating: appends below would otherwise write
			// into the backing array the batch still aliases (and Poll
			// callbacks can re-enter this path through completion events).
			ws := detachWaiting(&waiting)
			progress := false
			for _, proc := range ws {
				task, st := poller.Poll(proc, stalled)
				switch st {
				case PollDone:
					finishProc(proc)
					progress = true
				case PollWait:
					if stalled {
						panic("engine: polling source answered wait while the cluster is stalled")
					}
					waiting = append(waiting, proc)
				default:
					if task < 0 || task >= len(p.Tasks) {
						panic(fmt.Sprintf("engine: source produced invalid task %d", task))
					}
					states[proc] = state{task: task, input: 0}
					res.TasksRun++
					startInput(proc)
					progress = true
				}
			}
			if !progress {
				return // sleep until the next completion event
			}
		}
	}

	remaining := numProcs
	finishProc = func(proc int) {
		res.ProcFinish[proc] = net.Now() - start
		finished[proc] = true
		remaining--
	}

	// scheduleAdvisor arms the next advisory pass. Advisor timers are aux
	// flows like the fault timers: they must not count as active work, or a
	// recurring tick would keep a PollWait-answering source parked forever.
	scheduleAdvisor := func() {
		id := net.Start(nil, 0, opts.AdvisorInterval, fmt.Sprintf("advisor/t%d", res.AdvisorTicks))
		inflight[id] = pending{kind: kindAdvisor}
		auxTimers++
	}

	net.OnComplete(func(now float64, f *simnet.Flow) {
		pd, ok := inflight[f.ID]
		if !ok {
			panic(fmt.Sprintf("engine: completion for unknown flow %d (%s)", f.ID, f.Label))
		}
		delete(inflight, f.ID)
		proc := pd.proc
		switch pd.kind {
		case kindRead:
			rec := pd.rec
			rec.End = now - start
			curReads[rec.SrcNode]--
			res.Records = append(res.Records, rec)
			res.ServedMB[rec.SrcNode] += rec.SizeMB
			if !rec.Local {
				if opts.Topo.RackOf(rec.SrcNode) == opts.Topo.RackOf(rec.DstNode) {
					res.RackLocalMB += rec.SizeMB
				} else {
					res.CrossRackMB += rec.SizeMB
				}
			}
			st := &states[proc]
			st.input++
			if st.input < len(p.Tasks[st.task].Inputs) {
				startInput(proc)
				break
			}
			// All inputs read: compute phase, if any.
			if opts.ComputeTime != nil {
				ct := opts.ComputeTime(st.task)
				if opts.ComputeFactor != nil {
					ct *= opts.ComputeFactor(proc)
				}
				if ct > 0 {
					id := net.Start(nil, 0, ct, fmt.Sprintf("p%d/t%d/compute", proc, st.task))
					inflight[id] = pending{kind: kindCompute, proc: proc}
					break
				}
			}
			startTask(proc)
		case kindCompute:
			startTask(proc)
		case kindFailure:
			// The node's storage service is gone: future picks avoid it and
			// every read it was serving restarts against another replica.
			auxTimers--
			fail := opts.Failures[pd.idx]
			failed[pd.node] = true
			res.FailedNodes = append(res.FailedNodes, pd.node)
			if fail.RecoverAt == 0 && (opts.Repair || opts.Replan) {
				// A permanent loss with the recovery subsystem on: record
				// the crash in the namenode so repair and replanning see the
				// true placement. (Transient outages never touch metadata —
				// the node returns with its data intact.)
				if _, _, err := opts.FS.Crash(pd.node); err != nil {
					panic(abortRun{fmt.Errorf("engine: crash of node %d: %w", pd.node, err)})
				}
				if opts.Repair {
					id := net.Start(nil, 0, opts.RepairDelay+1e-9, fmt.Sprintf("repair/node%d", pd.node))
					inflight[id] = pending{kind: kindRepair, node: pd.node}
					auxTimers++
				}
			}
			var victims []simnet.FlowID
			for id, infl := range inflight {
				if infl.kind == kindRead && infl.rec.SrcNode == pd.node {
					victims = append(victims, id)
				}
			}
			// Deterministic retry order.
			sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
			for _, id := range victims {
				if net.Cancel(id) < 0 {
					// Completed in the same event batch: its handler will
					// run normally, no retry needed.
					continue
				}
				victim := inflight[id]
				delete(inflight, id)
				curReads[victim.rec.SrcNode]--
				res.Retries++
				startInput(victim.proc) // re-picks avoiding failed nodes
			}
			maybeReplan(pd.node)
		case kindRecovery:
			// The DataNode process restarted; its replicas serve again. The
			// per-read replica pick re-captures locality on its own, and a
			// replan rebalances the surviving backlog shares.
			auxTimers--
			delete(failed, pd.node)
			res.RecoveredNodes = append(res.RecoveredNodes, pd.node)
			maybeReplan(pd.node)
		case kindRepair:
			// The namenode's replication monitor caught up: under-replicated
			// chunks regain copies on live nodes, changing the placement
			// truth — exactly when a replan can win back locality.
			auxTimers--
			res.RepairedChunks += opts.FS.ReReplicate()
			maybeReplan(pd.node)
		case kindDegrade:
			auxTimers--
			d := opts.Degradations[pd.idx]
			degraded[d.Node] = d.DiskFactor
			opts.Topo.DegradeNode(d.Node, d.DiskFactor, d.NICFactor)
			maybeReplan(d.Node)
		case kindRestore:
			auxTimers--
			delete(degraded, pd.node)
			opts.Topo.DegradeNode(pd.node, 1, 1)
			maybeReplan(pd.node)
		case kindAdvisor:
			// Periodic placement-advisory pass: the advisor reads the access
			// telemetry and may move replicas; a change makes a full replan
			// of the pending backlog worthwhile (the new copies are placement
			// truth the in-flight lists know nothing about).
			auxTimers--
			res.AdvisorTicks++
			if opts.Advisor.Tick(now) {
				maybeReplan(-1)
			}
			if remaining > 0 {
				scheduleAdvisor()
			}
		}
		// A completion may free up a task a waiting process was hoping for
		// (or leave the cluster stalled, forcing the source's hand).
		retryWaiting()
	})

	// Schedule the DataNode crashes (and recoveries) as timers.
	for i, fail := range opts.Failures {
		if fail.Node < 0 || fail.Node >= opts.Topo.NumNodes() {
			return nil, fmt.Errorf("engine: failure on invalid node %d", fail.Node)
		}
		if fail.At < 0 {
			return nil, fmt.Errorf("engine: failure time %v must be non-negative", fail.At)
		}
		if fail.RecoverAt != 0 && fail.RecoverAt <= fail.At {
			return nil, fmt.Errorf("engine: node %d recovery at %v must be after the failure at %v", fail.Node, fail.RecoverAt, fail.At)
		}
		// A zero delay would complete before any read begins; nudge it to
		// "immediately after start" semantics either way.
		id := net.Start(nil, 0, fail.At+1e-9, fmt.Sprintf("fail/node%d", fail.Node))
		inflight[id] = pending{kind: kindFailure, node: fail.Node, idx: i}
		auxTimers++
		if fail.RecoverAt > 0 {
			id := net.Start(nil, 0, fail.RecoverAt+1e-9, fmt.Sprintf("recover/node%d", fail.Node))
			inflight[id] = pending{kind: kindRecovery, node: fail.Node}
			auxTimers++
		}
	}
	if opts.RepairDelay < 0 {
		return nil, fmt.Errorf("engine: repair delay %v must be non-negative", opts.RepairDelay)
	}
	// Schedule the degradation windows.
	for i, d := range opts.Degradations {
		if d.Node < 0 || d.Node >= opts.Topo.NumNodes() {
			return nil, fmt.Errorf("engine: degradation on invalid node %d", d.Node)
		}
		if d.At < 0 {
			return nil, fmt.Errorf("engine: degradation time %v must be non-negative", d.At)
		}
		if d.Until != 0 && d.Until <= d.At {
			return nil, fmt.Errorf("engine: node %d degradation end %v must be after its start %v", d.Node, d.Until, d.At)
		}
		if d.DiskFactor <= 0 || d.DiskFactor > 1 || d.NICFactor <= 0 || d.NICFactor > 1 {
			return nil, fmt.Errorf("engine: node %d degradation factors %v/%v must be in (0,1]", d.Node, d.DiskFactor, d.NICFactor)
		}
		id := net.Start(nil, 0, d.At+1e-9, fmt.Sprintf("degrade/node%d", d.Node))
		inflight[id] = pending{kind: kindDegrade, node: d.Node, idx: i}
		auxTimers++
		if d.Until > 0 {
			id := net.Start(nil, 0, d.Until+1e-9, fmt.Sprintf("restore/node%d", d.Node))
			inflight[id] = pending{kind: kindRestore, node: d.Node, idx: i}
			auxTimers++
		}
	}
	if opts.Advisor != nil {
		scheduleAdvisor()
	}
	// Whatever happens below, hand the shared topology back healthy: any
	// degradation still in effect at exit (Until == 0, or an aborted run) is
	// lifted so sequential rounds see nominal bandwidth again.
	defer func() {
		for node := range degraded {
			opts.Topo.DegradeNode(node, 1, 1)
		}
	}()

	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if ab, ok := r.(abortRun); ok {
					err = ab.err
					return
				}
				panic(r)
			}
		}()
		for proc := 0; proc < numProcs; proc++ {
			startTask(proc)
		}
		retryWaiting()
		for {
			// Drain in budgeted slices instead of an uninterruptible
			// net.Run(): between slices a cancelled context aborts the run.
			for net.StepN(stepBudget) {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("engine: run aborted after %d events: %w", net.Completed(), err)
				}
			}
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("engine: run aborted after %d events: %w", net.Completed(), err)
			}
			if len(waiting) == 0 {
				break
			}
			retryWaiting() // the cluster is stalled: sources are forced to answer
		}
		return nil
	}(); err != nil {
		// Tear down whatever the aborted run left in flight (reads, compute
		// and failure timers) so the shared network returns to idle —
		// sequential rounds and retried requests reuse the same clock.
		victims := make([]simnet.FlowID, 0, len(inflight))
		for id := range inflight {
			victims = append(victims, id)
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
		for _, id := range victims {
			net.Cancel(id)
		}
		net.OnComplete(nil)
		return nil, err
	}
	net.OnComplete(nil)
	// The makespan is when the last process finished — not net.Now(), which
	// may include failure timers that fired after the job drained.
	for _, fin := range res.ProcFinish {
		if fin > res.Makespan {
			res.Makespan = fin
		}
	}
	res.DiskUtilization = make([]float64, opts.Topo.NumNodes())
	if res.Makespan > 0 {
		for n := 0; n < opts.Topo.NumNodes(); n++ {
			moved := net.WorkMB(opts.Topo.DiskResource(n)) - diskWork0[n]
			res.DiskUtilization[n] = moved / (opts.Topo.NodeProfile(n).DiskMBps * res.Makespan)
		}
	}
	return res, nil
}

// RunAssignment is a convenience wrapper: execute a planned static
// assignment.
func RunAssignment(opts Options, a *core.Assignment) (*Result, error) {
	return RunAssignmentContext(context.Background(), opts, a)
}

// RunAssignmentContext is RunAssignment under cooperative cancellation; see
// RunContext for the abort semantics.
func RunAssignmentContext(ctx context.Context, opts Options, a *core.Assignment) (*Result, error) {
	if err := a.Validate(opts.Problem); err != nil {
		return nil, err
	}
	if opts.Strategy == "" {
		opts.Strategy = "static"
	}
	return RunContext(ctx, opts, NewListSource(a.Lists))
}
