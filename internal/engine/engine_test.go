package engine

import (
	"math"
	"testing"
	"testing/quick"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
)

// rig bundles a ready-to-run experiment fixture.
type rig struct {
	topo *cluster.Topology
	fs   *dfs.FileSystem
	prob *core.Problem
}

func buildRig(t testing.TB, nodes, chunks int, seed int64, pol dfs.Placement) *rig {
	t.Helper()
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed, Placement: pol})
	if _, err := fs.Create("/data", float64(chunks)*64); err != nil {
		t.Fatal(err)
	}
	procNode := make([]int, nodes)
	for i := range procNode {
		procNode[i] = i
	}
	prob, err := core.SingleDataProblem(fs, []string{"/data"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{topo: topo, fs: fs, prob: prob}
}

func (r *rig) opts(strategy string) Options {
	return Options{Topo: r.topo, FS: r.fs, Problem: r.prob, Strategy: strategy}
}

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	r := buildRig(t, 8, 40, 1, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAssignment(r.opts("rank"), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 40 {
		t.Fatalf("tasks run = %d, want 40", res.TasksRun)
	}
	if len(res.Records) != 40 {
		t.Fatalf("records = %d, want 40 (one input per task)", len(res.Records))
	}
	seen := map[int]bool{}
	for _, rec := range res.Records {
		if seen[rec.Task] {
			t.Fatalf("task %d read twice", rec.Task)
		}
		seen[rec.Task] = true
	}
}

func TestServedMBConservation(t *testing.T) {
	r := buildRig(t, 8, 40, 2, dfs.RandomPlacement{})
	a, _ := core.RankStatic{}.Assign(r.prob)
	res, err := RunAssignment(r.opts("rank"), a)
	if err != nil {
		t.Fatal(err)
	}
	var served float64
	for _, s := range res.ServedMB {
		served += s
	}
	if math.Abs(served-40*64) > 1e-6 {
		t.Fatalf("served %v MB, want %v", served, 40*64.0)
	}
}

func TestFullLocalityRunsFast(t *testing.T) {
	// With round-robin placement and the Opass planner, every read is local
	// and each process reads 5 chunks sequentially from its own disk with
	// minor interference: makespan should be close to 5 sequential
	// uncontended local reads.
	r := buildRig(t, 8, 40, 3, dfs.RoundRobinPlacement{})
	a, err := core.SingleData{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalityFraction() != 1 {
		t.Fatalf("planned locality %v, want 1", a.LocalityFraction())
	}
	res, err := RunAssignment(r.opts("opass"), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalFraction() != 1 {
		t.Fatalf("executed locality %v, want 1", res.LocalFraction())
	}
	perRead := r.topo.UncontendedLocalRead(64)
	want := 5 * perRead
	if math.Abs(res.Makespan-want) > 0.25 {
		t.Fatalf("makespan = %v, want about %v (3 replicas can add mild sharing)", res.Makespan, want)
	}
}

func TestOpassBeatsBaselineEndToEnd(t *testing.T) {
	// The headline claim: on random placement, Opass's executed average I/O
	// time and makespan beat the rank-static baseline.
	rBase := buildRig(t, 16, 160, 4, dfs.RandomPlacement{})
	base, _ := core.RankStatic{}.Assign(rBase.prob)
	resBase, err := RunAssignment(rBase.opts("rank"), base)
	if err != nil {
		t.Fatal(err)
	}
	rOp := buildRig(t, 16, 160, 4, dfs.RandomPlacement{})
	op, _ := core.SingleData{}.Assign(rOp.prob)
	resOp, err := RunAssignment(rOp.opts("opass"), op)
	if err != nil {
		t.Fatal(err)
	}
	if resOp.Makespan >= resBase.Makespan {
		t.Fatalf("opass makespan %v >= baseline %v", resOp.Makespan, resBase.Makespan)
	}
	if resOp.LocalFraction() <= resBase.LocalFraction() {
		t.Fatalf("opass locality %v <= baseline %v", resOp.LocalFraction(), resBase.LocalFraction())
	}
	meanOf := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if meanOf(resOp.IOTimes()) >= meanOf(resBase.IOTimes()) {
		t.Fatal("opass mean I/O time not better than baseline")
	}
}

func TestRecordsConsistentWithPlacement(t *testing.T) {
	r := buildRig(t, 8, 40, 5, dfs.RandomPlacement{})
	a, _ := core.RankStatic{}.Assign(r.prob)
	res, _ := RunAssignment(r.opts("rank"), a)
	for _, rec := range res.Records {
		c := r.fs.Chunk(rec.Chunk)
		if !c.HostedOn(rec.SrcNode) {
			t.Fatalf("read served by node %d that does not host chunk %d", rec.SrcNode, rec.Chunk)
		}
		if rec.Local != (rec.SrcNode == rec.DstNode) {
			t.Fatalf("record local flag inconsistent: %+v", rec)
		}
		if rec.DstNode != r.prob.ProcNode[rec.Proc] {
			t.Fatalf("record DstNode %d != process node", rec.DstNode)
		}
		if rec.End <= rec.Start {
			t.Fatalf("non-positive read duration: %+v", rec)
		}
	}
}

func TestComputePhaseExtendsMakespan(t *testing.T) {
	r1 := buildRig(t, 4, 8, 6, dfs.RoundRobinPlacement{})
	a1, _ := core.SingleData{}.Assign(r1.prob)
	res1, _ := RunAssignment(r1.opts("io-only"), a1)

	r2 := buildRig(t, 4, 8, 6, dfs.RoundRobinPlacement{})
	a2, _ := core.SingleData{}.Assign(r2.prob)
	opts := r2.opts("with-compute")
	opts.ComputeTime = func(task int) float64 { return 1.0 }
	res2, err := RunAssignment(opts, a2)
	if err != nil {
		t.Fatal(err)
	}
	// Each process runs 2 tasks: makespan grows by ~2 s of compute.
	if d := res2.Makespan - res1.Makespan; math.Abs(d-2.0) > 0.05 {
		t.Fatalf("compute extended makespan by %v, want ~2.0", d)
	}
}

func TestDynamicSourcesDrainAllTasks(t *testing.T) {
	r := buildRig(t, 8, 40, 7, dfs.RandomPlacement{})
	a, _ := core.SingleData{}.Assign(r.prob)
	sched, err := core.NewDynamicScheduler(r.prob, a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(r.opts("opass-dynamic"), sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 40 {
		t.Fatalf("dynamic ran %d tasks, want 40", res.TasksRun)
	}

	r2 := buildRig(t, 8, 40, 7, dfs.RandomPlacement{})
	res2, err := Run(r2.opts("random-dynamic"), core.NewRandomDispatcher(r2.prob, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res2.TasksRun != 40 {
		t.Fatalf("random dynamic ran %d tasks, want 40", res2.TasksRun)
	}
}

func TestSequentialRoundsShareClock(t *testing.T) {
	r := buildRig(t, 4, 8, 8, dfs.RoundRobinPlacement{})
	a, _ := core.SingleData{}.Assign(r.prob)
	res1, err := RunAssignment(r.opts("round1"), a)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunAssignment(r.opts("round2"), a)
	if err != nil {
		t.Fatal(err)
	}
	// Results are reported relative to each round's start.
	if math.Abs(res1.Makespan-res2.Makespan) > 1e-6 {
		t.Fatalf("identical rounds differ: %v vs %v", res1.Makespan, res2.Makespan)
	}
	if res2.Records[0].Start < 0 {
		t.Fatal("round 2 records must be relative to its own start")
	}
}

func TestRunValidatesOptions(t *testing.T) {
	r := buildRig(t, 4, 8, 9, dfs.RandomPlacement{})
	if _, err := Run(Options{}, NewListSource(nil)); err == nil {
		t.Fatal("empty options must fail")
	}
	bad := r.opts("bad")
	bad.Problem = &core.Problem{ProcNode: []int{99}, Tasks: r.prob.Tasks, FS: r.fs}
	if _, err := Run(bad, NewListSource(make([][]int, 1))); err == nil {
		t.Fatal("process on nonexistent node must fail")
	}
}

func TestListSourcePanicsOnUnknownProc(t *testing.T) {
	s := NewListSource([][]int{{0}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Next(3)
}

// TestPropertyEngineInvariants fuzzes small runs and checks conservation
// invariants: all tasks run once, served MB equals read MB, makespan is at
// least the per-process lower bound.
func TestPropertyEngineInvariants(t *testing.T) {
	prop := func(seed int64, rawNodes, rawPer uint8) bool {
		nodes := 4 + int(rawNodes)%8
		per := 1 + int(rawPer)%4
		r := buildRig(t, nodes, nodes*per, seed, dfs.RandomPlacement{})
		a, err := core.SingleData{Seed: seed}.Assign(r.prob)
		if err != nil {
			t.Error(err)
			return false
		}
		res, err := RunAssignment(r.opts("fuzz"), a)
		if err != nil {
			t.Error(err)
			return false
		}
		if res.TasksRun != nodes*per || len(res.Records) != nodes*per {
			t.Errorf("seed %d: ran %d tasks, want %d", seed, res.TasksRun, nodes*per)
			return false
		}
		var served, read float64
		for _, s := range res.ServedMB {
			served += s
		}
		for _, rec := range res.Records {
			read += rec.SizeMB
		}
		if math.Abs(served-read) > 1e-6 {
			t.Errorf("seed %d: served %v != read %v", seed, served, read)
			return false
		}
		// Makespan >= any single process's sequential uncontended time.
		perRead := r.topo.UncontendedLocalRead(64)
		if res.Makespan < float64(per)*perRead-1e-6 {
			t.Errorf("seed %d: makespan %v below lower bound %v", seed, res.Makespan, float64(per)*perRead)
			return false
		}
		for _, fin := range res.ProcFinish {
			if fin > res.Makespan+1e-9 {
				t.Errorf("seed %d: process finished after makespan", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
