package engine

import (
	"testing"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
)

// A failure at t=0 fires before the first read completes: every pick must
// avoid the node from the start and the job still runs to completion.
func TestFailureAtTimeZero(t *testing.T) {
	r := buildRig(t, 8, 40, 61, dfs.RandomPlacement{})
	a, err := core.SingleData{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	opts := r.opts("opass")
	opts.Failures = []NodeFailure{{Node: 4, At: 0}}
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 40 {
		t.Fatalf("tasks run = %d, want 40", res.TasksRun)
	}
	for _, rec := range res.Records {
		if rec.SrcNode == 4 && rec.End > 1e-9 {
			t.Fatalf("read served by node dead since t=0: %+v", rec)
		}
	}
	if r.topo.Net().Active() != 0 {
		t.Fatal("network not idle after run")
	}
}

// Crashing a node that serves no read and hosts no needed replica must not
// retry anything or slow the job down.
func TestFailureOfIdleNodeCausesNoRetries(t *testing.T) {
	// Clustered placement keeps every replica on nodes 0..2; node 7 is a
	// pure bystander.
	r := buildRig(t, 8, 16, 62, dfs.ClusteredPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunAssignment(r.opts("rank"), a)
	if err != nil {
		t.Fatal(err)
	}

	r2 := buildRig(t, 8, 16, 62, dfs.ClusteredPlacement{})
	a2, err := core.RankStatic{}.Assign(r2.prob)
	if err != nil {
		t.Fatal(err)
	}
	opts := r2.opts("rank")
	opts.Failures = []NodeFailure{{Node: 7, At: 0.5}}
	res, err := RunAssignment(opts, a2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("idle-node crash caused %d retries", res.Retries)
	}
	if res.TasksRun != 16 {
		t.Fatalf("tasks run = %d, want 16", res.TasksRun)
	}
	if res.Makespan != base.Makespan {
		t.Fatalf("idle-node crash changed the makespan: %v vs %v", res.Makespan, base.Makespan)
	}
}

// When every replica holder crashes the run aborts with a data-loss error —
// and the abort must tear down all in-flight flows so the shared topology
// can host another job immediately.
func TestFailureAllReplicasCrashedNetworkStaysReusable(t *testing.T) {
	topo := cluster.New(8, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: 63, Placement: dfs.ClusteredPlacement{}})
	if _, err := fs.Create("/data", 16*64); err != nil {
		t.Fatal(err)
	}
	procNode := []int{0, 1, 2, 3, 4, 5, 6, 7}
	prob, err := core.SingleDataProblem(fs, []string{"/data"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.RankStatic{}.Assign(prob)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Topo: topo, FS: fs, Problem: prob, Strategy: "rank"}
	opts.Failures = []NodeFailure{
		{Node: 0, At: 0.1}, {Node: 1, At: 0.1}, {Node: 2, At: 0.1},
	}
	if _, err := RunAssignment(opts, a); err == nil {
		t.Fatal("expected data-loss error")
	}
	if n := topo.Net().Active(); n != 0 {
		t.Fatalf("aborted run left %d flows active", n)
	}

	// A second, healthy job on the very same topology runs to completion.
	fs2 := dfs.New(topo, dfs.Config{Seed: 64, Placement: dfs.RandomPlacement{}})
	if _, err := fs2.Create("/data", 16*64); err != nil {
		t.Fatal(err)
	}
	prob2, err := core.SingleDataProblem(fs2, []string{"/data"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.SingleData{}.Assign(prob2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAssignment(Options{Topo: topo, FS: fs2, Problem: prob2, Strategy: "opass"}, a2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 16 {
		t.Fatalf("second job ran %d tasks, want 16", res.TasksRun)
	}
	if topo.Net().Active() != 0 {
		t.Fatal("network not idle after second job")
	}
}

// gatedSource hands process 0 task 1 immediately and parks process 1 in
// PollWait until the cluster stalls (process 0 has finished), then hands it
// task 0. It forces the engine through the waiting-process path with a node
// crash happening while the waiter sleeps. (Process 0 must be the eager
// one: the engine polls it first, before any work is in flight, and a
// source may not answer PollWait while the cluster is stalled.)
type gatedSource struct {
	handed [2]bool
}

func (g *gatedSource) Next(int) (int, bool) { panic("engine must use Poll") }

func (g *gatedSource) Poll(proc int, stalled bool) (int, PollState) {
	if proc == 0 {
		if !g.handed[0] {
			g.handed[0] = true
			return 1, PollTask
		}
		return 0, PollDone
	}
	if !stalled && !g.handed[1] {
		return 0, PollWait
	}
	if !g.handed[1] {
		g.handed[1] = true
		return 0, PollTask
	}
	return 0, PollDone
}

// A process parked in PollWait wakes up to find that a replica holder of
// its next task crashed while it slept. The read must fail over to a
// surviving replica instead of hanging or touching the dead node.
func TestFailureOfNodeWaitingProcDependsOn(t *testing.T) {
	topo := cluster.New(8, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{
		Seed:      65,
		Placement: dfs.FixedPlacement{Replicas: [][]int{{2, 3, 4}, {5, 6, 7}}},
	})
	if _, err := fs.Create("/data", 2*64); err != nil {
		t.Fatal(err)
	}
	prob, err := core.SingleDataProblem(fs, []string{"/data"}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Topo: topo, FS: fs, Problem: prob, Strategy: "gated"}
	opts.Failures = []NodeFailure{{Node: 2, At: 0.2}}
	res, err := Run(opts, &gatedSource{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 2 {
		t.Fatalf("tasks run = %d, want 2", res.TasksRun)
	}
	for _, rec := range res.Records {
		if rec.Task == 0 {
			if rec.SrcNode == 2 {
				t.Fatalf("woken waiter read from the crashed node: %+v", rec)
			}
			if rec.Start < 0.2 {
				t.Fatalf("task 0 started at %v, before the wake-up event", rec.Start)
			}
		}
	}
	if topo.Net().Active() != 0 {
		t.Fatal("network not idle after run")
	}
}
