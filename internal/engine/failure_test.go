package engine

import (
	"strings"
	"testing"
	"testing/quick"

	"opass/internal/core"
	"opass/internal/dfs"
)

func TestFailureMidRunRetriesReads(t *testing.T) {
	r := buildRig(t, 8, 80, 41, dfs.RandomPlacement{})
	a, err := core.RankStatic{}.Assign(r.prob)
	if err != nil {
		t.Fatal(err)
	}
	opts := r.opts("rank-with-failure")
	opts.Failures = []NodeFailure{{Node: 3, At: 2.0}}
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	// Every task still executes despite the crash.
	if res.TasksRun != 80 {
		t.Fatalf("tasks run = %d, want 80", res.TasksRun)
	}
	if len(res.FailedNodes) != 1 || res.FailedNodes[0] != 3 {
		t.Fatalf("failed nodes = %v", res.FailedNodes)
	}
	// No read that *completed* after the crash was served by the dead node.
	for _, rec := range res.Records {
		if rec.SrcNode == 3 && rec.End > 2.0+1e-9 {
			t.Fatalf("read served by crashed node after failure: %+v", rec)
		}
	}
}

func TestFailureCausesRetries(t *testing.T) {
	// Crash a node very early so its in-flight reads must restart. With 8
	// nodes and random placement some reads are served by node 0 at t=0.1
	// with high probability; assert retries only when it was serving.
	r := buildRig(t, 8, 80, 42, dfs.RandomPlacement{})
	a, _ := core.RankStatic{}.Assign(r.prob)
	opts := r.opts("rank")
	opts.Failures = []NodeFailure{{Node: 0, At: 0.1}}
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 80 {
		t.Fatalf("tasks = %d", res.TasksRun)
	}
	if res.Retries == 0 {
		t.Fatal("expected at least one retried read after an early crash")
	}
}

func TestFailureMakesJobSlower(t *testing.T) {
	run := func(fail bool) *Result {
		r := buildRig(t, 8, 80, 43, dfs.RandomPlacement{})
		a, _ := core.RankStatic{}.Assign(r.prob)
		opts := r.opts("rank")
		if fail {
			opts.Failures = []NodeFailure{{Node: 1, At: 1.0}, {Node: 2, At: 2.0}}
		}
		res, err := RunAssignment(opts, a)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(false)
	faulty := run(true)
	if faulty.Makespan <= healthy.Makespan {
		t.Fatalf("two dead nodes should slow the job: %v vs %v",
			faulty.Makespan, healthy.Makespan)
	}
}

func TestAllReplicasFailedIsDataLoss(t *testing.T) {
	// Clustered placement puts all replicas on nodes 0..2; killing all
	// three makes chunks unreadable — the engine must surface an error,
	// not hang or panic.
	r := buildRig(t, 8, 16, 44, dfs.ClusteredPlacement{})
	a, _ := core.RankStatic{}.Assign(r.prob)
	opts := r.opts("rank")
	opts.Failures = []NodeFailure{
		{Node: 0, At: 0.1}, {Node: 1, At: 0.1}, {Node: 2, At: 0.1},
	}
	_, err := RunAssignment(opts, a)
	if err == nil {
		t.Fatal("expected data-loss error")
	}
	if !strings.Contains(err.Error(), "replica") {
		t.Fatalf("err = %v", err)
	}
}

func TestFailureAfterJobEndsIsHarmless(t *testing.T) {
	r := buildRig(t, 8, 16, 45, dfs.RandomPlacement{})
	a, _ := core.SingleData{}.Assign(r.prob)
	opts := r.opts("opass")
	opts.Failures = []NodeFailure{{Node: 5, At: 10000}}
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("retries = %d, want 0", res.Retries)
	}
	// Makespan reflects the job, not the late failure timer.
	if res.Makespan > 100 {
		t.Fatalf("makespan %v polluted by failure timer", res.Makespan)
	}
}

func TestFailureValidation(t *testing.T) {
	r := buildRig(t, 4, 8, 46, dfs.RandomPlacement{})
	a, _ := core.RankStatic{}.Assign(r.prob)
	opts := r.opts("rank")
	opts.Failures = []NodeFailure{{Node: 99, At: 1}}
	if _, err := RunAssignment(opts, a); err == nil {
		t.Fatal("invalid failure node must be rejected")
	}
	r2 := buildRig(t, 4, 8, 47, dfs.RandomPlacement{})
	a2, _ := core.RankStatic{}.Assign(r2.prob)
	opts2 := r2.opts("rank")
	opts2.Failures = []NodeFailure{{Node: 0, At: -1}}
	if _, err := RunAssignment(opts2, a2); err == nil {
		t.Fatal("negative failure time must be rejected")
	}
}

func TestOpassPlanSurvivesFailureOfDataNode(t *testing.T) {
	// Opass planned everything local; when a node dies its OWN processes'
	// local reads fail over to remote replicas, but the job still finishes
	// with every task run.
	r := buildRig(t, 8, 80, 48, dfs.RandomPlacement{})
	a, _ := core.SingleData{}.Assign(r.prob)
	opts := r.opts("opass")
	opts.Failures = []NodeFailure{{Node: 4, At: 0.5}}
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 80 {
		t.Fatalf("tasks = %d", res.TasksRun)
	}
	// Locality dips below 100% because node 4's processes now read remotely.
	if res.LocalFraction() >= 1.0 {
		t.Fatalf("locality %v should drop after the crash", res.LocalFraction())
	}
}

func TestPeakConcurrencyTracked(t *testing.T) {
	// Rank assignment on random placement concentrates simultaneous reads
	// on hot disks; Opass keeps each disk at its own proc's stream(s).
	rBase := buildRig(t, 16, 160, 81, dfs.RandomPlacement{})
	aBase, _ := core.RankStatic{}.Assign(rBase.prob)
	base, err := RunAssignment(rBase.opts("rank"), aBase)
	if err != nil {
		t.Fatal(err)
	}
	maxPeak := 0
	for _, p := range base.PeakConcurrentReads {
		if p > maxPeak {
			maxPeak = p
		}
	}
	if maxPeak < 4 {
		t.Fatalf("baseline hottest disk peak %d, expected >= 4 concurrent reads", maxPeak)
	}
	rOp := buildRig(t, 16, 160, 81, dfs.RandomPlacement{})
	aOp, _ := core.SingleData{}.Assign(rOp.prob)
	op, err := RunAssignment(rOp.opts("opass"), aOp)
	if err != nil {
		t.Fatal(err)
	}
	opPeak := 0
	for _, p := range op.PeakConcurrentReads {
		if p > opPeak {
			opPeak = p
		}
	}
	// With everything local and sequential per process, each disk serves at
	// most its own co-located processes (1 here).
	if opPeak > 2 {
		t.Fatalf("opass peak concurrency %d, want <= 2", opPeak)
	}
	if opPeak >= maxPeak {
		t.Fatalf("opass peak %d not below baseline %d", opPeak, maxPeak)
	}
}

// TestPropertyFailureFuzz injects random crashes and demands the engine
// either completes every task or reports data loss — never hangs, panics,
// or silently drops work.
func TestPropertyFailureFuzz(t *testing.T) {
	prop := func(seed int64, rawNode, rawTime uint8) bool {
		nodes := 8
		r := buildRig(t, nodes, 40, seed, dfs.RandomPlacement{})
		a, err := core.SingleData{Seed: seed}.Assign(r.prob)
		if err != nil {
			t.Error(err)
			return false
		}
		opts := r.opts("fuzz")
		opts.Failures = []NodeFailure{
			{Node: int(rawNode) % nodes, At: float64(rawTime) / 16.0},
			{Node: (int(rawNode) + 3) % nodes, At: float64(rawTime) / 8.0},
		}
		res, err := RunAssignment(opts, a)
		if err != nil {
			// Data loss is a legitimate outcome only if a chunk's replicas
			// all landed on the two crashed nodes — impossible with r=3 and
			// two failures, so any error is a bug.
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if res.TasksRun != 40 || len(res.Records) != 40 {
			t.Errorf("seed %d: %d tasks, %d records", seed, res.TasksRun, len(res.Records))
			return false
		}
		// No completed read was served by a node that had already crashed.
		for _, rec := range res.Records {
			for _, f := range opts.Failures {
				if rec.SrcNode == f.Node && rec.End > f.At+1e-6 && rec.Start > f.At {
					t.Errorf("seed %d: read started on crashed node: %+v", seed, rec)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskUtilizationReported(t *testing.T) {
	// Fully local balanced reads keep every disk busy most of the run;
	// the rank baseline leaves idle disks while hotspots saturate.
	rOp := buildRig(t, 8, 80, 91, dfs.RoundRobinPlacement{})
	aOp, _ := core.SingleData{}.Assign(rOp.prob)
	op, err := RunAssignment(rOp.opts("opass"), aOp)
	if err != nil {
		t.Fatal(err)
	}
	if len(op.DiskUtilization) != 8 {
		t.Fatalf("utilization slots = %d", len(op.DiskUtilization))
	}
	for n, u := range op.DiskUtilization {
		if u < 0.8 || u > 1.01 {
			t.Fatalf("node %d utilization %v, want ~1 for balanced local reads", n, u)
		}
	}
	rBase := buildRig(t, 8, 80, 91, dfs.RandomPlacement{})
	aBase, _ := core.RankStatic{}.Assign(rBase.prob)
	base, err := RunAssignment(rBase.opts("rank"), aBase)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline's mean disk utilization is visibly lower (idle time while
	// waiting on hotspots).
	meanOp, meanBase := 0.0, 0.0
	for n := 0; n < 8; n++ {
		meanOp += op.DiskUtilization[n]
		meanBase += base.DiskUtilization[n]
	}
	if meanBase >= meanOp {
		t.Fatalf("baseline mean utilization %v not below opass %v", meanBase/8, meanOp/8)
	}
}
