package engine

import (
	"fmt"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/simnet"
)

// This file implements concurrent multi-job execution. §V-C1 of the paper
// notes that "clusters are usually shared by multiple applications. Thus,
// Opass may not greatly enhance the performance of parallel data requests
// due to the adjustment of HDFS" — a co-running job's reads land on the
// same disks and NICs regardless of how well Opass planned its own. RunJobs
// executes several jobs against one topology simultaneously so that
// interference can be measured (the shared-cluster experiment).

// JobSpec is one application in a concurrent run.
type JobSpec struct {
	// Problem and Source drive the job's tasks, exactly as in Run.
	Problem *core.Problem
	Source  TaskSource
	// ComputeTime gives per-task compute seconds (nil = pure I/O).
	ComputeTime func(task int) float64
	// Strategy labels the job's Result.
	Strategy string
	// StartAt delays the job's processes by this many seconds of virtual
	// time after the run begins (staggered arrivals).
	StartAt float64
}

// RunJobs executes every job concurrently on the shared topology and file
// system, returning one Result per job (times relative to the run start).
// Node-failure injection is not supported in concurrent mode.
func RunJobs(topo *cluster.Topology, fs *dfs.FileSystem, jobs []JobSpec) ([]*Result, error) {
	if topo == nil || fs == nil {
		return nil, fmt.Errorf("engine: RunJobs requires a topology and file system")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("engine: no jobs")
	}
	net := topo.Net()
	if net.Active() != 0 {
		return nil, fmt.Errorf("engine: network busy with %d flows at run start", net.Active())
	}
	start := net.Now()

	type jobRT struct {
		spec    JobSpec
		poller  PollingSource
		states  []state2
		res     *Result
		waiting []int
	}
	rts := make([]*jobRT, len(jobs))
	for j, spec := range jobs {
		if spec.Problem == nil || spec.Source == nil {
			return nil, fmt.Errorf("engine: job %d missing problem or source", j)
		}
		if err := spec.Problem.Validate(); err != nil {
			return nil, fmt.Errorf("engine: job %d: %w", j, err)
		}
		for _, node := range spec.Problem.ProcNode {
			if node < 0 || node >= topo.NumNodes() {
				return nil, fmt.Errorf("engine: job %d process on invalid node %d", j, node)
			}
		}
		if spec.StartAt < 0 {
			return nil, fmt.Errorf("engine: job %d negative start time", j)
		}
		poller, ok := spec.Source.(PollingSource)
		if !ok {
			poller = pollAdapter{spec.Source}
		}
		rts[j] = &jobRT{
			spec:   spec,
			poller: poller,
			states: make([]state2, spec.Problem.NumProcs()),
			res: &Result{
				Strategy:   spec.Strategy,
				ServedMB:   make([]float64, topo.NumNodes()),
				ProcFinish: make([]float64, spec.Problem.NumProcs()),
			},
		}
	}

	type key struct{ job, proc int }
	type pend struct {
		kind pendingKind
		key  key
		rec  ReadRecord
	}
	inflight := make(map[simnet.FlowID]pend)
	totalWaiting := 0

	var startTask func(j, proc int)
	startInput := func(j, proc int) {
		rt := rts[j]
		st := &rt.states[proc]
		p := rt.spec.Problem
		task := &p.Tasks[st.task]
		in := task.Inputs[(st.input+st.task)%len(task.Inputs)]
		node := p.ProcNode[proc]
		srcNode, local, err := fs.PickReplicaAvoiding(in.Chunk, node, 0, nil)
		if err != nil {
			panic(abortRun{err})
		}
		id := net.Start(topo.ReadPath(srcNode, node), in.SizeMB, topo.ReadLatency(srcNode),
			fmt.Sprintf("j%d/p%d/t%d", j, proc, st.task))
		inflight[id] = pend{kind: kindRead, key: key{j, proc}, rec: ReadRecord{
			Proc: proc, Task: st.task, Chunk: in.Chunk,
			SrcNode: srcNode, DstNode: node, Local: local,
			SizeMB: in.SizeMB, Start: net.Now() - start,
		}}
	}

	startTask = func(j, proc int) {
		rt := rts[j]
		stalled := net.Active() == 0 && totalWaiting == 0
		task, st := rt.poller.Poll(proc, stalled)
		switch st {
		case PollDone:
			rt.res.ProcFinish[proc] = net.Now() - start
			return
		case PollWait:
			if stalled {
				panic("engine: polling source answered wait while the cluster is stalled")
			}
			rt.waiting = append(rt.waiting, proc)
			totalWaiting++
			return
		}
		if task < 0 || task >= len(rt.spec.Problem.Tasks) {
			panic(fmt.Sprintf("engine: job %d source produced invalid task %d", j, task))
		}
		rt.states[proc] = state2{task: task, input: 0}
		rt.res.TasksRun++
		startInput(j, proc)
	}

	retryWaiting := func() {
		for totalWaiting > 0 {
			stalled := net.Active() == 0
			progress := false
			for j, rt := range rts {
				if len(rt.waiting) == 0 {
					continue
				}
				ws := rt.waiting
				rt.waiting = rt.waiting[:0]
				totalWaiting -= len(ws)
				for _, proc := range ws {
					before := totalWaiting
					startTask(j, proc)
					if totalWaiting == before {
						progress = true // the proc got a task or finished
					}
				}
			}
			if !progress {
				if stalled && totalWaiting > 0 {
					panic("engine: all jobs waiting with no work in flight")
				}
				return
			}
		}
	}

	net.OnComplete(func(now float64, f *simnet.Flow) {
		pd, ok := inflight[f.ID]
		if !ok {
			panic(fmt.Sprintf("engine: completion for unknown flow %d (%s)", f.ID, f.Label))
		}
		delete(inflight, f.ID)
		j, proc := pd.key.job, pd.key.proc
		rt := rts[j]
		switch pd.kind {
		case kindRead:
			rec := pd.rec
			rec.End = now - start
			rt.res.Records = append(rt.res.Records, rec)
			rt.res.ServedMB[rec.SrcNode] += rec.SizeMB
			st := &rt.states[proc]
			st.input++
			if st.input < len(rt.spec.Problem.Tasks[st.task].Inputs) {
				startInput(j, proc)
				break
			}
			if rt.spec.ComputeTime != nil {
				if ct := rt.spec.ComputeTime(st.task); ct > 0 {
					id := net.Start(nil, 0, ct, fmt.Sprintf("j%d/p%d/compute", j, proc))
					inflight[id] = pend{kind: kindCompute, key: pd.key}
					break
				}
			}
			startTask(j, proc)
		case kindCompute:
			startTask(j, proc)
		case kindFailure:
			// Job arrival timer: release every process of job j.
			for proc := 0; proc < rt.spec.Problem.NumProcs(); proc++ {
				startTask(j, proc)
			}
		}
		retryWaiting()
	})

	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if ab, ok := r.(abortRun); ok {
					err = ab.err
					return
				}
				panic(r)
			}
		}()
		for j, rt := range rts {
			if rt.spec.StartAt > 0 {
				// Reuse the failure kind as a simple arrival timer keyed to
				// the job (node field unused here).
				id := net.Start(nil, 0, rt.spec.StartAt, fmt.Sprintf("j%d/arrival", j))
				inflight[id] = pend{kind: kindFailure, key: key{job: j, proc: -1}}
				continue
			}
			for proc := 0; proc < rt.spec.Problem.NumProcs(); proc++ {
				startTask(j, proc)
			}
		}
		retryWaiting()
		for {
			net.Run()
			if totalWaiting == 0 {
				break
			}
			retryWaiting()
		}
		return nil
	}(); err != nil {
		net.OnComplete(nil)
		return nil, err
	}
	net.OnComplete(nil)

	results := make([]*Result, len(jobs))
	for j, rt := range rts {
		for _, fin := range rt.res.ProcFinish {
			if fin > rt.res.Makespan {
				rt.res.Makespan = fin
			}
		}
		results[j] = rt.res
	}
	return results, nil
}

// state2 mirrors Run's per-process progress record.
type state2 struct {
	task  int
	input int
}
