package engine

import (
	"context"
	"fmt"
	"sort"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/simnet"
)

// This file implements concurrent multi-job execution. §V-C1 of the paper
// notes that "clusters are usually shared by multiple applications. Thus,
// Opass may not greatly enhance the performance of parallel data requests
// due to the adjustment of HDFS" — a co-running job's reads land on the
// same disks and NICs regardless of how well Opass planned its own. RunJobs
// executes several jobs against one topology simultaneously so that
// interference can be measured (the shared-cluster experiment), and
// RunJobsScheduled lets a ClusterScheduler plan each job at its arrival
// against the residual cluster instead of an empty one (the globalsched
// subsystem).

// JobSpec is one application in a concurrent run.
type JobSpec struct {
	// Problem and Source drive the job's tasks, exactly as in Run. Source
	// may be nil only under RunJobsScheduled with a non-nil scheduler, in
	// which case the scheduler supplies the source at the job's arrival.
	Problem *core.Problem
	Source  TaskSource
	// ComputeTime gives per-task compute seconds (nil = pure I/O).
	ComputeTime func(task int) float64
	// Strategy labels the job's Result.
	Strategy string
	// StartAt delays the job's processes by this many seconds of virtual
	// time after the run begins (staggered arrivals).
	StartAt float64
}

// ClusterScheduler is consulted by RunJobsScheduled at every job arrival —
// the seam for cluster-level planning above the per-job matchers (ROADMAP
// item 1; OS4M-style operation-level global balancing). Implementations
// track cumulative per-node service load across jobs and bias each arriving
// job's plan toward nodes with residual capacity.
type ClusterScheduler interface {
	// JobArriving runs when job's processes are released (at run start for
	// StartAt == 0, when the arrival timer fires otherwise). now is the
	// arrival time in seconds relative to run start. A non-nil TaskSource
	// replaces spec.Source for the job; returning nil keeps spec.Source
	// (which must then be non-nil). An error aborts the whole run.
	JobArriving(job int, spec JobSpec, now float64) (TaskSource, error)
	// JobFinished runs when the job's last process completes, with the
	// job's actual per-node served megabytes, so the scheduler can
	// reconcile its planned load estimate against ground truth.
	JobFinished(job int, servedMB []float64)
}

// ReadSteerer chooses which replica holder serves each remote read — OS4M's
// operation-level balancing on the serving side: quota biasing can only
// steer which process *owns* a task, but a task read remotely is served by
// whichever replica holder the uniform HDFS pick lands on — load the
// planner cannot place. The steerer's choice overrides the network-distance
// ordering of the default pick. Single-job runs honor it through
// Options.Balancer; multi-job runs through a ServingBalancer scheduler.
type ReadSteerer interface {
	// PickRemote chooses the replica holder that should serve a remote
	// read of sizeMB megabytes requested by a process on node reader.
	// holders is non-empty, never contains reader, and must not be
	// retained or mutated. Returning a node outside holders aborts the
	// run.
	PickRemote(reader int, holders []int, sizeMB float64) int
	// ReadStarted reports that node is about to serve a sizeMB read.
	ReadStarted(node int, sizeMB float64)
}

// ServingBalancer is an optional ClusterScheduler extension: when the
// scheduler also implements ReadSteerer, RunJobsScheduled asks it to choose
// the holder for every remote read and reports each read (local and remote)
// as it starts, so the balancer can keep a live per-node serving tally.
type ServingBalancer interface {
	ClusterScheduler
	ReadSteerer
}

// RunJobs executes every job concurrently on the shared topology and file
// system, returning one Result per job. Each Result's times are relative to
// the run start; Result.Arrival records the job's release time so
// JobMakespan reports completion-minus-arrival. Node-failure injection is
// not supported in concurrent mode.
func RunJobs(topo *cluster.Topology, fs *dfs.FileSystem, jobs []JobSpec) ([]*Result, error) {
	return RunJobsContext(context.Background(), topo, fs, jobs)
}

// RunJobsContext is RunJobs under cooperative cancellation: the drain loop
// advances the simulation in stepBudget-event slices and polls ctx between
// slices. On abort every in-flight flow the run started — reads, compute
// and arrival timers — is torn down, leaving the shared network idle and
// reusable (mirroring single-job RunContext).
func RunJobsContext(ctx context.Context, topo *cluster.Topology, fs *dfs.FileSystem, jobs []JobSpec) ([]*Result, error) {
	return RunJobsScheduled(ctx, topo, fs, jobs, nil)
}

// RunJobsScheduled is RunJobsContext with a cluster-level scheduler hooked
// into the arrival events: sched (when non-nil) is consulted as each job's
// processes are released and may hand the job a freshly planned TaskSource;
// it is informed of the job's actual per-node service load when the job
// drains. A nil sched degrades to plain concurrent execution.
func RunJobsScheduled(ctx context.Context, topo *cluster.Topology, fs *dfs.FileSystem, jobs []JobSpec, sched ClusterScheduler) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: run aborted before start: %w", err)
	}
	if topo == nil || fs == nil {
		return nil, fmt.Errorf("engine: RunJobs requires a topology and file system")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("engine: no jobs")
	}
	net := topo.Net()
	if net.Active() != 0 {
		return nil, fmt.Errorf("engine: network busy with %d flows at run start", net.Active())
	}
	balancer, _ := sched.(ServingBalancer)
	start := net.Now()

	type jobRT struct {
		spec      JobSpec
		poller    PollingSource
		states    []state2
		res       *Result
		waiting   []int
		remaining int // processes not yet finished
	}
	rts := make([]*jobRT, len(jobs))
	for j, spec := range jobs {
		if spec.Problem == nil {
			return nil, fmt.Errorf("engine: job %d missing problem", j)
		}
		if spec.Source == nil && sched == nil {
			return nil, fmt.Errorf("engine: job %d missing source (only scheduled runs may omit it)", j)
		}
		if err := spec.Problem.Validate(); err != nil {
			return nil, fmt.Errorf("engine: job %d: %w", j, err)
		}
		for _, node := range spec.Problem.ProcNode {
			if node < 0 || node >= topo.NumNodes() {
				return nil, fmt.Errorf("engine: job %d process on invalid node %d", j, node)
			}
		}
		if spec.StartAt < 0 {
			return nil, fmt.Errorf("engine: job %d negative start time", j)
		}
		rt := &jobRT{
			spec:      spec,
			states:    make([]state2, spec.Problem.NumProcs()),
			remaining: spec.Problem.NumProcs(),
			res: &Result{
				Strategy:   spec.Strategy,
				Arrival:    spec.StartAt,
				ServedMB:   make([]float64, topo.NumNodes()),
				ProcFinish: make([]float64, spec.Problem.NumProcs()),
			},
		}
		if spec.Source != nil {
			rt.poller = asPoller(spec.Source)
		}
		rts[j] = rt
	}

	type key struct{ job, proc int }
	type pend struct {
		kind pendingKind
		key  key
		rec  ReadRecord
	}
	inflight := make(map[simnet.FlowID]pend)
	totalWaiting := 0

	var startTask func(j, proc int)
	startInput := func(j, proc int) {
		rt := rts[j]
		st := &rt.states[proc]
		p := rt.spec.Problem
		task := &p.Tasks[st.task]
		in := task.Inputs[(st.input+st.task)%len(task.Inputs)]
		node := p.ProcNode[proc]
		srcNode, local, err := fs.PickReplicaAvoiding(in.Chunk, node, 0, nil)
		if err != nil {
			panic(abortRun{err})
		}
		if balancer != nil {
			if !local {
				holders := fs.Chunk(in.Chunk).Replicas
				srcNode = balancer.PickRemote(node, holders, in.SizeMB)
				ok := false
				for _, h := range holders {
					if h == srcNode {
						ok = true
						break
					}
				}
				if !ok {
					panic(abortRun{fmt.Errorf("engine: balancer picked node %d, not a holder of chunk %d", srcNode, in.Chunk)})
				}
			}
			balancer.ReadStarted(srcNode, in.SizeMB)
		}
		fs.RecordRead(in.Chunk, node, local, in.SizeMB, net.Now())
		id := net.Start(topo.ReadPath(srcNode, node), in.SizeMB, topo.ReadLatency(srcNode),
			fmt.Sprintf("j%d/p%d/t%d", j, proc, st.task))
		inflight[id] = pend{kind: kindRead, key: key{j, proc}, rec: ReadRecord{
			Proc: proc, Task: st.task, Chunk: in.Chunk,
			SrcNode: srcNode, DstNode: node, Local: local,
			SizeMB: in.SizeMB, Start: net.Now() - start,
		}}
	}

	finishProc := func(j, proc int) {
		rt := rts[j]
		rt.res.ProcFinish[proc] = net.Now() - start
		rt.remaining--
		if rt.remaining == 0 && sched != nil {
			sched.JobFinished(j, append([]float64(nil), rt.res.ServedMB...))
		}
	}

	startTask = func(j, proc int) {
		rt := rts[j]
		stalled := net.Active() == 0 && totalWaiting == 0
		task, st := rt.poller.Poll(proc, stalled)
		switch st {
		case PollDone:
			finishProc(j, proc)
			return
		case PollWait:
			if stalled {
				panic("engine: polling source answered wait while the cluster is stalled")
			}
			rt.waiting = append(rt.waiting, proc)
			totalWaiting++
			return
		}
		if task < 0 || task >= len(rt.spec.Problem.Tasks) {
			panic(fmt.Sprintf("engine: job %d source produced invalid task %d", j, task))
		}
		rt.states[proc] = state2{task: task, input: 0}
		rt.res.TasksRun++
		startInput(j, proc)
	}

	// releaseJob fires at the job's arrival: consult the scheduler (which
	// may plan the job against the residual cluster and hand back a fresh
	// source), then start every process.
	releaseJob := func(j int, now float64) {
		rt := rts[j]
		if sched != nil {
			src, err := sched.JobArriving(j, rt.spec, now)
			if err != nil {
				panic(abortRun{fmt.Errorf("engine: scheduling job %d: %w", j, err)})
			}
			if src != nil {
				rt.poller = asPoller(src)
			}
		}
		if rt.poller == nil {
			panic(abortRun{fmt.Errorf("engine: job %d has no task source at arrival", j)})
		}
		for proc := 0; proc < rt.spec.Problem.NumProcs(); proc++ {
			startTask(j, proc)
		}
	}

	retryWaiting := func() {
		for totalWaiting > 0 {
			stalled := net.Active() == 0
			progress := false
			for j, rt := range rts {
				if len(rt.waiting) == 0 {
					continue
				}
				// Detach before iterating, exactly as single-job Run does:
				// startTask below may append re-waiting processes, and with
				// an in-place `rt.waiting[:0]` truncation those appends
				// would land in the backing array this loop is reading.
				ws := detachWaiting(&rt.waiting)
				totalWaiting -= len(ws)
				for _, proc := range ws {
					before := totalWaiting
					startTask(j, proc)
					if totalWaiting == before {
						progress = true // the proc got a task or finished
					}
				}
			}
			if !progress {
				if stalled && totalWaiting > 0 {
					panic("engine: all jobs waiting with no work in flight")
				}
				return
			}
		}
	}

	net.OnComplete(func(now float64, f *simnet.Flow) {
		pd, ok := inflight[f.ID]
		if !ok {
			panic(fmt.Sprintf("engine: completion for unknown flow %d (%s)", f.ID, f.Label))
		}
		delete(inflight, f.ID)
		j, proc := pd.key.job, pd.key.proc
		rt := rts[j]
		switch pd.kind {
		case kindRead:
			rec := pd.rec
			rec.End = now - start
			rt.res.Records = append(rt.res.Records, rec)
			rt.res.ServedMB[rec.SrcNode] += rec.SizeMB
			if !rec.Local {
				if topo.RackOf(rec.SrcNode) == topo.RackOf(rec.DstNode) {
					rt.res.RackLocalMB += rec.SizeMB
				} else {
					rt.res.CrossRackMB += rec.SizeMB
				}
			}
			st := &rt.states[proc]
			st.input++
			if st.input < len(rt.spec.Problem.Tasks[st.task].Inputs) {
				startInput(j, proc)
				break
			}
			if rt.spec.ComputeTime != nil {
				if ct := rt.spec.ComputeTime(st.task); ct > 0 {
					id := net.Start(nil, 0, ct, fmt.Sprintf("j%d/p%d/compute", j, proc))
					inflight[id] = pend{kind: kindCompute, key: pd.key}
					break
				}
			}
			startTask(j, proc)
		case kindCompute:
			startTask(j, proc)
		case kindFailure:
			// Job arrival timer: release every process of job j.
			releaseJob(j, now-start)
		}
		retryWaiting()
	})

	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if ab, ok := r.(abortRun); ok {
					err = ab.err
					return
				}
				panic(r)
			}
		}()
		for j, rt := range rts {
			if rt.spec.StartAt > 0 {
				// Reuse the failure kind as a simple arrival timer keyed to
				// the job (node field unused here).
				id := net.Start(nil, 0, rt.spec.StartAt, fmt.Sprintf("j%d/arrival", j))
				inflight[id] = pend{kind: kindFailure, key: key{job: j, proc: -1}}
				continue
			}
			releaseJob(j, 0)
		}
		retryWaiting()
		for {
			// Drain in budgeted slices instead of an uninterruptible
			// net.Run(): between slices a cancelled context aborts the run.
			for net.StepN(stepBudget) {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("engine: run aborted after %d events: %w", net.Completed(), err)
				}
			}
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("engine: run aborted after %d events: %w", net.Completed(), err)
			}
			if totalWaiting == 0 {
				break
			}
			retryWaiting()
		}
		return nil
	}(); err != nil {
		// Tear down whatever the aborted run left in flight (reads, compute
		// and arrival timers) so the shared network returns to idle.
		victims := make([]simnet.FlowID, 0, len(inflight))
		for id := range inflight {
			victims = append(victims, id)
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
		for _, id := range victims {
			net.Cancel(id)
		}
		net.OnComplete(nil)
		return nil, err
	}
	net.OnComplete(nil)

	results := make([]*Result, len(jobs))
	for j, rt := range rts {
		for _, fin := range rt.res.ProcFinish {
			if fin > rt.res.Makespan {
				rt.res.Makespan = fin
			}
		}
		results[j] = rt.res
	}
	return results, nil
}

// asPoller lifts a TaskSource into a PollingSource.
func asPoller(src TaskSource) PollingSource {
	if p, ok := src.(PollingSource); ok {
		return p
	}
	return pollAdapter{src}
}

// state2 mirrors Run's per-process progress record.
type state2 struct {
	task  int
	input int
}
