package engine

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"opass/internal/core"
)

// TestDetachWaitingIsolatesBatch is the regression test for the waiting-list
// aliasing bug: retryWaiting used to grab the batch with an in-place
// truncation (`ws := waiting; waiting = waiting[:0]`), so appends issued
// while iterating the batch landed in the same backing array the loop was
// reading. One append per item happens to stay behind the read index, but
// the contract must hold for any append pattern — two appends per item is
// exactly the shape that clobbers the aliased batch (the second append
// overwrites the next unread slot). detachWaiting steals the slice, so the
// batch is immune no matter what the loop pushes back.
func TestDetachWaitingIsolatesBatch(t *testing.T) {
	waiting := make([]int, 0, 16)
	waiting = append(waiting, 0, 1, 2, 3)
	ws := detachWaiting(&waiting)
	if len(waiting) != 0 {
		t.Fatalf("waiting kept %d entries after detach", len(waiting))
	}
	for i, proc := range ws {
		if proc != i {
			t.Fatalf("batch[%d] = %d, want %d (batch clobbered by re-wait appends)", i, proc, i)
		}
		// Re-wait two processes per batch item, as a job with more
		// processes than batch slots can.
		waiting = append(waiting, 10+2*i, 11+2*i)
	}
	if want := []int{10, 11, 12, 13, 14, 15, 16, 17}; !reflect.DeepEqual(waiting, want) {
		t.Fatalf("re-waited list = %v, want %v", waiting, want)
	}
}

// schedRecorder is a minimal ClusterScheduler: it hands each job a
// pre-planned source and records the arrival clock and the served-MB
// reconciliation callbacks.
type schedRecorder struct {
	srcs     map[int]TaskSource
	arrivals map[int]float64
	finished map[int][]float64
}

func (s *schedRecorder) JobArriving(job int, spec JobSpec, now float64) (TaskSource, error) {
	s.arrivals[job] = now
	return s.srcs[job], nil
}

func (s *schedRecorder) JobFinished(job int, servedMB []float64) {
	s.finished[job] = servedMB
}

func TestRunJobsScheduledPlansAtArrival(t *testing.T) {
	r, probA, probB := twoJobRig(t, 8, 24, 91)
	aA, _ := core.SingleData{}.Assign(probA)
	aB, _ := core.SingleData{}.Assign(probB)
	sched := &schedRecorder{
		srcs:     map[int]TaskSource{0: NewListSource(aA.Lists), 1: NewListSource(aB.Lists)},
		arrivals: map[int]float64{},
		finished: map[int][]float64{},
	}
	const startB = 5.0
	results, err := RunJobsScheduled(context.Background(), r.topo, r.fs, []JobSpec{
		{Problem: probA, Strategy: "a"},
		{Problem: probB, Strategy: "b", StartAt: startB},
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.arrivals[0]; got != 0 {
		t.Fatalf("job 0 arrived at %v, want 0", got)
	}
	if got := sched.arrivals[1]; math.Abs(got-startB) > 1e-9 {
		t.Fatalf("job 1 arrived at %v, want %v", got, startB)
	}
	for j, res := range results {
		if res.TasksRun != 24 {
			t.Fatalf("job %d ran %d tasks", j, res.TasksRun)
		}
		// The reconciliation callback must see exactly the job's own
		// service profile.
		if !reflect.DeepEqual(sched.finished[j], res.ServedMB) {
			t.Fatalf("job %d JobFinished served %v, result says %v", j, sched.finished[j], res.ServedMB)
		}
	}
	if got := results[1].Arrival; got != startB {
		t.Fatalf("job 1 Arrival = %v, want %v", got, startB)
	}
	if jm := results[1].JobMakespan(); math.Abs(jm-(results[1].Makespan-startB)) > 1e-9 {
		t.Fatalf("JobMakespan = %v, want completion-minus-arrival %v", jm, results[1].Makespan-startB)
	}
}

// steerBalancer is a ServingBalancer that forces every remote read to the
// lowest-numbered holder and tallies what it was told.
type steerBalancer struct {
	schedRecorder
	picks   int
	started map[int]float64
}

func (b *steerBalancer) PickRemote(reader int, holders []int, sizeMB float64) int {
	b.picks++
	best := holders[0]
	for _, h := range holders[1:] {
		if h < best {
			best = h
		}
	}
	return best
}

func (b *steerBalancer) ReadStarted(node int, sizeMB float64) {
	b.started[node] += sizeMB
}

func TestServingBalancerSteersRemoteReads(t *testing.T) {
	r, probA, probB := twoJobRig(t, 8, 24, 92)
	aA, _ := core.SingleData{}.Assign(probA)
	// RankStatic ignores locality, guaranteeing remote reads to steer.
	aB, _ := core.RankStatic{}.Assign(probB)
	bal := &steerBalancer{
		schedRecorder: schedRecorder{
			srcs:     map[int]TaskSource{0: NewListSource(aA.Lists), 1: NewListSource(aB.Lists)},
			arrivals: map[int]float64{},
			finished: map[int][]float64{},
		},
		started: map[int]float64{},
	}
	results, err := RunJobsScheduled(context.Background(), r.topo, r.fs, []JobSpec{
		{Problem: probA, Strategy: "a"},
		{Problem: probB, Strategy: "b"},
	}, bal)
	if err != nil {
		t.Fatal(err)
	}
	remote := 0
	startedWant := map[int]float64{}
	for _, res := range results {
		for _, rec := range res.Records {
			startedWant[rec.SrcNode] += rec.SizeMB
			if rec.Local {
				continue
			}
			remote++
			// Every remote read must have gone where the balancer said:
			// the lowest-numbered holder of its chunk.
			holders := r.fs.Chunk(rec.Chunk).Replicas
			best := holders[0]
			for _, h := range holders[1:] {
				if h < best {
					best = h
				}
			}
			if rec.SrcNode != best {
				t.Fatalf("remote read of chunk %d served by %d, balancer chose %d", rec.Chunk, rec.SrcNode, best)
			}
		}
	}
	if remote == 0 {
		t.Fatal("no remote reads; the balancer path was not exercised")
	}
	if bal.picks != remote {
		t.Fatalf("balancer consulted %d times for %d remote reads", bal.picks, remote)
	}
	if !reflect.DeepEqual(bal.started, startedWant) {
		t.Fatalf("ReadStarted tally %v, want %v", bal.started, startedWant)
	}
}

func TestRunJobsDeterministic(t *testing.T) {
	// Same seed, same specs: byte-identical per-job results, including the
	// staggered arrival interleaving.
	run := func() []*Result {
		r, probA, probB := twoJobRig(t, 8, 24, 93)
		aA, _ := core.SingleData{}.Assign(probA)
		aB, _ := core.RankStatic{}.Assign(probB)
		results, err := RunJobs(r.topo, r.fs, []JobSpec{
			{Problem: probA, Source: NewListSource(aA.Lists), Strategy: "a"},
			{Problem: probB, Source: NewListSource(aB.Lists), Strategy: "b", StartAt: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	first, second := run(), run()
	for j := range first {
		if !reflect.DeepEqual(first[j], second[j]) {
			t.Fatalf("job %d differs between identical runs:\n%+v\n%+v", j, first[j], second[j])
		}
	}
}

func TestRunJobsContextMidRunCancel(t *testing.T) {
	r, probA, probB := twoJobRig(t, 8, 40, 94)
	aA, _ := core.SingleData{}.Assign(probA)
	aB, _ := core.SingleData{}.Assign(probB)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{inner: NewListSource(aA.Lists), cancel: cancel, after: 10}
	results, err := RunJobsContext(ctx, r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: src, Strategy: "a"},
		// Job 1's far-future arrival timer is an in-flight flow the abort
		// must tear down too.
		{Problem: probB, Source: NewListSource(aB.Lists), Strategy: "b", StartAt: 1e6},
	})
	if results != nil {
		t.Fatalf("got partial results %v, want nil", results)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := r.topo.Net().Active(); got != 0 {
		t.Fatalf("network has %d active flows after mid-run abort", got)
	}
	// The shared substrate must be reusable for a follow-up run.
	rerun, err := RunJobs(r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: NewListSource(aA.Lists), Strategy: "a"},
		{Problem: probB, Source: NewListSource(aB.Lists), Strategy: "b"},
	})
	if err != nil {
		t.Fatalf("rerun after abort failed: %v", err)
	}
	for j, res := range rerun {
		if res.TasksRun != 40 {
			t.Fatalf("rerun job %d executed %d tasks, want 40", j, res.TasksRun)
		}
	}
}

func TestRunJobsScheduledAlreadyCancelled(t *testing.T) {
	r, probA, _ := twoJobRig(t, 8, 24, 95)
	aA, _ := core.SingleData{}.Assign(probA)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunJobsContext(ctx, r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: NewListSource(aA.Lists), Strategy: "a"},
	})
	if results != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("results=%v err=%v, want nil results and context.Canceled", results, err)
	}
	if got := r.topo.Net().Active(); got != 0 {
		t.Fatalf("network has %d active flows after pre-start abort", got)
	}
}

// gateJobSource is gateSource bound to one job of a multi-job run: tasks
// are handed out strictly in ID order to the matching rank, so several
// processes per job sit in the engine's per-job waiting lists at once and
// are re-waited across many retryWaiting passes — the multi-job variant of
// the access pattern behind the aliasing bug.
type gateJobSource struct {
	next, total, procs int
	waits              int
}

func (s *gateJobSource) Next(proc int) (int, bool) {
	t, st := s.Poll(proc, true)
	return t, st == PollTask
}

func (s *gateJobSource) Poll(proc int, stalled bool) (int, PollState) {
	if s.next >= s.total {
		return 0, PollDone
	}
	if stalled || s.next%s.procs == proc {
		t := s.next
		s.next++
		return t, PollTask
	}
	s.waits++
	return 0, PollWait
}

func TestRunJobsReentrantWaitingExactlyOnce(t *testing.T) {
	const nodes, tasks = 8, 64
	r, probA, probB := twoJobRig(t, nodes, tasks, 96)
	srcA := &gateJobSource{total: tasks, procs: nodes}
	srcB := &gateJobSource{total: tasks, procs: nodes}
	results, err := RunJobs(r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: srcA, Strategy: "a"},
		{Problem: probB, Source: srcB, Strategy: "b", StartAt: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, res := range results {
		seen := make([]int, tasks)
		for _, rec := range res.Records {
			seen[rec.Task]++
		}
		for task, n := range seen {
			if n != 1 {
				t.Fatalf("job %d task %d read %d times (waiting list corrupted)", j, task, n)
			}
		}
	}
	if srcA.waits == 0 || srcB.waits == 0 {
		t.Fatalf("gates never made a process wait (A=%d B=%d); regression path not exercised", srcA.waits, srcB.waits)
	}
}
