package engine

import (
	"math"
	"testing"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
)

// twoJobRig builds two independent single-data problems over one shared
// cluster/fs: job A on files /a, job B on /b.
func twoJobRig(t testing.TB, nodes, chunksEach int, seed int64) (*rig, *core.Problem, *core.Problem) {
	t.Helper()
	r := buildRig(t, nodes, chunksEach, seed, dfs.RandomPlacement{})
	if _, err := r.fs.Create("/other", float64(chunksEach)*64); err != nil {
		t.Fatal(err)
	}
	probB, err := core.SingleDataProblem(r.fs, []string{"/other"}, r.prob.ProcNode)
	if err != nil {
		t.Fatal(err)
	}
	return r, r.prob, probB
}

func TestRunJobsBothComplete(t *testing.T) {
	r, probA, probB := twoJobRig(t, 8, 40, 71)
	aA, _ := core.SingleData{}.Assign(probA)
	aB, _ := core.RankStatic{}.Assign(probB)
	results, err := RunJobs(r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: NewListSource(aA.Lists), Strategy: "opass"},
		{Problem: probB, Source: NewListSource(aB.Lists), Strategy: "rank"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if res.TasksRun != 40 {
			t.Fatalf("job %d ran %d tasks", i, res.TasksRun)
		}
	}
}

func TestInterferenceSlowsOpass(t *testing.T) {
	// The §V-C1 point: a co-running locality-oblivious job contends for the
	// same disks, so Opass's job runs slower than it would alone — but
	// still faster than the baseline job sharing the cluster with it.
	rAlone := buildRig(t, 8, 40, 72, dfs.RandomPlacement{})
	aAlone, _ := core.SingleData{}.Assign(rAlone.prob)
	alone, err := RunAssignment(rAlone.opts("opass"), aAlone)
	if err != nil {
		t.Fatal(err)
	}

	r, probA, probB := twoJobRig(t, 8, 40, 72)
	aA, _ := core.SingleData{}.Assign(probA)
	aB, _ := core.RankStatic{}.Assign(probB)
	results, err := RunJobs(r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: NewListSource(aA.Lists), Strategy: "opass"},
		{Problem: probB, Source: NewListSource(aB.Lists), Strategy: "rank-bg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shared := results[0]
	if shared.Makespan <= alone.Makespan {
		t.Fatalf("co-running job did not slow opass: %v vs alone %v",
			shared.Makespan, alone.Makespan)
	}
	// With max-min fair sharing the two jobs' last flows converge, so
	// makespans can tie; the robust signal is per-read time: Opass's reads
	// (local, one stream per disk plus interference) stay well below the
	// oblivious neighbor's contended remote reads.
	meanOf := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mo, mb := meanOf(shared.IOTimes()), meanOf(results[1].IOTimes()); mo >= mb {
		t.Fatalf("opass mean I/O %v not below background job's %v", mo, mb)
	}
}

func TestRunJobsStaggeredArrival(t *testing.T) {
	r, probA, probB := twoJobRig(t, 8, 16, 73)
	aA, _ := core.SingleData{}.Assign(probA)
	aB, _ := core.SingleData{}.Assign(probB)
	results, err := RunJobs(r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: NewListSource(aA.Lists), Strategy: "first"},
		{Problem: probB, Source: NewListSource(aB.Lists), Strategy: "late", StartAt: 5.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The late job's first read cannot start before t=5.
	for _, rec := range results[1].Records {
		if rec.Start < 5.0-1e-9 {
			t.Fatalf("late job read started at %v", rec.Start)
		}
	}
	if results[1].TasksRun != 16 {
		t.Fatalf("late job ran %d tasks", results[1].TasksRun)
	}
}

func TestRunJobsMatchesSingleRun(t *testing.T) {
	// One job through RunJobs behaves like Run.
	r1 := buildRig(t, 8, 24, 74, dfs.RandomPlacement{})
	a1, _ := core.SingleData{}.Assign(r1.prob)
	single, err := RunAssignment(r1.opts("x"), a1)
	if err != nil {
		t.Fatal(err)
	}
	r2 := buildRig(t, 8, 24, 74, dfs.RandomPlacement{})
	a2, _ := core.SingleData{}.Assign(r2.prob)
	multi, err := RunJobs(r2.topo, r2.fs, []JobSpec{
		{Problem: r2.prob, Source: NewListSource(a2.Lists), Strategy: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.Makespan-multi[0].Makespan) > 1e-9 {
		t.Fatalf("makespans differ: %v vs %v", single.Makespan, multi[0].Makespan)
	}
}

func TestRunJobsWithDynamicSources(t *testing.T) {
	r, probA, probB := twoJobRig(t, 8, 24, 75)
	aA, _ := core.SingleData{}.Assign(probA)
	schedA, _ := core.NewDynamicScheduler(probA, aA)
	results, err := RunJobs(r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: schedA, Strategy: "opass-dyn"},
		{Problem: probB, Source: core.NewRandomDispatcher(probB, 1), Strategy: "random-dyn"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].TasksRun != 24 || results[1].TasksRun != 24 {
		t.Fatalf("task counts: %d, %d", results[0].TasksRun, results[1].TasksRun)
	}
}

func TestRunJobsValidation(t *testing.T) {
	r := buildRig(t, 4, 8, 76, dfs.RandomPlacement{})
	if _, err := RunJobs(nil, r.fs, nil); err == nil {
		t.Fatal("nil topo must fail")
	}
	if _, err := RunJobs(r.topo, r.fs, nil); err == nil {
		t.Fatal("no jobs must fail")
	}
	if _, err := RunJobs(r.topo, r.fs, []JobSpec{{}}); err == nil {
		t.Fatal("empty job must fail")
	}
	a, _ := core.RankStatic{}.Assign(r.prob)
	if _, err := RunJobs(r.topo, r.fs, []JobSpec{
		{Problem: r.prob, Source: NewListSource(a.Lists), StartAt: -1},
	}); err == nil {
		t.Fatal("negative start must fail")
	}
}

func TestMultipleProcsPerNode(t *testing.T) {
	// Marmot has dual-core nodes; run two processes per node. The engine
	// must handle repeated ProcNode entries: both procs contend for their
	// shared disk but read locally.
	topo := cluster.New(4, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: 77, Placement: dfs.RoundRobinPlacement{}})
	if _, err := fs.Create("/d", 16*64); err != nil {
		t.Fatal(err)
	}
	procNode := []int{0, 0, 1, 1, 2, 2, 3, 3} // two procs per node
	prob, err := core.SingleDataProblem(fs, []string{"/d"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.SingleData{}.Assign(prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAssignment(Options{Topo: topo, FS: fs, Problem: prob, Strategy: "2-per-node"}, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 16 {
		t.Fatalf("ran %d tasks", res.TasksRun)
	}
	// Round-robin placement + 2 co-located procs: full locality achievable.
	if res.LocalFraction() != 1.0 {
		t.Fatalf("locality %v", res.LocalFraction())
	}
	// Each proc's 2 local reads share the disk with its sibling: makespan
	// at least 2 uncontended local reads, below 4 fully-serial ones + slack.
	lo := 2 * topo.UncontendedLocalRead(64)
	hi := 4*topo.UncontendedLocalRead(64) + 1
	if res.Makespan < lo-1e-9 || res.Makespan > hi {
		t.Fatalf("makespan %v outside [%v,%v]", res.Makespan, lo, hi)
	}
}

func TestLocalReadsCounter(t *testing.T) {
	r := buildRig(t, 8, 40, 78, dfs.RoundRobinPlacement{})
	a, _ := core.SingleData{}.Assign(r.prob)
	res, err := RunAssignment(r.opts("opass"), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalReads() != 40 {
		t.Fatalf("local reads = %d, want 40 (all local)", res.LocalReads())
	}
}

func TestRunAssignmentRejectsInvalidAssignment(t *testing.T) {
	r := buildRig(t, 4, 8, 79, dfs.RandomPlacement{})
	bad := &core.Assignment{Owner: []int{0}, Lists: make([][]int, 4)}
	if _, err := RunAssignment(r.opts("bad"), bad); err == nil {
		t.Fatal("invalid assignment must be rejected")
	}
	// Default strategy label applied when empty.
	a, _ := core.RankStatic{}.Assign(r.prob)
	opts := r.opts("")
	res, err := RunAssignment(opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "static" {
		t.Fatalf("default strategy label %q", res.Strategy)
	}
}

func TestRunJobsDelaySource(t *testing.T) {
	// A PollingSource (delay dispatcher) inside a concurrent run exercises
	// the multi-job waiting machinery.
	r, probA, probB := twoJobRig(t, 8, 24, 80)
	results, err := RunJobs(r.topo, r.fs, []JobSpec{
		{Problem: probA, Source: delaySource{probA}, Strategy: "greedy-local"},
		{Problem: probB, Source: core.NewRandomDispatcher(probB, 1), Strategy: "random"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].TasksRun != 24 || results[1].TasksRun != 24 {
		t.Fatalf("tasks: %d, %d", results[0].TasksRun, results[1].TasksRun)
	}
}

// delaySource is a minimal PollingSource: serves the lowest remaining task
// co-located with the asker, waiting one poll when none is (then yielding
// anything).
type delaySource struct{ p *core.Problem }

var delayState = map[*core.Problem]*delayRT{}

type delayRT struct {
	remaining map[int]bool
	skipped   map[int]bool
}

func (d delaySource) rt() *delayRT {
	rt, ok := delayState[d.p]
	if !ok {
		rt = &delayRT{remaining: map[int]bool{}, skipped: map[int]bool{}}
		for i := range d.p.Tasks {
			rt.remaining[i] = true
		}
		delayState[d.p] = rt
	}
	return rt
}

func (d delaySource) Next(proc int) (int, bool) {
	t, st := d.Poll(proc, true)
	return t, st == PollTask
}

func (d delaySource) Poll(proc int, stalled bool) (int, PollState) {
	rt := d.rt()
	if len(rt.remaining) == 0 {
		return 0, PollDone
	}
	best := -1
	for t := range rt.remaining {
		if d.p.CoLocatedMB(proc, t) > 0 && (best == -1 || t < best) {
			best = t
		}
	}
	if best == -1 {
		if !stalled && !rt.skipped[proc] {
			rt.skipped[proc] = true
			return 0, PollWait
		}
		for t := range rt.remaining {
			if best == -1 || t < best {
				best = t
			}
		}
	}
	delete(rt.remaining, best)
	return best, PollTask
}
