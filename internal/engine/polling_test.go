package engine

import (
	"testing"

	"opass/internal/dfs"
)

// gateSource hands tasks out strictly in ID order, and only to the process
// whose rank matches task%procs; every other asker is told to wait (unless
// the cluster is stalled, when the gate yields to whoever polls). Because
// reads complete at staggered times, several processes sit in the engine's
// waiting list at once and are re-waited across many retryWaiting passes —
// the access pattern that corrupted the list when it aliased its own
// truncated backing array.
type gateSource struct {
	next, total, procs int
	waits              int
}

// Next satisfies TaskSource; Run then upgrades the source to its
// PollingSource interface and uses Poll.
func (s *gateSource) Next(proc int) (int, bool) {
	t, st := s.Poll(proc, true)
	return t, st == PollTask
}

func (s *gateSource) Poll(proc int, stalled bool) (int, PollState) {
	if s.next >= s.total {
		return 0, PollDone
	}
	if stalled || s.next%s.procs == proc {
		t := s.next
		s.next++
		return t, PollTask
	}
	s.waits++
	return 0, PollWait
}

func TestRetryWaitingReWaitsWithoutCorruption(t *testing.T) {
	const nodes, tasks = 8, 64
	r := buildRig(t, nodes, tasks, 7, dfs.RandomPlacement{})
	src := &gateSource{total: tasks, procs: nodes}
	res, err := Run(r.opts("gate"), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != tasks {
		t.Fatalf("tasks run = %d, want %d", res.TasksRun, tasks)
	}
	seen := make([]int, tasks)
	for _, rec := range res.Records {
		seen[rec.Task]++
	}
	for task, n := range seen {
		if n != 1 {
			t.Fatalf("task %d read %d times (waiting list corrupted)", task, n)
		}
	}
	if src.waits == 0 {
		t.Fatal("gate never made a process wait; the regression path was not exercised")
	}
	for proc, fin := range res.ProcFinish {
		if fin <= 0 {
			t.Fatalf("process %d never finished", proc)
		}
	}
}

// starveSource forces every process except rank 0 to wait while any task
// remains, so the whole waiting list is rebuilt on every poll round — the
// maximal-aliasing case for retryWaiting's truncate-then-append loop.
type starveSource struct {
	next, total int
	waits       int
}

func (s *starveSource) Next(proc int) (int, bool) {
	t, st := s.Poll(proc, true)
	return t, st == PollTask
}

func (s *starveSource) Poll(proc int, stalled bool) (int, PollState) {
	if s.next >= s.total {
		return 0, PollDone
	}
	if proc != 0 && !stalled {
		s.waits++
		return 0, PollWait
	}
	t := s.next
	s.next++
	return t, PollTask
}

func TestRetryWaitingFullListReWait(t *testing.T) {
	const nodes, tasks = 6, 18
	r := buildRig(t, nodes, tasks, 11, dfs.RandomPlacement{})
	src := &starveSource{total: tasks}
	res, err := Run(r.opts("starve"), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != tasks {
		t.Fatalf("tasks run = %d, want %d", res.TasksRun, tasks)
	}
	if src.waits < nodes-1 {
		t.Fatalf("only %d waits recorded; starvation path not exercised", src.waits)
	}
	if len(res.Records) != tasks {
		t.Fatalf("%d read records, want %d", len(res.Records), tasks)
	}
}
