package engine

import (
	"fmt"
	"sort"

	"opass/internal/core"
)

// This file implements degraded-mode replanning: when the placement truth
// changes mid-run (a DataNode crash drops replicas, re-replication restores
// them, a node recovers or slows down), the engine re-runs the Opass
// matcher over the not-yet-started backlog against the surviving placement
// and splices the result into the running source. Per-read failover alone
// keeps the job correct but lets locality decay — every read that lost its
// co-located copy goes to a random surviving holder; re-matching restores
// the paper's balanced, local access pattern for the work that has not
// begun (§III–IV applied online).

// ReplannableSource is a TaskSource whose undispatched backlog can be
// inspected and replaced mid-run — the seam replanning needs. ListSource
// implements it; master/worker sources hold no per-process backlog and are
// left untouched by replanning.
type ReplannableSource interface {
	TaskSource
	// Pending returns each process's not-yet-dispatched tasks in dispatch
	// order. The caller owns the returned slices.
	Pending() [][]int
	// Splice replaces every process's undispatched backlog. len(lists)
	// must equal the process count; in-flight tasks are unaffected.
	Splice(lists [][]int)
}

// Pending implements ReplannableSource.
func (s *ListSource) Pending() [][]int {
	out := make([][]int, len(s.lists))
	for i := range s.lists {
		out[i] = append([]int(nil), s.lists[i][s.pos[i]:]...)
	}
	return out
}

// Splice implements ReplannableSource.
func (s *ListSource) Splice(lists [][]int) {
	if len(lists) != len(s.lists) {
		panic(fmt.Sprintf("engine: splice %d lists into a %d-process source", len(lists), len(s.lists)))
	}
	for i := range lists {
		s.lists[i] = append([]int(nil), lists[i]...)
		s.pos[i] = 0
	}
}

// replanPending re-matches the backlog of src against the current placement
// in p.FS and splices the result back. Processes that already terminated
// receive nothing; the rest are weighted by weight(node) — fractions shrink
// a process's share (a degraded disk, or a storage-dead node whose reads
// all go remote), zero excludes it entirely — mirroring the §IV-D
// load-capacity skew. It reports whether a new backlog was spliced.
func replanPending(p *core.Problem, src ReplannableSource, finished []bool, weight func(node int) float64, seed int64) (bool, error) {
	pendingLists := src.Pending()
	if len(pendingLists) != len(finished) {
		return false, fmt.Errorf("engine: replan: source reports %d processes, problem has %d", len(pendingLists), len(finished))
	}
	var taskIDs []int
	for _, list := range pendingLists {
		taskIDs = append(taskIDs, list...)
	}
	if len(taskIDs) == 0 {
		return false, nil
	}
	sort.Ints(taskIDs)
	var alive []int
	for proc := range pendingLists {
		if !finished[proc] {
			alive = append(alive, proc)
		}
	}
	if len(alive) == 0 {
		// A backlog with every process terminated cannot happen with list
		// sources (a process only terminates once its list drains); leave
		// the backlog untouched rather than strand it silently.
		return false, nil
	}

	// Build a dense sub-problem over the backlog and the live processes.
	sub := &core.Problem{
		FS:       p.FS,
		ProcNode: make([]int, len(alive)),
		Tasks:    make([]core.Task, len(taskIDs)),
	}
	weights := make([]float64, len(alive))
	uniform := true
	var sum float64
	for i, proc := range alive {
		sub.ProcNode[i] = p.ProcNode[proc]
		weights[i] = weight(p.ProcNode[proc])
		sum += weights[i]
		if weights[i] != weights[0] {
			uniform = false
		}
	}
	multi := false
	for i, id := range taskIDs {
		sub.Tasks[i] = core.Task{ID: i, Inputs: p.Tasks[id].Inputs}
		if len(p.Tasks[id].Inputs) > 1 {
			multi = true
		}
	}

	var (
		a   *core.Assignment
		err error
	)
	if multi {
		a, err = core.MultiData{Seed: seed}.Assign(sub)
	} else {
		sd := core.SingleData{Seed: seed}
		// Skewed shares only when they differ and are usable; all-equal (or
		// degenerate all-zero) weights fall back to the uniform quota.
		if !uniform && sum > 0 {
			sd.Weights = weights
		}
		a, err = sd.Assign(sub)
	}
	if err != nil {
		return false, fmt.Errorf("engine: replan: %w", err)
	}

	lists := make([][]int, len(pendingLists))
	for i, proc := range alive {
		mapped := make([]int, len(a.Lists[i]))
		for k, st := range a.Lists[i] {
			mapped[k] = taskIDs[st]
		}
		lists[proc] = mapped
	}
	src.Splice(lists)
	return true, nil
}

// replanPendingDelta is the O(delta) variant of replanPending: instead of
// re-matching the whole backlog it re-matches only the pending tasks the
// placement event could have moved, and leaves everything else queued where
// it was. A pending task is affected when
//
//   - an input chunk's placement epoch changed since stamp (a permanent
//     crash dropped its replica from the namenode, repair re-created one,
//     the balancer moved one), or
//   - an input chunk currently has a replica on eventNode (a transient
//     outage or degradation changed how attractive that copy is without
//     touching metadata), or
//   - the task is queued on a process hosted on eventNode (the process's
//     load capacity changed, so its backlog share must be revisited), or
//   - the task is displaced: it sits at the tail of a queue holding more
//     than its process's §IV-D share of the backlog (accumulated progress
//     imbalance a full re-match would have leveled as a side effect).
//
// Affected tasks are re-matched against the live processes with
// slack-weighted quotas: each process's share of the re-matched data is
// what its §IV-D load-capacity share of the TOTAL backlog says it deserves,
// minus the data it already keeps — so survivors that kept a full queue
// absorb little, drained processes absorb much, and the spliced result
// lands close to the full re-match's balance at a fraction of the cost.
// The re-matched tasks are appended after each process's kept backlog.
//
// It reports whether a splice happened and how many tasks were re-matched.
func replanPendingDelta(p *core.Problem, src ReplannableSource, finished []bool, weight func(node int) float64, seed int64, eventNode int, stamp core.PlanStamp) (bool, int, error) {
	pendingLists := src.Pending()
	if len(pendingLists) != len(finished) {
		return false, 0, fmt.Errorf("engine: replan: source reports %d processes, problem has %d", len(pendingLists), len(finished))
	}
	affected := func(id, proc int) bool {
		if p.ProcNode[proc] == eventNode {
			return true
		}
		if stamp.Dirty(p, id) {
			return true
		}
		for _, in := range p.Tasks[id].Inputs {
			if p.FS.Chunk(in.Chunk).HostedOn(eventNode) {
				return true
			}
		}
		// Displaced: the task cannot be read locally where it is queued —
		// the prior matching left it stranded remote (quota pressure, or an
		// earlier fault took its co-located copy). Any event frees or
		// shifts quota, so give the matcher another chance at a local home;
		// a full re-match would retry these as a side effect.
		return p.CoLocatedMB(proc, id) == 0
	}

	kept := make([][]int, len(pendingLists))
	keptMB := make([]float64, len(pendingLists))
	var taskIDs []int
	var totalMB float64
	for proc, list := range pendingLists {
		for _, id := range list {
			totalMB += p.Tasks[id].SizeMB()
			if affected(id, proc) {
				taskIDs = append(taskIDs, id)
			} else {
				kept[proc] = append(kept[proc], id)
				keptMB[proc] += p.Tasks[id].SizeMB()
			}
		}
	}
	if len(taskIDs) == 0 {
		return false, 0, nil
	}
	var alive []int
	for proc := range pendingLists {
		if !finished[proc] {
			alive = append(alive, proc)
		}
	}
	if len(alive) == 0 {
		return false, 0, nil
	}

	raw := make([]float64, len(alive))
	var rawSum float64
	for i, proc := range alive {
		raw[i] = weight(p.ProcNode[proc])
		rawSum += raw[i]
	}

	// Displaced tasks: a fault event is also the moment accumulated
	// progress imbalance surfaces — processes that fell behind hold
	// backlogs well past their §IV-D share while early finishers sit near
	// empty, and a full re-match would have leveled that as a side effect.
	// Shed from the tail of each kept queue any load beyond the process's
	// share of the whole backlog (keeping a one-task tolerance so balanced
	// queues shed nothing) and let the re-match redistribute it together
	// with the event-affected tasks.
	if rawSum > 0 {
		for i, proc := range alive {
			share := raw[i] / rawSum * totalMB
			for n := len(kept[proc]); n > 0; n-- {
				id := kept[proc][n-1]
				sz := p.Tasks[id].SizeMB()
				if keptMB[proc]-share <= sz {
					break
				}
				kept[proc] = kept[proc][:n-1]
				keptMB[proc] -= sz
				taskIDs = append(taskIDs, id)
			}
		}
	}
	sort.Ints(taskIDs)

	sub := &core.Problem{
		FS:       p.FS,
		ProcNode: make([]int, len(alive)),
		Tasks:    make([]core.Task, len(taskIDs)),
	}
	multi := false
	for i, id := range taskIDs {
		sub.Tasks[i] = core.Task{ID: i, Inputs: p.Tasks[id].Inputs}
		if len(p.Tasks[id].Inputs) > 1 {
			multi = true
		}
	}

	// Slack quotas: desired share of the whole backlog minus the data each
	// process keeps. Degenerate slacks (every process already at or over its
	// share — possible when the affected set is tiny) fall back to the raw
	// load-capacity weights of replanPending.
	for i, proc := range alive {
		sub.ProcNode[i] = p.ProcNode[proc]
	}
	slack := make([]float64, len(alive))
	var slackSum float64
	uniform := true
	if rawSum > 0 {
		for i, proc := range alive {
			slack[i] = raw[i]/rawSum*totalMB - keptMB[proc]
			if slack[i] < 0 {
				slack[i] = 0
			}
			slackSum += slack[i]
		}
	}
	for i := range raw {
		if raw[i] != raw[0] {
			uniform = false
		}
	}

	var (
		a   *core.Assignment
		err error
	)
	if multi {
		a, err = core.MultiData{Seed: seed}.Assign(sub)
	} else {
		sd := core.SingleData{Seed: seed}
		switch {
		case slackSum > 0:
			sd.Weights = slack
		case !uniform && rawSum > 0:
			sd.Weights = raw
		}
		a, err = sd.Assign(sub)
	}
	if err != nil {
		return false, 0, fmt.Errorf("engine: replan: %w", err)
	}

	lists := kept
	for i, proc := range alive {
		for _, st := range a.Lists[i] {
			lists[proc] = append(lists[proc], taskIDs[st])
		}
	}
	src.Splice(lists)
	return true, len(taskIDs), nil
}

// ReplanBacklog re-matches src's entire backlog against the current
// placement in p.FS — the whole-backlog replan the engine uses when no
// event attribution is available. Exported for embedders driving their own
// event loops and for the plannerbench replan series; RunContext calls the
// same code through its fault hooks.
func ReplanBacklog(p *core.Problem, src ReplannableSource, finished []bool, weight func(node int) float64, seed int64) (bool, error) {
	return replanPending(p, src, finished, weight, seed)
}

// ReplanBacklogDelta is the O(delta) counterpart of ReplanBacklog: it
// re-matches only the pending tasks the placement event at eventNode could
// have moved (epoch-dirty since stamp, a replica on eventNode, or queued on
// one of its processes) and reports how many tasks that was. stamp must
// have been captured by core.StampProblem before the event mutated p.FS.
func ReplanBacklogDelta(p *core.Problem, src ReplannableSource, finished []bool, weight func(node int) float64, seed int64, eventNode int, stamp core.PlanStamp) (spliced bool, rematched int, err error) {
	return replanPendingDelta(p, src, finished, weight, seed, eventNode, stamp)
}
