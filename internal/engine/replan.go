package engine

import (
	"fmt"
	"sort"

	"opass/internal/core"
)

// This file implements degraded-mode replanning: when the placement truth
// changes mid-run (a DataNode crash drops replicas, re-replication restores
// them, a node recovers or slows down), the engine re-runs the Opass
// matcher over the not-yet-started backlog against the surviving placement
// and splices the result into the running source. Per-read failover alone
// keeps the job correct but lets locality decay — every read that lost its
// co-located copy goes to a random surviving holder; re-matching restores
// the paper's balanced, local access pattern for the work that has not
// begun (§III–IV applied online).

// ReplannableSource is a TaskSource whose undispatched backlog can be
// inspected and replaced mid-run — the seam replanning needs. ListSource
// implements it; master/worker sources hold no per-process backlog and are
// left untouched by replanning.
type ReplannableSource interface {
	TaskSource
	// Pending returns each process's not-yet-dispatched tasks in dispatch
	// order. The caller owns the returned slices.
	Pending() [][]int
	// Splice replaces every process's undispatched backlog. len(lists)
	// must equal the process count; in-flight tasks are unaffected.
	Splice(lists [][]int)
}

// Pending implements ReplannableSource.
func (s *ListSource) Pending() [][]int {
	out := make([][]int, len(s.lists))
	for i := range s.lists {
		out[i] = append([]int(nil), s.lists[i][s.pos[i]:]...)
	}
	return out
}

// Splice implements ReplannableSource.
func (s *ListSource) Splice(lists [][]int) {
	if len(lists) != len(s.lists) {
		panic(fmt.Sprintf("engine: splice %d lists into a %d-process source", len(lists), len(s.lists)))
	}
	for i := range lists {
		s.lists[i] = append([]int(nil), lists[i]...)
		s.pos[i] = 0
	}
}

// replanPending re-matches the backlog of src against the current placement
// in p.FS and splices the result back. Processes that already terminated
// receive nothing; the rest are weighted by weight(node) — fractions shrink
// a process's share (a degraded disk, or a storage-dead node whose reads
// all go remote), zero excludes it entirely — mirroring the §IV-D
// load-capacity skew. It reports whether a new backlog was spliced.
func replanPending(p *core.Problem, src ReplannableSource, finished []bool, weight func(node int) float64, seed int64) (bool, error) {
	pendingLists := src.Pending()
	if len(pendingLists) != len(finished) {
		return false, fmt.Errorf("engine: replan: source reports %d processes, problem has %d", len(pendingLists), len(finished))
	}
	var taskIDs []int
	for _, list := range pendingLists {
		taskIDs = append(taskIDs, list...)
	}
	if len(taskIDs) == 0 {
		return false, nil
	}
	sort.Ints(taskIDs)
	var alive []int
	for proc := range pendingLists {
		if !finished[proc] {
			alive = append(alive, proc)
		}
	}
	if len(alive) == 0 {
		// A backlog with every process terminated cannot happen with list
		// sources (a process only terminates once its list drains); leave
		// the backlog untouched rather than strand it silently.
		return false, nil
	}

	// Build a dense sub-problem over the backlog and the live processes.
	sub := &core.Problem{
		FS:       p.FS,
		ProcNode: make([]int, len(alive)),
		Tasks:    make([]core.Task, len(taskIDs)),
	}
	weights := make([]float64, len(alive))
	uniform := true
	var sum float64
	for i, proc := range alive {
		sub.ProcNode[i] = p.ProcNode[proc]
		weights[i] = weight(p.ProcNode[proc])
		sum += weights[i]
		if weights[i] != weights[0] {
			uniform = false
		}
	}
	multi := false
	for i, id := range taskIDs {
		sub.Tasks[i] = core.Task{ID: i, Inputs: p.Tasks[id].Inputs}
		if len(p.Tasks[id].Inputs) > 1 {
			multi = true
		}
	}

	var (
		a   *core.Assignment
		err error
	)
	if multi {
		a, err = core.MultiData{Seed: seed}.Assign(sub)
	} else {
		sd := core.SingleData{Seed: seed}
		// Skewed shares only when they differ and are usable; all-equal (or
		// degenerate all-zero) weights fall back to the uniform quota.
		if !uniform && sum > 0 {
			sd.Weights = weights
		}
		a, err = sd.Assign(sub)
	}
	if err != nil {
		return false, fmt.Errorf("engine: replan: %w", err)
	}

	lists := make([][]int, len(pendingLists))
	for i, proc := range alive {
		mapped := make([]int, len(a.Lists[i]))
		for k, st := range a.Lists[i] {
			mapped[k] = taskIDs[st]
		}
		lists[proc] = mapped
	}
	src.Splice(lists)
	return true, nil
}
