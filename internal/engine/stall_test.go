package engine

import (
	"testing"

	"opass/internal/dfs"
)

// patientSource models a delay-scheduling master at its most patient: it
// asks every idle worker to wait unless the engine reports the cluster
// stalled, in which case it serves the next task in ID order. Progress
// therefore depends entirely on the engine's stalled detection: if pending
// failure timers count as active work, no poll is ever marked stalled and
// every worker parks until the timer fires.
type patientSource struct {
	next, total int
	waits       int
}

func (s *patientSource) Next(proc int) (int, bool) {
	t, st := s.Poll(proc, true)
	return t, st == PollTask
}

func (s *patientSource) Poll(proc int, stalled bool) (int, PollState) {
	if s.next >= s.total {
		return 0, PollDone
	}
	if !stalled {
		s.waits++
		return 0, PollWait
	}
	t := s.next
	s.next++
	return t, PollTask
}

// TestStalledDetectionIgnoresFailureTimers is the regression test for the
// engine counting scheduled kindFailure timers as active work. With a
// far-future DataNode crash on the books, net.Active() never reached zero,
// so a PollingSource answering PollWait parked every worker until the crash
// timer fired — inflating the makespan to the failure time. The fix tracks
// failure timers separately; the job must finish long before the crash.
func TestStalledDetectionIgnoresFailureTimers(t *testing.T) {
	const nodes, tasks = 8, 24
	const failAt = 500.0
	r := buildRig(t, nodes, tasks, 3, dfs.RandomPlacement{})
	src := &patientSource{total: tasks}
	opts := r.opts("patient")
	opts.Failures = []NodeFailure{{Node: 0, At: failAt}}
	res, err := Run(opts, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != tasks {
		t.Fatalf("tasks run = %d, want %d", res.TasksRun, tasks)
	}
	if src.waits == 0 {
		t.Fatal("source never answered PollWait; the waiting path was not exercised")
	}
	// 24 sequential 64 MB reads finish in well under a minute of virtual
	// time; only the stalled-detection bug can push the makespan out to the
	// crash timer.
	if res.Makespan >= failAt {
		t.Fatalf("makespan %.1fs reached the failure time %.0fs: workers were parked on the crash timer", res.Makespan, failAt)
	}
}
