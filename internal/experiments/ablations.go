package experiments

import (
	"fmt"
	"strings"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/workload"
)

// RedistributionResult quantifies the MRAP-style replica migration
// extension: one-time migration cost vs per-run remote traffic avoided.
type RedistributionResult struct {
	Nodes int
	// Before/After are Opass runs on the same skewed layout, without and
	// with the migration applied.
	Before StrategyResult
	After  StrategyResult
	// MovedMB is the migration traffic; BreakEvenRuns = MovedMB / remote
	// MB per run.
	MovedMB       float64
	Migrations    int
	BreakEvenRuns float64
}

// Redistribution runs the §V-C1 "data reconstruction/redistribution"
// extension on a pathologically skewed layout (everything clustered on a
// quarter of the nodes).
func Redistribution(cfg Config) (*RedistributionResult, error) {
	nodes := cfg.scale(64)
	build := func() (*workload.Rig, *core.Assignment, error) {
		rig, err := workload.SingleSpec{
			Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed,
			Placement: dfs.ClusteredPlacement{},
		}.Build()
		if err != nil {
			return nil, nil, err
		}
		a, err := (core.SingleData{Seed: cfg.Seed}).Assign(rig.Prob)
		if err != nil {
			return nil, nil, err
		}
		return rig, a, nil
	}
	rigBefore, aBefore, err := build()
	if err != nil {
		return nil, err
	}
	resBefore, err := runAssignment(rigBefore, aBefore, "opass-skewed")
	if err != nil {
		return nil, err
	}
	rigAfter, aAfter, err := build()
	if err != nil {
		return nil, err
	}
	plan, err := core.PlanRedistribution(rigAfter.Prob, aAfter)
	if err != nil {
		return nil, err
	}
	if err := plan.Apply(rigAfter.Prob); err != nil {
		return nil, err
	}
	resAfter, err := runAssignment(rigAfter, aAfter, "opass-redistributed")
	if err != nil {
		return nil, err
	}
	return &RedistributionResult{
		Nodes:         nodes,
		Before:        strategyResult(nodes, resBefore),
		After:         strategyResult(nodes, resAfter),
		MovedMB:       plan.MovedMB,
		Migrations:    len(plan.Migrations),
		BreakEvenRuns: plan.BreakEvenRuns,
	}, nil
}

// Render prints the redistribution study.
func (r *RedistributionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — replica redistribution on clustered placement (%d nodes)\n", r.Nodes)
	fmt.Fprintf(&b, "  before: local %5.1f%%  avg I/O %6.3fs  makespan %6.1fs  jain %.3f\n",
		100*r.Before.Local, r.Before.IO.Mean, r.Before.Makespan, r.Before.Fairness)
	fmt.Fprintf(&b, "  after : local %5.1f%%  avg I/O %6.3fs  makespan %6.1fs  jain %.3f\n",
		100*r.After.Local, r.After.IO.Mean, r.After.Makespan, r.After.Fairness)
	fmt.Fprintf(&b, "  migrated %d replicas (%.0f MB), break-even after %.1f runs\n",
		r.Migrations, r.MovedMB, r.BreakEvenRuns)
	return b.String()
}

// ReplicationRow is one replication-factor sample.
type ReplicationRow struct {
	Replication int
	// PlannedLocality is Opass's achievable locality; FullMatching reports
	// whether every task found a co-located owner.
	PlannedLocality float64
	BaselineLocal   float64
	OpassMakespan   float64
	BaseMakespan    float64
}

// ReplicationSweep studies how the replication factor shapes what Opass
// can achieve: with r=1 a full matching rarely exists; HDFS's default r=3
// already supports one almost always — the structural reason §IV-A's graph
// has enough edges.
func ReplicationSweep(cfg Config, factors []int) ([]ReplicationRow, error) {
	if len(factors) == 0 {
		factors = []int{1, 2, 3, 5}
	}
	nodes := cfg.scale(64)
	var rows []ReplicationRow
	for _, r := range factors {
		build := func() (*workload.Rig, error) {
			topo := cluster.New(nodes, cluster.Marmot())
			fs := dfs.New(topo, dfs.Config{Seed: cfg.Seed, Replication: r})
			if _, err := fs.Create("/dataset", float64(nodes*10*64)); err != nil {
				return nil, err
			}
			procNode := make([]int, nodes)
			for i := range procNode {
				procNode[i] = i
			}
			prob, err := core.SingleDataProblem(fs, []string{"/dataset"}, procNode)
			if err != nil {
				return nil, err
			}
			return &workload.Rig{Topo: topo, FS: fs, Prob: prob}, nil
		}
		rigOp, err := build()
		if err != nil {
			return nil, err
		}
		aOp, err := (core.SingleData{Seed: cfg.Seed}).Assign(rigOp.Prob)
		if err != nil {
			return nil, err
		}
		resOp, err := runAssignment(rigOp, aOp, "opass")
		if err != nil {
			return nil, err
		}
		rigBase, err := build()
		if err != nil {
			return nil, err
		}
		aBase, err := (core.RankStatic{}).Assign(rigBase.Prob)
		if err != nil {
			return nil, err
		}
		resBase, err := runAssignment(rigBase, aBase, "rank")
		if err != nil {
			return nil, err
		}
		rows = append(rows, ReplicationRow{
			Replication:     r,
			PlannedLocality: aOp.LocalityFraction(),
			BaselineLocal:   resBase.LocalFraction(),
			OpassMakespan:   resOp.Makespan,
			BaseMakespan:    resBase.Makespan,
		})
	}
	return rows, nil
}

// RenderReplication prints the replication sweep.
func RenderReplication(rows []ReplicationRow) string {
	var b strings.Builder
	b.WriteString("Ablation — replication factor vs achievable locality\n")
	fmt.Fprintf(&b, "%3s %14s %14s %14s %14s\n", "r", "opass locality", "rank locality", "opass makespan", "rank makespan")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d %13.1f%% %13.1f%% %13.1fs %13.1fs\n",
			r.Replication, 100*r.PlannedLocality, 100*r.BaselineLocal, r.OpassMakespan, r.BaseMakespan)
	}
	return b.String()
}

// SensitivityRow is one seek-penalty sample.
type SensitivityRow struct {
	Alpha        float64
	BaselineMean float64
	BaselineMax  float64
	OpassMean    float64
	Improvement  float64
}

// SeekPenaltySensitivity sweeps the disk contention model's alpha and
// reports how the headline improvement responds — the calibration
// sensitivity study backing the EXPERIMENTS.md discussion of why alpha=0.3
// was chosen.
func SeekPenaltySensitivity(cfg Config, alphas []float64) ([]SensitivityRow, error) {
	if len(alphas) == 0 {
		alphas = []float64{0, 0.15, 0.3, 0.45, 0.6}
	}
	nodes := cfg.scale(64)
	var rows []SensitivityRow
	for _, alpha := range alphas {
		prof := cluster.Marmot()
		prof.DiskSeekPenalty = alpha
		run := func(as core.Assigner) (StrategyResult, error) {
			rig, err := workload.SingleSpec{
				Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed, Profile: &prof,
			}.Build()
			if err != nil {
				return StrategyResult{}, err
			}
			a, err := as.Assign(rig.Prob)
			if err != nil {
				return StrategyResult{}, err
			}
			res, err := engine.RunAssignment(engine.Options{
				Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob, Strategy: as.Name(),
			}, a)
			if err != nil {
				return StrategyResult{}, err
			}
			return strategyResult(nodes, res), nil
		}
		base, err := run(core.RankStatic{})
		if err != nil {
			return nil, err
		}
		op, err := run(core.SingleData{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		row := SensitivityRow{
			Alpha:        alpha,
			BaselineMean: base.IO.Mean,
			BaselineMax:  base.IO.Max,
			OpassMean:    op.IO.Mean,
		}
		if op.IO.Mean > 0 {
			row.Improvement = base.IO.Mean / op.IO.Mean
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSensitivity prints the seek-penalty sweep.
func RenderSensitivity(rows []SensitivityRow) string {
	var b strings.Builder
	b.WriteString("Ablation — disk seek-penalty sensitivity (baseline vs Opass avg I/O)\n")
	fmt.Fprintf(&b, "%6s %14s %14s %12s %12s\n", "alpha", "baseline mean", "baseline max", "opass mean", "improvement")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.2f %13.2fs %13.2fs %11.2fs %11.2fx\n",
			r.Alpha, r.BaselineMean, r.BaselineMax, r.OpassMean, r.Improvement)
	}
	return b.String()
}
