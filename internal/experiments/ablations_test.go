package experiments

import (
	"strings"
	"testing"
)

func TestRedistributionExperiment(t *testing.T) {
	r, err := Redistribution(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.After.Local <= r.Before.Local {
		t.Fatalf("redistribution did not improve locality: %v -> %v", r.Before.Local, r.After.Local)
	}
	if r.After.Local < 0.99 {
		t.Fatalf("post-migration locality %v, want ~1", r.After.Local)
	}
	if r.After.Makespan >= r.Before.Makespan {
		t.Fatalf("makespan not improved: %v -> %v", r.Before.Makespan, r.After.Makespan)
	}
	if r.MovedMB <= 0 || r.Migrations == 0 {
		t.Fatal("no migration recorded")
	}
	if !strings.Contains(r.Render(), "break-even") {
		t.Fatal("render missing break-even")
	}
}

func TestReplicationSweepShape(t *testing.T) {
	rows, err := ReplicationSweep(quick(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More replicas -> more locality edges -> better achievable locality.
	if rows[1].PlannedLocality <= rows[0].PlannedLocality {
		t.Fatalf("r=3 locality %v not above r=1 %v",
			rows[1].PlannedLocality, rows[0].PlannedLocality)
	}
	// At r=3 Opass should be near-full.
	if rows[1].PlannedLocality < 0.95 {
		t.Fatalf("r=3 locality %v, want >= 0.95", rows[1].PlannedLocality)
	}
	if !strings.Contains(RenderReplication(rows), "replication factor") {
		t.Fatal("render missing title")
	}
}

func TestSeekPenaltySensitivityMonotone(t *testing.T) {
	rows, err := SeekPenaltySensitivity(quick(), []float64{0, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Contention hurts the baseline more as alpha grows; Opass (all local,
	// one stream per disk) stays put, so the improvement factor grows.
	if rows[2].Improvement <= rows[0].Improvement {
		t.Fatalf("improvement not growing with alpha: %v -> %v",
			rows[0].Improvement, rows[2].Improvement)
	}
	for _, r := range rows {
		if r.OpassMean > 1.0 {
			t.Fatalf("opass mean %v should stay near the uncontended 0.87s", r.OpassMean)
		}
	}
	if !strings.Contains(RenderSensitivity(rows), "alpha") {
		t.Fatal("render missing header")
	}
}

func TestFaultToleranceExperiment(t *testing.T) {
	r, err := FaultTolerance(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Same number of tasks complete in both runs.
	if len(r.Faulty.IOTimes) < len(r.Healthy.IOTimes) {
		t.Fatalf("faulty run recorded fewer reads: %d vs %d",
			len(r.Faulty.IOTimes), len(r.Healthy.IOTimes))
	}
	// Crashes cost locality and (usually) time.
	if r.Faulty.Local >= r.Healthy.Local {
		t.Fatalf("faulty locality %v not below healthy %v", r.Faulty.Local, r.Healthy.Local)
	}
	if r.Faulty.Makespan < r.Healthy.Makespan {
		t.Fatalf("faulty makespan %v below healthy %v", r.Faulty.Makespan, r.Healthy.Makespan)
	}
	if !strings.Contains(r.Render(), "fault tolerance") {
		t.Fatal("render missing title")
	}
}

func TestRackTopologyStudy(t *testing.T) {
	r, err := RackTopology(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byKey := map[string]RackRow{}
	for _, row := range r.Rows {
		byKey[row.Placement+"/"+row.Strategy] = row
	}
	// Both placements leave the baseline with substantial cross-rack
	// traffic. Rack-aware placement concentrates replicas in two racks, so
	// a random reader's rack holds a copy *less* often than under fully
	// random placement — it trades read locality for write-path and
	// fault-domain properties. The study's point is the contrast with
	// Opass below, not a placement ranking; assert both are > 30%.
	for _, pl := range []string{"random", "rack-aware"} {
		if cr := byKey[pl+"/rank-static"].CrossRack; cr < 0.3 {
			t.Fatalf("%s baseline cross-rack %v suspiciously low", pl, cr)
		}
	}
	// Opass nearly eliminates cross-rack traffic regardless of placement.
	for _, pl := range []string{"random", "rack-aware"} {
		if cr := byKey[pl+"/opass-flow"].CrossRack; cr > 0.1 {
			t.Fatalf("%s/opass cross-rack %v, want < 10%%", pl, cr)
		}
	}
	// And is fastest in every column.
	if byKey["random/opass-flow"].Makespan >= byKey["random/rank-static"].Makespan {
		t.Fatal("opass not faster under random placement")
	}
	if !strings.Contains(r.Render(), "oversubscribed") {
		t.Fatal("render missing title")
	}
}

func TestSharedClusterStudy(t *testing.T) {
	r, err := SharedCluster(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Slowdown <= 1.0 {
		t.Fatalf("co-running job should slow Opass: slowdown %v", r.Slowdown)
	}
	// Opass's own requests remain local — HDFS still serves them from the
	// planned replicas even under interference.
	if r.Shared.Local < 0.95 {
		t.Fatalf("shared-cluster locality %v dropped", r.Shared.Local)
	}
	// And its per-read times stay below the oblivious neighbor's.
	if r.Shared.IO.Mean >= r.Background.IO.Mean {
		t.Fatalf("opass mean I/O %v not below background %v", r.Shared.IO.Mean, r.Background.IO.Mean)
	}
	if !strings.Contains(r.Render(), "shared cluster") {
		t.Fatal("render missing title")
	}
}

func TestMarkdownReport(t *testing.T) {
	report, err := MarkdownReport(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Opass reproduction report",
		"## §III analytical models",
		"## Figure 1",
		"## Figures 7c/8c",
		"## Figures 9/10",
		"## Figure 11",
		"## Figure 12",
		"## §V-C1",
		"## Extensions beyond the paper",
		"| P(X>5), m=128 | 21.43% | 21.43% |",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestReplicateAggregates(t *testing.T) {
	r, err := Replicate(Fig7cTrace, quick(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 3 || len(r.Ratios) != 3 {
		t.Fatalf("runs = %d", len(r.Runs))
	}
	if r.RatioMean < 1.5 {
		t.Fatalf("mean improvement %v", r.RatioMean)
	}
	if r.OpassLocalMean < 0.9 {
		t.Fatalf("opass locality mean %v", r.OpassLocalMean)
	}
	// Different seeds must actually differ (baseline placement luck).
	same := true
	for _, ratio := range r.Ratios[1:] {
		if ratio != r.Ratios[0] {
			same = false
		}
	}
	if same {
		t.Fatal("all seeds produced identical ratios; replication is not varying the seed")
	}
	if !strings.Contains(r.Render(), "± ") {
		t.Fatal("render missing dispersion")
	}
	if _, err := Replicate(Fig7cTrace, quick(), 0); err == nil {
		t.Fatal("zero replications must fail")
	}
}

func TestDataSizeSweep(t *testing.T) {
	rows, err := DataSizeSweep(quick(), []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Opass stays at the uncontended local read for any dataset size.
		if r.Opass.IO.Mean > 0.9 {
			t.Fatalf("chunks/pp=%d: opass mean %v", r.ChunksPerProc, r.Opass.IO.Mean)
		}
		if r.Baseline.IO.Mean <= r.Opass.IO.Mean {
			t.Fatalf("chunks/pp=%d: baseline not worse", r.ChunksPerProc)
		}
	}
	// More data worsens the baseline's worst case.
	if rows[1].Baseline.IO.Max <= rows[0].Baseline.IO.Max {
		t.Fatalf("baseline max did not grow with data: %v -> %v",
			rows[0].Baseline.IO.Max, rows[1].Baseline.IO.Max)
	}
	if !strings.Contains(RenderDataSweep(rows, 16), "dataset size sweep") {
		t.Fatal("render missing title")
	}
}
