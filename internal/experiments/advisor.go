package experiments

import (
	"fmt"
	"strings"

	"opass/internal/advisor"
	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
)

// The advisor experiment quantifies ROADMAP item 2 (adaptive replication):
// a skewed, shifting workload — every round hammers one of several datasets,
// and the hotspot moves between phases — planned by the same matcher on both
// sides. The static side keeps the initial 3-way replication; the advised
// side records reads into the namenode's access accounting and lets the
// replication advisor re-point copies between rounds and mid-round (advisor
// ticks trigger backlog replans). Because the advisor funds every hot-chunk
// promotion by trimming cold datasets to MinReplicas, the advised side must
// end no larger than it started: the win is locality per stored byte, not
// locality bought with more storage.

// Tuning constants for the advisor workload shape.
const (
	// advisorDatasets is how many equally-sized datasets exist; only one is
	// hot at a time, so most of the fleet is cold inventory the advisor can
	// trim.
	advisorDatasets = 6
	// advisorPhases is how many times the hotspot moves (phase p reads
	// dataset p); advisorRounds is the job count per phase. The last round
	// of each phase is the steady state the study scores.
	advisorPhases = 3
	advisorRounds = 4
	// advisorTasksPerNode sizes each round: tasksPerNode*nodes tasks, all
	// reading the hot dataset's chunks round-robin, so every chunk is wanted
	// by more readers than it has copies under static replication.
	advisorTasksPerNode = 2
)

// AdvisorSide aggregates one side (static or advised) of the study.
type AdvisorSide struct {
	Label string `json:"label"`
	// RoundLocal is the local byte fraction of every round in run order
	// (advisorPhases * advisorRounds entries).
	RoundLocal []float64 `json:"round_local"`
	// SteadyLocal is the mean local fraction over the last round of each
	// phase — the placement each side converged to before the hotspot moved.
	SteadyLocal float64 `json:"steady_local"`
	// StoredMB is the cluster's stored megabytes after the last round.
	StoredMB float64 `json:"stored_mb"`
	// MakespanS sums the per-round makespans (total virtual time working).
	MakespanS float64 `json:"makespan_s"`
}

// AdvisorResult contrasts static 3-way replication with the advised loop
// over the same placement and task sequence.
type AdvisorResult struct {
	Nodes     int     `json:"nodes"`
	Datasets  int     `json:"datasets"`
	ChunksPer int     `json:"chunks_per_dataset"`
	Phases    int     `json:"phases"`
	Rounds    int     `json:"rounds_per_phase"`
	BudgetMB  float64 `json:"budget_mb"`

	Static  AdvisorSide `json:"static"`
	Advised AdvisorSide `json:"advised"`

	// Advisor action counts on the advised side.
	Ticks           int `json:"ticks"`
	ReplicasAdded   int `json:"replicas_added"`
	ReplicasRemoved int `json:"replicas_removed"`

	// SteadyLocalGain is Advised.SteadyLocal - Static.SteadyLocal (local
	// byte fraction, so 0.1 means ten points of locality).
	SteadyLocalGain float64 `json:"steady_local_gain"`
}

// advisorRig is one side's freshly built cluster: shared-seed placement so
// the two sides start bit-for-bit identical.
type advisorRig struct {
	topo *cluster.Topology
	fs   *dfs.FileSystem
	sets []*dfs.File
}

func buildAdvisorRig(nodes, chunksPer int, seed int64) (*advisorRig, error) {
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed})
	rig := &advisorRig{topo: topo, fs: fs}
	for d := 0; d < advisorDatasets; d++ {
		f, err := fs.Create(fmt.Sprintf("/set%d", d), float64(chunksPer)*64)
		if err != nil {
			return nil, err
		}
		rig.sets = append(rig.sets, f)
	}
	return rig, nil
}

// advisorRound builds round r of phase p: every node runs one process and
// tasksPerNode*nodes tasks read the hot dataset's chunks round-robin.
func advisorProblem(rig *advisorRig, phase int) (*core.Problem, error) {
	hot := rig.sets[phase%advisorDatasets]
	nodes := rig.topo.NumNodes()
	procs := make([]int, nodes)
	for i := range procs {
		procs[i] = i
	}
	tasks := make([]core.Task, advisorTasksPerNode*nodes)
	for t := range tasks {
		id := hot.Chunks[t%len(hot.Chunks)]
		tasks[t] = core.Task{ID: t, Inputs: []core.Input{{Chunk: id, SizeMB: rig.fs.Chunk(id).SizeMB}}}
	}
	p := &core.Problem{ProcNode: procs, Tasks: tasks, FS: rig.fs}
	return p, p.Validate()
}

// runAdvisorSide drives all phases and rounds over one rig. adv is nil on
// the static side.
func runAdvisorSide(label string, rig *advisorRig, adv *advisor.Advisor, interval float64, seed int64) (AdvisorSide, error) {
	side := AdvisorSide{Label: label}
	round := 0
	for p := 0; p < advisorPhases; p++ {
		for r := 0; r < advisorRounds; r++ {
			prob, err := advisorProblem(rig, p)
			if err != nil {
				return side, err
			}
			a, err := (core.SingleData{Seed: seed + int64(round)}).Assign(prob)
			if err != nil {
				return side, err
			}
			opts := engine.Options{
				Topo:     rig.topo,
				FS:       rig.fs,
				Problem:  prob,
				Strategy: label,
			}
			if adv != nil {
				opts.Advisor = adv
				opts.AdvisorInterval = interval
				opts.Replan = true
				opts.ReplanSeed = seed + int64(round)
			}
			res, err := engine.RunAssignment(opts, a)
			if err != nil {
				return side, err
			}
			side.RoundLocal = append(side.RoundLocal, res.LocalFraction())
			side.MakespanS += res.Makespan
			if r == advisorRounds-1 {
				side.SteadyLocal += res.LocalFraction()
			}
			round++
		}
	}
	side.SteadyLocal /= advisorPhases
	side.StoredMB = rig.fs.TotalStoredMB()
	return side, nil
}

// AdvisorStudy runs the static-vs-advised replication study.
func AdvisorStudy(cfg Config) (*AdvisorResult, error) {
	nodes := cfg.scale(32)
	chunksPer := nodes / 2
	out := &AdvisorResult{
		Nodes:     nodes,
		Datasets:  advisorDatasets,
		ChunksPer: chunksPer,
		Phases:    advisorPhases,
		Rounds:    advisorRounds,
	}

	static, err := buildAdvisorRig(nodes, chunksPer, cfg.Seed)
	if err != nil {
		return nil, err
	}
	out.Static, err = runAdvisorSide("static-3way", static, nil, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}

	advised, err := buildAdvisorRig(nodes, chunksPer, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The decay half-life spans roughly one round of local reads, so a
	// phase's heat is stale within the next phase; the advisor wakes several
	// times per round so mid-round replans can use the new copies.
	readS := advised.topo.UncontendedLocalRead(64)
	halfLife := 2 * float64(advisorTasksPerNode) * readS
	advised.fs.EnableAccessStats(halfLife)
	adv, err := advisor.New(advised.fs, advisor.Options{
		MaxActions: nodes / 2,
	})
	if err != nil {
		return nil, err
	}
	out.BudgetMB = advised.fs.TotalStoredMB()
	out.Advised, err = runAdvisorSide("advised", advised, adv, readS/2, cfg.Seed)
	if err != nil {
		return nil, err
	}

	st := adv.Stats()
	out.Ticks = st.Ticks
	out.ReplicasAdded = st.ReplicasAdded
	out.ReplicasRemoved = st.ReplicasRemoved
	out.SteadyLocalGain = out.Advised.SteadyLocal - out.Static.SteadyLocal
	return out, nil
}

// Render prints the study.
func (r *AdvisorResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — adaptive replication advisor (ROADMAP 2): %d datasets x %d chunks on %d nodes, hotspot shifts over %d phases x %d rounds\n",
		r.Datasets, r.ChunksPer, r.Nodes, r.Phases, r.Rounds)
	row := func(s AdvisorSide) {
		fmt.Fprintf(&b, "  %-12s: steady-state local %5.1f%%  stored %6.0f MB  total makespan %6.1fs  per-round local",
			s.Label, 100*s.SteadyLocal, s.StoredMB, s.MakespanS)
		for _, l := range s.RoundLocal {
			fmt.Fprintf(&b, " %3.0f%%", 100*l)
		}
		b.WriteString("\n")
	}
	row(r.Static)
	row(r.Advised)
	fmt.Fprintf(&b, "  advisor: %d ticks, +%d/-%d replicas within a %.0f MB budget; steady-state locality %+.1f points\n",
		r.Ticks, r.ReplicasAdded, r.ReplicasRemoved, r.BudgetMB, 100*r.SteadyLocalGain)
	return b.String()
}
