package experiments

import "testing"

// TestAdvisorStudy runs the study small and checks the acceptance
// properties the committed BENCH series quotes: the advised side converges
// to a strictly better steady-state local fraction than static 3-way
// replication without ever exceeding the static storage bill.
func TestAdvisorStudy(t *testing.T) {
	r, err := AdvisorStudy(Config{Seed: 7, Scale: 4}) // 8 nodes
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 8 || r.ChunksPer != 4 || r.Datasets != advisorDatasets {
		t.Fatalf("unexpected shape: %+v", r)
	}
	rounds := advisorPhases * advisorRounds
	for _, side := range []AdvisorSide{r.Static, r.Advised} {
		if len(side.RoundLocal) != rounds {
			t.Fatalf("%s has %d rounds, want %d", side.Label, len(side.RoundLocal), rounds)
		}
		for i, l := range side.RoundLocal {
			if l < 0 || l > 1 {
				t.Fatalf("%s round %d local fraction %v", side.Label, i, l)
			}
		}
		if side.MakespanS <= 0 {
			t.Fatalf("%s makespan %v", side.Label, side.MakespanS)
		}
	}
	if r.Advised.SteadyLocal <= r.Static.SteadyLocal {
		t.Fatalf("advised steady local %.3f not better than static %.3f",
			r.Advised.SteadyLocal, r.Static.SteadyLocal)
	}
	if r.Advised.StoredMB > r.BudgetMB+1e-9 {
		t.Fatalf("advised stored %v MB exceeds the static budget %v MB",
			r.Advised.StoredMB, r.BudgetMB)
	}
	if r.Static.StoredMB != r.BudgetMB {
		t.Fatalf("static stored %v MB, want the untouched %v MB", r.Static.StoredMB, r.BudgetMB)
	}
	if r.Ticks <= 0 || r.ReplicasAdded <= 0 || r.ReplicasRemoved <= 0 {
		t.Fatalf("advisor idle: %+v", r)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
