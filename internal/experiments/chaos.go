package experiments

import (
	"fmt"
	"strings"

	"opass/internal/core"
	"opass/internal/engine"
	"opass/internal/workload"
)

// This file is the chaos harness: a sweep of seeded fault scenarios run
// twice each — once with per-read failover only (the baseline the original
// fault experiment exercises) and once with the recovery subsystem on
// (post-crash re-replication plus degraded-mode replanning). Every run is
// checked against hard invariants (the network ends idle, no read is
// served by a dead node, both variants execute every task), and the
// scenarios flag which strict improvements the recovered run must show.

// ChaosScenario is one seeded fault injection to sweep.
type ChaosScenario struct {
	Name         string
	Failures     []engine.NodeFailure
	Degradations []engine.NodeDegradation
	RepairDelay  float64
	// AssertLocality requires the replanned run to strictly beat the
	// failover-only run on post-failure local fraction; AssertMakespan
	// requires a strictly shorter makespan. Transient scenarios assert
	// neither — there the harness only checks the safety invariants.
	AssertLocality bool
	AssertMakespan bool
}

// chaosScenarios builds the sweep for a cluster of the given size. The
// node indices scale with the cluster so -scale keeps them valid.
func chaosScenarios(nodes int) []ChaosScenario {
	return []ChaosScenario{
		{
			Name:           "crash-early",
			Failures:       []engine.NodeFailure{{Node: 1, At: 1.0}},
			RepairDelay:    2.0,
			AssertLocality: true,
			AssertMakespan: true,
		},
		{
			Name:           "crash-late",
			Failures:       []engine.NodeFailure{{Node: nodes / 2, At: 3.0}},
			RepairDelay:    1.5,
			AssertLocality: true,
			AssertMakespan: true,
		},
		{
			Name: "double-crash",
			Failures: []engine.NodeFailure{
				{Node: 1, At: 1.0},
				{Node: nodes / 2, At: 2.5},
			},
			RepairDelay:    1.5,
			AssertLocality: true,
			AssertMakespan: true,
		},
		{
			Name:     "transient-outage",
			Failures: []engine.NodeFailure{{Node: 2, At: 0.5, RecoverAt: 2.5}},
		},
		{
			// A slow disk never changes placement, so failover-only stays
			// fully local — only the makespan can (and must) improve.
			Name: "degraded-disk",
			Degradations: []engine.NodeDegradation{
				{Node: 1, At: 0.5, DiskFactor: 0.15, NICFactor: 1.0},
			},
			AssertMakespan: true,
		},
	}
}

// ChaosRun is one scenario×seed comparison.
type ChaosRun struct {
	Scenario string
	Seed     int64
	Failover StrategyResult
	Replan   StrategyResult
	// Post-failure local fractions: the local share of bytes read at or
	// after the first fault event.
	FailoverPostLocal float64
	ReplanPostLocal   float64
	Replans           int
	RepairedChunks    int
	Retries           int
}

// ChaosResult is the full sweep.
type ChaosResult struct {
	Nodes int
	Runs  []ChaosRun
}

// faultStart returns the virtual time of the first fault event — the
// cutoff for the post-failure locality comparison.
func faultStart(s ChaosScenario) float64 {
	start := -1.0
	for _, f := range s.Failures {
		if start < 0 || f.At < start {
			start = f.At
		}
	}
	for _, d := range s.Degradations {
		if start < 0 || d.At < start {
			start = d.At
		}
	}
	if start < 0 {
		return 0
	}
	return start
}

// postLocalFraction is the local share of megabytes read by reads starting
// at or after the cutoff (1 when nothing started after it).
func postLocalFraction(res *engine.Result, after float64) float64 {
	var local, total float64
	for _, rec := range res.Records {
		if rec.Start < after {
			continue
		}
		total += rec.SizeMB
		if rec.Local {
			local += rec.SizeMB
		}
	}
	if total == 0 {
		return 1
	}
	return local / total
}

// checkInvariants enforces the scenario-independent safety properties of a
// completed run.
func checkInvariants(scenario string, seed int64, rig *workload.Rig, s ChaosScenario, res *engine.Result, tasks int) error {
	where := fmt.Sprintf("chaos %s seed %d (%s)", scenario, seed, res.Strategy)
	if n := rig.Topo.Net().Active(); n != 0 {
		return fmt.Errorf("%s: %d flows still active after the run", where, n)
	}
	if res.TasksRun != tasks {
		return fmt.Errorf("%s: ran %d tasks, want %d", where, res.TasksRun, tasks)
	}
	for _, f := range s.Failures {
		until := f.RecoverAt
		for _, rec := range res.Records {
			if rec.SrcNode != f.Node {
				continue
			}
			down := rec.End > f.At+1e-9 && (until == 0 || rec.Start < until)
			if down {
				return fmt.Errorf("%s: read of chunk %d served by node %d while it was down (%.3f-%.3f)",
					where, rec.Chunk, f.Node, rec.Start, rec.End)
			}
		}
	}
	return nil
}

// Chaos sweeps the fault scenarios over two seeds, comparing per-read
// failover against the full recovery subsystem and enforcing every
// scenario's invariants. It returns an error on any violation — the sweep
// is a runnable acceptance harness, not just a report.
func Chaos(cfg Config) (*ChaosResult, error) {
	nodes := cfg.scale(64)
	if nodes < 8 {
		return nil, fmt.Errorf("chaos: %d nodes too small for the scenario set (need >= 8)", nodes)
	}
	const chunksPerProc = 8
	tasks := nodes * chunksPerProc
	out := &ChaosResult{Nodes: nodes}
	for _, s := range chaosScenarios(nodes) {
		for _, seed := range []int64{cfg.Seed, cfg.Seed + 1} {
			run := func(recover bool) (*workload.Rig, *engine.Result, error) {
				rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: chunksPerProc, Seed: seed}.Build()
				if err != nil {
					return nil, nil, err
				}
				a, err := (core.SingleData{Seed: seed}).Assign(rig.Prob)
				if err != nil {
					return nil, nil, err
				}
				label := "failover"
				opts := engine.Options{
					Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob,
					Failures: s.Failures, Degradations: s.Degradations,
				}
				if recover {
					label = "replan"
					opts.Replan = true
					opts.Repair = true
					opts.RepairDelay = s.RepairDelay
					opts.ReplanSeed = seed
				}
				opts.Strategy = label
				res, err := engine.RunAssignment(opts, a)
				if err != nil {
					return nil, nil, fmt.Errorf("chaos %s seed %d (%s): %w", s.Name, seed, label, err)
				}
				if err := checkInvariants(s.Name, seed, rig, s, res, tasks); err != nil {
					return nil, nil, err
				}
				return rig, res, nil
			}
			_, fo, err := run(false)
			if err != nil {
				return nil, err
			}
			_, rp, err := run(true)
			if err != nil {
				return nil, err
			}
			cut := faultStart(s)
			row := ChaosRun{
				Scenario:          s.Name,
				Seed:              seed,
				Failover:          strategyResult(nodes, fo),
				Replan:            strategyResult(nodes, rp),
				FailoverPostLocal: postLocalFraction(fo, cut),
				ReplanPostLocal:   postLocalFraction(rp, cut),
				Replans:           rp.Replans,
				RepairedChunks:    rp.RepairedChunks,
				Retries:           rp.Retries,
			}
			if s.AssertLocality && !(row.ReplanPostLocal > row.FailoverPostLocal) {
				return nil, fmt.Errorf("chaos %s seed %d: post-failure local fraction did not improve (replan %.4f vs failover %.4f)",
					s.Name, seed, row.ReplanPostLocal, row.FailoverPostLocal)
			}
			if s.AssertMakespan && !(row.Replan.Makespan < row.Failover.Makespan) {
				return nil, fmt.Errorf("chaos %s seed %d: makespan did not improve (replan %.3f vs failover %.3f)",
					s.Name, seed, row.Replan.Makespan, row.Failover.Makespan)
			}
			if (s.AssertLocality || s.AssertMakespan) && row.Replans == 0 {
				return nil, fmt.Errorf("chaos %s seed %d: recovery run never replanned", s.Name, seed)
			}
			out.Runs = append(out.Runs, row)
		}
	}
	return out, nil
}

// Render prints the sweep as one row per scenario×seed.
func (r *ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos harness — failover vs replan+repair (%d nodes, all invariants held)\n", r.Nodes)
	fmt.Fprintf(&b, "  %-18s %5s  %22s  %22s  %7s %8s %7s\n",
		"scenario", "seed", "makespan fo->rp (s)", "post-fail local (%)", "replans", "repaired", "retries")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "  %-18s %5d  %9.2f -> %9.2f  %9.1f -> %9.1f  %7d %8d %7d\n",
			run.Scenario, run.Seed,
			run.Failover.Makespan, run.Replan.Makespan,
			100*run.FailoverPostLocal, 100*run.ReplanPostLocal,
			run.Replans, run.RepairedChunks, run.Retries)
	}
	return b.String()
}
