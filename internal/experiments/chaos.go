package experiments

import (
	"fmt"
	"strings"

	"opass/internal/core"
	"opass/internal/engine"
	"opass/internal/workload"
)

// This file is the chaos harness: a sweep of seeded fault scenarios run
// three times each — per-read failover only (the baseline the original
// fault experiment exercises), the recovery subsystem with full-backlog
// replans, and the recovery subsystem on its default O(delta) replan path.
// Every run is checked against hard invariants (the network ends idle, no
// read is served by a dead node, every variant executes every task). The
// scenarios flag which strict improvements the full replan must show; the
// delta replan is held to tolerance bands around the failover baseline
// plus surgical-count gates, because re-matching only the affected tasks
// keeps the unaffected backlog's (randomly drawn) remote sources — a
// different contention roll than the full re-match, not a planning
// regression (the per-process task distributions come out identical).

// ChaosScenario is one seeded fault injection to sweep.
type ChaosScenario struct {
	Name         string
	Failures     []engine.NodeFailure
	Degradations []engine.NodeDegradation
	RepairDelay  float64
	// AssertLocality requires the full-replan run to strictly beat the
	// failover-only run on post-failure local fraction; AssertMakespan
	// requires a strictly shorter makespan. The delta-replan run is held
	// to the same flags with small tolerance bands (see deltaMakespanSlack
	// and deltaLocalitySlack). Transient scenarios assert neither — there
	// the harness only checks the safety invariants.
	AssertLocality bool
	AssertMakespan bool
}

// Tolerance bands for the delta-replan gates. The delta path produces the
// same per-process task distribution as the full re-match, but tasks it
// leaves queued keep their previously drawn remote sources, so makespan
// and post-fault locality jitter by contention luck. Measured worst cases
// across 16/32/64-node sweeps: makespan ratio 1.006 vs failover
// (crash-late), locality deficit 0.003 — the bands leave ~3x headroom
// without letting a real regression through.
const (
	deltaMakespanSlack = 1.02 // delta makespan <= failover makespan x this
	deltaLocalitySlack = 0.02 // delta post-local >= failover post-local - this
)

// chaosScenarios builds the sweep for a cluster of the given size. The
// node indices scale with the cluster so -scale keeps them valid.
func chaosScenarios(nodes int) []ChaosScenario {
	return []ChaosScenario{
		{
			Name:           "crash-early",
			Failures:       []engine.NodeFailure{{Node: 1, At: 1.0}},
			RepairDelay:    2.0,
			AssertLocality: true,
			AssertMakespan: true,
		},
		{
			Name:           "crash-late",
			Failures:       []engine.NodeFailure{{Node: nodes / 2, At: 3.0}},
			RepairDelay:    1.5,
			AssertLocality: true,
			AssertMakespan: true,
		},
		{
			Name: "double-crash",
			Failures: []engine.NodeFailure{
				{Node: 1, At: 1.0},
				{Node: nodes / 2, At: 2.5},
			},
			RepairDelay:    1.5,
			AssertLocality: true,
			AssertMakespan: true,
		},
		{
			Name:     "transient-outage",
			Failures: []engine.NodeFailure{{Node: 2, At: 0.5, RecoverAt: 2.5}},
		},
		{
			// A slow disk never changes placement, so failover-only stays
			// fully local — only the makespan can (and must) improve.
			Name: "degraded-disk",
			Degradations: []engine.NodeDegradation{
				{Node: 1, At: 0.5, DiskFactor: 0.15, NICFactor: 1.0},
			},
			AssertMakespan: true,
		},
	}
}

// ChaosRun is one scenario×seed comparison. Replan is the full-backlog
// re-match; Delta is the engine's default O(delta) path that re-matches
// only event-affected tasks.
type ChaosRun struct {
	Scenario string
	Seed     int64
	Failover StrategyResult
	Replan   StrategyResult
	Delta    StrategyResult
	// Post-failure local fractions: the local share of bytes read at or
	// after the first fault event.
	FailoverPostLocal float64
	ReplanPostLocal   float64
	DeltaPostLocal    float64
	Replans           int
	RepairedChunks    int
	Retries           int
	// DeltaReplannedTasks counts tasks the delta run re-matched — the
	// surgical subset, gated to stay strictly below the task count.
	DeltaReplannedTasks int
}

// ChaosResult is the full sweep.
type ChaosResult struct {
	Nodes int
	Runs  []ChaosRun
}

// faultStart returns the virtual time of the first fault event — the
// cutoff for the post-failure locality comparison.
func faultStart(s ChaosScenario) float64 {
	start := -1.0
	for _, f := range s.Failures {
		if start < 0 || f.At < start {
			start = f.At
		}
	}
	for _, d := range s.Degradations {
		if start < 0 || d.At < start {
			start = d.At
		}
	}
	if start < 0 {
		return 0
	}
	return start
}

// postLocalFraction is the local share of megabytes read by reads starting
// at or after the cutoff (1 when nothing started after it).
func postLocalFraction(res *engine.Result, after float64) float64 {
	var local, total float64
	for _, rec := range res.Records {
		if rec.Start < after {
			continue
		}
		total += rec.SizeMB
		if rec.Local {
			local += rec.SizeMB
		}
	}
	if total == 0 {
		return 1
	}
	return local / total
}

// checkInvariants enforces the scenario-independent safety properties of a
// completed run.
func checkInvariants(scenario string, seed int64, rig *workload.Rig, s ChaosScenario, res *engine.Result, tasks int) error {
	where := fmt.Sprintf("chaos %s seed %d (%s)", scenario, seed, res.Strategy)
	if n := rig.Topo.Net().Active(); n != 0 {
		return fmt.Errorf("%s: %d flows still active after the run", where, n)
	}
	if res.TasksRun != tasks {
		return fmt.Errorf("%s: ran %d tasks, want %d", where, res.TasksRun, tasks)
	}
	for _, f := range s.Failures {
		until := f.RecoverAt
		for _, rec := range res.Records {
			if rec.SrcNode != f.Node {
				continue
			}
			down := rec.End > f.At+1e-9 && (until == 0 || rec.Start < until)
			if down {
				return fmt.Errorf("%s: read of chunk %d served by node %d while it was down (%.3f-%.3f)",
					where, rec.Chunk, f.Node, rec.Start, rec.End)
			}
		}
	}
	return nil
}

// Chaos sweeps the fault scenarios over two seeds, comparing per-read
// failover against the recovery subsystem on both replan paths (full
// re-match and the default O(delta) re-match) and enforcing every
// scenario's invariants. It returns an error on any violation — the sweep
// is a runnable acceptance harness, not just a report.
func Chaos(cfg Config) (*ChaosResult, error) {
	nodes := cfg.scale(64)
	if nodes < 8 {
		return nil, fmt.Errorf("chaos: %d nodes too small for the scenario set (need >= 8)", nodes)
	}
	const chunksPerProc = 8
	tasks := nodes * chunksPerProc
	out := &ChaosResult{Nodes: nodes}
	for _, s := range chaosScenarios(nodes) {
		for _, seed := range []int64{cfg.Seed, cfg.Seed + 1} {
			run := func(label string) (*workload.Rig, *engine.Result, error) {
				rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: chunksPerProc, Seed: seed}.Build()
				if err != nil {
					return nil, nil, err
				}
				a, err := (core.SingleData{Seed: seed}).Assign(rig.Prob)
				if err != nil {
					return nil, nil, err
				}
				opts := engine.Options{
					Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob,
					Failures: s.Failures, Degradations: s.Degradations,
				}
				if label != "failover" {
					opts.Replan = true
					opts.ReplanFull = label == "replan-full"
					opts.Repair = true
					opts.RepairDelay = s.RepairDelay
					opts.ReplanSeed = seed
				}
				opts.Strategy = label
				res, err := engine.RunAssignment(opts, a)
				if err != nil {
					return nil, nil, fmt.Errorf("chaos %s seed %d (%s): %w", s.Name, seed, label, err)
				}
				if err := checkInvariants(s.Name, seed, rig, s, res, tasks); err != nil {
					return nil, nil, err
				}
				return rig, res, nil
			}
			_, fo, err := run("failover")
			if err != nil {
				return nil, err
			}
			_, rp, err := run("replan-full")
			if err != nil {
				return nil, err
			}
			_, dl, err := run("replan-delta")
			if err != nil {
				return nil, err
			}
			cut := faultStart(s)
			row := ChaosRun{
				Scenario:            s.Name,
				Seed:                seed,
				Failover:            strategyResult(nodes, fo),
				Replan:              strategyResult(nodes, rp),
				Delta:               strategyResult(nodes, dl),
				FailoverPostLocal:   postLocalFraction(fo, cut),
				ReplanPostLocal:     postLocalFraction(rp, cut),
				DeltaPostLocal:      postLocalFraction(dl, cut),
				Replans:             rp.Replans,
				RepairedChunks:      rp.RepairedChunks,
				Retries:             rp.Retries,
				DeltaReplannedTasks: dl.DeltaReplannedTasks,
			}
			// Full re-match: strict improvement over failover wherever the
			// scenario asserts it.
			if s.AssertLocality && !(row.ReplanPostLocal > row.FailoverPostLocal) {
				return nil, fmt.Errorf("chaos %s seed %d: post-failure local fraction did not improve (replan %.4f vs failover %.4f)",
					s.Name, seed, row.ReplanPostLocal, row.FailoverPostLocal)
			}
			if s.AssertMakespan && !(row.Replan.Makespan < row.Failover.Makespan) {
				return nil, fmt.Errorf("chaos %s seed %d: makespan did not improve (replan %.3f vs failover %.3f)",
					s.Name, seed, row.Replan.Makespan, row.Failover.Makespan)
			}
			if (s.AssertLocality || s.AssertMakespan) && row.Replans == 0 {
				return nil, fmt.Errorf("chaos %s seed %d: recovery run never replanned", s.Name, seed)
			}
			// Delta re-match: same flags, tolerance-banded (unaffected tasks
			// keep their previously drawn remote sources, so the tail jitters
			// by contention luck), plus the surgical-count gates — the delta
			// run must actually replan, and must touch strictly fewer tasks
			// than a full re-match would.
			if s.AssertLocality && row.DeltaPostLocal < row.FailoverPostLocal-deltaLocalitySlack {
				return nil, fmt.Errorf("chaos %s seed %d: delta post-failure local fraction regressed (delta %.4f vs failover %.4f)",
					s.Name, seed, row.DeltaPostLocal, row.FailoverPostLocal)
			}
			if s.AssertMakespan && row.Delta.Makespan > row.Failover.Makespan*deltaMakespanSlack {
				return nil, fmt.Errorf("chaos %s seed %d: delta makespan regressed (delta %.3f vs failover %.3f)",
					s.Name, seed, row.Delta.Makespan, row.Failover.Makespan)
			}
			if s.AssertLocality || s.AssertMakespan {
				if dl.Replans == 0 {
					return nil, fmt.Errorf("chaos %s seed %d: delta recovery run never replanned", s.Name, seed)
				}
				if row.DeltaReplannedTasks <= 0 || row.DeltaReplannedTasks >= tasks {
					return nil, fmt.Errorf("chaos %s seed %d: delta replan was not surgical (%d of %d tasks re-matched)",
						s.Name, seed, row.DeltaReplannedTasks, tasks)
				}
			}
			out.Runs = append(out.Runs, row)
		}
	}
	return out, nil
}

// Render prints the sweep as one row per scenario×seed.
func (r *ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos harness — failover vs full replan vs delta replan (%d nodes, all invariants held)\n", r.Nodes)
	fmt.Fprintf(&b, "  %-18s %5s  %26s  %26s  %7s %8s %7s %6s\n",
		"scenario", "seed", "makespan fo/full/delta (s)", "post-fail local fo/fu/de", "replans", "repaired", "retries", "dtasks")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "  %-18s %5d  %8.2f %8.2f %8.2f  %8.1f %8.1f %8.1f  %7d %8d %7d %6d\n",
			run.Scenario, run.Seed,
			run.Failover.Makespan, run.Replan.Makespan, run.Delta.Makespan,
			100*run.FailoverPostLocal, 100*run.ReplanPostLocal, 100*run.DeltaPostLocal,
			run.Replans, run.RepairedChunks, run.Retries, run.DeltaReplannedTasks)
	}
	return b.String()
}
