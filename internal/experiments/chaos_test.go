package experiments

import "testing"

func TestChaosSweepHoldsInvariants(t *testing.T) {
	// Scale 4 => 16 nodes: big enough for every scenario's node indices,
	// small enough for CI. Chaos itself errors on any invariant violation
	// or missing strict improvement, so success is the assertion.
	r, err := Chaos(Config{Seed: 7, Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := 5 * 2 // scenarios x seeds
	if len(r.Runs) != wantRuns {
		t.Fatalf("sweep produced %d runs, want %d", len(r.Runs), wantRuns)
	}
	for _, run := range r.Runs {
		if run.Delta.Makespan <= 0 {
			t.Errorf("%s seed %d: delta run missing from the sweep", run.Scenario, run.Seed)
		}
		if run.Scenario != "degraded-disk" && run.Retries == 0 && run.Scenario != "crash-late" {
			// Early crashes interrupt in-flight reads with high
			// probability; a zero here would mean the injection never bit.
			if run.Scenario == "crash-early" || run.Scenario == "double-crash" {
				t.Errorf("%s seed %d: no retries recorded", run.Scenario, run.Seed)
			}
		}
	}
	if out := r.Render(); len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestChaosRejectsTinyClusters(t *testing.T) {
	if _, err := Chaos(Config{Seed: 1, Scale: 16}); err == nil {
		t.Fatal("4-node sweep must be rejected (scenario nodes out of range)")
	}
}
