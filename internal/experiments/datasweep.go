package experiments

import (
	"fmt"
	"strings"

	"opass/internal/core"
)

// DataRow is one dataset-size sample.
type DataRow struct {
	ChunksPerProc int
	Baseline      StrategyResult
	Opass         StrategyResult
}

// DataSizeSweep tests the paper's introductory claim that "the I/O
// performance could be further degraded as the size of the cluster and the
// data increase" — Figure 7 sweeps the cluster; this sweeps the dataset at
// a fixed 64-node cluster. The baseline's *worst* read stretches as more
// requests pile onto the same hotspots, while Opass's per-read time stays
// at the uncontended local read regardless of dataset size.
func DataSizeSweep(cfg Config, perProc []int) ([]DataRow, error) {
	if len(perProc) == 0 {
		perProc = []int{5, 10, 20, 40}
	}
	nodes := cfg.scale(64)
	var rows []DataRow
	for _, cp := range perProc {
		base, err := runSingle(nodes, cp, cfg.Seed+int64(cp), core.RankStatic{})
		if err != nil {
			return nil, err
		}
		op, err := runSingle(nodes, cp, cfg.Seed+int64(cp), core.SingleData{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, DataRow{ChunksPerProc: cp, Baseline: base, Opass: op})
	}
	return rows, nil
}

// RenderDataSweep prints the dataset-size sweep.
func RenderDataSweep(rows []DataRow, nodes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — dataset size sweep at %d nodes (chunks per process)\n", nodes)
	fmt.Fprintf(&b, "%10s | %-32s | %-32s\n", "chunks/pp", "without Opass (avg/max s, util)", "with Opass (avg/max s, util)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d | %8.2f %8.2f %10.0f%% | %8.2f %8.2f %10.0f%%\n",
			r.ChunksPerProc,
			r.Baseline.IO.Mean, r.Baseline.IO.Max, 100*r.Baseline.MeanDiskUtilization,
			r.Opass.IO.Mean, r.Opass.IO.Max, 100*r.Opass.MeanDiskUtilization)
	}
	return b.String()
}
