// Package experiments regenerates every figure and quoted result of the
// Opass paper's evaluation (§III and §V) from the simulated substrate. Each
// Fig* function returns a structured result with a Render method that
// prints rows comparable to the corresponding figure; cmd/opass-bench is a
// thin CLI over this package and bench_test.go wraps each experiment in a
// testing.B benchmark.
//
// The experiments follow the paper's configuration: one process per node,
// 3-way replication, 64 MB chunks, ten chunks per process for the
// microbenchmarks, cluster sizes 16–80 for the sweeps and 64 nodes for the
// traces. Scale can be reduced uniformly for quick runs via the Scale
// parameter on Config.
package experiments

import (
	"fmt"
	"strings"

	"opass/internal/analysis"
	"opass/internal/core"
	"opass/internal/engine"
	"opass/internal/metrics"
	"opass/internal/workload"
)

// Config tunes experiment scale. The zero value reproduces the paper's
// setup.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Scale divides cluster sizes (and hence chunk counts) by this factor;
	// 0 or 1 means full paper scale. Scale 4 turns the 64-node trace into a
	// 16-node trace, still large enough to show every effect.
	Scale int
}

func (c Config) scale(n int) int {
	s := c.Scale
	if s <= 1 {
		return n
	}
	v := n / s
	if v < 4 {
		v = 4
	}
	return v
}

// StrategyResult captures one strategy's run within an experiment.
type StrategyResult struct {
	Strategy string
	Nodes    int
	IO       metrics.Summary // per-read I/O time (s)
	Served   metrics.Summary // per-node served data (MB)
	ServedMB []float64
	IOTimes  []float64
	Local    float64 // fraction of bytes read locally
	// Makespan is completion minus arrival — for staggered concurrent jobs
	// this is the latency the job's owner observes, not the wall-clock end
	// of the whole mix. Single runs arrive at 0, so nothing changes there.
	Makespan float64
	Fairness float64
	// MeanDiskUtilization is the average fraction of disk bandwidth used
	// across nodes during the run (parallel-use efficiency).
	MeanDiskUtilization float64
}

func strategyResult(nodes int, res *engine.Result) StrategyResult {
	io := res.IOTimes()
	var util float64
	if len(res.DiskUtilization) > 0 {
		for _, u := range res.DiskUtilization {
			util += u
		}
		util /= float64(len(res.DiskUtilization))
	}
	return StrategyResult{
		Strategy:            res.Strategy,
		Nodes:               nodes,
		IO:                  metrics.Summarize(io),
		Served:              metrics.Summarize(res.ServedMB),
		ServedMB:            append([]float64(nil), res.ServedMB...),
		IOTimes:             io,
		Local:               res.LocalFraction(),
		Makespan:            res.JobMakespan(),
		Fairness:            metrics.JainIndex(res.ServedMB),
		MeanDiskUtilization: util,
	}
}

// runSingle builds a fresh single-data rig and executes it under the given
// assigner. Each strategy gets an identical, independently-built rig (same
// seed ⇒ same placement), so comparisons are paired.
func runSingle(nodes, chunksPerProc int, seed int64, as core.Assigner) (StrategyResult, error) {
	rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: chunksPerProc, Seed: seed}.Build()
	if err != nil {
		return StrategyResult{}, err
	}
	a, err := as.Assign(rig.Prob)
	if err != nil {
		return StrategyResult{}, err
	}
	res, err := engine.RunAssignment(engine.Options{
		Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob, Strategy: as.Name(),
	}, a)
	if err != nil {
		return StrategyResult{}, err
	}
	return strategyResult(nodes, res), nil
}

// Fig1Result is the motivating experiment: 64 nodes, 128 chunks, rank
// assignment — the served-chunk imbalance (Fig 1a) and the spread of
// per-read I/O times (Fig 1b).
type Fig1Result struct {
	Run StrategyResult
	// ChunksServed[node] counts chunks served by each node (Fig 1a's bars).
	ChunksServed []int
	// MaxChunks / IdleNodes quantify the skew the paper highlights
	// ("node-43 serves more than 6 chunks while some node serves none").
	MaxChunks int
	IdleNodes int
	// PredictedMax is the §III balls-in-bins expectation of the busiest
	// node's chunk count, for comparison with the observed MaxChunks.
	PredictedMax float64
	// PeakConcurrency is the deepest simultaneous read queue any disk saw —
	// the §III-B "compete for the hard disk head" depth.
	PeakConcurrency int
}

// Fig1 reproduces Figure 1.
func Fig1(cfg Config) (*Fig1Result, error) {
	nodes := cfg.scale(64)
	chunks := 2 * nodes // 128 chunks on 64 nodes: 2 per node ideally
	rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: chunks / nodes, Seed: cfg.Seed}.Build()
	if err != nil {
		return nil, err
	}
	a, err := core.RankStatic{}.Assign(rig.Prob)
	if err != nil {
		return nil, err
	}
	res, err := engine.RunAssignment(engine.Options{
		Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob, Strategy: "rank-static",
	}, a)
	if err != nil {
		return nil, err
	}
	out := &Fig1Result{
		Run:          strategyResult(nodes, res),
		ChunksServed: make([]int, nodes),
	}
	for _, rec := range res.Records {
		out.ChunksServed[rec.SrcNode]++
	}
	for _, c := range out.ChunksServed {
		if c > out.MaxChunks {
			out.MaxChunks = c
		}
		if c == 0 {
			out.IdleNodes++
		}
	}
	out.PredictedMax = analysis.ExpectedMaxServed(analysis.LocalReadParams{
		Chunks: chunks, Replication: rig.FS.Config().Replication, Nodes: nodes,
	})
	for _, p := range res.PeakConcurrentReads {
		if p > out.PeakConcurrency {
			out.PeakConcurrency = p
		}
	}
	return out, nil
}

// Render prints the figure rows.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — imbalanced parallel reads (rank assignment, %d nodes, %d chunks)\n",
		r.Run.Nodes, len(r.Run.IOTimes))
	fmt.Fprintf(&b, "(a) chunks served per node: ideal=%d max=%d (model predicts %.1f) idle-nodes=%d\n",
		len(r.Run.IOTimes)/r.Run.Nodes, r.MaxChunks, r.PredictedMax, r.IdleNodes)
	fmt.Fprintf(&b, "    per-node: %s\n", intBars(r.ChunksServed))
	fmt.Fprintf(&b, "(b) I/O times: %s spread=%.1fx\n", r.Run.IO, r.Run.IO.Spread())
	fmt.Fprintf(&b, "    deepest disk queue: %d concurrent reads\n", r.PeakConcurrency)
	fmt.Fprintf(&b, "    local bytes: %.1f%%\n", 100*r.Run.Local)
	return b.String()
}

// SweepRow is one (cluster size, strategy) cell of Figures 7a/7b/8a/8b.
type SweepRow struct {
	Nodes    int
	Baseline StrategyResult
	Opass    StrategyResult
}

// SweepResult holds the cluster-size sweep of Figures 7 and 8.
type SweepResult struct {
	Rows []SweepRow
}

// SingleDataSweep reproduces Figures 7(a,b) and 8(a,b): the per-chunk I/O
// time and per-node served-data statistics across cluster sizes, with and
// without Opass. Ten chunks per process, as in the paper.
func SingleDataSweep(cfg Config, sizes []int) (*SweepResult, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32, 48, 64, 80}
	}
	out := &SweepResult{}
	for _, raw := range sizes {
		nodes := cfg.scale(raw)
		base, err := runSingle(nodes, 10, cfg.Seed+int64(raw), core.RankStatic{})
		if err != nil {
			return nil, err
		}
		op, err := runSingle(nodes, 10, cfg.Seed+int64(raw), core.SingleData{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, SweepRow{Nodes: nodes, Baseline: base, Opass: op})
	}
	return out, nil
}

// Render prints the sweep in the paper's avg/max/min format.
func (r *SweepResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7(a,b) — chunk I/O times vs cluster size (s)\n")
	fmt.Fprintf(&b, "%6s | %-30s | %-30s\n", "nodes", "without Opass (avg/min/max)", "with Opass (avg/min/max)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n",
			row.Nodes,
			row.Baseline.IO.Mean, row.Baseline.IO.Min, row.Baseline.IO.Max,
			row.Opass.IO.Mean, row.Opass.IO.Min, row.Opass.IO.Max)
	}
	b.WriteString("\nFigure 8(a,b) — data served per node vs cluster size (MB)\n")
	fmt.Fprintf(&b, "%6s | %-30s | %-30s\n", "nodes", "without Opass (avg/min/max)", "with Opass (avg/min/max)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d | %9.0f %9.0f %9.0f | %9.0f %9.0f %9.0f\n",
			row.Nodes,
			row.Baseline.Served.Mean, row.Baseline.Served.Min, row.Baseline.Served.Max,
			row.Opass.Served.Mean, row.Opass.Served.Min, row.Opass.Served.Max)
	}
	b.WriteString("\nlocality (bytes read locally)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d | %29.1f%% | %29.1f%%\n", row.Nodes, 100*row.Baseline.Local, 100*row.Opass.Local)
	}
	return b.String()
}

// TraceResult holds a paired 64-node trace (Figures 7c+8c, 9+10, 11).
type TraceResult struct {
	Title    string
	Baseline StrategyResult
	Opass    StrategyResult
}

// AvgRatio is the paper's headline metric: baseline avg I/O over Opass avg.
func (r *TraceResult) AvgRatio() float64 {
	if r.Opass.IO.Mean == 0 {
		return 0
	}
	return r.Baseline.IO.Mean / r.Opass.IO.Mean
}

// Render prints the trace statistics and per-node service loads.
func (r *TraceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d nodes, %d reads)\n", r.Title, r.Baseline.Nodes, len(r.Baseline.IOTimes))
	fmt.Fprintf(&b, "  without Opass: %s local=%.1f%% makespan=%.1fs\n",
		r.Baseline.IO, 100*r.Baseline.Local, r.Baseline.Makespan)
	fmt.Fprintf(&b, "  with    Opass: %s local=%.1f%% makespan=%.1fs\n",
		r.Opass.IO, 100*r.Opass.Local, r.Opass.Makespan)
	fmt.Fprintf(&b, "  avg I/O improvement: %.2fx\n", r.AvgRatio())
	fmt.Fprintf(&b, "  served MB/node without: avg=%.0f min=%.0f max=%.0f jain=%.3f\n",
		r.Baseline.Served.Mean, r.Baseline.Served.Min, r.Baseline.Served.Max, r.Baseline.Fairness)
	fmt.Fprintf(&b, "  served MB/node with:    avg=%.0f min=%.0f max=%.0f jain=%.3f\n",
		r.Opass.Served.Mean, r.Opass.Served.Min, r.Opass.Served.Max, r.Opass.Fairness)
	fmt.Fprintf(&b, "  mean disk utilization:  %.0f%% without, %.0f%% with\n",
		100*r.Baseline.MeanDiskUtilization, 100*r.Opass.MeanDiskUtilization)
	return b.String()
}

// Fig7cTrace reproduces Figures 7(c) and 8(c): the 64-node, 640-chunk
// single-data trace under rank assignment vs Opass.
func Fig7cTrace(cfg Config) (*TraceResult, error) {
	nodes := cfg.scale(64)
	base, err := runSingle(nodes, 10, cfg.Seed, core.RankStatic{})
	if err != nil {
		return nil, err
	}
	op, err := runSingle(nodes, 10, cfg.Seed, core.SingleData{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &TraceResult{
		Title:    "Figures 7c/8c — parallel single-data access trace",
		Baseline: base,
		Opass:    op,
	}, nil
}

// Fig9Trace reproduces Figures 9 and 10: multi-data tasks (30+20+10 MB
// inputs) under the default assignment vs Opass's Algorithm 1.
func Fig9Trace(cfg Config) (*TraceResult, error) {
	nodes := cfg.scale(64)
	run := func(as core.Assigner) (StrategyResult, error) {
		rig, err := workload.MultiSpec{Nodes: nodes, TasksPerProc: 10, Seed: cfg.Seed}.Build()
		if err != nil {
			return StrategyResult{}, err
		}
		a, err := as.Assign(rig.Prob)
		if err != nil {
			return StrategyResult{}, err
		}
		res, err := engine.RunAssignment(engine.Options{
			Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob, Strategy: as.Name(),
		}, a)
		if err != nil {
			return StrategyResult{}, err
		}
		return strategyResult(nodes, res), nil
	}
	base, err := run(core.RankStatic{})
	if err != nil {
		return nil, err
	}
	op, err := run(core.MultiData{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &TraceResult{
		Title:    "Figures 9/10 — parallel multi-data access trace",
		Baseline: base,
		Opass:    op,
	}, nil
}

// Fig11Trace reproduces Figure 11: dynamic master/worker access with
// irregular task times — the default random master vs the Opass-guided
// master of §IV-D.
func Fig11Trace(cfg Config) (*TraceResult, error) {
	nodes := cfg.scale(64)
	run := func(opass bool) (StrategyResult, error) {
		rig, err := workload.DynamicSpec{
			Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed,
			ComputeMean: 0.5, ComputeSigma: 1.0,
		}.Build()
		if err != nil {
			return StrategyResult{}, err
		}
		var src engine.TaskSource
		name := "random-dynamic"
		if opass {
			plan, err := core.SingleData{Seed: cfg.Seed}.Assign(rig.Prob)
			if err != nil {
				return StrategyResult{}, err
			}
			sched, err := core.NewDynamicScheduler(rig.Prob, plan)
			if err != nil {
				return StrategyResult{}, err
			}
			src = sched
			name = "opass-dynamic"
		} else {
			src = core.NewRandomDispatcher(rig.Prob, cfg.Seed)
		}
		res, err := engine.Run(engine.Options{
			Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob,
			ComputeTime: rig.Compute, Strategy: name,
		}, src)
		if err != nil {
			return StrategyResult{}, err
		}
		return strategyResult(nodes, res), nil
	}
	base, err := run(false)
	if err != nil {
		return nil, err
	}
	op, err := run(true)
	if err != nil {
		return nil, err
	}
	return &TraceResult{
		Title:    "Figure 11 — dynamic data access trace",
		Baseline: base,
		Opass:    op,
	}, nil
}

// intBars renders small integer vectors compactly.
func intBars(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// Nodes maps a paper-scale cluster size through the configured scale
// divisor, for callers that size their own workloads.
func (c Config) Nodes(paper int) int { return c.scale(paper) }
