package experiments

import (
	"math"
	"strings"
	"testing"
)

// quick returns a config that shrinks the paper's 64-node experiments to 16
// nodes — large enough for every qualitative effect, fast enough for CI.
func quick() Config { return Config{Seed: 42, Scale: 4} }

func TestFig1ShowsImbalance(t *testing.T) {
	r, err := Fig1(quick())
	if err != nil {
		t.Fatal(err)
	}
	ideal := len(r.Run.IOTimes) / r.Run.Nodes
	if r.MaxChunks <= ideal {
		t.Fatalf("max served %d not above ideal %d — no imbalance?", r.MaxChunks, ideal)
	}
	// Figure 1b: read times vary widely under the baseline.
	if r.Run.IO.Spread() < 2 {
		t.Fatalf("I/O spread %.2f, expected > 2x", r.Run.IO.Spread())
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestFig3MatchesPaperNumbers(t *testing.T) {
	r := Fig3(quick())
	if math.Abs(r.PGreater5[64]-0.8109) > 0.02 {
		t.Fatalf("P(X>5)|m=64 = %v, paper 0.8109", r.PGreater5[64])
	}
	if math.Abs(r.PGreater5[128]-0.2143) > 0.02 {
		t.Fatalf("P(X>5)|m=128 = %v, paper 0.2143", r.PGreater5[128])
	}
	if math.Abs(r.NodesAtMost1-11) > 1.5 {
		t.Fatalf("nodes<=1 = %v, paper 11", r.NodesAtMost1)
	}
	if math.Abs(r.NodesAtLeast8-6) > 1.5 {
		t.Fatalf("nodes>=8 = %v, paper 6", r.NodesAtLeast8)
	}
	out := r.Render()
	for _, want := range []string{"Figure 3", "81.09%", "Monte-Carlo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestSweepShapeMatchesFig7(t *testing.T) {
	r, err := SingleDataSweep(Config{Seed: 7, Scale: 2}, []int{16, 32, 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Opass beats the baseline on mean I/O time at every size.
		if row.Opass.IO.Mean >= row.Baseline.IO.Mean {
			t.Fatalf("nodes=%d: opass mean %v >= baseline %v",
				row.Nodes, row.Opass.IO.Mean, row.Baseline.IO.Mean)
		}
		// Opass locality is high; baseline's decays with cluster size.
		if row.Opass.Local < 0.9 {
			t.Fatalf("nodes=%d: opass locality %v", row.Nodes, row.Opass.Local)
		}
	}
	// Figure 7a: the baseline's max I/O time grows with cluster size while
	// Opass stays flat.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Baseline.IO.Max <= first.Baseline.IO.Max {
		t.Fatalf("baseline max I/O did not grow: %v -> %v",
			first.Baseline.IO.Max, last.Baseline.IO.Max)
	}
	if last.Opass.IO.Mean > 2*first.Opass.IO.Mean {
		t.Fatalf("opass mean not flat: %v -> %v", first.Opass.IO.Mean, last.Opass.IO.Mean)
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Fatal("render missing title")
	}
}

func TestFig7cTraceShape(t *testing.T) {
	r, err := Fig7cTrace(quick())
	if err != nil {
		t.Fatal(err)
	}
	// §V-A1: "the average I/O operation time with the use of Opass is a
	// quarter of that without" — at reduced scale we require at least 2x.
	if ratio := r.AvgRatio(); ratio < 2 {
		t.Fatalf("avg I/O improvement %vx, want >= 2x", ratio)
	}
	// >90% of data remote without Opass (§V-A1).
	if r.Baseline.Local > 0.35 {
		t.Fatalf("baseline locality %v unexpectedly high", r.Baseline.Local)
	}
	if r.Opass.Local < 0.9 {
		t.Fatalf("opass locality %v", r.Opass.Local)
	}
	// Figure 8c shape: served data much more balanced with Opass.
	if r.Opass.Fairness <= r.Baseline.Fairness {
		t.Fatalf("opass fairness %v <= baseline %v", r.Opass.Fairness, r.Baseline.Fairness)
	}
	if !strings.Contains(r.Render(), "7c/8c") {
		t.Fatal("render missing title")
	}
}

func TestFig9TraceShape(t *testing.T) {
	r, err := Fig9Trace(quick())
	if err != nil {
		t.Fatal(err)
	}
	// §V-A2: improvement exists but is smaller than single-data ("part of
	// data must be read remotely"); the paper reports ~2x on averages.
	if ratio := r.AvgRatio(); ratio < 1.2 {
		t.Fatalf("multi-data improvement %vx, want >= 1.2x", ratio)
	}
	// Opass cannot reach full locality with three scattered inputs.
	if r.Opass.Local > 0.98 {
		t.Fatalf("multi-data locality %v suspiciously perfect", r.Opass.Local)
	}
	if r.Opass.Local <= r.Baseline.Local {
		t.Fatal("opass locality not better")
	}
}

func TestFig11TraceShape(t *testing.T) {
	r, err := Fig11Trace(quick())
	if err != nil {
		t.Fatal(err)
	}
	// §V-A3: the paper reports 2.7x on average I/O time; require >= 1.5x at
	// reduced scale.
	if ratio := r.AvgRatio(); ratio < 1.5 {
		t.Fatalf("dynamic improvement %vx, want >= 1.5x", ratio)
	}
	if r.Opass.Local <= r.Baseline.Local {
		t.Fatal("opass dynamic locality not better")
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	// §V-B: Opass lowers the mean and tightens the deviation.
	if r.OpassIO.Mean >= r.StockIO.Mean {
		t.Fatalf("opass call mean %v >= stock %v", r.OpassIO.Mean, r.StockIO.Mean)
	}
	if r.OpassIO.StdDev >= r.StockIO.StdDev {
		t.Fatalf("opass call sd %v >= stock %v", r.OpassIO.StdDev, r.StockIO.StdDev)
	}
	if r.Opass.TotalSeconds >= r.Stock.TotalSeconds {
		t.Fatalf("opass total %v >= stock %v", r.Opass.TotalSeconds, r.Stock.TotalSeconds)
	}
	if !strings.Contains(r.Render(), "Figure 12") {
		t.Fatal("render missing title")
	}
}

func TestOverheadTiny(t *testing.T) {
	r, err := Overhead(quick())
	if err != nil {
		t.Fatal(err)
	}
	// §V-C1: matching overhead under 1% of the data access it optimizes.
	if r.OverheadRatio > 0.01 {
		t.Fatalf("overhead ratio %v, paper says < 1%%", r.OverheadRatio)
	}
	if r.LocalityGained < 0.9 {
		t.Fatalf("planned locality %v", r.LocalityGained)
	}
	if !strings.Contains(r.Render(), "overhead") {
		t.Fatal("render missing")
	}
}

func TestPlannerScaleRows(t *testing.T) {
	rows, err := PlannerScale(Config{Seed: 1}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EKWall <= 0 || r.DinicWall <= 0 || r.Algorithm1 <= 0 {
			t.Fatalf("non-positive wall time: %+v", r)
		}
	}
	if !strings.Contains(RenderScale(rows), "planner wall time") {
		t.Fatal("render missing")
	}
}

func TestAblationPlacement(t *testing.T) {
	r, err := AblationPlacement(quick())
	if err != nil {
		t.Fatal(err)
	}
	// With a quarter of the nodes empty, a full matching is impossible;
	// after the balancer, achievable locality improves.
	if r.PlannedLocalitySkewed >= r.PlannedLocalityBalanced {
		t.Fatalf("balancer did not improve achievable locality: %v vs %v",
			r.PlannedLocalitySkewed, r.PlannedLocalityBalanced)
	}
	if !strings.Contains(r.Render(), "Ablation") {
		t.Fatal("render missing")
	}
}

func TestConfigScale(t *testing.T) {
	if (Config{}).Nodes(64) != 64 {
		t.Fatal("zero scale must be identity")
	}
	if (Config{Scale: 4}).Nodes(64) != 16 {
		t.Fatal("scale 4 wrong")
	}
	if (Config{Scale: 100}).Nodes(64) != 4 {
		t.Fatal("scale floor wrong")
	}
}
