package experiments

import (
	"fmt"
	"strings"
	"time"

	"opass/internal/core"
	"opass/internal/delay"
	"opass/internal/engine"
	"opass/internal/workload"
)

// This file holds the extension experiments beyond the paper's figures:
// the related-work comparison against delay scheduling (§VI), the
// heterogeneous-environment static-vs-dynamic study that motivates §IV-D,
// and the greedy-vs-flow planner quality/latency trade-off that addresses
// the §V-C2 scalability future-work item.

// DynamicStrategiesResult compares three masters on the same workload.
type DynamicStrategiesResult struct {
	Random StrategyResult
	Delay  StrategyResult
	Opass  StrategyResult
	// MaxSkips is the delay-scheduling D parameter used.
	MaxSkips int
}

// DynamicStrategies runs the dynamic workload of Figure 11 under the
// random master, delay scheduling, and Opass's §IV-D scheduler.
func DynamicStrategies(cfg Config) (*DynamicStrategiesResult, error) {
	nodes := cfg.scale(64)
	const maxSkips = 3
	run := func(kind string) (StrategyResult, error) {
		rig, err := workload.DynamicSpec{
			Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed,
			ComputeMean: 0.5, ComputeSigma: 1.0,
		}.Build()
		if err != nil {
			return StrategyResult{}, err
		}
		var src engine.TaskSource
		switch kind {
		case "random-dynamic":
			src = core.NewRandomDispatcher(rig.Prob, cfg.Seed)
		case "delay-scheduling":
			src = delay.NewDispatcher(rig.Prob, maxSkips, cfg.Seed)
		case "opass-dynamic":
			plan, err := core.SingleData{Seed: cfg.Seed}.Assign(rig.Prob)
			if err != nil {
				return StrategyResult{}, err
			}
			sched, err := core.NewDynamicScheduler(rig.Prob, plan)
			if err != nil {
				return StrategyResult{}, err
			}
			src = sched
		}
		res, err := engine.Run(engine.Options{
			Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob,
			ComputeTime: rig.Compute, Strategy: kind,
		}, src)
		if err != nil {
			return StrategyResult{}, err
		}
		return strategyResult(nodes, res), nil
	}
	random, err := run("random-dynamic")
	if err != nil {
		return nil, err
	}
	dl, err := run("delay-scheduling")
	if err != nil {
		return nil, err
	}
	op, err := run("opass-dynamic")
	if err != nil {
		return nil, err
	}
	return &DynamicStrategiesResult{Random: random, Delay: dl, Opass: op, MaxSkips: maxSkips}, nil
}

// Render prints the three-way comparison.
func (r *DynamicStrategiesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — dynamic masters compared (%d nodes, delay D=%d)\n", r.Random.Nodes, r.MaxSkips)
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %10s\n", "master", "avg I/O(s)", "max I/O(s)", "local", "makespan")
	for _, s := range []StrategyResult{r.Random, r.Delay, r.Opass} {
		fmt.Fprintf(&b, "%-18s %10.3f %10.3f %9.1f%% %9.1fs\n",
			s.Strategy, s.IO.Mean, s.IO.Max, 100*s.Local, s.Makespan)
	}
	return b.String()
}

// HeteroResult compares static equal lists, capacity-weighted static
// lists, and dynamic dispatch on a heterogeneous cluster.
type HeteroResult struct {
	Static   StrategyResult
	Weighted StrategyResult
	Dynamic  StrategyResult
	// SlowNodes is how many nodes compute at SlowFactor speed.
	SlowNodes  int
	SlowFactor float64
}

// HeteroStaticVsDynamic reproduces the motivation of §IV-D: on a cluster
// where a quarter of the nodes compute 3x slower, a static equal split
// strands work on the slow nodes, while Opass's dynamic scheduler lets fast
// workers steal — without giving up locality for the tasks that stay put.
func HeteroStaticVsDynamic(cfg Config) (*HeteroResult, error) {
	nodes := cfg.scale(64)
	slow := nodes / 4
	const slowFactor = 3.0
	factor := func(proc int) float64 {
		if proc < slow {
			return slowFactor
		}
		return 1
	}
	run := func(mode string) (StrategyResult, error) {
		rig, err := workload.DynamicSpec{
			Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed,
			ComputeMean: 1.0, ComputeSigma: 0.5,
		}.Build()
		if err != nil {
			return StrategyResult{}, err
		}
		planner := core.SingleData{Seed: cfg.Seed}
		if mode == "weighted" {
			// "Load capacity" weights: a node that computes 3x slower
			// receives a third of the share.
			weights := make([]float64, nodes)
			for i := range weights {
				weights[i] = 1 / factor(i)
			}
			planner.Weights = weights
		}
		plan, err := planner.Assign(rig.Prob)
		if err != nil {
			return StrategyResult{}, err
		}
		var src engine.TaskSource
		name := "opass-static-" + mode
		if mode == "dynamic" {
			sched, err := core.NewDynamicScheduler(rig.Prob, plan)
			if err != nil {
				return StrategyResult{}, err
			}
			src = sched
			name = "opass-dynamic"
		} else {
			src = engine.NewListSource(plan.Lists)
		}
		res, err := engine.Run(engine.Options{
			Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob,
			ComputeTime: rig.Compute, ComputeFactor: factor, Strategy: name,
		}, src)
		if err != nil {
			return StrategyResult{}, err
		}
		return strategyResult(nodes, res), nil
	}
	st, err := run("equal")
	if err != nil {
		return nil, err
	}
	wt, err := run("weighted")
	if err != nil {
		return nil, err
	}
	dy, err := run("dynamic")
	if err != nil {
		return nil, err
	}
	return &HeteroResult{Static: st, Weighted: wt, Dynamic: dy, SlowNodes: slow, SlowFactor: slowFactor}, nil
}

// Render prints the heterogeneous comparison.
func (r *HeteroResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — heterogeneous cluster (§IV-D motivation): %d of %d nodes compute %.0fx slower\n",
		r.SlowNodes, r.Static.Nodes, r.SlowFactor)
	fmt.Fprintf(&b, "  static equal lists    : makespan %6.1fs  local %5.1f%%\n", r.Static.Makespan, 100*r.Static.Local)
	fmt.Fprintf(&b, "  static capacity-weighted: makespan %5.1fs  local %5.1f%%\n", r.Weighted.Makespan, 100*r.Weighted.Local)
	fmt.Fprintf(&b, "  dynamic (§IV-D)       : makespan %6.1fs  local %5.1f%%\n", r.Dynamic.Makespan, 100*r.Dynamic.Local)
	fmt.Fprintf(&b, "  speedup over equal static: weighted %.2fx, dynamic %.2fx\n",
		r.Static.Makespan/r.Weighted.Makespan, r.Static.Makespan/r.Dynamic.Makespan)
	return b.String()
}

// GreedyQualityRow is one size point of the greedy-vs-flow trade-off.
type GreedyQualityRow struct {
	Procs, Tasks     int
	FlowLocal        float64
	GreedyLocal      float64
	FlowWall         time.Duration
	GreedyWall       time.Duration
	QualityRetention float64 // greedy locality / flow locality
}

// GreedyVsFlow measures the scalable heuristic planner against the optimal
// flow planner across problem sizes — the §V-C2 future-work trade-off.
func GreedyVsFlow(cfg Config, sizes []int) ([]GreedyQualityRow, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32, 64, 128}
	}
	var rows []GreedyQualityRow
	for _, nodes := range sizes {
		rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed}.Build()
		if err != nil {
			return nil, err
		}
		row := GreedyQualityRow{Procs: nodes, Tasks: len(rig.Prob.Tasks)}
		start := time.Now()
		flow, err := (core.SingleData{Seed: cfg.Seed}).Assign(rig.Prob)
		if err != nil {
			return nil, err
		}
		row.FlowWall = time.Since(start)
		start = time.Now()
		greedy, err := (core.GreedyLocality{Seed: cfg.Seed}).Assign(rig.Prob)
		if err != nil {
			return nil, err
		}
		row.GreedyWall = time.Since(start)
		row.FlowLocal = flow.LocalityFraction()
		row.GreedyLocal = greedy.LocalityFraction()
		if row.FlowLocal > 0 {
			row.QualityRetention = row.GreedyLocal / row.FlowLocal
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderGreedy prints the greedy-vs-flow rows.
func RenderGreedy(rows []GreedyQualityRow) string {
	var b strings.Builder
	b.WriteString("Extension — greedy heuristic vs optimal flow planner (§V-C2 future work)\n")
	fmt.Fprintf(&b, "%6s %7s %12s %12s %10s %10s %9s\n",
		"procs", "tasks", "flow wall", "greedy wall", "flow loc", "greedy loc", "retained")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %7d %12s %12s %9.1f%% %9.1f%% %8.1f%%\n",
			r.Procs, r.Tasks, r.FlowWall, r.GreedyWall,
			100*r.FlowLocal, 100*r.GreedyLocal, 100*r.QualityRetention)
	}
	return b.String()
}
