package experiments

import (
	"strings"
	"testing"
)

func TestDynamicStrategiesOrdering(t *testing.T) {
	r, err := DynamicStrategies(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Locality: both locality-aware masters far above random; delay may
	// edge out Opass by a hair (it maximizes per-dispatch locality at the
	// cost of balance), so only a small deficit is tolerated.
	if r.Delay.Local <= r.Random.Local {
		t.Fatalf("delay locality %v <= random %v", r.Delay.Local, r.Random.Local)
	}
	if r.Opass.Local < r.Delay.Local-0.05 {
		t.Fatalf("opass locality %v far below delay %v", r.Opass.Local, r.Delay.Local)
	}
	// Both locality-aware masters must beat the random master decisively on
	// makespan; Opass and delay trade places within noise at reduced scale
	// (at paper scale Opass's pre-balanced lists win — see EXPERIMENTS.md),
	// so only parity is asserted here.
	if r.Opass.Makespan > 0.8*r.Random.Makespan || r.Delay.Makespan > 0.8*r.Random.Makespan {
		t.Fatalf("locality-aware masters not clearly faster: random %v delay %v opass %v",
			r.Random.Makespan, r.Delay.Makespan, r.Opass.Makespan)
	}
	if r.Opass.Makespan > r.Delay.Makespan*1.15 {
		t.Fatalf("opass makespan %v far worse than delay %v", r.Opass.Makespan, r.Delay.Makespan)
	}
	if r.Opass.IO.Mean >= r.Random.IO.Mean {
		t.Fatal("opass mean I/O not better than random")
	}
	if !strings.Contains(r.Render(), "delay-scheduling") {
		t.Fatal("render missing delay row")
	}
}

func TestHeteroDynamicBeatsStatic(t *testing.T) {
	r, err := HeteroStaticVsDynamic(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Dynamic.Makespan >= r.Static.Makespan {
		t.Fatalf("dynamic makespan %v >= static %v on heterogeneous cluster",
			r.Dynamic.Makespan, r.Static.Makespan)
	}
	// Stealing necessarily sacrifices some locality; it must not collapse.
	if r.Dynamic.Local < 0.5 {
		t.Fatalf("dynamic locality collapsed to %v", r.Dynamic.Local)
	}
	if !strings.Contains(r.Render(), "speedup") {
		t.Fatal("render missing speedup")
	}
}

func TestGreedyVsFlowRows(t *testing.T) {
	rows, err := GreedyVsFlow(Config{Seed: 5}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GreedyLocal > r.FlowLocal+1e-9 {
			t.Fatalf("greedy %v beat the optimum %v", r.GreedyLocal, r.FlowLocal)
		}
		if r.QualityRetention < 0.85 {
			t.Fatalf("greedy retention %v below 85%%", r.QualityRetention)
		}
	}
	if !strings.Contains(RenderGreedy(rows), "retained") {
		t.Fatal("render missing header")
	}
}

func TestHeteroWeightedBeatsEqualStatic(t *testing.T) {
	r, err := HeteroStaticVsDynamic(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Capacity weighting moves work off slow nodes: faster than the equal
	// split while keeping a static schedule.
	if r.Weighted.Makespan >= r.Static.Makespan {
		t.Fatalf("weighted static %v not faster than equal static %v",
			r.Weighted.Makespan, r.Static.Makespan)
	}
	if !strings.Contains(r.Render(), "capacity-weighted") {
		t.Fatal("render missing weighted row")
	}
}
