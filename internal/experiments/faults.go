package experiments

import (
	"fmt"
	"strings"

	"opass/internal/core"
	"opass/internal/engine"
	"opass/internal/workload"
)

// FaultResult compares a healthy run against one with DataNode crashes.
type FaultResult struct {
	Healthy StrategyResult
	Faulty  StrategyResult
	// Crashes lists the injected failures; Retries counts reads that had to
	// fail over to another replica.
	Crashes []engine.NodeFailure
	Retries int
}

// FaultTolerance runs the single-data Opass workload while two DataNodes
// crash mid-job — an extension validating that the r-way replication HDFS
// provides "for the sake of reliability" (§I) composes with Opass's
// locality plan: the job completes, reads fail over, and only the crashed
// nodes' processes lose locality.
func FaultTolerance(cfg Config) (*FaultResult, error) {
	nodes := cfg.scale(64)
	crashes := []engine.NodeFailure{
		{Node: 1, At: 1.0},
		{Node: nodes / 2, At: 3.0},
	}
	run := func(failures []engine.NodeFailure, label string) (StrategyResult, int, error) {
		rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed}.Build()
		if err != nil {
			return StrategyResult{}, 0, err
		}
		a, err := (core.SingleData{Seed: cfg.Seed}).Assign(rig.Prob)
		if err != nil {
			return StrategyResult{}, 0, err
		}
		res, err := engine.RunAssignment(engine.Options{
			Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob,
			Strategy: label, Failures: failures,
		}, a)
		if err != nil {
			return StrategyResult{}, 0, err
		}
		return strategyResult(nodes, res), res.Retries, nil
	}
	healthy, _, err := run(nil, "opass")
	if err != nil {
		return nil, err
	}
	faulty, retries, err := run(crashes, "opass-2-crashes")
	if err != nil {
		return nil, err
	}
	return &FaultResult{Healthy: healthy, Faulty: faulty, Crashes: crashes, Retries: retries}, nil
}

// Render prints the fault-tolerance comparison.
func (r *FaultResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — fault tolerance: %d DataNode crashes mid-job (%d nodes)\n",
		len(r.Crashes), r.Healthy.Nodes)
	for _, c := range r.Crashes {
		fmt.Fprintf(&b, "  crash: node %d at t=%.1fs\n", c.Node, c.At)
	}
	fmt.Fprintf(&b, "  healthy: makespan %6.1fs  local %5.1f%%  reads %d\n",
		r.Healthy.Makespan, 100*r.Healthy.Local, len(r.Healthy.IOTimes))
	fmt.Fprintf(&b, "  faulty : makespan %6.1fs  local %5.1f%%  reads %d (%d failed over)\n",
		r.Faulty.Makespan, 100*r.Faulty.Local, len(r.Faulty.IOTimes), r.Retries)
	return b.String()
}
