package experiments

import (
	"fmt"
	"strings"
	"time"

	"opass/internal/analysis"
	"opass/internal/bipartite"
	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/metrics"
	"opass/internal/paraview"
	"opass/internal/workload"
)

// Fig3Result reproduces Figure 3 and the §III-A/§III-B quoted numbers.
type Fig3Result struct {
	// CDF[m][k] is P(X <= k) for each cluster size, k = 0..KMax.
	Sizes []int
	KMax  int
	// AsWritten uses the §III-A formula p = r/m; Quoted uses the 1/m
	// convention matching the probabilities printed in the paper.
	AsWritten map[int][]float64
	Quoted    map[int][]float64
	// PGreater5 is the quoted-convention P(X>5) per cluster size.
	PGreater5 map[int]float64
	// NodesAtMost1 / NodesAtLeast8 are the §III-B expected node counts for
	// n=512, r=3, m=128.
	NodesAtMost1  float64
	NodesAtLeast8 float64
	// MonteCarlo cross-checks for m=128.
	MC analysis.MonteCarloResult
}

// Fig3 computes the §III analytical results with a Monte-Carlo
// cross-check.
func Fig3(cfg Config) *Fig3Result {
	sizes := []int{64, 128, 256, 512}
	const n, r, kMax = 512, 3, 20
	out := &Fig3Result{
		Sizes:     sizes,
		KMax:      kMax,
		AsWritten: map[int][]float64{},
		Quoted:    map[int][]float64{},
		PGreater5: map[int]float64{},
	}
	for _, m := range sizes {
		p := analysis.LocalReadParams{Chunks: n, Replication: r, Nodes: m}
		aw := make([]float64, kMax+1)
		q := make([]float64, kMax+1)
		for k := 0; k <= kMax; k++ {
			aw[k] = analysis.LocalReadCDF(p, k)
			q[k] = analysis.LocalReadCDFQuoted(p, k)
		}
		out.AsWritten[m] = aw
		out.Quoted[m] = q
		out.PGreater5[m] = 1 - q[5]
	}
	p128 := analysis.LocalReadParams{Chunks: n, Replication: r, Nodes: 128}
	out.NodesAtMost1 = analysis.ExpectedNodesServingAtMost(p128, 1)
	out.NodesAtLeast8 = analysis.ExpectedNodesServingAtLeast(p128, 8)
	out.MC = analysis.MonteCarlo(p128, 200, kMax, cfg.Seed)
	return out
}

// Render prints the Figure 3 CDF table and the quoted §III numbers.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3 — CDF of chunks read locally (n=512, r=3)\n")
	fmt.Fprintf(&b, "%4s", "k")
	for _, m := range r.Sizes {
		fmt.Fprintf(&b, "  m=%-6d", m)
	}
	b.WriteString("\n")
	for k := 0; k <= r.KMax; k += 2 {
		fmt.Fprintf(&b, "%4d", k)
		for _, m := range r.Sizes {
			fmt.Fprintf(&b, "  %8.4f", r.Quoted[m][k])
		}
		b.WriteString("\n")
	}
	b.WriteString("\n§III-A quoted probabilities, P(X>5):\n")
	paper := map[int]string{64: "81.09%", 128: "21.43%", 256: "1.64%", 512: "0.46%"}
	for _, m := range r.Sizes {
		fmt.Fprintf(&b, "  m=%-4d measured %6.2f%%   paper %s\n", m, 100*r.PGreater5[m], paper[m])
	}
	fmt.Fprintf(&b, "\n§III-B expected node counts (n=512, r=3, m=128):\n")
	fmt.Fprintf(&b, "  nodes serving <=1 chunk: %5.1f   paper: 11\n", r.NodesAtMost1)
	fmt.Fprintf(&b, "  nodes serving >=8 chunks: %4.1f   paper: 6\n", r.NodesAtLeast8)
	fmt.Fprintf(&b, "\nMonte-Carlo cross-check (m=128): mean chunks read locally %.2f (analytic %.2f)\n",
		r.MC.MeanLocal, 512.0*3/128)
	return b.String()
}

// Fig12Result holds the ParaView experiment.
type Fig12Result struct {
	Stock *paraview.PipelineResult
	Opass *paraview.PipelineResult
	// Call time summaries — the paper quotes mean 5.48 s (sd 1.339) stock
	// vs 3.07 s (sd 0.316) with Opass, totals 167 s vs 98 s.
	StockIO metrics.Summary
	OpassIO metrics.Summary
}

// Fig12 reproduces the §V-B ParaView experiment.
func Fig12(cfg Config) (*Fig12Result, error) {
	nodes := cfg.scale(64)
	blocks := 10 * nodes // 640 blocks at paper scale
	run := func(as core.Assigner) (*paraview.PipelineResult, error) {
		topo := cluster.New(nodes, cluster.Marmot())
		fs := dfs.New(topo, dfs.Config{Seed: cfg.Seed})
		ds, err := paraview.CreateDataset(fs, "/protein", blocks, 56)
		if err != nil {
			return nil, err
		}
		c := paraview.DefaultConfig(as)
		c.BlocksPerStep = nodes // 64 datasets per rendering at paper scale
		return paraview.RunPipeline(topo, fs, ds, c)
	}
	stock, err := run(core.RankStatic{})
	if err != nil {
		return nil, err
	}
	op, err := run(core.SingleData{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &Fig12Result{
		Stock:   stock,
		Opass:   op,
		StockIO: metrics.Summarize(stock.CallTimes),
		OpassIO: metrics.Summarize(op.CallTimes),
	}, nil
}

// Render prints the Figure 12 comparison.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12 — ParaView vtkFileSeriesReader call times\n")
	fmt.Fprintf(&b, "  without Opass: mean=%.2fs sd=%.3f min=%.2fs max=%.2fs   (paper: 5.48s sd 1.339)\n",
		r.StockIO.Mean, r.StockIO.StdDev, r.StockIO.Min, r.StockIO.Max)
	fmt.Fprintf(&b, "  with    Opass: mean=%.2fs sd=%.3f min=%.2fs max=%.2fs   (paper: 3.07s sd 0.316)\n",
		r.OpassIO.Mean, r.OpassIO.StdDev, r.OpassIO.Min, r.OpassIO.Max)
	fmt.Fprintf(&b, "  total execution: %.0fs vs %.0fs with Opass   (paper: 167s vs 98s)\n",
		r.Stock.TotalSeconds, r.Opass.TotalSeconds)
	return b.String()
}

// OverheadResult quantifies §V-C1: the matching overhead relative to the
// data access it optimizes.
type OverheadResult struct {
	Nodes, Tasks   int
	PlannerWall    time.Duration
	SimulatedIO    float64 // total simulated read seconds moved by the job
	OverheadRatio  float64 // planner wall seconds / simulated I/O seconds
	LocalityGained float64
}

// Overhead measures the planner's wall-clock cost against the simulated
// I/O time of the job it plans, as §V-C1 does ("the overhead created by
// the matching method was less than 1% of the overhead involved with
// accessing the whole dataset").
func Overhead(cfg Config) (*OverheadResult, error) {
	nodes := cfg.scale(64)
	rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed}.Build()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	a, err := (core.SingleData{Seed: cfg.Seed}).Assign(rig.Prob)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	res, err := runSingle(nodes, 10, cfg.Seed, core.SingleData{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	out := &OverheadResult{
		Nodes:          nodes,
		Tasks:          len(rig.Prob.Tasks),
		PlannerWall:    wall,
		SimulatedIO:    res.IO.Sum,
		LocalityGained: a.LocalityFraction(),
	}
	if out.SimulatedIO > 0 {
		out.OverheadRatio = wall.Seconds() / out.SimulatedIO
	}
	return out, nil
}

// Render prints the overhead report.
func (r *OverheadResult) Render() string {
	return fmt.Sprintf("§V-C1 — planner overhead: %d procs x %d tasks: matching %.3f ms vs %.0f s of data access (%.4f%%, paper: <1%%)\n",
		r.Nodes, r.Tasks, float64(r.PlannerWall.Microseconds())/1000, r.SimulatedIO, 100*r.OverheadRatio)
}

// ScaleRow is one planner-scalability measurement.
type ScaleRow struct {
	Procs, Tasks int
	EKWall       time.Duration
	DinicWall    time.Duration
	KuhnWall     time.Duration
	Algorithm1   time.Duration
}

// PlannerScale measures planner wall time across problem sizes (§V-C2 and
// the Edmonds-Karp vs Dinic ablation).
func PlannerScale(cfg Config, sizes []int) ([]ScaleRow, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32, 64, 128}
	}
	var rows []ScaleRow
	for _, nodes := range sizes {
		rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed}.Build()
		if err != nil {
			return nil, err
		}
		row := ScaleRow{Procs: nodes, Tasks: len(rig.Prob.Tasks)}
		start := time.Now()
		if _, err := (core.SingleData{Algorithm: bipartite.EdmondsKarp, Seed: cfg.Seed}).Assign(rig.Prob); err != nil {
			return nil, err
		}
		row.EKWall = time.Since(start)
		start = time.Now()
		if _, err := (core.SingleData{Algorithm: bipartite.Dinic, Seed: cfg.Seed}).Assign(rig.Prob); err != nil {
			return nil, err
		}
		row.DinicWall = time.Since(start)
		start = time.Now()
		if _, err := (core.SingleData{Algorithm: bipartite.Kuhn, Seed: cfg.Seed}).Assign(rig.Prob); err != nil {
			return nil, err
		}
		row.KuhnWall = time.Since(start)

		multi, err := workload.MultiSpec{Nodes: nodes, TasksPerProc: 10, Seed: cfg.Seed}.Build()
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if _, err := (core.MultiData{Seed: cfg.Seed}).Assign(multi.Prob); err != nil {
			return nil, err
		}
		row.Algorithm1 = time.Since(start)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScale prints planner scalability rows.
func RenderScale(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("§V-C2 — planner wall time vs problem size\n")
	fmt.Fprintf(&b, "%6s %7s %12s %12s %12s %12s\n", "procs", "tasks", "flow(EK)", "flow(Dinic)", "match(Kuhn)", "algorithm1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %7d %12s %12s %12s %12s\n", r.Procs, r.Tasks, r.EKWall, r.DinicWall, r.KuhnWall, r.Algorithm1)
	}
	return b.String()
}

// PlacementAblation compares Opass on skewed placement (late-joining empty
// nodes) with and without running the balancer first — the §IV-B discussion
// of non-full matchings.
type PlacementAblation struct {
	Skewed   StrategyResult
	Balanced StrategyResult
	// PlannedLocalitySkewed/Balanced are the planner's achievable locality
	// in each layout.
	PlannedLocalitySkewed   float64
	PlannedLocalityBalanced float64
}

// AblationPlacement runs the placement-skew ablation.
func AblationPlacement(cfg Config) (*PlacementAblation, error) {
	nodes := cfg.scale(64)
	late := nodes / 4
	run := func(balance bool) (StrategyResult, float64, error) {
		rig, err := workload.SkewedSpec{
			Nodes: nodes, LateNodes: late, ChunksPerProc: 10,
			Seed: cfg.Seed, RunBalancer: balance,
		}.Build()
		if err != nil {
			return StrategyResult{}, 0, err
		}
		a, err := (core.SingleData{Seed: cfg.Seed}).Assign(rig.Prob)
		if err != nil {
			return StrategyResult{}, 0, err
		}
		res, err := runAssignment(rig, a, "opass")
		if err != nil {
			return StrategyResult{}, 0, err
		}
		return strategyResult(nodes, res), a.LocalityFraction(), nil
	}
	skew, pl1, err := run(false)
	if err != nil {
		return nil, err
	}
	bal, pl2, err := run(true)
	if err != nil {
		return nil, err
	}
	return &PlacementAblation{
		Skewed: skew, Balanced: bal,
		PlannedLocalitySkewed: pl1, PlannedLocalityBalanced: pl2,
	}, nil
}

// Render prints the placement ablation.
func (r *PlacementAblation) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — skewed placement (¼ of nodes joined after write)\n")
	fmt.Fprintf(&b, "  skewed:   planned locality %.1f%%, executed %.1f%%, makespan %.1fs, jain %.3f\n",
		100*r.PlannedLocalitySkewed, 100*r.Skewed.Local, r.Skewed.Makespan, r.Skewed.Fairness)
	fmt.Fprintf(&b, "  balanced: planned locality %.1f%%, executed %.1f%%, makespan %.1fs, jain %.3f\n",
		100*r.PlannedLocalityBalanced, 100*r.Balanced.Local, r.Balanced.Makespan, r.Balanced.Fairness)
	return b.String()
}

// runAssignment executes a prepared assignment on a rig.
func runAssignment(rig *workload.Rig, a *core.Assignment, name string) (*engine.Result, error) {
	return engine.RunAssignment(engine.Options{
		Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob, Strategy: name,
	}, a)
}
