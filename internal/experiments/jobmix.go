package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/globalsched"
	"opass/internal/metrics"
)

// The jobmix experiment quantifies ROADMAP item 1: a staggered mix of
// tenant jobs, each owning a window of the cluster's nodes, planned either
// in isolation (every job pretends the cluster is empty — §V-C1's collision
// scenario) or by the cluster-level scheduler (each arrival planned against
// residual node capacity). Because each tenant's processes sit on an
// overlapping window of nodes, isolated plans pile every job's local reads
// onto the contended overlap while the windowless nodes idle; the scheduler
// trades some of that locality for global service balance.

// Tuning constants for the jobmix workload shape.
const (
	// jobMixJobs is the number of staggered tenant jobs.
	jobMixJobs = 6
	// jobMixChunksPerProc sizes each job's dataset (64 MB chunks).
	jobMixChunksPerProc = 6
	// jobMixBalance is the scheduler's locality-vs-balance knob for the
	// scheduled side. 0.5 was tuned on the committed BENCH series: enough
	// quota contrast to spread ownership across the window, low enough
	// that the ~1% locality loss does not cost aggregate throughput. Most
	// of the spread win comes from the serving-side balancer (the
	// least-served remote-replica pick), which biasing alone cannot
	// reach — see engine.ServingBalancer.
	jobMixBalance = 0.5
	// jobMixStaggerFrac staggers arrivals by this fraction of one job's
	// uncontended read time, so the mix overlaps heavily but not fully.
	jobMixStaggerFrac = 0.4
)

// JobMixSide aggregates one side (isolated or scheduled) of the study.
type JobMixSide struct {
	Label string `json:"label"`
	// ThroughputMBps is total megabytes served over the time from the first
	// arrival to the last completion.
	ThroughputMBps float64 `json:"throughput_mbps"`
	// JobMakespans are per-job completion-minus-arrival times (seconds).
	JobMakespans []float64 `json:"job_makespans_s"`
	// MakespanMean / MakespanMax summarize the per-job makespans; Max is
	// the tail a tenant in the mix can observe.
	MakespanMean float64 `json:"makespan_mean_s"`
	MakespanMax  float64 `json:"makespan_max_s"`
	// ServedMB is the cluster-wide per-node service load summed over jobs;
	// SpreadMB is its max minus min and MaxMinRatio its max over min
	// (0 when some node served nothing).
	ServedMB    []float64 `json:"-"`
	SpreadMB    float64   `json:"spread_mb"`
	MaxMinRatio float64   `json:"maxmin_ratio"`
	// Fairness is Jain's index over the summed per-node load.
	Fairness float64 `json:"fairness"`
	// Local is the fraction of bytes read from the reader's own disk.
	Local float64 `json:"local_fraction"`
}

// JobMixResult contrasts isolated per-job plans with globally-scheduled
// plans over the same placement and arrival pattern.
type JobMixResult struct {
	Nodes   int     `json:"nodes"`
	Jobs    int     `json:"jobs"`
	Window  int     `json:"window"`
	Balance float64 `json:"balance"`
	StagerS float64 `json:"stagger_s"`

	Isolated  JobMixSide `json:"isolated"`
	Scheduled JobMixSide `json:"scheduled"`

	// SpreadGain is Isolated.SpreadMB / Scheduled.SpreadMB (higher is
	// better for the scheduler); ThroughputRatio is
	// Scheduled.ThroughputMBps / Isolated.ThroughputMBps.
	SpreadGain      float64 `json:"spread_gain"`
	ThroughputRatio float64 `json:"throughput_ratio"`
}

// jobMixRig is one freshly built mix: shared topology/fs plus per-job
// problems and arrival times. Both sides build their own from the same seed
// so the placement is identical (paired comparison).
type jobMixRig struct {
	topo     *cluster.Topology
	fs       *dfs.FileSystem
	probs    []*core.Problem
	arrivals []float64
}

func buildJobMixRig(nodes, jobs int, seed int64) (*jobMixRig, error) {
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed})
	window := nodes / 2
	if window < 2 {
		window = 2
	}
	stride := nodes / jobs
	if stride < 1 {
		stride = 1
	}
	stagger := jobMixStaggerFrac * float64(jobMixChunksPerProc) * topo.UncontendedLocalRead(64)
	rig := &jobMixRig{topo: topo, fs: fs}
	for j := 0; j < jobs; j++ {
		name := fmt.Sprintf("/job%d", j)
		if _, err := fs.Create(name, float64(window*jobMixChunksPerProc)*64); err != nil {
			return nil, err
		}
		procs := make([]int, window)
		for i := range procs {
			procs[i] = (j*stride + i) % nodes
		}
		prob, err := core.SingleDataProblem(fs, []string{name}, procs)
		if err != nil {
			return nil, err
		}
		rig.probs = append(rig.probs, prob)
		rig.arrivals = append(rig.arrivals, float64(j)*stagger)
	}
	return rig, nil
}

// JobMixWindow reports the per-job process window used at this node count
// (exported for the invariant tests).
func JobMixWindow(nodes int) int {
	w := nodes / 2
	if w < 2 {
		w = 2
	}
	return w
}

// JobMix runs the isolated-vs-scheduled study.
func JobMix(cfg Config) (*JobMixResult, error) {
	nodes := cfg.scale(64)
	out := &JobMixResult{
		Nodes:   nodes,
		Jobs:    jobMixJobs,
		Window:  JobMixWindow(nodes),
		Balance: jobMixBalance,
	}

	// Isolated: every job planned against an empty cluster.
	iso, err := buildJobMixRig(nodes, jobMixJobs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	out.StagerS = iso.arrivals[1] - iso.arrivals[0]
	isoSpecs := make([]engine.JobSpec, jobMixJobs)
	for j, prob := range iso.probs {
		a, err := (core.SingleData{Seed: cfg.Seed + int64(j)}).Assign(prob)
		if err != nil {
			return nil, err
		}
		isoSpecs[j] = engine.JobSpec{
			Problem:  prob,
			Source:   engine.NewListSource(a.Lists),
			Strategy: "isolated",
			StartAt:  iso.arrivals[j],
		}
	}
	isoRes, err := engine.RunJobs(iso.topo, iso.fs, isoSpecs)
	if err != nil {
		return nil, err
	}
	out.Isolated = jobMixSide("isolated", nodes, isoRes)

	// Scheduled: identical placement, but each arrival is planned by the
	// cluster-level scheduler against the residual load.
	sch, err := buildJobMixRig(nodes, jobMixJobs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gs, err := globalsched.New(nodes, globalsched.Options{Balance: jobMixBalance, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	schSpecs := make([]engine.JobSpec, jobMixJobs)
	for j, prob := range sch.probs {
		schSpecs[j] = engine.JobSpec{
			Problem:  prob,
			Strategy: "globalsched",
			StartAt:  sch.arrivals[j],
		}
	}
	schRes, err := engine.RunJobsScheduled(context.Background(), sch.topo, sch.fs, schSpecs, gs)
	if err != nil {
		return nil, err
	}
	out.Scheduled = jobMixSide("globalsched", nodes, schRes)

	if out.Scheduled.SpreadMB > 0 {
		out.SpreadGain = out.Isolated.SpreadMB / out.Scheduled.SpreadMB
	}
	if out.Isolated.ThroughputMBps > 0 {
		out.ThroughputRatio = out.Scheduled.ThroughputMBps / out.Isolated.ThroughputMBps
	}
	return out, nil
}

// jobMixSide folds per-job results into one side's aggregates.
func jobMixSide(label string, nodes int, results []*engine.Result) JobMixSide {
	side := JobMixSide{Label: label, ServedMB: make([]float64, nodes)}
	var endTime, totalMB, localMB float64
	for _, res := range results {
		jm := res.JobMakespan()
		side.JobMakespans = append(side.JobMakespans, jm)
		side.MakespanMean += jm
		if jm > side.MakespanMax {
			side.MakespanMax = jm
		}
		if res.Makespan > endTime {
			endTime = res.Makespan
		}
		for n, mb := range res.ServedMB {
			side.ServedMB[n] += mb
		}
		for _, rec := range res.Records {
			totalMB += rec.SizeMB
			if rec.Local {
				localMB += rec.SizeMB
			}
		}
	}
	if len(results) > 0 {
		side.MakespanMean /= float64(len(results))
	}
	if endTime > 0 {
		side.ThroughputMBps = totalMB / endTime
	}
	if totalMB > 0 {
		side.Local = localMB / totalMB
	}
	maxMB, minMB := math.Inf(-1), math.Inf(1)
	for _, mb := range side.ServedMB {
		maxMB = math.Max(maxMB, mb)
		minMB = math.Min(minMB, mb)
	}
	side.SpreadMB = maxMB - minMB
	if minMB > 0 {
		side.MaxMinRatio = maxMB / minMB
	}
	side.Fairness = metrics.JainIndex(side.ServedMB)
	return side
}

// Render prints the study.
func (r *JobMixResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — job-mix scheduling (ROADMAP 1): %d staggered jobs on %d nodes (window %d, stagger %.1fs, balance %.2f)\n",
		r.Jobs, r.Nodes, r.Window, r.StagerS, r.Balance)
	row := func(s JobMixSide) {
		fmt.Fprintf(&b, "  %-12s: throughput %7.1f MB/s  job makespan mean %6.1fs max %6.1fs  served/node spread %6.0f MB (max/min %.2f, jain %.3f)  local %5.1f%%\n",
			s.Label, s.ThroughputMBps, s.MakespanMean, s.MakespanMax, s.SpreadMB, s.MaxMinRatio, s.Fairness, 100*s.Local)
	}
	row(r.Isolated)
	row(r.Scheduled)
	fmt.Fprintf(&b, "  global scheduling: %.2fx tighter service spread at %.2fx throughput\n",
		r.SpreadGain, r.ThroughputRatio)
	return b.String()
}
