package experiments

import (
	"context"
	"math"
	"reflect"
	"testing"

	"opass/internal/engine"
	"opass/internal/globalsched"
)

// TestJobMixInvariants runs the scheduled side of the jobmix study at a
// small scale and checks it chaos-style: every task of every job executes
// exactly once, the per-job service profiles sum to what the reads say the
// cluster served, and the shared network drains back to idle.
func TestJobMixInvariants(t *testing.T) {
	const nodes = 16
	rig, err := buildJobMixRig(nodes, jobMixJobs, 31)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := globalsched.New(nodes, globalsched.Options{Balance: jobMixBalance, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]engine.JobSpec, jobMixJobs)
	for j, prob := range rig.probs {
		specs[j] = engine.JobSpec{Problem: prob, Strategy: "globalsched", StartAt: rig.arrivals[j]}
	}
	results, err := engine.RunJobsScheduled(context.Background(), rig.topo, rig.fs, specs, gs)
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.topo.Net().Active(); got != 0 {
		t.Fatalf("network has %d active flows after the mix drained", got)
	}
	clusterServed := make([]float64, nodes)
	for j, res := range results {
		prob := rig.probs[j]
		if res.TasksRun != len(prob.Tasks) {
			t.Fatalf("job %d ran %d tasks, want %d", j, res.TasksRun, len(prob.Tasks))
		}
		seen := make([]int, len(prob.Tasks))
		fromRecords := make([]float64, nodes)
		for _, rec := range res.Records {
			seen[rec.Task]++
			fromRecords[rec.SrcNode] += rec.SizeMB
			if !rig.fs.Chunk(rec.Chunk).HostedOn(rec.SrcNode) {
				t.Fatalf("job %d read chunk %d from node %d, which holds no replica", j, rec.Chunk, rec.SrcNode)
			}
		}
		for task, n := range seen {
			if n != 1 {
				t.Fatalf("job %d task %d executed %d times", j, task, n)
			}
		}
		// The job's ServedMB accounting must agree with its read records.
		for n := range fromRecords {
			if math.Abs(fromRecords[n]-res.ServedMB[n]) > 1e-6 {
				t.Fatalf("job %d served[%d] = %v, records say %v", j, n, res.ServedMB[n], fromRecords[n])
			}
			clusterServed[n] += fromRecords[n]
		}
	}
	// With every job drained the scheduler's reconciled load is exactly the
	// cluster's actual service profile.
	load := gs.Load()
	for n := range clusterServed {
		if math.Abs(load[n]-clusterServed[n]) > 1e-6 {
			t.Fatalf("scheduler load[%d] = %v, cluster served %v", n, load[n], clusterServed[n])
		}
	}
}

// TestJobMixScheduledDeterministic replays the scheduled mix twice from the
// same seed and demands byte-identical per-job results — the scheduler,
// serving balancer and engine must all be free of run-order randomness.
func TestJobMixScheduledDeterministic(t *testing.T) {
	const nodes = 16
	run := func() []*engine.Result {
		rig, err := buildJobMixRig(nodes, jobMixJobs, 32)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := globalsched.New(nodes, globalsched.Options{Balance: jobMixBalance, Seed: 32})
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]engine.JobSpec, jobMixJobs)
		for j, prob := range rig.probs {
			specs[j] = engine.JobSpec{Problem: prob, Strategy: "globalsched", StartAt: rig.arrivals[j]}
		}
		results, err := engine.RunJobsScheduled(context.Background(), rig.topo, rig.fs, specs, gs)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	first, second := run(), run()
	for j := range first {
		if !reflect.DeepEqual(first[j], second[j]) {
			t.Fatalf("job %d differs between identical scheduled runs", j)
		}
	}
}

// TestJobMixExperiment runs the full study small and checks the report's
// internal consistency.
func TestJobMixExperiment(t *testing.T) {
	r, err := JobMix(Config{Seed: 33, Scale: 4}) // 16 nodes
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 16 || r.Window != JobMixWindow(16) || r.Jobs != jobMixJobs {
		t.Fatalf("unexpected shape: %+v", r)
	}
	for _, side := range []JobMixSide{r.Isolated, r.Scheduled} {
		if side.ThroughputMBps <= 0 {
			t.Fatalf("%s throughput = %v", side.Label, side.ThroughputMBps)
		}
		if len(side.JobMakespans) != jobMixJobs {
			t.Fatalf("%s has %d makespans", side.Label, len(side.JobMakespans))
		}
		for j, jm := range side.JobMakespans {
			if jm <= 0 {
				t.Fatalf("%s job %d makespan = %v", side.Label, j, jm)
			}
		}
		if side.MakespanMax < side.MakespanMean {
			t.Fatalf("%s makespan max %v below mean %v", side.Label, side.MakespanMax, side.MakespanMean)
		}
		if side.Fairness <= 0 || side.Fairness > 1 {
			t.Fatalf("%s Jain index = %v", side.Label, side.Fairness)
		}
		var total float64
		for _, mb := range side.ServedMB {
			total += mb
		}
		if total <= 0 {
			t.Fatalf("%s served nothing", side.Label)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
