package experiments

import (
	"fmt"
	"strings"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
)

// RackRow is one cell of the rack-topology study.
type RackRow struct {
	Placement string
	Strategy  string
	Makespan  float64
	AvgIO     float64
	Local     float64
	// CrossRack is the fraction of bytes that crossed the oversubscribed
	// rack uplinks.
	CrossRack float64
}

// RackStudyResult holds the oversubscribed-fabric experiment.
type RackStudyResult struct {
	Nodes, Racks int
	UplinkMBps   float64
	Rows         []RackRow
}

// RackTopology extends the paper's single-switch setting to a multi-rack
// fabric with 4:1 oversubscribed uplinks. Two findings: rack-aware
// placement does NOT help the locality-oblivious baseline's reads — by
// concentrating replicas in two racks it makes a random reader's rack hold
// a copy less often than fully random placement does (the policy optimizes
// writes and fault domains, not reads) — while Opass makes the fabric
// question moot: everything is node-local and the uplinks sit idle.
func RackTopology(cfg Config) (*RackStudyResult, error) {
	nodes := cfg.scale(64)
	racks := 4
	if nodes < 8 {
		racks = 2
	}
	perRack := nodes / racks
	// 4:1 oversubscription of the rack's aggregate NIC bandwidth.
	uplink := float64(perRack) * cluster.Marmot().NICMBps / 4

	out := &RackStudyResult{Nodes: nodes, Racks: racks, UplinkMBps: uplink}
	type combo struct {
		placementName string
		placement     dfs.Placement
		assigner      core.Assigner
	}
	combos := []combo{
		{"random", dfs.RandomPlacement{}, core.RankStatic{}},
		{"rack-aware", dfs.RackAwarePlacement{Writer: -1}, core.RankStatic{}},
		{"random", dfs.RandomPlacement{}, core.SingleData{Seed: cfg.Seed}},
		{"rack-aware", dfs.RackAwarePlacement{Writer: -1}, core.SingleData{Seed: cfg.Seed}},
	}
	for _, c := range combos {
		topo := cluster.NewRacked(nodes, racks, cluster.Marmot())
		topo.SetRackUplinks(uplink)
		fs := dfs.New(topo, dfs.Config{Seed: cfg.Seed, Placement: c.placement})
		if _, err := fs.Create("/dataset", float64(nodes*10*64)); err != nil {
			return nil, err
		}
		procNode := make([]int, nodes)
		for i := range procNode {
			procNode[i] = i
		}
		prob, err := core.SingleDataProblem(fs, []string{"/dataset"}, procNode)
		if err != nil {
			return nil, err
		}
		a, err := c.assigner.Assign(prob)
		if err != nil {
			return nil, err
		}
		res, err := engine.RunAssignment(engine.Options{
			Topo: topo, FS: fs, Problem: prob, Strategy: c.assigner.Name(),
		}, a)
		if err != nil {
			return nil, err
		}
		var cross, total float64
		for _, rec := range res.Records {
			total += rec.SizeMB
			if topo.RackOf(rec.SrcNode) != topo.RackOf(rec.DstNode) {
				cross += rec.SizeMB
			}
		}
		io := 0.0
		for _, d := range res.IOTimes() {
			io += d
		}
		out.Rows = append(out.Rows, RackRow{
			Placement: c.placementName,
			Strategy:  c.assigner.Name(),
			Makespan:  res.Makespan,
			AvgIO:     io / float64(len(res.Records)),
			Local:     res.LocalFraction(),
			CrossRack: cross / total,
		})
	}
	return out, nil
}

// Render prints the rack study grid.
func (r *RackStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — %d racks, 4:1 oversubscribed uplinks (%.0f MB/s each), %d nodes\n",
		r.Racks, r.UplinkMBps, r.Nodes)
	fmt.Fprintf(&b, "%-12s %-12s %10s %10s %8s %11s\n",
		"placement", "assignment", "makespan", "avg I/O", "local", "cross-rack")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-12s %9.1fs %9.2fs %7.1f%% %10.1f%%\n",
			row.Placement, row.Strategy, row.Makespan, row.AvgIO, 100*row.Local, 100*row.CrossRack)
	}
	return b.String()
}
