package experiments

import (
	"fmt"
	"strings"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
)

// RackRow is one cell of the rack-topology study.
type RackRow struct {
	Placement string  `json:"placement"`
	Strategy  string  `json:"strategy"`
	Makespan  float64 `json:"makespan"`
	AvgIO     float64 `json:"avg_io"`
	Local     float64 `json:"local"`
	// CrossRack is the fraction of bytes that crossed the oversubscribed
	// rack uplinks.
	CrossRack float64 `json:"cross_rack"`
}

// RackSweepRow is one arm of the makespan-vs-oversubscription sweep: a
// single matcher (rack-oblivious or rack-tiered) run at one uplink ratio
// over a placement identical to its counterpart's.
type RackSweepRow struct {
	// Ratio is the rack oversubscription (aggregate NIC : uplink), so 1
	// means a non-blocking fabric and 8 a heavily constrained one.
	Ratio    float64 `json:"ratio"`
	Matcher  string  `json:"matcher"`
	Makespan float64 `json:"makespan"`
	Local    float64 `json:"local"`
	// RackLocalMB / CrossRackMB split the remote bytes by rack boundary
	// (engine accounting; local reads count toward neither).
	RackLocalMB float64 `json:"rack_local_mb"`
	CrossRackMB float64 `json:"cross_rack_mb"`
}

// RackStudyResult holds the oversubscribed-fabric experiment.
type RackStudyResult struct {
	Nodes int `json:"nodes"`
	Racks int `json:"racks"`
	// UplinkMBps is rack 0's uplink bandwidth at the grid's 4:1
	// oversubscription (racks may differ slightly when nodes % racks != 0).
	UplinkMBps float64        `json:"uplink_mbps"`
	Rows       []RackRow      `json:"rows"`
	Sweep      []RackSweepRow `json:"sweep"`
}

// RackTopology extends the paper's single-switch setting to a multi-rack
// fabric with oversubscribed uplinks. The 4:1 grid shows two findings:
// rack-aware placement does NOT help the locality-oblivious baseline's
// reads — by concentrating replicas in two racks it makes a random reader's
// rack hold a copy less often than fully random placement does (the policy
// optimizes writes and fault domains, not reads) — while Opass makes the
// fabric question moot: everything is node-local and the uplinks sit idle.
//
// The sweep then isolates the graded locality tier: at each
// oversubscription ratio the rack-oblivious and rack-tiered SingleData
// matchers plan over byte-identical placements of unreplicated data (where
// full node-local matching is impossible), and the engine's rack byte split
// shows how much traffic the tier keeps off the uplinks.
func RackTopology(cfg Config) (*RackStudyResult, error) {
	nodes := cfg.scale(64)
	racks := 4
	if nodes < 8 {
		racks = 2
	}

	out := &RackStudyResult{Nodes: nodes, Racks: racks}
	type combo struct {
		placementName string
		placement     dfs.Placement
		assigner      core.Assigner
	}
	combos := []combo{
		{"random", dfs.RandomPlacement{}, core.RankStatic{}},
		{"rack-aware", dfs.RackAwarePlacement{Writer: -1}, core.RankStatic{}},
		{"random", dfs.RandomPlacement{}, core.SingleData{Seed: cfg.Seed}},
		{"rack-aware", dfs.RackAwarePlacement{Writer: -1}, core.SingleData{Seed: cfg.Seed}},
	}
	for _, c := range combos {
		topo := cluster.NewRacked(nodes, racks, cluster.Marmot())
		// Size each rack's uplink from its actual member count; with
		// nodes % racks != 0 a uniform nodes/racks sizing both truncates
		// and misattributes bandwidth across the uneven racks.
		topo.SetRackOversubscription(4)
		if out.UplinkMBps == 0 {
			for _, n := range topo.RackNodes(0) {
				out.UplinkMBps += topo.NodeProfile(n).NICMBps
			}
			out.UplinkMBps /= 4
		}
		fs := dfs.New(topo, dfs.Config{Seed: cfg.Seed, Placement: c.placement})
		if _, err := fs.Create("/dataset", float64(nodes*10*64)); err != nil {
			return nil, err
		}
		procNode := make([]int, nodes)
		for i := range procNode {
			procNode[i] = i
		}
		prob, err := core.SingleDataProblem(fs, []string{"/dataset"}, procNode)
		if err != nil {
			return nil, err
		}
		a, err := c.assigner.Assign(prob)
		if err != nil {
			return nil, err
		}
		res, err := engine.RunAssignment(engine.Options{
			Topo: topo, FS: fs, Problem: prob, Strategy: c.assigner.Name(),
		}, a)
		if err != nil {
			return nil, err
		}
		var cross, total float64
		for _, rec := range res.Records {
			total += rec.SizeMB
			if topo.RackOf(rec.SrcNode) != topo.RackOf(rec.DstNode) {
				cross += rec.SizeMB
			}
		}
		io := 0.0
		for _, d := range res.IOTimes() {
			io += d
		}
		avgIO, crossFrac := 0.0, 0.0
		if len(res.Records) > 0 {
			avgIO = io / float64(len(res.Records))
		}
		if total > 0 {
			crossFrac = cross / total
		}
		out.Rows = append(out.Rows, RackRow{
			Placement: c.placementName,
			Strategy:  c.assigner.Name(),
			Makespan:  res.Makespan,
			AvgIO:     avgIO,
			Local:     res.LocalFraction(),
			CrossRack: crossFrac,
		})
	}

	// Oversubscription sweep: rack-oblivious vs rack-tiered SingleData over
	// identical placement. The cluster has a storage tier — a quarter of
	// the nodes hold the unreplicated dataset on fast disks behind bonded
	// NICs — so three quarters of the reads are remote by construction and
	// the matchers differ exactly where the tier acts: the overflow either
	// lands on a process in the rack that holds the data (rack-local) or on
	// whichever process is idle (usually across an uplink).
	storage := nodes / 4
	if storage < racks {
		storage = racks
	}
	profiles := make([]cluster.Profile, nodes)
	for i := range profiles {
		profiles[i] = cluster.Marmot()
		if i < storage {
			profiles[i].DiskMBps = 300      // flash storage server
			profiles[i].DiskSeekPenalty = 0 // no head-seek interference
			profiles[i].NICMBps = 234       // 2x bonded NICs
		}
	}
	rows := make([][]int, nodes*10)
	for i := range rows {
		rows[i] = []int{i % storage}
	}
	for _, ratio := range []float64{1, 2, 4, 8} {
		for _, tiered := range []bool{false, true} {
			topo := cluster.NewHeterogeneousRacked(profiles, racks)
			topo.SetRackOversubscription(ratio)
			fs := dfs.New(topo, dfs.Config{
				Seed: cfg.Seed, Placement: dfs.FixedPlacement{Replicas: rows}, Replication: 1,
			})
			if _, err := fs.Create("/dataset", float64(nodes*10*64)); err != nil {
				return nil, err
			}
			procNode := make([]int, nodes)
			for i := range procNode {
				procNode[i] = i
			}
			prob, err := core.SingleDataProblem(fs, []string{"/dataset"}, procNode)
			if err != nil {
				return nil, err
			}
			matcher := "rack-oblivious"
			if tiered {
				prob.SetNodeRacksFromView(topo)
				matcher = "rack-tiered"
			}
			asg := core.SingleData{Seed: cfg.Seed}
			a, err := asg.Assign(prob)
			if err != nil {
				return nil, err
			}
			res, err := engine.RunAssignment(engine.Options{
				Topo: topo, FS: fs, Problem: prob, Strategy: asg.Name(),
			}, a)
			if err != nil {
				return nil, err
			}
			out.Sweep = append(out.Sweep, RackSweepRow{
				Ratio:       ratio,
				Matcher:     matcher,
				Makespan:    res.Makespan,
				Local:       res.LocalFraction(),
				RackLocalMB: res.RackLocalMB,
				CrossRackMB: res.CrossRackMB,
			})
		}
	}
	return out, nil
}

// Render prints the rack study grid and the oversubscription sweep.
func (r *RackStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — %d racks, 4:1 oversubscribed uplinks (%.0f MB/s each), %d nodes\n",
		r.Racks, r.UplinkMBps, r.Nodes)
	fmt.Fprintf(&b, "%-12s %-12s %10s %10s %8s %11s\n",
		"placement", "assignment", "makespan", "avg I/O", "local", "cross-rack")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-12s %9.1fs %9.2fs %7.1f%% %10.1f%%\n",
			row.Placement, row.Strategy, row.Makespan, row.AvgIO, 100*row.Local, 100*row.CrossRack)
	}
	if len(r.Sweep) > 0 {
		fmt.Fprintf(&b, "\nSweep — rack-oblivious vs rack-tiered matcher, storage tier, identical placement\n")
		fmt.Fprintf(&b, "%6s %-15s %10s %8s %13s %13s\n",
			"ratio", "matcher", "makespan", "local", "rack-local", "cross-rack")
		for _, row := range r.Sweep {
			fmt.Fprintf(&b, "%5.0f: %-15s %9.1fs %7.1f%% %10.0f MB %10.0f MB\n",
				row.Ratio, row.Matcher, row.Makespan, 100*row.Local, row.RackLocalMB, row.CrossRackMB)
		}
	}
	return b.String()
}
