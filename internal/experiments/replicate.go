package experiments

import (
	"fmt"
	"math"
	"strings"
)

// ReplicatedTrace aggregates a trace experiment over several seeds — the
// paper's "we run the tests 5 times" practice, which separates the
// qualitative shape from single-placement luck.
type ReplicatedTrace struct {
	Title string
	Runs  []*TraceResult
	// Per-seed improvement factors (baseline avg I/O / Opass avg I/O) and
	// their mean / standard deviation.
	Ratios    []float64
	RatioMean float64
	RatioSD   float64
	// Locality means across seeds.
	BaselineLocalMean float64
	OpassLocalMean    float64
}

// Replicate runs the trace experiment n times with seeds cfg.Seed,
// cfg.Seed+1, ... and aggregates the headline metrics.
func Replicate(f func(Config) (*TraceResult, error), cfg Config, n int) (*ReplicatedTrace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: replication count %d must be positive", n)
	}
	out := &ReplicatedTrace{}
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		r, err := f(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: replication %d: %w", i, err)
		}
		if out.Title == "" {
			out.Title = r.Title
		}
		out.Runs = append(out.Runs, r)
		ratio := r.AvgRatio()
		out.Ratios = append(out.Ratios, ratio)
		out.RatioMean += ratio
		out.BaselineLocalMean += r.Baseline.Local
		out.OpassLocalMean += r.Opass.Local
	}
	fn := float64(n)
	out.RatioMean /= fn
	out.BaselineLocalMean /= fn
	out.OpassLocalMean /= fn
	var ss float64
	for _, ratio := range out.Ratios {
		d := ratio - out.RatioMean
		ss += d * d
	}
	out.RatioSD = math.Sqrt(ss / fn)
	return out, nil
}

// Render prints the replicated summary.
func (r *ReplicatedTrace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d seeds\n", r.Title, len(r.Runs))
	fmt.Fprintf(&b, "  avg I/O improvement: %.2fx ± %.2f (per seed:", r.RatioMean, r.RatioSD)
	for _, ratio := range r.Ratios {
		fmt.Fprintf(&b, " %.2f", ratio)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  locality: baseline %.1f%%, opass %.1f%% (means)\n",
		100*r.BaselineLocalMean, 100*r.OpassLocalMean)
	return b.String()
}
