package experiments

import (
	"fmt"
	"strings"
)

// MarkdownReport runs every paper experiment at the configured scale and
// emits a paper-vs-measured markdown document — the machine-generated
// counterpart of EXPERIMENTS.md, suitable for regression archives
// (cmd/opass-report).
func MarkdownReport(cfg Config) (string, error) {
	var b strings.Builder
	b.WriteString("# Opass reproduction report\n\n")
	fmt.Fprintf(&b, "Configuration: seed %d, scale divisor %d (paper cluster sizes / %d).\n\n",
		cfg.Seed, max(1, cfg.Scale), max(1, cfg.Scale))

	// §III analytics.
	f3 := Fig3(cfg)
	b.WriteString("## §III analytical models\n\n")
	b.WriteString("| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| P(X>5), m=64 | 81.09%% | %.2f%% |\n", 100*f3.PGreater5[64])
	fmt.Fprintf(&b, "| P(X>5), m=128 | 21.43%% | %.2f%% |\n", 100*f3.PGreater5[128])
	fmt.Fprintf(&b, "| P(X>5), m=256 | 1.64%% | %.2f%% |\n", 100*f3.PGreater5[256])
	fmt.Fprintf(&b, "| E[nodes serving ≤1 chunk] (m=128) | 11 | %.1f |\n", f3.NodesAtMost1)
	fmt.Fprintf(&b, "| E[nodes serving ≥8 chunks] (m=128) | 6 | %.1f |\n\n", f3.NodesAtLeast8)

	// Figure 1.
	f1, err := Fig1(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString("## Figure 1 — motivating imbalance\n\n")
	b.WriteString("| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| max chunks served by one node | >6 | %d (model: %.1f) |\n", f1.MaxChunks, f1.PredictedMax)
	fmt.Fprintf(&b, "| idle nodes | \"some\" | %d |\n", f1.IdleNodes)
	fmt.Fprintf(&b, "| I/O time spread | \"vary greatly\" | %.1fx |\n\n", f1.Run.IO.Spread())

	// Figure 7c/8c.
	f7, err := Fig7cTrace(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString("## Figures 7c/8c — single-data trace\n\n")
	b.WriteString("| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| avg I/O improvement | ~4x | %.2fx |\n", f7.AvgRatio())
	fmt.Fprintf(&b, "| remote data without Opass | >90%% | %.1f%% |\n", 100*(1-f7.Baseline.Local))
	fmt.Fprintf(&b, "| Opass locality | ~100%% | %.1f%% |\n", 100*f7.Opass.Local)
	fmt.Fprintf(&b, "| served/node balance (Jain) | — | %.3f → %.3f |\n\n", f7.Baseline.Fairness, f7.Opass.Fairness)

	// Figure 9.
	f9, err := Fig9Trace(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString("## Figures 9/10 — multi-data trace\n\n")
	b.WriteString("| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| avg I/O improvement | ~2x | %.2fx |\n", f9.AvgRatio())
	fmt.Fprintf(&b, "| Opass locality (partial by design) | — | %.1f%% |\n\n", 100*f9.Opass.Local)

	// Figure 11.
	f11, err := Fig11Trace(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString("## Figure 11 — dynamic master/worker\n\n")
	b.WriteString("| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| avg I/O improvement | 2.7x | %.2fx |\n\n", f11.AvgRatio())

	// Figure 12.
	f12, err := Fig12(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString("## Figure 12 — ParaView\n\n")
	b.WriteString("| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| stock call time | 5.48s (sd 1.339) | %.2fs (sd %.3f) |\n", f12.StockIO.Mean, f12.StockIO.StdDev)
	fmt.Fprintf(&b, "| Opass call time | 3.07s (sd 0.316) | %.2fs (sd %.3f) |\n", f12.OpassIO.Mean, f12.OpassIO.StdDev)
	fmt.Fprintf(&b, "| total execution | 167s → 98s | %.0fs → %.0fs |\n\n", f12.Stock.TotalSeconds, f12.Opass.TotalSeconds)

	// Overhead.
	oh, err := Overhead(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString("## §V-C1 — planner overhead\n\n")
	fmt.Fprintf(&b, "Matching took %.3f ms against %.0f s of simulated data access (%.5f%%; paper: <1%%).\n\n",
		float64(oh.PlannerWall.Microseconds())/1000, oh.SimulatedIO, 100*oh.OverheadRatio)

	// Extensions summary.
	b.WriteString("## Extensions beyond the paper\n\n")
	hetero, err := HeteroStaticVsDynamic(cfg)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "- Heterogeneous cluster: dynamic dispatch %.2fx, capacity-weighted static %.2fx over equal static.\n",
		hetero.Static.Makespan/hetero.Dynamic.Makespan, hetero.Static.Makespan/hetero.Weighted.Makespan)
	shared, err := SharedCluster(cfg)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "- Shared cluster: a co-running oblivious job slows the Opass job %.2fx; its reads stay %.0f%% local.\n",
		shared.Slowdown, 100*shared.Shared.Local)
	ft, err := FaultTolerance(cfg)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "- Fault tolerance: with %d DataNode crashes mid-job, all %d reads complete (%d failed over).\n",
		len(ft.Crashes), len(ft.Faulty.IOTimes), ft.Retries)
	return b.String(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
