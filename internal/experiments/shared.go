package experiments

import (
	"fmt"
	"strings"

	"opass/internal/core"
	"opass/internal/engine"
	"opass/internal/workload"
)

// SharedClusterResult quantifies §V-C1's shared-cluster caveat.
type SharedClusterResult struct {
	Nodes int
	// Alone is the Opass job with the cluster to itself; Shared is the same
	// job co-running with a locality-oblivious background job; Background
	// is that neighbor.
	Alone      StrategyResult
	Shared     StrategyResult
	Background StrategyResult
	// Slowdown is Shared.Makespan / Alone.Makespan.
	Slowdown float64
}

// SharedCluster reproduces the §V-C1 discussion: "clusters are usually
// shared by multiple applications. Thus, Opass may not greatly enhance the
// performance of parallel data requests due to the adjustment of HDFS.
// However, Opass allows the parallel data requests to be served in an
// optimized way as long as the cluster nodes have the capability to deliver
// data in the fashion of locality and balance." The experiment measures how
// much a co-running rank-assigned job erodes Opass's win — and that the
// Opass job still reads locally throughout.
func SharedCluster(cfg Config) (*SharedClusterResult, error) {
	nodes := cfg.scale(64)

	// Baseline: Opass alone.
	aloneRes, err := runSingle(nodes, 10, cfg.Seed, core.SingleData{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	// Shared: same Opass job plus an oblivious background job over a second
	// dataset on the same cluster.
	rig, err := workload.SingleSpec{Nodes: nodes, ChunksPerProc: 10, Seed: cfg.Seed}.Build()
	if err != nil {
		return nil, err
	}
	if _, err := rig.FS.Create("/background", float64(nodes*10)*64); err != nil {
		return nil, err
	}
	probBG, err := core.SingleDataProblem(rig.FS, []string{"/background"}, rig.Prob.ProcNode)
	if err != nil {
		return nil, err
	}
	aFG, err := (core.SingleData{Seed: cfg.Seed}).Assign(rig.Prob)
	if err != nil {
		return nil, err
	}
	aBG, err := (core.RankStatic{}).Assign(probBG)
	if err != nil {
		return nil, err
	}
	results, err := engine.RunJobs(rig.Topo, rig.FS, []engine.JobSpec{
		{Problem: rig.Prob, Source: engine.NewListSource(aFG.Lists), Strategy: "opass"},
		{Problem: probBG, Source: engine.NewListSource(aBG.Lists), Strategy: "rank-background"},
	})
	if err != nil {
		return nil, err
	}
	out := &SharedClusterResult{
		Nodes:      nodes,
		Alone:      aloneRes,
		Shared:     strategyResult(nodes, results[0]),
		Background: strategyResult(nodes, results[1]),
	}
	if out.Alone.Makespan > 0 {
		out.Slowdown = out.Shared.Makespan / out.Alone.Makespan
	}
	return out, nil
}

// Render prints the shared-cluster study.
func (r *SharedClusterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — shared cluster (§V-C1): Opass job co-running with an oblivious job (%d nodes)\n", r.Nodes)
	fmt.Fprintf(&b, "  opass alone      : makespan %6.1fs  avg I/O %6.2fs  local %5.1f%%\n",
		r.Alone.Makespan, r.Alone.IO.Mean, 100*r.Alone.Local)
	fmt.Fprintf(&b, "  opass shared     : makespan %6.1fs  avg I/O %6.2fs  local %5.1f%%  (%.2fx slowdown)\n",
		r.Shared.Makespan, r.Shared.IO.Mean, 100*r.Shared.Local, r.Slowdown)
	fmt.Fprintf(&b, "  background (rank): makespan %6.1fs  avg I/O %6.2fs  local %5.1f%%\n",
		r.Background.Makespan, r.Background.IO.Mean, 100*r.Background.Local)
	b.WriteString("  the neighbor's remote reads erode the win, but Opass's requests stay local and balanced\n")
	return b.String()
}
