// Package fsshell implements an hdfs-dfs-style command interpreter over the
// simulated distributed file system — the operator surface for exploring
// the substrate interactively or from scripts: create clusters, store
// files, inspect block locations, run the balancer and fsck, decommission
// nodes, and read data back through the libhdfs-style client.
//
// Commands are line-oriented; '#' starts a comment. The interpreter is
// deterministic given the mkfs seed, so shell scripts double as executable
// documentation (see cmd/opass-fs).
package fsshell

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"opass/internal/dfs"
)

// view is the minimal cluster view a standalone file system needs.
type view struct{ nodes, racks int }

func (v view) NumNodes() int    { return v.nodes }
func (v view) RackOf(n int) int { return n % v.racks }

// Shell is one interpreter session.
type Shell struct {
	fs    *dfs.FileSystem
	nodes int
	out   io.Writer
}

// New creates a session writing results to out. A file system must be
// created with the mkfs command before most other commands work.
func New(out io.Writer) *Shell {
	return &Shell{out: out}
}

// FS exposes the current file system (nil before mkfs) for tests.
func (s *Shell) FS() *dfs.FileSystem { return s.fs }

// Run executes every command from r, stopping at the first error when
// strict is true. It returns the number of commands executed.
func (s *Shell) Run(r io.Reader, strict bool) (int, error) {
	sc := bufio.NewScanner(r)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n++
		if err := s.Exec(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			if strict {
				return n, err
			}
		}
	}
	return n, sc.Err()
}

// Exec runs a single command line.
func (s *Shell) Exec(line string) error {
	args := strings.Fields(line)
	if len(args) == 0 {
		return nil
	}
	cmd, args := args[0], args[1:]
	if cmd != "mkfs" && cmd != "help" && s.fs == nil {
		return fmt.Errorf("no file system: run mkfs first")
	}
	switch cmd {
	case "help":
		fmt.Fprint(s.out, helpText)
		return nil
	case "mkfs":
		return s.mkfs(args)
	case "put":
		return s.put(args)
	case "write":
		return s.write(args)
	case "cat":
		return s.cat(args)
	case "ls":
		return s.ls()
	case "stat":
		return s.stat(args)
	case "rm":
		return s.rm(args)
	case "mv":
		return s.mv(args)
	case "fsck":
		return s.fsck()
	case "balance":
		return s.balance(args)
	case "decommission":
		return s.decommission(args)
	case "report":
		return s.report()
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

const helpText = `commands:
  mkfs -nodes N [-replication R] [-racks K] [-seed S]   create a cluster + fs
  put NAME SIZE_MB         store a synthetic file
  write NAME TEXT...       store a file with literal contents
  cat NAME [BYTES]         print file contents (default 64 bytes)
  ls                       list files
  stat NAME                show per-chunk replica placement
  rm NAME                  delete a file
  mv OLD NEW               rename a file
  fsck                     verify namenode consistency
  balance [THRESHOLD]      run the balancer (default threshold 0.1)
  decommission NODE        retire a node, re-replicating its chunks
  report                   per-node storage utilization
  help                     this text
`

func (s *Shell) mkfs(args []string) error {
	nodes, repl, racks, seed := 0, 0, 1, int64(0)
	for i := 0; i < len(args); i++ {
		flagName := args[i]
		if i+1 >= len(args) {
			return fmt.Errorf("mkfs: %s needs a value", flagName)
		}
		i++
		v, err := strconv.ParseInt(args[i], 10, 64)
		if err != nil {
			return fmt.Errorf("mkfs: bad value %q for %s", args[i], flagName)
		}
		switch flagName {
		case "-nodes":
			nodes = int(v)
		case "-replication":
			repl = int(v)
		case "-racks":
			racks = int(v)
		case "-seed":
			seed = v
		default:
			return fmt.Errorf("mkfs: unknown flag %s", flagName)
		}
	}
	if nodes <= 0 {
		return fmt.Errorf("mkfs: -nodes is required and must be positive")
	}
	if racks <= 0 {
		racks = 1
	}
	s.fs = dfs.New(view{nodes: nodes, racks: racks}, dfs.Config{Replication: repl, Seed: seed})
	s.nodes = nodes
	fmt.Fprintf(s.out, "created %d-node fs (replication %d, %d racks)\n",
		nodes, s.fs.Config().Replication, racks)
	return nil
}

func (s *Shell) put(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("put NAME SIZE_MB")
	}
	size, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return fmt.Errorf("put: bad size %q", args[1])
	}
	f, err := s.fs.Create(args[0], size)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "stored %s: %.0f MB in %d chunks\n", f.Name, f.SizeMB, len(f.Chunks))
	return nil
}

func (s *Shell) write(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("write NAME TEXT...")
	}
	w, err := s.fs.Client(-1).Create(args[0])
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte(strings.Join(args[1:], " "))); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	f, _ := s.fs.Stat(args[0])
	fmt.Fprintf(s.out, "wrote %s: %d chunks\n", f.Name, len(f.Chunks))
	return nil
}

func (s *Shell) cat(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("cat NAME [BYTES]")
	}
	n := 64
	if len(args) == 2 {
		v, err := strconv.Atoi(args[1])
		if err != nil || v <= 0 {
			return fmt.Errorf("cat: bad byte count %q", args[1])
		}
		n = v
	}
	r, err := s.fs.Client(0).Open(args[0])
	if err != nil {
		return err
	}
	defer r.Close()
	buf := make([]byte, n)
	read, err := r.Read(buf)
	if err != nil && err != io.EOF {
		return err
	}
	for _, b := range buf[:read] {
		if b >= 32 && b < 127 {
			fmt.Fprintf(s.out, "%c", b)
		} else {
			fmt.Fprintf(s.out, "\\x%02x", b)
		}
	}
	fmt.Fprintln(s.out)
	return nil
}

func (s *Shell) ls() error {
	files := s.fs.Files()
	if len(files) == 0 {
		fmt.Fprintln(s.out, "(empty)")
		return nil
	}
	for _, name := range files {
		f, err := s.fs.Stat(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%-30s %8.0f MB %5d chunks\n", f.Name, f.SizeMB, len(f.Chunks))
	}
	return nil
}

func (s *Shell) stat(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stat NAME")
	}
	locs, err := s.fs.BlockLocations(args[0])
	if err != nil {
		return err
	}
	for i, loc := range locs {
		fmt.Fprintf(s.out, "chunk %3d: %6.1f MB on nodes %v\n", i, loc.SizeMB, loc.Replicas)
	}
	return nil
}

func (s *Shell) rm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("rm NAME")
	}
	if err := s.fs.Delete(args[0]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "deleted %s\n", args[0])
	return nil
}

func (s *Shell) mv(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("mv OLD NEW")
	}
	if err := s.fs.Rename(args[0], args[1]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "renamed %s -> %s\n", args[0], args[1])
	return nil
}

func (s *Shell) fsck() error {
	problems := s.fs.Fsck()
	if len(problems) == 0 {
		fmt.Fprintln(s.out, "fsck: healthy")
		return nil
	}
	for _, p := range problems {
		fmt.Fprintf(s.out, "fsck: %s\n", p)
	}
	return fmt.Errorf("fsck found %d problems", len(problems))
}

func (s *Shell) balance(args []string) error {
	threshold := 0.1
	if len(args) == 1 {
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("balance: bad threshold %q", args[0])
		}
		threshold = v
	}
	moved := s.fs.Balance(threshold)
	fmt.Fprintf(s.out, "balancer moved %d replicas\n", moved)
	return nil
}

func (s *Shell) decommission(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("decommission NODE")
	}
	node, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("decommission: bad node %q", args[0])
	}
	moved, err := s.fs.Decommission(node)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "decommissioned node %d, re-replicated %d chunks\n", node, moved)
	return nil
}

func (s *Shell) report() error {
	type row struct {
		node int
		mb   float64
	}
	rows := make([]row, 0, s.nodes)
	var total float64
	for n := 0; n < s.nodes; n++ {
		mb := s.fs.StoredMB(n)
		rows = append(rows, row{node: n, mb: mb})
		total += mb
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].node < rows[j].node })
	for _, r := range rows {
		fmt.Fprintf(s.out, "node %3d: %8.0f MB\n", r.node, r.mb)
	}
	fmt.Fprintf(s.out, "total: %.0f MB across %d live nodes\n", total, s.fs.NumLiveNodes())
	return nil
}
