package fsshell

import (
	"strings"
	"testing"
)

func run(t *testing.T, script string) (string, error) {
	t.Helper()
	var out strings.Builder
	sh := New(&out)
	_, err := sh.Run(strings.NewReader(script), true)
	return out.String(), err
}

func TestBasicSession(t *testing.T) {
	out, err := run(t, `
# create a small cluster
mkfs -nodes 8 -seed 7
put /data/big 640
ls
stat /data/big
fsck
report
`)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"created 8-node fs (replication 3, 1 racks)",
		"stored /data/big: 640 MB in 10 chunks",
		"/data/big",
		"chunk   0:",
		"fsck: healthy",
		"total: 1920 MB across 8 live nodes", // 640 * 3 replicas
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteAndCat(t *testing.T) {
	out, err := run(t, `
mkfs -nodes 4 -seed 1
write /hello hello distributed world
cat /hello 32
`)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "hello distributed world") {
		t.Fatalf("cat did not round-trip:\n%s", out)
	}
}

func TestRmAndRecreate(t *testing.T) {
	out, err := run(t, `
mkfs -nodes 4 -seed 2
put /a 64
rm /a
put /a 128
ls
`)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "deleted /a") || !strings.Contains(out, "128 MB") {
		t.Fatalf("rm/recreate flow broken:\n%s", out)
	}
}

func TestDecommissionAndBalance(t *testing.T) {
	out, err := run(t, `
mkfs -nodes 8 -seed 3
put /d 1280
decommission 0
fsck
balance 0.1
fsck
`)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "decommissioned node 0") {
		t.Fatalf("missing decommission output:\n%s", out)
	}
	if strings.Count(out, "fsck: healthy") != 2 {
		t.Fatalf("fs unhealthy after admin ops:\n%s", out)
	}
}

func TestErrorsWithoutMkfs(t *testing.T) {
	var out strings.Builder
	sh := New(&out)
	if err := sh.Exec("ls"); err == nil {
		t.Fatal("ls before mkfs must fail")
	}
	if err := sh.Exec("help"); err != nil {
		t.Fatal("help must work before mkfs")
	}
}

func TestBadCommands(t *testing.T) {
	var out strings.Builder
	sh := New(&out)
	sh.Exec("mkfs -nodes 4")
	for _, bad := range []string{
		"frobnicate",
		"put /x",
		"put /x notanumber",
		"cat",
		"cat /missing",
		"rm",
		"rm /missing",
		"stat /missing",
		"decommission abc",
		"balance -1",
		"mkfs -nodes 0",
		"mkfs -bogus 3",
		"mkfs -nodes",
		"write /solo",
	} {
		if err := sh.Exec(bad); err == nil {
			t.Errorf("command %q should fail", bad)
		}
	}
}

func TestNonStrictContinuesAfterError(t *testing.T) {
	var out strings.Builder
	sh := New(&out)
	n, err := sh.Run(strings.NewReader("mkfs -nodes 4\nbogus\nput /a 64\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("executed %d commands, want 3", n)
	}
	if !strings.Contains(out.String(), "error: unknown command") {
		t.Fatal("error not reported")
	}
	if sh.FS() == nil || len(sh.FS().Files()) != 1 {
		t.Fatal("later commands did not run")
	}
}

func TestRackedMkfs(t *testing.T) {
	out, err := run(t, "mkfs -nodes 8 -racks 2 -replication 2 -seed 4\nput /a 64\nstat /a\n")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "replication 2, 2 racks") {
		t.Fatalf("mkfs options lost:\n%s", out)
	}
}

func TestMvCommand(t *testing.T) {
	out, err := run(t, "mkfs -nodes 4 -seed 9\nput /a 64\nmv /a /b\nls\n")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "renamed /a -> /b") || !strings.Contains(out, "/b") {
		t.Fatalf("mv output:\n%s", out)
	}
	var sb strings.Builder
	sh := New(&sb)
	sh.Exec("mkfs -nodes 4")
	if err := sh.Exec("mv /missing /x"); err == nil {
		t.Fatal("mv of missing file must fail")
	}
	if err := sh.Exec("mv /only-one"); err == nil {
		t.Fatal("mv with one arg must fail")
	}
}
