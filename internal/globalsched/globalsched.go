// Package globalsched implements a cluster-level job-mix scheduler above
// the per-job Opass matchers. §V-C1 of the paper concedes that co-running
// applications erode Opass's per-job wins: every job plans in isolation
// against an empty cluster and they all collide on the same DataNodes. The
// scheduler here follows the operation-level global balancing of OS4M
// (arXiv:1406.3901) and the key-distribution balancing of Fan et al.
// (arXiv:1401.0355): it tracks cumulative per-node service load across
// jobs, and plans each arriving job against the cluster's *residual*
// capacity by biasing the job's matcher — through the source-arc weights
// the flow network already supports (core.SingleData.NodeBias) and the
// proposal values of the matching planner (core.MultiData.NodeBias) — away
// from nodes that are hot from earlier jobs.
//
// The Balance knob trades locality against global balance: 0 keeps every
// job's isolated plan (maximum locality, no coordination), 1 plans purely
// by residual headroom (maximum balance, locality only as a tie-break in
// each matcher). The scheduler plugs into engine.RunJobsScheduled as its
// ClusterScheduler and reconciles its planned load estimates against the
// actual per-node served megabytes when each job drains.
package globalsched

import (
	"fmt"
	"math"
	"sync"

	"opass/internal/core"
	"opass/internal/engine"
	"opass/internal/telemetry"
)

// Metric family names recorded when Options.Metrics is set.
const (
	// MetricJobs counts jobs planned by the scheduler.
	MetricJobs = "opass_globalsched_jobs_total"
	// MetricPlannedMB accumulates the planned service megabytes charged to
	// the cluster across all scheduled jobs.
	MetricPlannedMB = "opass_globalsched_planned_mb_total"
	// MetricLoadMax / MetricLoadMin / MetricLoadSpread are gauges of the
	// current cumulative per-node service load: the hottest node, the
	// coldest node, and their difference (the max/min-served fairness
	// accounting). Planned charges are replaced by actual served MB as jobs
	// finish.
	MetricLoadMax    = "opass_globalsched_load_max_mb"
	MetricLoadMin    = "opass_globalsched_load_min_mb"
	MetricLoadSpread = "opass_globalsched_load_spread_mb"
	// MetricRemoteSteered counts remote reads the serving balancer steered
	// to the least-served replica holder (OS4M-style operation-level
	// balancing; see engine.ServingBalancer).
	MetricRemoteSteered = "opass_globalsched_remote_steered_total"
	// MetricRackLocalSteered counts the subset of steered remote reads that
	// stayed inside the reader's rack (tiered steering under Options.NodeRack).
	MetricRackLocalSteered = "opass_globalsched_rack_local_steered_total"
)

// Options configures a Scheduler.
type Options struct {
	// Balance is the locality-vs-global-balance knob in [0, 1]: a node's
	// bias is (1-Balance) + Balance * (its residual headroom / the largest
	// residual headroom). 0 disables biasing entirely (isolated plans);
	// 1 makes a node with no headroom as unattractive as MinBias allows.
	Balance float64
	// MinBias floors every node's bias factor so no node is ever fully
	// excluded (a starving bias of 0 would be rejected by the planners).
	// Default 0.05.
	MinBias float64
	// Seed drives the per-job matchers' repair randomness; job j plans
	// with Seed+j so jobs do not share coin flips.
	Seed int64
	// NodeRack, when non-nil, maps each node to its rack and upgrades both
	// levers to graded locality tiers: PickRemote prefers the least-served
	// holder *inside the reader's rack* before crossing an uplink (the
	// "nearest tier" refinement of OS4M's least-served rule), and each
	// job's matcher plans with the same rack map (core.Problem.NodeRack).
	// Nil keeps the rack-oblivious behavior.
	NodeRack []int
	// Metrics, when non-nil, receives the opass_globalsched_* series.
	Metrics *telemetry.Registry
}

// Scheduler is a cluster-level job-mix scheduler. It implements
// engine.ClusterScheduler. Methods are safe for concurrent use, though the
// engine drives them sequentially in virtual-time order.
type Scheduler struct {
	mu      sync.Mutex
	nodes   int
	opts    Options
	load    []float64         // cumulative per-node service MB
	served  []float64         // live per-node serving, fed by ReadStarted
	planned map[int][]float64 // job -> planned charge, until reconciled
	plans   map[int]*core.Assignment
}

// New builds a scheduler for a cluster of numNodes storage nodes.
func New(numNodes int, opts Options) (*Scheduler, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("globalsched: cluster size %d must be positive", numNodes)
	}
	if opts.Balance < 0 || opts.Balance > 1 {
		return nil, fmt.Errorf("globalsched: balance %v must be in [0, 1]", opts.Balance)
	}
	if opts.MinBias < 0 || opts.MinBias > 1 {
		return nil, fmt.Errorf("globalsched: min bias %v must be in [0, 1]", opts.MinBias)
	}
	if opts.MinBias == 0 {
		opts.MinBias = 0.05
	}
	s := &Scheduler{
		nodes:   numNodes,
		opts:    opts,
		load:    make([]float64, numNodes),
		served:  make([]float64, numNodes),
		planned: make(map[int][]float64),
		plans:   make(map[int]*core.Assignment),
	}
	if m := opts.Metrics; m != nil {
		m.Help(MetricJobs, "Jobs planned by the cluster-level scheduler.")
		m.Help(MetricPlannedMB, "Planned service MB charged across scheduled jobs.")
		m.Help(MetricLoadMax, "Hottest node's cumulative service load (MB).")
		m.Help(MetricLoadMin, "Coldest node's cumulative service load (MB).")
		m.Help(MetricLoadSpread, "Max minus min cumulative per-node service load (MB).")
		m.Help(MetricRemoteSteered, "Remote reads steered to the least-served replica holder.")
		m.Help(MetricRackLocalSteered, "Steered remote reads served within the reader's rack.")
	}
	return s, nil
}

// JobArriving implements engine.ClusterScheduler: plan the arriving job
// against the residual cluster and hand the engine its task lists.
func (s *Scheduler) JobArriving(job int, spec engine.JobSpec, now float64) (engine.TaskSource, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := spec.Problem
	for _, node := range p.ProcNode {
		if node >= s.nodes {
			return nil, fmt.Errorf("globalsched: job %d process on node %d outside %d-node cluster", job, node, s.nodes)
		}
	}
	if p.NodeRack == nil && len(s.opts.NodeRack) > 0 {
		// Plan the job with the scheduler's rack map so its matcher grades
		// locality the same way the steerer does (no-op on single-rack
		// maps — core disables the tier there).
		p.NodeRack = s.opts.NodeRack
	}
	bias := s.biases(p.TotalMB(), p.ProcNode)
	var as core.Assigner
	if singleInput(p) {
		as = core.SingleData{Seed: s.opts.Seed + int64(job), NodeBias: bias}
	} else {
		as = core.MultiData{Seed: s.opts.Seed + int64(job), NodeBias: bias}
	}
	a, err := as.Assign(p)
	if err != nil {
		return nil, fmt.Errorf("globalsched: job %d: %w", job, err)
	}
	charge := plannedLoad(p, a, s.nodes)
	var chargedMB float64
	for n, mb := range charge {
		s.load[n] += mb
		chargedMB += mb
	}
	s.planned[job] = charge
	s.plans[job] = a
	if m := s.opts.Metrics; m != nil {
		m.Counter(MetricJobs).Inc()
		m.Counter(MetricPlannedMB).Add(chargedMB)
	}
	s.recordLoad()
	return engine.NewListSource(a.Lists), nil
}

// JobFinished implements engine.ClusterScheduler: replace the job's planned
// charge with the megabytes its reads actually pulled from each node.
func (s *Scheduler) JobFinished(job int, servedMB []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	charge, ok := s.planned[job]
	if !ok {
		return // not one of ours (or already reconciled)
	}
	delete(s.planned, job)
	for n := range s.load {
		s.load[n] -= charge[n]
		if n < len(servedMB) {
			s.load[n] += servedMB[n]
		}
		if s.load[n] < 0 {
			s.load[n] = 0
		}
	}
	s.recordLoad()
}

// PickRemote implements engine.ServingBalancer: a remote read is served by
// the least-served holder in the nearest tier. With a rack map (tiered
// steering) the reader's own rack is tried first — the least-served live
// rack-local holder wins before any cross-rack candidate is considered —
// and only a rack with no holder at all sends the read over an uplink.
// Within a tier the holder with the least live serving so far wins (ties
// broken by lowest node id — deterministic, and immediately
// self-correcting since the chosen holder's tally grows by the read).
// Ownership bias cannot place this load: a remote read under the default
// HDFS policy lands on a uniformly-random holder, which is exactly the
// serving variance §III-B quantifies and OS4M eliminates by deciding at
// the operation level.
func (s *Scheduler) PickRemote(reader int, holders []int, sizeMB float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	rr := s.rackOf(reader)
	best, bestSame := holders[0], -1
	for _, h := range holders {
		if h != best && h < len(s.served) && s.served[h] < s.served[best] {
			best = h
		}
		if rr >= 0 && s.rackOf(h) == rr &&
			(bestSame < 0 || (h < len(s.served) && s.served[h] < s.served[bestSame])) {
			bestSame = h
		}
	}
	rackLocal := bestSame >= 0
	if rackLocal {
		best = bestSame
	}
	if m := s.opts.Metrics; m != nil {
		m.Counter(MetricRemoteSteered).Inc()
		if rackLocal {
			m.Counter(MetricRackLocalSteered).Inc()
		}
	}
	return best
}

// rackOf resolves a node's rack under Options.NodeRack, or -1 when the
// scheduler is rack-oblivious or the node is outside the map.
func (s *Scheduler) rackOf(node int) int {
	if len(s.opts.NodeRack) == 0 || node < 0 || node >= len(s.opts.NodeRack) {
		return -1
	}
	return s.opts.NodeRack[node]
}

// ReadStarted implements engine.ServingBalancer: keep the live per-node
// serving tally PickRemote selects against.
func (s *Scheduler) ReadStarted(node int, sizeMB float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node >= 0 && node < len(s.served) {
		s.served[node] += sizeMB
	}
}

// Served returns a copy of the live per-node serving tally (MB) — the
// bytes each node has actually begun serving across all scheduled jobs.
func (s *Scheduler) Served() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.served...)
}

// biases computes the per-node bias for a job of jobMB total input: the
// residual headroom of node n against the ideal even split of the cluster's
// work including this job, normalized by the largest headroom among the
// nodes the job can actually place work on (its processes' nodes — an
// unreachable cold node elsewhere must not flatten the contrast the job's
// own matcher sees), blended with 1 by the Balance knob and floored at
// MinBias. An idle cluster (or Balance 0) yields no bias at all.
func (s *Scheduler) biases(jobMB float64, procNodes []int) []float64 {
	if s.opts.Balance == 0 || jobMB <= 0 {
		return nil
	}
	var total float64
	for _, l := range s.load {
		total += l
	}
	if total == 0 {
		return nil // empty cluster: isolated plan is already optimal
	}
	ideal := (total + jobMB) / float64(s.nodes)
	resid := make([]float64, s.nodes)
	for n, l := range s.load {
		if r := ideal - l; r > 0 {
			resid[n] = r
		}
	}
	var maxResid float64
	for _, node := range procNodes {
		if resid[node] > maxResid {
			maxResid = resid[node]
		}
	}
	if maxResid == 0 {
		return nil // degenerate: every reachable node at or above ideal
	}
	bias := make([]float64, s.nodes)
	for n := range bias {
		b := (1 - s.opts.Balance) + s.opts.Balance*(resid[n]/maxResid)
		if b < s.opts.MinBias {
			b = s.opts.MinBias
		}
		if b > 1 {
			b = 1
		}
		bias[n] = b
	}
	return bias
}

// Load returns a copy of the cumulative per-node service load (MB):
// reconciled actuals for finished jobs plus planned charges for running
// ones.
func (s *Scheduler) Load() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.load...)
}

// MaxMin returns the hottest and coldest node's cumulative service load.
func (s *Scheduler) MaxMin() (maxMB, minMB float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return maxMin(s.load)
}

// SpreadMB is the max-min spread of the cumulative per-node service load.
func (s *Scheduler) SpreadMB() float64 {
	maxMB, minMB := s.MaxMin()
	return maxMB - minMB
}

// Plan returns the assignment the scheduler computed for a job, or nil if
// the job was never scheduled.
func (s *Scheduler) Plan(job int) *core.Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plans[job]
}

// recordLoad refreshes the load gauges. Callers hold s.mu.
func (s *Scheduler) recordLoad() {
	m := s.opts.Metrics
	if m == nil {
		return
	}
	maxMB, minMB := maxMin(s.load)
	m.Gauge(MetricLoadMax).Set(maxMB)
	m.Gauge(MetricLoadMin).Set(minMB)
	m.Gauge(MetricLoadSpread).Set(maxMB - minMB)
}

func maxMin(xs []float64) (maxV, minV float64) {
	maxV, minV = math.Inf(-1), math.Inf(1)
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
		if x < minV {
			minV = x
		}
	}
	if len(xs) == 0 {
		return 0, 0
	}
	return maxV, minV
}

// singleInput reports whether every task reads exactly one chunk (the flow
// planner's domain; anything else goes to the matching planner).
func singleInput(p *core.Problem) bool {
	for i := range p.Tasks {
		if len(p.Tasks[i].Inputs) != 1 {
			return false
		}
	}
	return true
}

// plannedLoad estimates the per-node service megabytes of an assignment:
// an input co-located with its owner's node is served locally by that node
// (the engine's HDFS read policy always prefers the local replica), and a
// remote input is spread evenly over the chunk's replica holders (the
// engine picks one uniformly at random).
func plannedLoad(p *core.Problem, a *core.Assignment, nodes int) []float64 {
	charge := make([]float64, nodes)
	for t := range p.Tasks {
		owner := a.Owner[t]
		node := p.ProcNode[owner]
		for _, in := range p.Tasks[t].Inputs {
			c := p.FS.Chunk(in.Chunk)
			if c.HostedOn(node) {
				charge[node] += in.SizeMB
				continue
			}
			if len(c.Replicas) == 0 {
				continue
			}
			share := in.SizeMB / float64(len(c.Replicas))
			for _, r := range c.Replicas {
				if r < nodes {
					charge[r] += share
				}
			}
		}
	}
	return charge
}
