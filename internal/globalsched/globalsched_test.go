package globalsched

import (
	"context"
	"math"
	"testing"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/telemetry"
	"opass/internal/workload"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes int
		opts  Options
	}{
		{"zero nodes", 0, Options{}},
		{"balance above 1", 8, Options{Balance: 1.5}},
		{"negative balance", 8, Options{Balance: -0.1}},
		{"min bias above 1", 8, Options{MinBias: 2}},
	} {
		if _, err := New(tc.nodes, tc.opts); err == nil {
			t.Errorf("%s: New accepted invalid options", tc.name)
		}
	}
	s, err := New(8, Options{Balance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.opts.MinBias != 0.05 {
		t.Fatalf("default MinBias = %v, want 0.05", s.opts.MinBias)
	}
}

func TestBiasesResidualShape(t *testing.T) {
	s, err := New(4, Options{Balance: 0.5, MinBias: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3}

	if b := s.biases(100, all); b != nil {
		t.Fatalf("empty cluster produced bias %v, want nil", b)
	}

	s.load = []float64{300, 100, 0, 0}
	b := s.biases(100, all)
	if b == nil {
		t.Fatal("loaded cluster produced no bias")
	}
	// Hotter nodes must be strictly less attractive, idle nodes maximally so.
	if !(b[0] < b[1] && b[1] < b[2]) {
		t.Fatalf("bias %v not monotone in load %v", b, s.load)
	}
	if b[2] != 1 || b[3] != 1 {
		t.Fatalf("idle nodes biased to %v/%v, want 1", b[2], b[3])
	}
	for n, v := range b {
		if v < s.opts.MinBias || v > 1 {
			t.Fatalf("bias[%d] = %v outside [MinBias, 1]", n, v)
		}
	}

	// Balance 0 disables biasing outright.
	s0, _ := New(4, Options{Balance: 0})
	s0.load = []float64{300, 100, 0, 0}
	if b := s0.biases(100, all); b != nil {
		t.Fatalf("balance 0 produced bias %v, want nil", b)
	}

	// Window-relative normalization: when every node the job can reach is
	// at or above the ideal, there is no contrast to express — even though
	// an unreachable node still has headroom.
	s.load = []float64{500, 500, 0, 0}
	if b := s.biases(100, []int{0, 1}); b != nil {
		t.Fatalf("all-hot window produced bias %v, want nil", b)
	}
	// ...but the same cluster with a reachable cold node does bias.
	if b := s.biases(100, []int{0, 2}); b == nil {
		t.Fatal("reachable cold node produced no bias")
	}
}

// schedRig builds a small cluster with one planned job for the scheduler.
func schedRig(t *testing.T, nodes, chunksPerProc int, seed int64) (*cluster.Topology, *dfs.FileSystem, *core.Problem) {
	t.Helper()
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed})
	if _, err := fs.Create("/data", float64(nodes*chunksPerProc)*64); err != nil {
		t.Fatal(err)
	}
	procs := make([]int, nodes)
	for i := range procs {
		procs[i] = i
	}
	prob, err := core.SingleDataProblem(fs, []string{"/data"}, procs)
	if err != nil {
		t.Fatal(err)
	}
	return topo, fs, prob
}

func TestJobArrivingPlansAndCharges(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, _, prob := schedRig(t, 8, 4, 5)
	s, err := New(8, Options{Balance: 0.5, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	src, err := s.JobArriving(0, engine.JobSpec{Problem: prob}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src == nil {
		t.Fatal("JobArriving returned no source")
	}
	a := s.Plan(0)
	if a == nil {
		t.Fatal("no plan recorded for job 0")
	}
	if err := a.Validate(prob); err != nil {
		t.Fatalf("scheduler's plan invalid: %v", err)
	}
	var total float64
	for _, mb := range s.Load() {
		total += mb
	}
	if math.Abs(total-prob.TotalMB()) > 1e-6 {
		t.Fatalf("planned charge sums to %v MB, job is %v MB", total, prob.TotalMB())
	}
	if got := reg.Counter(MetricJobs).Value(); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricJobs, got)
	}
	if got := reg.Counter(MetricPlannedMB).Value(); math.Abs(got-prob.TotalMB()) > 1e-6 {
		t.Fatalf("%s = %v, want %v", MetricPlannedMB, got, prob.TotalMB())
	}

	// Reconciliation replaces the planned charge with the actual profile.
	actual := make([]float64, 8)
	actual[3] = 123
	s.JobFinished(0, actual)
	load := s.Load()
	for n, mb := range load {
		want := 0.0
		if n == 3 {
			want = 123
		}
		if math.Abs(mb-want) > 1e-6 {
			t.Fatalf("load[%d] = %v after reconciliation, want %v", n, mb, want)
		}
	}
	// A second JobFinished for the same job is a no-op.
	s.JobFinished(0, actual)
	if got := s.Load(); math.Abs(got[3]-123) > 1e-6 {
		t.Fatalf("double reconciliation changed load to %v", got[3])
	}
}

func TestJobArrivingRejectsForeignNodes(t *testing.T) {
	_, _, prob := schedRig(t, 8, 2, 6)
	s, err := New(4, Options{}) // cluster smaller than the problem's nodes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.JobArriving(0, engine.JobSpec{Problem: prob}, 0); err == nil {
		t.Fatal("JobArriving accepted processes outside the cluster")
	}
}

func TestPickRemoteLeastServed(t *testing.T) {
	s, err := New(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.ReadStarted(0, 100)
	s.ReadStarted(2, 50)
	if got := s.PickRemote(3, []int{0, 2}, 64); got != 2 {
		t.Fatalf("PickRemote = %d, want least-served 2", got)
	}
	// Ties break toward the first (lowest-id) holder, deterministically.
	if got := s.PickRemote(3, []int{1, 3}, 64); got != 1 {
		t.Fatalf("PickRemote tie = %d, want 1", got)
	}
	served := s.Served()
	if served[0] != 100 || served[2] != 50 {
		t.Fatalf("served tally = %v", served)
	}
}

func TestScheduledRunEndToEnd(t *testing.T) {
	// Whole path: two staggered jobs planned by the scheduler, executed by
	// the engine, reconciled on finish. Served tally must equal the actual
	// per-node service profile of the run.
	topo, fs, probA := schedRig(t, 8, 4, 7)
	if _, err := fs.Create("/other", 8*4*64); err != nil {
		t.Fatal(err)
	}
	probB, err := core.SingleDataProblem(fs, []string{"/other"}, probA.ProcNode)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(8, Options{Balance: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.RunJobsScheduled(context.Background(), topo, fs, []engine.JobSpec{
		{Problem: probA, Strategy: "a"},
		{Problem: probB, Strategy: "b", StartAt: 2},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 8)
	for _, res := range results {
		for n, mb := range res.ServedMB {
			want[n] += mb
		}
	}
	served := s.Served()
	for n := range want {
		if math.Abs(served[n]-want[n]) > 1e-6 {
			t.Fatalf("served[%d] = %v, run says %v", n, served[n], want[n])
		}
	}
	// Both jobs drained, so the reconciled load equals the actual profile.
	load := s.Load()
	for n := range want {
		if math.Abs(load[n]-want[n]) > 1e-6 {
			t.Fatalf("load[%d] = %v after both jobs finished, want %v", n, load[n], want[n])
		}
	}
}

func TestMultiDataJobsUseMatchingPlanner(t *testing.T) {
	rig, err := workload.MultiSpec{Nodes: 8, TasksPerProc: 4, Seed: 9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(8, Options{Balance: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	src, err := s.JobArriving(0, engine.JobSpec{Problem: rig.Prob}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src == nil {
		t.Fatal("no source for multi-data job")
	}
	if err := s.Plan(0).Validate(rig.Prob); err != nil {
		t.Fatalf("multi-data plan invalid: %v", err)
	}
}
