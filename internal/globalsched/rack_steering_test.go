package globalsched

import (
	"testing"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
)

// TestTieredSteeringSkipsCrashedRackLocalHolder drives the rack-tiered
// read steerer through the engine with DataNode crashes in flight: the
// rack preference must only ever choose among the live holders the engine
// passes in — a crashed rack-local holder is never picked, even when it is
// the reader's only same-rack copy — and whenever a live same-rack holder
// exists the steered read must stay inside the rack. Run under -race in CI
// to shake out unsynchronized steering state.
func TestTieredSteeringSkipsCrashedRackLocalHolder(t *testing.T) {
	const nodes, racks = 8, 2
	topo := cluster.NewRacked(nodes, racks, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: 13, Placement: dfs.RandomPlacement{}})
	if _, err := fs.Create("/data", nodes*10*64); err != nil {
		t.Fatal(err)
	}
	procNode := make([]int, nodes)
	for i := range procNode {
		procNode[i] = i
	}
	prob, err := core.SingleDataProblem(fs, []string{"/data"}, procNode)
	if err != nil {
		t.Fatal(err)
	}
	rackMap := make([]int, nodes)
	for i := range rackMap {
		rackMap[i] = topo.RackOf(i)
	}
	s, err := New(nodes, Options{NodeRack: rackMap})
	if err != nil {
		t.Fatal(err)
	}
	// RankStatic ignores locality, guaranteeing plenty of remote reads.
	a, err := core.RankStatic{}.Assign(prob)
	if err != nil {
		t.Fatal(err)
	}
	const midCrash = 1.5
	res, err := engine.RunAssignment(engine.Options{
		Topo: topo, FS: fs, Problem: prob, Strategy: "rank", Balancer: s,
		Failures: []engine.NodeFailure{
			{Node: 0, At: 0},        // dead before the first pick
			{Node: 1, At: midCrash}, // dies with reads in flight
		},
	}, a)
	if err != nil {
		t.Fatal(err)
	}
	crashedAt := func(node int, when float64) bool {
		return node == 0 || (node == 1 && when >= midCrash)
	}
	remote, rackLocal := 0, 0
	for _, rec := range res.Records {
		if rec.Local {
			continue
		}
		remote++
		if rec.SrcNode == 0 {
			t.Fatalf("chunk %d read from node 0, crashed at t=0", rec.Chunk)
		}
		if rec.SrcNode == 1 && rec.End > midCrash {
			t.Fatalf("chunk %d read from node 1 finished at %.2f, after its crash", rec.Chunk, rec.End)
		}
		// If a live same-rack holder existed when the read started, the
		// steered source must be rack-local.
		sameRackLive := false
		for _, h := range fs.Chunk(rec.Chunk).Replicas {
			if h != rec.DstNode && !crashedAt(h, rec.Start) && topo.RackOf(h) == topo.RackOf(rec.DstNode) {
				sameRackLive = true
			}
		}
		if sameRackLive {
			if topo.RackOf(rec.SrcNode) != topo.RackOf(rec.DstNode) {
				t.Fatalf("chunk %d for node %d crossed racks (src %d) with a live rack-local holder available",
					rec.Chunk, rec.DstNode, rec.SrcNode)
			}
			rackLocal++
		}
	}
	if remote == 0 || rackLocal == 0 {
		t.Fatalf("scenario exercised nothing: %d remote reads, %d rack-local steers", remote, rackLocal)
	}
}
