// Package hdfsio is the I/O virtual translation layer of §II-A: it maps
// POSIX-style file descriptor operations (open/read/pread/lseek/close) and
// an MPI-IO-flavored collective read onto the libhdfs-style client of the
// dfs package, the second of the two access methods the paper describes
// ("use an I/O virtual translation layer to translate the parallel I/O
// operations, e.g POSIX I/O or MPI-I/O, into hdfs I/O operations").
package hdfsio

import (
	"fmt"
	"io"

	"opass/internal/dfs"
)

// Open flags, POSIX-style.
const (
	// ORdonly opens an existing file for reading.
	ORdonly = 0
	// OWronly creates a new file for writing.
	OWronly = 1
)

// FileInfo is the stat result, mirroring hdfsFileInfo.
type FileInfo struct {
	Name      string
	SizeBytes int64
	Chunks    int
	Replicas  int
}

// VFS is a per-process file-descriptor table over one DFS client. It is
// what a POSIX shim linked into an MPI rank would hold.
type VFS struct {
	client  *dfs.Client
	nextFD  int
	readers map[int]*dfs.FileReader
	writers map[int]*dfs.FileWriter
	names   map[int]string
}

// New builds a VFS over the client.
func New(client *dfs.Client) *VFS {
	return &VFS{
		client:  client,
		nextFD:  3, // 0..2 are conventionally stdio
		readers: map[int]*dfs.FileReader{},
		writers: map[int]*dfs.FileWriter{},
		names:   map[int]string{},
	}
}

// Open opens path with the given flags and returns a file descriptor.
func (v *VFS) Open(path string, flags int) (int, error) {
	fd := v.nextFD
	switch flags {
	case ORdonly:
		r, err := v.client.Open(path)
		if err != nil {
			return -1, err
		}
		v.readers[fd] = r
	case OWronly:
		w, err := v.client.Create(path)
		if err != nil {
			return -1, err
		}
		v.writers[fd] = w
	default:
		return -1, fmt.Errorf("hdfsio: unsupported flags %#x", flags)
	}
	v.names[fd] = path
	v.nextFD++
	return fd, nil
}

// Read reads up to len(p) bytes at the descriptor's cursor.
func (v *VFS) Read(fd int, p []byte) (int, error) {
	r, ok := v.readers[fd]
	if !ok {
		return 0, fmt.Errorf("hdfsio: fd %d not open for reading", fd)
	}
	return r.Read(p)
}

// Pread reads at an explicit offset without moving the cursor.
func (v *VFS) Pread(fd int, p []byte, off int64) (int, error) {
	r, ok := v.readers[fd]
	if !ok {
		return 0, fmt.Errorf("hdfsio: fd %d not open for reading", fd)
	}
	return r.ReadAt(p, off)
}

// Write appends to a descriptor opened with OWronly.
func (v *VFS) Write(fd int, p []byte) (int, error) {
	w, ok := v.writers[fd]
	if !ok {
		return 0, fmt.Errorf("hdfsio: fd %d not open for writing", fd)
	}
	return w.Write(p)
}

// Lseek repositions a read descriptor.
func (v *VFS) Lseek(fd int, off int64, whence int) (int64, error) {
	r, ok := v.readers[fd]
	if !ok {
		return 0, fmt.Errorf("hdfsio: fd %d not open for reading", fd)
	}
	return r.Seek(off, whence)
}

// Fstat describes an open read descriptor.
func (v *VFS) Fstat(fd int) (FileInfo, error) {
	r, ok := v.readers[fd]
	if !ok {
		return FileInfo{}, fmt.Errorf("hdfsio: fd %d not open for reading", fd)
	}
	name := v.names[fd]
	return FileInfo{
		Name:      name,
		SizeBytes: r.Size(),
	}, nil
}

// Close releases a descriptor.
func (v *VFS) Close(fd int) error {
	if r, ok := v.readers[fd]; ok {
		delete(v.readers, fd)
		delete(v.names, fd)
		return r.Close()
	}
	if w, ok := v.writers[fd]; ok {
		delete(v.writers, fd)
		delete(v.names, fd)
		return w.Close()
	}
	return fmt.Errorf("hdfsio: close of unknown fd %d", fd)
}

// OpenFDs reports the number of live descriptors (leak checks in tests).
func (v *VFS) OpenFDs() int { return len(v.readers) + len(v.writers) }

// Stats exposes a read descriptor's locality accounting.
func (v *VFS) Stats(fd int) (dfs.ReadStats, error) {
	r, ok := v.readers[fd]
	if !ok {
		return dfs.ReadStats{}, fmt.Errorf("hdfsio: fd %d not open for reading", fd)
	}
	return r.Stats(), nil
}

// ReadAtAll is the MPI-IO-flavored collective read: rank i of nprocs reads
// its contiguous share of the file, computed with the §II-B interval
// formula [i*size/n, (i+1)*size/n) that ParaView-style static assignment
// uses. It returns the rank's bytes and its locality stats.
func ReadAtAll(client *dfs.Client, path string, rank, nprocs int) ([]byte, dfs.ReadStats, error) {
	if nprocs <= 0 || rank < 0 || rank >= nprocs {
		return nil, dfs.ReadStats{}, fmt.Errorf("hdfsio: invalid rank %d of %d", rank, nprocs)
	}
	r, err := client.Open(path)
	if err != nil {
		return nil, dfs.ReadStats{}, err
	}
	defer r.Close()
	size := r.Size()
	lo := int64(rank) * size / int64(nprocs)
	hi := int64(rank+1) * size / int64(nprocs)
	buf := make([]byte, hi-lo)
	n, err := r.ReadAt(buf, lo)
	if err != nil && err != io.EOF {
		return nil, dfs.ReadStats{}, err
	}
	return buf[:n], r.Stats(), nil
}
