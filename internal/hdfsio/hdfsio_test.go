package hdfsio

import (
	"bytes"
	"io"
	"testing"

	"opass/internal/dfs"
)

type view struct{ n int }

func (v view) NumNodes() int    { return v.n }
func (v view) RackOf(i int) int { return 0 }

func newFS(t testing.TB, nodes int, seed int64) *dfs.FileSystem {
	t.Helper()
	return dfs.New(view{nodes}, dfs.Config{Seed: seed, ChunkSizeMB: 1.0 / 1024}) // 1 KiB chunks
}

func TestPosixWriteThenRead(t *testing.T) {
	fs := newFS(t, 8, 1)
	v := New(fs.Client(0))

	wfd, err := v.Open("/f", OWronly)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("hdfsio"), 700) // ~4.2 KiB, several chunks
	if n, err := v.Write(wfd, payload); err != nil || n != len(payload) {
		t.Fatalf("write: %d %v", n, err)
	}
	if err := v.Close(wfd); err != nil {
		t.Fatal(err)
	}

	rfd, err := v.Open("/f", ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := v.Fstat(rfd)
	if err != nil {
		t.Fatal(err)
	}
	if fi.SizeBytes != int64(len(payload)) {
		t.Fatalf("fstat size = %d, want %d", fi.SizeBytes, len(payload))
	}
	got := make([]byte, len(payload))
	read := 0
	for read < len(got) {
		n, err := v.Read(rfd, got[read:])
		read += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got[:read], payload) {
		t.Fatal("posix round trip mismatch")
	}
	if err := v.Close(rfd); err != nil {
		t.Fatal(err)
	}
	if v.OpenFDs() != 0 {
		t.Fatalf("fd leak: %d", v.OpenFDs())
	}
}

func TestPreadAndLseek(t *testing.T) {
	fs := newFS(t, 8, 2)
	fs.Create("/f", 0.01) // ~10 KiB synthetic
	v := New(fs.Client(0))
	fd, err := v.Open("/f", ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close(fd)

	a := make([]byte, 100)
	if _, err := v.Pread(fd, a, 500); err != nil {
		t.Fatal(err)
	}
	// Pread must not move the cursor.
	b := make([]byte, 100)
	if _, err := v.Read(fd, b); err != nil {
		t.Fatal(err)
	}
	c := make([]byte, 100)
	if _, err := v.Pread(fd, c, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, c) {
		t.Fatal("Pread moved the cursor")
	}
	// Lseek + Read equals Pread at the same offset.
	if _, err := v.Lseek(fd, 500, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	d := make([]byte, 100)
	if _, err := v.Read(fd, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, d) {
		t.Fatal("lseek+read != pread")
	}
}

func TestBadDescriptors(t *testing.T) {
	fs := newFS(t, 4, 3)
	fs.Create("/f", 0.001)
	v := New(fs.Client(0))
	if _, err := v.Read(99, make([]byte, 4)); err == nil {
		t.Fatal("read from bad fd must fail")
	}
	if _, err := v.Write(99, []byte("x")); err == nil {
		t.Fatal("write to bad fd must fail")
	}
	if err := v.Close(99); err == nil {
		t.Fatal("close of bad fd must fail")
	}
	if _, err := v.Open("/f", 42); err == nil {
		t.Fatal("bad flags must fail")
	}
	fd, _ := v.Open("/f", ORdonly)
	if _, err := v.Write(fd, []byte("x")); err == nil {
		t.Fatal("write to read fd must fail")
	}
	if _, err := v.Lseek(999, 0, io.SeekStart); err == nil {
		t.Fatal("lseek on bad fd must fail")
	}
	if _, err := v.Fstat(999); err == nil {
		t.Fatal("fstat on bad fd must fail")
	}
	if _, err := v.Stats(999); err == nil {
		t.Fatal("stats on bad fd must fail")
	}
}

func TestReadAtAllPartitions(t *testing.T) {
	fs := newFS(t, 8, 4)
	// Write known content so partitions can be verified.
	w, _ := fs.Client(-1).Create("/f")
	payload := make([]byte, 8000)
	for i := range payload {
		payload[i] = byte(i)
	}
	w.Write(payload)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	const nprocs = 4
	var joined []byte
	for rank := 0; rank < nprocs; rank++ {
		part, stats, err := ReadAtAll(fs.Client(rank), "/f", rank, nprocs)
		if err != nil {
			t.Fatal(err)
		}
		if len(part) != 2000 {
			t.Fatalf("rank %d got %d bytes, want 2000", rank, len(part))
		}
		if stats.LocalBytes+stats.RemoteBytes != 2000 {
			t.Fatalf("rank %d stats don't cover the partition: %+v", rank, stats)
		}
		joined = append(joined, part...)
	}
	if !bytes.Equal(joined, payload) {
		t.Fatal("collective read does not reassemble the file")
	}
}

func TestReadAtAllValidation(t *testing.T) {
	fs := newFS(t, 4, 5)
	fs.Create("/f", 0.01)
	if _, _, err := ReadAtAll(fs.Client(0), "/f", 5, 4); err == nil {
		t.Fatal("rank out of range must fail")
	}
	if _, _, err := ReadAtAll(fs.Client(0), "/f", 0, 0); err == nil {
		t.Fatal("zero procs must fail")
	}
	if _, _, err := ReadAtAll(fs.Client(0), "/missing", 0, 2); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestStatsSurfaceLocality(t *testing.T) {
	fs := newFS(t, 8, 6)
	fs.Create("/f", 0.004)
	v := New(fs.Client(0))
	fd, _ := v.Open("/f", ORdonly)
	defer v.Close(fd)
	buf := make([]byte, 4096)
	v.Read(fd, buf)
	st, err := v.Stats(fd)
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalBytes+st.RemoteBytes == 0 {
		t.Fatal("stats recorded nothing")
	}
}
