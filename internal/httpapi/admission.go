// Bounded admission for the expensive routes: a weighted semaphore with a
// FIFO wait queue and a bounded queue wait. Each /v1/plan and /v1/simulate
// request costs a work estimate derived from its size (tasks + inputs); a
// request that cannot be admitted within the queue-wait bound is shed with
// 429 rather than piling onto a saturated planner, and a draining server
// rejects immediately with 503. This is the service-level backpressure the
// locality planners sit behind — an optimal plan is worthless if the
// scheduler serving it has collapsed under unbounded concurrency.
package httpapi

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// Admission outcomes surfaced to the handlers.
var (
	// errShed reports that the queue-wait bound expired before capacity
	// freed up; the handler answers 429 + Retry-After.
	errShed = errors.New("admission queue wait exceeded")
	// errDraining reports that the server is shutting down; the handler
	// answers 503.
	errDraining = errors.New("server draining")
)

// waiter is one queued acquisition.
type waiter struct {
	weight int64
	// admitted is written under the admitter lock before ready is closed;
	// readers observe it only after <-ready, so the close provides the
	// happens-before edge.
	admitted bool
	ready    chan struct{}
}

// admitter is a weighted semaphore with a FIFO wait queue. Admission is
// strictly in arrival order — a fat request at the head blocks later small
// ones rather than starving behind them forever.
type admitter struct {
	capacity int64

	mu       sync.Mutex
	inUse    int64
	draining bool
	waiters  *list.List // of *waiter, FIFO
}

// newAdmitter creates an admitter with the given total work-unit capacity.
func newAdmitter(capacity int64) *admitter {
	if capacity < 1 {
		capacity = 1
	}
	return &admitter{capacity: capacity, waiters: list.New()}
}

// clamp bounds a request weight to the admitter capacity, so a request
// bigger than the whole budget runs alone instead of never.
func (a *admitter) clamp(weight int64) int64 {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	return weight
}

// acquire blocks until weight units are granted, the queue-wait bound
// expires (errShed), the admitter drains (errDraining), or ctx is cancelled
// (ctx's error). weight must already be clamped. A nil return means the
// grant is held and must be released.
func (a *admitter) acquire(ctx context.Context, weight int64, maxWait time.Duration) error {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return errDraining
	}
	if a.waiters.Len() == 0 && a.inUse+weight <= a.capacity {
		a.inUse += weight
		a.mu.Unlock()
		return nil
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := a.waiters.PushBack(w)
	a.mu.Unlock()

	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
	case <-timer.C:
		if a.abandon(elem) {
			return errShed
		}
		<-w.ready // decided concurrently with the timeout
	case <-ctx.Done():
		if a.abandon(elem) {
			return ctx.Err()
		}
		<-w.ready
		if w.admitted {
			a.release(weight) // granted to a caller that will not run
		}
		return ctx.Err()
	}
	if !w.admitted {
		return errDraining
	}
	return nil
}

// abandon removes a still-queued waiter, reporting false when the waiter
// was already decided (admitted or drained) — its ready channel is then
// closed and the outcome stands.
func (a *admitter) abandon(elem *list.Element) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := elem.Value.(*waiter)
	select {
	case <-w.ready:
		return false
	default:
	}
	a.waiters.Remove(elem)
	return true
}

// release returns weight units (the same clamped value acquire granted) and
// admits queued waiters that now fit.
func (a *admitter) release(weight int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inUse -= weight
	if a.inUse < 0 {
		panic("httpapi: admitter released more than it granted")
	}
	a.admitLocked()
}

// admitLocked grants queued waiters in FIFO order while capacity allows.
func (a *admitter) admitLocked() {
	for e := a.waiters.Front(); e != nil; e = a.waiters.Front() {
		w := e.Value.(*waiter)
		if a.inUse+w.weight > a.capacity {
			return
		}
		a.waiters.Remove(e)
		a.inUse += w.weight
		w.admitted = true
		close(w.ready)
	}
}

// drain flips the admitter into shutdown mode: every queued waiter wakes
// with errDraining and every future acquire fails immediately. Grants
// already held stay valid until released, so in-flight requests finish.
func (a *admitter) drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	for e := a.waiters.Front(); e != nil; e = a.waiters.Front() {
		w := e.Value.(*waiter)
		a.waiters.Remove(e)
		close(w.ready) // admitted stays false: the waiter reads errDraining
	}
}

// inFlight reports the work units currently granted (tests and gauges).
func (a *admitter) inFlight() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// queueLen reports how many acquisitions are waiting.
func (a *admitter) queueLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiters.Len()
}
