package httpapi

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAdmitterFastPath(t *testing.T) {
	a := newAdmitter(10)
	if err := a.acquire(context.Background(), 4, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background(), 6, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := a.inFlight(); got != 10 {
		t.Fatalf("inFlight = %d, want 10", got)
	}
	a.release(4)
	a.release(6)
	if got := a.inFlight(); got != 0 {
		t.Fatalf("inFlight = %d after release, want 0", got)
	}
}

func TestAdmitterClamp(t *testing.T) {
	a := newAdmitter(10)
	if got := a.clamp(0); got != 1 {
		t.Fatalf("clamp(0) = %d, want 1", got)
	}
	if got := a.clamp(1 << 40); got != 10 {
		t.Fatalf("clamp(huge) = %d, want capacity 10", got)
	}
	if got := a.clamp(7); got != 7 {
		t.Fatalf("clamp(7) = %d, want 7", got)
	}
}

func TestAdmitterShedsOnQueueTimeout(t *testing.T) {
	a := newAdmitter(1)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.acquire(context.Background(), 1, 20*time.Millisecond)
	if !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want errShed", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shed took %v, want about the 20ms bound", elapsed)
	}
	if got := a.queueLen(); got != 0 {
		t.Fatalf("queueLen = %d after shed, want 0 (waiter removed)", got)
	}
	// The shed waiter must not have consumed capacity.
	a.release(1)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatalf("acquire after shed+release: %v", err)
	}
}

func TestAdmitterFIFONoOvertaking(t *testing.T) {
	a := newAdmitter(10)
	if err := a.acquire(context.Background(), 9, time.Minute); err != nil {
		t.Fatal(err)
	}
	// Queue a fat waiter, then a small one that would fit right now
	// (9+1 <= 10) but must not overtake the FIFO head.
	bigDone := make(chan error, 1)
	go func() { bigDone <- a.acquire(context.Background(), 5, time.Minute) }()
	waitFor(t, "big waiter queued", func() bool { return a.queueLen() == 1 })
	smallDone := make(chan error, 1)
	go func() { smallDone <- a.acquire(context.Background(), 1, time.Minute) }()
	waitFor(t, "small waiter queued", func() bool { return a.queueLen() == 2 })
	select {
	case err := <-smallDone:
		t.Fatalf("small waiter overtook the queue head: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	a.release(9)
	// Capacity 10: the fat waiter (5) and then the small one (1) both fit.
	if err := <-bigDone; err != nil {
		t.Fatalf("big waiter: %v", err)
	}
	if err := <-smallDone; err != nil {
		t.Fatalf("small waiter: %v", err)
	}
	if got := a.inFlight(); got != 6 {
		t.Fatalf("inFlight = %d, want 6", got)
	}
}

func TestAdmitterDrain(t *testing.T) {
	a := newAdmitter(1)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(context.Background(), 1, time.Minute) }()
	waitFor(t, "waiter queued", func() bool { return a.queueLen() == 1 })
	a.drain()
	if err := <-queued; !errors.Is(err, errDraining) {
		t.Fatalf("queued waiter err = %v, want errDraining", err)
	}
	if err := a.acquire(context.Background(), 1, time.Second); !errors.Is(err, errDraining) {
		t.Fatalf("new acquire err = %v, want errDraining", err)
	}
	// The pre-drain grant stays valid and its release still balances.
	a.release(1)
	if got := a.inFlight(); got != 0 {
		t.Fatalf("inFlight = %d, want 0", got)
	}
}

func TestAdmitterCtxCancelWhileQueued(t *testing.T) {
	a := newAdmitter(1)
	if err := a.acquire(context.Background(), 1, time.Minute); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx, 1, time.Minute) }()
	waitFor(t, "waiter queued", func() bool { return a.queueLen() == 1 })
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned waiter must not leak capacity: after releasing the
	// original grant the admitter is fully idle.
	a.release(1)
	waitFor(t, "capacity restored", func() bool { return a.inFlight() == 0 })
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatalf("acquire after cancel+release: %v", err)
	}
}
