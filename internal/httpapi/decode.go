package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"opass/internal/core"
	"opass/internal/dfs"
)

// Default request-decode limits. They are sized for the fleet scale the
// service targets — 10k processes and 1M tasks — while still bounding what
// a hostile payload can cost: the streaming decoder enforces the task and
// per-task input caps incrementally, so a request that blows a limit is
// rejected at the first offending element for O(1) memory beyond the bytes
// already read.
const (
	DefaultMaxBodyBytes     = 1 << 30
	DefaultMaxNodes         = 1 << 16
	DefaultMaxProcs         = 1 << 16
	DefaultMaxTasks         = 1 << 20
	DefaultMaxInputsPerTask = 1 << 10
)

// RequestLimits bounds what a single request may ask of the decoder and
// the planners. Zero fields mean the package defaults above; opassd exposes
// them as flags and tests inject small values to exercise the boundaries.
type RequestLimits struct {
	// BodyBytes caps the request body size (enforced by http.MaxBytesReader,
	// so an oversized body also poisons the connection).
	BodyBytes int64
	// Nodes caps the submitted cluster size.
	Nodes int
	// Procs caps the proc_nodes process list.
	Procs int
	// Tasks caps the task list.
	Tasks int
	// InputsPerTask caps any one task's input list.
	InputsPerTask int
}

func (l RequestLimits) withDefaults() RequestLimits {
	if l.BodyBytes <= 0 {
		l.BodyBytes = DefaultMaxBodyBytes
	}
	if l.Nodes <= 0 {
		l.Nodes = DefaultMaxNodes
	}
	if l.Procs <= 0 {
		l.Procs = DefaultMaxProcs
	}
	if l.Tasks <= 0 {
		l.Tasks = DefaultMaxTasks
	}
	if l.InputsPerTask <= 0 {
		l.InputsPerTask = DefaultMaxInputsPerTask
	}
	return l
}

// layoutView is the minimal cluster view for a submitted layout.
type layoutView struct{ n int }

func (v layoutView) NumNodes() int  { return v.n }
func (v layoutView) RackOf(int) int { return 0 }

// decodeProblem parses and validates a request into a core.Problem backed
// by an in-memory file system that mirrors the submitted block layout.
// The streaming path is the default; LegacyDecode selects the whole-body
// decoder. The two paths accept and reject identical requests, but build
// the mirror FS differently (bulk vs incremental), so their snapshot
// epochs — and hence their shared-tier keyspaces — differ.
func (s *Server) decodeProblem(w http.ResponseWriter, r *http.Request) (*PlanRequest, *core.Problem, *apiError) {
	if s.legacyDecode {
		return decodeProblemLegacy(w, r, s.limits)
	}
	return decodeProblemStreaming(w, r, s.limits)
}

// decodeFailure maps a decoder error to the right rejection: body-limit
// overruns become 413, everything else a generic 400.
func decodeFailure(err error) *apiError {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return &apiError{
			status: http.StatusRequestEntityTooLarge, reason: "too_large",
			err: fmt.Errorf("request body exceeds %d bytes", tooBig.Limit),
		}
	}
	return badRequest("invalid", "bad request body: %w", err)
}

// decodeProblemStreaming parses the request with a token-level decoder:
// tasks are consumed one object at a time into compact columnar
// accumulators instead of a materialized []TaskSpec, so peak decode memory
// tracks the problem's resident size, and the mirror FS is built with one
// bulk CreateChunksReplicated call (one chunk block, one epoch bump)
// instead of per-input namenode operations.
func decodeProblemStreaming(w http.ResponseWriter, r *http.Request, lim RequestLimits) (*PlanRequest, *core.Problem, *apiError) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, lim.BodyBytes))
	dec.DisallowUnknownFields()

	req := &PlanRequest{}
	var (
		taskInputs []int32   // inputs per task, in task order
		sizes      []float64 // per-input sizes, task-major
		repOff     []int     // input i's replicas are reps[repOff[i]:repOff[i+1]]
		reps       []int
	)
	repOff = append(repOff, 0)

	tok, err := dec.Token()
	if err != nil {
		return nil, nil, decodeFailure(err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, nil, badRequest("invalid", "bad request body: expected a JSON object")
	}
	sawTasks := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, nil, decodeFailure(err)
		}
		key, _ := keyTok.(string)
		switch key {
		case "nodes":
			err = dec.Decode(&req.Nodes)
		case "strategy":
			err = dec.Decode(&req.Strategy)
		case "seed":
			err = dec.Decode(&req.Seed)
		case "replan":
			err = dec.Decode(&req.Replan)
		case "repair":
			err = dec.Decode(&req.Repair)
		case "repair_delay_seconds":
			err = dec.Decode(&req.RepairDelaySeconds)
		case "failures":
			err = dec.Decode(&req.Failures)
		case "degradations":
			err = dec.Decode(&req.Degradations)
		case "proc_nodes":
			if apiErr := decodeProcNodesStream(dec, req, lim); apiErr != nil {
				return nil, nil, apiErr
			}
		case "tasks":
			if sawTasks {
				return nil, nil, badRequest("invalid", "bad request body: duplicate tasks field")
			}
			sawTasks = true
			var apiErr *apiError
			taskInputs, sizes, repOff, reps, apiErr = decodeTasksStream(dec, lim, taskInputs, sizes, repOff, reps)
			if apiErr != nil {
				return nil, nil, apiErr
			}
		default:
			return nil, nil, badRequest("invalid", "bad request body: unknown field %q", key)
		}
		if err != nil {
			return nil, nil, decodeFailure(err)
		}
	}
	if _, err := dec.Token(); err != nil { // closing brace
		return nil, nil, decodeFailure(err)
	}

	numTasks := len(taskInputs)
	numInputs := len(sizes)
	if req.Nodes <= 0 {
		return nil, nil, badRequest("invalid", "nodes must be positive")
	}
	if req.Nodes > lim.Nodes {
		return nil, nil, badRequest("invalid", "nodes %d exceeds maximum %d", req.Nodes, lim.Nodes)
	}
	if numTasks == 0 {
		return nil, nil, badRequest("invalid", "tasks must be non-empty")
	}
	if apiErr := validateFaults(req); apiErr != nil {
		return nil, nil, apiErr
	}
	procNodes, apiErr := resolveProcNodes(req, lim)
	if apiErr != nil {
		return nil, nil, apiErr
	}
	// Replica range/distinctness, deferred from the streaming loop because
	// JSON key order does not guarantee nodes arrives before tasks. The
	// stamp array replaces a per-input set: stamp[n] == i marks node n as
	// already seen for input i.
	stamp := make([]int, req.Nodes)
	for i := range stamp {
		stamp[i] = -1
	}
	in := 0
	for ti := 0; ti < numTasks; ti++ {
		for ii := 0; ii < int(taskInputs[ti]); ii++ {
			for _, rep := range reps[repOff[in]:repOff[in+1]] {
				if rep < 0 || rep >= req.Nodes {
					return nil, nil, badRequest("invalid", "task %d input %d: replica node %d outside cluster", ti, ii, rep)
				}
				if stamp[rep] == in {
					return nil, nil, badRequest("invalid", "task %d input %d: duplicate replica node %d", ti, ii, rep)
				}
				stamp[rep] = in
			}
			in++
		}
	}
	// Mirror the layout into an in-memory FS: every input is one chunk of
	// one bulk-created file, sharing the flattened replica arena.
	replicaLists := make([][]int, numInputs)
	for i := range replicaLists {
		replicaLists[i] = reps[repOff[i]:repOff[i+1]]
	}
	fs := dfs.New(layoutView{req.Nodes}, dfs.Config{Replication: 1})
	f, err := fs.CreateChunksReplicated("/layout/tasks", sizes, replicaLists)
	if err != nil {
		return nil, nil, &apiError{status: http.StatusInternalServerError, reason: "internal", err: err}
	}
	prob := &core.Problem{ProcNode: procNodes, FS: fs}
	prob.Tasks = make([]core.Task, numTasks)
	backing := make([]core.Input, numInputs)
	in = 0
	for ti := range prob.Tasks {
		k := int(taskInputs[ti])
		ins := backing[in : in+k : in+k]
		for j := range ins {
			ins[j] = core.Input{Chunk: f.Chunks[in+j], SizeMB: sizes[in+j]}
		}
		prob.Tasks[ti] = core.Task{ID: ti, Inputs: ins}
		in += k
	}
	if err := prob.Validate(); err != nil {
		return nil, nil, badRequest("invalid", "%w", err)
	}
	req.weight = int64(numTasks + numInputs)
	return req, prob, nil
}

// decodeProcNodesStream consumes the proc_nodes array one element at a
// time, rejecting at the first process past the cap.
func decodeProcNodesStream(dec *json.Decoder, req *PlanRequest, lim RequestLimits) *apiError {
	tok, err := dec.Token()
	if err != nil {
		return decodeFailure(err)
	}
	if tok == nil { // JSON null
		return nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return badRequest("invalid", "bad request body: proc_nodes must be an array")
	}
	for dec.More() {
		if len(req.ProcNodes) >= lim.Procs {
			return badRequest("invalid",
				"proc_nodes lists more processes than the maximum %d", lim.Procs)
		}
		var n int
		if err := dec.Decode(&n); err != nil {
			return decodeFailure(err)
		}
		req.ProcNodes = append(req.ProcNodes, n)
	}
	if _, err := dec.Token(); err != nil { // closing bracket
		return decodeFailure(err)
	}
	return nil
}

// decodeTasksStream consumes the tasks array one task at a time into the
// columnar accumulators, enforcing the task and per-task input caps as
// each element arrives. One TaskSpec is reused across iterations; its
// contents are copied out before the next Decode overwrites them.
func decodeTasksStream(dec *json.Decoder, lim RequestLimits, taskInputs []int32, sizes []float64, repOff, reps []int) ([]int32, []float64, []int, []int, *apiError) {
	fail := func(apiErr *apiError) ([]int32, []float64, []int, []int, *apiError) {
		return taskInputs, sizes, repOff, reps, apiErr
	}
	tok, err := dec.Token()
	if err != nil {
		return fail(decodeFailure(err))
	}
	if tok == nil { // JSON null: same as absent
		return taskInputs, sizes, repOff, reps, nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fail(badRequest("invalid", "bad request body: tasks must be an array"))
	}
	var task TaskSpec
	for dec.More() {
		ti := len(taskInputs)
		if ti >= lim.Tasks {
			return fail(badRequest("too_many_tasks",
				"request lists more than maximum %d tasks", lim.Tasks))
		}
		task.Inputs = task.Inputs[:0]
		if err := dec.Decode(&task); err != nil {
			return fail(decodeFailure(err))
		}
		if len(task.Inputs) > lim.InputsPerTask {
			return fail(badRequest("too_many_inputs",
				"task %d lists %d inputs, exceeding maximum %d per task", ti, len(task.Inputs), lim.InputsPerTask))
		}
		if len(task.Inputs) == 0 {
			return fail(badRequest("invalid", "task %d has no inputs", ti))
		}
		for ii, in := range task.Inputs {
			if in.SizeMB <= 0 {
				return fail(badRequest("invalid", "task %d input %d: size_mb must be positive", ti, ii))
			}
			if len(in.Replicas) == 0 {
				return fail(badRequest("invalid", "task %d input %d: replicas must be non-empty", ti, ii))
			}
			sizes = append(sizes, in.SizeMB)
			reps = append(reps, in.Replicas...)
			repOff = append(repOff, len(reps))
		}
		taskInputs = append(taskInputs, int32(len(task.Inputs)))
	}
	if _, err := dec.Token(); err != nil { // closing bracket
		return fail(decodeFailure(err))
	}
	return taskInputs, sizes, repOff, reps, nil
}

// resolveProcNodes validates the submitted process list (or synthesizes
// the one-per-node default) with specific messages — the shape errors must
// not fall through to the planner's generic Validate.
func resolveProcNodes(req *PlanRequest, lim RequestLimits) ([]int, *apiError) {
	if len(req.ProcNodes) > lim.Procs {
		return nil, badRequest("invalid",
			"proc_nodes lists %d processes, exceeding maximum %d", len(req.ProcNodes), lim.Procs)
	}
	procNodes := req.ProcNodes
	if len(procNodes) == 0 {
		procNodes = make([]int, req.Nodes)
		for i := range procNodes {
			procNodes[i] = i
		}
	}
	for i, n := range procNodes {
		if n < 0 || n >= req.Nodes {
			return nil, badRequest("invalid", "proc_nodes[%d] = %d outside [0,%d)", i, n, req.Nodes)
		}
	}
	return procNodes, nil
}

// decodeProblemLegacy is the whole-body decoder: one json.Decode into the
// full PlanRequest, then validation over the materialized structs. Kept as
// a compat escape hatch and as the behavioral reference the streaming
// path's tests compare against.
func decodeProblemLegacy(w http.ResponseWriter, r *http.Request, lim RequestLimits) (*PlanRequest, *core.Problem, *apiError) {
	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, lim.BodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, decodeFailure(err)
	}
	if req.Nodes <= 0 {
		return nil, nil, badRequest("invalid", "nodes must be positive")
	}
	if req.Nodes > lim.Nodes {
		return nil, nil, badRequest("invalid", "nodes %d exceeds maximum %d", req.Nodes, lim.Nodes)
	}
	if len(req.Tasks) == 0 {
		return nil, nil, badRequest("invalid", "tasks must be non-empty")
	}
	if apiErr := validateFaults(&req); apiErr != nil {
		return nil, nil, apiErr
	}
	// Cap planner work before any of it happens: a huge body of
	// one-replica micro-tasks must not drive unbounded planning.
	if len(req.Tasks) > lim.Tasks {
		return nil, nil, badRequest("too_many_tasks",
			"request lists %d tasks, exceeding maximum %d", len(req.Tasks), lim.Tasks)
	}
	for ti := range req.Tasks {
		if len(req.Tasks[ti].Inputs) > lim.InputsPerTask {
			return nil, nil, badRequest("too_many_inputs",
				"task %d lists %d inputs, exceeding maximum %d per task", ti, len(req.Tasks[ti].Inputs), lim.InputsPerTask)
		}
	}
	procNodes, apiErr := resolveProcNodes(&req, lim)
	if apiErr != nil {
		return nil, nil, apiErr
	}
	// Mirror the layout into an in-memory FS: each input becomes a chunk
	// created with its first replica, then the remaining replicas are added
	// (per-input replica counts may differ, unlike a Config-level factor).
	var firstReps [][]int
	for _, task := range req.Tasks {
		for _, in := range task.Inputs {
			if len(in.Replicas) > 0 {
				firstReps = append(firstReps, []int{in.Replicas[0]})
			} else {
				firstReps = append(firstReps, []int{0}) // rejected below
			}
		}
	}
	fs := dfs.New(layoutView{req.Nodes}, dfs.Config{
		Replication: 1,
		Placement:   dfs.FixedPlacement{Replicas: firstReps},
	})
	prob := &core.Problem{ProcNode: procNodes, FS: fs}
	for ti, task := range req.Tasks {
		if len(task.Inputs) == 0 {
			return nil, nil, badRequest("invalid", "task %d has no inputs", ti)
		}
		coreTask := core.Task{ID: ti}
		for ii, in := range task.Inputs {
			if in.SizeMB <= 0 {
				return nil, nil, badRequest("invalid", "task %d input %d: size_mb must be positive", ti, ii)
			}
			if len(in.Replicas) == 0 {
				return nil, nil, badRequest("invalid", "task %d input %d: replicas must be non-empty", ti, ii)
			}
			seen := map[int]bool{}
			for _, rep := range in.Replicas {
				if rep < 0 || rep >= req.Nodes {
					return nil, nil, badRequest("invalid", "task %d input %d: replica node %d outside cluster", ti, ii, rep)
				}
				if seen[rep] {
					return nil, nil, badRequest("invalid", "task %d input %d: duplicate replica node %d", ti, ii, rep)
				}
				seen[rep] = true
			}
			f, err := fs.CreateChunks(fmt.Sprintf("/layout/t%d/i%d", ti, ii), []float64{in.SizeMB})
			if err != nil {
				return nil, nil, &apiError{status: http.StatusInternalServerError, reason: "internal", err: err}
			}
			id := f.Chunks[0]
			for _, rep := range in.Replicas[1:] {
				if err := fs.AddReplica(id, rep); err != nil {
					return nil, nil, &apiError{status: http.StatusInternalServerError, reason: "internal", err: err}
				}
			}
			coreTask.Inputs = append(coreTask.Inputs, core.Input{Chunk: id, SizeMB: in.SizeMB})
		}
		prob.Tasks = append(prob.Tasks, coreTask)
	}
	if err := prob.Validate(); err != nil {
		return nil, nil, badRequest("invalid", "%w", err)
	}
	return &req, prob, nil
}

// validateFaults rejects malformed fault specs with specific messages
// before any planning happens — the engine re-validates, but its errors
// would surface as a 500 after the planner already ran.
func validateFaults(req *PlanRequest) *apiError {
	for i, f := range req.Failures {
		if f.Node < 0 || f.Node >= req.Nodes {
			return badRequest("invalid", "failures[%d]: node %d outside cluster", i, f.Node)
		}
		if f.AtSeconds < 0 {
			return badRequest("invalid", "failures[%d]: at_seconds must be non-negative", i)
		}
		if f.RecoverAtSeconds != 0 && f.RecoverAtSeconds <= f.AtSeconds {
			return badRequest("invalid", "failures[%d]: recover_at_seconds must be after at_seconds", i)
		}
	}
	for i, d := range req.Degradations {
		if d.Node < 0 || d.Node >= req.Nodes {
			return badRequest("invalid", "degradations[%d]: node %d outside cluster", i, d.Node)
		}
		if d.AtSeconds < 0 {
			return badRequest("invalid", "degradations[%d]: at_seconds must be non-negative", i)
		}
		if d.UntilSeconds != 0 && d.UntilSeconds <= d.AtSeconds {
			return badRequest("invalid", "degradations[%d]: until_seconds must be after at_seconds", i)
		}
		if !(d.DiskFactor > 0 && d.DiskFactor <= 1) || !(d.NICFactor > 0 && d.NICFactor <= 1) {
			return badRequest("invalid", "degradations[%d]: disk_factor and nic_factor must be in (0, 1]", i)
		}
	}
	if req.RepairDelaySeconds < 0 {
		return badRequest("invalid", "repair_delay_seconds must be non-negative")
	}
	return nil
}
