package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"opass/internal/bipartite"
	"opass/internal/core"
	"opass/internal/telemetry"
)

// bothPaths runs fn against a streaming-decode server and a legacy-decode
// server, proving the two request paths accept and reject identically.
func bothPaths(t *testing.T, opts ServerOptions, fn func(t *testing.T, srv *httptest.Server, reg *telemetry.Registry)) {
	t.Helper()
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"streaming", false}, {"legacy", true}} {
		t.Run(mode.name, func(t *testing.T) {
			o := opts
			o.LegacyDecode = mode.legacy
			reg := telemetry.NewRegistry()
			o.Registry = reg
			srv := httptest.NewServer(NewServer(o))
			defer srv.Close()
			fn(t, srv, reg)
		})
	}
}

// nTaskRequest builds a 4-node request with the given task/input shape.
func nTaskRequest(tasks, inputsPerTask int) PlanRequest {
	req := PlanRequest{Nodes: 4, Seed: 3}
	for i := 0; i < tasks; i++ {
		var ins []InputSpec
		for j := 0; j < inputsPerTask; j++ {
			ins = append(ins, InputSpec{SizeMB: 8, Replicas: []int{(i + j) % 4}})
		}
		req.Tasks = append(req.Tasks, TaskSpec{Inputs: ins})
	}
	return req
}

// rejection asserts a 400/413 with the right reason bucket and message
// fragment.
func rejection(t *testing.T, reg *telemetry.Registry, resp *http.Response, body []byte, status int, reason, fragment string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d: %.200s", resp.StatusCode, status, body)
	}
	if !strings.Contains(string(body), fragment) {
		t.Fatalf("body %.200q lacks %q", body, fragment)
	}
	if got := metricValue(t, reg, MetricRequestsRejected, fmt.Sprintf("reason=%q", reason)); got != 1 {
		t.Fatalf("rejection counter[%s] = %v, want 1", reason, got)
	}
}

// TestTaskLimitBoundary: exactly the task cap is accepted; one past is
// rejected in the too_many_tasks bucket — on both decode paths.
func TestTaskLimitBoundary(t *testing.T) {
	bothPaths(t, ServerOptions{Limits: RequestLimits{Tasks: 4}}, func(t *testing.T, srv *httptest.Server, reg *telemetry.Registry) {
		resp, body := post(t, srv, "/v1/plan", nTaskRequest(4, 1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("at-limit request rejected: %d %.200s", resp.StatusCode, body)
		}
		resp, body = post(t, srv, "/v1/plan", nTaskRequest(5, 1))
		rejection(t, reg, resp, body, http.StatusBadRequest, "too_many_tasks", "maximum")
	})
}

// TestInputLimitBoundary: exactly the per-task input cap is accepted; one
// past is rejected in the too_many_inputs bucket — on both decode paths.
func TestInputLimitBoundary(t *testing.T) {
	bothPaths(t, ServerOptions{Limits: RequestLimits{InputsPerTask: 3}}, func(t *testing.T, srv *httptest.Server, reg *telemetry.Registry) {
		resp, body := post(t, srv, "/v1/plan", nTaskRequest(2, 3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("at-limit request rejected: %d %.200s", resp.StatusCode, body)
		}
		resp, body = post(t, srv, "/v1/plan", nTaskRequest(2, 4))
		rejection(t, reg, resp, body, http.StatusBadRequest, "too_many_inputs", "per task")
	})
}

// TestBodyLimitBoundary: a body of exactly the byte cap is accepted; one
// byte past is rejected with 413 in the too_large bucket — on both paths.
func TestBodyLimitBoundary(t *testing.T) {
	raw, err := json.Marshal(nTaskRequest(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	exact := int64(len(raw))
	bothPaths(t, ServerOptions{Limits: RequestLimits{BodyBytes: exact}}, func(t *testing.T, srv *httptest.Server, reg *telemetry.Registry) {
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exact-size body rejected: %d", resp.StatusCode)
		}
	})
	bothPaths(t, ServerOptions{Limits: RequestLimits{BodyBytes: exact - 1}}, func(t *testing.T, srv *httptest.Server, reg *telemetry.Registry) {
		resp, body := post(t, srv, "/v1/plan", nTaskRequest(4, 1))
		rejection(t, reg, resp, body, http.StatusRequestEntityTooLarge, "too_large", "exceeds")
		if !resp.Close && resp.Header.Get("Connection") != "close" {
			t.Error("oversized-body response does not close the connection")
		}
	})
}

// TestNodesProcsLimitBoundary: the node and process caps hold on both
// paths, at the boundary and one past it.
func TestNodesProcsLimitBoundary(t *testing.T) {
	bothPaths(t, ServerOptions{Limits: RequestLimits{Nodes: 8, Procs: 4}}, func(t *testing.T, srv *httptest.Server, reg *telemetry.Registry) {
		req := nTaskRequest(2, 1)
		req.Nodes = 8
		req.ProcNodes = []int{0, 1, 2, 3}
		resp, body := post(t, srv, "/v1/plan", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("at-limit nodes/procs rejected: %d %.200s", resp.StatusCode, body)
		}
		req.Nodes = 9
		resp, body = post(t, srv, "/v1/plan", req)
		rejection(t, reg, resp, body, http.StatusBadRequest, "invalid", "nodes 9 exceeds maximum 8")
		req.Nodes = 8
		req.ProcNodes = []int{0, 1, 2, 3, 0}
		resp, body = post(t, srv, "/v1/plan", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("over-limit proc_nodes status %d: %.200s", resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "proc_nodes") || !strings.Contains(string(body), "maximum") {
			t.Fatalf("over-limit proc_nodes body %.200q lacks a specific message", body)
		}
	})
}

// TestStreamingFieldOrder: the streaming decoder must accept tasks arriving
// before nodes/proc_nodes (JSON key order is not guaranteed) and still
// apply node-dependent validation correctly.
func TestStreamingFieldOrder(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	body := `{"tasks": [
		{"inputs": [{"size_mb": 16, "replicas": [0]}]},
		{"inputs": [{"size_mb": 16, "replicas": [1]}]},
		{"inputs": [{"size_mb": 16, "replicas": [2]}]}
	], "seed": 5, "proc_nodes": [0, 1, 2], "nodes": 3}`
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tasks-first request rejected: %d", resp.StatusCode)
	}
	var out PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Owner) != 3 || out.LocalityFraction != 1.0 {
		t.Fatalf("plan = %+v, want 3 fully local tasks", out)
	}

	// Node-dependent validation still fires when nodes arrives last.
	bad := `{"tasks": [{"inputs": [{"size_mb": 16, "replicas": [7]}]}], "nodes": 3}`
	resp2, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp2.Body)
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), "task 0 input 0") {
		t.Fatalf("out-of-range replica after reorder: %d %s", resp2.StatusCode, buf)
	}
}

// TestStreamingUnknownFields: unknown keys are rejected at the top level
// and inside nested task/input objects, matching the legacy decoder's
// DisallowUnknownFields behavior.
func TestStreamingUnknownFields(t *testing.T) {
	bothPaths(t, ServerOptions{}, func(t *testing.T, srv *httptest.Server, reg *telemetry.Registry) {
		for _, body := range []string{
			`{"nodes": 4, "bogus": 1, "tasks": [{"inputs": [{"size_mb": 1, "replicas": [0]}]}]}`,
			`{"nodes": 4, "tasks": [{"bogus": 1, "inputs": [{"size_mb": 1, "replicas": [0]}]}]}`,
			`{"nodes": 4, "tasks": [{"inputs": [{"size_mb": 1, "replicas": [0], "bogus": 1}]}]}`,
		} {
			resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("unknown field accepted (%d): %s", resp.StatusCode, body)
			}
		}
	})
}

// TestStreamingLegacyPlanParity: the same mixed-shape request produces the
// same plan through both decode paths — different FS construction, same
// problem, byte-identical assignment.
func TestStreamingLegacyPlanParity(t *testing.T) {
	req := PlanRequest{Nodes: 6, Seed: 11, ProcNodes: []int{0, 1, 2, 3, 4, 5, 0, 3}}
	for i := 0; i < 24; i++ {
		ins := []InputSpec{{SizeMB: float64(8 + i%5), Replicas: []int{i % 6, (i + 2) % 6}}}
		if i%3 == 0 {
			ins = append(ins, InputSpec{SizeMB: 4, Replicas: []int{(i + 4) % 6}})
		}
		req.Tasks = append(req.Tasks, TaskSpec{Inputs: ins})
	}
	var got [2]PlanResponse
	for i, legacy := range []bool{false, true} {
		srv := httptest.NewServer(NewServer(ServerOptions{LegacyDecode: legacy}))
		resp, body := post(t, srv, "/v1/plan", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("legacy=%v: status %d: %.300s", legacy, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &got[i]); err != nil {
			t.Fatal(err)
		}
		srv.Close()
	}
	if got[0].Strategy != got[1].Strategy ||
		fmt.Sprint(got[0].Owner) != fmt.Sprint(got[1].Owner) ||
		fmt.Sprint(got[0].Lists) != fmt.Sprint(got[1].Lists) ||
		got[0].LocalityFraction != got[1].LocalityFraction {
		t.Fatalf("decode paths disagree:\nstreaming: %+v\nlegacy:    %+v", got[0], got[1])
	}
}

// TestStreamingValidationParity: requests the legacy path rejects are
// rejected by the streaming path too (the TestValidationErrors table plus
// fault-spec shapes).
func TestStreamingValidationParity(t *testing.T) {
	cases := []string{
		`{"nodes": 0, "tasks": [{"inputs": [{"size_mb": 1, "replicas": [0]}]}]}`,
		`{"nodes": 4}`,
		`{"nodes": 4, "tasks": []}`,
		`{"nodes": 4, "tasks": [{}]}`,
		`{"nodes": 4, "tasks": [{"inputs": []}]}`,
		`{"nodes": 4, "tasks": [{"inputs": [{"size_mb": 0, "replicas": [0]}]}]}`,
		`{"nodes": 4, "tasks": [{"inputs": [{"size_mb": 1}]}]}`,
		`{"nodes": 4, "tasks": [{"inputs": [{"size_mb": 1, "replicas": [9]}]}]}`,
		`{"nodes": 4, "tasks": [{"inputs": [{"size_mb": 1, "replicas": [1, 1]}]}]}`,
		`{"nodes": 4, "proc_nodes": [9], "tasks": [{"inputs": [{"size_mb": 1, "replicas": [0]}]}]}`,
		`{"nodes": 4, "failures": [{"node": 9, "at_seconds": 1}], "tasks": [{"inputs": [{"size_mb": 1, "replicas": [0]}]}]}`,
		`{"nodes": 4, "repair_delay_seconds": -1, "tasks": [{"inputs": [{"size_mb": 1, "replicas": [0]}]}]}`,
		`not json`,
		`[1, 2]`,
		`{"nodes": 4, "tasks": [{"inputs": [{"size_mb": 1, "replicas": [0]}]}], "tasks": []}`,
	}
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	for i, body := range cases {
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400: %s", i, resp.StatusCode, body)
		}
	}
}

// TestCompactJSONAndPretty: responses are compact by default; ?pretty=1
// opts into indented output.
func TestCompactJSONAndPretty(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	_, body := post(t, srv, "/v1/plan", layoutRequest("opass"))
	if bytes.Contains(bytes.TrimRight(body, "\n"), []byte("\n")) {
		t.Fatalf("default response is not compact: %.200q", body)
	}
	_, body = post(t, srv, "/v1/plan?pretty=1", layoutRequest("opass"))
	if !bytes.Contains(body, []byte("\n  ")) {
		t.Fatalf("?pretty=1 response is not indented: %.200q", body)
	}
}

// TestPickAssignerScalesSolver: above kuhnTaskThreshold the default strategy
// must select the direct matcher — Edmonds-Karp does not finish at 1M tasks.
func TestPickAssignerScalesSolver(t *testing.T) {
	small := &core.Problem{Tasks: make([]core.Task, 64)}
	req := &PlanRequest{}
	a, apiErr := pickAssigner(req, small)
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if sd, ok := a.(core.SingleData); !ok || sd.Algorithm != bipartite.EdmondsKarp {
		t.Fatalf("small problem assigner = %#v, want SingleData with Edmonds-Karp", a)
	}
	big := &core.Problem{Tasks: make([]core.Task, kuhnTaskThreshold)}
	a, apiErr = pickAssigner(req, big)
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if sd, ok := a.(core.SingleData); !ok || sd.Algorithm != bipartite.Kuhn {
		t.Fatalf("large problem assigner = %#v, want SingleData with Kuhn", a)
	}
}
