package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"opass/internal/telemetry"
)

// faultRequest is a layout big enough for a crash mid-run to leave a
// backlog worth replanning: 16 nodes, 64 tasks, three replicas each.
func faultRequest(strategy string) PlanRequest {
	req := PlanRequest{Nodes: 16, Strategy: strategy, Seed: 3}
	for i := 0; i < 64; i++ {
		req.Tasks = append(req.Tasks, TaskSpec{Inputs: []InputSpec{{
			SizeMB:   64,
			Replicas: []int{i % 16, (i + 5) % 16, (i + 11) % 16},
		}}})
	}
	return req
}

func TestSimulateWithFaultModel(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(NewHandler(ServerOptions{Registry: reg}))
	defer srv.Close()

	req := faultRequest("opass")
	req.Failures = []FailureSpec{{Node: 1, AtSeconds: 0.5}}
	req.Replan = true
	req.Repair = true
	req.RepairDelaySeconds = 1.0
	resp, body := post(t, srv, "/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Summary.Tasks != 64 {
		t.Fatalf("simulated %d tasks, want 64", out.Summary.Tasks)
	}
	if len(out.Summary.FailedNodes) != 1 || out.Summary.FailedNodes[0] != 1 {
		t.Fatalf("failed_nodes = %v, want [1]", out.Summary.FailedNodes)
	}
	if out.Summary.Replans == 0 {
		t.Fatal("summary reports no replans despite replan=true and a crash")
	}
	if out.Summary.RepairedChunks == 0 {
		t.Fatal("summary reports no repaired chunks despite repair=true")
	}

	// The recovery counters surface on /metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(raw)
	for _, name := range []string{MetricEngineRetries, MetricEngineReplans, MetricEngineRepairedChunks} {
		if !strings.Contains(text, name) {
			t.Fatalf("metrics exposition missing %s", name)
		}
	}
}

func TestSimulateTransientFailureReportsRecovery(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	req := faultRequest("opass")
	req.Failures = []FailureSpec{{Node: 2, AtSeconds: 0.3, RecoverAtSeconds: 1.5}}
	resp, body := post(t, srv, "/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Summary.RecoveredNodes) != 1 || out.Summary.RecoveredNodes[0] != 2 {
		t.Fatalf("recovered_nodes = %v, want [2]", out.Summary.RecoveredNodes)
	}
	if out.Summary.Tasks != 64 {
		t.Fatalf("simulated %d tasks, want 64", out.Summary.Tasks)
	}
}

func TestFaultSpecValidation(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	cases := []func(*PlanRequest){
		func(r *PlanRequest) { r.Failures = []FailureSpec{{Node: 99, AtSeconds: 1}} },
		func(r *PlanRequest) { r.Failures = []FailureSpec{{Node: 0, AtSeconds: -1}} },
		func(r *PlanRequest) { r.Failures = []FailureSpec{{Node: 0, AtSeconds: 2, RecoverAtSeconds: 1}} },
		func(r *PlanRequest) {
			r.Degradations = []DegradationSpec{{Node: 0, AtSeconds: 1, DiskFactor: 0, NICFactor: 1}}
		},
		func(r *PlanRequest) {
			r.Degradations = []DegradationSpec{{Node: 0, AtSeconds: 1, DiskFactor: 0.5, NICFactor: 1.5}}
		},
		func(r *PlanRequest) {
			r.Degradations = []DegradationSpec{{Node: 0, AtSeconds: 2, UntilSeconds: 1, DiskFactor: 0.5, NICFactor: 0.5}}
		},
		func(r *PlanRequest) {
			r.Degradations = []DegradationSpec{{Node: 99, AtSeconds: 1, DiskFactor: 0.5, NICFactor: 0.5}}
		},
		func(r *PlanRequest) { r.RepairDelaySeconds = -1 },
	}
	for i, mutate := range cases {
		req := faultRequest("opass")
		mutate(&req)
		resp, body := post(t, srv, "/v1/simulate", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400: %s", i, resp.StatusCode, body)
		}
	}
}

// The fault model is simulate-only: /v1/plan accepts the fields but the
// plan it returns is computed from the layout as given.
func TestPlanIgnoresFaultModel(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	plain, body := post(t, srv, "/v1/plan", faultRequest("opass"))
	if plain.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", plain.StatusCode, body)
	}
	var base PlanResponse
	if err := json.Unmarshal(body, &base); err != nil {
		t.Fatal(err)
	}

	req := faultRequest("opass")
	req.Failures = []FailureSpec{{Node: 1, AtSeconds: 0.5}}
	req.Replan = true
	resp, body := post(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var faulted PlanResponse
	if err := json.Unmarshal(body, &faulted); err != nil {
		t.Fatal(err)
	}
	if len(faulted.Owner) != len(base.Owner) {
		t.Fatalf("plan shape changed: %d vs %d owners", len(faulted.Owner), len(base.Owner))
	}
	for i := range base.Owner {
		if faulted.Owner[i] != base.Owner[i] {
			t.Fatalf("owner[%d] differs (%d vs %d): fault fields leaked into planning", i, faulted.Owner[i], base.Owner[i])
		}
	}
}

// TestSimulateDeltaReplanMetric: replanning after a crash runs the
// incremental path by default, and the tasks it re-matches surface on the
// delta counter — strictly fewer than the whole job, proving the replan
// was surgical rather than a full backlog re-match.
func TestSimulateDeltaReplanMetric(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(NewHandler(ServerOptions{Registry: reg}))
	defer srv.Close()

	req := faultRequest("opass")
	req.Failures = []FailureSpec{{Node: 1, AtSeconds: 0.5}}
	req.Replan = true
	resp, body := post(t, srv, "/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Summary.Replans == 0 {
		t.Fatal("summary reports no replans despite replan=true and a crash")
	}
	delta := metricValue(t, reg, MetricEngineDeltaReplanned)
	if delta <= 0 {
		t.Fatalf("%s = %v, want > 0", MetricEngineDeltaReplanned, delta)
	}
	if delta >= float64(len(req.Tasks)) {
		t.Fatalf("%s = %v, want fewer than the %d-task job", MetricEngineDeltaReplanned, delta, len(req.Tasks))
	}
	// The partial-invalidation counter is registered (zero here — the
	// service plans against per-request snapshots, so nothing tag-evicts).
	text := scrape(t, srv)
	if !strings.Contains(text, MetricPlanCachePartialInvalidations) {
		t.Fatalf("metrics exposition missing %s", MetricPlanCachePartialInvalidations)
	}
}
