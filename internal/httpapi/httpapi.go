// Package httpapi exposes the Opass planners as a JSON-over-HTTP service —
// the integration surface a real deployment would use: an application (or
// its job submitter) posts the block layout it read from its namenode plus
// its task list, and receives the task→process assignment to execute. A
// second endpoint runs the full cluster simulation on the submitted layout,
// so capacity questions ("what would this job's makespan be?") can be
// answered without touching the cluster.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	POST /v1/plan      compute an assignment for a submitted layout
//	POST /v1/simulate  plan + simulate execution, returning trace statistics
//
// The service is stateless; every request carries its complete layout.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/traceio"
)

// InputSpec is one data dependency of a task: its size and the nodes
// holding a replica (as reported by the namenode).
type InputSpec struct {
	SizeMB   float64 `json:"size_mb"`
	Replicas []int   `json:"replicas"`
}

// TaskSpec is one data-processing task.
type TaskSpec struct {
	Inputs []InputSpec `json:"inputs"`
}

// PlanRequest is the body of POST /v1/plan and /v1/simulate.
type PlanRequest struct {
	// Nodes is the cluster size; processes default to one per node
	// (ProcNodes overrides placement of process rank i).
	Nodes     int        `json:"nodes"`
	ProcNodes []int      `json:"proc_nodes,omitempty"`
	Strategy  string     `json:"strategy,omitempty"` // opass | rank | random | greedy
	Seed      int64      `json:"seed,omitempty"`
	Tasks     []TaskSpec `json:"tasks"`
}

// PlanResponse is the body returned by POST /v1/plan.
type PlanResponse struct {
	Strategy string  `json:"strategy"`
	Owner    []int   `json:"owner"`
	Lists    [][]int `json:"lists"`
	// LocalityFraction is the fraction of input bytes co-located with their
	// assigned process.
	LocalityFraction float64 `json:"locality_fraction"`
	PlannerMillis    float64 `json:"planner_ms"`
}

// SimulateResponse is the body returned by POST /v1/simulate.
type SimulateResponse struct {
	Plan    PlanResponse    `json:"plan"`
	Summary traceio.Summary `json:"summary"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		req, prob, status, err := decodeProblem(r)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		resp, _, status, err := plan(req, prob)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		req, prob, status, err := decodeProblem(r)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		resp, assignment, status, err := plan(req, prob)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		topo := cluster.New(req.Nodes, cluster.Marmot())
		// Rebuild the problem against the simulation topology (the layout
		// FS carries no hardware).
		res, err := engine.RunAssignment(engine.Options{
			Topo: topo, FS: prob.FS, Problem: prob, Strategy: resp.Strategy,
		}, assignment)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, SimulateResponse{Plan: resp, Summary: traceio.Summarize(res)})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// layoutView is the minimal cluster view for a submitted layout.
type layoutView struct{ n int }

func (v layoutView) NumNodes() int  { return v.n }
func (v layoutView) RackOf(int) int { return 0 }

// decodeProblem parses and validates a request into a core.Problem backed
// by an in-memory file system that mirrors the submitted block layout.
func decodeProblem(r *http.Request) (*PlanRequest, *core.Problem, int, error) {
	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 32<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	if req.Nodes <= 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("nodes must be positive")
	}
	if len(req.Tasks) == 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("tasks must be non-empty")
	}
	procNodes := req.ProcNodes
	if len(procNodes) == 0 {
		procNodes = make([]int, req.Nodes)
		for i := range procNodes {
			procNodes[i] = i
		}
	}
	for _, n := range procNodes {
		if n < 0 || n >= req.Nodes {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("proc_nodes entry %d outside [0,%d)", n, req.Nodes)
		}
	}
	// Mirror the layout into an in-memory FS: each input becomes a chunk
	// created with its first replica, then the remaining replicas are added
	// (per-input replica counts may differ, unlike a Config-level factor).
	var firstReps [][]int
	for _, task := range req.Tasks {
		for _, in := range task.Inputs {
			if len(in.Replicas) > 0 {
				firstReps = append(firstReps, []int{in.Replicas[0]})
			} else {
				firstReps = append(firstReps, []int{0}) // rejected below
			}
		}
	}
	fs := dfs.New(layoutView{req.Nodes}, dfs.Config{
		Replication: 1,
		Placement:   dfs.FixedPlacement{Replicas: firstReps},
	})
	prob := &core.Problem{ProcNode: procNodes, FS: fs}
	for ti, task := range req.Tasks {
		if len(task.Inputs) == 0 {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d has no inputs", ti)
		}
		coreTask := core.Task{ID: ti}
		for ii, in := range task.Inputs {
			if in.SizeMB <= 0 {
				return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d input %d: size_mb must be positive", ti, ii)
			}
			if len(in.Replicas) == 0 {
				return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d input %d: replicas must be non-empty", ti, ii)
			}
			seen := map[int]bool{}
			for _, rep := range in.Replicas {
				if rep < 0 || rep >= req.Nodes {
					return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d input %d: replica node %d outside cluster", ti, ii, rep)
				}
				if seen[rep] {
					return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d input %d: duplicate replica node %d", ti, ii, rep)
				}
				seen[rep] = true
			}
			f, err := fs.CreateChunks(fmt.Sprintf("/layout/t%d/i%d", ti, ii), []float64{in.SizeMB})
			if err != nil {
				return nil, nil, http.StatusInternalServerError, err
			}
			id := f.Chunks[0]
			for _, rep := range in.Replicas[1:] {
				if err := fs.AddReplica(id, rep); err != nil {
					return nil, nil, http.StatusInternalServerError, err
				}
			}
			coreTask.Inputs = append(coreTask.Inputs, core.Input{Chunk: id, SizeMB: in.SizeMB})
		}
		prob.Tasks = append(prob.Tasks, coreTask)
	}
	if err := prob.Validate(); err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	return &req, prob, http.StatusOK, nil
}

// plan runs the requested strategy over the decoded problem.
func plan(req *PlanRequest, prob *core.Problem) (PlanResponse, *core.Assignment, int, error) {
	multi := false
	for i := range prob.Tasks {
		if len(prob.Tasks[i].Inputs) > 1 {
			multi = true
			break
		}
	}
	var assigner core.Assigner
	switch req.Strategy {
	case "", "opass":
		if multi {
			assigner = core.MultiData{Seed: req.Seed}
		} else {
			assigner = core.SingleData{Seed: req.Seed}
		}
	case "rank":
		assigner = core.RankStatic{}
	case "random":
		assigner = core.RandomStatic{Seed: req.Seed}
	case "greedy":
		assigner = core.GreedyLocality{Seed: req.Seed}
	default:
		return PlanResponse{}, nil, http.StatusBadRequest, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	start := time.Now()
	a, err := assigner.Assign(prob)
	if err != nil {
		return PlanResponse{}, nil, http.StatusInternalServerError, err
	}
	return PlanResponse{
		Strategy:         assigner.Name(),
		Owner:            a.Owner,
		Lists:            a.Lists,
		LocalityFraction: a.LocalityFraction(),
		PlannerMillis:    float64(time.Since(start).Microseconds()) / 1000,
	}, a, http.StatusOK, nil
}
