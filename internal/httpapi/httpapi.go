// Package httpapi exposes the Opass planners as a JSON-over-HTTP service —
// the integration surface a real deployment would use: an application (or
// its job submitter) posts the block layout it read from its namenode plus
// its task list, and receives the task→process assignment to execute. A
// second endpoint runs the full cluster simulation on the submitted layout,
// so capacity questions ("what would this job's makespan be?") can be
// answered without touching the cluster.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /metrics      Prometheus-style text exposition of service metrics
//	POST /v1/plan      compute an assignment for a submitted layout
//	POST /v1/simulate  plan + simulate execution, returning trace statistics
//
// The service is stateless; every request carries its complete layout.
// Every request is stamped with an X-Request-Id, logged as one structured
// line, and counted by route/status; planner latency and achieved locality
// are recorded per strategy, and each simulation updates engine gauges
// (makespan, tasks run, retries) — see internal/telemetry.
//
// Request lifecycle: the expensive routes sit behind bounded admission (a
// per-route weighted semaphore sized in work units, with a bounded queue
// wait — see admission.go) and run under a per-request deadline. A request
// that cannot be admitted in time is shed with 429 + Retry-After; a
// draining server sheds with 503; a request whose deadline expires or whose
// client disconnects is cancelled cooperatively all the way through the
// planner's flow loops and the simulation's event loop, releasing its
// admission grant promptly instead of burning CPU for an absent client.
package httpapi

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"opass/internal/bipartite"
	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/engine"
	"opass/internal/plancache"
	"opass/internal/telemetry"
	"opass/internal/traceio"
)

// Metric family names recorded by the handler (beyond the per-route series
// the telemetry middleware owns).
const (
	MetricPlannerLatency = "opass_planner_latency_seconds"
	MetricPlanLocality   = "opass_plan_locality_fraction"
	MetricPlans          = "opass_plans_total"
	MetricSimRuns        = "opass_sim_runs_total"
	MetricSimTasks       = "opass_sim_tasks_total"
	MetricSimRetries     = "opass_sim_retries_total"
	// MetricEngineRetries, MetricEngineReplans and MetricEngineRepairedChunks
	// count the engine's fault-recovery work across all simulations: reads
	// retried after a DataNode loss, backlog replans spliced into running
	// jobs, and chunks restored to full replication by the repair pass.
	MetricEngineRetries        = "opass_engine_retries_total"
	MetricEngineReplans        = "opass_engine_replans_total"
	MetricEngineRepairedChunks = "opass_engine_repaired_chunks_total"
	// MetricEngineDeltaReplanned counts tasks re-matched by incremental
	// (delta) replans — the surgical subset of each backlog actually moved,
	// as opposed to MetricEngineReplans which counts whole splice events.
	MetricEngineDeltaReplanned = "opass_engine_delta_replanned_tasks_total"
	// MetricEngineRackLocalMB / MetricEngineCrossRackMB split the engine's
	// remote read traffic by rack boundary: bytes served within the
	// reader's rack vs bytes that crossed a rack uplink (the traffic an
	// oversubscribed core fabric charges for).
	MetricEngineRackLocalMB = "opass_engine_rack_local_mb_total"
	MetricEngineCrossRackMB = "opass_engine_cross_rack_mb_total"
	MetricSimLastMakespan   = "opass_sim_last_makespan_seconds"
	MetricSimLastTasksRun   = "opass_sim_last_tasks_run"
	MetricSimLastRetries    = "opass_sim_last_retries"
	MetricSimLastLocality   = "opass_sim_last_local_fraction"
	MetricRequestsRejected  = "opass_requests_rejected_total"
	// MetricRequestsShed counts requests refused by the admission layer,
	// by route and reason (queue_timeout, draining).
	MetricRequestsShed = "opass_requests_shed_total"
	// MetricRequestsCancelled counts admitted requests abandoned mid-work,
	// by route and reason (deadline, disconnect).
	MetricRequestsCancelled = "opass_requests_cancelled_total"
	// MetricRequestQueueSeconds observes time spent waiting for admission.
	MetricRequestQueueSeconds = "opass_request_queue_seconds"
	// MetricResponseErrors counts response bodies that failed to encode or
	// write (typically the client hanging up mid-body).
	MetricResponseErrors = "opass_response_write_errors_total"
	// MetricPlanCacheHits counts plans served from the fingerprinted plan
	// cache without running the planner.
	MetricPlanCacheHits = "opass_plan_cache_hits_total"
	// MetricPlanCacheMisses counts plans that ran the planner (and, on
	// success, populated the cache).
	MetricPlanCacheMisses = "opass_plan_cache_misses_total"
	// MetricPlanCacheCoalesced counts requests that attached to another
	// request's in-flight planner run instead of starting their own.
	MetricPlanCacheCoalesced = "opass_plan_cache_coalesced_total"
	// MetricPlanCacheEvictions counts cache entries dropped by the
	// entry/byte bounds or by TTL expiry.
	MetricPlanCacheEvictions = "opass_plan_cache_evictions_total"
	// MetricPlanCacheEntries and MetricPlanCacheBytes gauge the cache's
	// current footprint.
	MetricPlanCacheEntries = "opass_plan_cache_entries"
	MetricPlanCacheBytes   = "opass_plan_cache_bytes"
	// MetricPlanCachePartialInvalidations counts cache entries evicted by
	// tag-scoped (per-file) invalidation rather than a full flush. The
	// HTTP service plans against per-request snapshots, so this stays zero
	// here; library embedders sharing a live FileSystem through
	// plancache.ProblemCache drive it.
	MetricPlanCachePartialInvalidations = "opass_plan_cache_partial_invalidations_total"
	// MetricPlanCacheRemote* count the shared (L2) plan-cache tier's
	// traffic: plans adopted from another replica (hits), lookups that fell
	// through to the local planner (misses), backend failures treated as
	// misses (errors), and plans published for the fleet (sets).
	MetricPlanCacheRemoteHits   = "opass_plan_cache_remote_hits_total"
	MetricPlanCacheRemoteMisses = "opass_plan_cache_remote_misses_total"
	MetricPlanCacheRemoteErrors = "opass_plan_cache_remote_errors_total"
	MetricPlanCacheRemoteSets   = "opass_plan_cache_remote_sets_total"
)

// Admission and deadline defaults; ServerOptions overrides them and opassd
// exposes them as flags.
const (
	// DefaultMaxInflight is the per-route admission capacity in work units
	// (one unit per task plus one per input across concurrent requests),
	// sized so one at-limit request (1M tasks and their inputs) fits.
	DefaultMaxInflight = 1 << 22
	// DefaultQueueWait bounds how long a request may wait for admission
	// before being shed with 429.
	DefaultQueueWait = 2 * time.Second
	// DefaultRequestTimeout is the per-request processing deadline, kept
	// below opassd's 60s WriteTimeout so the service cancels work while the
	// client can still be told about it.
	DefaultRequestTimeout = 55 * time.Second
)

// Plan-cache defaults; ServerOptions overrides them and opassd exposes them
// as flags.
const (
	// DefaultPlanCacheEntries bounds how many fingerprinted plans are kept.
	DefaultPlanCacheEntries = 4096
	// DefaultPlanCacheMB bounds the cache's estimated memory in MiB.
	DefaultPlanCacheMB = 64
	// DefaultPlanCacheTTL bounds how long a cached plan may be served. The
	// fingerprint already invalidates on any placement change visible in
	// the request (and on dfs.FileSystem.Epoch for library callers); the
	// TTL is a second line of defense against layouts that drift outside
	// the fingerprint's view.
	DefaultPlanCacheTTL = 5 * time.Minute
)

// Shared-tier defaults; ServerOptions overrides them and opassd exposes
// them as flags.
const (
	// DefaultRemoteTierNamespace prefixes every remote tier key. Bump it
	// when the tierPlan wire format changes so mixed-version fleets land
	// in disjoint keyspaces instead of failing to decode each other.
	DefaultRemoteTierNamespace = "opass1"
	// DefaultRemoteTierTTL bounds a published plan's remote lifetime.
	DefaultRemoteTierTTL = 10 * time.Minute
)

// statusClientClosedRequest is the nginx-convention status recorded when
// the client disconnected before the response; it is never seen by the
// (absent) client but keeps the telemetry middleware's status label honest.
const statusClientClosedRequest = 499

// InputSpec is one data dependency of a task: its size and the nodes
// holding a replica (as reported by the namenode).
type InputSpec struct {
	SizeMB   float64 `json:"size_mb"`
	Replicas []int   `json:"replicas"`
}

// TaskSpec is one data-processing task.
type TaskSpec struct {
	Inputs []InputSpec `json:"inputs"`
}

// FailureSpec schedules a DataNode outage in a simulation: the node stops
// serving reads at at_seconds; a zero recover_at_seconds makes the loss
// permanent, a positive one (strictly after at_seconds) brings the node
// back with its data intact.
type FailureSpec struct {
	Node             int     `json:"node"`
	AtSeconds        float64 `json:"at_seconds"`
	RecoverAtSeconds float64 `json:"recover_at_seconds,omitempty"`
}

// DegradationSpec slows a node's hardware in a simulation: from at_seconds
// until until_seconds (zero = rest of the run) its disk and NIC run at the
// given fractions of nominal speed (each in (0, 1]).
type DegradationSpec struct {
	Node         int     `json:"node"`
	AtSeconds    float64 `json:"at_seconds"`
	UntilSeconds float64 `json:"until_seconds,omitempty"`
	DiskFactor   float64 `json:"disk_factor"`
	NICFactor    float64 `json:"nic_factor"`
}

// PlanRequest is the body of POST /v1/plan and /v1/simulate.
type PlanRequest struct {
	// Nodes is the cluster size; processes default to one per node
	// (ProcNodes overrides placement of process rank i).
	Nodes     int        `json:"nodes"`
	ProcNodes []int      `json:"proc_nodes,omitempty"`
	Strategy  string     `json:"strategy,omitempty"` // opass | rank | random | greedy
	Seed      int64      `json:"seed,omitempty"`
	Tasks     []TaskSpec `json:"tasks"`

	// The fault model below only affects /v1/simulate (and is excluded
	// from the plan-cache fingerprint): /v1/plan answers from the layout
	// as given. Replan re-runs the planner over the not-yet-started
	// backlog whenever the placement truth changes mid-run; Repair
	// re-replicates under-replicated chunks RepairDelaySeconds after a
	// permanent crash.
	Failures           []FailureSpec     `json:"failures,omitempty"`
	Degradations       []DegradationSpec `json:"degradations,omitempty"`
	Replan             bool              `json:"replan,omitempty"`
	Repair             bool              `json:"repair,omitempty"`
	RepairDelaySeconds float64           `json:"repair_delay_seconds,omitempty"`

	// weight caches the admission work estimate (tasks + inputs) computed
	// during streaming decode, where Tasks is never materialized.
	weight int64
}

// PlanResponse is the body returned by POST /v1/plan.
type PlanResponse struct {
	Strategy string  `json:"strategy"`
	Owner    []int   `json:"owner"`
	Lists    [][]int `json:"lists"`
	// LocalityFraction is the fraction of input bytes co-located with their
	// assigned process.
	LocalityFraction float64 `json:"locality_fraction"`
	PlannerMillis    float64 `json:"planner_ms"`
}

// SimulateResponse is the body returned by POST /v1/simulate.
type SimulateResponse struct {
	Plan    PlanResponse    `json:"plan"`
	Summary traceio.Summary `json:"summary"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// apiError pairs an HTTP status with the rejection-reason bucket the
// rejected-requests counter records.
type apiError struct {
	status int
	reason string
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }

// badRequest builds a 400 apiError bucketed under reason.
func badRequest(reason, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, reason: reason, err: fmt.Errorf(format, args...)}
}

// ServerOptions configures the handler's telemetry and admission limits.
type ServerOptions struct {
	// Registry receives service metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Logger receives one structured line per request; nil disables
	// request logging.
	Logger *slog.Logger
	// MaxInflight is the per-route admission capacity in work units
	// (tasks + inputs of concurrently admitted requests); 0 means
	// DefaultMaxInflight.
	MaxInflight int64
	// QueueWait bounds the admission wait before a request is shed with
	// 429; 0 means DefaultQueueWait.
	QueueWait time.Duration
	// RequestTimeout is the per-request processing deadline; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// PlanCacheEntries bounds the fingerprinted plan cache's entry count;
	// 0 means DefaultPlanCacheEntries, negative disables the cache (every
	// request runs the planner).
	PlanCacheEntries int
	// PlanCacheMB bounds the plan cache's estimated memory in MiB; 0 means
	// DefaultPlanCacheMB.
	PlanCacheMB int
	// PlanCacheTTL bounds a cached plan's age; 0 means
	// DefaultPlanCacheTTL, negative means entries never expire.
	PlanCacheTTL time.Duration
	// Limits overrides the request-decode bounds; zero fields mean the
	// package defaults (see RequestLimits).
	Limits RequestLimits
	// LegacyDecode routes /v1/plan and /v1/simulate through the
	// whole-body request decoder instead of the streaming one — a compat
	// escape hatch, and the behavioral reference the streaming path's
	// tests compare against.
	LegacyDecode bool
	// RemoteTier, when non-nil, is the shared L2 plan cache consulted
	// (and populated) inside the planner singleflight, letting N opassd
	// replicas dedupe planner work fleet-wide. Backend failures degrade
	// to local-only caching, never to errors.
	RemoteTier plancache.Tier
	// RemoteTierNamespace prefixes every remote tier key, versioning the
	// fleet keyspace; "" means DefaultRemoteTierNamespace.
	RemoteTierNamespace string
	// RemoteTierTTL bounds a published plan's remote lifetime; 0 means
	// DefaultRemoteTierTTL, negative means no expiry.
	RemoteTierTTL time.Duration
}

// Server is the Opass planning service: an http.Handler plus the drain
// control a graceful shutdown needs.
type Server struct {
	reg        *telemetry.Registry
	logger     *slog.Logger
	handler    http.Handler
	planAdmit  *admitter
	simAdmit   *admitter
	queueWait  time.Duration
	reqTimeout time.Duration
	// limits bounds the request decoders; legacyDecode selects the
	// whole-body path over the streaming default.
	limits       RequestLimits
	legacyDecode bool
	// tier is the shared L2 plan cache (nil when not configured); tierNS
	// and tierTTL shape its keys and entry lifetimes.
	tier    plancache.Tier
	tierNS  string
	tierTTL time.Duration
	// planCache memoizes planner results by problem fingerprint; nil when
	// disabled. /v1/plan and /v1/simulate share it (the simulation itself
	// is never cached).
	planCache *plancache.Cache[cachedPlan]
	// partialsSeen is the last plancache partial-invalidation total already
	// exported; the plan path exports the monotonic difference so the
	// counter tracks the cache's lifetime Stats without double counting.
	partialsSeen atomic.Uint64
	// plannerRan, when set, is called once per actual planner invocation —
	// a test hook proving cache hits and coalesced requests skip the
	// planner.
	plannerRan func()
}

// cachedPlan is the unit the plan cache stores: the response envelope plus
// the assignment /v1/simulate feeds to the engine. Both are treated as
// immutable once cached (the engine copies the lists it consumes).
type cachedPlan struct {
	resp PlanResponse
	a    *core.Assignment
}

// Handler returns the service's HTTP handler with default telemetry (a
// private registry, no request logging) and default limits.
func Handler() http.Handler { return NewServer(ServerOptions{}) }

// NewHandler returns the service's HTTP handler wired to the given
// telemetry sinks and limits.
func NewHandler(opts ServerOptions) http.Handler { return NewServer(opts) }

// routeLabel bounds metric label cardinality to the known route set.
func routeLabel(r *http.Request) string {
	switch r.URL.Path {
	case "/healthz", "/metrics", "/v1/plan", "/v1/simulate":
		return r.URL.Path
	default:
		return "other"
	}
}

// NewServer builds the service wired to the given telemetry sinks and
// admission limits.
func NewServer(opts ServerOptions) *Server {
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.Help(MetricPlannerLatency, "Planner wall time in seconds, by strategy.")
	reg.Help(MetricPlanLocality, "Planned locality fraction (local bytes / total bytes), by strategy.")
	reg.Help(MetricPlans, "Successful plans computed, by strategy.")
	reg.Help(MetricSimRuns, "Simulations executed.")
	reg.Help(MetricSimTasks, "Tasks executed across all simulations.")
	reg.Help(MetricSimRetries, "Reads retried after DataNode failures across all simulations.")
	reg.Help(MetricEngineRetries, "Reads retried after DataNode failures across all simulations.")
	reg.Help(MetricEngineReplans, "Backlog replans spliced into running simulations.")
	reg.Help(MetricEngineRepairedChunks, "Chunks restored to full replication by the repair pass, across all simulations.")
	reg.Help(MetricEngineDeltaReplanned, "Tasks re-matched by incremental (delta) replans across all simulations.")
	reg.Help(MetricEngineRackLocalMB, "Remote megabytes served within the reader's rack, across all simulations.")
	reg.Help(MetricEngineCrossRackMB, "Remote megabytes that crossed a rack uplink, across all simulations.")
	reg.Help(MetricSimLastMakespan, "Makespan of the most recent simulation, seconds of virtual time.")
	reg.Help(MetricSimLastTasksRun, "Tasks executed by the most recent simulation.")
	reg.Help(MetricSimLastRetries, "Retried reads in the most recent simulation.")
	reg.Help(MetricSimLastLocality, "Achieved local-read fraction of the most recent simulation.")
	reg.Help(MetricRequestsRejected, "Requests rejected before planning, by reason.")
	reg.Help(MetricRequestsShed, "Requests refused by the admission layer, by route and reason.")
	reg.Help(MetricRequestsCancelled, "Admitted requests abandoned mid-work, by route and reason.")
	reg.Help(MetricRequestQueueSeconds, "Time spent waiting for admission, by route.")
	reg.Help(MetricResponseErrors, "Response bodies that failed to write, by route.")
	reg.Help(MetricPlanCacheHits, "Plans served from the fingerprinted plan cache.")
	reg.Help(MetricPlanCacheMisses, "Plans that ran the planner and populated the cache.")
	reg.Help(MetricPlanCacheCoalesced, "Requests that attached to an in-flight identical planner run.")
	reg.Help(MetricPlanCacheEvictions, "Plan-cache entries dropped by capacity bounds or TTL.")
	reg.Help(MetricPlanCacheEntries, "Plans currently cached.")
	reg.Help(MetricPlanCacheBytes, "Estimated bytes of plans currently cached.")
	reg.Help(MetricPlanCachePartialInvalidations, "Plan-cache entries evicted by tag-scoped invalidation instead of a full flush.")
	reg.Help(MetricPlanCacheRemoteHits, "Plans adopted from the shared remote cache tier.")
	reg.Help(MetricPlanCacheRemoteMisses, "Remote-tier lookups that fell through to the local planner.")
	reg.Help(MetricPlanCacheRemoteErrors, "Remote-tier backend failures, treated as misses.")
	reg.Help(MetricPlanCacheRemoteSets, "Plans published to the shared remote cache tier.")

	maxInflight := opts.MaxInflight
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	queueWait := opts.QueueWait
	if queueWait <= 0 {
		queueWait = DefaultQueueWait
	}
	reqTimeout := opts.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = DefaultRequestTimeout
	}
	s := &Server{
		reg:          reg,
		logger:       opts.Logger,
		planAdmit:    newAdmitter(maxInflight),
		simAdmit:     newAdmitter(maxInflight),
		queueWait:    queueWait,
		reqTimeout:   reqTimeout,
		limits:       opts.Limits.withDefaults(),
		legacyDecode: opts.LegacyDecode,
	}
	if opts.RemoteTier != nil {
		s.tier = opts.RemoteTier
		s.tierNS = opts.RemoteTierNamespace
		if s.tierNS == "" {
			s.tierNS = DefaultRemoteTierNamespace
		}
		switch {
		case opts.RemoteTierTTL == 0:
			s.tierTTL = DefaultRemoteTierTTL
		case opts.RemoteTierTTL > 0:
			s.tierTTL = opts.RemoteTierTTL
		}
		// Instantiate the remote counters at zero so the families are
		// scrapeable before the first fleet interaction.
		reg.Counter(MetricPlanCacheRemoteHits)
		reg.Counter(MetricPlanCacheRemoteMisses)
		reg.Counter(MetricPlanCacheRemoteErrors)
		reg.Counter(MetricPlanCacheRemoteSets)
	}
	if opts.PlanCacheEntries >= 0 {
		entries := opts.PlanCacheEntries
		if entries == 0 {
			entries = DefaultPlanCacheEntries
		}
		mb := opts.PlanCacheMB
		if mb <= 0 {
			mb = DefaultPlanCacheMB
		}
		ttl := opts.PlanCacheTTL
		switch {
		case ttl == 0:
			ttl = DefaultPlanCacheTTL
		case ttl < 0:
			ttl = 0 // plancache: no expiry
		}
		s.planCache = plancache.New[cachedPlan](plancache.Options{
			MaxEntries: entries,
			MaxBytes:   int64(mb) << 20,
			TTL:        ttl,
			OnEvict: func(evicted, entries int, bytes int64) {
				reg.Counter(MetricPlanCacheEvictions).Add(float64(evicted))
				reg.Gauge(MetricPlanCacheEntries).Set(float64(entries))
				reg.Gauge(MetricPlanCacheBytes).Set(float64(bytes))
			},
		})
		reg.Gauge(MetricPlanCacheEntries).Set(0)
		reg.Gauge(MetricPlanCacheBytes).Set(0)
		// Instantiate the partial-invalidation counter at zero so the
		// family is scrapeable before the first tag-scoped eviction.
		reg.Counter(MetricPlanCachePartialInvalidations)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.handler = telemetry.Middleware{Reg: reg, Logger: opts.Logger, Route: routeLabel}.Wrap(mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Drain flips both admitters into shutdown mode: queued requests shed with
// 503 immediately and new ones are refused, while admitted requests run to
// completion. Call it before http.Server.Shutdown so keep-alive connections
// cannot sneak fat requests into a draining process.
func (s *Server) Drain() {
	s.planAdmit.drain()
	s.simAdmit.drain()
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	req, prob, apiErr := s.decodeProblem(w, r)
	if apiErr != nil {
		s.reject(w, r, apiErr)
		return
	}
	release, ok := s.admit(w, r, s.planAdmit, workWeight(req))
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
	defer cancel()
	resp, _, err := s.plan(ctx, req, prob)
	if err != nil {
		s.planFailed(w, r, err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, prob, apiErr := s.decodeProblem(w, r)
	if apiErr != nil {
		s.reject(w, r, apiErr)
		return
	}
	release, ok := s.admit(w, r, s.simAdmit, workWeight(req))
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
	defer cancel()
	resp, assignment, err := s.plan(ctx, req, prob)
	if err != nil {
		s.planFailed(w, r, err)
		return
	}
	topo := cluster.New(req.Nodes, cluster.Marmot())
	// Rebuild the problem against the simulation topology (the layout
	// FS carries no hardware).
	eopts := engine.Options{
		Topo: topo, FS: prob.FS, Problem: prob, Strategy: resp.Strategy,
		Replan: req.Replan, Repair: req.Repair,
		RepairDelay: req.RepairDelaySeconds, ReplanSeed: req.Seed,
	}
	for _, f := range req.Failures {
		eopts.Failures = append(eopts.Failures, engine.NodeFailure{
			Node: f.Node, At: f.AtSeconds, RecoverAt: f.RecoverAtSeconds,
		})
	}
	for _, d := range req.Degradations {
		eopts.Degradations = append(eopts.Degradations, engine.NodeDegradation{
			Node: d.Node, At: d.AtSeconds, Until: d.UntilSeconds,
			DiskFactor: d.DiskFactor, NICFactor: d.NICFactor,
		})
	}
	res, err := engine.RunAssignmentContext(ctx, eopts, assignment)
	if err != nil {
		if s.aborted(w, r, err) {
			return
		}
		s.writeJSON(w, r, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	// Engine counters surface as gauges (last run) and counters
	// (lifetime totals) so load tests can watch throughput live.
	s.reg.Counter(MetricSimRuns).Inc()
	s.reg.Counter(MetricSimTasks).Add(float64(res.TasksRun))
	s.reg.Counter(MetricSimRetries).Add(float64(res.Retries))
	s.reg.Counter(MetricEngineRetries).Add(float64(res.Retries))
	s.reg.Counter(MetricEngineReplans).Add(float64(res.Replans))
	s.reg.Counter(MetricEngineDeltaReplanned).Add(float64(res.DeltaReplannedTasks))
	s.reg.Counter(MetricEngineRepairedChunks).Add(float64(res.RepairedChunks))
	s.reg.Counter(MetricEngineRackLocalMB).Add(res.RackLocalMB)
	s.reg.Counter(MetricEngineCrossRackMB).Add(res.CrossRackMB)
	s.reg.Gauge(MetricSimLastMakespan).Set(res.Makespan)
	s.reg.Gauge(MetricSimLastTasksRun).Set(float64(res.TasksRun))
	s.reg.Gauge(MetricSimLastRetries).Set(float64(res.Retries))
	s.reg.Gauge(MetricSimLastLocality).Set(res.LocalFraction())
	s.writeJSON(w, r, http.StatusOK, SimulateResponse{Plan: resp, Summary: traceio.Summarize(res)})
}

// reject answers a decode failure, bucketing it in the rejection counter.
// An over-limit body additionally closes the connection: MaxBytesReader has
// poisoned the stream mid-request, so keep-alive reuse would misparse the
// unread remainder as the next request.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, apiErr *apiError) {
	s.reg.Counter(MetricRequestsRejected, telemetry.L("reason", apiErr.reason)).Inc()
	if apiErr.status == http.StatusRequestEntityTooLarge {
		w.Header().Set("Connection", "close")
	}
	s.writeJSON(w, r, apiErr.status, errorBody{Error: apiErr.Error()})
}

// workWeight estimates a request's planner + simulation work in admission
// units: one per task plus one per input (planner cost scales with locality
// edges, simulation cost with read flows — both proportional to inputs).
func workWeight(req *PlanRequest) int64 {
	w := req.weight
	if w == 0 { // legacy decode path: Tasks is materialized
		w = int64(len(req.Tasks))
		for i := range req.Tasks {
			w += int64(len(req.Tasks[i].Inputs))
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// admit passes the request through the route's admission gate, recording
// queue wait and shed/cancel outcomes. ok=false means the response has
// already been written; otherwise release must be called when done.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, a *admitter, weight int64) (release func(), ok bool) {
	route := telemetry.L("route", routeLabel(r))
	weight = a.clamp(weight)
	start := time.Now()
	err := a.acquire(r.Context(), weight, s.queueWait)
	s.reg.Histogram(MetricRequestQueueSeconds, nil, route).Observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		return func() { a.release(weight) }, true
	case errors.Is(err, errShed):
		s.reg.Counter(MetricRequestsShed, route, telemetry.L("reason", "queue_timeout")).Inc()
		// Retry-After: the queue-wait bound is the natural horizon after
		// which a retry has a fresh chance at the queue.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.queueWait)))
		s.writeJSON(w, r, http.StatusTooManyRequests, errorBody{Error: "server saturated; retry later"})
	case errors.Is(err, errDraining):
		s.reg.Counter(MetricRequestsShed, route, telemetry.L("reason", "draining")).Inc()
		s.writeJSON(w, r, http.StatusServiceUnavailable, errorBody{Error: "server draining"})
	default: // client went away while queued
		s.reg.Counter(MetricRequestsCancelled, route, telemetry.L("reason", "disconnect")).Inc()
		w.WriteHeader(statusClientClosedRequest)
	}
	return nil, false
}

// retryAfterSeconds renders a wait bound as a whole-second Retry-After
// value, never below 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// aborted maps a context error from the planner or the engine to the
// cancelled counter and the right status, reporting whether it handled err.
func (s *Server) aborted(w http.ResponseWriter, r *http.Request, err error) bool {
	route := telemetry.L("route", routeLabel(r))
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter(MetricRequestsCancelled, route, telemetry.L("reason", "deadline")).Inc()
		s.writeJSON(w, r, http.StatusServiceUnavailable, errorBody{Error: "request deadline exceeded"})
		return true
	case errors.Is(err, context.Canceled):
		s.reg.Counter(MetricRequestsCancelled, route, telemetry.L("reason", "disconnect")).Inc()
		w.WriteHeader(statusClientClosedRequest) // client is gone; best effort
		return true
	}
	return false
}

// planFailed answers a planner error, distinguishing cancellation from
// genuine failures.
func (s *Server) planFailed(w http.ResponseWriter, r *http.Request, err error) {
	if s.aborted(w, r, err) {
		return
	}
	var apiErr *apiError
	if errors.As(err, &apiErr) {
		s.writeJSON(w, r, apiErr.status, errorBody{Error: apiErr.Error()})
		return
	}
	s.writeJSON(w, r, http.StatusInternalServerError, errorBody{Error: err.Error()})
}

// writeJSON writes the response envelope. An encode failure — typically the
// client hanging up mid-body — is logged and counted instead of silently
// letting the telemetry middleware record a clean response.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Compact by default — at 1M tasks the indented envelope nearly
	// doubles the response bytes; ?pretty=1 opts into readable output.
	if r.URL.Query().Get("pretty") == "1" {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(v); err != nil {
		s.reg.Counter(MetricResponseErrors, telemetry.L("route", routeLabel(r))).Inc()
		if s.logger != nil {
			s.logger.Warn("response write failed",
				slog.String("id", telemetry.RequestID(r.Context())),
				slog.String("route", routeLabel(r)),
				slog.Int("status", status),
				slog.Any("error", err))
		}
	}
}

// kuhnTaskThreshold is the single-data problem size above which the server
// swaps Edmonds-Karp for the direct augmenting matcher. Edmonds-Karp pays
// one BFS per matched task, which is already ~1 minute at 50k tasks and
// hopeless at 1M; 2^13 tasks keeps the paper-faithful solver on every
// paper-scale problem while bulk layouts get the solver that finishes there.
const kuhnTaskThreshold = 1 << 13

// pickAssigner resolves the request's strategy to a planner. The resolved
// name (not the raw strategy string) keys the plan cache, so "" and
// "opass" share entries.
func pickAssigner(req *PlanRequest, prob *core.Problem) (core.Assigner, *apiError) {
	multi := false
	for i := range prob.Tasks {
		if len(prob.Tasks[i].Inputs) > 1 {
			multi = true
			break
		}
	}
	switch req.Strategy {
	case "", "opass":
		if multi {
			return core.MultiData{Seed: req.Seed}, nil
		}
		sd := core.SingleData{Seed: req.Seed}
		if len(prob.Tasks) >= kuhnTaskThreshold {
			// Edmonds-Karp augments one unit of flow per BFS, which stops
			// scaling far below 1M tasks. Above the threshold switch to the
			// direct matcher: with equal task sizes (the common bulk layout)
			// it skips the flow network entirely, and with unequal sizes
			// SingleData falls back to Edmonds-Karp on its own. The choice
			// depends only on the problem, so cached plans stay deterministic.
			sd.Algorithm = bipartite.Kuhn
		}
		return sd, nil
	case "rank":
		return core.RankStatic{}, nil
	case "random":
		return core.RandomStatic{Seed: req.Seed}, nil
	case "greedy":
		return core.GreedyLocality{Seed: req.Seed}, nil
	default:
		return nil, badRequest("invalid", "unknown strategy %q", req.Strategy)
	}
}

// planFingerprint derives the cache key: the canonical problem encoding
// (proc→node map, task inputs, per-chunk replica lists, FS epoch) plus the
// resolved strategy and its seed. Everything a planner consults is covered,
// so equal keys imply byte-identical plans.
func planFingerprint(prob *core.Problem, strategy string, seed int64) plancache.Key {
	var seedBytes [8]byte
	binary.LittleEndian.PutUint64(seedBytes[:], uint64(seed))
	return plancache.KeyOf(prob.AppendCanonical(nil), []byte(strategy), seedBytes[:])
}

// planSizeBytes estimates a cached plan's memory footprint for the cache's
// byte bound: slice payloads plus headers and the fixed envelope.
func planSizeBytes(resp *PlanResponse) int64 {
	n := int64(len(resp.Owner)) * 8
	for _, l := range resp.Lists {
		n += 24 + int64(len(l))*8
	}
	return n + 256
}

// tierPlan is the wire form of a cached plan in the shared tier. The
// assignment is rebuilt from the envelope on the way in, so only the
// locality numerator/denominator ride alongside the response.
type tierPlan struct {
	Resp    PlanResponse `json:"resp"`
	LocalMB float64      `json:"local_mb"`
	TotalMB float64      `json:"total_mb"`
}

// tierKeyFor derives the remote key: the configured namespace, the
// namenode-metadata snapshot epoch of the mirror FS the plan was computed
// against, and the content-addressed problem fingerprint. Replicas that
// decoded the same request produce identical snapshots, so keys collide
// exactly when the metadata agrees; any divergence (including the legacy
// vs streaming FS-build paths) lands in disjoint keyspaces.
func (s *Server) tierKeyFor(prob *core.Problem, key plancache.Key) string {
	snap := prob.FS.Snapshot()
	return plancache.TierKey(fmt.Sprintf("%s/e%d", s.tierNS, snap.Epoch), key)
}

// tierFetch asks the shared tier for an already-computed plan. Every
// failure mode — backend error, undecodable bytes, a plan that does not
// validate against the problem — degrades to a miss.
func (s *Server) tierFetch(ctx context.Context, prob *core.Problem, key plancache.Key) (cachedPlan, bool) {
	if s.tier == nil {
		return cachedPlan{}, false
	}
	data, ok, err := s.tier.Get(ctx, s.tierKeyFor(prob, key))
	if err != nil {
		s.reg.Counter(MetricPlanCacheRemoteErrors).Inc()
		return cachedPlan{}, false
	}
	if !ok {
		s.reg.Counter(MetricPlanCacheRemoteMisses).Inc()
		return cachedPlan{}, false
	}
	var tp tierPlan
	if err := json.Unmarshal(data, &tp); err != nil {
		s.reg.Counter(MetricPlanCacheRemoteErrors).Inc()
		return cachedPlan{}, false
	}
	a := &core.Assignment{
		Owner: tp.Resp.Owner, Lists: tp.Resp.Lists,
		PlannedLocalMB: tp.LocalMB, PlannedTotalMB: tp.TotalMB,
	}
	if err := a.Validate(prob); err != nil {
		s.reg.Counter(MetricPlanCacheRemoteErrors).Inc()
		return cachedPlan{}, false
	}
	s.reg.Counter(MetricPlanCacheRemoteHits).Inc()
	return cachedPlan{resp: tp.Resp, a: a}, true
}

// tierPublish offers a freshly computed plan to the shared tier; failures
// are counted and otherwise ignored (the local response is already in hand).
func (s *Server) tierPublish(ctx context.Context, prob *core.Problem, key plancache.Key, resp *PlanResponse, a *core.Assignment) {
	if s.tier == nil {
		return
	}
	data, err := json.Marshal(tierPlan{Resp: *resp, LocalMB: a.PlannedLocalMB, TotalMB: a.PlannedTotalMB})
	if err != nil {
		s.reg.Counter(MetricPlanCacheRemoteErrors).Inc()
		return
	}
	if err := s.tier.Set(ctx, s.tierKeyFor(prob, key), data, s.tierTTL); err != nil {
		s.reg.Counter(MetricPlanCacheRemoteErrors).Inc()
		return
	}
	s.reg.Counter(MetricPlanCacheRemoteSets).Inc()
}

// plan answers the request from the fingerprinted plan cache when it can,
// running the planner (at most once across concurrent identical requests)
// when it cannot. With the cache disabled it degenerates to computePlan.
func (s *Server) plan(ctx context.Context, req *PlanRequest, prob *core.Problem) (PlanResponse, *core.Assignment, error) {
	assigner, apiErr := pickAssigner(req, prob)
	if apiErr != nil {
		return PlanResponse{}, nil, apiErr
	}
	if s.planCache == nil {
		if s.tier == nil {
			return s.computePlan(ctx, assigner, prob)
		}
		key := planFingerprint(prob, assigner.Name(), req.Seed)
		if cp, ok := s.tierFetch(ctx, prob, key); ok {
			return cp.resp, cp.a, nil
		}
		resp, a, err := s.computePlan(ctx, assigner, prob)
		if err == nil {
			s.tierPublish(ctx, prob, key, &resp, a)
		}
		return resp, a, err
	}
	key := planFingerprint(prob, assigner.Name(), req.Seed)
	cached, outcome, err := s.planCache.Do(ctx, key, func(cctx context.Context) (cachedPlan, int64, error) {
		// The shared tier is consulted inside the flight: when another
		// replica already planned this fingerprint, its plan is adopted
		// and the local planner never runs.
		if cp, ok := s.tierFetch(cctx, prob, key); ok {
			return cp, planSizeBytes(&cp.resp), nil
		}
		resp, a, err := s.computePlan(cctx, assigner, prob)
		if err != nil {
			return cachedPlan{}, 0, err
		}
		s.tierPublish(cctx, prob, key, &resp, a)
		return cachedPlan{resp: resp, a: a}, planSizeBytes(&resp), nil
	})
	switch outcome {
	case plancache.Hit:
		s.reg.Counter(MetricPlanCacheHits).Inc()
	case plancache.Coalesced:
		s.reg.Counter(MetricPlanCacheCoalesced).Inc()
	default:
		s.reg.Counter(MetricPlanCacheMisses).Inc()
	}
	stats := s.planCache.Stats()
	s.reg.Gauge(MetricPlanCacheEntries).Set(float64(stats.Entries))
	s.reg.Gauge(MetricPlanCacheBytes).Set(float64(stats.Bytes))
	if prev := s.partialsSeen.Swap(stats.PartialInvalidations); stats.PartialInvalidations > prev {
		s.reg.Counter(MetricPlanCachePartialInvalidations).Add(float64(stats.PartialInvalidations - prev))
	}
	if err != nil {
		return PlanResponse{}, nil, err
	}
	return cached.resp, cached.a, nil
}

// computePlan runs the resolved strategy over the decoded problem under
// ctx, recording per-strategy planner latency and achieved locality.
func (s *Server) computePlan(ctx context.Context, assigner core.Assigner, prob *core.Problem) (PlanResponse, *core.Assignment, error) {
	if s.plannerRan != nil {
		s.plannerRan()
	}
	start := time.Now()
	a, err := core.AssignContext(ctx, assigner, prob)
	elapsed := time.Since(start)
	if err != nil {
		return PlanResponse{}, nil, err
	}
	strategy := telemetry.L("strategy", assigner.Name())
	s.reg.Histogram(MetricPlannerLatency, nil, strategy).Observe(elapsed.Seconds())
	s.reg.Histogram(MetricPlanLocality, telemetry.FractionBuckets, strategy).Observe(a.LocalityFraction())
	s.reg.Counter(MetricPlans, strategy).Inc()
	return PlanResponse{
		Strategy:         assigner.Name(),
		Owner:            a.Owner,
		Lists:            a.Lists,
		LocalityFraction: a.LocalityFraction(),
		PlannerMillis:    float64(elapsed.Microseconds()) / 1000,
	}, a, nil
}
