// Package httpapi exposes the Opass planners as a JSON-over-HTTP service —
// the integration surface a real deployment would use: an application (or
// its job submitter) posts the block layout it read from its namenode plus
// its task list, and receives the task→process assignment to execute. A
// second endpoint runs the full cluster simulation on the submitted layout,
// so capacity questions ("what would this job's makespan be?") can be
// answered without touching the cluster.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /metrics      Prometheus-style text exposition of service metrics
//	POST /v1/plan      compute an assignment for a submitted layout
//	POST /v1/simulate  plan + simulate execution, returning trace statistics
//
// The service is stateless; every request carries its complete layout.
// Every request is stamped with an X-Request-Id, logged as one structured
// line, and counted by route/status; planner latency and achieved locality
// are recorded per strategy, and each simulation updates engine gauges
// (makespan, tasks run, retries) — see internal/telemetry.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/telemetry"
	"opass/internal/traceio"
)

// Metric family names recorded by the handler (beyond the per-route series
// the telemetry middleware owns).
const (
	MetricPlannerLatency   = "opass_planner_latency_seconds"
	MetricPlanLocality     = "opass_plan_locality_fraction"
	MetricPlans            = "opass_plans_total"
	MetricSimRuns          = "opass_sim_runs_total"
	MetricSimTasks         = "opass_sim_tasks_total"
	MetricSimRetries       = "opass_sim_retries_total"
	MetricSimLastMakespan  = "opass_sim_last_makespan_seconds"
	MetricSimLastTasksRun  = "opass_sim_last_tasks_run"
	MetricSimLastRetries   = "opass_sim_last_retries"
	MetricSimLastLocality  = "opass_sim_last_local_fraction"
	MetricRequestsRejected = "opass_requests_rejected_total"
)

// Limits protecting the decoder from hostile or fat-fingered payloads.
const (
	maxBodyBytes = 32 << 20
	maxNodes     = 1 << 16
	maxProcs     = 1 << 16
)

// InputSpec is one data dependency of a task: its size and the nodes
// holding a replica (as reported by the namenode).
type InputSpec struct {
	SizeMB   float64 `json:"size_mb"`
	Replicas []int   `json:"replicas"`
}

// TaskSpec is one data-processing task.
type TaskSpec struct {
	Inputs []InputSpec `json:"inputs"`
}

// PlanRequest is the body of POST /v1/plan and /v1/simulate.
type PlanRequest struct {
	// Nodes is the cluster size; processes default to one per node
	// (ProcNodes overrides placement of process rank i).
	Nodes     int        `json:"nodes"`
	ProcNodes []int      `json:"proc_nodes,omitempty"`
	Strategy  string     `json:"strategy,omitempty"` // opass | rank | random | greedy
	Seed      int64      `json:"seed,omitempty"`
	Tasks     []TaskSpec `json:"tasks"`
}

// PlanResponse is the body returned by POST /v1/plan.
type PlanResponse struct {
	Strategy string  `json:"strategy"`
	Owner    []int   `json:"owner"`
	Lists    [][]int `json:"lists"`
	// LocalityFraction is the fraction of input bytes co-located with their
	// assigned process.
	LocalityFraction float64 `json:"locality_fraction"`
	PlannerMillis    float64 `json:"planner_ms"`
}

// SimulateResponse is the body returned by POST /v1/simulate.
type SimulateResponse struct {
	Plan    PlanResponse    `json:"plan"`
	Summary traceio.Summary `json:"summary"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// ServerOptions configures the handler's telemetry.
type ServerOptions struct {
	// Registry receives service metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Logger receives one structured line per request; nil disables
	// request logging.
	Logger *slog.Logger
}

// Handler returns the service's HTTP handler with default telemetry (a
// private registry, no request logging).
func Handler() http.Handler { return NewHandler(ServerOptions{}) }

// routeLabel bounds metric label cardinality to the known route set.
func routeLabel(r *http.Request) string {
	switch r.URL.Path {
	case "/healthz", "/metrics", "/v1/plan", "/v1/simulate":
		return r.URL.Path
	default:
		return "other"
	}
}

// NewHandler returns the service's HTTP handler wired to the given
// telemetry sinks.
func NewHandler(opts ServerOptions) http.Handler {
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.Help(MetricPlannerLatency, "Planner wall time in seconds, by strategy.")
	reg.Help(MetricPlanLocality, "Planned locality fraction (local bytes / total bytes), by strategy.")
	reg.Help(MetricPlans, "Successful plans computed, by strategy.")
	reg.Help(MetricSimRuns, "Simulations executed.")
	reg.Help(MetricSimTasks, "Tasks executed across all simulations.")
	reg.Help(MetricSimRetries, "Reads retried after DataNode failures across all simulations.")
	reg.Help(MetricSimLastMakespan, "Makespan of the most recent simulation, seconds of virtual time.")
	reg.Help(MetricSimLastTasksRun, "Tasks executed by the most recent simulation.")
	reg.Help(MetricSimLastRetries, "Retried reads in the most recent simulation.")
	reg.Help(MetricSimLastLocality, "Achieved local-read fraction of the most recent simulation.")
	reg.Help(MetricRequestsRejected, "Requests rejected before planning, by reason.")

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		req, prob, status, err := decodeProblem(r)
		if err != nil {
			reg.Counter(MetricRequestsRejected, telemetry.L("reason", rejectReason(status))).Inc()
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		resp, _, status, err := plan(reg, req, prob)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		req, prob, status, err := decodeProblem(r)
		if err != nil {
			reg.Counter(MetricRequestsRejected, telemetry.L("reason", rejectReason(status))).Inc()
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		resp, assignment, status, err := plan(reg, req, prob)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		topo := cluster.New(req.Nodes, cluster.Marmot())
		// Rebuild the problem against the simulation topology (the layout
		// FS carries no hardware).
		res, err := engine.RunAssignment(engine.Options{
			Topo: topo, FS: prob.FS, Problem: prob, Strategy: resp.Strategy,
		}, assignment)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		// Engine counters surface as gauges (last run) and counters
		// (lifetime totals) so load tests can watch throughput live.
		reg.Counter(MetricSimRuns).Inc()
		reg.Counter(MetricSimTasks).Add(float64(res.TasksRun))
		reg.Counter(MetricSimRetries).Add(float64(res.Retries))
		reg.Gauge(MetricSimLastMakespan).Set(res.Makespan)
		reg.Gauge(MetricSimLastTasksRun).Set(float64(res.TasksRun))
		reg.Gauge(MetricSimLastRetries).Set(float64(res.Retries))
		reg.Gauge(MetricSimLastLocality).Set(res.LocalFraction())
		writeJSON(w, http.StatusOK, SimulateResponse{Plan: resp, Summary: traceio.Summarize(res)})
	})
	return telemetry.Middleware{Reg: reg, Logger: opts.Logger, Route: routeLabel}.Wrap(mux)
}

// rejectReason buckets a decode failure status for the rejection counter.
func rejectReason(status int) string {
	switch status {
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusBadRequest:
		return "invalid"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// layoutView is the minimal cluster view for a submitted layout.
type layoutView struct{ n int }

func (v layoutView) NumNodes() int  { return v.n }
func (v layoutView) RackOf(int) int { return 0 }

// decodeProblem parses and validates a request into a core.Problem backed
// by an in-memory file system that mirrors the submitted block layout.
func decodeProblem(r *http.Request) (*PlanRequest, *core.Problem, int, error) {
	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return nil, nil, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	if req.Nodes <= 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("nodes must be positive")
	}
	if req.Nodes > maxNodes {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("nodes %d exceeds maximum %d", req.Nodes, maxNodes)
	}
	if len(req.Tasks) == 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("tasks must be non-empty")
	}
	// Validate proc_nodes up front with specific messages — the shape
	// errors must not fall through to the planner's generic Validate.
	if len(req.ProcNodes) > maxProcs {
		return nil, nil, http.StatusBadRequest,
			fmt.Errorf("proc_nodes lists %d processes, exceeding maximum %d", len(req.ProcNodes), maxProcs)
	}
	procNodes := req.ProcNodes
	if len(procNodes) == 0 {
		procNodes = make([]int, req.Nodes)
		for i := range procNodes {
			procNodes[i] = i
		}
	}
	for i, n := range procNodes {
		if n < 0 || n >= req.Nodes {
			return nil, nil, http.StatusBadRequest,
				fmt.Errorf("proc_nodes[%d] = %d outside [0,%d)", i, n, req.Nodes)
		}
	}
	// Mirror the layout into an in-memory FS: each input becomes a chunk
	// created with its first replica, then the remaining replicas are added
	// (per-input replica counts may differ, unlike a Config-level factor).
	var firstReps [][]int
	for _, task := range req.Tasks {
		for _, in := range task.Inputs {
			if len(in.Replicas) > 0 {
				firstReps = append(firstReps, []int{in.Replicas[0]})
			} else {
				firstReps = append(firstReps, []int{0}) // rejected below
			}
		}
	}
	fs := dfs.New(layoutView{req.Nodes}, dfs.Config{
		Replication: 1,
		Placement:   dfs.FixedPlacement{Replicas: firstReps},
	})
	prob := &core.Problem{ProcNode: procNodes, FS: fs}
	for ti, task := range req.Tasks {
		if len(task.Inputs) == 0 {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d has no inputs", ti)
		}
		coreTask := core.Task{ID: ti}
		for ii, in := range task.Inputs {
			if in.SizeMB <= 0 {
				return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d input %d: size_mb must be positive", ti, ii)
			}
			if len(in.Replicas) == 0 {
				return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d input %d: replicas must be non-empty", ti, ii)
			}
			seen := map[int]bool{}
			for _, rep := range in.Replicas {
				if rep < 0 || rep >= req.Nodes {
					return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d input %d: replica node %d outside cluster", ti, ii, rep)
				}
				if seen[rep] {
					return nil, nil, http.StatusBadRequest, fmt.Errorf("task %d input %d: duplicate replica node %d", ti, ii, rep)
				}
				seen[rep] = true
			}
			f, err := fs.CreateChunks(fmt.Sprintf("/layout/t%d/i%d", ti, ii), []float64{in.SizeMB})
			if err != nil {
				return nil, nil, http.StatusInternalServerError, err
			}
			id := f.Chunks[0]
			for _, rep := range in.Replicas[1:] {
				if err := fs.AddReplica(id, rep); err != nil {
					return nil, nil, http.StatusInternalServerError, err
				}
			}
			coreTask.Inputs = append(coreTask.Inputs, core.Input{Chunk: id, SizeMB: in.SizeMB})
		}
		prob.Tasks = append(prob.Tasks, coreTask)
	}
	if err := prob.Validate(); err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	return &req, prob, http.StatusOK, nil
}

// plan runs the requested strategy over the decoded problem, recording
// per-strategy planner latency and achieved locality.
func plan(reg *telemetry.Registry, req *PlanRequest, prob *core.Problem) (PlanResponse, *core.Assignment, int, error) {
	multi := false
	for i := range prob.Tasks {
		if len(prob.Tasks[i].Inputs) > 1 {
			multi = true
			break
		}
	}
	var assigner core.Assigner
	switch req.Strategy {
	case "", "opass":
		if multi {
			assigner = core.MultiData{Seed: req.Seed}
		} else {
			assigner = core.SingleData{Seed: req.Seed}
		}
	case "rank":
		assigner = core.RankStatic{}
	case "random":
		assigner = core.RandomStatic{Seed: req.Seed}
	case "greedy":
		assigner = core.GreedyLocality{Seed: req.Seed}
	default:
		return PlanResponse{}, nil, http.StatusBadRequest, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	start := time.Now()
	a, err := assigner.Assign(prob)
	elapsed := time.Since(start)
	if err != nil {
		return PlanResponse{}, nil, http.StatusInternalServerError, err
	}
	strategy := telemetry.L("strategy", assigner.Name())
	reg.Histogram(MetricPlannerLatency, nil, strategy).Observe(elapsed.Seconds())
	reg.Histogram(MetricPlanLocality, telemetry.FractionBuckets, strategy).Observe(a.LocalityFraction())
	reg.Counter(MetricPlans, strategy).Inc()
	return PlanResponse{
		Strategy:         assigner.Name(),
		Owner:            a.Owner,
		Lists:            a.Lists,
		LocalityFraction: a.LocalityFraction(),
		PlannerMillis:    float64(elapsed.Microseconds()) / 1000,
	}, a, http.StatusOK, nil
}
