package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func post(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// layoutRequest builds a 4-node layout where task i's single input lives on
// nodes {i, (i+1)%4}: a full matching trivially exists.
func layoutRequest(strategy string) PlanRequest {
	req := PlanRequest{Nodes: 4, Strategy: strategy, Seed: 1}
	for i := 0; i < 8; i++ {
		req.Tasks = append(req.Tasks, TaskSpec{Inputs: []InputSpec{{
			SizeMB:   64,
			Replicas: []int{i % 4, (i + 1) % 4},
		}}})
	}
	return req
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestPlanEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, body := post(t, srv, "/v1/plan", layoutRequest("opass"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out PlanResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Strategy != "opass-flow" {
		t.Fatalf("strategy %q", out.Strategy)
	}
	if len(out.Owner) != 8 || len(out.Lists) != 4 {
		t.Fatalf("shape: %d owners, %d lists", len(out.Owner), len(out.Lists))
	}
	if out.LocalityFraction != 1.0 {
		t.Fatalf("locality %v, want 1.0 (full matching exists)", out.LocalityFraction)
	}
	// Every task owned by a process co-located with its input.
	for i, owner := range out.Owner {
		a, b := i%4, (i+1)%4
		if owner != a && owner != b {
			t.Fatalf("task %d assigned to non-co-located proc %d", i, owner)
		}
	}
}

func TestPlanStrategies(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	for _, s := range []string{"", "opass", "rank", "random", "greedy"} {
		resp, body := post(t, srv, "/v1/plan", layoutRequest(s))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("strategy %q: status %d: %s", s, resp.StatusCode, body)
		}
	}
	resp, _ := post(t, srv, "/v1/plan", layoutRequest("bogus"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus strategy status %d", resp.StatusCode)
	}
}

func TestPlanMultiInput(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	req := PlanRequest{Nodes: 4, Seed: 2}
	for i := 0; i < 4; i++ {
		req.Tasks = append(req.Tasks, TaskSpec{Inputs: []InputSpec{
			{SizeMB: 30, Replicas: []int{i % 4}},
			{SizeMB: 20, Replicas: []int{(i + 1) % 4}},
		}})
	}
	resp, body := post(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out PlanResponse
	json.Unmarshal(body, &out)
	if out.Strategy != "opass-matching" {
		t.Fatalf("multi-input should route to Algorithm 1, got %q", out.Strategy)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, body := post(t, srv, "/v1/simulate", layoutRequest("opass"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Summary.Tasks != 8 {
		t.Fatalf("simulated %d tasks", out.Summary.Tasks)
	}
	if out.Summary.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	if out.Summary.LocalFraction != 1.0 {
		t.Fatalf("simulated locality %v", out.Summary.LocalFraction)
	}
}

func TestValidationErrors(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	cases := []PlanRequest{
		{Nodes: 0, Tasks: []TaskSpec{{Inputs: []InputSpec{{SizeMB: 1, Replicas: []int{0}}}}}},
		{Nodes: 4},
		{Nodes: 4, Tasks: []TaskSpec{{}}},
		{Nodes: 4, Tasks: []TaskSpec{{Inputs: []InputSpec{{SizeMB: 0, Replicas: []int{0}}}}}},
		{Nodes: 4, Tasks: []TaskSpec{{Inputs: []InputSpec{{SizeMB: 1}}}}},
		{Nodes: 4, Tasks: []TaskSpec{{Inputs: []InputSpec{{SizeMB: 1, Replicas: []int{9}}}}}},
		{Nodes: 4, Tasks: []TaskSpec{{Inputs: []InputSpec{{SizeMB: 1, Replicas: []int{1, 1}}}}}},
		{Nodes: 4, ProcNodes: []int{9}, Tasks: []TaskSpec{{Inputs: []InputSpec{{SizeMB: 1, Replicas: []int{0}}}}}},
	}
	for i, req := range cases {
		resp, body := post(t, srv, "/v1/plan", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	// Unknown fields rejected.
	resp, _ := post(t, srv, "/v1/plan", map[string]any{"nodes": 4, "bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d", resp.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan status %d", resp.StatusCode)
	}
}
