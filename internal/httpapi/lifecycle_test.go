package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"opass/internal/telemetry"
)

// metricValue scrapes reg and returns the value of the first sample line
// containing every substring, or -1 if absent.
func metricValue(t *testing.T, reg *telemetry.Registry, substrs ...string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
lines:
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, s := range substrs {
			if !strings.Contains(line, s) {
				continue lines
			}
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v
	}
	return -1
}

func TestSimulateShedsWhenSaturated(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(ServerOptions{Registry: reg, MaxInflight: 1, QueueWait: 20 * time.Millisecond})
	// Occupy the route's whole admission budget, as a fat in-flight
	// request would.
	if err := s.simAdmit.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}
	defer s.simAdmit.release(1)
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, body := post(t, srv, "/v1/simulate", layoutRequest("opass"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (20ms bound rounds up)", ra)
	}
	if got := metricValue(t, reg, MetricRequestsShed, `reason="queue_timeout"`, `route="/v1/simulate"`); got != 1 {
		t.Fatalf("shed counter = %v, want 1", got)
	}
	// /v1/plan has its own admitter and must still serve.
	resp, body = post(t, srv, "/v1/plan", layoutRequest("opass"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d while simulate saturated: %s", resp.StatusCode, body)
	}
}

func TestRequestDeadlineCancelsWork(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(ServerOptions{Registry: reg, RequestTimeout: time.Nanosecond})
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, body := post(t, srv, "/v1/simulate", layoutRequest("opass"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("body %q does not mention the deadline", body)
	}
	if got := metricValue(t, reg, MetricRequestsCancelled, `reason="deadline"`, `route="/v1/simulate"`); got != 1 {
		t.Fatalf("cancelled counter = %v, want 1", got)
	}
	// The expired request must have released its admission grant.
	if got := s.simAdmit.inFlight(); got != 0 {
		t.Fatalf("inFlight = %d after deadline, want 0", got)
	}
}

func TestQueuedClientDisconnectReleasesNothing(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(ServerOptions{Registry: reg, MaxInflight: 1, QueueWait: time.Minute})
	if err := s.simAdmit.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}
	defer s.simAdmit.release(1)
	srv := httptest.NewServer(s)
	defer srv.Close()

	raw, err := json.Marshal(layoutRequest("opass"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/simulate", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, "request queued for admission", func() bool { return s.simAdmit.queueLen() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want context.Canceled", err)
	}
	waitFor(t, "queue emptied", func() bool { return s.simAdmit.queueLen() == 0 })
	waitFor(t, "disconnect counted", func() bool {
		return metricValue(t, reg, MetricRequestsCancelled, `reason="disconnect"`, `route="/v1/simulate"`) == 1
	})
}

func TestMidRunClientDisconnectReleasesSlot(t *testing.T) {
	s := NewServer(ServerOptions{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// A layout big enough that planning + simulation takes real time if
	// cancellation were broken.
	big := PlanRequest{Nodes: 64, Strategy: "opass", Seed: 7}
	for i := 0; i < 20000; i++ {
		big.Tasks = append(big.Tasks, TaskSpec{Inputs: []InputSpec{{
			SizeMB:   64,
			Replicas: []int{i % 64, (i + 17) % 64, (i + 41) % 64},
		}}})
	}
	raw, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/simulate", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	waitFor(t, "request admitted", func() bool { return s.simAdmit.inFlight() > 0 })
	cancel()
	<-done
	// The lifecycle guarantee under test: the grant comes back promptly,
	// whether the request was cancelled mid-work or squeaked through.
	waitFor(t, "admission grant released", func() bool { return s.simAdmit.inFlight() == 0 })
}

func TestConcurrentSaturationNeverHangs(t *testing.T) {
	s := NewServer(ServerOptions{MaxInflight: 1, QueueWait: 10 * time.Millisecond})
	srv := httptest.NewServer(s)
	defer srv.Close()
	const clients = 8
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := post(t, srv, "/v1/simulate", layoutRequest("opass"))
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	ok200 := 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
		default:
			t.Errorf("client %d: status %d, want 200 or 429", i, st)
		}
	}
	if ok200 == 0 {
		t.Fatal("every client was shed; at least one should have been admitted")
	}
	if got := s.simAdmit.inFlight(); got != 0 {
		t.Fatalf("inFlight = %d after all clients returned, want 0", got)
	}
}

func TestDrainSheds503(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(ServerOptions{Registry: reg})
	srv := httptest.NewServer(s)
	defer srv.Close()
	s.Drain()
	resp, body := post(t, srv, "/v1/simulate", layoutRequest("opass"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	resp, _ = post(t, srv, "/v1/plan", layoutRequest("opass"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("plan status %d, want 503 while draining", resp.StatusCode)
	}
	if got := metricValue(t, reg, MetricRequestsShed, `reason="draining"`, `route="/v1/simulate"`); got != 1 {
		t.Fatalf("draining shed counter = %v, want 1", got)
	}
}

// brokenWriter fails every body write, as a hung-up client does.
type brokenWriter struct {
	h      http.Header
	status int
}

func (w *brokenWriter) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}
func (w *brokenWriter) WriteHeader(code int)      { w.status = code }
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("connection reset") }

func TestWriteJSONCountsEncodeFailures(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(ServerOptions{Registry: reg})
	r := httptest.NewRequest(http.MethodPost, "/v1/plan", nil)
	s.writeJSON(&brokenWriter{}, r, http.StatusOK, map[string]string{"k": "v"})
	if got := metricValue(t, reg, MetricResponseErrors, `route="/v1/plan"`); got != 1 {
		t.Fatalf("response-error counter = %v, want 1", got)
	}
}

func TestWorkWeight(t *testing.T) {
	req := layoutRequest("opass") // 8 tasks, 1 input each
	if got := workWeight(&req); got != 16 {
		t.Fatalf("workWeight = %d, want 16 (8 tasks + 8 inputs)", got)
	}
	empty := PlanRequest{}
	if got := workWeight(&empty); got != 1 {
		t.Fatalf("workWeight(empty) = %d, want floor 1", got)
	}
}
