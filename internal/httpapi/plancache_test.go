package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opass/internal/dfs"
	"opass/internal/telemetry"
)

// fsView is a minimal single-rack ClusterView for building test layouts.
type fsView struct{ n int }

func (v fsView) NumNodes() int  { return v.n }
func (v fsView) RackOf(int) int { return 0 }

// countingServer builds a server whose plannerRan hook counts actual
// planner invocations — the ground truth cache hits must not disturb.
func countingServer(t *testing.T, opts ServerOptions) (*httptest.Server, *atomic.Int64, *telemetry.Registry) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	s := NewServer(opts)
	var runs atomic.Int64
	s.plannerRan = func() { runs.Add(1) }
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, &runs, opts.Registry
}

// requestFromFS derives the PlanRequest a client would build after reading
// the file's block locations from the namenode: one single-input task per
// chunk, replicas exactly as placed.
func requestFromFS(fs *dfs.FileSystem, f *dfs.File, strategy string) PlanRequest {
	req := PlanRequest{Nodes: 4, Strategy: strategy, Seed: 1}
	for _, id := range f.Chunks {
		c := fs.Chunk(id)
		req.Tasks = append(req.Tasks, TaskSpec{Inputs: []InputSpec{{
			SizeMB:   c.SizeMB,
			Replicas: append([]int(nil), c.Replicas...),
		}}})
	}
	return req
}

// TestPlanCacheHitAndMoveReplicaInvalidation is the acceptance test for the
// plan cache: two identical back-to-back /v1/plan requests must invoke the
// planner once and return byte-identical bodies, and a MoveReplica on the
// cluster between requests (reflected in the re-read layout) must force a
// recompute.
func TestPlanCacheHitAndMoveReplicaInvalidation(t *testing.T) {
	srv, runs, reg := countingServer(t, ServerOptions{})

	fs := dfs.New(fsView{4}, dfs.Config{
		Replication: 2,
		Placement:   dfs.FixedPlacement{Replicas: [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
	})
	f, err := fs.CreateChunks("/data", []float64{64, 64, 64, 64})
	if err != nil {
		t.Fatal(err)
	}

	req := requestFromFS(fs, f, "opass")
	resp1, body1 := post(t, srv, "/v1/plan", req)
	resp2, body2 := post(t, srv, "/v1/plan", req)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("planner ran %d times for two identical requests, want 1", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached response differs from original:\n%s\nvs\n%s", body1, body2)
	}
	if got := reg.Counter(MetricPlanCacheHits).Value(); got != 1 {
		t.Fatalf("hits = %v, want 1", got)
	}

	// Strategy "" resolves to the same planner as "opass", so it must share
	// the cache entry rather than recompute.
	req.Strategy = ""
	if _, body := post(t, srv, "/v1/plan", req); !bytes.Equal(body, body1) {
		t.Fatal("default strategy did not share the opass cache entry")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("planner ran %d times after aliased-strategy request, want 1", got)
	}

	// Operator moves a replica; the client re-reads block locations and the
	// resulting request must miss the cache and replan.
	if err := fs.MoveReplica(f.Chunks[0], 0, 2); err != nil {
		t.Fatal(err)
	}
	moved := requestFromFS(fs, f, "opass")
	if resp, _ := post(t, srv, "/v1/plan", moved); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-move status %d", resp.StatusCode)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("planner ran %d times after MoveReplica, want 2 (recompute forced)", got)
	}

	// A different seed is a different fingerprint even on identical layout.
	moved.Seed = 99
	post(t, srv, "/v1/plan", moved)
	if got := runs.Load(); got != 3 {
		t.Fatalf("planner ran %d times after seed change, want 3", got)
	}
}

// TestPlanCacheCoalescesConcurrentRequests proves N concurrent identical
// requests run the planner exactly once: the leader computes, the rest
// coalesce onto its flight or hit the stored entry. Run under -race this
// also exercises the cache's synchronization.
func TestPlanCacheCoalescesConcurrentRequests(t *testing.T) {
	const clients = 16
	release := make(chan struct{})
	srv, runs, reg := countingServer(t, ServerOptions{})
	// Stall the first (and only, if coalescing works) planner run until all
	// clients have sent their requests, so they genuinely overlap.
	s := srv.Config.Handler.(*Server)
	s.plannerRan = func() {
		runs.Add(1)
		select {
		case <-release:
		case <-time.After(5 * time.Second):
		}
	}

	req := layoutRequest("opass")
	raw, _ := json.Marshal(req)
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	var started, done sync.WaitGroup
	for i := 0; i < clients; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			resp, err := http.Post(srv.URL+"/v1/plan", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	started.Wait()
	// All requests are in flight (or queued); let the single compute finish.
	close(release)
	done.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs from client 0", i)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("planner ran %d times for %d concurrent identical requests, want 1", got, clients)
	}
	misses := reg.Counter(MetricPlanCacheMisses).Value()
	coalesced := reg.Counter(MetricPlanCacheCoalesced).Value()
	hits := reg.Counter(MetricPlanCacheHits).Value()
	if misses != 1 {
		t.Fatalf("misses = %v, want 1", misses)
	}
	if misses+coalesced+hits != clients {
		t.Fatalf("outcome accounting %v+%v+%v != %d clients", misses, coalesced, hits, clients)
	}
}

// TestPlanCacheDisabled verifies PlanCacheEntries < 0 turns the cache off:
// every request runs the planner.
func TestPlanCacheDisabled(t *testing.T) {
	srv, runs, reg := countingServer(t, ServerOptions{PlanCacheEntries: -1})
	req := layoutRequest("opass")
	post(t, srv, "/v1/plan", req)
	post(t, srv, "/v1/plan", req)
	if got := runs.Load(); got != 2 {
		t.Fatalf("planner ran %d times with cache disabled, want 2", got)
	}
	if got := reg.Counter(MetricPlanCacheHits).Value(); got != 0 {
		t.Fatalf("hits counter moved (%v) with cache disabled", got)
	}
}

// TestSimulateSharesPlanCache verifies /v1/simulate reuses a plan cached by
// /v1/plan for the same layout (the simulation itself always runs).
func TestSimulateSharesPlanCache(t *testing.T) {
	srv, runs, _ := countingServer(t, ServerOptions{})
	req := layoutRequest("opass")
	if resp, body := post(t, srv, "/v1/plan", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, body)
	}
	resp, body := post(t, srv, "/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan.Strategy != "opass-flow" {
		t.Fatalf("simulate plan strategy %q", out.Plan.Strategy)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("planner ran %d times across plan+simulate of one layout, want 1", got)
	}
}

// TestPlanCacheTTLExpiry verifies a positive PlanCacheTTL bounds entry age:
// after the TTL elapses an identical request recomputes.
func TestPlanCacheTTLExpiry(t *testing.T) {
	srv, runs, _ := countingServer(t, ServerOptions{PlanCacheTTL: 50 * time.Millisecond})
	req := layoutRequest("opass")
	post(t, srv, "/v1/plan", req)
	post(t, srv, "/v1/plan", req)
	if got := runs.Load(); got != 1 {
		t.Fatalf("planner ran %d times before TTL, want 1", got)
	}
	time.Sleep(80 * time.Millisecond)
	post(t, srv, "/v1/plan", req)
	if got := runs.Load(); got != 2 {
		t.Fatalf("planner ran %d times after TTL expiry, want 2", got)
	}
}
